#include <gtest/gtest.h>

#include "helpers.hpp"
#include "pcap/checksum.hpp"
#include "pcap/pcap_file.hpp"
#include "pcap/pcap_stream.hpp"
#include "util/bytes.hpp"

namespace tdat {
namespace {

using test::kReceiverIp;
using test::kSenderIp;

TcpSegmentSpec basic_spec(std::span<const std::uint8_t> payload = {}) {
  TcpSegmentSpec spec;
  spec.src_ip = kSenderIp;
  spec.dst_ip = kReceiverIp;
  spec.src_port = 20000;
  spec.dst_port = 179;
  spec.seq = 1001;
  spec.ack = 5001;
  spec.flags = {.ack = true, .psh = !payload.empty()};
  spec.window = 0x8000;
  spec.payload = payload;
  return spec;
}

TEST(Checksum, KnownVector) {
  // RFC 1071 example-style check: complement of sum folds correctly.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  const std::uint16_t c = internet_checksum(data);
  // Verifying the defining property: sum including checksum == 0xffff.
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i + 1 < sizeof(data); i += 2) {
    acc += std::uint32_t{data[i]} << 8 | data[i + 1];
  }
  acc += c;
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  EXPECT_EQ(acc, 0xffffu);
}

TEST(Checksum, OddLength) {
  const std::uint8_t data[] = {0xab};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xab00u));
}

TEST(EncodeDecode, RoundTripPlainAck) {
  const auto pkt = test::make_packet(123, 0, basic_spec());
  EXPECT_EQ(pkt.ts, 123);
  EXPECT_EQ(pkt.ip.src, kSenderIp);
  EXPECT_EQ(pkt.ip.dst, kReceiverIp);
  EXPECT_EQ(pkt.tcp.src_port, 20000);
  EXPECT_EQ(pkt.tcp.dst_port, 179);
  EXPECT_EQ(pkt.tcp.seq, 1001u);
  EXPECT_EQ(pkt.tcp.ack, 5001u);
  EXPECT_EQ(pkt.tcp.window, 0x8000);
  EXPECT_TRUE(pkt.tcp.flags.ack);
  EXPECT_FALSE(pkt.tcp.flags.syn);
  EXPECT_EQ(pkt.payload_len, 0u);
}

TEST(EncodeDecode, RoundTripPayload) {
  std::vector<std::uint8_t> payload(100);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }
  const auto pkt = test::make_packet(1, 0, basic_spec(payload));
  ASSERT_EQ(pkt.payload_len, 100u);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), pkt.payload().begin()));
}

TEST(EncodeDecode, SynOptions) {
  TcpSegmentSpec spec = basic_spec();
  spec.flags = {.syn = true};
  spec.mss = 1460;
  spec.window_scale = 4;
  const auto pkt = test::make_packet(1, 0, spec);
  EXPECT_TRUE(pkt.tcp.flags.syn);
  ASSERT_TRUE(pkt.tcp.mss.has_value());
  EXPECT_EQ(*pkt.tcp.mss, 1460);
  ASSERT_TRUE(pkt.tcp.window_scale.has_value());
  EXPECT_EQ(*pkt.tcp.window_scale, 4);
}

TEST(Decode, RejectsNonIpv4) {
  std::vector<std::uint8_t> frame(40, 0);
  frame[12] = 0x86;  // ethertype IPv6
  frame[13] = 0xdd;
  EXPECT_FALSE(decode_frame(0, 0, frame).has_value());
}

TEST(Decode, RejectsTruncated) {
  const auto full = encode_tcp_frame(basic_spec());
  std::vector<std::uint8_t> cut(full.begin(), full.begin() + 30);
  EXPECT_FALSE(decode_frame(0, 0, cut).has_value());
}

TEST(Decode, RejectsCorruptChecksumWhenVerifying) {
  auto frame = encode_tcp_frame(basic_spec());
  frame.back() ^= 0xff;        // corrupt the last byte
  frame.push_back(0);          // keep total length plausible? no change needed
  frame.pop_back();
  // Without verification the (header-consistent) frame still decodes...
  EXPECT_TRUE(decode_frame(0, 0, frame, false).has_value());
  // ...but verification rejects it. The last byte is part of the TCP header
  // (urgent ptr / options / payload), covered by the TCP checksum.
  EXPECT_FALSE(decode_frame(0, 0, frame, true).has_value());
}

TEST(Decode, AcceptsValidChecksums) {
  std::vector<std::uint8_t> payload(37, 0x5c);
  const auto frame = encode_tcp_frame(basic_spec(payload));
  EXPECT_TRUE(decode_frame(0, 0, frame, true).has_value());
}

TEST(PcapFile, SerializeParseRoundTrip) {
  PcapFile file;
  for (int i = 0; i < 5; ++i) {
    PcapRecord rec;
    rec.ts = 1'000'000LL * i + i;
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(10 + i), 0xcd);
    rec.data = encode_tcp_frame(basic_spec(payload));
    rec.orig_len = static_cast<std::uint32_t>(rec.data.size());
    file.records.push_back(std::move(rec));
  }
  const auto image = serialize_pcap(file);
  const auto parsed = parse_pcap(image);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().records.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(parsed.value().records[i].ts, file.records[i].ts);
    EXPECT_EQ(parsed.value().records[i].data, file.records[i].data);
  }
}

TEST(PcapFile, RejectsBadMagic) {
  std::vector<std::uint8_t> junk(64, 0x42);
  EXPECT_FALSE(parse_pcap(junk).ok());
}

TEST(PcapFile, RejectsShortHeader) {
  std::vector<std::uint8_t> junk(8, 0);
  EXPECT_FALSE(parse_pcap(junk).ok());
}

TEST(PcapFile, BigEndianHeader) {
  // Build a minimal big-endian pcap: swapped magic + header + one record.
  ByteWriter w;
  w.u32be(0xa1b2c3d4);  // written BE == read LE as 0xd4c3b2a1 -> swapped
  w.u16be(2);
  w.u16be(4);
  w.u32be(0);
  w.u32be(0);
  w.u32be(65535);
  w.u32be(1);  // ethernet
  const auto frame = encode_tcp_frame(basic_spec());
  w.u32be(10);  // ts sec
  w.u32be(500000);  // ts usec
  w.u32be(static_cast<std::uint32_t>(frame.size()));
  w.u32be(static_cast<std::uint32_t>(frame.size()));
  w.bytes(frame);
  const auto parsed = parse_pcap(w.data());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().records.size(), 1u);
  EXPECT_EQ(parsed.value().records[0].ts, 10'500'000);
}

TEST(PcapFile, NanosecondMagic) {
  ByteWriter w;
  w.u32le(0xa1b23c4d);
  w.u16le(2);
  w.u16le(4);
  w.u32le(0);
  w.u32le(0);
  w.u32le(65535);
  w.u32le(1);
  const auto frame = encode_tcp_frame(basic_spec());
  w.u32le(1);          // sec
  w.u32le(999'999'00);  // nanos -> 99999 us... wait: 99999900ns = 99999us
  w.u32le(static_cast<std::uint32_t>(frame.size()));
  w.u32le(static_cast<std::uint32_t>(frame.size()));
  w.bytes(frame);
  const auto parsed = parse_pcap(w.data());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().nanosecond);
  EXPECT_EQ(parsed.value().records[0].ts, kMicrosPerSec + 99'999);
}

TEST(PcapFile, TruncatedTailKeepsPrefix) {
  PcapFile file;
  PcapRecord rec;
  rec.ts = 5;
  rec.data = encode_tcp_frame(basic_spec());
  rec.orig_len = static_cast<std::uint32_t>(rec.data.size());
  file.records.push_back(rec);
  file.records.push_back(rec);
  auto image = serialize_pcap(file);
  image.resize(image.size() - 7);  // cut into the second record
  const auto parsed = parse_pcap(image);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().records.size(), 1u);
}

TEST(PcapFile, FileRoundTrip) {
  PcapFile file;
  PcapRecord rec;
  rec.ts = 42;
  rec.data = encode_tcp_frame(basic_spec());
  rec.orig_len = static_cast<std::uint32_t>(rec.data.size());
  file.records.push_back(std::move(rec));
  const std::string path = ::testing::TempDir() + "/tdat_test.pcap";
  ASSERT_TRUE(write_pcap_file(path, file));
  const auto loaded = read_pcap_file(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().records.size(), 1u);
  EXPECT_EQ(loaded.value().records[0].ts, 42);
}

TEST(PcapFile, DecodeSkipsTruncatedCaptures) {
  PcapFile file;
  PcapRecord good;
  good.ts = 1;
  good.data = encode_tcp_frame(basic_spec());
  good.orig_len = static_cast<std::uint32_t>(good.data.size());
  PcapRecord snapped = good;  // captured shorter than on-wire length
  snapped.data.resize(snapped.data.size() / 2);
  file.records.push_back(good);
  file.records.push_back(snapped);
  const auto pkts = decode_pcap(file);
  ASSERT_EQ(pkts.size(), 1u);
  EXPECT_EQ(pkts[0].index, 0u);
}

// --- corrupt-record handling -----------------------------------------------

// A capture of `n` well-spaced records (1 s apart, so the resync timestamp
// window has a clean anchor).
PcapFile spaced_capture(int n) {
  PcapFile file;
  for (int i = 0; i < n; ++i) {
    PcapRecord rec;
    rec.ts = static_cast<Micros>(i) * kMicrosPerSec;
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(20 + i), 0xcd);
    rec.data = encode_tcp_frame(basic_spec(payload));
    rec.orig_len = static_cast<std::uint32_t>(rec.data.size());
    file.records.push_back(std::move(rec));
  }
  return file;
}

// Byte offset of record `idx`'s header inside a serialized image.
std::size_t record_header_offset(std::span<const std::uint8_t> image,
                                 int idx) {
  std::size_t off = 24;
  for (int i = 0; i < idx; ++i) {
    const std::uint32_t incl = static_cast<std::uint32_t>(image[off + 8]) |
                               static_cast<std::uint32_t>(image[off + 9]) << 8 |
                               static_cast<std::uint32_t>(image[off + 10]) << 16 |
                               static_cast<std::uint32_t>(image[off + 11]) << 24;
    off += 16 + incl;
  }
  return off;
}

void overwrite_incl_len(std::vector<std::uint8_t>& image, int idx,
                        std::uint32_t value) {
  const std::size_t at = record_header_offset(image, idx) + 8;
  image[at] = static_cast<std::uint8_t>(value);
  image[at + 1] = static_cast<std::uint8_t>(value >> 8);
  image[at + 2] = static_cast<std::uint8_t>(value >> 16);
  image[at + 3] = static_cast<std::uint8_t>(value >> 24);
}

std::size_t drain_count(PcapStream& stream) {
  StreamRecord rec;
  std::size_t n = 0;
  while (stream.next(rec)) ++n;
  return n;
}

TEST(PcapStreamResync, RecoversAfterZeroLengthHeader) {
  auto image = serialize_pcap(spaced_capture(6));
  const std::size_t victim_len =
      record_header_offset(image, 3) - record_header_offset(image, 2) - 16;
  overwrite_incl_len(image, 2, 0);

  auto stream = PcapStream::from_memory(image);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(drain_count(stream.value()), 5u);  // only the victim is lost
  const IngestDiagnostics& diag = stream.value().diagnostics();
  EXPECT_EQ(diag.resynced, 1u);
  EXPECT_EQ(diag.truncated, 0u);
  // Scan cost: the corrupt header plus the orphaned body.
  EXPECT_EQ(diag.skipped_bytes, 16 + victim_len);
  EXPECT_FALSE(diag.budget_exhausted);
}

TEST(PcapStreamResync, RecoversAfterOverlongInclLen) {
  auto image = serialize_pcap(spaced_capture(6));
  overwrite_incl_len(image, 1, 0x7fffffff);

  auto stream = PcapStream::from_memory(image);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(drain_count(stream.value()), 5u);
  EXPECT_EQ(stream.value().diagnostics().resynced, 1u);
}

TEST(PcapStreamResync, RecoversAcrossChunkBoundaries) {
  // A 32-byte chunk forces the scan and the chain check through repeated
  // refills and tail relocations.
  auto image = serialize_pcap(spaced_capture(6));
  overwrite_incl_len(image, 2, 0);

  auto stream = PcapStream::from_memory(image, IngestPolicy{}, 32);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(drain_count(stream.value()), 5u);
  EXPECT_EQ(stream.value().diagnostics().resynced, 1u);
}

TEST(PcapStreamResync, StrictModeDropsTailAtFirstCorruptHeader) {
  auto image = serialize_pcap(spaced_capture(6));
  overwrite_incl_len(image, 2, 0);

  auto stream = PcapStream::from_memory(image, IngestPolicy::strict_mode());
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(drain_count(stream.value()), 2u);  // records before the damage
  const IngestDiagnostics& diag = stream.value().diagnostics();
  EXPECT_EQ(diag.resynced, 0u);
  EXPECT_EQ(diag.truncated, 1u);
  EXPECT_EQ(diag.skipped_bytes, 0u);
}

TEST(PcapStreamResync, ErrorBudgetBoundsRecovery) {
  auto image = serialize_pcap(spaced_capture(8));
  // Higher index first: the offset walk reads incl_len fields, so damaging
  // an earlier record would derail locating a later one.
  overwrite_incl_len(image, 5, 0);
  overwrite_incl_len(image, 2, 0);

  IngestPolicy one_error;
  one_error.max_errors = 1;
  auto stream = PcapStream::from_memory(image, one_error);
  ASSERT_TRUE(stream.ok());
  // Records 0,1 read clean, 2 is resynced over, 3,4 read clean, then the
  // second corruption exhausts the budget and the tail is dropped.
  EXPECT_EQ(drain_count(stream.value()), 4u);
  const IngestDiagnostics& diag = stream.value().diagnostics();
  EXPECT_EQ(diag.resynced, 1u);
  EXPECT_TRUE(diag.budget_exhausted);
}

TEST(PcapStreamResync, TruncatedBodyAtEofCountsTruncated) {
  auto image = serialize_pcap(spaced_capture(3));
  image.resize(image.size() - 7);  // cut into the last record's body

  auto stream = PcapStream::from_memory(image);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(drain_count(stream.value()), 2u);
  const IngestDiagnostics& diag = stream.value().diagnostics();
  EXPECT_EQ(diag.truncated, 1u);
  EXPECT_EQ(diag.resynced, 0u);
}

TEST(PcapStreamResync, HugeClaimedRecordDoesNotOverAllocate) {
  // A record claiming ~2 GiB must not make the reader allocate ~2 GiB: the
  // arena is bounded by what the source holds. With a generous snaplen the
  // claim passes the header check and dies at the truncated-body check.
  ByteWriter w;
  w.u32le(0xa1b2c3d4);
  w.u16le(2);
  w.u16le(4);
  w.u32le(0);
  w.u32le(0);
  w.u32le(0xffffffff);  // snaplen: anything goes
  w.u32le(1);
  w.u32le(0);           // ts sec
  w.u32le(0);           // ts usec
  w.u32le(0x7fffff00);  // incl_len: ~2 GiB that isn't there
  w.u32le(0x7fffff00);
  w.u32le(0xab);        // a few bytes of "body"
  auto stream = PcapStream::from_memory(w.data());
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(drain_count(stream.value()), 0u);
  EXPECT_EQ(stream.value().diagnostics().truncated, 1u);
}

TEST(PcapFile, ParseRejectsZeroInclLen) {
  auto image = serialize_pcap(spaced_capture(4));
  overwrite_incl_len(image, 1, 0);
  const auto parsed = parse_pcap(image);
  ASSERT_TRUE(parsed.ok());
  // Drop-tail semantics: everything before the corrupt header survives.
  EXPECT_EQ(parsed.value().records.size(), 1u);
  EXPECT_EQ(parsed.value().ingest.truncated, 1u);
}

TEST(PcapFile, ParseRejectsInclLenBeyondSnaplen) {
  auto image = serialize_pcap(spaced_capture(4));
  overwrite_incl_len(image, 1, 70000);  // over the serialized 65535 snaplen
  const auto parsed = parse_pcap(image);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().records.size(), 1u);
  EXPECT_EQ(parsed.value().ingest.truncated, 1u);
}

}  // namespace
}  // namespace tdat
