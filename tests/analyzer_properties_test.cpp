// Property tests over the whole pipeline: invariants that must hold for ANY
// scenario — bounded ratios, series containment, window consistency, MCT
// sanity — swept across the scenario x seed grid.
#include <gtest/gtest.h>

#include "core/series_names.hpp"
#include "sim_scenarios.hpp"

namespace tdat {
namespace {

enum class Kind {
  kBaseline,
  kTimer,
  kSmallWindow,
  kSlowCollector,
  kLossyUpstream,
  kLocalLoss,
  kProbeBug,
};

SessionSpec spec_for(Kind kind) {
  switch (kind) {
    case Kind::kBaseline: return SessionSpec{};
    case Kind::kTimer: return test::timer_paced_sender();
    case Kind::kSmallWindow: return test::small_window_path();
    case Kind::kSlowCollector: return test::slow_collector();
    case Kind::kLossyUpstream: return test::lossy_upstream();
    case Kind::kLocalLoss: return test::receiver_local_loss();
    case Kind::kProbeBug: return test::zero_ack_bug();
  }
  return SessionSpec{};
}

class PipelineProperties
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(PipelineProperties, InvariantsHold) {
  const auto kind = static_cast<Kind>(std::get<0>(GetParam()));
  const std::uint64_t seed = 7000 + std::get<1>(GetParam());
  const auto run = test::run_single(spec_for(kind), 2500, seed);
  ASSERT_TRUE(run.finished);
  const auto a = test::analyze_single(run);

  // 1. The transfer window lies within the capture.
  ASSERT_FALSE(a.transfer.empty());
  const Micros first_pkt = run.trace.records.front().ts;
  const Micros last_pkt = run.trace.records.back().ts;
  EXPECT_GE(a.transfer.begin, first_pkt);
  EXPECT_LE(a.transfer.end, last_pkt + kMicrosPerSec);

  // 2. Every ratio is a fraction; group >= max of its members; group <= sum.
  for (std::size_t g = 0; g < kGroupCount; ++g) {
    const auto group = static_cast<FactorGroup>(g);
    EXPECT_GE(a.report.group_ratio[g], 0.0);
    EXPECT_LE(a.report.group_ratio[g], 1.0 + 1e-9);
    double max_member = 0.0, sum_members = 0.0;
    for (Factor f : factors_in(group)) {
      const double r = a.report.ratio(f);
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0 + 1e-9);
      max_member = std::max(max_member, r);
    }
    // factors_in pads the network group with a duplicate; sum distinct only.
    for (std::size_t i = 0; i < kFactorCount; ++i) {
      if (group_of(static_cast<Factor>(i)) == group) {
        sum_members += a.report.factor_ratio[i];
      }
    }
    EXPECT_GE(a.report.group_ratio[g] + 1e-9, max_member);
    EXPECT_LE(a.report.group_ratio[g], sum_members + 1e-9);
  }

  // 3. MCT collected exactly the generated table.
  EXPECT_EQ(a.mct.prefix_count, 2500u);

  // 4. Derived series are contained in their parents.
  const auto& reg = a.series();
  EXPECT_TRUE(reg.get(series::kZeroAdvWindow)
                  .ranges()
                  .set_difference(reg.get(series::kSmallAdvWindow).ranges())
                  .empty());
  EXPECT_TRUE(reg.get(series::kUpstreamLoss)
                  .ranges()
                  .set_difference(reg.get(series::kLossRecovery).ranges())
                  .empty());
  EXPECT_TRUE(reg.get(series::kDownstreamLoss)
                  .ranges()
                  .set_difference(reg.get(series::kLossRecovery).ranges())
                  .empty());
  EXPECT_TRUE(reg.get(series::kAdvBndOut)
                  .ranges()
                  .set_difference(reg.get(series::kWindowLimited).ranges())
                  .empty());

  // 5. SendAppLimited never overlaps Outstanding (by construction) and
  //    never overlaps loss recovery.
  EXPECT_TRUE(reg.get(series::kSendAppLimited)
                  .ranges()
                  .set_intersection(reg.get(series::kOutstanding).ranges())
                  .empty());
  EXPECT_TRUE(reg.get(series::kSendAppLimited)
                  .ranges()
                  .set_intersection(reg.get(series::kRetransmission).ranges())
                  .empty());

  // 6. The retransmission series carries exactly the classifier's counts.
  const auto& flow = a.bundle.flow;
  EXPECT_EQ(reg.get(series::kRetransmission).count(),
            flow.count(DataLabel::kRetransmitUpstream) +
                flow.count(DataLabel::kRetransmitDownstream));
}

INSTANTIATE_TEST_SUITE_P(Grid, PipelineProperties,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace tdat
