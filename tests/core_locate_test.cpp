#include "core/locate.hpp"

#include <gtest/gtest.h>

#include "sim_scenarios.hpp"

namespace tdat {
namespace {

SnifferLocationEstimate run_and_locate(Micros up_one_way, Micros down_one_way,
                                       std::uint64_t seed) {
  SimWorld world(seed);
  SessionSpec spec;
  spec.up_fwd.propagation_delay = up_one_way;
  spec.up_rev.propagation_delay = up_one_way;
  spec.down_fwd.propagation_delay = down_one_way;
  spec.down_rev.propagation_delay = down_one_way;
  // A bounded window keeps the ACK clock engaged so d2 samples are tight.
  spec.receiver_tcp.recv_buf_capacity = 16 * 1024;
  const auto s = world.add_session(spec, test::table_messages(3000, seed ^ 1));
  world.start_session(s, 0);
  world.run_until(300 * kMicrosPerSec);
  const auto conns = split_connections(decode_pcap(world.take_trace()));
  EXPECT_EQ(conns.size(), 1u);
  return infer_sniffer_location(conns[0], compute_profile(conns[0]));
}

TEST(Locate, CollectorSideDeployment) {
  // The paper's Fig. 2 setup: wide area upstream, sniffer on the receiver's
  // doorstep.
  const auto est = run_and_locate(10 * kMicrosPerMilli, 50, 61);
  ASSERT_GT(est.d1, 0);
  ASSERT_GT(est.d2, 0);
  EXPECT_LT(est.d1, est.d2 / 4);
  EXPECT_TRUE(est.confident);
  EXPECT_EQ(est.location, SnifferLocation::kNearReceiver);
}

TEST(Locate, SenderSideDeployment) {
  const auto est = run_and_locate(50, 10 * kMicrosPerMilli, 62);
  EXPECT_TRUE(est.confident);
  EXPECT_EQ(est.location, SnifferLocation::kNearSender);
}

TEST(Locate, MidPathDeployment) {
  const auto est = run_and_locate(5 * kMicrosPerMilli, 5 * kMicrosPerMilli, 63);
  EXPECT_TRUE(est.confident);
  EXPECT_EQ(est.location, SnifferLocation::kMiddle);
}

TEST(Locate, NoDataNoConfidence) {
  Connection conn;
  const auto est = infer_sniffer_location(conn, ConnectionProfile{});
  EXPECT_FALSE(est.confident);
  EXPECT_EQ(est.location, SnifferLocation::kMiddle);
}

}  // namespace
}  // namespace tdat
