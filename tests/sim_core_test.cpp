#include <gtest/gtest.h>

#include "sim/link.hpp"
#include "sim/scheduler.hpp"
#include "sim/sim_packet.hpp"

namespace tdat {
namespace {

TEST(Scheduler, FifoAtEqualTimes) {
  Scheduler s;
  std::vector<int> order;
  s.at(10, [&] { order.push_back(1); });
  s.at(10, [&] { order.push_back(2); });
  s.at(5, [&] { order.push_back(0); });
  s.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(s.now(), 10);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler s;
  int fired = 0;
  s.at(10, [&] { ++fired; });
  s.at(20, [&] { ++fired; });
  s.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 15);
  s.run_until(20);  // events exactly at the boundary run
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, CallbackSchedulesMore) {
  Scheduler s;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) s.after(10, tick);
  };
  s.after(0, tick);
  s.run_to_completion();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), 40);
}

SimPacket make_test_packet(std::size_t payload_len) {
  std::vector<std::uint8_t> payload(payload_len, 0x77);
  TcpSegmentSpec spec;
  spec.src_ip = 1;
  spec.dst_ip = 2;
  spec.src_port = 10;
  spec.dst_port = 20;
  spec.flags = {.ack = true};
  spec.payload = payload;
  return make_sim_packet(spec);
}

TEST(SimPacket, MirrorsSpec) {
  const SimPacket p = make_test_packet(100);
  EXPECT_EQ(p.payload_len, 100u);
  EXPECT_EQ(p.payload()[0], 0x77);
  EXPECT_EQ(p.wire_size(), 14u + 20 + 20 + 100);
  EXPECT_TRUE(p.flags.ack);
}

TEST(Link, DeliversWithPropagationDelay) {
  Scheduler s;
  LinkConfig cfg;
  cfg.propagation_delay = 500;
  Link link(s, cfg, Rng(1));
  Micros arrival = -1;
  link.send(make_test_packet(10), [&](SimPacket) { arrival = s.now(); });
  s.run_to_completion();
  EXPECT_EQ(arrival, 500);
  EXPECT_EQ(link.stats().delivered, 1u);
}

TEST(Link, SerializationPacing) {
  Scheduler s;
  LinkConfig cfg;
  cfg.propagation_delay = 0;
  cfg.rate_bytes_per_sec = 1'000'000;  // 1 MB/s
  Link link(s, cfg, Rng(1));
  std::vector<Micros> arrivals;
  const SimPacket p = make_test_packet(946);  // 1000 wire bytes -> 1 ms each
  for (int i = 0; i < 3; ++i) {
    link.send(p, [&](SimPacket) { arrivals.push_back(s.now()); });
  }
  s.run_to_completion();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], 1000);
  EXPECT_EQ(arrivals[1], 2000);
  EXPECT_EQ(arrivals[2], 3000);
}

TEST(Link, TailDropWhenQueueFull) {
  Scheduler s;
  LinkConfig cfg;
  cfg.propagation_delay = 0;
  cfg.rate_bytes_per_sec = 1'000'000;
  cfg.queue_packets = 2;
  Link link(s, cfg, Rng(1));
  int delivered = 0;
  const SimPacket p = make_test_packet(986);
  for (int i = 0; i < 5; ++i) {
    link.send(p, [&](SimPacket) { ++delivered; });
  }
  s.run_to_completion();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.stats().dropped_queue, 3u);
}

TEST(Link, QueueDrainsOverTime) {
  Scheduler s;
  LinkConfig cfg;
  cfg.propagation_delay = 0;
  cfg.rate_bytes_per_sec = 1'000'000;
  cfg.queue_packets = 1;
  Link link(s, cfg, Rng(1));
  int delivered = 0;
  const SimPacket p = make_test_packet(986);
  link.send(p, [&](SimPacket) { ++delivered; });
  s.run_until(2000);  // first packet fully serialized
  link.send(p, [&](SimPacket) { ++delivered; });
  s.run_to_completion();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.stats().dropped_queue, 0u);
}

TEST(Link, RandomLossDropsSome) {
  Scheduler s;
  LinkConfig cfg;
  cfg.random_loss = 0.5;
  Link link(s, cfg, Rng(42));
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    link.send(make_test_packet(1), [&](SimPacket) { ++delivered; });
  }
  s.run_to_completion();
  EXPECT_GT(delivered, 50);
  EXPECT_LT(delivered, 150);
  EXPECT_EQ(link.stats().delivered + link.stats().dropped_random, 200u);
}

}  // namespace
}  // namespace tdat
