// Unit tests of the simulated TCP endpoint: a pair of endpoints wired
// through a controllable "wire" that can delay, drop, and count packets.
#include "sim/tcp_endpoint.hpp"

#include <gtest/gtest.h>

#include <functional>

namespace tdat {
namespace {

class SinkApp : public TcpApp {
 public:
  void on_connected() override { connected = true; }
  void on_reset() override { reset = true; }
  bool connected = false;
  bool reset = false;
};

// Reads everything as soon as it arrives.
class EagerReader : public SinkApp {
 public:
  explicit EagerReader(TcpEndpoint** ep) : ep_(ep) {}
  void on_data_available() override {
    const auto bytes = (*ep_)->read((*ep_)->available());
    received.insert(received.end(), bytes.begin(), bytes.end());
  }
  std::vector<std::uint8_t> received;

 private:
  TcpEndpoint** ep_;
};

struct Wire {
  Scheduler sched;
  Micros one_way = 5 * kMicrosPerMilli;
  // Returns true to drop the nth sender->receiver data packet (1-based count
  // of payload-carrying segments).
  std::function<bool(const SimPacket&, int)> drop_fn;

  TcpConfig sender_cfg() {
    TcpConfig c;
    c.ip = 1;
    c.port = 100;
    c.isn = 1000;
    return c;
  }
  TcpConfig receiver_cfg() {
    TcpConfig c;
    c.ip = 2;
    c.port = 179;
    c.isn = 5000;
    return c;
  }

  void connect(TcpEndpoint& a, TcpEndpoint& b) {
    a.set_output([this, &b](SimPacket p) {
      if (p.payload_len > 0) {
        ++data_count;
        if (drop_fn && drop_fn(p, data_count)) {
          ++dropped;
          return;
        }
      }
      ++forward_packets;
      sched.after(one_way, [&b, p = std::move(p)] { b.on_segment(p); });
    });
    b.set_output([this, &a](SimPacket p) {
      ++reverse_packets;
      sched.after(one_way, [&a, p = std::move(p)] { a.on_segment(p); });
    });
  }

  int data_count = 0;
  int dropped = 0;
  int forward_packets = 0;
  int reverse_packets = 0;
};

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i * 131 + 7);
  return out;
}

TEST(SimTcp, HandshakeEstablishesBothSides) {
  Wire w;
  SinkApp sender_app;
  TcpEndpoint* rep = nullptr;
  EagerReader receiver_app(&rep);
  TcpEndpoint sender(w.sched, w.sender_cfg(), &sender_app, "s");
  TcpEndpoint receiver(w.sched, w.receiver_cfg(), &receiver_app, "r");
  rep = &receiver;
  w.connect(sender, receiver);
  receiver.listen(1, 100);
  sender.connect(2, 179);
  w.sched.run_until(kMicrosPerSec);
  EXPECT_TRUE(sender.established());
  EXPECT_TRUE(receiver.established());
  EXPECT_TRUE(sender_app.connected);
  EXPECT_TRUE(receiver_app.connected);
}

TEST(SimTcp, LosslessBulkTransferIntact) {
  Wire w;
  SinkApp sender_app;
  TcpEndpoint* rep = nullptr;
  EagerReader receiver_app(&rep);
  TcpEndpoint sender(w.sched, w.sender_cfg(), &sender_app, "s");
  TcpEndpoint receiver(w.sched, w.receiver_cfg(), &receiver_app, "r");
  rep = &receiver;
  w.connect(sender, receiver);
  receiver.listen(1, 100);
  sender.connect(2, 179);
  w.sched.run_until(kMicrosPerSec);

  const auto data = pattern(200'000);
  std::size_t written = 0;
  // Feed the send buffer as space frees up.
  std::function<void()> feeder = [&] {
    written += sender.send(std::span(data).subspan(written));
    if (written < data.size()) w.sched.after(kMicrosPerMilli, feeder);
  };
  feeder();
  w.sched.run_until(60 * kMicrosPerSec);

  EXPECT_EQ(receiver_app.received, data);
  EXPECT_EQ(sender.retransmit_count(), 0u);
  EXPECT_EQ(sender.bytes_acked(), static_cast<std::int64_t>(data.size()));
}

TEST(SimTcp, RecoversFromSingleLossViaFastRetransmit) {
  Wire w;
  w.drop_fn = [](const SimPacket&, int n) { return n == 20; };
  SinkApp sender_app;
  TcpEndpoint* rep = nullptr;
  EagerReader receiver_app(&rep);
  TcpEndpoint sender(w.sched, w.sender_cfg(), &sender_app, "s");
  TcpEndpoint receiver(w.sched, w.receiver_cfg(), &receiver_app, "r");
  rep = &receiver;
  w.connect(sender, receiver);
  receiver.listen(1, 100);
  sender.connect(2, 179);
  w.sched.run_until(kMicrosPerSec);

  const auto data = pattern(120'000);
  std::size_t written = 0;
  std::function<void()> feeder = [&] {
    written += sender.send(std::span(data).subspan(written));
    if (written < data.size()) w.sched.after(kMicrosPerMilli, feeder);
  };
  feeder();
  const Micros start = w.sched.now();
  w.sched.run_until(120 * kMicrosPerSec);

  EXPECT_EQ(receiver_app.received, data);
  EXPECT_GE(sender.retransmit_count(), 1u);
  // Fast retransmit means recovery well under an RTO (min_rto = 300 ms);
  // the whole 120 KB at ~10 ms RTT should take way under 3 s.
  EXPECT_TRUE(sender_app.connected);
  EXPECT_LT(w.sched.now() - start, 200 * kMicrosPerSec);  // sanity
}

TEST(SimTcp, RecoversFromBurstLoss) {
  Wire w;
  w.drop_fn = [](const SimPacket&, int n) { return n >= 15 && n < 27; };
  SinkApp sender_app;
  TcpEndpoint* rep = nullptr;
  EagerReader receiver_app(&rep);
  TcpEndpoint sender(w.sched, w.sender_cfg(), &sender_app, "s");
  TcpEndpoint receiver(w.sched, w.receiver_cfg(), &receiver_app, "r");
  rep = &receiver;
  w.connect(sender, receiver);
  receiver.listen(1, 100);
  sender.connect(2, 179);
  w.sched.run_until(kMicrosPerSec);

  const auto data = pattern(150'000);
  std::size_t written = 0;
  std::function<void()> feeder = [&] {
    written += sender.send(std::span(data).subspan(written));
    if (written < data.size()) w.sched.after(kMicrosPerMilli, feeder);
  };
  feeder();
  w.sched.run_until(300 * kMicrosPerSec);
  EXPECT_EQ(receiver_app.received, data);
  EXPECT_GE(sender.retransmit_count(), 10u);
}

TEST(SimTcp, SlowReaderForcesZeroWindowAndRecovers) {
  Wire w;
  SinkApp sender_app;
  SinkApp receiver_holder;  // never reads on its own
  TcpConfig rcfg = w.receiver_cfg();
  rcfg.recv_buf_capacity = 8 * 1024;
  TcpEndpoint sender(w.sched, w.sender_cfg(), &sender_app, "s");
  TcpEndpoint receiver(w.sched, rcfg, &receiver_holder, "r");
  w.connect(sender, receiver);
  receiver.listen(1, 100);
  sender.connect(2, 179);
  w.sched.run_until(kMicrosPerSec);

  const auto data = pattern(40'000);
  std::size_t written = 0;
  std::function<void()> feeder = [&] {
    written += sender.send(std::span(data).subspan(written));
    if (written < data.size()) w.sched.after(kMicrosPerMilli, feeder);
  };
  feeder();
  // Reader drains slowly: 2 KB every 50 ms.
  std::vector<std::uint8_t> received;
  std::function<void()> reader = [&] {
    const auto bytes = receiver.read(2048);
    received.insert(received.end(), bytes.begin(), bytes.end());
    if (received.size() < data.size()) w.sched.after(50 * kMicrosPerMilli, reader);
  };
  w.sched.after(50 * kMicrosPerMilli, reader);
  w.sched.run_until(30 * 60 * kMicrosPerSec);

  EXPECT_EQ(received, data);
}

TEST(SimTcp, DiesSilently) {
  Wire w;
  SinkApp sender_app;
  TcpEndpoint* rep = nullptr;
  EagerReader receiver_app(&rep);
  TcpEndpoint sender(w.sched, w.sender_cfg(), &sender_app, "s");
  TcpEndpoint receiver(w.sched, w.receiver_cfg(), &receiver_app, "r");
  rep = &receiver;
  w.connect(sender, receiver);
  receiver.listen(1, 100);
  sender.connect(2, 179);
  w.sched.run_until(kMicrosPerSec);

  receiver.die();
  const auto data = pattern(5'000);
  (void)sender.send(data);
  const auto before = w.reverse_packets;
  w.sched.run_until(10 * kMicrosPerSec);
  EXPECT_EQ(w.reverse_packets, before);        // dead peer says nothing
  EXPECT_GE(sender.retransmit_count(), 2u);    // sender keeps RTO-retrying
  EXPECT_GT(sender.current_rto(), kMicrosPerSec);  // with backoff
}

TEST(SimTcp, AbortSendsRst) {
  Wire w;
  SinkApp sender_app;
  TcpEndpoint* rep = nullptr;
  EagerReader receiver_app(&rep);
  TcpEndpoint sender(w.sched, w.sender_cfg(), &sender_app, "s");
  TcpEndpoint receiver(w.sched, w.receiver_cfg(), &receiver_app, "r");
  rep = &receiver;
  w.connect(sender, receiver);
  receiver.listen(1, 100);
  sender.connect(2, 179);
  w.sched.run_until(kMicrosPerSec);

  sender.abort();
  w.sched.run_until(2 * kMicrosPerSec);
  EXPECT_TRUE(sender.closed());
  EXPECT_TRUE(receiver_app.reset);
}

TEST(SimTcp, CwndGrowsInSlowStart) {
  Wire w;
  SinkApp sender_app;
  TcpEndpoint* rep = nullptr;
  EagerReader receiver_app(&rep);
  TcpEndpoint sender(w.sched, w.sender_cfg(), &sender_app, "s");
  TcpEndpoint receiver(w.sched, w.receiver_cfg(), &receiver_app, "r");
  rep = &receiver;
  w.connect(sender, receiver);
  receiver.listen(1, 100);
  sender.connect(2, 179);
  w.sched.run_until(kMicrosPerSec);
  const auto initial_cwnd = sender.cwnd();

  const auto data = pattern(100'000);
  std::size_t written = 0;
  std::function<void()> feeder = [&] {
    written += sender.send(std::span(data).subspan(written));
    if (written < data.size()) w.sched.after(kMicrosPerMilli, feeder);
  };
  feeder();
  w.sched.run_until(60 * kMicrosPerSec);
  EXPECT_GT(sender.cwnd(), initial_cwnd);
  EXPECT_EQ(receiver_app.received.size(), data.size());
}

TEST(SimTcp, WindowScaleCarriesLargeWindows) {
  Wire w;
  SinkApp sender_app;
  TcpEndpoint* rep = nullptr;
  EagerReader receiver_app(&rep);
  TcpConfig scfg = w.sender_cfg();
  scfg.window_scale = 2;
  TcpConfig rcfg = w.receiver_cfg();
  rcfg.recv_buf_capacity = 256 * 1024;
  rcfg.window_scale = 2;
  TcpEndpoint sender(w.sched, scfg, &sender_app, "s");
  TcpEndpoint receiver(w.sched, rcfg, &receiver_app, "r");
  rep = &receiver;
  w.connect(sender, receiver);
  receiver.listen(1, 100);
  sender.connect(2, 179);
  w.sched.run_until(kMicrosPerSec);

  const auto data = pattern(300'000);
  std::size_t written = 0;
  std::function<void()> feeder = [&] {
    written += sender.send(std::span(data).subspan(written));
    if (written < data.size()) w.sched.after(kMicrosPerMilli, feeder);
  };
  feeder();
  w.sched.run_until(120 * kMicrosPerSec);
  EXPECT_EQ(receiver_app.received, data);
}

}  // namespace
}  // namespace tdat
