// Robustness: the analyzer is built for real-world captures, which contain
// garbage, truncation, and protocol corner cases. Nothing here may crash,
// assert, or hang — malformed input must degrade to empty/partial results.
#include <gtest/gtest.h>

#include <random>

#include "core/analyzer.hpp"
#include "core/detectors.hpp"
#include "helpers.hpp"
#include "sim_scenarios.hpp"

namespace tdat {
namespace {

using test::PacketFactory;

TEST(Robustness, RandomBytesAsPcap) {
  std::mt19937 rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> junk(static_cast<std::size_t>(rng() % 4096));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    const auto parsed = parse_pcap(junk);
    if (parsed.ok()) {
      // Valid-looking header by chance: analysis must still be safe.
      (void)analyze_trace(parsed.value(), AnalyzerOptions{});
    }
  }
}

TEST(Robustness, ValidHeaderRandomRecords) {
  std::mt19937 rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    PcapFile file;
    const int n = 1 + static_cast<int>(rng() % 20);
    for (int i = 0; i < n; ++i) {
      PcapRecord rec;
      rec.ts = static_cast<Micros>(rng() % 1'000'000);
      rec.data.resize(rng() % 200);
      for (auto& b : rec.data) b = static_cast<std::uint8_t>(rng());
      rec.orig_len = static_cast<std::uint32_t>(rec.data.size());
      file.records.push_back(std::move(rec));
    }
    const auto round = parse_pcap(serialize_pcap(file));
    ASSERT_TRUE(round.ok());
    (void)analyze_trace(round.value(), AnalyzerOptions{});
  }
}

TEST(Robustness, CorruptedRealTraceStillAnalyzes) {
  auto run = test::run_single(SessionSpec{}, 1000, 91);
  std::mt19937 rng(3);
  // Flip bytes in a tenth of the records (checksums NOT verified by
  // default, as with most tcpdump workflows).
  for (auto& rec : run.trace.records) {
    if (rng() % 10 == 0 && !rec.data.empty()) {
      rec.data[rng() % rec.data.size()] ^= static_cast<std::uint8_t>(1 + rng() % 255);
    }
  }
  const auto ta = analyze_trace(run.trace, AnalyzerOptions{});
  // Corruption may split/garble connections; analysis must simply survive
  // and produce bounded ratios.
  for (const auto& a : ta.results) {
    for (double r : a.report.factor_ratio) {
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0 + 1e-9);
    }
    (void)detect_timer_gaps(a.series(), a.transfer);
    (void)detect_consecutive_losses(a.series(), a.transfer);
    (void)detect_zero_ack_bug(a.series(), a.transfer);
    (void)detect_peer_group_pause(a);
  }
}

TEST(Robustness, ChecksumVerificationDropsCorruptPackets) {
  auto run = test::run_single(SessionSpec{}, 500, 92);
  const std::size_t total = run.trace.records.size();
  for (std::size_t i = 0; i < run.trace.records.size(); i += 4) {
    auto& data = run.trace.records[i].data;
    if (!data.empty()) data.back() ^= 0xff;
  }
  AnalyzerOptions opts;
  opts.verify_checksums = true;
  const auto pkts = decode_pcap(run.trace, true);
  EXPECT_LT(pkts.size(), total);
  EXPECT_GT(pkts.size(), total / 2);
  (void)analyze_packets(pkts, opts);
}

TEST(Robustness, RstOnlyConnection) {
  PacketFactory f;
  TcpSegmentSpec spec;
  spec.src_ip = test::kSenderIp;
  spec.dst_ip = test::kReceiverIp;
  spec.src_port = test::kSenderPort;
  spec.dst_port = 179;
  spec.seq = 1;
  spec.flags = {.rst = true};
  std::vector<DecodedPacket> trace = {test::make_packet(0, 0, spec)};
  const auto ta = analyze_packets(trace, AnalyzerOptions{});
  ASSERT_EQ(ta.results.size(), 1u);
  EXPECT_TRUE(ta.results[0].transfer.empty());
}

TEST(Robustness, HalfOpenHandshakeOnly) {
  PacketFactory f;
  auto hs = f.handshake(0, 10'000);
  hs.pop_back();  // SYN + SYN/ACK, no final ACK
  const auto ta = analyze_packets(hs, AnalyzerOptions{});
  ASSERT_EQ(ta.results.size(), 1u);
  EXPECT_TRUE(ta.results[0].messages.empty());
}

TEST(Robustness, NonBgpPayloadYieldsNoTransfer) {
  PacketFactory f;
  std::vector<DecodedPacket> trace;
  // 10 KB of data that is not BGP-framed at all.
  for (int i = 0; i < 10; ++i) trace.push_back(f.data(i * 1000, i * 1024, 1024));
  const auto ta = analyze_packets(trace, AnalyzerOptions{});
  ASSERT_EQ(ta.results.size(), 1u);
  EXPECT_EQ(ta.results[0].mct.update_count, 0u);
  EXPECT_TRUE(ta.results[0].transfer.empty());
}

TEST(Robustness, GiantGapsDontOverflow) {
  PacketFactory f;
  std::vector<DecodedPacket> trace;
  trace.push_back(f.data(0, 0, 100));
  // Nearly 50 days later (microseconds still fit easily in int64).
  trace.push_back(f.data(4'000'000'000'000LL, 100, 100));
  const auto ta = analyze_packets(trace, AnalyzerOptions{});
  ASSERT_EQ(ta.results.size(), 1u);
  for (double r : ta.results[0].report.factor_ratio) {
    EXPECT_GE(r, 0.0);
  }
}

TEST(Robustness, AnalysisIsDeterministic) {
  const auto run = test::run_single(test::slow_collector(), 1500, 93);
  const auto a1 = analyze_trace(run.trace, AnalyzerOptions{});
  const auto a2 = analyze_trace(run.trace, AnalyzerOptions{});
  ASSERT_EQ(a1.results.size(), a2.results.size());
  for (std::size_t i = 0; i < a1.results.size(); ++i) {
    EXPECT_EQ(a1.results[i].transfer, a2.results[i].transfer);
    for (std::size_t fidx = 0; fidx < kFactorCount; ++fidx) {
      EXPECT_EQ(a1.results[i].report.factor_delay[fidx],
                a2.results[i].report.factor_delay[fidx]);
    }
  }
}

TEST(Robustness, SerializeParseAnalyzeRoundTrip) {
  const auto run = test::run_single(test::lossy_upstream(0.02), 2000, 94);
  const auto direct = analyze_trace(run.trace, AnalyzerOptions{});
  const auto round = parse_pcap(serialize_pcap(run.trace));
  ASSERT_TRUE(round.ok());
  const auto via_disk = analyze_trace(round.value(), AnalyzerOptions{});
  ASSERT_EQ(direct.results.size(), via_disk.results.size());
  for (std::size_t i = 0; i < direct.results.size(); ++i) {
    EXPECT_EQ(direct.results[i].transfer, via_disk.results[i].transfer);
    EXPECT_EQ(direct.results[i].mct.prefix_count,
              via_disk.results[i].mct.prefix_count);
  }
}

}  // namespace
}  // namespace tdat
