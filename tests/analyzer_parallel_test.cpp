// Determinism and equivalence guarantees of the parallel streaming pipeline:
//  - analyze_trace at jobs=N is bit-identical to jobs=1 on multi-session
//    traces (including lossy and peer-group scenarios),
//  - the streaming pcap reader yields exactly what parse_pcap yields on
//    µs/ns fixtures of both endiannesses, at any chunk size,
//  - analyze_file (streaming ingest) equals analyze_trace (in-memory),
//  - ConnectionDemux fed incrementally equals batch split_connections,
//  - the thread-pool primitives behave (coverage, exceptions, TDAT_JOBS).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "core/export.hpp"
#include "helpers.hpp"
#include "pcap/pcap_stream.hpp"
#include "sim/peer_group.hpp"
#include "sim_scenarios.hpp"
#include "tcp/connection.hpp"
#include "util/bytes.hpp"
#include "util/thread_pool.hpp"

namespace tdat {
namespace {

// Several sessions with different injected bottlenecks in one capture, so
// per-connection analysis cost is uneven across workers.
PcapFile multi_session_trace(std::size_t sessions, std::uint64_t seed) {
  SimWorld world(seed);
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < sessions; ++i) {
    SessionSpec spec;
    switch (i % 5) {
      case 0: break;  // baseline
      case 1: spec = test::timer_paced_sender(); break;
      case 2: spec = test::lossy_upstream(0.01); break;
      case 3: spec = test::slow_collector(); break;
      case 4: spec = test::small_window_path(); break;
    }
    ids.push_back(world.add_session(
        spec, test::table_messages(1'000, seed ^ (0x100 + i))));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    world.start_session(ids[i], static_cast<Micros>(i) * 30 * kMicrosPerMilli);
  }
  world.run_until(900 * kMicrosPerSec);
  return world.take_trace();
}

// Fig. 9 shape: two sessions share a peer group, one collector dies, plus a
// lossy independent session — connection count 3, very uneven work.
PcapFile peer_group_trace(std::uint64_t seed) {
  SimWorld world(seed);
  Rng rng(seed + 1);
  TableGenConfig tg;
  tg.prefix_count = 4'000;
  PeerGroup group(serialize_updates(generate_table(tg, rng)), 40);

  SessionSpec healthy;
  SessionSpec doomed;
  doomed.receiver_ip = 0x0a09090a;
  healthy.bgp.hold_time = 180 * kMicrosPerSec;
  doomed.bgp.hold_time = 180 * kMicrosPerSec;
  healthy.bgp.keepalive_interval = 30 * kMicrosPerSec;
  doomed.bgp.keepalive_interval = 30 * kMicrosPerSec;
  healthy.collector.keepalive_interval = 30 * kMicrosPerSec;
  doomed.collector.keepalive_interval = 30 * kMicrosPerSec;
  doomed.sender_tcp.send_buf_capacity = 8 * 1024;
  const auto a_id = world.add_session(healthy, &group);
  const auto b_id = world.add_session(doomed, &group);
  SessionSpec lossy = test::lossy_upstream(0.02);
  lossy.receiver_ip = 0x0a09090b;
  const auto c_id =
      world.add_session(lossy, test::table_messages(1'000, seed ^ 0x77));
  world.start_session(a_id, 0);
  world.start_session(b_id, 0);
  world.start_session(c_id, 0);
  world.run_until(kMicrosPerSec);
  world.receiver(b_id).die();
  world.run_until(600 * kMicrosPerSec);
  return world.take_trace();
}

// Bit-identity check: every observable analysis output must match, not just
// be close. Doubles are compared exactly — both runs execute the same
// arithmetic on the same inputs.
void expect_identical(const TraceAnalysis& a, const TraceAnalysis& b) {
  ASSERT_EQ(a.connections.size(), b.connections.size());
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    SCOPED_TRACE("connection " + std::to_string(i));
    const ConnectionAnalysis& ra = a.results[i];
    const ConnectionAnalysis& rb = b.results[i];
    EXPECT_EQ(ra.conn_index, rb.conn_index);
    EXPECT_EQ(ra.key, rb.key);
    EXPECT_EQ(a.connections[i].packets.size(), b.connections[i].packets.size());

    // Transfer range and MCT.
    EXPECT_EQ(ra.transfer.begin, rb.transfer.begin);
    EXPECT_EQ(ra.transfer.end, rb.transfer.end);
    EXPECT_EQ(ra.mct.end, rb.mct.end);
    EXPECT_EQ(ra.mct.update_count, rb.mct.update_count);
    EXPECT_EQ(ra.mct.prefix_count, rb.mct.prefix_count);

    // DelayReport, factor by factor.
    for (std::size_t fi = 0; fi < kFactorCount; ++fi) {
      EXPECT_EQ(ra.report.factor_ratio[fi], rb.report.factor_ratio[fi]);
      EXPECT_EQ(ra.report.factor_delay[fi], rb.report.factor_delay[fi]);
    }
    for (std::size_t g = 0; g < kGroupCount; ++g) {
      EXPECT_EQ(ra.report.group_ratio[g], rb.report.group_ratio[g]);
      EXPECT_EQ(ra.report.group_delay[g], rb.report.group_delay[g]);
      EXPECT_EQ(ra.report.group_major[g], rb.report.group_major[g]);
    }

    // Extracted messages.
    ASSERT_EQ(ra.messages.size(), rb.messages.size());
    for (std::size_t m = 0; m < ra.messages.size(); ++m) {
      EXPECT_EQ(ra.messages[m].ts, rb.messages[m].ts);
      EXPECT_EQ(ra.messages[m].end_offset, rb.messages[m].end_offset);
    }

    // Every series, event by event (Event has operator==).
    const auto names_a = ra.series().names();
    const auto names_b = rb.series().names();
    ASSERT_EQ(names_a, names_b);
    for (const std::string& name : names_a) {
      SCOPED_TRACE("series " + name);
      EXPECT_EQ(ra.series().get(name).events(), rb.series().get(name).events());
    }

    // Catch-all over profile and anything the field checks missed: the JSON
    // export must be byte-identical.
    EXPECT_EQ(analysis_to_json(ra), analysis_to_json(rb));
    EXPECT_EQ(registry_to_json(ra.series()), registry_to_json(rb.series()));
  }
}

TraceAnalysis analyze_with_jobs(const PcapFile& trace, std::size_t jobs) {
  AnalyzerOptions opts;
  opts.jobs = jobs;
  return analyze_trace(trace, opts);
}

TEST(ParallelAnalyzer, MultiSessionIdenticalAcrossJobCounts) {
  const PcapFile trace = multi_session_trace(6, 31337);
  const TraceAnalysis serial = analyze_with_jobs(trace, 1);
  ASSERT_GE(serial.results.size(), 6u);
  for (const std::size_t jobs : {2, 8}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    expect_identical(serial, analyze_with_jobs(trace, jobs));
  }
}

TEST(ParallelAnalyzer, LossyAndPeerGroupScenariosIdentical) {
  const PcapFile trace = peer_group_trace(4242);
  const TraceAnalysis serial = analyze_with_jobs(trace, 1);
  ASSERT_GE(serial.results.size(), 3u);
  expect_identical(serial, analyze_with_jobs(trace, 8));
}

TEST(ParallelAnalyzer, StatsAreAccounted) {
  const PcapFile trace = multi_session_trace(5, 99);
  const TraceAnalysis ta = analyze_with_jobs(trace, 4);
  EXPECT_EQ(ta.stats.records, trace.records.size());
  EXPECT_EQ(ta.stats.connections, ta.connections.size());
  EXPECT_GT(ta.stats.packets, 0u);
  EXPECT_GT(ta.stats.bytes_ingested, 0u);
  EXPECT_LE(ta.stats.jobs, 4u);
  EXPECT_GE(ta.stats.total_wall, ta.stats.analyze_wall);
  EXPECT_GT(ta.stats.bytes_per_sec(), 0.0);
  EXPECT_NE(ta.stats.to_json().find("\"connections\": "), std::string::npos);
}

// --- streaming reader vs in-memory parser ---------------------------------

void expect_stream_matches_parse(std::span<const std::uint8_t> image,
                                 std::size_t chunk_size) {
  const auto parsed = parse_pcap(image);
  ASSERT_TRUE(parsed.ok());
  auto stream = PcapStream::from_memory(image, chunk_size);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream.value().nanosecond(), parsed.value().nanosecond);
  EXPECT_EQ(stream.value().snaplen(), parsed.value().snaplen);
  StreamRecord rec;
  std::size_t i = 0;
  while (stream.value().next(rec)) {
    ASSERT_LT(i, parsed.value().records.size());
    const PcapRecord& want = parsed.value().records[i];
    EXPECT_EQ(rec.ts, want.ts);
    EXPECT_EQ(rec.orig_len, want.orig_len);
    ASSERT_EQ(rec.data.size(), want.data.size());
    EXPECT_TRUE(std::equal(rec.data.begin(), rec.data.end(), want.data.begin()));
    ++i;
  }
  EXPECT_EQ(i, parsed.value().records.size());
  EXPECT_EQ(stream.value().records_read(), parsed.value().records.size());
}

std::vector<std::uint8_t> fixture_image(bool big_endian, bool nanos,
                                        std::size_t records) {
  ByteWriter w;
  const std::uint32_t magic = nanos ? 0xa1b23c4d : 0xa1b2c3d4;
  const auto u16 = [&](std::uint16_t v) { big_endian ? w.u16be(v) : w.u16le(v); };
  const auto u32 = [&](std::uint32_t v) { big_endian ? w.u32be(v) : w.u32le(v); };
  u32(magic);
  u16(2);
  u16(4);
  u32(0);
  u32(0);
  u32(65535);
  u32(1);  // ethernet
  for (std::size_t i = 0; i < records; ++i) {
    std::vector<std::uint8_t> payload(20 + 7 * i, static_cast<std::uint8_t>(i));
    TcpSegmentSpec spec;
    spec.src_ip = test::kSenderIp;
    spec.dst_ip = test::kReceiverIp;
    spec.src_port = test::kSenderPort;
    spec.dst_port = test::kReceiverPort;
    spec.seq = 1000 + static_cast<std::uint32_t>(i);
    spec.flags = {.ack = true, .psh = true};
    spec.payload = payload;
    const auto frame = encode_tcp_frame(spec);
    u32(static_cast<std::uint32_t>(10 + i));                     // sec
    u32(nanos ? 123'456'000 : 123'456);                          // frac
    u32(static_cast<std::uint32_t>(frame.size()));
    u32(static_cast<std::uint32_t>(frame.size()));
    w.bytes(frame);
  }
  return w.take();
}

TEST(PcapStreamEquivalence, AllHeaderVariantsAndChunkSizes) {
  for (const bool big_endian : {false, true}) {
    for (const bool nanos : {false, true}) {
      const auto image = fixture_image(big_endian, nanos, 9);
      for (const std::size_t chunk : {std::size_t{31}, std::size_t{256},
                                      PcapStream::kDefaultChunkSize}) {
        SCOPED_TRACE((big_endian ? "BE" : "LE") + std::string(nanos ? "/ns" : "/us") +
                     " chunk=" + std::to_string(chunk));
        // Tiny chunks force records to straddle chunk boundaries.
        expect_stream_matches_parse(image, chunk);
      }
    }
  }
}

TEST(PcapStreamEquivalence, SimulatedTraceAndTruncatedTail) {
  const PcapFile trace = multi_session_trace(3, 555);
  auto image = serialize_pcap(trace);
  expect_stream_matches_parse(image, 4096);
  image.resize(image.size() - 11);  // cut into the last record
  expect_stream_matches_parse(image, 4096);
}

TEST(PcapStreamEquivalence, RejectsBadHeaders) {
  std::vector<std::uint8_t> junk(64, 0x42);
  EXPECT_FALSE(PcapStream::from_memory(junk).ok());
  std::vector<std::uint8_t> short_header(8, 0);
  EXPECT_FALSE(PcapStream::from_memory(short_header).ok());
}

TEST(PcapStreamEquivalence, ReadPcapFileMatchesParse) {
  const PcapFile trace = multi_session_trace(3, 556);
  const auto image = serialize_pcap(trace);
  const std::string path = ::testing::TempDir() + "/tdat_stream_eq.pcap";
  ASSERT_TRUE(write_pcap_file(path, trace));
  const auto from_file = read_pcap_file(path);
  const auto from_mem = parse_pcap(image);
  ASSERT_TRUE(from_file.ok());
  ASSERT_TRUE(from_mem.ok());
  ASSERT_EQ(from_file.value().records.size(), from_mem.value().records.size());
  for (std::size_t i = 0; i < from_mem.value().records.size(); ++i) {
    EXPECT_EQ(from_file.value().records[i].ts, from_mem.value().records[i].ts);
    EXPECT_EQ(from_file.value().records[i].data, from_mem.value().records[i].data);
  }
  std::remove(path.c_str());
}

TEST(AnalyzeFile, MatchesInMemoryAnalysis) {
  const PcapFile trace = multi_session_trace(5, 777);
  const std::string path = ::testing::TempDir() + "/tdat_analyze_file.pcap";
  ASSERT_TRUE(write_pcap_file(path, trace));
  const TraceAnalysis in_memory = analyze_with_jobs(trace, 1);
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    AnalyzerOptions opts;
    opts.jobs = jobs;
    auto streamed = analyze_file(path, opts);
    ASSERT_TRUE(streamed.ok());
    expect_identical(in_memory, streamed.value());
    // Both ingest paths account the same capture bytes: 24-byte pcap global
    // header plus 16-byte record headers plus stored frames.
    std::uint64_t expected_bytes = 24;
    for (const PcapRecord& rec : trace.records) {
      expected_bytes += 16 + rec.data.size();
    }
    EXPECT_EQ(in_memory.stats.bytes_ingested, expected_bytes);
    EXPECT_EQ(streamed.value().stats.bytes_ingested, expected_bytes);
  }
  std::remove(path.c_str());
}

TEST(AnalyzeFile, MissingFileIsAnError) {
  EXPECT_FALSE(analyze_file("/nonexistent/trace.pcap", AnalyzerOptions{}).ok());
}

// --- demux and pool primitives --------------------------------------------

TEST(ConnectionDemux, IncrementalMatchesBatch) {
  const PcapFile trace = multi_session_trace(4, 888);
  const auto packets = decode_pcap(trace);
  const auto batch = split_connections(packets);
  ConnectionDemux demux;
  for (const DecodedPacket& pkt : packets) demux.add(pkt);
  EXPECT_EQ(demux.connection_count(), batch.size());
  const auto incremental = demux.take();
  ASSERT_EQ(incremental.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(incremental[i].key, batch[i].key);
    ASSERT_EQ(incremental[i].packets.size(), batch[i].packets.size());
    for (std::size_t p = 0; p < batch[i].packets.size(); ++p) {
      EXPECT_EQ(incremental[i].packets[p].index, batch[i].packets[p].index);
    }
  }
  EXPECT_EQ(demux.connection_count(), 0u);  // reusable after take()
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  constexpr std::size_t kN = 1'000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, 8, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, InlineWhenSerialAndEmptyIsNoop) {
  std::size_t calls = 0;
  parallel_for(0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  parallel_for(5, 1, [&](std::size_t) { ++calls; });  // inline, same thread
  EXPECT_EQ(calls, 5u);
}

TEST(ParallelFor, MoreJobsThanItems) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(3, 16, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(64, 4,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(DefaultJobs, RespectsEnvironment) {
  ASSERT_EQ(setenv("TDAT_JOBS", "3", 1), 0);
  EXPECT_EQ(default_jobs(), 3u);
  ASSERT_EQ(setenv("TDAT_JOBS", "junk", 1), 0);
  EXPECT_EQ(default_jobs(), 1u);  // set but unparsable: stay serial
  ASSERT_EQ(unsetenv("TDAT_JOBS"), 0);
  EXPECT_GE(default_jobs(), 1u);
}

}  // namespace
}  // namespace tdat
