#!/usr/bin/env bash
# Deterministic chaos harness for crash-safe live analysis (DESIGN.md §16):
# kill `tdat watch` at seeded crash points via the TDAT_CRASH_AT seam while
# the capture grows underneath it, restart with --checkpoint, drain, and
# require the result to be byte-identical to batch `analyze --format agg`.
# The keystone invariant under test: kill at ANY point, restore, drain ==
# batch bytes — whether the restart resumes from a checkpoint, degrades to
# full replay past a torn/corrupt one, or cold-starts with none at all.
#
# Also covers: crash inside the checkpoint write ("ckpt-write") and rename
# ("ckpt-rename") leaving the previous checkpoint intact, corrupt-checkpoint
# fallback diagnostics, config-echo mismatch fallback, and SIGHUP forcing an
# out-of-cycle snapshot + checkpoint.
#
# Usage: chaos_restore_test.sh <path-to-tdat>
set -u

TDAT="$1"
WORK="$(mktemp -d)"
WATCH_PID=""
cleanup() {
  [ -n "$WATCH_PID" ] && kill -9 "$WATCH_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "chaos_restore: FAIL: $*" >&2
  exit 1
}

# --- a deterministic finished capture, and its batch-analysis baseline -----
"$TDAT" simulate baseline "$WORK/full.pcap" --sessions 2 \
  || fail "simulate baseline"
"$TDAT" analyze "$WORK/full.pcap" --format agg --quiet-stats \
  > "$WORK/batch.tdagg" || fail "batch analyze"
SIZE=$(wc -c < "$WORK/full.pcap")
CHUNK=65536
NCHUNKS=$(( (SIZE + CHUNK - 1) / CHUNK ))

# Grow $1 from full.pcap in 64 KiB chunks (mid-record splits at almost every
# boundary) so crash points land at varied ingest positions.
grow() {
  local dst="$1" i=0
  while [ "$i" -lt "$NCHUNKS" ]; do
    dd if="$WORK/full.pcap" of="$dst" bs=$CHUNK skip=$i seek=$i \
      count=1 conv=notrunc status=none || fail "dd chunk $i"
    i=$((i + 1))
    sleep 0.02
  done
}

# Restart from whatever checkpoint state the crash left behind, drain the
# finished capture, and require byte identity with the batch baseline.
restore_and_check() {
  local cap="$1" ckpt="$2" out="$3" label="$4"
  "$TDAT" watch "$cap" --once --checkpoint "$ckpt" --output "$out" \
    --format agg --quiet-stats 2> "$WORK/restore.err"
  local rc=$?
  [ "$rc" -eq 0 ] || fail "$label: restore exited $rc (want 0)"
  cmp -s "$out" "$WORK/batch.tdagg" \
    || fail "$label: restored drain differs from batch analyze --format agg"
}

# --- scenario 1: seeded kill-point sweep -----------------------------------
# Ten crash points spread across the ingest (seed 1312; epoch counter ticks
# every watch loop iteration, so early points land mid-growth and late ones
# after the backlog is drained). Every single one must restore to the batch
# bytes — with or without a checkpoint on disk at kill time.
KILL_POINTS=$(awk 'BEGIN { srand(1312); n = 0
  while (n < 10) { printf "%d ", 1 + int(rand() * 40); n++ } }')
for N in $KILL_POINTS; do
  rm -f "$WORK/grow.pcap" "$WORK/c.tdckpt" "$WORK/live.tdagg"
  TDAT_CRASH_AT="epoch:$N" "$TDAT" watch "$WORK/grow.pcap" \
    --checkpoint "$WORK/c.tdckpt" --output "$WORK/live.tdagg" --format agg \
    --snapshot-interval 0 --poll-ms 10 --quiet-stats 2>/dev/null &
  WATCH_PID=$!
  grow "$WORK/grow.pcap"
  wait "$WATCH_PID"
  rc=$?
  WATCH_PID=""
  [ "$rc" -eq 47 ] || fail "epoch:$N: watch exited $rc (want crash exit 47)"
  [ "$(wc -c < "$WORK/grow.pcap")" -eq "$SIZE" ] || fail "grow.pcap incomplete"
  restore_and_check "$WORK/grow.pcap" "$WORK/c.tdckpt" "$WORK/live.tdagg" \
    "epoch:$N"
done

# --- scenario 2: crash inside the checkpoint write itself ------------------
# ckpt-write:1 dies with a half-written temp file staged: no checkpoint may
# appear at the real path, and the cold-start restore must still match.
rm -f "$WORK/grow.pcap" "$WORK/c.tdckpt" "$WORK/live.tdagg"
cp "$WORK/full.pcap" "$WORK/grow.pcap"
TDAT_CRASH_AT="ckpt-write:1" "$TDAT" watch "$WORK/grow.pcap" \
  --checkpoint "$WORK/c.tdckpt" --output "$WORK/live.tdagg" --format agg \
  --snapshot-interval 0 --poll-ms 10 --quiet-stats 2>/dev/null
rc=$?
[ "$rc" -eq 47 ] || fail "ckpt-write: watch exited $rc (want 47)"
[ ! -f "$WORK/c.tdckpt" ] \
  || fail "ckpt-write: torn write became visible at the checkpoint path"
restore_and_check "$WORK/grow.pcap" "$WORK/c.tdckpt" "$WORK/live.tdagg" \
  "ckpt-write"

# ckpt-rename:1 dies after the temp is fully written but before it replaces
# the previous checkpoint, which must survive byte-intact and still resume.
# Seed a valid previous checkpoint first with a clean SIGTERM run.
rm -f "$WORK/c.tdckpt" "$WORK/live.tdagg"
"$TDAT" watch "$WORK/grow.pcap" \
  --checkpoint "$WORK/c.tdckpt" --output "$WORK/live.tdagg" --format agg \
  --snapshot-interval 0 --poll-ms 10 --quiet-stats 2>/dev/null &
WATCH_PID=$!
tries=0
until [ -s "$WORK/c.tdckpt" ]; do
  tries=$((tries + 1))
  [ "$tries" -gt 100 ] && fail "no checkpoint written within 10s"
  kill -0 "$WATCH_PID" 2>/dev/null || fail "watch died before checkpointing"
  sleep 0.1
done
kill -TERM "$WATCH_PID"
wait "$WATCH_PID" || fail "seed run did not exit cleanly"
WATCH_PID=""
cp "$WORK/c.tdckpt" "$WORK/c.before"
TDAT_CRASH_AT="ckpt-rename:1" "$TDAT" watch "$WORK/grow.pcap" \
  --checkpoint "$WORK/c.tdckpt" --output "$WORK/live.tdagg" --format agg \
  --snapshot-interval 0 --poll-ms 10 --quiet-stats 2>/dev/null
rc=$?
[ "$rc" -eq 47 ] || fail "ckpt-rename: watch exited $rc (want 47)"
cmp -s "$WORK/c.tdckpt" "$WORK/c.before" \
  || fail "ckpt-rename: previous checkpoint damaged by the crashed rename"
restore_and_check "$WORK/grow.pcap" "$WORK/c.tdckpt" "$WORK/live.tdagg" \
  "ckpt-rename"

# --- scenario 3: corrupt / mismatched checkpoints degrade, never crash -----
# Truncation: payload shorter than declared -> structured diagnostic + full
# replay, exit 0, batch-identical bytes.
head -c 50 "$WORK/c.before" > "$WORK/c.tdckpt"
"$TDAT" watch "$WORK/grow.pcap" --once --checkpoint "$WORK/c.tdckpt" \
  --output "$WORK/live.tdagg" --format agg --quiet-stats \
  2> "$WORK/corrupt.err"
rc=$?
[ "$rc" -eq 0 ] || fail "corrupt checkpoint: watch exited $rc (want 0)"
grep -q "falling back to full replay" "$WORK/corrupt.err" \
  || fail "corrupt checkpoint: no fallback diagnostic on stderr"
cmp -s "$WORK/live.tdagg" "$WORK/batch.tdagg" \
  || fail "corrupt checkpoint: full-replay fallback differs from batch"

# Config-echo mismatch: a checkpoint taken without --window must not seed a
# --window run; it degrades to full replay under the new configuration.
cp "$WORK/c.before" "$WORK/c.tdckpt"
"$TDAT" watch "$WORK/grow.pcap" --once --checkpoint "$WORK/c.tdckpt" \
  --window 5 --output "$WORK/live_w.tdagg" --format agg --quiet-stats \
  2> "$WORK/config.err"
rc=$?
[ "$rc" -eq 0 ] || fail "config mismatch: watch exited $rc (want 0)"
grep -q "falling back to full replay" "$WORK/config.err" \
  || fail "config mismatch: no fallback diagnostic on stderr"
grep -q "configuration changed" "$WORK/config.err" \
  || fail "config mismatch: diagnostic does not name the config change"

# --- scenario 4: SIGHUP forces an out-of-cycle snapshot + checkpoint -------
# With an hour-long interval nothing would be written; SIGHUP must produce
# both files immediately, and the daemon keeps running until SIGTERM.
rm -f "$WORK/c.tdckpt" "$WORK/live.tdagg"
"$TDAT" watch "$WORK/grow.pcap" \
  --checkpoint "$WORK/c.tdckpt" --output "$WORK/live.tdagg" --format agg \
  --snapshot-interval 3600 --poll-ms 10 --quiet-stats 2>/dev/null &
WATCH_PID=$!
sleep 1
[ ! -s "$WORK/live.tdagg" ] || fail "SIGHUP: snapshot appeared before signal"
kill -HUP "$WATCH_PID"
tries=0
until [ -s "$WORK/live.tdagg" ] && [ -s "$WORK/c.tdckpt" ]; do
  tries=$((tries + 1))
  [ "$tries" -gt 100 ] && fail "SIGHUP: no snapshot + checkpoint within 10s"
  kill -0 "$WATCH_PID" 2>/dev/null || fail "watch died after SIGHUP"
  sleep 0.1
done
kill -TERM "$WATCH_PID"
wait "$WATCH_PID"
rc=$?
WATCH_PID=""
[ "$rc" -eq 0 ] || fail "SIGHUP run: watch exited $rc after SIGTERM (want 0)"
cmp -s "$WORK/live.tdagg" "$WORK/batch.tdagg" \
  || fail "SIGHUP run: final snapshot differs from batch"

echo "chaos_restore: PASS"
