// Fleet driver tests (DESIGN.md §14): wire-protocol framing and message
// codecs against truncated/garbage/trailing-byte inputs, shard-plan
// invariants (complete, disjoint, coalesced coverage of the capture),
// OffsetRunSource equivalence with the full stream, and in-process
// run_fleet byte-identity with the single-process archive — including a
// worker killed mid-fleet and its shard reassigned.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "agg/sink.hpp"
#include "bgp/table_gen.hpp"
#include "core/analyzer.hpp"
#include "core/report.hpp"
#include "core/trace_source.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/shard_plan.hpp"
#include "fleet/wire.hpp"
#include "sim/world.hpp"

namespace tdat::fleet {
namespace {

// ------------------------------------------------------------------ framing

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> xs) {
  std::vector<std::uint8_t> out;
  for (int x : xs) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

TEST(FleetWire, FrameRoundtrip) {
  const auto payload = bytes_of({1, 2, 3, 250, 251, 252});
  std::vector<std::uint8_t> buf;
  append_frame(buf, MsgType::kResult, payload);
  ASSERT_EQ(buf.size(), kFrameHeaderLen + payload.size());

  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(buf, frame, consumed), FrameStatus::kOk);
  EXPECT_EQ(consumed, buf.size());
  EXPECT_EQ(frame.type, MsgType::kResult);
  EXPECT_EQ(frame.payload, payload);
}

TEST(FleetWire, TwoFramesDecodeSequentially) {
  std::vector<std::uint8_t> buf;
  append_frame(buf, MsgType::kHeartbeat, bytes_of({9}));
  append_frame(buf, MsgType::kShutdown, {});

  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(buf, frame, consumed), FrameStatus::kOk);
  EXPECT_EQ(frame.type, MsgType::kHeartbeat);
  buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(consumed));
  ASSERT_EQ(decode_frame(buf, frame, consumed), FrameStatus::kOk);
  EXPECT_EQ(frame.type, MsgType::kShutdown);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FleetWire, TruncatedFrameNeedsMore) {
  std::vector<std::uint8_t> buf;
  append_frame(buf, MsgType::kError, bytes_of({1, 2, 3, 4}));
  // Every proper prefix is kNeedMore, never kBad and never kOk.
  for (std::size_t len = 0; len < buf.size(); ++len) {
    Frame frame;
    std::size_t consumed = 99;
    const auto status = decode_frame(
        std::span<const std::uint8_t>(buf.data(), len), frame, consumed);
    EXPECT_EQ(status, FrameStatus::kNeedMore) << "prefix length " << len;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(FleetWire, GarbageIsBadNotNeedMore) {
  // Wrong magic: rejected as soon as the first bytes disagree, even on a
  // buffer shorter than a header — a peer speaking HTTP must not hang the
  // coordinator waiting for "more" of a frame that will never be valid.
  const std::string http = "GET / HTTP/1.1\r\n\r\n";
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(
                std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(http.data()), 4),
                frame, consumed),
            FrameStatus::kBad);

  // Right magic, unknown type.
  std::vector<std::uint8_t> buf;
  append_frame(buf, MsgType::kHello, {});
  buf[4] = 0x77;
  EXPECT_EQ(decode_frame(buf, frame, consumed), FrameStatus::kBad);

  // Right magic and type, implausible length.
  buf.clear();
  append_frame(buf, MsgType::kHello, {});
  for (std::size_t i = 8; i < 16; ++i) buf[i] = 0xff;
  EXPECT_EQ(decode_frame(buf, frame, consumed), FrameStatus::kBad);
}

// ----------------------------------------------------------------- messages

TEST(FleetWire, AssignRoundtrip) {
  AssignMessage in;
  in.worker_id = 7;
  in.shard_index = 3;
  in.capture = "/tmp/capture.pcap";
  in.run_id = "week-31";
  in.jobs = 2;
  in.location = 1;
  in.verify_checksums = 1;
  in.pass_bits = 0x5555;
  in.heartbeat_ms = 250;
  in.runs = {{24, 10}, {4096, 1}, {70000, 500}};

  const auto out = AssignMessage::decode(in.encode());
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_EQ(out.value().worker_id, 7u);
  EXPECT_EQ(out.value().shard_index, 3u);
  EXPECT_EQ(out.value().capture, in.capture);
  EXPECT_EQ(out.value().run_id, in.run_id);
  EXPECT_EQ(out.value().pass_bits, 0x5555u);
  ASSERT_EQ(out.value().runs.size(), 3u);
  EXPECT_EQ(out.value().runs[2].offset, 70000u);
  EXPECT_EQ(out.value().runs[2].count, 500u);
}

TEST(FleetWire, ResultAndErrorRoundtrip) {
  ResultMessage r;
  r.worker_id = 1;
  r.shard_index = 2;
  r.records = 1'000'000;
  r.bytes_ingested = 1ull << 33;
  r.archive = bytes_of({0, 1, 2, 3, 255});
  const auto rr = ResultMessage::decode(r.encode());
  ASSERT_TRUE(rr.ok()) << rr.error();
  EXPECT_EQ(rr.value().bytes_ingested, 1ull << 33);
  EXPECT_EQ(rr.value().archive, r.archive);

  ErrorMessage e;
  e.worker_id = 4;
  e.message = "mmap failed";
  const auto ee = ErrorMessage::decode(e.encode());
  ASSERT_TRUE(ee.ok()) << ee.error();
  EXPECT_EQ(ee.value().message, "mmap failed");
}

TEST(FleetWire, DecodersRejectTruncationAndTrailingBytes) {
  AssignMessage assign;
  assign.capture = "x.pcap";
  assign.runs = {{24, 3}};
  std::vector<std::uint8_t> good = assign.encode();

  // Every truncation fails — a short read must never decode to a
  // plausible-but-wrong assignment.
  for (std::size_t len = 0; len < good.size(); ++len) {
    const auto got = AssignMessage::decode(
        std::span<const std::uint8_t>(good.data(), len));
    EXPECT_FALSE(got.ok()) << "decoded from " << len << " of " << good.size()
                           << " bytes";
  }
  // Trailing bytes fail too.
  good.push_back(0);
  EXPECT_FALSE(AssignMessage::decode(good).ok());

  HeartbeatMessage hb;
  auto hb_bytes = hb.encode();
  hb_bytes.push_back(0);
  EXPECT_FALSE(HeartbeatMessage::decode(hb_bytes).ok());

  // Pure garbage payloads for every decoder.
  const auto garbage = bytes_of({0xde, 0xad, 0xbe, 0xef, 0x01});
  EXPECT_FALSE(AssignMessage::decode(garbage).ok());
  EXPECT_FALSE(ResultMessage::decode(garbage).ok());
  EXPECT_FALSE(ErrorMessage::decode(garbage).ok());
  EXPECT_FALSE(HeartbeatMessage::decode(garbage).ok());
}

// ---------------------------------------------------------------- workloads

PcapFile make_trace(std::size_t sessions) {
  SimWorld world(5150 + sessions);
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < sessions; ++i) {
    SessionSpec spec;
    if (i % 2 == 1) spec.up_fwd.random_loss = 0.01;
    Rng rng(6200 + 11 * i);
    TableGenConfig tg;
    tg.prefix_count = 800;
    ids.push_back(
        world.add_session(spec, serialize_updates(generate_table(tg, rng))));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    world.start_session(ids[i], static_cast<Micros>(i) * 10 * kMicrosPerMilli);
  }
  world.run_until(600 * kMicrosPerSec);
  return world.take_trace();
}

std::string write_trace(const char* name, const PcapFile& trace) {
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(write_pcap_file(path, trace));
  return path;
}

std::string whole_archive(const std::string& path, const std::string& run_id) {
  auto source = PcapStreamSource::open(path, false);
  EXPECT_TRUE(source.ok()) << source.error();
  AnalyzerOptions opts;
  const TraceAnalysis analysis = run_pipeline(source.value(), opts);
  return agg::build_archive(build_report_model(analysis), run_id).serialize();
}

// --------------------------------------------------------------- shard plan

TEST(ShardPlan, CoversEveryRecordDisjointlyAndCoalesced) {
  const PcapFile trace = make_trace(4);
  const std::string path = write_trace("fleet_plan.pcap", trace);

  // Ground truth: the byte offset of every record, from a manual walk of
  // the same file the planner reads.
  std::vector<std::uint64_t> offsets;
  std::map<std::uint64_t, std::uint64_t> next_offset;  // offset -> successor
  {
    std::uint64_t at = 24;
    for (const auto& rec : trace.records) {
      offsets.push_back(at);
      const std::uint64_t next = at + 16 + rec.data.size();
      next_offset[at] = next;
      at = next;
    }
  }

  auto plan = build_shard_plan(path, 3);
  ASSERT_TRUE(plan.ok()) << plan.error();
  EXPECT_EQ(plan.value().records, trace.records.size());
  EXPECT_EQ(plan.value().shards.size(), 3u);

  // Walk every shard's runs: each run must start on a real record boundary
  // and cover `count` consecutive records; no record may appear twice.
  std::map<std::uint64_t, int> claimed;
  std::uint64_t total = 0;
  for (const ShardRuns& shard : plan.value().shards) {
    std::uint64_t shard_records = 0;
    for (std::size_t r = 0; r < shard.runs.size(); ++r) {
      const RecordRun& run = shard.runs[r];
      ASSERT_GT(run.count, 0u);
      std::uint64_t at = run.offset;
      for (std::uint64_t i = 0; i < run.count; ++i) {
        ASSERT_TRUE(next_offset.count(at)) << "run not on a record boundary";
        ++claimed[at];
        at = next_offset[at];
      }
      shard_records += run.count;
      // Coalesced: a run never starts where the previous run of the same
      // shard ended (they would have been one run).
      if (r > 0) {
        std::uint64_t prev_end = shard.runs[r - 1].offset;
        for (std::uint64_t i = 0; i < shard.runs[r - 1].count; ++i) {
          prev_end = next_offset[prev_end];
        }
        EXPECT_NE(run.offset, prev_end) << "adjacent runs not coalesced";
      }
    }
    EXPECT_EQ(shard.records, shard_records);
    total += shard_records;
  }
  EXPECT_EQ(total, trace.records.size());
  for (const auto& [offset, count] : claimed) {
    EXPECT_EQ(count, 1) << "record at " << offset << " claimed twice";
  }
  EXPECT_EQ(claimed.size(), offsets.size());
}

TEST(ShardPlan, JsonIsNonEmptyAndNamesTheCapture) {
  const std::string path = write_trace("fleet_plan_json.pcap", make_trace(2));
  auto plan = build_shard_plan(path, 2);
  ASSERT_TRUE(plan.ok()) << plan.error();
  const std::string json = plan.value().to_json();
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\""), std::string::npos);
  EXPECT_NE(json.find(path), std::string::npos);
}

TEST(ShardPlan, UnreadableCaptureFails) {
  EXPECT_FALSE(build_shard_plan("/nonexistent/nope.pcap", 2).ok());
}

// ---------------------------------------------------------- OffsetRunSource

TEST(OffsetRunSource, OneShardPlanReproducesTheFullStream) {
  const PcapFile trace = make_trace(3);
  const std::string path = write_trace("fleet_offsetrun.pcap", trace);

  auto plan = build_shard_plan(path, 1);
  ASSERT_TRUE(plan.ok()) << plan.error();
  ASSERT_EQ(plan.value().shards.size(), 1u);

  auto source = OffsetRunSource::open(path, plan.value().shards[0].runs,
                                      /*verify_checksums=*/false);
  ASSERT_TRUE(source.ok()) << source.error();
  AnalyzerOptions opts;
  const TraceAnalysis via_runs = run_pipeline(source.value(), opts);
  EXPECT_FALSE(source.value().failed()) << source.value().error();

  auto stream = PcapStreamSource::open(path, false);
  ASSERT_TRUE(stream.ok()) << stream.error();
  const TraceAnalysis via_stream = run_pipeline(stream.value(), opts);

  EXPECT_EQ(via_runs.stats.records, via_stream.stats.records);
  EXPECT_EQ(via_runs.stats.packets, via_stream.stats.packets);
  EXPECT_EQ(via_runs.stats.connections, via_stream.stats.connections);
  EXPECT_EQ(agg::build_archive(build_report_model(via_runs), "x").serialize(),
            agg::build_archive(build_report_model(via_stream), "x")
                .serialize());
}

TEST(OffsetRunSource, StalePlanFailsInsteadOfSilentlyDroppingRecords) {
  const std::string path = write_trace("fleet_stale.pcap", make_trace(1));
  // A run pointing beyond the capture: the plan no longer matches the image.
  std::vector<RecordRun> runs = {{1ull << 40, 5}};
  auto source = OffsetRunSource::open(path, runs, false);
  ASSERT_TRUE(source.ok()) << source.error();
  DecodedPacket pkt;
  while (source.value().next(pkt)) {
  }
  EXPECT_TRUE(source.value().failed());
  EXPECT_NE(source.value().error().find("outside the capture"),
            std::string::npos);
}

// ------------------------------------------------------------------- fleets

TEST(Fleet, MergedArchiveIsByteIdenticalAcrossWorkerCounts) {
  const std::string path = write_trace("fleet_equiv.pcap", make_trace(4));
  const std::string whole = whole_archive(path, "t");

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{3}}) {
    FleetOptions opts;
    opts.workers = workers;
    opts.run_id = "t";
    auto outcome = run_fleet(path, opts);
    ASSERT_TRUE(outcome.ok()) << outcome.error();
    EXPECT_EQ(outcome.value().archive.serialize(), whole)
        << "workers=" << workers;
    EXPECT_EQ(outcome.value().stats.shards, workers);
    EXPECT_EQ(outcome.value().stats.reassignments, 0u);
  }
}

TEST(Fleet, KilledWorkerShardIsReassignedAndOutputUnchanged) {
  const std::string path = write_trace("fleet_kill.pcap", make_trace(4));
  const std::string whole = whole_archive(path, "t");

  // Worker ids are handed out from 0; killing id 0 the moment its first
  // assignment lands forces a timeout, a reassignment, and (budget
  // permitting) a respawn — none of which may change the merged bytes.
  ::setenv("TDAT_FLEET_KILL_WORKER", "0", 1);
  FleetOptions opts;
  opts.workers = 2;
  opts.run_id = "t";
  opts.heartbeat_ms = 50;
  opts.timeout_ms = 400;
  auto outcome = run_fleet(path, opts);
  ::unsetenv("TDAT_FLEET_KILL_WORKER");
  ASSERT_TRUE(outcome.ok()) << outcome.error();
  EXPECT_EQ(outcome.value().archive.serialize(), whole);
  EXPECT_GE(outcome.value().stats.reassignments, 1u);
  EXPECT_GE(outcome.value().stats.respawns, 1u);
}

}  // namespace
}  // namespace tdat::fleet
