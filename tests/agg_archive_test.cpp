// .tdagg archive format tests: sketch and archive round trips, the
// versioning contract, and rejection of damaged images — the result store
// must fail loudly on corruption, never return half an archive.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "agg/archive.hpp"
#include "agg/sketch.hpp"
#include "util/bytes.hpp"

namespace tdat::agg {
namespace {

std::span<const std::uint8_t> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

ConnectionRecord sample_record(std::uint32_t peer, const char* run = "") {
  ConnectionRecord c;
  c.run_id = run;
  c.collector_ip = 0x0a090909;
  c.peer_ip = peer;
  c.peer_as = 65000 + (peer & 0xff);
  c.key.ip_a = peer;
  c.key.port_a = 20000;
  c.key.ip_b = 0x0a090909;
  c.key.port_b = 179;
  c.transfer_begin = 1000;
  c.transfer_end = 90'000'000;
  c.updates = 4200;
  c.prefixes = 9000;
  c.factor_delay_us[1] = 60'000'000;
  c.factor_delay_us[4] = 20'000'000;
  c.group_delay_us[0] = 60'000'000;
  return c;
}

Archive sample_archive() {
  Archive a;
  a.ingest.truncated = 1;
  a.ingest.skipped_bytes = 37;
  a.connections.push_back(sample_record(0x0a000102));
  a.connections.push_back(sample_record(0x0a000101));
  ConnectionRecord q = sample_record(0x0a000103);
  q.quarantine_reason = "unrecoverable BGP framing";
  q.transfer_begin = q.transfer_end = 0;
  a.connections.push_back(q);
  for (const ConnectionRecord& c : a.connections) {
    if (!c.has_transfer()) continue;
    SketchGroup g;
    g.key = {c.run_id, c.collector_ip, c.peer_ip, c.peer_as};
    sketch_observe(g.transfer_us, c.transfer_us());
    for (std::size_t f = 0; f < kFactorCount; ++f) {
      sketch_observe(g.factor_delay_us[f], c.factor_delay_us[f]);
    }
    a.sketches.push_back(std::move(g));
  }
  a.normalize();
  return a;
}

TEST(SketchCodec, RoundTripsOccupiedBucketsAndExtremes) {
  HistogramSnapshot s;
  sketch_observe(s, 1);
  sketch_observe(s, 1000);
  sketch_observe(s, 1000);
  sketch_observe(s, 123456789);
  ByteWriter w;
  encode_sketch(s, w);
  ByteReader r(w.data());
  const HistogramSnapshot back = decode_sketch(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(back.buckets, s.buckets);
  EXPECT_EQ(back.count, 4u);
  EXPECT_EQ(back.sum, s.sum);
  EXPECT_EQ(back.min, 1);
  EXPECT_EQ(back.max, 123456789);
}

TEST(SketchCodec, EmptySketchRoundTrips) {
  ByteWriter w;
  encode_sketch(HistogramSnapshot{}, w);
  ByteReader r(w.data());
  const HistogramSnapshot back = decode_sketch(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(back.count, 0u);
  EXPECT_EQ(back.min, 0);
  EXPECT_EQ(back.max, 0);
}

TEST(SketchCodec, RejectsCountContradictingBuckets) {
  HistogramSnapshot s;
  sketch_observe(s, 5);
  ByteWriter w;
  encode_sketch(s, w);
  std::vector<std::uint8_t> bytes = w.take();
  bytes[0] += 1;  // count field no longer matches the bucket total
  ByteReader r(bytes);
  (void)decode_sketch(r);
  EXPECT_FALSE(r.ok());
}

TEST(ArchiveFormat, SerializeParseRoundTripIsExact) {
  const Archive a = sample_archive();
  const std::string bytes = a.serialize();
  const auto parsed = parse_archive(as_bytes(bytes));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().serialize(), bytes);
  EXPECT_EQ(parsed.value().connections, a.connections);
  EXPECT_EQ(parsed.value().ingest.truncated, 1u);
  EXPECT_EQ(parsed.value().quarantined(), 1u);
  EXPECT_EQ(parsed.value().transfers(), 2u);
  ASSERT_EQ(parsed.value().sketches.size(), 2u);
  EXPECT_EQ(parsed.value().sketches[0].key, a.sketches[0].key);
}

TEST(ArchiveFormat, RejectsBadMagicNewerVersionTruncationAndTrailingBytes) {
  const std::string bytes = sample_archive().serialize();

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(parse_archive(as_bytes(bad_magic)).ok());

  std::string newer = bytes;
  newer[4] = static_cast<char>(kArchiveVersion + 1);  // version u32le
  const auto v = parse_archive(as_bytes(newer));
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.error().find("newer"), std::string::npos);

  for (const std::size_t cut : {bytes.size() - 1, bytes.size() / 2,
                                std::size_t{9}, std::size_t{3}}) {
    EXPECT_FALSE(parse_archive(as_bytes(bytes.substr(0, cut))).ok())
        << "cut at " << cut;
  }

  std::string trailing = bytes + "junk";
  EXPECT_FALSE(parse_archive(as_bytes(trailing)).ok());
}

TEST(ArchiveFormat, RejectsStringLengthBeyondPayload) {
  // A record whose run_id length field points past the end of the image.
  Archive a;
  a.connections.push_back(sample_record(1, "run-a"));
  std::string bytes = a.serialize();
  // The first string is run_id, 48 bytes in: 4 magic + 4 version + 4*8
  // diagnostics counters + 8 connection count.
  const std::size_t len_at = 4 + 4 + 32 + 8;
  bytes[len_at] = '\xff';
  bytes[len_at + 1] = '\xff';
  EXPECT_FALSE(parse_archive(as_bytes(bytes)).ok());
}

TEST(ArchiveFormat, FileRoundTrip) {
  const Archive a = sample_archive();
  const std::string path = ::testing::TempDir() + "/agg_roundtrip.tdagg";
  ASSERT_TRUE(write_archive_file(path, a));
  const auto back = read_archive_file(path);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value().serialize(), a.serialize());
  std::remove(path.c_str());
}

TEST(ArchiveFormat, ReadReportsMissingFileWithPath) {
  const auto missing = read_archive_file("/nonexistent/x.tdagg");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.error().find("/nonexistent/x.tdagg"), std::string::npos);
}

TEST(ArchiveMerge, EmptyArchiveIsIdentityAndBudgetFlagsSum) {
  const Archive a = sample_archive();
  Archive left;
  left.merge_from(a);
  EXPECT_EQ(left.serialize(), a.serialize());
  Archive right = a;
  right.merge_from(Archive{});
  EXPECT_EQ(right.serialize(), a.serialize());

  Archive exhausted;
  exhausted.budget_exhausted_runs = 1;
  Archive merged = a;
  merged.merge_from(exhausted);
  const auto back = parse_archive(as_bytes(merged.serialize()));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().budget_exhausted_runs, 1u);
  EXPECT_TRUE(back.value().ingest.budget_exhausted);
}

}  // namespace
}  // namespace tdat::agg
