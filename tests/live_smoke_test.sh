#!/usr/bin/env bash
# End-to-end smoke test of the always-on pipeline: `tdat watch` tails a
# capture that grows underneath it, emits periodic snapshots, and on SIGTERM
# drains to the true end of data and writes a final snapshot that must be
# byte-identical to batch `analyze --format agg` over the finished capture.
# Also covers --once (drain-what-is-there mode) over a corrupted capture
# from the fault matrix, where the live/batch identity must survive resync.
#
# Usage: live_smoke_test.sh <path-to-tdat>
set -u

TDAT="$1"
WORK="$(mktemp -d)"
WATCH_PID=""
cleanup() {
  [ -n "$WATCH_PID" ] && kill -9 "$WATCH_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "live_smoke: FAIL: $*" >&2
  exit 1
}

# --- a deterministic finished capture, and its batch-analysis baseline -----
"$TDAT" simulate baseline "$WORK/full.pcap" --sessions 2 \
  || fail "simulate baseline"
"$TDAT" analyze "$WORK/full.pcap" --format agg --quiet-stats \
  > "$WORK/batch.tdagg" || fail "batch analyze"

# --- scenario 1: watch a file that appears and then grows ------------------
# The daemon starts before the capture even exists; the file then appears
# and grows in 64 KiB chunks (mid-record splits at almost every boundary).
"$TDAT" watch "$WORK/grow.pcap" \
  --output "$WORK/live.tdagg" --snapshot-dir "$WORK/snaps" --format agg \
  --snapshot-interval 0.2 --poll-ms 20 --quiet-stats &
WATCH_PID=$!
mkdir -p "$WORK/snaps"

SIZE=$(wc -c < "$WORK/full.pcap")
CHUNK=65536
NCHUNKS=$(( (SIZE + CHUNK - 1) / CHUNK ))
i=0
while [ "$i" -lt "$NCHUNKS" ]; do
  dd if="$WORK/full.pcap" of="$WORK/grow.pcap" bs=$CHUNK skip=$i seek=$i \
    count=1 conv=notrunc status=none || fail "dd chunk $i"
  i=$((i + 1))
  sleep 0.02
done
[ "$(wc -c < "$WORK/grow.pcap")" -eq "$SIZE" ] || fail "grow.pcap incomplete"

# A periodic snapshot must appear while the daemon is still running.
tries=0
until [ -s "$WORK/live.tdagg" ]; do
  tries=$((tries + 1))
  [ "$tries" -gt 100 ] && fail "no periodic snapshot within 10s"
  kill -0 "$WATCH_PID" 2>/dev/null || fail "watch died before snapshotting"
  sleep 0.1
done
ls "$WORK/snaps" | grep -q '^snapshot-[0-9]*\.tdagg$' \
  || fail "no numbered snapshot in --snapshot-dir"

# SIGTERM: drain to the end of data, write the final snapshot, exit 0.
kill -TERM "$WATCH_PID"
wait "$WATCH_PID"
rc=$?
WATCH_PID=""
[ "$rc" -eq 0 ] || fail "watch exited $rc after SIGTERM (want 0)"
cmp -s "$WORK/live.tdagg" "$WORK/batch.tdagg" \
  || fail "final watch snapshot differs from batch analyze --format agg"

# --- scenario 2: --once over a fault-matrix capture ------------------------
# A corrupted capture (an interior record cut short, forcing resync) must
# produce the same bytes live as batch; recoverable input damage is exit 1
# for both commands.
"$TDAT" corrupt "$WORK/full.pcap" "$WORK/bad.pcap" \
  --mode truncate-record --seed 7 || fail "corrupt"
"$TDAT" analyze "$WORK/bad.pcap" --format agg --quiet-stats \
  > "$WORK/batch_bad.tdagg"
batch_rc=$?
"$TDAT" watch "$WORK/bad.pcap" --once --format agg \
  --output "$WORK/live_bad.tdagg" --quiet-stats
live_rc=$?
[ "$live_rc" -eq "$batch_rc" ] \
  || fail "corrupt capture: watch exited $live_rc, analyze exited $batch_rc"
[ "$live_rc" -eq 1 ] || fail "corrupt capture: want exit 1, got $live_rc"
cmp -s "$WORK/live_bad.tdagg" "$WORK/batch_bad.tdagg" \
  || fail "--once snapshot differs from batch on a corrupted capture"

# --- scenario 3: version surfaces ------------------------------------------
"$TDAT" version | grep -q '^tdat [0-9][0-9.]*' || fail "tdat version output"
"$TDAT" --version >/dev/null || fail "tdat --version"

echo "live_smoke: PASS"
