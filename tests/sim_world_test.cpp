// End-to-end simulation tests: full BGP sessions (handshake, OPEN exchange,
// table transfer, keepalives) over the sender-tap-receiver topology,
// including the pathological scenarios of §II.
#include <gtest/gtest.h>

#include "bgp/table_gen.hpp"
#include "sim/world.hpp"

namespace tdat {
namespace {

std::vector<std::vector<std::uint8_t>> make_table_messages(std::size_t prefixes,
                                                           std::uint64_t seed) {
  Rng rng(seed);
  TableGenConfig cfg;
  cfg.prefix_count = prefixes;
  return serialize_updates(generate_table(cfg, rng));
}

std::size_t count_update_prefixes(const std::vector<TimedBgpMessage>& archive) {
  std::size_t n = 0;
  for (const auto& tm : archive) {
    if (const BgpUpdate* upd = tm.msg.as_update()) n += upd->nlri.size();
  }
  return n;
}

TEST(SimWorld, SingleSessionTransfersFullTable) {
  SimWorld world(1);
  const auto msgs = make_table_messages(2000, 7);
  const std::size_t n_msgs = msgs.size();
  SessionSpec spec;
  const auto s = world.add_session(spec, msgs);
  world.start_session(s, kMicrosPerSec);
  world.run_until(300 * kMicrosPerSec);

  EXPECT_TRUE(world.sender(s).finished_sending());
  EXPECT_FALSE(world.sender(s).session_failed());
  const auto& archive = world.receiver(s).archive();
  // OPEN + KEEPALIVE + all updates (+ periodic keepalives).
  EXPECT_GE(archive.size(), n_msgs + 2);
  EXPECT_EQ(archive[0].msg.type(), BgpType::kOpen);
  EXPECT_EQ(count_update_prefixes(archive), 2000u);
  EXPECT_FALSE(world.tap().trace().records.empty());
}

TEST(SimWorld, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    SimWorld world(seed);
    const auto s = world.add_session(SessionSpec{}, make_table_messages(500, 3));
    world.start_session(s, 0);
    world.run_until(120 * kMicrosPerSec);
    return serialize_pcap(world.tap().trace());
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(SimWorld, TraceContainsValidPcap) {
  SimWorld world(2);
  const auto s = world.add_session(SessionSpec{}, make_table_messages(300, 5));
  world.start_session(s, 0);
  world.run_until(120 * kMicrosPerSec);
  const PcapFile trace = world.take_trace();
  const auto pkts = decode_pcap(trace, /*verify_checksums=*/true);
  EXPECT_EQ(pkts.size(), trace.records.size());  // every frame decodes + checksums
  // Both directions captured.
  bool fwd = false;
  bool rev = false;
  for (const auto& p : pkts) {
    if (p.tcp.dst_port == 179) fwd = true;
    if (p.tcp.src_port == 179) rev = true;
  }
  EXPECT_TRUE(fwd);
  EXPECT_TRUE(rev);
  (void)s;
}

TEST(SimWorld, UpstreamRandomLossStillCompletes) {
  SimWorld world(3);
  SessionSpec spec;
  spec.up_fwd.random_loss = 0.03;
  const auto s = world.add_session(spec, make_table_messages(10'000, 9));
  world.start_session(s, 0);
  world.run_until(600 * kMicrosPerSec);
  EXPECT_TRUE(world.sender(s).finished_sending());
  EXPECT_EQ(count_update_prefixes(world.receiver(s).archive()), 10'000u);
  EXPECT_GE(world.sender_endpoint(s).retransmit_count(), 1u);
}

TEST(SimWorld, TimerDrivenSenderLeavesGaps) {
  SimWorld world(4);
  SessionSpec spec;
  spec.bgp.timer_driven = true;
  spec.bgp.timer_interval = 200 * kMicrosPerMilli;
  spec.bgp.msgs_per_tick = 10;
  const auto s = world.add_session(spec, make_table_messages(2000, 11));
  world.start_session(s, 0);
  world.run_until(300 * kMicrosPerSec);
  ASSERT_TRUE(world.sender(s).finished_sending());

  // Inter-packet gaps in the data direction cluster at the timer period.
  const auto pkts = decode_pcap(world.tap().trace());
  std::vector<Micros> data_ts;
  for (const auto& p : pkts) {
    if (p.tcp.dst_port == 179 && p.payload_len > 0) data_ts.push_back(p.ts);
  }
  std::size_t timer_gaps = 0;
  for (std::size_t i = 1; i < data_ts.size(); ++i) {
    const Micros gap = data_ts[i] - data_ts[i - 1];
    if (gap > 150 * kMicrosPerMilli && gap < 260 * kMicrosPerMilli) ++timer_gaps;
  }
  EXPECT_GE(timer_gaps, 20u);
}

TEST(SimWorld, SlowCollectorClosesWindow) {
  SimWorld world(5);
  world.use_collector_host(20'000);  // 20 KB/s drain: far below line rate
  SessionSpec spec;
  spec.receiver_tcp.recv_buf_capacity = 16 * 1024;
  const auto s = world.add_session(spec, make_table_messages(5000, 13));
  world.start_session(s, 0);
  world.run_until(600 * kMicrosPerSec);

  // The trace must show small/zero advertised windows from the collector.
  const auto pkts = decode_pcap(world.tap().trace());
  std::size_t small_windows = 0;
  for (const auto& p : pkts) {
    if (p.tcp.src_port == 179 && p.tcp.flags.ack && p.tcp.window < 3 * 1460) {
      ++small_windows;
    }
  }
  EXPECT_GT(small_windows, 10u);
  EXPECT_TRUE(world.sender(s).finished_sending());
}

TEST(SimWorld, PeerGroupLockstep) {
  SimWorld world(6);
  const auto table = make_table_messages(1500, 17);
  PeerGroup group(table, 50);
  SessionSpec fast;
  SessionSpec slow;
  slow.receiver_ip = 0x0a09090a;  // second collector
  // The slow member drains its socket sluggishly.
  slow.collector.read_interval = 50 * kMicrosPerMilli;
  slow.collector.read_chunk = 4 * 1024;
  slow.receiver_tcp.recv_buf_capacity = 8 * 1024;
  const auto a = world.add_session(fast, &group);
  const auto b = world.add_session(slow, &group);
  world.start_session(a, 0);
  world.start_session(b, 0);

  // The fast member can never run more than the queue capacity ahead.
  std::size_t max_lead = 0;
  for (int i = 0; i < 2000; ++i) {
    world.run_until((i + 1) * 100 * kMicrosPerMilli);
    const auto pa = group.member_position(0);
    const auto pb = group.member_position(1);
    max_lead = std::max(max_lead, pa > pb ? pa - pb : pb - pa);
  }
  EXPECT_LE(max_lead, 50u);
  EXPECT_TRUE(world.sender(a).finished_sending());
  EXPECT_TRUE(world.sender(b).finished_sending());
}

TEST(SimWorld, PeerGroupBlockingOnMemberFailure) {
  SimWorld world(7);
  const auto table = make_table_messages(20'000, 19);
  const std::size_t n_msgs = table.size();
  PeerGroup group(table, 40);
  SessionSpec healthy;
  SessionSpec doomed;
  doomed.receiver_ip = 0x0a09090a;
  // Short hold time to keep the test fast (paper's ISP uses 180 s).
  healthy.bgp.hold_time = 15 * kMicrosPerSec;
  doomed.bgp.hold_time = 15 * kMicrosPerSec;
  healthy.bgp.keepalive_interval = 3 * kMicrosPerSec;
  doomed.bgp.keepalive_interval = 3 * kMicrosPerSec;
  healthy.collector.keepalive_interval = 3 * kMicrosPerSec;
  doomed.collector.keepalive_interval = 3 * kMicrosPerSec;
  // Keep the doomed member's socket buffer small so it stops absorbing
  // messages quickly once its collector is gone.
  doomed.sender_tcp.send_buf_capacity = 8 * 1024;
  const auto a = world.add_session(healthy, &group);
  const auto b = world.add_session(doomed, &group);
  world.start_session(a, 0);
  world.start_session(b, 0);

  // Let the transfer get going, then kill the doomed member's collector.
  world.run_until(kMicrosPerSec / 2);
  const auto pos_at_kill = group.member_position(0);
  ASSERT_LT(pos_at_kill, n_msgs);  // transfer still in progress
  world.receiver(b).die();

  // While the dead member pins the queue, the healthy member may advance by
  // at most the group window plus what the dead member's socket absorbs.
  world.run_until(10 * kMicrosPerSec);
  const auto stalled_pos = group.member_position(0);
  EXPECT_LE(stalled_pos - pos_at_kill, 40u + 8 * 1024 / 50);
  EXPECT_FALSE(world.sender(a).finished_sending());

  // After the hold timer expires the failed session is removed and the
  // healthy member resumes and finishes.
  world.run_until(120 * kMicrosPerSec);
  EXPECT_TRUE(world.sender(b).session_failed());
  EXPECT_TRUE(world.sender(a).finished_sending());
}

TEST(SimWorld, ConcurrentTransfersContendAtCollector) {
  auto finish_time = [](std::size_t n_sessions) {
    SimWorld world(8);
    world.use_collector_host(400'000);
    world.use_shared_downstream(LinkConfig{.propagation_delay = 50},
                                LinkConfig{.propagation_delay = 50});
    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < n_sessions; ++i) {
      SessionSpec spec;
      spec.receiver_port = 179;
      spec.receiver_tcp.recv_buf_capacity = 16 * 1024;
      ids.push_back(world.add_session(
          spec, make_table_messages(3000, 100 + i)));
    }
    for (const auto id : ids) world.start_session(id, 0);
    world.run_until(1200 * kMicrosPerSec);
    // Completion = when the last update reached the receiving BGP process.
    Micros last = 0;
    for (const auto id : ids) {
      EXPECT_TRUE(world.sender(id).finished_sending());
      for (const auto& tm : world.receiver(id).archive()) {
        if (tm.msg.as_update() != nullptr) last = std::max(last, tm.ts);
      }
    }
    return last;
  };
  const Micros t1 = finish_time(1);
  const Micros t8 = finish_time(8);
  EXPECT_GT(t8, 2 * t1);  // contention must slow transfers substantially
}

TEST(SimWorld, ZeroWindowProbeBugCausesRetransmissions) {
  auto retransmits = [](bool bug) {
    SimWorld world(9);
    SessionSpec spec;
    spec.sender_tcp.zero_window_probe_bug = bug;
    spec.receiver_tcp.recv_buf_capacity = 4 * 1024;
    // Reads slower than the delayed-ACK timeout, so the sender repeatedly
    // observes a genuine zero window between drains.
    spec.collector.read_interval = 300 * kMicrosPerMilli;
    spec.collector.read_chunk = 4 * 1024;
    const auto s = world.add_session(spec, make_table_messages(3000, 23));
    world.start_session(s, 0);
    world.run_until(600 * kMicrosPerSec);
    EXPECT_TRUE(world.sender(s).finished_sending()) << "bug=" << bug;
    // Zero-window episodes recur in both runs...
    EXPECT_GT(world.sender_endpoint(s).persist_arm_count(), 5u) << "bug=" << bug;
    return world.sender_endpoint(s).retransmit_count();
  };
  const auto clean = retransmits(false);
  const auto buggy = retransmits(true);
  // ...but only the buggy sender turns them into repetitive retransmissions.
  EXPECT_EQ(clean, 0u);
  EXPECT_GT(buggy, 5u);
}

TEST(SimWorld, SnifferDropsLeaveVoids) {
  SimWorld world(10);
  // Rebuild the tap with drops via a fresh world is cleaner; here just use
  // the capture-drop constructor through a dedicated world.
  // (Capture drops are modelled at the tap; the data still flows.)
  SessionSpec spec;
  const auto s = world.add_session(spec, make_table_messages(500, 29));
  world.start_session(s, 0);
  world.run_until(120 * kMicrosPerSec);
  // 500 prefixes = ~8 KB = ~6 MSS data segments plus handshake, ACKs and
  // BGP housekeeping.
  const auto full = world.tap().trace().records.size();
  EXPECT_GT(full, 15u);
  EXPECT_TRUE(world.sender(s).finished_sending());
}

}  // namespace
}  // namespace tdat
