// Unit tests of the §III-D output step on hand-built series registries,
// where every ratio is computable by eye.
#include "core/delay_report.hpp"

#include <gtest/gtest.h>

namespace tdat {
namespace {

EventSeries make(const char* name, std::initializer_list<TimeRange> ranges) {
  EventSeries s(name);
  for (const TimeRange& r : ranges) s.add(r);
  return s;
}

SeriesRegistry registry_with(std::initializer_list<EventSeries> series) {
  SeriesRegistry reg;
  for (const EventSeries& s : series) reg.put(s);
  return reg;
}

TEST(DelayReport, FactorRatiosOverWindow) {
  // 100-unit window; sender app idle covers 60, cwnd 20 (overlapping 10).
  auto reg = registry_with({
      make(series::kSendAppLimited, {{0, 60}}),
      make(series::kCwndBndOut, {{50, 70}}),
  });
  const DelayReport rep = classify_delay(reg, {0, 100}, AnalyzerOptions{});
  EXPECT_DOUBLE_EQ(rep.ratio(Factor::kBgpSenderApp), 0.6);
  EXPECT_DOUBLE_EQ(rep.ratio(Factor::kTcpCongestionWindow), 0.2);
  // Group = union: [0,70) = 0.7, not 0.8.
  EXPECT_DOUBLE_EQ(rep.ratio(FactorGroup::kSender), 0.7);
  EXPECT_TRUE(rep.major(FactorGroup::kSender));
  EXPECT_EQ(rep.dominant(FactorGroup::kSender), Factor::kBgpSenderApp);
  EXPECT_FALSE(rep.major(FactorGroup::kReceiver));
  EXPECT_FALSE(rep.major(FactorGroup::kNetwork));
  EXPECT_TRUE(rep.has_major());
}

TEST(DelayReport, ClipsToWindow) {
  auto reg = registry_with({
      make(series::kSendAppLimited, {{0, 1000}}),  // extends far beyond
  });
  const DelayReport rep = classify_delay(reg, {100, 200}, AnalyzerOptions{});
  EXPECT_DOUBLE_EQ(rep.ratio(Factor::kBgpSenderApp), 1.0);
  EXPECT_EQ(rep.factor_delay[static_cast<std::size_t>(Factor::kBgpSenderApp)], 100);
}

TEST(DelayReport, EmptyWindowAllZero) {
  auto reg = registry_with({make(series::kSendAppLimited, {{0, 50}})});
  const DelayReport rep = classify_delay(reg, {}, AnalyzerOptions{});
  EXPECT_DOUBLE_EQ(rep.ratio(Factor::kBgpSenderApp), 0.0);
  EXPECT_FALSE(rep.has_major());
}

TEST(DelayReport, MissingSeriesAreEmptyFactors) {
  SeriesRegistry reg;  // nothing registered at all
  const DelayReport rep = classify_delay(reg, {0, 100}, AnalyzerOptions{});
  for (std::size_t i = 0; i < kFactorCount; ++i) {
    EXPECT_DOUBLE_EQ(rep.factor_ratio[i], 0.0);
  }
}

TEST(DelayReport, ThresholdBoundaryIsExclusive) {
  auto reg = registry_with({make(series::kSendAppLimited, {{0, 30}})});
  AnalyzerOptions opts;
  opts.major_threshold = 0.3;
  const DelayReport rep = classify_delay(reg, {0, 100}, opts);
  // Exactly at the threshold: "more than 30%" (paper) — not major.
  EXPECT_FALSE(rep.major(FactorGroup::kSender));
  const DelayReport rep2 = classify_delay(reg, {0, 99}, opts);
  EXPECT_TRUE(rep2.major(FactorGroup::kSender));
}

TEST(DelayReport, TcpAdvertisedWindowExcludesSmallAndWirePaced) {
  // AdvBndOut covers [0,100); the small/zero slice [0,40) belongs to the
  // receiver app; the wire-paced slice [80,100) to bandwidth.
  auto reg = registry_with({
      make(series::kAdvBndOut, {{0, 100}}),
      make(series::kSmallAdvBndOut, {{0, 40}}),
      make(series::kBandwidthLimited, {{80, 100}}),
  });
  const RangeSet r = factor_ranges(reg, Factor::kTcpAdvertisedWindow);
  EXPECT_EQ(r, RangeSet({{40, 80}}));
  const DelayReport rep = classify_delay(reg, {0, 100}, AnalyzerOptions{});
  EXPECT_DOUBLE_EQ(rep.ratio(Factor::kTcpAdvertisedWindow), 0.4);
  EXPECT_DOUBLE_EQ(rep.ratio(Factor::kBgpReceiverApp), 0.4);
  EXPECT_DOUBLE_EQ(rep.ratio(Factor::kBandwidthLimited), 0.2);
  // Receiver group = union of app + window slices = [0,80) = 0.8.
  EXPECT_DOUBLE_EQ(rep.ratio(FactorGroup::kReceiver), 0.8);
  // Network group holds the wire-paced slice.
  EXPECT_DOUBLE_EQ(rep.ratio(FactorGroup::kNetwork), 0.2);
}

TEST(DelayReport, GroupTaxonomy) {
  EXPECT_EQ(group_of(Factor::kBgpSenderApp), FactorGroup::kSender);
  EXPECT_EQ(group_of(Factor::kTcpCongestionWindow), FactorGroup::kSender);
  EXPECT_EQ(group_of(Factor::kSenderLocalLoss), FactorGroup::kSender);
  EXPECT_EQ(group_of(Factor::kBgpReceiverApp), FactorGroup::kReceiver);
  EXPECT_EQ(group_of(Factor::kTcpAdvertisedWindow), FactorGroup::kReceiver);
  EXPECT_EQ(group_of(Factor::kReceiverLocalLoss), FactorGroup::kReceiver);
  EXPECT_EQ(group_of(Factor::kBandwidthLimited), FactorGroup::kNetwork);
  EXPECT_EQ(group_of(Factor::kNetworkLoss), FactorGroup::kNetwork);
  // Every factor appears in its group's factor list.
  for (std::size_t i = 0; i < kFactorCount; ++i) {
    const auto f = static_cast<Factor>(i);
    bool found = false;
    for (Factor g : factors_in(group_of(f))) found |= g == f;
    EXPECT_TRUE(found) << to_string(f);
  }
}

TEST(DelayReport, FactorNames) {
  EXPECT_STREQ(to_string(Factor::kBgpSenderApp), "BGP sender app");
  EXPECT_STREQ(to_string(FactorGroup::kNetwork), "Network");
}

TEST(DelayReport, DominantFactorPerGroup) {
  auto reg = registry_with({
      make(series::kSmallAdvBndOut, {{0, 10}}),
      make(series::kAdvBndOut, {{0, 50}}),
      make(series::kRecvLocalLoss, {{60, 65}}),
  });
  const DelayReport rep = classify_delay(reg, {0, 100}, AnalyzerOptions{});
  // TcpAdvertisedWindow = AdvBnd - Small = 40 > Small(10) > LocalLoss(5).
  EXPECT_EQ(rep.dominant(FactorGroup::kReceiver), Factor::kTcpAdvertisedWindow);
}

}  // namespace
}  // namespace tdat
