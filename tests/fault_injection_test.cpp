// Corruption-matrix test (DESIGN.md §10): every FaultMode is injected into a
// three-connection capture and the full pipeline must (a) not crash, (b) emit
// the diagnostics the damage class predicts, (c) produce bit-identical
// reports at --jobs 1 and --jobs 8, and (d) leave connections that finished
// before the damage byte-identical to the clean baseline. The quarantine
// tests drive the per-connection isolation paths — the fault_hook test seam,
// analysis exceptions, and the BGP-framing thresholds — and check that a
// quarantined connection never takes the rest of the run down with it.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/export.hpp"
#include "core/report.hpp"
#include "core/trace_source.hpp"
#include "pcap/decode.hpp"
#include "pcap/fault_injector.hpp"
#include "pcap/pcap_file.hpp"
#include "pcap/pcap_stream.hpp"
#include "sim_scenarios.hpp"
#include "tcp/connection.hpp"

namespace tdat {
namespace {

// Three staggered table transfers in one capture, so damage to one
// connection leaves earlier ones fully intact. Built once; every test
// mutates its own copy.
const std::vector<std::uint8_t>& clean_image() {
  static const std::vector<std::uint8_t> image = [] {
    SimWorld world(4242);
    for (int i = 0; i < 3; ++i) {
      const auto s =
          world.add_session(SessionSpec{}, test::table_messages(1500, 100 + i));
      world.start_session(s, static_cast<Micros>(i) * 120 * kMicrosPerSec);
    }
    world.run_until(600 * kMicrosPerSec);
    return serialize_pcap(world.take_trace());
  }();
  return image;
}

TraceAnalysis analyze_image(const std::vector<std::uint8_t>& image,
                            const AnalyzerOptions& base, std::size_t jobs) {
  auto stream = PcapStream::from_memory(image, base.ingest);
  TDAT_EXPECTS(stream.ok());
  PcapStreamSource source(std::move(stream.value()), base.verify_checksums);
  AnalyzerOptions opts = base;
  opts.jobs = jobs;
  return run_pipeline(source, opts);
}

// Connection key -> rendered result: the per-connection JSON for analyzed
// connections, or the quarantine reason. Byte-compared across runs.
std::map<std::string, std::string> connection_json(const TraceAnalysis& ta) {
  std::map<std::string, std::string> out;
  for (const auto& a : ta.results) {
    const std::string key = ta.connections[a.conn_index].key.to_string();
    out[key] = a.quarantined()
                   ? std::string("quarantined:") + a.quarantine_reason
                   : analysis_to_json(a);
  }
  return out;
}

std::string rendered(const TraceAnalysis& ta, ReportFormat format) {
  return render_report(build_report_model(ta), format);
}

// Per-record connection keys of the clean capture ("" for records that do
// not decode to TCP), used to map the injector's touched record indices to
// the connections they damage.
std::vector<std::string> record_keys(const std::vector<std::uint8_t>& image) {
  const auto parsed = parse_pcap(image);
  TDAT_EXPECTS(parsed.ok());
  std::vector<std::string> keys;
  keys.reserve(parsed.value().records.size());
  for (std::size_t i = 0; i < parsed.value().records.size(); ++i) {
    const auto& rec = parsed.value().records[i];
    const auto pkt = decode_frame(rec.ts, i, rec.data);
    keys.push_back(pkt ? make_conn_key(*pkt).to_string() : std::string());
  }
  return keys;
}

TEST(FaultMatrix, EveryModeRecoversDeterministically) {
  const auto& clean = clean_image();
  const AnalyzerOptions opts;  // default resynchronizing recovery
  const TraceAnalysis clean_ta = analyze_image(clean, opts, 1);
  ASSERT_EQ(clean_ta.results.size(), 3u);
  EXPECT_FALSE(clean_ta.stats.ingest.has_errors());
  const auto clean_json = connection_json(clean_ta);

  const auto keys = record_keys(clean);
  std::map<std::string, std::size_t> last_record_of_key;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (!keys[i].empty()) last_record_of_key[keys[i]] = i;
  }

  for (const FaultMode mode : all_fault_modes()) {
    SCOPED_TRACE(to_string(mode));
    std::vector<std::uint8_t> image = clean;
    FaultPlan plan;
    plan.mode = mode;
    plan.seed = 7;
    const FaultReport fr = inject_faults(image, plan);
    ASSERT_EQ(fr.faults_applied, 1u);
    ASSERT_FALSE(fr.touched_records.empty());

    const TraceAnalysis one = analyze_image(image, opts, 1);
    const TraceAnalysis eight = analyze_image(image, opts, 8);

    // The analysis stage must be order-independent even on damaged input.
    EXPECT_EQ(rendered(one, ReportFormat::kJson),
              rendered(eight, ReportFormat::kJson));
    EXPECT_EQ(rendered(one, ReportFormat::kText),
              rendered(eight, ReportFormat::kText));
    EXPECT_EQ(connection_json(one), connection_json(eight));

    const IngestDiagnostics& diag = one.stats.ingest;
    switch (mode) {
      case FaultMode::kTruncateTail:
        EXPECT_GE(diag.truncated, 1u);
        break;
      case FaultMode::kTruncateRecord:
        EXPECT_GE(diag.resynced, 1u);
        EXPECT_GT(diag.skipped_bytes, 0u);
        break;
      case FaultMode::kZeroInclLen:
      case FaultMode::kOverlongInclLen:
        // The damaged header is skipped but every connection survives.
        EXPECT_GE(diag.resynced, 1u);
        EXPECT_EQ(one.results.size(), clean_ta.results.size());
        break;
      default:
        // Content faults leave pcap framing intact: no ingest diagnostics.
        EXPECT_FALSE(diag.has_errors()) << diag.to_json();
        break;
    }

    // Connections whose records all precede the first damaged record must
    // come out byte-identical to the clean baseline.
    const std::size_t first_touched = fr.touched_records.front();
    const auto damaged_json = connection_json(one);
    for (const auto& [key, json] : clean_json) {
      if (last_record_of_key.at(key) >= first_touched) continue;
      const auto it = damaged_json.find(key);
      ASSERT_NE(it, damaged_json.end()) << key;
      EXPECT_EQ(it->second, json) << key;
    }
  }
}

TEST(FaultMatrix, StrictModeDropsTailInsteadOfResyncing) {
  std::vector<std::uint8_t> image = clean_image();
  FaultPlan plan;
  plan.mode = FaultMode::kZeroInclLen;
  plan.seed = 7;
  ASSERT_EQ(inject_faults(image, plan).faults_applied, 1u);

  AnalyzerOptions opts;
  opts.ingest = IngestPolicy::strict_mode();
  const TraceAnalysis ta = analyze_image(image, opts, 1);
  EXPECT_EQ(ta.stats.ingest.resynced, 0u);
  EXPECT_EQ(ta.stats.ingest.truncated, 1u);
  EXPECT_EQ(ta.stats.ingest.skipped_bytes, 0u);
}

// --- quarantine ------------------------------------------------------------

const char* quarantine_all(const Connection&) { return "injected fault"; }

ConnKey g_target_key;
const char* quarantine_target(const Connection& conn) {
  return conn.key == g_target_key ? "targeted fault" : nullptr;
}

const char* throwing_hook(const Connection&) {
  throw std::runtime_error("injected analysis failure");
}

TEST(Quarantine, FaultHookIsolatesEveryConnection) {
  AnalyzerOptions opts;
  opts.fault_hook = quarantine_all;
  const TraceAnalysis ta = analyze_image(clean_image(), opts, 1);
  ASSERT_EQ(ta.results.size(), 3u);
  EXPECT_EQ(ta.stats.quarantined, ta.results.size());
  for (const auto& a : ta.results) {
    ASSERT_TRUE(a.quarantined());
    EXPECT_STREQ(a.quarantine_reason, "injected fault");
    // Quarantined slots must not carry analysis output.
    EXPECT_TRUE(a.messages.empty());
  }
  // Every sink reports the isolation rather than silently dropping it.
  for (const auto format :
       {ReportFormat::kText, ReportFormat::kJson, ReportFormat::kCsv}) {
    EXPECT_NE(rendered(ta, format).find("quarantin"), std::string::npos);
  }
}

TEST(Quarantine, SelectiveHookLeavesOthersByteIdentical) {
  const AnalyzerOptions base;
  const TraceAnalysis clean_ta = analyze_image(clean_image(), base, 1);
  ASSERT_EQ(clean_ta.results.size(), 3u);
  const auto clean_json = connection_json(clean_ta);

  g_target_key = clean_ta.connections[1].key;
  AnalyzerOptions opts;
  opts.fault_hook = quarantine_target;
  const TraceAnalysis ta = analyze_image(clean_image(), opts, 8);
  EXPECT_EQ(ta.stats.quarantined, 1u);
  const auto json = connection_json(ta);
  for (const auto& [key, value] : json) {
    if (key == g_target_key.to_string()) {
      EXPECT_EQ(value, "quarantined:targeted fault");
    } else {
      EXPECT_EQ(value, clean_json.at(key)) << key;
    }
  }
}

TEST(Quarantine, AnalysisExceptionIsContained) {
  AnalyzerOptions opts;
  opts.fault_hook = throwing_hook;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    SCOPED_TRACE(jobs);
    const TraceAnalysis ta = analyze_image(clean_image(), opts, jobs);
    ASSERT_EQ(ta.results.size(), 3u);
    EXPECT_EQ(ta.stats.quarantined, ta.results.size());
    for (const auto& a : ta.results) {
      ASSERT_TRUE(a.quarantined());
      EXPECT_STREQ(a.quarantine_reason, "analysis failed with an exception");
    }
  }
}

TEST(Quarantine, BgpFramingThresholdsIsolateSplicedConnection) {
  std::vector<std::uint8_t> image = clean_image();
  FaultPlan plan;
  plan.mode = FaultMode::kGarbageSplice;
  plan.seed = 7;
  plan.count = 6;
  const FaultReport fr = inject_faults(image, plan);
  ASSERT_GT(fr.faults_applied, 0u);

  const auto keys = record_keys(clean_image());
  std::set<std::string> touched_keys;
  for (const std::size_t idx : fr.touched_records) {
    if (idx < keys.size() && !keys[idx].empty()) touched_keys.insert(keys[idx]);
  }
  ASSERT_FALSE(touched_keys.empty());

  AnalyzerOptions opts;
  opts.quarantine_skipped_bytes = 0;  // any marker hunt quarantines
  opts.quarantine_parse_errors = 0;
  const TraceAnalysis ta = analyze_image(image, opts, 1);
  ASSERT_EQ(ta.results.size(), 3u);
  EXPECT_GE(ta.stats.quarantined, 1u);
  for (const auto& a : ta.results) {
    const std::string key = ta.connections[a.conn_index].key.to_string();
    if (a.quarantined()) {
      EXPECT_STREQ(a.quarantine_reason, "BGP framing unrecoverable");
      // Only spliced connections may trip the thresholds; a splice that only
      // hit payload-free ACKs legitimately leaves its connection analyzed.
      EXPECT_TRUE(touched_keys.count(key) != 0) << key;
    }
  }
}

}  // namespace
}  // namespace tdat
