// Guards the headline property of the parallel analysis stage: on a machine
// with real cores, jobs=8 must beat jobs=1 by at least 2x on a 64-session
// workload, without changing a single output byte. Runs under the ctest
// label "perf" and skips itself on boxes too small to measure parallelism.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/analyzer.hpp"
#include "core/export.hpp"
#include "helpers.hpp"
#include "sim_scenarios.hpp"
#include "util/time.hpp"

namespace tdat {
namespace {

PcapFile smoke_trace(std::size_t sessions, std::uint64_t seed) {
  SimWorld world(seed);
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < sessions; ++i) {
    SessionSpec spec;
    switch (i % 5) {
      case 0: break;  // baseline
      case 1: spec = test::timer_paced_sender(); break;
      case 2: spec = test::lossy_upstream(0.01); break;
      case 3: spec = test::slow_collector(); break;
      case 4: spec = test::small_window_path(); break;
    }
    ids.push_back(world.add_session(
        spec, test::table_messages(1'000, seed ^ (0x200 + i))));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    world.start_session(ids[i], static_cast<Micros>(i) * 30 * kMicrosPerMilli);
  }
  world.run_until(900 * kMicrosPerSec);
  return world.take_trace();
}

double analyze_seconds(const PcapFile& trace, std::size_t jobs,
                       TraceAnalysis& out) {
  AnalyzerOptions opts;
  opts.jobs = jobs;
  const auto t0 = std::chrono::steady_clock::now();
  out = analyze_trace(trace, opts);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

TEST(PerfSmoke, EightJobsAtLeastTwiceAsFastAsOne) {
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < 4) {
    GTEST_SKIP() << "only " << cores
                 << " hardware threads; parallel speedup not measurable";
  }
  const PcapFile trace = smoke_trace(64, 4242);

  // Warm once (page-in, thread pool spin-up, allocator steady state), then
  // take the best of two timed runs per configuration to damp scheduler
  // noise.
  TraceAnalysis serial, parallel;
  analyze_seconds(trace, 1, serial);
  double t1 = analyze_seconds(trace, 1, serial);
  t1 = std::min(t1, analyze_seconds(trace, 1, serial));
  analyze_seconds(trace, 8, parallel);
  double t8 = analyze_seconds(trace, 8, parallel);
  t8 = std::min(t8, analyze_seconds(trace, 8, parallel));

  // Identity first: a fast-but-wrong parallel path must fail loudly.
  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    SCOPED_TRACE("connection " + std::to_string(i));
    ASSERT_EQ(analysis_to_json(serial.results[i]),
              analysis_to_json(parallel.results[i]));
  }

  const double speedup = t1 / t8;
  RecordProperty("jobs1_seconds", std::to_string(t1));
  RecordProperty("jobs8_seconds", std::to_string(t8));
  RecordProperty("speedup", std::to_string(speedup));
  EXPECT_GE(speedup, 2.0) << "jobs=8 took " << t8 << "s vs " << t1
                          << "s at jobs=1 (speedup " << speedup << "x, "
                          << cores << " hardware threads)";
}

}  // namespace
}  // namespace tdat
