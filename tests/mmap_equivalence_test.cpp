// Ingest-path equivalence matrix (DESIGN.md §11): the mmap zero-copy reader
// and the chunked streaming reader must produce bit-identical analyses on
// every input — clean captures, the full FaultInjector corruption matrix,
// strict mode, and an exhausted resync budget — at --jobs 1 (serial batched
// ingest) and --jobs 8 (parallel sharded ingest). This is the contract that
// lets open_auto pick the fast path silently: there is no observable
// difference except speed. Lives in the parallel test binary so the TSan CI
// leg races the sharded ingest pipeline over both readers.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/export.hpp"
#include "core/report.hpp"
#include "pcap/fault_injector.hpp"
#include "pcap/pcap_file.hpp"
#include "sim_scenarios.hpp"

namespace tdat {
namespace {

// Three staggered BGP sessions, small enough that the 9-mode × 4-config
// matrix stays fast but with enough records that parallel ingest spans many
// batches.
const std::vector<std::uint8_t>& clean_image() {
  static const std::vector<std::uint8_t> image = [] {
    SimWorld world(1312);
    for (int i = 0; i < 3; ++i) {
      const auto s =
          world.add_session(SessionSpec{}, test::table_messages(600, 40 + i));
      world.start_session(s, static_cast<Micros>(i) * 60 * kMicrosPerSec);
    }
    world.run_until(2500 * kMicrosPerSec);
    return serialize_pcap(world.take_trace());
  }();
  return image;
}

std::string write_temp(const std::vector<std::uint8_t>& image,
                       const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  EXPECT_EQ(std::fwrite(image.data(), 1, image.size(), f), image.size());
  std::fclose(f);
  return path;
}

TraceAnalysis analyze_path(const std::string& path, const AnalyzerOptions& base,
                           bool mmap, std::size_t jobs) {
  AnalyzerOptions opts = base;
  opts.ingest.use_mmap = mmap;
  opts.jobs = jobs;
  auto got = analyze_file(path, opts);
  EXPECT_TRUE(got.ok()) << got.error();
  return std::move(got).value();
}

std::map<std::string, std::string> connection_json(const TraceAnalysis& ta) {
  std::map<std::string, std::string> out;
  for (const auto& a : ta.results) {
    const std::string key = ta.connections[a.conn_index].key.to_string();
    out[key] = a.quarantined()
                   ? std::string("quarantined:") + a.quarantine_reason
                   : analysis_to_json(a);
  }
  return out;
}

// Everything observable about a run, as one comparable blob: the rendered
// report, per-connection JSON, and the ingest accounting that must not
// depend on the reader or the job count.
std::string fingerprint(const TraceAnalysis& ta) {
  std::string out = render_report(build_report_model(ta), ReportFormat::kJson);
  for (const auto& [key, json] : connection_json(ta)) {
    out += "\n" + key + " => " + json;
  }
  out += "\nrecords=" + std::to_string(ta.stats.records);
  out += " packets=" + std::to_string(ta.stats.packets);
  out += " bytes=" + std::to_string(ta.stats.bytes_ingested);
  out += " connections=" + std::to_string(ta.stats.connections);
  out += " ingest=" + ta.stats.ingest.to_json();
  return out;
}

struct Config {
  bool mmap;
  std::size_t jobs;
};

constexpr Config kConfigs[] = {
    {true, 1}, {false, 1}, {true, 8}, {false, 8}};

void expect_all_configs_identical(const std::string& path,
                                  const AnalyzerOptions& opts) {
  const TraceAnalysis reference = analyze_path(path, opts, true, 1);
  const std::string want = fingerprint(reference);
  for (const Config& cfg : kConfigs) {
    SCOPED_TRACE(std::string(cfg.mmap ? "mmap" : "stream") + "/jobs=" +
                 std::to_string(cfg.jobs));
    const TraceAnalysis got = analyze_path(path, opts, cfg.mmap, cfg.jobs);
    EXPECT_EQ(fingerprint(got), want);
  }
}

TEST(MmapEquivalence, CleanCaptureIdenticalAcrossReadersAndJobs) {
  const std::string path = write_temp(clean_image(), "mmap_eq_clean.pcap");
  const TraceAnalysis ta = analyze_path(path, AnalyzerOptions{}, true, 1);
  ASSERT_EQ(ta.results.size(), 3u);
  // Multi-batch guarantee: parallel ingest reads 256-record batches, so the
  // jobs=8 configs only exercise resequencing if the trace spans several.
  EXPECT_GT(ta.stats.records, 512u);
  EXPECT_FALSE(ta.stats.ingest.has_errors());
  expect_all_configs_identical(path, AnalyzerOptions{});
}

TEST(MmapEquivalence, EveryFaultModeIdenticalAcrossReadersAndJobs) {
  for (const FaultMode mode : all_fault_modes()) {
    SCOPED_TRACE(to_string(mode));
    std::vector<std::uint8_t> image = clean_image();
    FaultPlan plan;
    plan.mode = mode;
    plan.seed = 11;
    const FaultReport fr = inject_faults(image, plan);
    ASSERT_EQ(fr.faults_applied, 1u);
    const std::string path = write_temp(
        image, std::string("mmap_eq_") + to_string(mode) + ".pcap");
    expect_all_configs_identical(path, AnalyzerOptions{});
  }
}

TEST(MmapEquivalence, StrictModeIdenticalAcrossReadersAndJobs) {
  std::vector<std::uint8_t> image = clean_image();
  FaultPlan plan;
  plan.mode = FaultMode::kZeroInclLen;
  plan.seed = 11;
  ASSERT_EQ(inject_faults(image, plan).faults_applied, 1u);
  const std::string path = write_temp(image, "mmap_eq_strict.pcap");

  AnalyzerOptions opts;
  opts.ingest = IngestPolicy::strict_mode();
  const TraceAnalysis ta = analyze_path(path, opts, true, 1);
  EXPECT_EQ(ta.stats.ingest.truncated, 1u);
  EXPECT_EQ(ta.stats.ingest.resynced, 0u);
  expect_all_configs_identical(path, opts);
}

TEST(MmapEquivalence, ExhaustedErrorBudgetIdenticalAcrossReadersAndJobs) {
  std::vector<std::uint8_t> image = clean_image();
  FaultPlan plan;
  plan.mode = FaultMode::kTruncateRecord;
  plan.seed = 11;
  plan.count = 4;
  ASSERT_GT(inject_faults(image, plan).faults_applied, 0u);
  const std::string path = write_temp(image, "mmap_eq_budget.pcap");

  AnalyzerOptions opts;
  opts.ingest.max_errors = 1;  // give up after the first resync
  const TraceAnalysis ta = analyze_path(path, opts, true, 1);
  EXPECT_TRUE(ta.stats.ingest.budget_exhausted);
  expect_all_configs_identical(path, opts);
}

TEST(MmapEquivalence, ChecksumVerificationIdenticalAcrossReadersAndJobs) {
  // Bit-flips that land in packet bodies are exactly what checksum
  // verification rejects — the reject decision must be identical in the
  // batched decoder and decode_frame.
  std::vector<std::uint8_t> image = clean_image();
  FaultPlan plan;
  plan.mode = FaultMode::kBitFlip;
  plan.seed = 23;
  plan.count = 8;
  ASSERT_GT(inject_faults(image, plan).faults_applied, 0u);
  const std::string path = write_temp(image, "mmap_eq_cksum.pcap");

  AnalyzerOptions opts;
  opts.verify_checksums = true;
  expect_all_configs_identical(path, opts);
}

}  // namespace
}  // namespace tdat
