// Crash-safety tests (DESIGN.md §16). The extended keystone invariant: kill
// `tdat watch` at ANY epoch — the in-process stand-in is dropping the engine
// and source on the floor, state unflushed — restore from the last durable
// .tdckpt, drain, and the rendered `agg` + `json` bytes match the batch
// pipeline exactly. Around that sit the codec hostile-input matrix
// (every-prefix truncation, every single-bit flip, trailing garbage), the
// durable-write failure injection (a failed checkpoint write must keep the
// previous checkpoint byte-identical), capture identity validation, and the
// degradation ladder for the GC / windowed configurations.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "agg/sink.hpp"
#include "core/analyzer.hpp"
#include "core/checkpoint.hpp"
#include "core/live.hpp"
#include "core/live_source.hpp"
#include "core/report.hpp"
#include "pcap/fault_injector.hpp"
#include "pcap/pcap_file.hpp"
#include "sim_scenarios.hpp"
#include "util/atomic_file.hpp"

namespace tdat {
namespace {

const bool kAggSinkRegistered = [] {
  agg::register_aggregate_sink();
  return true;
}();

// Three staggered BGP sessions: long enough for multi-epoch sweeps with a
// small epoch batch, idle gaps long enough for the GC configurations to act.
const std::vector<std::uint8_t>& clean_image() {
  static const std::vector<std::uint8_t> image = [] {
    SimWorld world(1312);
    for (int i = 0; i < 3; ++i) {
      const auto s =
          world.add_session(SessionSpec{}, test::table_messages(600, 40 + i));
      world.start_session(s, static_cast<Micros>(i) * 60 * kMicrosPerSec);
    }
    world.run_until(2500 * kMicrosPerSec);
    return serialize_pcap(world.take_trace());
  }();
  return image;
}

// A capture with a long-idle first connection: session a finishes early,
// session b starts 1530s in (offset by half a keepalive interval so the two
// sessions' keepalives interleave and each connection is observably idle
// between the other's packets). Under idle_gc=30s the first connection is
// retired mid-run, so kill/restore sweeps over this image cross a GC event.
const std::vector<std::uint8_t>& gc_image() {
  static const std::vector<std::uint8_t> image = [] {
    SimWorld world(99);
    const auto a = world.add_session(SessionSpec{}, test::table_messages(200, 40));
    world.start_session(a, 0);
    const auto b = world.add_session(SessionSpec{}, test::table_messages(200, 41));
    world.start_session(b, 1530 * kMicrosPerSec);
    world.run_until(3000 * kMicrosPerSec);
    return serialize_pcap(world.take_trace());
  }();
  return image;
}

std::string write_temp(const std::vector<std::uint8_t>& image,
                       const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  EXPECT_EQ(std::fwrite(image.data(), 1, image.size(), f), image.size());
  std::fclose(f);
  return path;
}

LiveCheckpoint sample_checkpoint() {
  LiveCheckpoint ckpt;
  ckpt.capture = {0x801, 0x1234567, 1 << 20, 1024, 0xdeadbeef};
  ckpt.resume_offset = 524312;
  ckpt.records_seen = 4021;
  ckpt.stream_last_ts = 29 * kMicrosPerSec;
  ckpt.diag.truncated = 2;
  ckpt.diag.resynced = 1;
  ckpt.diag.skipped_bytes = 37;
  ckpt.diag.tail_truncated = 1;
  ckpt.diag.budget_exhausted = false;
  ckpt.next_index = 4021;
  ckpt.now_ts = ckpt.stream_last_ts;
  ckpt.config.location = 1;
  ckpt.config.verify_checksums = true;
  ckpt.config.strict = false;
  ckpt.config.enable_ack_shift = true;
  ckpt.config.pass_bits = 0x2f;
  ckpt.config.max_errors = 1000;
  ckpt.config.window = 5 * kMicrosPerSec;
  ckpt.config.idle_gc = 30 * kMicrosPerSec;
  ckpt.epochs = 17;
  ckpt.records = 4021;
  ckpt.packets = 3977;
  ckpt.connections_total = 3;
  ckpt.connections_gc = 1;
  ckpt.packets_evicted = 120;
  ckpt.conns.push_back({false, {{24, 900, 0}, {40000, 1200, 1800}}});
  ckpt.conns.push_back({true, {{90000, 400, 3000}}});
  ckpt.conns.push_back({false, {{120000, 621, 3400}}});
  return ckpt;
}

// ------------------------------------------------------------------ codec --

TEST(CheckpointCodec, RoundTrip) {
  const LiveCheckpoint ckpt = sample_checkpoint();
  const std::vector<std::uint8_t> image = encode_checkpoint(ckpt);
  auto parsed = parse_checkpoint(image);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_TRUE(parsed.value() == ckpt);
}

TEST(CheckpointCodec, EmptyCheckpointRoundTrips) {
  const LiveCheckpoint ckpt;
  auto parsed = parse_checkpoint(encode_checkpoint(ckpt));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_TRUE(parsed.value() == ckpt);
}

TEST(CheckpointCodec, EveryPrefixTruncationRejected) {
  const std::vector<std::uint8_t> image =
      encode_checkpoint(sample_checkpoint());
  for (std::size_t len = 0; len < image.size(); ++len) {
    auto parsed =
        parse_checkpoint(std::span(image.data(), len));
    EXPECT_FALSE(parsed.ok()) << "prefix of " << len << " bytes parsed";
  }
}

TEST(CheckpointCodec, EverySingleBitFlipRejected) {
  const std::vector<std::uint8_t> image =
      encode_checkpoint(sample_checkpoint());
  std::vector<std::uint8_t> mutant = image;
  for (std::size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      mutant[byte] = image[byte] ^ static_cast<std::uint8_t>(1u << bit);
      auto parsed = parse_checkpoint(mutant);
      EXPECT_FALSE(parsed.ok())
          << "flip of byte " << byte << " bit " << bit << " parsed";
      mutant[byte] = image[byte];
    }
  }
}

TEST(CheckpointCodec, TrailingBytesRejected) {
  std::vector<std::uint8_t> image = encode_checkpoint(sample_checkpoint());
  image.push_back(0x00);
  EXPECT_FALSE(parse_checkpoint(image).ok());
}

TEST(CheckpointCodec, HostileConnCountRejectedWithoutAllocating) {
  // A payload whose connection count promises far more elements than the
  // bytes could hold must be rejected by arithmetic, not by attempting the
  // allocation (ASan would catch the latter as OOM).
  std::vector<std::uint8_t> image = encode_checkpoint(LiveCheckpoint{});
  // The conn-count u32 is the last 4 payload bytes of an empty checkpoint.
  for (std::size_t i = image.size() - 4; i < image.size(); ++i) {
    image[i] = 0xff;
  }
  EXPECT_FALSE(parse_checkpoint(image).ok());
}

// ------------------------------------------------------------------- file --

TEST(CheckpointFile, WriteReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "ckpt_roundtrip.tdckpt";
  const LiveCheckpoint ckpt = sample_checkpoint();
  auto wrote = write_checkpoint_file(path, ckpt);
  ASSERT_TRUE(wrote.ok()) << wrote.error();
  auto loaded = read_checkpoint_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_TRUE(loaded.value() == ckpt);
  std::remove(path.c_str());
}

bool fail_every_write(const std::string&) { return false; }

TEST(CheckpointFile, FailedWriteKeepsPreviousCheckpoint) {
  const std::string path = ::testing::TempDir() + "ckpt_enospc.tdckpt";
  const LiveCheckpoint first = sample_checkpoint();
  ASSERT_TRUE(write_checkpoint_file(path, first).ok());

  LiveCheckpoint second = first;
  second.records_seen += 1000;
  set_atomic_write_failure_hook(&fail_every_write);
  auto wrote = write_checkpoint_file(path, second);
  set_atomic_write_failure_hook(nullptr);
  EXPECT_FALSE(wrote.ok());

  auto loaded = read_checkpoint_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_TRUE(loaded.value() == first);  // untouched by the failed replace
  std::remove(path.c_str());
}

// --------------------------------------------------------------- identity --

TEST(CaptureIdentityTest, AcceptsGrownRejectsShrunkOrEdited) {
  const std::string path =
      write_temp(clean_image(), "ckpt_identity.pcap");
  auto id = compute_capture_identity(path);
  ASSERT_TRUE(id.ok()) << id.error();
  EXPECT_TRUE(validate_capture_identity(id.value(), path).ok());

  // Growth (the normal case for a live capture) still validates.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::uint8_t extra[32] = {};
    ASSERT_EQ(std::fwrite(extra, 1, sizeof(extra), f), sizeof(extra));
    std::fclose(f);
  }
  EXPECT_TRUE(validate_capture_identity(id.value(), path).ok());

  // Shrinking below the recorded size (rotation, truncation) does not.
  std::filesystem::resize_file(path, id.value().size - 1);
  EXPECT_FALSE(validate_capture_identity(id.value(), path).ok());

  // A different file renamed over the path (new inode — the replacement was
  // created while the original still held its inode) does not.
  const std::string staged = write_temp(clean_image(), "ckpt_identity2.pcap");
  ASSERT_EQ(std::rename(staged.c_str(), path.c_str()), 0);
  const std::string other = path;
  EXPECT_FALSE(validate_capture_identity(id.value(), other).ok());

  // Same inode, edited leading bytes does not.
  auto id2 = compute_capture_identity(other);
  ASSERT_TRUE(id2.ok());
  {
    std::FILE* f = std::fopen(other.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 64, SEEK_SET);
    std::fputc(0xee, f);
    std::fclose(f);
  }
  EXPECT_FALSE(validate_capture_identity(id2.value(), other).ok());
  std::remove(other.c_str());
}

// -------------------------------------------------------- kill + restore --

struct Rendered {
  std::string agg;
  std::string json;
  std::string diag;
  std::uint64_t records = 0;
  std::uint64_t gc = 0;  // connections retired by idle GC (live runs only)
};

Rendered render(LiveEngine& engine, TraceSource& source) {
  Rendered r;
  r.agg = engine.render_snapshot(ReportFormat::kAgg);
  r.json = engine.render_snapshot(ReportFormat::kJson);
  r.diag = source.diagnostics().to_json();
  r.records = engine.stats().records;
  r.gc = engine.stats().connections_gc;
  return r;
}

// The batch baseline over the same capture FILE (not a memory image), so
// the per-file ingest diagnostics in the JSON match what FollowSource
// reports for the followed path.
Rendered batch_run(const std::string& path, const AnalyzerOptions& opts) {
  auto opened = MultiFileSource::open({path}, opts.verify_checksums,
                                      opts.ingest);
  EXPECT_TRUE(opened.ok()) << opened.error();
  MultiFileSource source = std::move(opened).value();
  const TraceAnalysis ta = run_pipeline(source, opts);
  const ReportModel model = build_report_model(ta);
  Rendered r;
  r.agg = render_report(model, ReportFormat::kAgg);
  r.json = render_report(model, ReportFormat::kJson);
  r.diag = ta.stats.ingest.to_json();
  r.records = ta.stats.records;
  return r;
}

// The uninterrupted reference: follow the (already complete) file with the
// same epoch batch size the killed run uses, then drain.
Rendered follow_run(const std::string& path, const LiveOptions& lopts,
                    bool verify_checksums) {
  FollowSource source(path, verify_checksums, lopts.analyzer.ingest);
  LiveEngine engine(source, lopts);
  while (engine.run_epoch() > 0) {
  }
  engine.drain();
  EXPECT_FALSE(source.failed()) << source.error();
  return render(engine, source);
}

// Runs `epochs_before_kill` epochs, checkpoints exactly the way `tdat watch`
// does, then abandons engine and source cold — the in-process SIGKILL. The
// returned checkpoint is what the next process finds on disk.
Result<LiveCheckpoint> run_and_kill(const std::string& path,
                                    const LiveOptions& lopts,
                                    bool verify_checksums,
                                    std::size_t epochs_before_kill) {
  FollowSource source(path, verify_checksums, lopts.analyzer.ingest);
  LiveEngine engine(source, lopts);
  for (std::size_t e = 0; e < epochs_before_kill; ++e) {
    (void)engine.run_epoch();
  }
  if (!source.checkpointable()) {
    return Err<LiveCheckpoint>("source not checkpointable");
  }
  LiveCheckpoint ckpt;
  TDAT_TRY(state, engine.checkpoint_state(ckpt));
  (void)state;
  TDAT_TRY(id, compute_capture_identity(path));
  ckpt.capture = id;
  const PcapStream::Resume resume = source.resume_state();
  ckpt.resume_offset = resume.offset;
  ckpt.records_seen = resume.records;
  ckpt.stream_last_ts = resume.last_ts;
  ckpt.diag = resume.diag;
  return ckpt;
}

// Restores a fresh engine from `ckpt`, continues to the end of the capture,
// drains, renders — the restart half of the kill/restore cycle.
Rendered restore_and_drain(const std::string& path, const LiveCheckpoint& ckpt,
                           const LiveOptions& lopts, bool verify_checksums) {
  PcapStream::Resume resume;
  resume.offset = ckpt.resume_offset;
  resume.records = ckpt.records_seen;
  resume.last_ts = ckpt.stream_last_ts;
  resume.diag = ckpt.diag;
  FollowSource source(path, verify_checksums, lopts.analyzer.ingest, resume);
  LiveEngine engine(source, lopts);
  auto restored = engine.restore_state(ckpt, path);
  EXPECT_TRUE(restored.ok()) << restored.error();
  while (engine.run_epoch() > 0) {
  }
  engine.drain();
  EXPECT_FALSE(source.failed()) << source.error();
  return render(engine, source);
}

void expect_same(const Rendered& a, const Rendered& b) {
  EXPECT_EQ(a.agg, b.agg);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.diag, b.diag);
  EXPECT_EQ(a.records, b.records);
}

TEST(ChaosRestore, KillAtEveryEpochMatchesBatch) {
  const std::string path = write_temp(clean_image(), "chaos_clean.pcap");
  const AnalyzerOptions opts;
  const Rendered batch = batch_run(path, opts);

  LiveOptions lopts;
  lopts.analyzer = opts;
  lopts.epoch_batch_records = 64;  // many epochs -> many kill points
  // Establish how many epochs the capture takes, then kill at each of them.
  std::size_t total_epochs = 0;
  {
    FollowSource source(path, opts.verify_checksums, opts.ingest);
    LiveEngine engine(source, lopts);
    while (engine.run_epoch() > 0) ++total_epochs;
  }
  ASSERT_GE(total_epochs, 4u) << "capture too small for a meaningful sweep";

  for (std::size_t kill = 1; kill <= total_epochs; ++kill) {
    SCOPED_TRACE("kill after epoch " + std::to_string(kill));
    auto ckpt = run_and_kill(path, lopts, opts.verify_checksums, kill);
    ASSERT_TRUE(ckpt.ok()) << ckpt.error();
    expect_same(
        restore_and_drain(path, ckpt.value(), lopts, opts.verify_checksums),
        batch);
  }
  std::remove(path.c_str());
}

TEST(ChaosRestore, KillAndRestoreOnDamagedCaptures) {
  // The checkpoint machinery must survive captures whose ingest needs the
  // resync/truncation paths: offsets still index the damaged image, and the
  // checkpointed diagnostics keep the final tallies batch-identical.
  const AnalyzerOptions opts;
  for (const FaultMode mode :
       {FaultMode::kTruncateRecord, FaultMode::kGarbageSplice,
        FaultMode::kBitFlip}) {
    SCOPED_TRACE(std::string("mode=") + to_string(mode));
    std::vector<std::uint8_t> image = clean_image();
    FaultPlan plan;
    plan.mode = mode;
    plan.seed = 11;
    const auto report = inject_faults(image, plan);
    ASSERT_GT(report.faults_applied, 0u);
    const std::string path =
        write_temp(image, std::string("chaos_") + to_string(mode) + ".pcap");
    const Rendered batch = batch_run(path, opts);

    LiveOptions lopts;
    lopts.analyzer = opts;
    lopts.epoch_batch_records = 128;
    for (const std::size_t kill : {std::size_t{1}, std::size_t{3}}) {
      SCOPED_TRACE("kill after epoch " + std::to_string(kill));
      auto ckpt = run_and_kill(path, lopts, opts.verify_checksums, kill);
      ASSERT_TRUE(ckpt.ok()) << ckpt.error();
      expect_same(
          restore_and_drain(path, ckpt.value(), lopts, opts.verify_checksums),
          batch);
    }
    std::remove(path.c_str());
  }
}

TEST(ChaosRestore, GcOnlyRestoreMatchesUninterrupted) {
  // window == 0 keeps every retained packet exact, so even with idle GC
  // retiring connections the restore ladder stays byte-identical to an
  // uninterrupted run (retired connections replay from their stashed runs).
  const std::string path = write_temp(gc_image(), "chaos_gc.pcap");
  const AnalyzerOptions opts;
  LiveOptions lopts;
  lopts.analyzer = opts;
  lopts.idle_gc = 30 * kMicrosPerSec;
  lopts.epoch_batch_records = 64;
  const Rendered uninterrupted =
      follow_run(path, lopts, opts.verify_checksums);
  ASSERT_GT(uninterrupted.gc, 0u)
      << "capture never leaves a connection idle long enough to retire";

  std::size_t total_epochs = 0;
  {
    FollowSource source(path, opts.verify_checksums, opts.ingest);
    LiveEngine engine(source, lopts);
    while (engine.run_epoch() > 0) ++total_epochs;
  }
  bool saw_gc = false;
  for (std::size_t kill = 2; kill <= total_epochs; kill += 3) {
    SCOPED_TRACE("kill after epoch " + std::to_string(kill));
    auto ckpt = run_and_kill(path, lopts, opts.verify_checksums, kill);
    ASSERT_TRUE(ckpt.ok()) << ckpt.error();
    saw_gc = saw_gc || ckpt.value().connections_gc > 0;
    const Rendered restored =
        restore_and_drain(path, ckpt.value(), lopts, opts.verify_checksums);
    expect_same(restored, uninterrupted);
    EXPECT_EQ(restored.gc, uninterrupted.gc);
  }
  EXPECT_TRUE(saw_gc) << "no kill point observed a retired connection";
  std::remove(path.c_str());
}

TEST(ChaosRestore, WindowedRestoreIsDeterministic) {
  // With window > 0 the restored analysis is a documented approximation
  // (DESIGN.md §16): re-analysis happens over the retained window. The
  // contract is determinism — two restores from one checkpoint agree bit for
  // bit — and a clean run to completion.
  const std::string path = write_temp(gc_image(), "chaos_window.pcap");
  const AnalyzerOptions opts;
  LiveOptions lopts;
  lopts.analyzer = opts;
  lopts.window = 5 * kMicrosPerSec;
  lopts.idle_gc = 30 * kMicrosPerSec;
  lopts.epoch_batch_records = 64;

  auto ckpt = run_and_kill(path, lopts, opts.verify_checksums, 6);
  ASSERT_TRUE(ckpt.ok()) << ckpt.error();
  const Rendered once =
      restore_and_drain(path, ckpt.value(), lopts, opts.verify_checksums);
  const Rendered twice =
      restore_and_drain(path, ckpt.value(), lopts, opts.verify_checksums);
  expect_same(once, twice);
  EXPECT_FALSE(once.agg.empty());
  std::remove(path.c_str());
}

TEST(ChaosRestore, RestoreRequiresFreshEngine) {
  const std::string path = write_temp(clean_image(), "chaos_fresh.pcap");
  const AnalyzerOptions opts;
  LiveOptions lopts;
  lopts.analyzer = opts;
  lopts.epoch_batch_records = 256;
  auto ckpt = run_and_kill(path, lopts, opts.verify_checksums, 2);
  ASSERT_TRUE(ckpt.ok()) << ckpt.error();

  FollowSource source(path, opts.verify_checksums, opts.ingest);
  LiveEngine engine(source, lopts);
  (void)engine.run_epoch();  // engine has state now
  EXPECT_FALSE(engine.restore_state(ckpt.value(), path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tdat
