#include "tcp/classify.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace tdat {
namespace {

using test::PacketFactory;

Connection make_conn(std::vector<DecodedPacket> pkts) {
  const auto conns = split_connections(pkts);
  EXPECT_EQ(conns.size(), 1u);
  return conns[0];
}

ClassifyOptions opts_ms(Micros reorder_ms) {
  ClassifyOptions o;
  o.reorder_threshold = reorder_ms * kMicrosPerMilli;
  return o;
}

TEST(Classify, AllInOrder) {
  PacketFactory f;
  std::vector<DecodedPacket> trace;
  for (int i = 0; i < 5; ++i) trace.push_back(f.data(i * 1000, i * 100, 100));
  const Connection conn = make_conn(trace);
  const auto flow =
      classify_data_packets(conn, packet_dir(conn.key, trace[0]), opts_ms(2));
  ASSERT_EQ(flow.data.size(), 5u);
  EXPECT_EQ(flow.count(DataLabel::kInOrder), 5u);
  EXPECT_EQ(flow.stream_length, 500);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(flow.data[i].stream_begin, static_cast<std::int64_t>(i) * 100);
  }
}

TEST(Classify, AnchorFromSyn) {
  PacketFactory f;
  std::vector<DecodedPacket> trace = f.handshake(0, 1000);
  trace.push_back(f.data(2000, 0, 100));
  const Connection conn = make_conn(trace);
  const auto flow =
      classify_data_packets(conn, packet_dir(conn.key, trace[0]), opts_ms(2));
  ASSERT_EQ(flow.data.size(), 1u);
  EXPECT_TRUE(flow.has_anchor);
  EXPECT_EQ(flow.data[0].stream_begin, 0);
}

TEST(Classify, DownstreamRetransmission) {
  PacketFactory f;
  std::vector<DecodedPacket> trace;
  trace.push_back(f.data(0, 0, 100));        // original, seen by sniffer
  trace.push_back(f.data(1000, 100, 100));
  trace.push_back(f.data(400'000, 0, 100));  // RTO retransmit of the first
  const Connection conn = make_conn(trace);
  const auto flow =
      classify_data_packets(conn, packet_dir(conn.key, trace[0]), opts_ms(2));
  ASSERT_EQ(flow.data.size(), 3u);
  EXPECT_EQ(flow.data[2].label, DataLabel::kRetransmitDownstream);
  // Recovery period runs from the original's capture to the retransmit.
  EXPECT_EQ(flow.data[2].loss_begin, 0);
  EXPECT_EQ(flow.data[2].ts, 400'000);
}

TEST(Classify, UpstreamLossViaHoleFill) {
  PacketFactory f;
  std::vector<DecodedPacket> trace;
  trace.push_back(f.data(0, 0, 100));
  // offset 100..200 lost upstream: sniffer sees the jump.
  trace.push_back(f.data(1000, 200, 100));
  trace.push_back(f.data(2000, 300, 100));
  // Retransmission fills the hole 300 ms later (way past reordering).
  trace.push_back(f.data(300'000, 100, 100));
  const Connection conn = make_conn(trace);
  const auto flow =
      classify_data_packets(conn, packet_dir(conn.key, trace[0]), opts_ms(2));
  EXPECT_EQ(flow.data[1].label, DataLabel::kInOrder);  // the jump itself
  EXPECT_EQ(flow.data[3].label, DataLabel::kRetransmitUpstream);
  EXPECT_EQ(flow.data[3].loss_begin, 1000);  // when the hole appeared
}

TEST(Classify, FastReorderingIsNotLoss) {
  PacketFactory f;
  std::vector<DecodedPacket> trace;
  trace.push_back(f.data(0, 0, 100));
  trace.push_back(f.data(1000, 200, 100));  // out of order by one packet
  trace.push_back(f.data(1500, 100, 100));  // fills hole 0.5 ms later
  const Connection conn = make_conn(trace);
  const auto flow =
      classify_data_packets(conn, packet_dir(conn.key, trace[0]), opts_ms(2));
  EXPECT_EQ(flow.data[2].label, DataLabel::kReordering);
}

TEST(Classify, NetworkDuplicate) {
  PacketFactory f;
  std::vector<DecodedPacket> trace;
  trace.push_back(f.data(0, 0, 100));
  trace.push_back(f.data(200, 0, 100));  // exact copy 200 us later
  const Connection conn = make_conn(trace);
  const auto flow =
      classify_data_packets(conn, packet_dir(conn.key, trace[0]), opts_ms(2));
  EXPECT_EQ(flow.data[1].label, DataLabel::kDuplicate);
}

TEST(Classify, PartialHoleFillSplitsHole) {
  PacketFactory f;
  std::vector<DecodedPacket> trace;
  trace.push_back(f.data(0, 0, 100));
  trace.push_back(f.data(1000, 400, 100));   // hole [100, 400)
  trace.push_back(f.data(300'000, 200, 100)); // fills middle of the hole
  trace.push_back(f.data(600'000, 100, 100)); // fills left remainder
  trace.push_back(f.data(900'000, 300, 100)); // fills right remainder
  const Connection conn = make_conn(trace);
  const auto flow =
      classify_data_packets(conn, packet_dir(conn.key, trace[0]), opts_ms(2));
  EXPECT_EQ(flow.data[2].label, DataLabel::kRetransmitUpstream);
  EXPECT_EQ(flow.data[3].label, DataLabel::kRetransmitUpstream);
  EXPECT_EQ(flow.data[4].label, DataLabel::kRetransmitUpstream);
  // All recoveries date from the original hole creation.
  EXPECT_EQ(flow.data[2].loss_begin, 1000);
  EXPECT_EQ(flow.data[3].loss_begin, 1000);
  EXPECT_EQ(flow.data[4].loss_begin, 1000);
  EXPECT_EQ(flow.stream_length, 500);
}

TEST(Classify, MultipleConsecutiveRetransmissions) {
  PacketFactory f;
  std::vector<DecodedPacket> trace;
  // 10 packets, then the whole flight is retransmitted (downstream loss).
  for (int i = 0; i < 10; ++i) trace.push_back(f.data(i * 100, i * 100, 100));
  for (int i = 0; i < 10; ++i) {
    trace.push_back(f.data(500'000 + i * 100, i * 100, 100));
  }
  const Connection conn = make_conn(trace);
  const auto flow =
      classify_data_packets(conn, packet_dir(conn.key, trace[0]), opts_ms(2));
  EXPECT_EQ(flow.count(DataLabel::kRetransmitDownstream), 10u);
  EXPECT_EQ(flow.count(DataLabel::kInOrder), 10u);
}

TEST(Classify, WrongDirectionEmpty) {
  PacketFactory f;
  std::vector<DecodedPacket> trace;
  trace.push_back(f.data(0, 0, 100));
  const Connection conn = make_conn(trace);
  const auto flow = classify_data_packets(
      conn, reverse(packet_dir(conn.key, trace[0])), opts_ms(2));
  EXPECT_TRUE(flow.data.empty());
  EXPECT_FALSE(flow.has_anchor);
}

TEST(Classify, LabelNames) {
  EXPECT_STREQ(to_string(DataLabel::kInOrder), "in-order");
  EXPECT_STREQ(to_string(DataLabel::kRetransmitUpstream), "retx-upstream");
}

}  // namespace
}  // namespace tdat
