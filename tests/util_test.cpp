#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/knee.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace tdat {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(from_millis(5), 5000);
  EXPECT_EQ(from_seconds(2), 2'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(1'500'000), 1.5);
  EXPECT_DOUBLE_EQ(to_millis(2500), 2.5);
  EXPECT_EQ(format_seconds(1'234'567), "1.235s");
}

TEST(ByteReader, BigEndianReads) {
  const std::uint8_t data[] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06};
  ByteReader r(data);
  EXPECT_EQ(r.u8(), 0x01);
  EXPECT_EQ(r.u16be(), 0x0203);
  // Only 3 bytes remain: a 4-byte read overruns and poisons the reader.
  EXPECT_EQ(r.u32be(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, BigEndian32) {
  const std::uint8_t data[] = {0xde, 0xad, 0xbe, 0xef};
  ByteReader r(data);
  EXPECT_EQ(r.u32be(), 0xdeadbeefu);
}

TEST(ByteReader, LittleEndian) {
  const std::uint8_t data[] = {0xd4, 0xc3, 0xb2, 0xa1, 0x34, 0x12};
  ByteReader r(data);
  EXPECT_EQ(r.u32le(), 0xa1b2c3d4u);
  EXPECT_EQ(r.u16le(), 0x1234);
  EXPECT_TRUE(r.ok());
}

TEST(ByteReader, OverrunMarksBad) {
  const std::uint8_t data[] = {0x01};
  ByteReader r(data);
  EXPECT_EQ(r.u32be(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0);  // still bad, still safe
}

TEST(ByteReader, BytesAndSkip) {
  const std::uint8_t data[] = {1, 2, 3, 4, 5};
  ByteReader r(data);
  r.skip(2);
  auto s = r.bytes(2);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 3);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(ByteWriter, RoundTrip) {
  ByteWriter w;
  w.u8(0xaa);
  w.u16be(0x1234);
  w.u32be(0xdeadbeef);
  w.u16le(0x5678);
  w.u32le(0xcafebabe);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xaa);
  EXPECT_EQ(r.u16be(), 0x1234);
  EXPECT_EQ(r.u32be(), 0xdeadbeefu);
  EXPECT_EQ(r.u16le(), 0x5678);
  EXPECT_EQ(r.u32le(), 0xcafebabeu);
}

TEST(ByteWriter, Patch) {
  ByteWriter w;
  w.u16be(0);
  w.u8(0xff);
  w.patch_u16be(0, 0xabcd);
  ByteReader r(w.data());
  EXPECT_EQ(r.u16be(), 0xabcd);
}

TEST(Ipv4String, Formats) {
  EXPECT_EQ(ipv4_to_string(0x0a000001), "10.0.0.1");
  EXPECT_EQ(ipv4_to_string(0xffffffff), "255.255.255.255");
}

TEST(Result, OkAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err = Err<int>("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error(), "boom");
}

TEST(Stats, Summary) {
  const Summary s = summarize({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 50), 7.0);
}

TEST(Stats, EmpiricalCdf) {
  const auto cdf = empirical_cdf({3, 1, 2, 2});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].value, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].fraction, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(Stats, ThinCdf) {
  std::vector<CdfPoint> cdf;
  for (int i = 0; i < 100; ++i) {
    cdf.push_back({static_cast<double>(i), (i + 1) / 100.0});
  }
  const auto thin = thin_cdf(cdf, 5);
  ASSERT_EQ(thin.size(), 5u);
  EXPECT_DOUBLE_EQ(thin.front().value, 0.0);
  EXPECT_DOUBLE_EQ(thin.back().value, 99.0);
}

TEST(Stats, Histogram) {
  const Histogram h = make_histogram({0.5, 1.5, 1.6, 9.9, -5.0, 100.0}, 0, 10, 10);
  EXPECT_EQ(h.bins[0], 2u);  // 0.5 and clamped -5.0
  EXPECT_EQ(h.bins[1], 2u);
  EXPECT_EQ(h.bins[9], 2u);  // 9.9 and clamped 100.0
  EXPECT_EQ(h.total(), 6u);
}

TEST(Knee, TooFewPoints) {
  EXPECT_FALSE(find_knee({1, 2, 3}).has_value());
}

TEST(Knee, FindsTransition) {
  // Flat cluster at 200 then a steep rise: knee at the transition.
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) y.push_back(200.0 + 0.1 * i);
  for (int i = 0; i < 10; ++i) y.push_back(400.0 + 150.0 * i);
  const auto knee = find_knee(y);
  ASSERT_TRUE(knee.has_value());
  EXPECT_GE(knee->index, 25u);
  EXPECT_LE(knee->index, 33u);
}

TEST(Rng, DeterministicAndForked) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.uniform(0, 1000), b.uniform(0, 1000));
  }
  Rng c(42);
  Rng child = c.fork();
  const auto v1 = child.uniform(0, 1 << 30);
  Rng c2(42);
  Rng child2 = c2.fork();
  EXPECT_EQ(v1, child2.uniform(0, 1 << 30));
}

TEST(Rng, ChanceExtremes) {
  Rng r(1);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, UniformBounds) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) {
    const auto v = r.uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(TextTable, Renders) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, Fmt) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.5, 1), "50.0%");
}

}  // namespace
}  // namespace tdat
