#include "experiments/fleet.hpp"

#include <gtest/gtest.h>

namespace tdat {
namespace {

FleetConfig tiny_fleet() {
  FleetConfig cfg;
  cfg.routers = 4;
  cfg.transfers_min = 1;
  cfg.transfers_max = 2;
  cfg.prefix_base = 1'500;
  cfg.seed = 77;
  return cfg;
}

TEST(Fleet, RunsAndAnalyzesEveryTransfer) {
  const FleetResult r = run_fleet(tiny_fleet());
  ASSERT_GE(r.transfers.size(), 4u);
  EXPECT_GT(r.total_packets, 0u);
  EXPECT_GT(r.total_bytes, r.total_packets * 50);  // frames have headers
  for (const TransferRecord& t : r.transfers) {
    EXPECT_TRUE(t.sender_finished) << "router " << t.router;
    EXPECT_FALSE(t.analysis.transfer.empty());
    EXPECT_GT(t.analysis.mct.prefix_count, 1000u);
  }
}

TEST(Fleet, DeterministicForSeed) {
  const FleetResult a = run_fleet(tiny_fleet());
  const FleetResult b = run_fleet(tiny_fleet());
  ASSERT_EQ(a.transfers.size(), b.transfers.size());
  EXPECT_EQ(a.total_packets, b.total_packets);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  for (std::size_t i = 0; i < a.transfers.size(); ++i) {
    EXPECT_EQ(a.transfers[i].analysis.transfer_duration(),
              b.transfers[i].analysis.transfer_duration());
  }
}

TEST(Fleet, SeedChangesOutcome) {
  FleetConfig other = tiny_fleet();
  other.seed = 78;
  EXPECT_NE(run_fleet(tiny_fleet()).total_packets,
            run_fleet(other).total_packets);
}

TEST(Fleet, RouterTablesAreStableAcrossTransfers) {
  FleetConfig cfg = tiny_fleet();
  cfg.transfers_min = 2;
  cfg.transfers_max = 2;
  const FleetResult r = run_fleet(cfg);
  std::map<std::size_t, std::size_t> prefix_counts;
  for (const TransferRecord& t : r.transfers) {
    auto [it, inserted] = prefix_counts.emplace(t.router, t.analysis.mct.prefix_count);
    if (!inserted) {
      EXPECT_EQ(it->second, t.analysis.mct.prefix_count)
          << "router " << t.router << " sent different tables";
    }
  }
}

TEST(Fleet, PaperPresetsHaveDocumentedShape) {
  const FleetConfig a1 = isp_a1_config();
  const FleetConfig a2 = isp_a2_config();
  const FleetConfig rv = rv_config();
  // ISP_A-1's vendor reset bug: the most transfers per router.
  EXPECT_GT(a1.transfers_max, a2.transfers_max);
  EXPECT_GT(a2.transfers_max, rv.transfers_max);
  // RouteViews: eBGP, the 16 KB window, aggressive sender backoff.
  EXPECT_TRUE(rv.ebgp);
  EXPECT_EQ(rv.recv_window, 16u * 1024);
  EXPECT_GT(rv.sender_min_rto, a1.sender_min_rto);
  EXPECT_FALSE(a1.ebgp);
  EXPECT_EQ(a2.collector, CollectorKind::kQuagga);
}

TEST(Fleet, GroundTruthTraitsAppear) {
  FleetConfig cfg = tiny_fleet();
  cfg.routers = 12;
  cfg.transfers_min = 2;
  cfg.transfers_max = 3;
  cfg.p_timer = 1.0;  // force the trait
  const FleetResult r = run_fleet(cfg);
  std::size_t with_timer = 0;
  for (const TransferRecord& t : r.transfers) {
    if (t.truth.timer) {
      ++with_timer;
      EXPECT_GT(t.truth.timer_value, 0);
    }
  }
  EXPECT_EQ(with_timer, r.transfers.size());
}

}  // namespace
}  // namespace tdat
