// Observability layer tests: histogram bucket math and merge, concurrent
// metric mutation (run these under TDAT_SANITIZE=thread via
// `ctest -L observability`), Chrome-trace round trips through a real JSON
// parser, logger levels/formats, and an end-to-end analyze_file run whose
// trace must contain spans from every pipeline layer.
#include <gtest/gtest.h>

#include <clocale>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "pcap/pcap_file.hpp"
#include "sim_scenarios.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace tdat {
namespace {

// ---------------------------------------------------------------------------
// A strict little JSON parser — enough of RFC 8259 to round-trip everything
// the observability layer emits. Tests parse real output instead of grepping
// substrings, so malformed JSON (locale commas, unbalanced braces, raw
// control characters) fails loudly.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> fields;   // kObject

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  // Parses the whole input as one JSON value; fails on trailing garbage.
  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.kind = JsonValue::Kind::kString; return string(out.str);
      case 't': out.kind = JsonValue::Kind::kBool; out.boolean = true;
                return literal("true");
      case 'f': out.kind = JsonValue::Kind::kBool; out.boolean = false;
                return literal("false");
      case 'n': out.kind = JsonValue::Kind::kNull; return literal("null");
      default:  out.kind = JsonValue::Kind::kNumber; return number(out.number);
    }
  }

  bool number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    // Re-parse with the C locale semantics of std::stod on the slice; a
    // locale comma in the payload would have ended the scan early and then
    // failed the surrounding structure.
    try {
      std::size_t used = 0;
      out = std::stod(std::string(text_.substr(start, pos_ - start)), &used);
      return used == pos_ - start;
    } catch (...) {
      return false;
    }
  }

  bool string(std::string& out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
          out += '?';  // tests only check presence, not code points
          break;
        }
        default: return false;
      }
    }
    return false;
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      JsonValue item;
      skip_ws();
      if (!value(item)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !string(key)) {
        return false;
      }
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue val;
      if (!value(val)) return false;
      out.fields.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue parse_or_die(const std::string& text) {
  JsonValue v;
  EXPECT_TRUE(JsonParser(text).parse(v)) << "invalid JSON: " << text;
  return v;
}

// ---------------------------------------------------------------------------
// Histogram bucket math

TEST(HistogramBuckets, IndexBoundaries) {
  EXPECT_EQ(histogram_bucket_index(-1), 0u);
  EXPECT_EQ(histogram_bucket_index(0), 0u);
  EXPECT_EQ(histogram_bucket_index(1), 1u);
  EXPECT_EQ(histogram_bucket_index(2), 2u);
  EXPECT_EQ(histogram_bucket_index(3), 2u);
  EXPECT_EQ(histogram_bucket_index(4), 3u);
  EXPECT_EQ(histogram_bucket_index(7), 3u);
  EXPECT_EQ(histogram_bucket_index(8), 4u);
  EXPECT_EQ(histogram_bucket_index(1 << 20), 21u);
  // Values beyond the covered range saturate into the last bucket.
  EXPECT_EQ(histogram_bucket_index(std::numeric_limits<std::int64_t>::max()),
            kHistogramBuckets - 1);
}

TEST(HistogramBuckets, BoundIsInclusiveUpperEdge) {
  EXPECT_EQ(histogram_bucket_bound(0), 0);
  EXPECT_EQ(histogram_bucket_bound(1), 1);
  EXPECT_EQ(histogram_bucket_bound(2), 3);
  EXPECT_EQ(histogram_bucket_bound(3), 7);
  for (std::size_t i = 1; i + 1 < kHistogramBuckets; ++i) {
    // The bound is the largest value mapping into bucket i; one past it
    // starts bucket i+1.
    EXPECT_EQ(histogram_bucket_index(histogram_bucket_bound(i)), i);
    EXPECT_EQ(histogram_bucket_index(histogram_bucket_bound(i) + 1), i + 1);
  }
}

TEST(LatencyHistogramTest, ObserveSnapshotQuantiles) {
  LatencyHistogram h;
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(h.snapshot().quantile(0.5), 0);

  h.observe(1);
  h.observe(100);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.sum, 101);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 100);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_EQ(s.quantile(0.0), 1);    // first sample's bucket bound
  EXPECT_EQ(s.quantile(1.0), 100);  // clamped to the observed max
}

TEST(LatencyHistogramTest, QuantileClampsToBucketBoundAndMax) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.observe(10);
  const HistogramSnapshot s = h.snapshot();
  // All samples share bucket [8,15]; the estimate is min(bound, max) = 10.
  EXPECT_EQ(s.quantile(0.5), 10);
  EXPECT_EQ(s.quantile(0.99), 10);
}

TEST(LatencyHistogramTest, MergeCombinesCountsAndExtremes) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.observe(2);
  a.observe(4);
  b.observe(1000);
  b.observe(2000);
  a.merge_from(b);
  const HistogramSnapshot s = a.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 2 + 4 + 1000 + 2000);
  EXPECT_EQ(s.min, 2);
  EXPECT_EQ(s.max, 2000);
}

TEST(LatencyHistogramTest, MergeIntoEmptyAdoptsExtremes) {
  LatencyHistogram a;
  LatencyHistogram b;
  b.observe(5);
  b.observe(9);
  a.merge_from(b);
  const HistogramSnapshot s = a.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.min, 5);
  EXPECT_EQ(s.max, 9);
}

TEST(LatencyHistogramTest, SinceDiffsBucketwise) {
  LatencyHistogram h;
  h.observe(3);
  h.observe(300);
  const HistogramSnapshot base = h.snapshot();
  h.observe(3);
  h.observe(30000);
  const HistogramSnapshot diff = h.snapshot().since(base);
  EXPECT_EQ(diff.count, 2u);
  EXPECT_EQ(diff.sum, 3 + 30000);
  EXPECT_EQ(diff.buckets[histogram_bucket_index(3)], 1u);
  EXPECT_EQ(diff.buckets[histogram_bucket_index(30000)], 1u);
  EXPECT_EQ(diff.buckets[histogram_bucket_index(300)], 0u);
}

// The boundary-value case the metrics/report paths must agree on: a sample
// sitting exactly on a pow2 bucket bound. The run-scoped delta (since(),
// what PipelineStats embeds in the JSON report) must report the same
// extremes and quantiles as a fresh histogram fed only the delta samples
// (what a metrics snapshot of a new run shows).
TEST(LatencyHistogramTest, SinceAgreesWithFreshHistogramAtBucketBounds) {
  const std::int64_t pre[] = {1, 7, 4096};  // earlier-run samples
  // Delta samples sitting exactly on bucket edges: 8 and 16 are lower
  // edges (2^(i-1)), 15 and 255 inclusive upper bounds (2^i - 1).
  const std::int64_t delta[] = {8, 15, 16, 255};
  LatencyHistogram cumulative;
  for (const std::int64_t v : pre) cumulative.observe(v);
  const HistogramSnapshot base = cumulative.snapshot();
  LatencyHistogram fresh;
  for (const std::int64_t v : delta) {
    cumulative.observe(v);
    fresh.observe(v);
  }
  const HistogramSnapshot run = cumulative.snapshot().since(base);
  const HistogramSnapshot want = fresh.snapshot();
  EXPECT_EQ(run.count, want.count);
  EXPECT_EQ(run.sum, want.sum);
  EXPECT_EQ(run.buckets, want.buckets);
  // The carried extremes (1 and 4096) lie outside the delta's occupied
  // buckets and must have been clamped away to the delta's own edges.
  EXPECT_EQ(run.min, want.min);
  EXPECT_EQ(run.max, want.max);
  EXPECT_EQ(run.min, 8);
  EXPECT_EQ(run.max, 255);
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(run.quantile(q), want.quantile(q)) << "q=" << q;
  }
}

TEST(HistogramSnapshotTest, MergeFromIsCommutativeWithEmptyIdentity) {
  LatencyHistogram ha;
  LatencyHistogram hb;
  ha.observe(3);
  ha.observe(500);
  hb.observe(1);
  hb.observe(70000);
  const HistogramSnapshot a = ha.snapshot();
  const HistogramSnapshot b = hb.snapshot();
  HistogramSnapshot ab = a;
  ab.merge_from(b);
  HistogramSnapshot ba = b;
  ba.merge_from(a);
  EXPECT_EQ(ab.buckets, ba.buckets);
  EXPECT_EQ(ab.count, ba.count);
  EXPECT_EQ(ab.sum, ba.sum);
  EXPECT_EQ(ab.min, ba.min);
  EXPECT_EQ(ab.max, ba.max);
  EXPECT_EQ(ab.min, 1);
  EXPECT_EQ(ab.max, 70000);
  // Merging the empty snapshot changes nothing, in either direction.
  HistogramSnapshot id = a;
  id.merge_from(HistogramSnapshot{});
  EXPECT_EQ(id.buckets, a.buckets);
  EXPECT_EQ(id.min, a.min);
  HistogramSnapshot from_empty;
  from_empty.merge_from(a);
  EXPECT_EQ(from_empty.buckets, a.buckets);
  EXPECT_EQ(from_empty.min, a.min);
  EXPECT_EQ(from_empty.max, a.max);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition

TEST(MetricsRegistryTest, PrometheusExpositionRendersAllMetricKinds) {
  metrics().reset();
  metrics().counter("test.prom_counter").inc(7);
  metrics().gauge("test.prom_gauge").set(-3);
  LatencyHistogram& h = metrics().histogram("test.prom_histogram");
  h.observe(1);
  h.observe(9);
  h.observe(10);
  const std::string text = metrics().to_prometheus();
  EXPECT_NE(text.find("# TYPE tdat_test_prom_counter counter\n"
                      "tdat_test_prom_counter 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tdat_test_prom_gauge gauge\n"
                      "tdat_test_prom_gauge -3\n"),
            std::string::npos);
  // Cumulative buckets with the pow2 inclusive upper bounds: 1 sample <= 1,
  // all three <= 15 (bucket of 9 and 10), plus the +Inf catch-all.
  EXPECT_NE(text.find("# TYPE tdat_test_prom_histogram histogram"),
            std::string::npos);
  EXPECT_NE(text.find("tdat_test_prom_histogram_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("tdat_test_prom_histogram_bucket{le=\"15\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("tdat_test_prom_histogram_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("tdat_test_prom_histogram_sum 20\n"), std::string::npos);
  EXPECT_NE(text.find("tdat_test_prom_histogram_count 3\n"),
            std::string::npos);
  metrics().reset();
}

// ---------------------------------------------------------------------------
// Concurrent mutation — the test `ctest -L observability` runs under
// TDAT_SANITIZE=thread. Exact final counts prove no increment was lost.

TEST(MetricsConcurrency, CountersAndHistogramsAreExactUnderContention) {
  Counter& c = metrics().counter("test.concurrent_counter");
  Gauge& g = metrics().gauge("test.concurrent_gauge");
  LatencyHistogram& h = metrics().histogram("test.concurrent_histogram");
  const std::uint64_t c0 = c.value();
  const std::uint64_t h0 = h.snapshot().count;
  const std::int64_t g0 = g.value();

  constexpr std::size_t kItems = 20'000;
  parallel_for(kItems, 8, [&](std::size_t i) {
    c.inc();
    g.add(1);
    h.observe(static_cast<std::int64_t>(i % 1024));
  });

  EXPECT_EQ(c.value() - c0, kItems);
  EXPECT_EQ(g.value() - g0, static_cast<std::int64_t>(kItems));
  EXPECT_EQ(h.snapshot().count - h0, kItems);
}

TEST(MetricsRegistryTest, AddressesAreStableAcrossLookupAndReset) {
  Counter& first = metrics().counter("test.stable_address");
  first.inc(41);
  Counter& second = metrics().counter("test.stable_address");
  EXPECT_EQ(&first, &second);
  metrics().reset();
  EXPECT_EQ(first.value(), 0u);  // zeroed in place, reference still valid
  first.inc();
  EXPECT_EQ(second.value(), 1u);
}

TEST(MetricsRegistryTest, ToJsonParsesAndContainsRegisteredMetrics) {
  metrics().counter("test.json_counter").inc(7);
  metrics().gauge("test.json_gauge").set(-3);
  metrics().histogram("test.json_histogram").observe(42);

  const JsonValue root = parse_or_die(metrics().to_json());
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* c = counters->find("test.json_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(c->number, 7.0);
  const JsonValue* gauges = root.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(gauges->find("test.json_gauge"), nullptr);
  const JsonValue* hists = root.find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* h = hists->find("test.json_histogram");
  ASSERT_NE(h, nullptr);
  ASSERT_NE(h->find("p99"), nullptr);
  ASSERT_NE(h->find("buckets"), nullptr);
}

TEST(JsonDoubleTest, ShortestRoundTripAndNonFinite) {
  EXPECT_EQ(json_double(0.5), "0.5");
  EXPECT_EQ(json_double(0.0), "0");
  EXPECT_EQ(json_double(-2.25), "-2.25");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(json_double(std::numeric_limits<double>::quiet_NaN()), "0");
}

TEST(JsonDoubleTest, IgnoresProcessLocale) {
  // de_DE renders 0.5 as "0,5" through printf — json_double must not.
  const char* prev = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = prev != nullptr ? prev : "C";
  if (std::setlocale(LC_NUMERIC, "de_DE.UTF-8") == nullptr) {
    GTEST_SKIP() << "de_DE.UTF-8 locale not installed";
  }
  const std::string rendered = json_double(0.5);
  std::setlocale(LC_NUMERIC, saved.c_str());
  EXPECT_EQ(rendered, "0.5");
}

// ---------------------------------------------------------------------------
// Trace round trip

TEST(TraceTest, RoundTripIsValidChromeTrace) {
  trace_start();
  ASSERT_TRUE(trace_enabled());
  {
    TDAT_TRACE_SPAN("unit.outer", "test", "items", std::int64_t{3});
    TDAT_TRACE_SPAN("unit.inner", "test", "label", std::string("a\"b\\c"));
    TDAT_TRACE_INSTANT("unit.marker", "test");
  }
  // Spans recorded on pool workers must survive the workers' thread exit.
  parallel_for(8, 4, [](std::size_t) { TDAT_TRACE_SPAN("unit.worker", "test"); });

  const std::string json = trace_stop_json();
  EXPECT_FALSE(trace_enabled());

  const JsonValue root = parse_or_die(json);
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);

  std::size_t complete = 0;
  std::size_t instants = 0;
  std::size_t workers = 0;
  double last_ts = -1.0;
  for (const JsonValue& e : events->items) {
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    if (ph->str == "M") continue;  // metadata carries no duration
    EXPECT_GE(e.find("ts")->number, last_ts) << "events must be time-sorted";
    last_ts = e.find("ts")->number;
    if (ph->str == "X") {
      ++complete;
      ASSERT_NE(e.find("dur"), nullptr);
      EXPECT_GE(e.find("dur")->number, 0.0);
    } else if (ph->str == "i") {
      ++instants;
      ASSERT_NE(e.find("s"), nullptr);
    } else {
      FAIL() << "unexpected event phase: " << ph->str;
    }
    if (e.find("name")->str == "unit.worker") ++workers;
  }
  EXPECT_GE(complete, 2u + 8u);  // outer + inner + every worker span
  EXPECT_EQ(instants, 1u);
  EXPECT_EQ(workers, 8u);

  // The escaped string argument must round-trip through the parser.
  bool found_label = false;
  for (const JsonValue& e : events->items) {
    if (e.find("name")->str != "unit.inner") continue;
    const JsonValue* args = e.find("args");
    ASSERT_NE(args, nullptr);
    const JsonValue* label = args->find("label");
    ASSERT_NE(label, nullptr);
    EXPECT_EQ(label->str, "a\"b\\c");
    found_label = true;
  }
  EXPECT_TRUE(found_label);
}

TEST(TraceTest, DisarmedSpansRecordNothing) {
  ASSERT_FALSE(trace_enabled());
  { TDAT_TRACE_SPAN("unit.ignored", "test"); }
  trace_start();
  const std::string json = trace_stop_json();
  const JsonValue root = parse_or_die(json);
  for (const JsonValue& e : root.find("traceEvents")->items) {
    EXPECT_NE(e.find("name")->str, "unit.ignored");
  }
}

// ---------------------------------------------------------------------------
// Logger

class CaptureSink {
 public:
  CaptureSink() : file_(std::tmpfile()) { set_log_sink(file_); }
  ~CaptureSink() {
    set_log_sink(nullptr);
    if (file_ != nullptr) std::fclose(file_);
  }

  std::string contents() {
    std::fflush(file_);
    std::rewind(file_);
    std::string out;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), file_)) > 0) {
      out.append(buf, n);
    }
    return out;
  }

 private:
  std::FILE* file_;
};

class LoggerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_log_level(LogLevel::kWarn);
    set_log_format(LogFormat::kText);
  }
};

TEST_F(LoggerTest, LevelGateFiltersLowerSeverities) {
  CaptureSink sink;
  set_log_level(LogLevel::kInfo);
  TDAT_LOG_DEBUG("should not appear %d", 1);
  TDAT_LOG_INFO("info line %d", 2);
  TDAT_LOG_ERROR("error line %d", 3);
  const std::string out = sink.contents();
  EXPECT_EQ(out.find("should not appear"), std::string::npos);
  EXPECT_NE(out.find("info line 2"), std::string::npos);
  EXPECT_NE(out.find("error line 3"), std::string::npos);
}

TEST_F(LoggerTest, ParsesLevelNames) {
  EXPECT_TRUE(set_log_level("debug"));
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  EXPECT_TRUE(set_log_level("off"));
  EXPECT_EQ(log_level(), LogLevel::kOff);
  EXPECT_FALSE(set_log_level("verbose"));
  EXPECT_EQ(log_level(), LogLevel::kOff);  // unchanged on bad input
}

TEST_F(LoggerTest, JsonLinesParseAndEscape) {
  CaptureSink sink;
  set_log_level(LogLevel::kInfo);
  set_log_format(LogFormat::kJson);
  TDAT_LOG_INFO("quote \" backslash \\ done");
  const std::string out = sink.contents();
  ASSERT_FALSE(out.empty());
  ASSERT_EQ(out.back(), '\n');
  const JsonValue line = parse_or_die(out.substr(0, out.size() - 1));
  ASSERT_NE(line.find("ts_us"), nullptr);
  ASSERT_NE(line.find("tid"), nullptr);
  const JsonValue* level = line.find("level");
  ASSERT_NE(level, nullptr);
  EXPECT_EQ(level->str, "info");
  const JsonValue* msg = line.find("msg");
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->str, "quote \" backslash \\ done");
}

// ---------------------------------------------------------------------------
// End to end: a traced multi-connection analyze_file run must produce spans
// from ingest, demux, the pool workers, and per-connection analysis, plus
// nonzero pipeline counters and histogram summaries in PipelineStats.

TEST(ObservabilityEndToEnd, TracedAnalyzeRunCoversEveryLayer) {
  SimWorld world(20120613);
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < 4; ++i) {
    ids.push_back(world.add_session(
        SessionSpec{}, test::table_messages(400, 0x5eed ^ (i + 1))));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    world.start_session(ids[i], static_cast<Micros>(i) * 20 * kMicrosPerMilli);
  }
  world.run_until(600 * kMicrosPerSec);

  const std::string path =
      ::testing::TempDir() + "tdat_observability_e2e.pcap";
  ASSERT_TRUE(write_pcap_file(path, world.take_trace()));

  trace_start();
  AnalyzerOptions opts;
  opts.jobs = 4;
  const auto analyzed = analyze_file(path, opts);
  const std::string trace_json = trace_stop_json();
  ASSERT_TRUE(analyzed.ok()) << analyzed.error();
  EXPECT_EQ(analyzed.value().connections.size(), 4u);

  // Trace: spans from every pipeline layer, all on one valid timeline.
  const JsonValue trace_root = parse_or_die(trace_json);
  std::size_t ingest = 0, demux = 0, pool = 0, conns = 0;
  for (const JsonValue& e : trace_root.find("traceEvents")->items) {
    const std::string& name = e.find("name")->str;
    if (name == "ingest") ++ingest;
    if (name == "demux.take" || name == "demux.new_connection") ++demux;
    if (name == "pool.task") ++pool;
    if (name == "analyze.connection") ++conns;
  }
  EXPECT_GE(ingest, 1u);
  EXPECT_GE(demux, 4u);
  EXPECT_GE(pool, 1u);
  EXPECT_EQ(conns, 4u);

  // Metrics: the embedded snapshot parses and the ingest counters moved.
  const PipelineStats& stats = analyzed.value().stats;
  ASSERT_FALSE(stats.metrics_json.empty());
  const JsonValue m = parse_or_die(stats.metrics_json);
  const JsonValue* counters = m.find("counters");
  ASSERT_NE(counters, nullptr);
  for (const char* key : {"pcap.records", "pcap.bytes", "pcap.mmap_files",
                          "pcap.mmap_bytes", "demux.packets", "pool.tasks",
                          "analyze.connections_done"}) {
    const JsonValue* v = counters->find(key);
    ASSERT_NE(v, nullptr) << key;
    EXPECT_GT(v->number, 0.0) << key;
  }

  // The default file path above maps the capture, so the chunked reader's
  // instrumentation only moves when streaming is forced.
  AnalyzerOptions stream_opts;
  stream_opts.jobs = 1;
  stream_opts.ingest.use_mmap = false;
  const auto streamed = analyze_file(path, stream_opts);
  std::remove(path.c_str());
  ASSERT_TRUE(streamed.ok()) << streamed.error();
  const JsonValue m2 = parse_or_die(streamed.value().stats.metrics_json);
  const JsonValue* refills = m2.find("counters")->find("pcap.chunk_refills");
  ASSERT_NE(refills, nullptr);
  EXPECT_GT(refills->number, 0.0);

  // PipelineStats::to_json embeds per-run histogram summaries for the pool
  // queue wait and per-connection analysis time.
  const JsonValue s = parse_or_die(stats.to_json());
  const JsonValue* qw = s.find("queue_wait_us");
  ASSERT_NE(qw, nullptr);
  EXPECT_GT(qw->find("count")->number, 0.0);
  const JsonValue* cu = s.find("connection_analysis_us");
  ASSERT_NE(cu, nullptr);
  EXPECT_EQ(cu->find("count")->number, 4.0);
  ASSERT_NE(s.find("metrics"), nullptr);
}

}  // namespace
}  // namespace tdat
