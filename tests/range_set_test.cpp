#include "timerange/range_set.hpp"

#include <gtest/gtest.h>

#include <random>

namespace tdat {
namespace {

TEST(TimeRange, Basics) {
  TimeRange r{10, 20};
  EXPECT_EQ(r.length(), 10);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(r.contains(10));
  EXPECT_TRUE(r.contains(19));
  EXPECT_FALSE(r.contains(20));
  EXPECT_FALSE(r.contains(9));
  EXPECT_TRUE((TimeRange{5, 5}.empty()));
  EXPECT_TRUE((TimeRange{5, 3}.empty()));
}

TEST(TimeRange, Overlaps) {
  TimeRange a{10, 20};
  EXPECT_TRUE(a.overlaps({15, 25}));
  EXPECT_TRUE(a.overlaps({0, 11}));
  EXPECT_FALSE(a.overlaps({20, 30}));  // half-open: touching is not overlap
  EXPECT_FALSE(a.overlaps({0, 10}));
}

TEST(RangeSet, InsertMergesOverlapping) {
  RangeSet s;
  s.insert(10, 20);
  s.insert(15, 30);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.size(), 20);
  EXPECT_EQ(s.ranges()[0], (TimeRange{10, 30}));
}

TEST(RangeSet, InsertMergesAdjacent) {
  RangeSet s;
  s.insert(10, 20);
  s.insert(20, 30);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.size(), 20);
}

TEST(RangeSet, InsertKeepsDisjoint) {
  RangeSet s;
  s.insert(10, 20);
  s.insert(30, 40);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.size(), 20);
}

TEST(RangeSet, InsertOutOfOrderAndSpanning) {
  RangeSet s;
  s.insert(30, 40);
  s.insert(10, 20);
  s.insert(50, 60);
  EXPECT_EQ(s.count(), 3u);
  s.insert(15, 55);  // bridges all three
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.ranges()[0], (TimeRange{10, 60}));
}

TEST(RangeSet, InsertEmptyIgnored) {
  RangeSet s;
  s.insert(10, 10);
  s.insert(20, 15);
  EXPECT_TRUE(s.empty());
}

TEST(RangeSet, ConstructorNormalizes) {
  RangeSet s({{30, 40}, {10, 20}, {35, 50}, {5, 5}});
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.size(), 10 + 20);
}

TEST(RangeSet, Contains) {
  RangeSet s({{10, 20}, {30, 40}});
  EXPECT_TRUE(s.contains(10));
  EXPECT_FALSE(s.contains(20));
  EXPECT_FALSE(s.contains(25));
  EXPECT_TRUE(s.contains(39));
  EXPECT_FALSE(s.contains(40));
  EXPECT_FALSE(s.contains(0));
}

TEST(RangeSet, Overlapping) {
  RangeSet s({{10, 20}, {30, 40}, {50, 60}});
  auto hits = s.overlapping({15, 55});
  ASSERT_EQ(hits.size(), 3u);
  hits = s.overlapping({20, 30});  // falls exactly in a gap
  EXPECT_TRUE(hits.empty());
  hits = s.overlapping({39, 41});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], (TimeRange{30, 40}));
}

TEST(RangeSet, SizeWithin) {
  RangeSet s({{10, 20}, {30, 40}});
  EXPECT_EQ(s.size_within({0, 100}), 20);
  EXPECT_EQ(s.size_within({15, 35}), 5 + 5);
  EXPECT_EQ(s.size_within({20, 30}), 0);
}

TEST(RangeSet, Span) {
  RangeSet s;
  EXPECT_TRUE(s.span().empty());
  s.insert(10, 20);
  s.insert(50, 60);
  EXPECT_EQ(s.span(), (TimeRange{10, 60}));
}

TEST(RangeSet, Union) {
  RangeSet a({{10, 20}, {40, 50}});
  RangeSet b({{15, 45}, {60, 70}});
  RangeSet u = a.set_union(b);
  ASSERT_EQ(u.count(), 2u);
  EXPECT_EQ(u.ranges()[0], (TimeRange{10, 50}));
  EXPECT_EQ(u.ranges()[1], (TimeRange{60, 70}));
}

TEST(RangeSet, UnionWithEmpty) {
  RangeSet a({{10, 20}});
  RangeSet empty;
  EXPECT_EQ(a.set_union(empty), a);
  EXPECT_EQ(empty.set_union(a), a);
}

TEST(RangeSet, Intersection) {
  RangeSet a({{10, 30}, {40, 60}});
  RangeSet b({{20, 50}});
  RangeSet i = a.set_intersection(b);
  ASSERT_EQ(i.count(), 2u);
  EXPECT_EQ(i.ranges()[0], (TimeRange{20, 30}));
  EXPECT_EQ(i.ranges()[1], (TimeRange{40, 50}));
}

TEST(RangeSet, IntersectionDisjoint) {
  RangeSet a({{10, 20}});
  RangeSet b({{20, 30}});
  EXPECT_TRUE(a.set_intersection(b).empty());
}

TEST(RangeSet, Difference) {
  RangeSet a({{10, 50}});
  RangeSet b({{20, 30}, {40, 45}});
  RangeSet d = a.set_difference(b);
  ASSERT_EQ(d.count(), 3u);
  EXPECT_EQ(d.ranges()[0], (TimeRange{10, 20}));
  EXPECT_EQ(d.ranges()[1], (TimeRange{30, 40}));
  EXPECT_EQ(d.ranges()[2], (TimeRange{45, 50}));
}

TEST(RangeSet, DifferenceRemovesAll) {
  RangeSet a({{10, 20}});
  RangeSet b({{0, 100}});
  EXPECT_TRUE(a.set_difference(b).empty());
}

TEST(RangeSet, Complement) {
  RangeSet a({{10, 20}, {30, 40}});
  RangeSet c = a.complement({0, 50});
  ASSERT_EQ(c.count(), 3u);
  EXPECT_EQ(c.ranges()[0], (TimeRange{0, 10}));
  EXPECT_EQ(c.ranges()[1], (TimeRange{20, 30}));
  EXPECT_EQ(c.ranges()[2], (TimeRange{40, 50}));
}

TEST(RangeSet, Gaps) {
  RangeSet a({{10, 20}, {30, 40}, {45, 60}});
  RangeSet g = a.gaps();
  ASSERT_EQ(g.count(), 2u);
  EXPECT_EQ(g.ranges()[0], (TimeRange{20, 30}));
  EXPECT_EQ(g.ranges()[1], (TimeRange{40, 45}));
}

TEST(RangeSet, ToString) {
  RangeSet a({{1, 2}, {4, 6}});
  EXPECT_EQ(a.to_string(), "{[1,2), [4,6)}");
}

// ---------------------------------------------------------------------------
// Property tests against a brute-force bitmap reference (the data structure
// the original Perl prototype effectively used).
// ---------------------------------------------------------------------------

class Bitmap {
 public:
  explicit Bitmap(std::size_t n) : bits_(n, false) {}

  void insert(Micros b, Micros e) {
    for (Micros t = std::max<Micros>(b, 0); t < e && t < Micros(bits_.size()); ++t) {
      bits_[static_cast<std::size_t>(t)] = true;
    }
  }

  static Bitmap from(const RangeSet& s, std::size_t n) {
    Bitmap bm(n);
    for (const TimeRange& r : s.ranges()) bm.insert(r.begin, r.end);
    return bm;
  }

  Micros size() const {
    Micros total = 0;
    for (bool b : bits_) total += b ? 1 : 0;
    return total;
  }

  Bitmap op(const Bitmap& o, char kind) const {
    Bitmap out(bits_.size());
    for (std::size_t i = 0; i < bits_.size(); ++i) {
      switch (kind) {
        case 'u': out.bits_[i] = bits_[i] || o.bits_[i]; break;
        case 'i': out.bits_[i] = bits_[i] && o.bits_[i]; break;
        case 'd': out.bits_[i] = bits_[i] && !o.bits_[i]; break;
      }
    }
    return out;
  }

  bool operator==(const Bitmap& o) const { return bits_ == o.bits_; }

 private:
  std::vector<bool> bits_;
};

class RangeSetPropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

RangeSet random_set(std::mt19937& rng, Micros domain, int n) {
  RangeSet s;
  std::uniform_int_distribution<Micros> start(0, domain - 1);
  std::uniform_int_distribution<Micros> len(0, domain / 4);
  for (int i = 0; i < n; ++i) {
    const Micros b = start(rng);
    s.insert(b, std::min(domain, b + len(rng)));
  }
  return s;
}

TEST_P(RangeSetPropertyTest, AlgebraMatchesBitmapReference) {
  constexpr Micros kDomain = 200;
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> nr(0, 12);

  const RangeSet a = random_set(rng, kDomain, nr(rng));
  const RangeSet b = random_set(rng, kDomain, nr(rng));
  const Bitmap ba = Bitmap::from(a, kDomain);
  const Bitmap bb = Bitmap::from(b, kDomain);

  EXPECT_EQ(ba.size(), a.size());
  EXPECT_TRUE(Bitmap::from(a.set_union(b), kDomain) == ba.op(bb, 'u'));
  EXPECT_TRUE(Bitmap::from(a.set_intersection(b), kDomain) == ba.op(bb, 'i'));
  EXPECT_TRUE(Bitmap::from(a.set_difference(b), kDomain) == ba.op(bb, 'd'));

  // Structural invariants: sorted, disjoint, non-adjacent, non-empty.
  for (const RangeSet* s : {&a, &b}) {
    const auto& rs = s->ranges();
    for (std::size_t i = 0; i < rs.size(); ++i) {
      EXPECT_LT(rs[i].begin, rs[i].end);
      if (i > 0) {
        EXPECT_LT(rs[i - 1].end, rs[i].begin);
      }
    }
  }
}

TEST_P(RangeSetPropertyTest, AlgebraLaws) {
  constexpr Micros kDomain = 500;
  std::mt19937 rng(GetParam() ^ 0x9e3779b9);
  std::uniform_int_distribution<int> nr(0, 10);
  const RangeSet a = random_set(rng, kDomain, nr(rng));
  const RangeSet b = random_set(rng, kDomain, nr(rng));
  const RangeSet c = random_set(rng, kDomain, nr(rng));
  const TimeRange window{0, kDomain};

  // Commutativity / associativity.
  EXPECT_EQ(a.set_union(b), b.set_union(a));
  EXPECT_EQ(a.set_intersection(b), b.set_intersection(a));
  EXPECT_EQ(a.set_union(b).set_union(c), a.set_union(b.set_union(c)));

  // De Morgan within the window.
  const RangeSet lhs = a.set_union(b).complement(window);
  const RangeSet rhs = a.complement(window).set_intersection(b.complement(window));
  EXPECT_EQ(lhs, rhs);

  // Size additivity: |A| + |B| == |A∪B| + |A∩B|.
  EXPECT_EQ(a.size() + b.size(),
            a.set_union(b).size() + a.set_intersection(b).size());

  // Difference as intersection with complement.
  EXPECT_EQ(a.set_difference(b),
            a.set_intersection(b.complement(window)));

  // Double complement is identity.
  EXPECT_EQ(a.complement(window).complement(window), a);
}

// The buffer-reusing variants must agree with the value-returning algebra
// regardless of what garbage the out/scratch buffers held before the call —
// they are what the analysis hot path runs on.
TEST_P(RangeSetPropertyTest, InPlaceVariantsMatchValueAlgebra) {
  constexpr Micros kDomain = 300;
  std::mt19937 rng(GetParam() ^ 0x5bd1e995);
  std::uniform_int_distribution<int> nr(0, 12);
  const RangeSet a = random_set(rng, kDomain, nr(rng));
  const RangeSet b = random_set(rng, kDomain, nr(rng));
  const TimeRange window{0, kDomain};

  // Pre-dirty the buffers: results must not depend on prior contents.
  RangeSet out = random_set(rng, kDomain, nr(rng));
  RangeSet scratch = random_set(rng, kDomain, nr(rng));

  a.union_into(b, out);
  EXPECT_EQ(out, a.set_union(b));
  a.intersect_into(b, out);
  EXPECT_EQ(out, a.set_intersection(b));
  a.subtract_into(b, out);
  EXPECT_EQ(out, a.set_difference(b));
  a.complement_into(window, out);
  EXPECT_EQ(out, a.complement(window));
  a.gaps_into(out);
  EXPECT_EQ(out, a.gaps());

  RangeSet w = a;
  w.union_with(b, scratch);
  EXPECT_EQ(w, a.set_union(b));
  w = a;
  w.intersect_with(b, scratch);
  EXPECT_EQ(w, a.set_intersection(b));
  w = a;
  w.subtract_with(b, scratch);
  EXPECT_EQ(w, a.set_difference(b));
}

// Chained in-place algebra (the Operation-stage pattern: one evolving set,
// one swap buffer) stays equal to the chained value algebra.
TEST_P(RangeSetPropertyTest, ChainedInPlaceAlgebraMatches) {
  constexpr Micros kDomain = 300;
  std::mt19937 rng(GetParam() ^ 0x27d4eb2d);
  std::uniform_int_distribution<int> nr(0, 10);
  const RangeSet a = random_set(rng, kDomain, nr(rng));
  const RangeSet b = random_set(rng, kDomain, nr(rng));
  const RangeSet c = random_set(rng, kDomain, nr(rng));
  const RangeSet d = random_set(rng, kDomain, nr(rng));

  RangeSet w = a;
  RangeSet scratch;
  w.union_with(b, scratch);
  w.subtract_with(c, scratch);
  w.intersect_with(d, scratch);
  EXPECT_EQ(w, a.set_union(b).set_difference(c).set_intersection(d));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeSetPropertyTest,
                         ::testing::Range<std::uint32_t>(0, 25));

}  // namespace
}  // namespace tdat
