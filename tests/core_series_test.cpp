// Unit tests of individual event series on small crafted traces, where the
// expected ranges can be computed by hand.
#include "core/series_builder.hpp"

#include <gtest/gtest.h>

#include "core/series_names.hpp"
#include "helpers.hpp"

namespace tdat {
namespace {

using test::PacketFactory;

Connection conn_of(std::vector<DecodedPacket> pkts) {
  auto conns = split_connections(pkts);
  EXPECT_EQ(conns.size(), 1u);
  return conns[0];
}

SeriesBundle build(const Connection& conn, AnalyzerOptions opts = {}) {
  return build_series(conn, compute_profile(conn), opts);
}

// A simple window-bound-looking exchange: bursts of data, ACK, idle, burst.
std::vector<DecodedPacket> basic_trace(PacketFactory& f) {
  std::vector<DecodedPacket> t = f.handshake(0, 10'000);
  const Micros t0 = 20'000;
  t.push_back(f.data(t0, 0, 1000));
  t.push_back(f.data(t0 + 100, 1000, 1000));
  t.push_back(f.ack(t0 + 300, 2000));
  t.push_back(f.data(t0 + 10'300, 2000, 1000));
  t.push_back(f.ack(t0 + 10'600, 3000));
  return t;
}

TEST(SeriesBuilder, All34SeriesPresent) {
  PacketFactory f;
  const Connection conn = conn_of(basic_trace(f));
  const SeriesBundle b = build(conn);
  for (const char* name :
       {series::kTransmission, series::kAckArrival, series::kOutstanding,
        series::kAdvWindow, series::kRetransmission, series::kUpstreamLoss,
        series::kDownstreamLoss, series::kOutOfSequence, series::kDuplicate,
        series::kZeroAdvWindow, series::kKeepAlive, series::kKeepAliveOnly,
        series::kIdle, series::kDataFlight, series::kAckFlight,
        series::kHandshake, series::kTeardown, series::kRtoRecovery,
        series::kFastRecovery, series::kSendLocalLoss, series::kRecvLocalLoss,
        series::kNetworkLoss, series::kBgpKeepAlive, series::kSendAppLimited,
        series::kSmallAdvWindow, series::kLargeAdvWindow, series::kAdvBndOut,
        series::kCwndBndOut, series::kSmallAdvBndOut, series::kLargeAdvBndOut,
        series::kZeroAdvBndOut, series::kBandwidthLimited, series::kLossRecovery,
        series::kWindowLimited}) {
    EXPECT_TRUE(b.registry.has(name)) << name;
  }
  EXPECT_GE(b.registry.count(), 34u);
}

TEST(SeriesBuilder, TransmissionCountsDataPackets) {
  PacketFactory f;
  const Connection conn = conn_of(basic_trace(f));
  const SeriesBundle b = build(conn);
  EXPECT_EQ(b.registry.get(series::kTransmission).count(), 3u);
  EXPECT_EQ(b.registry.get(series::kTransmission).total_bytes(), 3000u);
}

TEST(SeriesBuilder, DataSpanCoversFirstToLastData) {
  PacketFactory f;
  const Connection conn = conn_of(basic_trace(f));
  const SeriesBundle b = build(conn);
  EXPECT_EQ(b.data_span.begin, 20'000);
  EXPECT_EQ(b.data_span.end, 30'300 + 1);
}

TEST(SeriesBuilder, HandshakeRange) {
  PacketFactory f;
  const Connection conn = conn_of(basic_trace(f));
  const SeriesBundle b = build(conn);
  const auto& hs = b.registry.get(series::kHandshake);
  ASSERT_EQ(hs.count(), 1u);
  EXPECT_EQ(hs.events()[0].range, (TimeRange{0, 10'000}));
}

TEST(SeriesBuilder, AdvWindowSlices) {
  PacketFactory f;
  std::vector<DecodedPacket> t;
  t.push_back(f.data(0, 0, 1000));
  t.push_back(f.ack(1'000, 1000, 60'000));  // large (max 60000)
  t.push_back(f.data(2'000, 1000, 1000));
  t.push_back(f.ack(3'000, 2000, 2'000));   // small (< 3*1460)
  t.push_back(f.data(4'000, 2000, 1000));
  t.push_back(f.ack(5'000, 3000, 0));       // zero
  t.push_back(f.data(400'000, 3000, 100));  // closes the last window range
  const Connection conn = conn_of(t);
  const SeriesBundle b = build(conn, AnalyzerOptions{});

  const auto& small = b.registry.get(series::kSmallAdvWindow);
  const auto& large = b.registry.get(series::kLargeAdvWindow);
  const auto& zero = b.registry.get(series::kZeroAdvWindow);
  // Zero windows are also small; the large slice covers only the 60000 step.
  EXPECT_GT(small.size(), 0);
  EXPECT_GT(large.size(), 0);
  EXPECT_GT(zero.size(), 0);
  EXPECT_TRUE(zero.ranges().set_difference(small.ranges()).empty());
  EXPECT_TRUE(large.ranges().set_intersection(small.ranges()).empty());
}

TEST(SeriesBuilder, SendAppLimitedMatchesSetAlgebraDefinition) {
  PacketFactory f;
  const Connection conn = conn_of(basic_trace(f));
  const SeriesBundle b = build(conn);
  RangeSet span;
  span.insert(b.data_span);
  const RangeSet expected =
      span.set_difference(b.registry.get(series::kOutstanding).ranges())
          .set_difference(b.registry.get(series::kZeroAdvWindow).ranges())
          .set_difference(b.registry.get(series::kRetransmission).ranges())
          .set_difference(b.registry.get(series::kHandshake).ranges())
          .set_difference(b.registry.get(series::kBandwidthLimited).ranges());
  EXPECT_EQ(b.registry.get(series::kSendAppLimited).ranges(), expected);
}

TEST(SeriesBuilder, RtoVsFastRecoverySplit) {
  PacketFactory f;
  std::vector<DecodedPacket> t;
  t.push_back(f.data(0, 0, 100));
  t.push_back(f.data(100, 100, 100));
  t.push_back(f.data(5'000, 0, 100));     // retx after 5 ms: fast recovery
  t.push_back(f.data(500'000, 100, 100)); // retx after 500 ms: RTO-class
  const Connection conn = conn_of(t);
  const SeriesBundle b = build(conn);
  EXPECT_EQ(b.registry.get(series::kFastRecovery).count(), 1u);
  EXPECT_EQ(b.registry.get(series::kRtoRecovery).count(), 1u);
  EXPECT_EQ(b.registry.get(series::kRetransmission).count(), 2u);
  EXPECT_EQ(b.registry.get(series::kDownstreamLoss).count(), 2u);
}

TEST(SeriesBuilder, LossRecoveryIsUnionOfLossSeries) {
  PacketFactory f;
  std::vector<DecodedPacket> t;
  t.push_back(f.data(0, 0, 100));
  t.push_back(f.data(1'000, 200, 100));   // hole: upstream loss
  t.push_back(f.data(300'000, 100, 100)); // fills it (upstream retx)
  t.push_back(f.data(700'000, 0, 100));   // downstream retx of first
  const Connection conn = conn_of(t);
  const SeriesBundle b = build(conn);
  const RangeSet expected =
      b.registry.get(series::kUpstreamLoss)
          .ranges()
          .set_union(b.registry.get(series::kDownstreamLoss).ranges());
  EXPECT_EQ(b.registry.get(series::kLossRecovery).ranges(), expected);
}

TEST(SeriesBuilder, InterpretationFollowsSnifferLocation) {
  PacketFactory f;
  std::vector<DecodedPacket> t;
  t.push_back(f.data(0, 0, 100));
  t.push_back(f.data(1'000, 200, 100));
  t.push_back(f.data(300'000, 100, 100));  // upstream-loss retx
  const Connection conn = conn_of(t);

  AnalyzerOptions near_recv;  // default
  const SeriesBundle br = build(conn, near_recv);
  EXPECT_GT(br.registry.get(series::kNetworkLoss).count(), 0u);
  EXPECT_EQ(br.registry.get(series::kSendLocalLoss).count(), 0u);

  AnalyzerOptions near_send;
  near_send.location = SnifferLocation::kNearSender;
  const SeriesBundle bs = build(conn, near_send);
  EXPECT_GT(bs.registry.get(series::kSendLocalLoss).count(), 0u);
  EXPECT_EQ(bs.registry.get(series::kNetworkLoss)
                .ranges()
                .set_difference(bs.registry.get(series::kDownstreamLoss).ranges())
                .size(),
            0);

  AnalyzerOptions middle;
  middle.location = SnifferLocation::kMiddle;
  const SeriesBundle bm = build(conn, middle);
  // In the middle, both directions' losses are "network".
  EXPECT_GT(bm.registry.get(series::kNetworkLoss).count(), 0u);
  EXPECT_EQ(bm.registry.get(series::kSendLocalLoss).count(), 0u);
  EXPECT_EQ(bm.registry.get(series::kRecvLocalLoss).count(), 0u);
}

TEST(SeriesBuilder, KeepAliveDetection) {
  PacketFactory f;
  std::vector<DecodedPacket> t;
  t.push_back(f.data(0, 0, 1000));  // a data packet (not a keepalive)
  // A genuine KEEPALIVE payload: marker + len 19 + type 4.
  std::vector<std::uint8_t> ka(19, 0xff);
  ka[16] = 0;
  ka[17] = 19;
  ka[18] = 4;
  TcpSegmentSpec spec;
  spec.src_ip = test::kSenderIp;
  spec.dst_ip = test::kReceiverIp;
  spec.src_port = test::kSenderPort;
  spec.dst_port = test::kReceiverPort;
  spec.seq = f.sender_isn + 1 + 1000;
  spec.ack = f.receiver_isn + 1;
  spec.flags = {.ack = true, .psh = true};
  spec.window = 0xffff;
  spec.payload = ka;
  t.push_back(test::make_packet(60'000'000, t.size(), spec));
  t.push_back(f.data(120'000'000, 1019, 1000));
  const Connection conn = conn_of(t);
  const SeriesBundle b = build(conn);
  EXPECT_EQ(b.registry.get(series::kKeepAlive).count(), 1u);
  EXPECT_EQ(b.registry.get(series::kBgpKeepAlive).count(), 1u);
  // The gap between the two data packets contains only a keepalive.
  const auto& ka_only = b.registry.get(series::kKeepAliveOnly);
  ASSERT_EQ(ka_only.count(), 1u);
  EXPECT_EQ(ka_only.events()[0].range, (TimeRange{0, 120'000'000}));
}

TEST(SeriesBuilder, IdleCoversLongQuietGaps) {
  PacketFactory f;
  std::vector<DecodedPacket> t;
  t.push_back(f.data(0, 0, 100));
  t.push_back(f.data(5'000'000, 100, 100));  // 5 s of silence
  const Connection conn = conn_of(t);
  const SeriesBundle b = build(conn);
  const auto& idle = b.registry.get(series::kIdle);
  ASSERT_EQ(idle.count(), 1u);
  EXPECT_EQ(idle.events()[0].range, (TimeRange{0, 5'000'000}));
}

TEST(SeriesBuilder, EmptyConnectionProducesEmptySeries) {
  Connection conn;
  const SeriesBundle b = build(conn);
  EXPECT_TRUE(b.data_span.empty());
  EXPECT_EQ(b.registry.get(series::kTransmission).count(), 0u);
  EXPECT_EQ(b.registry.get(series::kSendAppLimited).size(), 0);
}

TEST(SeriesBuilder, AckOnlyConnection) {
  PacketFactory f;
  std::vector<DecodedPacket> t;
  t.push_back(f.ack(0, 0));
  t.push_back(f.ack(1000, 0));
  const Connection conn = conn_of(t);
  const SeriesBundle b = build(conn);  // must not crash / assert
  EXPECT_EQ(b.registry.get(series::kTransmission).count(), 0u);
}

TEST(SeriesBuilder, WindowLimitedIsUnionOfWindowSeries) {
  PacketFactory f;
  const Connection conn = conn_of(basic_trace(f));
  const SeriesBundle b = build(conn);
  const RangeSet expected =
      b.registry.get(series::kAdvBndOut)
          .ranges()
          .set_union(b.registry.get(series::kCwndBndOut).ranges())
          .set_union(b.registry.get(series::kZeroAdvBndOut).ranges());
  EXPECT_EQ(b.registry.get(series::kWindowLimited).ranges(), expected);
}

}  // namespace
}  // namespace tdat
