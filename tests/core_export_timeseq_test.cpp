#include <gtest/gtest.h>

#include "core/export.hpp"
#include "core/timeseq.hpp"
#include "helpers.hpp"
#include "sim_scenarios.hpp"

namespace tdat {
namespace {

using test::PacketFactory;

TEST(ExportJson, SeriesStructure) {
  EventSeries s("UpstreamLoss");
  s.add({10, 20}, 2, 2920, 7);
  const std::string json = series_to_json(s);
  EXPECT_EQ(json,
            "{\"name\":\"UpstreamLoss\",\"size_us\":10,\"events\":["
            "{\"begin\":10,\"end\":20,\"packets\":2,\"bytes\":2920,"
            "\"trace_ref\":7}]}");
}

TEST(ExportJson, EmptySeries) {
  EventSeries s("Idle");
  EXPECT_EQ(series_to_json(s), "{\"name\":\"Idle\",\"size_us\":0,\"events\":[]}");
}

TEST(ExportJson, RegistryListsAllSeries) {
  SeriesRegistry reg;
  EventSeries a("A");
  a.add({0, 5});
  reg.put(std::move(a));
  reg.put(EventSeries("B"));
  const std::string json = registry_to_json(reg);
  EXPECT_NE(json.find("\"A\":{\"name\":\"A\""), std::string::npos);
  EXPECT_NE(json.find("\"B\":{\"name\":\"B\""), std::string::npos);
}

TEST(ExportJson, ReportAndAnalysis) {
  const auto run = test::run_single(test::slow_collector(), 1500, 55);
  const auto a = test::analyze_single(run);
  const std::string json = analysis_to_json(a);
  EXPECT_NE(json.find("\"connection\":\"10.0.1.1:20000 <-> 10.9.9.9:179\""),
            std::string::npos);
  EXPECT_NE(json.find("\"BGP receiver app\":"), std::string::npos);
  EXPECT_NE(json.find("\"Receiver-side\":{\"ratio\":"), std::string::npos);
  EXPECT_NE(json.find("\"major\":true"), std::string::npos);
  EXPECT_NE(json.find("\"prefixes\":1500"), std::string::npos);
  // Balanced braces — cheap structural sanity.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TimeSeq, MarksLabelsAndAckFrontier) {
  PacketFactory f;
  std::vector<DecodedPacket> trace;
  trace.push_back(f.data(0, 0, 1000));
  trace.push_back(f.ack(10'000, 1000));
  trace.push_back(f.data(20'000, 1000, 1000));
  trace.push_back(f.data(500'000, 0, 1000));  // downstream retransmission
  const auto conns = split_connections(trace);
  const auto profile = compute_profile(conns[0]);
  const auto flow =
      classify_data_packets(conns[0], profile.data_dir, ClassifyOptions{});
  const std::string plot =
      render_time_sequence(conns[0], flow, {0, 600'000}, {.width = 60, .height = 10});
  EXPECT_NE(plot.find('.'), std::string::npos);   // in-order data
  EXPECT_NE(plot.find('R'), std::string::npos);   // the retransmission
  EXPECT_NE(plot.find('a'), std::string::npos);   // ack frontier
  EXPECT_NE(plot.find("legend"), std::string::npos);
}

TEST(TimeSeq, EmptyWindow) {
  PacketFactory f;
  std::vector<DecodedPacket> trace = {f.data(0, 0, 100)};
  const auto conns = split_connections(trace);
  const auto profile = compute_profile(conns[0]);
  const auto flow =
      classify_data_packets(conns[0], profile.data_dir, ClassifyOptions{});
  EXPECT_EQ(render_time_sequence(conns[0], flow, {500, 400}), "(no data)\n");
  EXPECT_EQ(render_time_sequence(conns[0], flow, {1'000, 2'000}),
            "(no data in window)\n");
}

}  // namespace
}  // namespace tdat
