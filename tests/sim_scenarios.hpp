// Canned simulation scenarios for analyzer tests: each produces a pcap
// trace with one known, injected bottleneck, which T-DAT must identify.
#pragma once

#include "bgp/table_gen.hpp"
#include "core/analyzer.hpp"
#include "sim/world.hpp"

namespace tdat::test {

inline std::vector<std::vector<std::uint8_t>> table_messages(std::size_t prefixes,
                                                             std::uint64_t seed) {
  Rng rng(seed);
  TableGenConfig cfg;
  cfg.prefix_count = prefixes;
  return serialize_updates(generate_table(cfg, rng));
}

struct ScenarioRun {
  PcapFile trace;
  bool finished = false;
  Micros finished_at = 0;
  std::size_t archived_updates = 0;
};

inline ScenarioRun run_single(SessionSpec spec, std::size_t prefixes,
                              std::uint64_t seed,
                              Micros duration = 600 * kMicrosPerSec) {
  SimWorld world(seed);
  const auto s = world.add_session(spec, table_messages(prefixes, seed ^ 0xbeef));
  world.start_session(s, 0);
  world.run_until(duration);
  ScenarioRun out;
  out.finished = world.sender(s).finished_sending();
  out.finished_at = world.sender(s).finished_at();
  for (const auto& tm : world.receiver(s).archive()) {
    if (tm.msg.as_update() != nullptr) ++out.archived_updates;
  }
  out.trace = world.take_trace();
  return out;
}

inline ConnectionAnalysis analyze_single(const ScenarioRun& run,
                                         AnalyzerOptions opts = {}) {
  TraceAnalysis ta = analyze_trace(run.trace, opts);
  TDAT_EXPECTS(ta.results.size() == 1);
  return std::move(ta.results[0]);
}

// --- scenario presets ------------------------------------------------------

// The sending BGP process paces itself with a timer (Fig. 5 / §II-B1).
// Enough messages per tick that each burst spans several MSS segments, as
// in the paper's traces (a single sub-MSS segment per tick would let the
// receiver's delayed ACK shadow the application gap).
inline SessionSpec timer_paced_sender(Micros timer = 200 * kMicrosPerMilli,
                                      std::size_t msgs_per_tick = 60) {
  SessionSpec spec;
  spec.bgp.timer_driven = true;
  spec.bgp.timer_interval = timer;
  spec.bgp.msgs_per_tick = msgs_per_tick;
  return spec;
}

// Long fat path + small receiver window: classic window-limited transfer
// (the RouteViews 16 KB setting).
inline SessionSpec small_window_path(std::uint32_t window = 16 * 1024,
                                     Micros one_way = 25 * kMicrosPerMilli) {
  SessionSpec spec;
  spec.receiver_tcp.recv_buf_capacity = window;
  spec.up_fwd.propagation_delay = one_way;
  spec.up_rev.propagation_delay = one_way;
  return spec;
}

// Collector process cannot keep up: reads slower than the data arrives,
// repeatedly closing the advertised window (receiver-app limited).
inline SessionSpec slow_collector(Micros read_interval = 300 * kMicrosPerMilli,
                                  std::size_t chunk = 8 * 1024) {
  SessionSpec spec;
  spec.receiver_tcp.recv_buf_capacity = 8 * 1024;
  spec.collector.read_interval = read_interval;
  spec.collector.read_chunk = chunk;
  return spec;
}

// Random loss on the upstream (wide-area) path.
inline SessionSpec lossy_upstream(double p = 0.02) {
  SessionSpec spec;
  spec.up_fwd.random_loss = p;
  return spec;
}

// Tail-drop loss at the receiver's interface (downstream, receiver-local).
// The sender opens with a large burst — the paper's trigger is a router
// blasting queued updates to all its peers at once (§II-B2) — which
// overruns the interface queue and drops a long consecutive run.
inline SessionSpec receiver_local_loss(std::size_t queue = 12,
                                       std::int64_t rate = 2'000'000) {
  SessionSpec spec;
  spec.down_fwd.queue_packets = queue;
  spec.down_fwd.rate_bytes_per_sec = rate;
  spec.sender_tcp.initial_cwnd_segments = 32;
  return spec;
}

// Narrow upstream bottleneck: the wire itself paces the transfer.
inline SessionSpec narrow_pipe(std::int64_t rate = 60'000) {
  SessionSpec spec;
  spec.up_fwd.rate_bytes_per_sec = rate;
  spec.up_fwd.queue_packets = 10'000;
  // Keep windows generous so the pipe, not flow control, is the limit.
  spec.sender_tcp.window_scale = 3;
  spec.receiver_tcp.window_scale = 3;
  spec.receiver_tcp.recv_buf_capacity = 512 * 1024;
  spec.sender_tcp.send_buf_capacity = 512 * 1024;
  return spec;
}

// Slow reader + the zero-window probe-discard bug (§IV-B). The reads are
// small enough that the discarded probe's hole cannot collect three
// duplicate ACKs, forcing RTO recoveries that span the recurring
// zero-window episodes — the contradictory signature the ZeroAckBug series
// intersection catches.
inline SessionSpec zero_ack_bug() {
  SessionSpec spec = slow_collector();
  spec.sender_tcp.zero_window_probe_bug = true;
  spec.receiver_tcp.recv_buf_capacity = 4 * 1024;
  spec.collector.read_chunk = 2 * 1024;
  return spec;
}

}  // namespace tdat::test
