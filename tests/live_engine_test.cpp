// Live streaming engine equivalence and bounded-memory tests (DESIGN.md
// §15). The keystone invariant: replaying a finished capture through
// LiveEngine — in arbitrary append chunks, mid-record splits included, with
// eviction and GC disabled — then draining must reproduce the batch
// pipeline's `agg` and `json` output byte for byte, on clean captures and
// across the whole FaultInjector corruption matrix. On top of that: the
// FollowSource growing-file and rotation paths, the window/idle-GC memory
// bounds (checked with the allocation hooks where active), tail_truncated
// semantics, and the archive v2 tool-version stamp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "agg/archive.hpp"
#include "agg/sink.hpp"
#include "core/analyzer.hpp"
#include "core/live.hpp"
#include "core/live_source.hpp"
#include "core/report.hpp"
#include "pcap/fault_injector.hpp"
#include "pcap/pcap_file.hpp"
#include "sim_scenarios.hpp"
#include "util/alloc_hook.hpp"
#include "util/version.hpp"

namespace tdat {
namespace {

// render_snapshot(kAgg) goes through the registered renderer, which the CLI
// normally installs at startup; tests install it themselves.
const bool kAggSinkRegistered = [] {
  agg::register_aggregate_sink();
  return true;
}();

// Same capture as the mmap equivalence matrix: three staggered BGP sessions,
// enough records that chunked appends split many record boundaries.
const std::vector<std::uint8_t>& clean_image() {
  static const std::vector<std::uint8_t> image = [] {
    SimWorld world(1312);
    for (int i = 0; i < 3; ++i) {
      const auto s =
          world.add_session(SessionSpec{}, test::table_messages(600, 40 + i));
      world.start_session(s, static_cast<Micros>(i) * 60 * kMicrosPerSec);
    }
    world.run_until(2500 * kMicrosPerSec);
    return serialize_pcap(world.take_trace());
  }();
  return image;
}

// A small capture for the byte-at-a-time append tests, where the big image
// would mean millions of epochs.
const std::vector<std::uint8_t>& small_image() {
  static const std::vector<std::uint8_t> image = [] {
    SimWorld world(7);
    const auto s = world.add_session(SessionSpec{}, test::table_messages(60, 9));
    world.start_session(s, 0);
    world.run_until(600 * kMicrosPerSec);
    return serialize_pcap(world.take_trace());
  }();
  return image;
}

std::string write_temp(const std::vector<std::uint8_t>& image,
                       const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  EXPECT_EQ(std::fwrite(image.data(), 1, image.size(), f), image.size());
  std::fclose(f);
  return path;
}

struct RenderedRun {
  std::string agg;
  std::string json;
  IngestDiagnostics diag;
  std::uint64_t records = 0;
};

RenderedRun render_batch(const TraceAnalysis& ta) {
  const ReportModel model = build_report_model(ta);
  RenderedRun r;
  r.agg = render_report(model, ReportFormat::kAgg);
  r.json = render_report(model, ReportFormat::kJson);
  r.diag = ta.stats.ingest;
  r.records = ta.stats.records;
  return r;
}

// The batch baseline: the normal one-shot pipeline over the same image.
RenderedRun batch_run(const std::vector<std::uint8_t>& image,
                      const AnalyzerOptions& opts) {
  auto stream = PcapStream::from_memory(image, opts.ingest);
  EXPECT_TRUE(stream.ok()) << stream.error();
  PcapStreamSource source(std::move(stream).value(), opts.verify_checksums);
  return render_batch(run_pipeline(source, opts));
}

// Replays `image` through the live engine via a RingBufferFeed, appending
// `chunk` bytes at a time with an epoch after every append — so records are
// routinely split mid-header and mid-body — then drains.
RenderedRun live_run(const std::vector<std::uint8_t>& image, std::size_t chunk,
                     const AnalyzerOptions& opts, LiveOptions policies = {}) {
  auto feed = std::make_shared<RingBufferFeed>();
  RingBufferSource source(feed, opts.verify_checksums, opts.ingest);
  LiveOptions lopts = policies;
  lopts.analyzer = opts;
  LiveEngine engine(source, lopts);
  std::size_t off = 0;
  while (off < image.size()) {
    const std::size_t n = std::min(chunk, image.size() - off);
    feed->append(std::span(image.data() + off, n));
    off += n;
    (void)engine.run_epoch();
  }
  feed->close();
  engine.drain();
  EXPECT_FALSE(source.failed()) << source.error();
  RenderedRun r;
  r.agg = engine.render_snapshot(ReportFormat::kAgg);
  r.json = engine.render_snapshot(ReportFormat::kJson);
  r.diag = source.diagnostics();
  r.records = engine.stats().records;
  return r;
}

void expect_equivalent(const RenderedRun& live, const RenderedRun& batch) {
  EXPECT_EQ(live.agg, batch.agg);
  EXPECT_EQ(live.json, batch.json);
  EXPECT_EQ(live.diag.to_json(), batch.diag.to_json());
  EXPECT_EQ(live.records, batch.records);
}

TEST(LiveEquivalence, CleanChunkedAppendsMatchBatch) {
  const AnalyzerOptions opts;
  const RenderedRun batch = batch_run(clean_image(), opts);
  ASSERT_GT(batch.records, 512u);
  for (const std::size_t chunk : {std::size_t{997}, std::size_t{64 * 1024 + 13}}) {
    SCOPED_TRACE("chunk=" + std::to_string(chunk));
    expect_equivalent(live_run(clean_image(), chunk, opts), batch);
  }
}

TEST(LiveEquivalence, ByteAtATimeAppendsMatchBatch) {
  const AnalyzerOptions opts;
  const RenderedRun batch = batch_run(small_image(), opts);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}}) {
    SCOPED_TRACE("chunk=" + std::to_string(chunk));
    expect_equivalent(live_run(small_image(), chunk, opts), batch);
  }
}

TEST(LiveEquivalence, EveryFaultModeMatchesBatch) {
  const AnalyzerOptions opts;
  for (const FaultMode mode : all_fault_modes()) {
    SCOPED_TRACE(to_string(mode));
    std::vector<std::uint8_t> image = clean_image();
    FaultPlan plan;
    plan.mode = mode;
    plan.seed = 11;
    ASSERT_EQ(inject_faults(image, plan).faults_applied, 1u);
    expect_equivalent(live_run(image, 8 * 1024 + 7, opts),
                      batch_run(image, opts));
  }
}

TEST(LiveEquivalence, StrictModeMatchesBatch) {
  std::vector<std::uint8_t> image = clean_image();
  FaultPlan plan;
  plan.mode = FaultMode::kZeroInclLen;
  plan.seed = 11;
  ASSERT_EQ(inject_faults(image, plan).faults_applied, 1u);
  AnalyzerOptions opts;
  opts.ingest = IngestPolicy::strict_mode();
  const RenderedRun batch = batch_run(image, opts);
  // A corrupt interior header under strict mode is a hard stop, not an
  // end-of-data truncation: `truncated` ticks, `tail_truncated` must not.
  EXPECT_EQ(batch.diag.truncated, 1u);
  EXPECT_EQ(batch.diag.tail_truncated, 0u);
  expect_equivalent(live_run(image, 4096 + 1, opts), batch);
}

TEST(LiveEquivalence, TailTruncationCountsAsTailTruncated) {
  std::vector<std::uint8_t> image = clean_image();
  FaultPlan plan;
  plan.mode = FaultMode::kTruncateTail;
  plan.seed = 11;
  ASSERT_EQ(inject_faults(image, plan).faults_applied, 1u);
  const AnalyzerOptions opts;
  const RenderedRun batch = batch_run(image, opts);
  // Genuine end-of-data truncation ticks both counters.
  EXPECT_GE(batch.diag.truncated, 1u);
  EXPECT_EQ(batch.diag.tail_truncated, batch.diag.truncated);
  expect_equivalent(live_run(image, 2048 + 3, opts), batch);
}

TEST(LiveEquivalence, CleanCaptureHasNoTailTruncated) {
  const RenderedRun batch = batch_run(clean_image(), AnalyzerOptions{});
  EXPECT_EQ(batch.diag.truncated, 0u);
  EXPECT_EQ(batch.diag.tail_truncated, 0u);
}

TEST(FollowSourceLive, GrowingFileMatchesBatch) {
  const std::vector<std::uint8_t>& image = clean_image();
  const std::string path = ::testing::TempDir() + "live_grow.pcap";
  std::remove(path.c_str());

  const AnalyzerOptions opts;
  FollowSource source(path, opts.verify_checksums, opts.ingest);
  LiveOptions lopts;
  lopts.analyzer = opts;
  LiveEngine engine(source, lopts);

  // The engine starts before the file even exists; the first epochs see
  // nothing.
  EXPECT_EQ(engine.run_epoch(), 0u);
  EXPECT_TRUE(engine.source_live());

  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::size_t off = 0;
  const std::size_t chunk = 8 * 1024 + 7;
  while (off < image.size()) {
    const std::size_t n = std::min(chunk, image.size() - off);
    ASSERT_EQ(std::fwrite(image.data() + off, 1, n, f), n);
    ASSERT_EQ(std::fflush(f), 0);
    off += n;
    (void)engine.poll_source();
    (void)engine.run_epoch();
  }
  std::fclose(f);
  (void)engine.poll_source();
  engine.drain();
  ASSERT_FALSE(source.failed()) << source.error();

  const RenderedRun batch = batch_run(image, opts);
  EXPECT_EQ(engine.render_snapshot(ReportFormat::kAgg), batch.agg);
  EXPECT_EQ(engine.render_snapshot(ReportFormat::kJson), batch.json);
  EXPECT_EQ(source.diagnostics().to_json(), batch.diag.to_json());
  std::remove(path.c_str());
}

TEST(FollowSourceLive, RotationMatchesMultiFileBatch) {
  // Segment A: the baseline capture. Segment B: a later world whose records
  // all start after A's, mirroring a log rotation.
  const std::vector<std::uint8_t>& image_a = clean_image();
  const std::vector<std::uint8_t> image_b = [] {
    SimWorld world(77);
    const auto s =
        world.add_session(SessionSpec{}, test::table_messages(120, 5));
    world.start_session(s, 3000 * kMicrosPerSec);
    world.run_until(4000 * kMicrosPerSec);
    return serialize_pcap(world.take_trace());
  }();

  const std::string path = ::testing::TempDir() + "live_rotate.pcap";
  const std::string rotated = path + ".1";
  std::remove(path.c_str());
  std::remove(rotated.c_str());

  const AnalyzerOptions opts;
  FollowSource source(path, opts.verify_checksums, opts.ingest);
  LiveOptions lopts;
  lopts.analyzer = opts;
  LiveEngine engine(source, lopts);

  // Write and consume segment A.
  write_temp(image_a, "live_rotate.pcap");
  (void)engine.poll_source();
  while (engine.run_epoch() > 0) {
  }
  EXPECT_EQ(source.segments_completed(), 0u);  // A is still the live segment

  // Rotate: A moves aside, a fresh file appears at the followed path.
  ASSERT_EQ(std::rename(path.c_str(), rotated.c_str()), 0);
  write_temp(image_b, "live_rotate.pcap");
  ASSERT_TRUE(engine.poll_source());  // new inode detected
  while (engine.run_epoch() > 0 || engine.poll_source()) {
  }
  EXPECT_EQ(source.segments_completed(), 1u);  // A finalized with batch semantics
  engine.drain();
  ASSERT_FALSE(source.failed()) << source.error();
  EXPECT_EQ(source.segments_completed(), 2u);

  // Batch baseline: the rotated pair analyzed as a multi-file capture.
  auto batch = analyze_files({rotated, path}, opts);
  ASSERT_TRUE(batch.ok()) << batch.error();
  const RenderedRun want = render_batch(std::move(batch).value());
  EXPECT_EQ(engine.render_snapshot(ReportFormat::kAgg), want.agg);
  EXPECT_EQ(engine.render_snapshot(ReportFormat::kJson), want.json);
  EXPECT_EQ(source.diagnostics().to_json(), want.diag.to_json());
  std::remove(path.c_str());
  std::remove(rotated.c_str());
}

// A capture with a long-idle first connection: session 0 finishes early,
// session 1 starts 1500s in, so idle GC has something to retire and the
// eviction window has a deep history to trim.
const std::vector<std::uint8_t>& idle_gc_image() {
  static const std::vector<std::uint8_t> image = [] {
    SimWorld world(99);
    const auto a =
        world.add_session(SessionSpec{}, test::table_messages(200, 40));
    world.start_session(a, 0);
    // Offset by a half keepalive interval: the two sessions' keepalives
    // interleave, so each connection is observably idle between the other's
    // packets.
    const auto b =
        world.add_session(SessionSpec{}, test::table_messages(200, 41));
    world.start_session(b, 1530 * kMicrosPerSec);
    world.run_until(3000 * kMicrosPerSec);
    return serialize_pcap(world.take_trace());
  }();
  return image;
}

TEST(LiveBoundedMemory, WindowEvictionAndIdleGcBoundRetainedState) {
  AnalyzerOptions opts;
  opts.jobs = 1;  // keep all analysis allocations on this thread

  auto replay = [&](Micros window, Micros idle_gc, LiveEngineStats* stats_out,
                    std::size_t* retained_out, std::string* json_out) {
    auto feed = std::make_shared<RingBufferFeed>();
    RingBufferSource source(feed, opts.verify_checksums, opts.ingest);
    LiveOptions lopts;
    lopts.analyzer = opts;
    lopts.window = window;
    lopts.idle_gc = idle_gc;
    LiveEngine engine(source, lopts);
    const std::vector<std::uint8_t>& image = idle_gc_image();
    std::size_t off = 0;
    // Small chunks so epochs land between the interleaved keepalives — an
    // epoch must observe one connection idle while the other speaks.
    const std::size_t chunk = 499;
    while (off < image.size()) {
      const std::size_t n = std::min(chunk, image.size() - off);
      feed->append(std::span(image.data() + off, n));
      off += n;
      (void)engine.run_epoch();
    }
    feed->close();
    engine.drain();
    EXPECT_FALSE(source.failed()) << source.error();
    if (stats_out != nullptr) *stats_out = engine.stats();
    if (retained_out != nullptr) *retained_out = engine.retained_packets();
    if (json_out != nullptr) {
      *json_out = engine.render_snapshot(ReportFormat::kJson);
    }
  };

  const std::uint64_t base_allocs = thread_alloc_bytes();
  LiveEngineStats unbounded_stats{};
  std::size_t unbounded_retained = 0;
  replay(0, 0, &unbounded_stats, &unbounded_retained, nullptr);
  const std::uint64_t unbounded_bytes = thread_alloc_bytes() - base_allocs;

  // The simulated sessions keepalive every 60s, so a sub-keepalive idle
  // threshold retires each connection between keepalives — and the next
  // keepalive on the same 4-tuple must open a brand-new connection (the
  // retire-then-reopen path).
  LiveEngineStats stats{};
  std::size_t retained = 0;
  std::string json;
  replay(/*window=*/10 * kMicrosPerSec, /*idle_gc=*/30 * kMicrosPerSec,
         &stats, &retained, &json);
  const std::uint64_t bounded_bytes =
      thread_alloc_bytes() - base_allocs - unbounded_bytes;

  // The unbounded replay keeps every packet; the policies must have fired
  // and left only a small fraction of them live.
  ASSERT_EQ(unbounded_stats.packets, stats.packets);
  EXPECT_EQ(unbounded_retained, unbounded_stats.packets);
  EXPECT_GT(stats.packets_evicted, 0u);
  EXPECT_GE(stats.connections_gc, 1u);
  EXPECT_GT(stats.connections_total, unbounded_stats.connections_total);
  EXPECT_LT(retained, unbounded_retained / 4);
  EXPECT_EQ(stats.connections_active,
            stats.connections_total - stats.connections_gc);

  // Retired connections still appear in snapshots (their finished analysis
  // survives GC).
  EXPECT_EQ(unbounded_stats.connections_total, 2u);
  EXPECT_NE(json.find("\"connections\":["), std::string::npos);
  EXPECT_GT(std::count(json.begin(), json.end(), '{'), 2);

  // With the allocation hooks live (they freeze under sanitizers), the
  // windowed replay — re-analyzing over trimmed packet lists — must allocate
  // less than the keep-everything replay.
  if (alloc_hook_active()) {
    EXPECT_LT(bounded_bytes, unbounded_bytes);
  }
}

TEST(LiveDemux, ForgetFreesTheKeyAndIgnoresStaleIndices) {
  auto packet = [](Micros ts, std::uint16_t sport) {
    DecodedPacket p;
    p.ts = ts;
    p.ip.src = 0x0a000001;
    p.ip.dst = 0x0a000002;
    p.ip.protocol = kIpProtoTcp;
    p.tcp.src_port = sport;
    p.tcp.dst_port = 179;
    return p;
  };
  ConnectionDemux demux;
  const std::size_t first = demux.add_indexed(packet(1, 40000));
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(demux.add_indexed(packet(2, 40000)), first);

  // Forgetting the key means the same 4-tuple opens a brand-new connection,
  // while the old Connection object stays put (stable indices).
  demux.forget(first);
  const std::size_t second = demux.add_indexed(packet(3, 40000));
  EXPECT_EQ(second, 1u);
  ASSERT_EQ(demux.connections().size(), 2u);
  EXPECT_EQ(demux.connections()[first].packets.size(), 2u);
  EXPECT_EQ(demux.connections()[second].packets.size(), 1u);

  // A stale forget of the old index must not evict the new connection.
  demux.forget(first);
  EXPECT_EQ(demux.add_indexed(packet(4, 40000)), second);
  EXPECT_EQ(demux.connections()[second].packets.size(), 2u);

  // An unrelated key is untouched by all of this.
  const std::size_t other = demux.add_indexed(packet(5, 50000));
  EXPECT_EQ(other, 2u);
}

TEST(ArchiveV2, ToolVersionStampRoundTripsAndMerges) {
  // build_archive stamps the release that produced the archive — semver
  // only, never git describe.
  const agg::Archive built = agg::build_archive(ReportModel{}, "run");
  ASSERT_EQ(built.tool_versions.size(), 1u);
  EXPECT_EQ(built.tool_versions[0], version_semver());
  EXPECT_EQ(built.tool_versions[0].find("git"), std::string::npos);

  const std::string bytes = built.serialize();
  auto parsed = agg::parse_archive(std::span(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().tool_versions, built.tool_versions);

  // Merging unions the version sets, sorted and deduplicated; merging the
  // empty archive is the identity.
  agg::Archive a = built;
  agg::Archive other;
  other.tool_versions = {"9.9.9", version_semver()};
  a.merge_from(other);
  EXPECT_EQ(a.tool_versions,
            (std::vector<std::string>{version_semver(), "9.9.9"}));
  agg::Archive identity = built;
  identity.merge_from(agg::Archive{});
  EXPECT_EQ(identity.serialize(), bytes);
}

}  // namespace
}  // namespace tdat
