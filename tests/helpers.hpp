// Shared test fixtures: packet crafting through the real encoder/decoder so
// tests exercise the same wire format the analyzer sees in production, plus
// canned simulation scenarios used by the core-analysis tests.
#pragma once

#include <cstdint>
#include <vector>

#include "pcap/decode.hpp"
#include "pcap/encode.hpp"
#include "pcap/packet.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace tdat::test {

inline constexpr std::uint32_t kSenderIp = 0x0a000101;    // 10.0.1.1
inline constexpr std::uint32_t kReceiverIp = 0x0a090909;  // 10.9.9.9
inline constexpr std::uint16_t kSenderPort = 20000;
inline constexpr std::uint16_t kReceiverPort = 179;

// Builds a decoded packet by encoding to wire bytes and decoding back, so
// header lengths, payload offsets and checksums are all authentic.
inline DecodedPacket make_packet(Micros ts, std::size_t index,
                                 const TcpSegmentSpec& spec) {
  const auto frame = encode_tcp_frame(spec);
  auto decoded = decode_frame(ts, index, frame, /*verify_checksums=*/true);
  TDAT_EXPECTS(decoded.has_value());
  return std::move(*decoded);
}

struct PacketFactory {
  std::size_t next_index = 0;
  std::uint32_t sender_isn = 1000;
  std::uint32_t receiver_isn = 5000;

  // Sender -> receiver data segment carrying `len` bytes at stream `offset`
  // (offset 0 == sender_isn + 1).
  DecodedPacket data(Micros ts, std::int64_t offset, std::size_t len,
                     std::uint16_t window = 0xffff) {
    payload_.assign(len, 0xab);
    TcpSegmentSpec spec;
    spec.src_ip = kSenderIp;
    spec.dst_ip = kReceiverIp;
    spec.src_port = kSenderPort;
    spec.dst_port = kReceiverPort;
    spec.seq = sender_isn + 1 + static_cast<std::uint32_t>(offset);
    spec.ack = receiver_isn + 1;
    spec.flags = {.ack = true, .psh = true};
    spec.window = window;
    spec.payload = payload_;
    return make_packet(ts, next_index++, spec);
  }

  // Receiver -> sender pure ACK for stream offset `acked`, advertising `window`.
  DecodedPacket ack(Micros ts, std::int64_t acked, std::uint16_t window = 0xffff) {
    TcpSegmentSpec spec;
    spec.src_ip = kReceiverIp;
    spec.dst_ip = kSenderIp;
    spec.src_port = kReceiverPort;
    spec.dst_port = kSenderPort;
    spec.seq = receiver_isn + 1;
    spec.ack = sender_isn + 1 + static_cast<std::uint32_t>(acked);
    spec.flags = {.ack = true};
    spec.window = window;
    return make_packet(ts, next_index++, spec);
  }

  // Three-way handshake: SYN at t, SYN/ACK at t+rtt/2-ish, ACK at t+rtt.
  std::vector<DecodedPacket> handshake(Micros t, Micros rtt,
                                       std::uint16_t sender_window = 0xffff,
                                       std::uint16_t receiver_window = 0xffff) {
    std::vector<DecodedPacket> out;
    TcpSegmentSpec syn;
    syn.src_ip = kSenderIp;
    syn.dst_ip = kReceiverIp;
    syn.src_port = kSenderPort;
    syn.dst_port = kReceiverPort;
    syn.seq = sender_isn;
    syn.flags = {.syn = true};
    syn.window = sender_window;
    syn.mss = 1460;
    out.push_back(make_packet(t, next_index++, syn));

    TcpSegmentSpec synack;
    synack.src_ip = kReceiverIp;
    synack.dst_ip = kSenderIp;
    synack.src_port = kReceiverPort;
    synack.dst_port = kSenderPort;
    synack.seq = receiver_isn;
    synack.ack = sender_isn + 1;
    synack.flags = {.syn = true, .ack = true};
    synack.window = receiver_window;
    synack.mss = 1460;
    out.push_back(make_packet(t + rtt / 10, next_index++, synack));

    TcpSegmentSpec hsack;
    hsack.src_ip = kSenderIp;
    hsack.dst_ip = kReceiverIp;
    hsack.src_port = kSenderPort;
    hsack.dst_port = kReceiverPort;
    hsack.seq = sender_isn + 1;
    hsack.ack = receiver_isn + 1;
    hsack.flags = {.ack = true};
    hsack.window = sender_window;
    out.push_back(make_packet(t + rtt, next_index++, hsack));
    return out;
  }

 private:
  std::vector<std::uint8_t> payload_;
};

}  // namespace tdat::test
