// Integration tests of the full pipeline: simulate a BGP table transfer with
// ONE injected bottleneck, run T-DAT on the resulting pcap bytes, and check
// that the delay classification points at the injected cause.
#include "core/analyzer.hpp"

#include <gtest/gtest.h>

#include "core/series_names.hpp"
#include "sim_scenarios.hpp"

namespace tdat {
namespace {

using test::analyze_single;
using test::run_single;

TEST(Analyzer, BaselineTransferIsFoundAndParsed) {
  const auto run = run_single(SessionSpec{}, 2000, 1);
  ASSERT_TRUE(run.finished);
  const auto a = analyze_single(run);

  EXPECT_FALSE(a.transfer.empty());
  EXPECT_GT(a.mct.update_count, 100u);
  EXPECT_EQ(a.mct.prefix_count, 2000u);
  EXPECT_FALSE(a.mct.ended_by_repeat);
  // The 34 internal series all exist.
  EXPECT_GE(a.series().count(), 34u);
  // Messages extracted by pcap2bgp match what the archive saw.
  EXPECT_GE(a.messages.size(), a.mct.update_count);
}

TEST(Analyzer, TimerPacedSenderIsSenderAppLimited) {
  const auto run = run_single(test::timer_paced_sender(), 3000, 2);
  ASSERT_TRUE(run.finished);
  const auto a = analyze_single(run);

  EXPECT_TRUE(a.report.major(FactorGroup::kSender));
  EXPECT_EQ(a.report.dominant(FactorGroup::kSender), Factor::kBgpSenderApp);
  EXPECT_GT(a.report.ratio(Factor::kBgpSenderApp), 0.5);
  // Sender-side idling is not receiver or network trouble.
  EXPECT_FALSE(a.report.major(FactorGroup::kNetwork));
}

TEST(Analyzer, SmallWindowLongPathIsTcpWindowLimited) {
  const auto run = run_single(test::small_window_path(), 6000, 3);
  ASSERT_TRUE(run.finished);
  const auto a = analyze_single(run);

  // 16 KB window over a 50 ms RTT: the transfer is receiver-window bound.
  EXPECT_TRUE(a.report.major(FactorGroup::kReceiver));
  EXPECT_EQ(a.report.dominant(FactorGroup::kReceiver),
            Factor::kTcpAdvertisedWindow);
}

TEST(Analyzer, SlowCollectorIsReceiverAppLimited) {
  const auto run = run_single(test::slow_collector(), 3000, 4);
  ASSERT_TRUE(run.finished);
  const auto a = analyze_single(run);

  EXPECT_TRUE(a.report.major(FactorGroup::kReceiver));
  EXPECT_EQ(a.report.dominant(FactorGroup::kReceiver), Factor::kBgpReceiverApp);
  EXPECT_GT(a.report.ratio(Factor::kBgpReceiverApp), 0.3);
}

TEST(Analyzer, UpstreamRandomLossShowsNetworkLoss) {
  const auto run = run_single(test::lossy_upstream(0.05), 8000, 5);
  ASSERT_TRUE(run.finished);
  const auto a = analyze_single(run);

  // With the sniffer at the receiver, upstream losses are network losses.
  EXPECT_GT(a.series().get(series::kNetworkLoss).count(), 0u);
  EXPECT_GT(a.report.ratio(Factor::kNetworkLoss), 0.0);
  EXPECT_EQ(a.series().get(series::kSendLocalLoss).count(), 0u);
}

TEST(Analyzer, ReceiverInterfaceDropsAreLocalLosses) {
  const auto run = run_single(test::receiver_local_loss(), 4000, 6);
  ASSERT_TRUE(run.finished);
  const auto a = analyze_single(run);

  EXPECT_GT(a.series().get(series::kRecvLocalLoss).count(), 0u);
  EXPECT_GT(a.report.ratio(Factor::kReceiverLocalLoss), 0.0);
  // Downstream drops at the sniffer-receiver link must NOT be attributed
  // upstream.
  const auto up = a.series().get(series::kUpstreamLoss).count();
  const auto down = a.series().get(series::kDownstreamLoss).count();
  EXPECT_GT(down, up);
}

TEST(Analyzer, NarrowPipeIsBandwidthLimited) {
  const auto run = run_single(test::narrow_pipe(), 4000, 7);
  ASSERT_TRUE(run.finished);
  const auto a = analyze_single(run);

  EXPECT_GT(a.report.ratio(Factor::kBandwidthLimited), 0.3);
  EXPECT_TRUE(a.report.major(FactorGroup::kNetwork));
}

TEST(Analyzer, TransferWindowMatchesGroundTruth) {
  const auto run = run_single(SessionSpec{}, 2000, 8);
  ASSERT_TRUE(run.finished);
  const auto a = analyze_single(run);
  // MCT end must be within a couple seconds of when the sender finished
  // handing the table to TCP (delivery lag included).
  EXPECT_GE(a.transfer.end, run.finished_at - kMicrosPerSec);
  EXPECT_LE(a.transfer.end, run.finished_at + 30 * kMicrosPerSec);
}

TEST(Analyzer, RatiosAreSane) {
  for (std::uint64_t seed : {11, 12, 13}) {
    const auto run = run_single(test::slow_collector(), 1500, seed);
    const auto a = analyze_single(run);
    for (std::size_t i = 0; i < kFactorCount; ++i) {
      EXPECT_GE(a.report.factor_ratio[i], 0.0);
      EXPECT_LE(a.report.factor_ratio[i], 1.0 + 1e-9);
    }
    for (std::size_t g = 0; g < kGroupCount; ++g) {
      EXPECT_GE(a.report.group_ratio[g], 0.0);
      EXPECT_LE(a.report.group_ratio[g], 1.0 + 1e-9);
    }
  }
}

TEST(Analyzer, EmptyTraceYieldsNoResults) {
  PcapFile empty;
  const auto ta = analyze_trace(empty, AnalyzerOptions{});
  EXPECT_TRUE(ta.results.empty());
}

TEST(Analyzer, MajorThresholdSweepKeepsRanking) {
  // §IV-A: moving the threshold between 0.3 and 0.5 must not change which
  // group dominates.
  const auto run = run_single(test::timer_paced_sender(), 2000, 14);
  for (double th : {0.3, 0.4, 0.5}) {
    AnalyzerOptions opts;
    opts.major_threshold = th;
    const auto a = analyze_single(run, opts);
    EXPECT_TRUE(a.report.major(FactorGroup::kSender)) << th;
    EXPECT_EQ(a.report.dominant(FactorGroup::kSender), Factor::kBgpSenderApp) << th;
  }
}

}  // namespace
}  // namespace tdat
