// Tests of the §IV-B problem detectors against simulated scenarios with the
// corresponding problem injected (and control runs without it).
#include "core/detectors.hpp"

#include <gtest/gtest.h>

#include "sim_scenarios.hpp"

namespace tdat {
namespace {

using test::analyze_single;
using test::run_single;

TEST(TimerGapDetector, FindsConfigured200msTimer) {
  const auto run = run_single(test::timer_paced_sender(200 * kMicrosPerMilli), 10'000, 31);
  ASSERT_TRUE(run.finished);
  const auto a = analyze_single(run);
  const auto res = detect_timer_gaps(a.series(), a.transfer);
  ASSERT_TRUE(res.detected);
  EXPECT_NEAR(to_millis(res.timer), 200.0, 40.0);
  EXPECT_GE(res.gap_count, 20u);
  EXPECT_GT(res.introduced_delay, kMicrosPerSec);
}

class TimerSweep : public ::testing::TestWithParam<int> {};

TEST_P(TimerSweep, InfersTimerAcrossPaperValues) {
  // The paper observes 80, 100, 200, 400 ms timers (Fig. 17).
  const Micros timer = GetParam() * kMicrosPerMilli;
  const auto run = run_single(test::timer_paced_sender(timer), 4000,
                              1000 + static_cast<std::uint64_t>(GetParam()));
  ASSERT_TRUE(run.finished);
  const auto a = analyze_single(run);
  const auto res = detect_timer_gaps(a.series(), a.transfer);
  ASSERT_TRUE(res.detected) << GetParam();
  EXPECT_NEAR(to_millis(res.timer), static_cast<double>(GetParam()),
              0.25 * static_cast<double>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(PaperTimers, TimerSweep, ::testing::Values(80, 100, 200, 400));

TEST(TimerGapDetector, NoTimerNoDetection) {
  const auto run = run_single(SessionSpec{}, 3000, 33);
  const auto a = analyze_single(run);
  const auto res = detect_timer_gaps(a.series(), a.transfer);
  EXPECT_FALSE(res.detected);
}

TEST(ConsecutiveLossDetector, BurstLossAtReceiverInterface) {
  // A tight tail-drop queue at the collector's interface loses bursts of
  // packets (§II-B2, Fig. 7).
  const auto run = run_single(test::receiver_local_loss(), 8000, 34);
  ASSERT_TRUE(run.finished);
  const auto a = analyze_single(run);
  const auto res = detect_consecutive_losses(a.series(), a.transfer);
  EXPECT_TRUE(res.detected);
  EXPECT_GE(res.episodes, 1u);
  EXPECT_GE(res.max_consecutive, 8u);
  EXPECT_GT(res.introduced_delay, 0);
}

TEST(ConsecutiveLossDetector, CleanTransferHasNone) {
  const auto run = run_single(SessionSpec{}, 3000, 35);
  const auto a = analyze_single(run);
  const auto res = detect_consecutive_losses(a.series(), a.transfer);
  EXPECT_FALSE(res.detected);
  EXPECT_EQ(res.episodes, 0u);
}

TEST(ZeroAckBugDetector, FiresOnBuggySender) {
  const auto run = run_single(test::zero_ack_bug(), 3000, 36);
  ASSERT_TRUE(run.finished);
  const auto a = analyze_single(run);
  const auto res = detect_zero_ack_bug(a.series(), a.transfer);
  EXPECT_TRUE(res.detected);
  EXPECT_GE(res.occurrences, 2u);
}

TEST(ZeroAckBugDetector, SilentOnHealthySlowReader) {
  SessionSpec spec = test::zero_ack_bug();
  spec.sender_tcp.zero_window_probe_bug = false;
  const auto run = run_single(spec, 3000, 37);
  const auto a = analyze_single(run);
  const auto res = detect_zero_ack_bug(a.series(), a.transfer);
  EXPECT_FALSE(res.detected);
}

TEST(PeerGroupDetector, BlockingAcrossConnections) {
  // Fig. 9: two members, one collector dies mid-transfer; the healthy
  // member's connection pauses (keepalives only) until the hold timer
  // removes the failed member.
  SimWorld world(38);
  const auto table = test::table_messages(30'000, 39);
  PeerGroup group(table, 40);
  SessionSpec healthy;
  SessionSpec doomed;
  doomed.receiver_ip = 0x0a09090a;
  healthy.bgp.hold_time = 60 * kMicrosPerSec;
  doomed.bgp.hold_time = 60 * kMicrosPerSec;
  healthy.bgp.keepalive_interval = 10 * kMicrosPerSec;
  doomed.bgp.keepalive_interval = 10 * kMicrosPerSec;
  healthy.collector.keepalive_interval = 10 * kMicrosPerSec;
  doomed.collector.keepalive_interval = 10 * kMicrosPerSec;
  doomed.sender_tcp.send_buf_capacity = 8 * 1024;
  const auto a_id = world.add_session(healthy, &group);
  const auto b_id = world.add_session(doomed, &group);
  world.start_session(a_id, 0);
  world.start_session(b_id, 0);
  world.run_until(kMicrosPerSec / 2);
  world.receiver(b_id).die();
  world.run_until(400 * kMicrosPerSec);
  ASSERT_TRUE(world.sender(b_id).session_failed());
  ASSERT_TRUE(world.sender(a_id).finished_sending());

  const auto ta = analyze_trace(world.take_trace(), AnalyzerOptions{});
  ASSERT_EQ(ta.results.size(), 2u);
  // Identify which analysis is the healthy member (more transferred data).
  const auto& healthy_a = ta.results[0].bundle.flow.stream_length >
                                  ta.results[1].bundle.flow.stream_length
                              ? ta.results[0]
                              : ta.results[1];
  const auto& doomed_a = &healthy_a == &ta.results[0] ? ta.results[1] : ta.results[0];

  // Single-connection screen: the healthy member shows a long pause.
  const auto pause = detect_peer_group_pause(healthy_a);
  ASSERT_TRUE(pause.detected);
  EXPECT_GT(pause.blocked_time, 30 * kMicrosPerSec);

  // Cross-connection confirmation against the failed member.
  const auto blocked = detect_peer_group_blocking(healthy_a, doomed_a);
  ASSERT_TRUE(blocked.detected);
  // The block lasts roughly until the hold timer fired (~60 s).
  EXPECT_GT(blocked.blocked_time, 30 * kMicrosPerSec);
  EXPECT_LT(blocked.blocked_time, 90 * kMicrosPerSec);
}

TEST(PeerGroupDetector, NoPauseOnCleanTransfer) {
  const auto run = run_single(SessionSpec{}, 3000, 40);
  const auto a = analyze_single(run);
  const auto res = detect_peer_group_pause(a);
  EXPECT_FALSE(res.detected);
}

}  // namespace
}  // namespace tdat
