// Pass-registry architecture tests: registration order defines pass ids (and
// therefore PassSelection bits), --detectors parsing builds selections, and a
// disabled pass provably runs zero work — checked through the per-pass
// "pass.<name>.runs" counter the driver maintains, not just its output.
#include <gtest/gtest.h>

#include <array>
#include <string>

#include "core/analyzer.hpp"
#include "core/pass.hpp"
#include "sim_scenarios.hpp"
#include "util/metrics.hpp"

namespace tdat {
namespace {

using test::run_single;
using test::timer_paced_sender;

// Registration order is the public contract: ids index PassSelection bits
// and must stay stable — factors in Factor enum order, then the detectors.
constexpr std::array<const char*, 13> kExpectedOrder = {
    "bgp-sender-app",     "tcp-congestion-window", "sender-local-loss",
    "bgp-receiver-app",   "tcp-advertised-window", "receiver-local-loss",
    "bandwidth-limited",  "network-loss",          "timer-gaps",
    "consecutive-loss",   "zero-window-bug",       "peer-group",
    "capture-voids",
};

TEST(PassRegistry, RegistersFactorsThenDetectorsInStableOrder) {
  const PassRegistry& reg = pass_registry();
  ASSERT_EQ(reg.size(), kExpectedOrder.size());
  for (std::size_t id = 0; id < reg.size(); ++id) {
    const PassInfo& info = reg.passes()[id]->info();
    EXPECT_STREQ(info.name, kExpectedOrder[id]) << "pass id " << id;
    const PassKind want =
        id < kFactorCount ? PassKind::kFactor : PassKind::kDetector;
    EXPECT_EQ(info.kind, want) << info.name;
    if (info.kind == PassKind::kFactor) {
      EXPECT_EQ(static_cast<std::size_t>(info.factor), id) << info.name;
    }
    EXPECT_NE(info.summary, nullptr);
    // Every factor pass derives from named series; detectors may read raw
    // packets instead (capture-voids scans the ACK stream directly).
    if (info.kind == PassKind::kFactor) {
      EXPECT_FALSE(info.deps.empty())
          << info.name << " should declare the series it reads";
    }
  }
}

TEST(PassRegistry, FindMapsNamesToIdsAndRejectsUnknown) {
  const PassRegistry& reg = pass_registry();
  EXPECT_EQ(reg.find("bgp-sender-app"), 0u);
  EXPECT_EQ(reg.find("timer-gaps"), kFactorCount);
  EXPECT_EQ(reg.find("capture-voids"), reg.size() - 1);
  EXPECT_EQ(reg.find("no-such-pass"), PassRegistry::npos);
  EXPECT_EQ(reg.find(""), PassRegistry::npos);
}

TEST(DetectorSelection, AllEnablesEveryRegisteredPass) {
  auto sel = parse_detector_selection("all");
  ASSERT_TRUE(sel.ok());
  for (std::size_t id = 0; id < pass_registry().size(); ++id) {
    EXPECT_TRUE(sel.value().enabled(id));
  }
}

TEST(DetectorSelection, NoneKeepsOnlyTheFactorPasses) {
  auto sel = parse_detector_selection("none");
  ASSERT_TRUE(sel.ok());
  for (std::size_t id = 0; id < pass_registry().size(); ++id) {
    EXPECT_EQ(sel.value().enabled(id), id < kFactorCount) << "pass id " << id;
  }
}

TEST(DetectorSelection, CommaListEnablesExactlyTheNamedDetectors) {
  auto sel = parse_detector_selection("timer-gaps,peer-group");
  ASSERT_TRUE(sel.ok());
  const PassRegistry& reg = pass_registry();
  for (std::size_t id = 0; id < reg.size(); ++id) {
    const PassInfo& info = reg.passes()[id]->info();
    const bool want = info.kind == PassKind::kFactor ||
                      std::string(info.name) == "timer-gaps" ||
                      std::string(info.name) == "peer-group";
    EXPECT_EQ(sel.value().enabled(id), want) << info.name;
  }
}

TEST(DetectorSelection, UnknownNameErrorsAndListsTheValidOnes) {
  auto sel = parse_detector_selection("timer-gaps,frobnicate");
  ASSERT_FALSE(sel.ok());
  EXPECT_NE(sel.error().find("frobnicate"), std::string::npos);
  EXPECT_NE(sel.error().find("timer-gaps"), std::string::npos);
}

TEST(DetectorSelection, FactorNamesAreNotDetectorNames) {
  // Factor passes always run (every sink renders their tables); naming one
  // in --detectors is a usage mistake, not a no-op.
  EXPECT_FALSE(parse_detector_selection("bgp-sender-app").ok());
}

// A disabled pass must run zero work, not merely hide its output. The
// per-pass runs counter increments inside the driver loop, so a zero delta
// proves the pass body was never entered.
TEST(PassRegistry, DisabledPassRunsZeroWork) {
  const auto run = run_single(timer_paced_sender(), 3000, 77);
  ASSERT_FALSE(run.trace.records.empty());

  Counter& timer_runs = metrics().counter("pass.timer-gaps.runs");

  AnalyzerOptions enabled;
  const std::uint64_t before_enabled = timer_runs.value();
  TraceAnalysis with = analyze_trace(run.trace, enabled);
  ASSERT_EQ(with.results.size(), 1u);
  EXPECT_EQ(timer_runs.value() - before_enabled, 1u);
  EXPECT_TRUE(with.results[0].findings.timer.detected);

  AnalyzerOptions disabled;
  auto sel = parse_detector_selection("none");
  ASSERT_TRUE(sel.ok());
  disabled.passes = sel.value();
  const std::uint64_t before_disabled = timer_runs.value();
  TraceAnalysis without = analyze_trace(run.trace, disabled);
  ASSERT_EQ(without.results.size(), 1u);
  EXPECT_EQ(timer_runs.value() - before_disabled, 0u)
      << "disabled pass still executed";
  EXPECT_FALSE(without.results[0].findings.timer.detected);

  // The factor side of the report is unaffected by detector selection.
  for (std::size_t f = 0; f < kFactorCount; ++f) {
    EXPECT_EQ(with.results[0].report.factor_delay[f],
              without.results[0].report.factor_delay[f]);
  }
}

}  // namespace
}  // namespace tdat
