// Differential test of the batched SoA header decoder against decode_frame:
// over clean records, systematically mutated headers, truncations, and
// pseudo-random garbage, decode_records must make the same accept/reject
// decision as the scalar path for every record and produce field-identical
// packets for every accept — with and without checksum verification. The
// batch decoder has no semantics of its own; this test is what pins it to
// decode_frame.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pcap/decode.hpp"
#include "pcap/decode_batch.hpp"
#include "pcap/pcap_file.hpp"
#include "pcap/pcap_stream.hpp"
#include "sim_scenarios.hpp"

namespace tdat {
namespace {

PcapFile sample_trace() {
  SimWorld world(77);
  for (int i = 0; i < 4; ++i) {
    const auto s =
        world.add_session(SessionSpec{}, test::table_messages(600, 9 + i));
    world.start_session(s, static_cast<Micros>(i) * 30 * kMicrosPerSec);
  }
  world.run_until(2000 * kMicrosPerSec);
  return world.take_trace();
}

std::string optional_u32(const std::optional<std::uint32_t>& v) {
  return v ? std::to_string(*v) : "-";
}

// Every decoded field, payload bytes included, as one comparable string.
std::string packet_fingerprint(const DecodedPacket& p) {
  std::string out;
  out += std::to_string(p.ts) + "|" + std::to_string(p.index);
  out += "|ip:" + std::to_string(p.ip.src) + "," + std::to_string(p.ip.dst) +
         "," + std::to_string(p.ip.protocol) + "," + std::to_string(p.ip.ttl) +
         "," + std::to_string(p.ip.ident) + "," +
         std::to_string(p.ip.total_length) + "," +
         std::to_string(p.ip.header_len);
  out += "|tcp:" + std::to_string(p.tcp.src_port) + "," +
         std::to_string(p.tcp.dst_port) + "," + std::to_string(p.tcp.seq) +
         "," + std::to_string(p.tcp.ack) + "," + std::to_string(p.tcp.window) +
         "," + std::to_string(p.tcp.header_len);
  out += "|fl:" + std::to_string(p.tcp.flags.syn) + std::to_string(p.tcp.flags.ack) +
         std::to_string(p.tcp.flags.fin) + std::to_string(p.tcp.flags.rst) +
         std::to_string(p.tcp.flags.psh) + std::to_string(p.tcp.flags.urg);
  out += "|opt:" + (p.tcp.mss ? std::to_string(*p.tcp.mss) : "-") + "," +
         (p.tcp.window_scale ? std::to_string(*p.tcp.window_scale) : "-") +
         "," + std::to_string(p.tcp.sack_permitted) + "," +
         optional_u32(p.tcp.ts_val) + "," + optional_u32(p.tcp.ts_ecr);
  out += "|pay:" + std::to_string(p.payload_offset) + "+" +
         std::to_string(p.payload_len) + ":";
  for (const std::uint8_t b : p.payload()) out += std::to_string(b) + ",";
  out += "|frame:" + std::to_string(p.frame.size());
  return out;
}

// The scalar reference: PcapStreamSource::next's per-record decision chain.
std::vector<std::string> scalar_decode(const std::vector<StreamRecord>& recs,
                                       bool verify) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const StreamRecord& rec = recs[i];
    if (rec.data.size() < rec.orig_len) continue;
    if (auto pkt = decode_frame(rec.ts, i, rec.data, verify, rec.arena)) {
      out.push_back(packet_fingerprint(*pkt));
    }
  }
  return out;
}

std::vector<std::string> batch_decode_all(const std::vector<StreamRecord>& recs,
                                          bool verify) {
  DecodeScratch scratch;
  std::vector<DecodedPacket> pkts;
  std::size_t off = 0;
  const std::span<const StreamRecord> span(recs);
  while (off < span.size()) {
    off += decode_records(span.subspan(off), off, verify, scratch, pkts);
  }
  std::vector<std::string> out;
  out.reserve(pkts.size());
  for (const DecodedPacket& p : pkts) out.push_back(packet_fingerprint(p));
  return out;
}

void expect_equivalent(const std::vector<StreamRecord>& recs) {
  for (const bool verify : {false, true}) {
    SCOPED_TRACE(verify ? "verify" : "no-verify");
    EXPECT_EQ(batch_decode_all(recs, verify), scalar_decode(recs, verify));
  }
}

std::vector<StreamRecord> as_records(const PcapFile& file) {
  std::vector<StreamRecord> recs;
  recs.reserve(file.records.size());
  for (const PcapRecord& r : file.records) {
    recs.push_back({r.ts, r.orig_len, std::span<const std::uint8_t>(r.data),
                    nullptr});
  }
  return recs;
}

TEST(DecodeBatch, CleanTraceMatchesScalarDecode) {
  const PcapFile file = sample_trace();
  ASSERT_GT(file.records.size(), 200u);
  expect_equivalent(as_records(file));
}

TEST(DecodeBatch, HeaderMutationsMatchScalarDecode) {
  PcapFile file = sample_trace();
  // Mutate one header byte per record, cycling through the fields every
  // reject condition reads: ethertype, version/IHL, protocol, total length,
  // TCP data offset, and the option bytes.
  const std::size_t kOffsets[] = {12, 13, 14, 15, 16, 17, 23, 26, 33, 46, 47, 54};
  const std::uint8_t kValues[] = {0x00, 0x01, 0x40, 0x44, 0x46, 0x55,
                                  0x60, 0x80, 0xf0, 0xff};
  std::size_t v = 0;
  for (std::size_t i = 0; i < file.records.size(); ++i) {
    auto& data = file.records[i].data;
    const std::size_t off = kOffsets[i % std::size(kOffsets)];
    if (off < data.size()) data[off] = kValues[v++ % std::size(kValues)];
  }
  expect_equivalent(as_records(file));
}

TEST(DecodeBatch, TruncationsMatchScalarDecode) {
  PcapFile file = sample_trace();
  // Truncated captures (snaplen cuts) and orig_len inflation: both forms of
  // "fewer bytes than the wire frame" must skip identically. Lengths sweep
  // the interesting boundaries: inside Ethernet, inside IP, inside TCP,
  // inside the options, one short of complete.
  const std::size_t kLens[] = {0, 5, 13, 14, 33, 34, 35, 53, 54, 55, 65, 66};
  for (std::size_t i = 0; i < file.records.size(); ++i) {
    auto& rec = file.records[i];
    if (i % 3 == 0) {
      rec.data.resize(std::min<std::size_t>(rec.data.size(),
                                            kLens[i % std::size(kLens)]));
    } else if (i % 3 == 1) {
      rec.orig_len = static_cast<std::uint32_t>(rec.data.size()) + 1;
    }
  }
  expect_equivalent(as_records(file));
}

TEST(DecodeBatch, GarbageFramesMatchScalarDecode) {
  // Pseudo-random frames (fixed LCG, no real structure): virtually all
  // reject, through every combination of conditions.
  std::uint64_t state = 0x2545F4914F6CDD1Dull;
  const auto next_byte = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint8_t>(state >> 33);
  };
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::size_t len = 0; len < 120; ++len) {
    std::vector<std::uint8_t> frame(len);
    for (auto& b : frame) b = next_byte();
    // Half of them get a valid-looking prefix so the deeper conditions are
    // reached, not just the ethertype check.
    if (len % 2 == 0 && len >= 24) {
      frame[12] = 0x08;
      frame[13] = 0x00;
      frame[14] = 0x45;
      frame[23] = 6;
    }
    frames.push_back(std::move(frame));
  }
  std::vector<StreamRecord> recs;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    recs.push_back({static_cast<Micros>(i), static_cast<std::uint32_t>(frames[i].size()),
                    std::span<const std::uint8_t>(frames[i]), nullptr});
  }
  expect_equivalent(recs);
}

TEST(DecodeBatch, LaneIndexingSurvivesPartialBatches) {
  // 3 batches of 64 plus a remainder: indices must be contiguous per record
  // (not per accepted packet) across batch boundaries.
  const PcapFile file = sample_trace();
  std::vector<StreamRecord> recs = as_records(file);
  recs.resize(std::min<std::size_t>(recs.size(), 3 * kDecodeBatch + 17));
  DecodeScratch scratch;
  std::vector<DecodedPacket> pkts;
  std::size_t off = 0;
  const std::span<const StreamRecord> span(recs);
  while (off < span.size()) {
    const std::size_t consumed =
        decode_records(span.subspan(off), off, false, scratch, pkts);
    ASSERT_GT(consumed, 0u);
    ASSERT_LE(consumed, kDecodeBatch);
    off += consumed;
  }
  ASSERT_FALSE(pkts.empty());
  for (std::size_t i = 1; i < pkts.size(); ++i) {
    EXPECT_LT(pkts[i - 1].index, pkts[i].index);
  }
  EXPECT_LT(pkts.back().index, recs.size());
}

}  // namespace
}  // namespace tdat
