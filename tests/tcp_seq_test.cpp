#include "tcp/seq.hpp"

#include <gtest/gtest.h>

namespace tdat {
namespace {

TEST(SeqArith, Basics) {
  EXPECT_TRUE(seq_lt(1, 2));
  EXPECT_TRUE(seq_le(2, 2));
  EXPECT_TRUE(seq_gt(3, 2));
  EXPECT_TRUE(seq_ge(2, 2));
  EXPECT_EQ(seq_diff(10, 4), 6);
  EXPECT_EQ(seq_diff(4, 10), -6);
}

TEST(SeqArith, WrapAround) {
  const std::uint32_t near_max = 0xfffffff0u;
  const std::uint32_t wrapped = 0x00000010u;
  EXPECT_TRUE(seq_lt(near_max, wrapped));
  EXPECT_TRUE(seq_gt(wrapped, near_max));
  EXPECT_EQ(seq_diff(wrapped, near_max), 0x20);
}

TEST(SeqUnwrapper, MonotoneStream) {
  SeqUnwrapper u(1000);
  EXPECT_EQ(u.unwrap(1000), 0);
  EXPECT_EQ(u.unwrap(2460), 1460);
  EXPECT_EQ(u.unwrap(3920), 2920);
}

TEST(SeqUnwrapper, OutOfOrderAndRetransmit) {
  SeqUnwrapper u(100);
  EXPECT_EQ(u.unwrap(100), 0);
  EXPECT_EQ(u.unwrap(3020), 2920);   // jump ahead
  EXPECT_EQ(u.unwrap(1560), 1460);   // hole fill (goes back)
  EXPECT_EQ(u.unwrap(100), 0);       // full retransmit from the start
}

TEST(SeqUnwrapper, CrossesWrapBoundary) {
  const std::uint32_t isn = 0xffffff00u;
  SeqUnwrapper u(isn);
  EXPECT_EQ(u.unwrap(isn), 0);
  EXPECT_EQ(u.unwrap(isn + 0x100), 0x100);          // wraps to 0x00
  EXPECT_EQ(u.unwrap(isn + 0x100 + 1460), 0x100 + 1460);
  // Retransmission from before the wrap still maps back correctly.
  EXPECT_EQ(u.unwrap(isn + 0x80), 0x80);
}

TEST(SeqUnwrapper, ManyWraps) {
  SeqUnwrapper u(0);
  std::int64_t expected = 0;
  std::uint32_t seq = 0;
  for (int i = 0; i < 10'000; ++i) {
    // Step just under 2^20 each time: wraps every ~4096 iterations.
    seq += (1u << 20) - 37;
    expected += (1 << 20) - 37;
    EXPECT_EQ(u.unwrap(seq), expected);
  }
}

}  // namespace
}  // namespace tdat
