// Algebraic properties of the .tdagg merge, pinned over randomized inputs:
// associativity, commutativity, identity, and that rolling up a merged
// archive equals merging the per-shard roll-ups row-wise. These are the
// invariants `tdat aggregate` relies on to be order-independent — any
// fleet-side merge tree over the same shard archives must produce the same
// bytes and the same answers.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "agg/archive.hpp"
#include "agg/rollup.hpp"
#include "agg/sketch.hpp"
#include "util/rng.hpp"

namespace tdat::agg {
namespace {

ConnectionRecord random_record(Rng& rng) {
  ConnectionRecord c;
  const char* runs[] = {"", "run-a", "run-b"};
  c.run_id = runs[rng.uniform(0, 2)];
  c.collector_ip = 0x0a090900 + static_cast<std::uint32_t>(rng.uniform(1, 3));
  c.peer_ip = 0x0a000100 + static_cast<std::uint32_t>(rng.uniform(1, 6));
  c.peer_as = static_cast<std::uint32_t>(64500 + rng.uniform(0, 3));
  c.key.ip_a = c.peer_ip;
  c.key.port_a = static_cast<std::uint16_t>(rng.uniform(1024, 65000));
  c.key.ip_b = c.collector_ip;
  c.key.port_b = 179;
  if (rng.chance(0.15)) {
    c.quarantine_reason = "unrecoverable BGP framing";
    return c;
  }
  if (rng.chance(0.1)) return c;  // analyzed, but no transfer located
  c.transfer_begin = rng.uniform(0, 1'000'000);
  c.transfer_end = c.transfer_begin + rng.uniform(1, 600'000'000);
  c.updates = static_cast<std::uint64_t>(rng.uniform(1, 20'000));
  c.prefixes = static_cast<std::uint64_t>(rng.uniform(1, 400'000));
  for (std::size_t f = 0; f < kFactorCount; ++f) {
    c.factor_delay_us[f] = rng.uniform(0, c.transfer_us());
  }
  return c;
}

// Builds a random archive the way the sink does: sketches derived from the
// records with a located transfer, grouped by (run, collector, peer, AS).
Archive random_archive(Rng& rng, std::size_t connections) {
  Archive a;
  a.ingest.truncated = static_cast<std::uint64_t>(rng.uniform(0, 3));
  a.ingest.resynced = static_cast<std::uint64_t>(rng.uniform(0, 3));
  a.ingest.skipped_bytes = static_cast<std::uint64_t>(rng.uniform(0, 999));
  std::map<SketchKey, SketchGroup> groups;
  for (std::size_t i = 0; i < connections; ++i) {
    ConnectionRecord c = random_record(rng);
    if (c.has_transfer()) {
      const SketchKey key{c.run_id, c.collector_ip, c.peer_ip, c.peer_as};
      SketchGroup& g = groups[key];
      g.key = key;
      sketch_observe(g.transfer_us, c.transfer_us());
      for (std::size_t f = 0; f < kFactorCount; ++f) {
        sketch_observe(g.factor_delay_us[f], c.factor_delay_us[f]);
      }
    }
    a.connections.push_back(std::move(c));
  }
  for (auto& [key, group] : groups) a.sketches.push_back(std::move(group));
  a.normalize();
  return a;
}

Archive merged(const Archive& x, const Archive& y) {
  Archive out = x;
  out.merge_from(y);
  return out;
}

TEST(AggregateMergeProperties, CommutativeToTheByte) {
  Rng rng(2012);
  for (int round = 0; round < 8; ++round) {
    const Archive a = random_archive(rng, 12);
    const Archive b = random_archive(rng, 7);
    EXPECT_EQ(merged(a, b).serialize(), merged(b, a).serialize())
        << "round " << round;
  }
}

TEST(AggregateMergeProperties, AssociativeToTheByte) {
  Rng rng(77);
  for (int round = 0; round < 8; ++round) {
    const Archive a = random_archive(rng, 9);
    const Archive b = random_archive(rng, 5);
    const Archive c = random_archive(rng, 11);
    EXPECT_EQ(merged(merged(a, b), c).serialize(),
              merged(a, merged(b, c)).serialize())
        << "round " << round;
  }
}

TEST(AggregateMergeProperties, EmptyArchiveIsIdentity) {
  Rng rng(4242);
  const Archive a = random_archive(rng, 15);
  EXPECT_EQ(merged(a, Archive{}).serialize(), a.serialize());
  EXPECT_EQ(merged(Archive{}, a).serialize(), a.serialize());
  EXPECT_EQ(merged(Archive{}, Archive{}).serialize(), Archive{}.serialize());
}

void expect_rows_equal(const RollupRow& x, const RollupRow& y) {
  EXPECT_EQ(x.label, y.label);
  EXPECT_EQ(x.connections, y.connections);
  EXPECT_EQ(x.transfers, y.transfers);
  EXPECT_EQ(x.quarantined, y.quarantined);
  EXPECT_EQ(x.updates, y.updates);
  EXPECT_EQ(x.prefixes, y.prefixes);
  EXPECT_EQ(x.window_us, y.window_us);
  EXPECT_EQ(x.transfer_us.buckets, y.transfer_us.buckets);
  EXPECT_EQ(x.transfer_us.count, y.transfer_us.count);
  EXPECT_EQ(x.transfer_us.sum, y.transfer_us.sum);
  EXPECT_EQ(x.transfer_us.min, y.transfer_us.min);
  EXPECT_EQ(x.transfer_us.max, y.transfer_us.max);
  for (std::size_t f = 0; f < kFactorCount; ++f) {
    EXPECT_EQ(x.factors[f].dominant_connections,
              y.factors[f].dominant_connections);
    EXPECT_EQ(x.factors[f].delay_us, y.factors[f].delay_us);
  }
}

// rollup(merge(a, b)) == rowwise-merge(rollup(a), rollup(b)): the roll-up is
// a homomorphism of the merge, so fleet-wide answers don't depend on whether
// shards were merged before or after rolling up.
TEST(AggregateMergeProperties, MergeThenRollupEqualsRollupThenMerge) {
  Rng rng(90125);
  for (const RollupBy by : {RollupBy::kPeer, RollupBy::kAs,
                            RollupBy::kCollector, RollupBy::kRun}) {
    const Archive a = random_archive(rng, 14);
    const Archive b = random_archive(rng, 10);
    const RollupReport whole = build_rollup(merged(a, b), by);

    const RollupReport ra = build_rollup(a, by);
    const RollupReport rb = build_rollup(b, by);
    std::map<std::string, RollupRow> rows;
    for (const RollupReport* part : {&ra, &rb}) {
      for (const RollupRow& row : part->rows) {
        auto [it, inserted] = rows.emplace(row.label, row);
        if (!inserted) it->second.merge_from(row);
      }
    }
    RollupRow fleet = ra.fleet;
    fleet.merge_from(rb.fleet);

    ASSERT_EQ(whole.rows.size(), rows.size()) << to_string(by);
    std::size_t i = 0;
    for (const auto& [label, row] : rows) {
      expect_rows_equal(whole.rows[i++], row);
    }
    expect_rows_equal(whole.fleet, fleet);
  }
}

// Same-input determinism at the render layer: two aggregates with the same
// serialized bytes must render identical roll-up reports.
TEST(AggregateMergeProperties, RenderIsAFunctionOfTheBytes) {
  Rng rng(11);
  const Archive a = random_archive(rng, 13);
  const Archive b = random_archive(rng, 6);
  const Archive ab = merged(a, b);
  const Archive ba = merged(b, a);
  for (const RollupBy by : {RollupBy::kPeer, RollupBy::kCollector}) {
    EXPECT_EQ(render_rollup_text(build_rollup(ab, by)),
              render_rollup_text(build_rollup(ba, by)));
    EXPECT_EQ(render_rollup_json(build_rollup(ab, by)),
              render_rollup_json(build_rollup(ba, by)));
  }
}

}  // namespace
}  // namespace tdat::agg
