#include "tcp/reassembler.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace tdat {
namespace {

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> xs) {
  std::vector<std::uint8_t> out;
  for (int x : xs) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

TEST(Reassembler, InOrderDelivery) {
  Reassembler r(1000);
  auto chunks = r.feed(1000, bytes_of({1, 2, 3}), 10);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].stream_begin, 0);
  EXPECT_EQ(chunks[0].bytes, bytes_of({1, 2, 3}));
  EXPECT_EQ(chunks[0].ts, 10);
  EXPECT_EQ(r.next_expected(), 3);
}

TEST(Reassembler, HoleThenFill) {
  Reassembler r(0);
  EXPECT_TRUE(r.feed(3, bytes_of({4, 5, 6}), 1).empty());  // hole [0,3)
  EXPECT_EQ(r.buffered_bytes(), 3u);
  auto chunks = r.feed(0, bytes_of({1, 2, 3}), 2);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].bytes, bytes_of({1, 2, 3}));
  EXPECT_EQ(chunks[1].bytes, bytes_of({4, 5, 6}));
  EXPECT_EQ(chunks[1].ts, 2);  // delivered when the hole filled
  EXPECT_EQ(r.buffered_bytes(), 0u);
}

TEST(Reassembler, DuplicateOfDelivered) {
  Reassembler r(0);
  (void)r.feed(0, bytes_of({1, 2}), 1);
  EXPECT_TRUE(r.feed(0, bytes_of({1, 2}), 2).empty());
  EXPECT_EQ(r.next_expected(), 2);
}

TEST(Reassembler, OverlapExtendsDelivered) {
  Reassembler r(0);
  (void)r.feed(0, bytes_of({1, 2}), 1);
  auto chunks = r.feed(1, bytes_of({2, 3}), 2);  // overlaps one byte
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].stream_begin, 2);
  EXPECT_EQ(chunks[0].bytes, bytes_of({3}));
}

TEST(Reassembler, DuplicateOfBuffered) {
  Reassembler r(0);
  EXPECT_TRUE(r.feed(5, bytes_of({6, 7}), 1).empty());
  EXPECT_TRUE(r.feed(5, bytes_of({6, 7}), 2).empty());
  EXPECT_EQ(r.buffered_bytes(), 2u);
}

TEST(Reassembler, SegmentSpanningBufferedAndNew) {
  Reassembler r(0);
  EXPECT_TRUE(r.feed(2, bytes_of({3, 4}), 1).empty());   // buffered [2,4)
  EXPECT_TRUE(r.feed(1, bytes_of({2, 3, 4, 5}), 2).empty());  // covers [1,5)
  // [1,2) and [4,5) are new; [2,4) already buffered.
  auto chunks = r.feed(0, bytes_of({1}), 3);
  std::vector<std::uint8_t> all;
  for (const auto& c : chunks) {
    all.insert(all.end(), c.bytes.begin(), c.bytes.end());
  }
  EXPECT_EQ(all, bytes_of({1, 2, 3, 4, 5}));
  EXPECT_EQ(r.next_expected(), 5);
}

TEST(Reassembler, EmptyPayloadNoop) {
  Reassembler r(0);
  EXPECT_TRUE(r.feed(0, {}, 1).empty());
  EXPECT_EQ(r.next_expected(), 0);
}

TEST(Reassembler, SequenceWrap) {
  const std::uint32_t isn = 0xfffffffau;
  Reassembler r(isn);
  (void)r.feed(isn, bytes_of({1, 2, 3, 4}), 1);
  auto chunks = r.feed(isn + 4, bytes_of({5, 6, 7, 8}), 2);  // wraps past 0
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].stream_begin, 4);
  EXPECT_EQ(r.next_expected(), 8);
}

class ReassemblerFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ReassemblerFuzz, RandomizedSegmentsAlwaysReconstruct) {
  std::mt19937 rng(GetParam());
  // Ground-truth stream.
  std::vector<std::uint8_t> stream(4000);
  std::iota(stream.begin(), stream.end(), 0);

  // Cut into segments.
  struct Seg {
    std::size_t begin, len;
  };
  std::vector<Seg> segs;
  std::size_t pos = 0;
  std::uniform_int_distribution<std::size_t> len_d(1, 300);
  while (pos < stream.size()) {
    const std::size_t len = std::min(len_d(rng), stream.size() - pos);
    segs.push_back({pos, len});
    pos += len;
  }
  // Shuffle mildly (displacement-bounded to mimic reordering), duplicate some.
  std::vector<Seg> wire = segs;
  for (std::size_t i = 1; i < wire.size(); ++i) {
    if (rng() % 3 == 0) std::swap(wire[i], wire[i - 1]);
  }
  std::uniform_int_distribution<std::size_t> dup_d(0, wire.size() - 1);
  for (int i = 0; i < 5; ++i) wire.push_back(wire[dup_d(rng)]);

  Reassembler r(7777);
  std::vector<std::uint8_t> rebuilt;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    const auto span = std::span(stream).subspan(wire[i].begin, wire[i].len);
    for (const auto& chunk :
         r.feed(7777 + static_cast<std::uint32_t>(wire[i].begin), span,
                static_cast<Micros>(i))) {
      EXPECT_EQ(chunk.stream_begin, static_cast<std::int64_t>(rebuilt.size()));
      rebuilt.insert(rebuilt.end(), chunk.bytes.begin(), chunk.bytes.end());
    }
  }
  EXPECT_EQ(rebuilt, stream);
  EXPECT_EQ(r.buffered_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReassemblerFuzz,
                         ::testing::Range<std::uint32_t>(0, 20));

}  // namespace
}  // namespace tdat
