#!/usr/bin/env bash
# Sharded-vs-whole equivalence for the fleet aggregation pipeline:
#
#   simulate -> analyze --format agg            (whole-run archive)
#   simulate -> shard -> analyze each -> aggregate   (merged shard archives)
#
# The two must be byte-identical, in every merge order — the property that
# makes `tdat aggregate` trustworthy at fleet scale (DESIGN.md §13). Also
# pins the committed golden archive and its roll-up JSON (tests/golden/),
# and the aggregate --diff exit-code contract.
#
# Usage: aggregate_equivalence_test.sh <path-to-tdat> <golden-dir>
set -u

TDAT="$1"
GOLDEN_DIR="$2"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

"$TDAT" simulate baseline "$TMP/base.pcap" --sessions 4 >/dev/null \
  || fail "simulate exited non-zero"

# --- whole-run archive ------------------------------------------------------
"$TDAT" analyze "$TMP/base.pcap" --format agg --jobs 2 --quiet-stats \
  >"$TMP/whole.tdagg" || fail "analyze --format agg exited non-zero"
[ -s "$TMP/whole.tdagg" ] || fail "whole-run archive is empty"

# --- sharded run ------------------------------------------------------------
"$TDAT" shard "$TMP/base.pcap" "$TMP/shards" --shards 3 >/dev/null \
  || fail "shard exited non-zero"
for s in 0 1 2; do
  [ -f "$TMP/shards/shard-$s.pcap" ] || fail "missing shard-$s.pcap"
  "$TDAT" analyze "$TMP/shards/shard-$s.pcap" --format agg --quiet-stats \
    >"$TMP/s$s.tdagg" || fail "analyze shard-$s exited non-zero"
done

# Every merge order must serialize identically, and equal the whole run.
"$TDAT" aggregate "$TMP/s0.tdagg" "$TMP/s1.tdagg" "$TMP/s2.tdagg" \
  --output "$TMP/m012.tdagg" >/dev/null || fail "aggregate 012 failed"
"$TDAT" aggregate "$TMP/s2.tdagg" "$TMP/s0.tdagg" "$TMP/s1.tdagg" \
  --output "$TMP/m201.tdagg" >/dev/null || fail "aggregate 201 failed"
"$TDAT" aggregate "$TMP/s1.tdagg" "$TMP/s2.tdagg" "$TMP/s0.tdagg" \
  --output "$TMP/m120.tdagg" >/dev/null || fail "aggregate 120 failed"
cmp -s "$TMP/m012.tdagg" "$TMP/m201.tdagg" \
  || fail "merge order 012 vs 201 differ (merge is not order-independent)"
cmp -s "$TMP/m012.tdagg" "$TMP/m120.tdagg" \
  || fail "merge order 012 vs 120 differ (merge is not order-independent)"
cmp -s "$TMP/m012.tdagg" "$TMP/whole.tdagg" \
  || fail "merged shard archives differ from the whole-run archive"

# Incremental merge (a+b, then +c) must also land on the same bytes.
"$TDAT" aggregate "$TMP/s0.tdagg" "$TMP/s1.tdagg" \
  --output "$TMP/ab.tdagg" >/dev/null || fail "aggregate a+b failed"
"$TDAT" aggregate "$TMP/ab.tdagg" "$TMP/s2.tdagg" \
  --output "$TMP/abc.tdagg" >/dev/null || fail "aggregate (a+b)+c failed"
cmp -s "$TMP/abc.tdagg" "$TMP/whole.tdagg" \
  || fail "incremental merge differs from the whole-run archive"

# --- committed goldens ------------------------------------------------------
# Regenerate deliberately with:
#   tdat simulate baseline /tmp/base.pcap --sessions 4
#   tdat analyze /tmp/base.pcap --format agg --quiet-stats \
#     > tests/golden/aggregate_baseline.tdagg
#   tdat aggregate tests/golden/aggregate_baseline.tdagg --by peer \
#     --report json > tests/golden/aggregate_rollup_peer.json
cmp -s "$TMP/whole.tdagg" "$GOLDEN_DIR/aggregate_baseline.tdagg" \
  || fail "archive drifted from tests/golden/aggregate_baseline.tdagg" \
          "(regenerate deliberately if the format changed)"
"$TDAT" aggregate "$TMP/whole.tdagg" --by peer --report json \
  >"$TMP/rollup.json" || fail "aggregate roll-up exited non-zero"
diff -u "$GOLDEN_DIR/aggregate_rollup_peer.json" "$TMP/rollup.json" \
  || fail "roll-up drifted from tests/golden/aggregate_rollup_peer.json"

# --- diff exit codes --------------------------------------------------------
# Same aggregate vs itself: no regressions, exit 0.
"$TDAT" aggregate "$TMP/whole.tdagg" --diff "$TMP/whole.tdagg" >/dev/null
[ $? -eq 0 ] || fail "self-diff should exit 0"
# A slow-collector week vs the baseline week: regressions, exit 1.
"$TDAT" simulate slow-collector "$TMP/slow.pcap" --sessions 4 >/dev/null \
  || fail "simulate slow-collector exited non-zero"
"$TDAT" analyze "$TMP/slow.pcap" --format agg --quiet-stats \
  >"$TMP/slow.tdagg" || fail "analyze slow exited non-zero"
"$TDAT" aggregate "$TMP/slow.tdagg" --diff "$TMP/whole.tdagg" \
  >"$TMP/diff.txt"
[ $? -eq 1 ] || fail "regressed diff should exit 1"
grep -q "REGRESSED" "$TMP/diff.txt" || fail "diff output lacks REGRESSED"

# Unreadable archives exit 3.
printf 'not an archive' >"$TMP/bogus.tdagg"
"$TDAT" aggregate "$TMP/bogus.tdagg" >/dev/null 2>&1
[ $? -eq 3 ] || fail "bogus archive should exit 3"

echo "PASS"
exit 0
