// Behavioural tests of TCP endpoint mechanisms that the analyzer's
// heuristics rely on: Nagle coalescing, quickack-after-idle, receiver-side
// SWS avoidance, persist-probe backoff, and delayed-ACK pacing.
#include <gtest/gtest.h>

#include "sim/tcp_endpoint.hpp"

namespace tdat {
namespace {

class Recorder : public TcpApp {
 public:
  void on_connected() override { connected = true; }
  bool connected = false;
};

class Pipe {
 public:
  Scheduler sched;
  Micros one_way = 5 * kMicrosPerMilli;
  std::vector<SimPacket> a_to_b;  // every packet sender -> receiver
  std::vector<SimPacket> b_to_a;

  void connect(TcpEndpoint& a, TcpEndpoint& b) {
    a.set_output([this, &b](SimPacket p) {
      a_to_b.push_back(p);
      sched.after(one_way, [&b, p] { b.on_segment(p); });
    });
    b.set_output([this, &a](SimPacket p) {
      b_to_a.push_back(p);
      sched.after(one_way, [&a, p] { a.on_segment(p); });
    });
  }

  std::size_t data_packets() const {
    std::size_t n = 0;
    for (const auto& p : a_to_b) n += p.payload_len > 0 ? 1 : 0;
    return n;
  }
};

struct Pair {
  Pipe pipe;
  Recorder app_a, app_b;
  TcpEndpoint a, b;

  explicit Pair(TcpConfig ca = {}, TcpConfig cb = {})
      : a(pipe.sched, fix(ca, 1, 100), &app_a, "a"),
        b(pipe.sched, fix(cb, 2, 179), &app_b, "b") {
    pipe.connect(a, b);
    b.listen(1, 100);
    a.connect(2, 179);
    pipe.sched.run_until(kMicrosPerSec);
  }

  static TcpConfig fix(TcpConfig c, std::uint32_t ip, std::uint16_t port) {
    c.ip = ip;
    c.port = port;
    c.isn = 1000 * ip;
    return c;
  }
};

TEST(EndpointBehavior, NodelaySendsSubMssImmediately) {
  Pair p;  // nagle defaults to off (TCP_NODELAY)
  const std::size_t before = p.pipe.data_packets();
  std::vector<std::uint8_t> msg(100, 1);
  (void)p.a.send(msg);
  (void)p.a.send(msg);  // second small write while the first is in flight
  p.pipe.sched.run_until(2 * kMicrosPerSec);
  EXPECT_EQ(p.pipe.data_packets() - before, 2u);  // two tiny segments
}

TEST(EndpointBehavior, NagleCoalescesSubMssWrites) {
  TcpConfig c;
  c.nagle = true;
  Pair p(c);
  const std::size_t before = p.pipe.data_packets();
  std::vector<std::uint8_t> msg(100, 1);
  for (int i = 0; i < 10; ++i) (void)p.a.send(msg);  // 1000 bytes total
  p.pipe.sched.run_until(2 * kMicrosPerSec);
  // First write goes alone (flight was 0), the other nine coalesce into one
  // segment released by its ACK.
  EXPECT_EQ(p.pipe.data_packets() - before, 2u);
}

TEST(EndpointBehavior, QuickackAfterIdleAcksImmediately) {
  Pair p;
  std::vector<std::uint8_t> seg(1000, 2);
  (void)p.a.send(seg);
  const Micros sent_at = p.pipe.sched.now();
  p.pipe.sched.run_until(sent_at + 50 * kMicrosPerMilli);
  // The single sub-2nd segment after idle must be ACKed at ~RTT, not after
  // the 200 ms delack timer.
  ASSERT_FALSE(p.pipe.b_to_a.empty());
  const SimPacket& last_ack = p.pipe.b_to_a.back();
  EXPECT_TRUE(last_ack.flags.ack);
  EXPECT_EQ(p.a.flight_size(), 0);  // acked already
}

TEST(EndpointBehavior, DelayedAckKicksInAfterQuickackBudget) {
  Pair p;
  // A long steady stream: after the quickack budget, odd trailing segments
  // wait for the delack timer.
  std::vector<std::uint8_t> big(30'000, 3);
  (void)p.a.send(big);
  p.pipe.sched.run_until(10 * kMicrosPerSec);
  EXPECT_EQ(p.a.bytes_acked(), 30'000);
  // ACK count is well below data-packet count thanks to ack-every-2nd.
  std::size_t pure_acks = 0;
  for (const auto& pk : p.pipe.b_to_a) {
    if (pk.flags.ack && pk.payload_len == 0 && !pk.flags.syn) ++pure_acks;
  }
  EXPECT_LT(pure_acks, p.pipe.data_packets());
}

TEST(EndpointBehavior, SwsAvoidanceNeverAdvertisesSillyWindow) {
  TcpConfig cb;
  cb.recv_buf_capacity = 8 * 1024;
  Pair p(TcpConfig{}, cb);
  std::vector<std::uint8_t> big(8 * 1024, 4);
  (void)p.a.send(big);
  p.pipe.sched.run_until(5 * kMicrosPerSec);
  // The receiver never reads, so its buffer fills. Every advertised window
  // on the way must be 0 or >= min(MSS, capacity/2) per RFC 1122.
  for (const auto& pk : p.pipe.b_to_a) {
    if (pk.flags.syn) continue;
    EXPECT_TRUE(pk.window == 0 || pk.window >= 1460) << pk.window;
  }
}

TEST(EndpointBehavior, PersistProbesBackOffAndResume) {
  TcpConfig cb;
  cb.recv_buf_capacity = 4 * 1024;
  Pair p(TcpConfig{}, cb);
  std::vector<std::uint8_t> big(20'000, 5);
  std::size_t written = p.a.send(big);
  // Fill the window; the receiver never reads: zero window, probes start.
  p.pipe.sched.run_until(20 * kMicrosPerSec);
  EXPECT_GE(p.a.persist_arm_count(), 2u);  // repeated, backed-off probing
  EXPECT_LT(p.a.bytes_acked(), static_cast<std::int64_t>(written));

  // Now the app drains: the window reopens, transfer completes.
  std::function<void()> reader = [&] {
    (void)p.b.read(4096);
    if (p.b.bytes_delivered() < static_cast<std::int64_t>(written)) {
      p.pipe.sched.after(50 * kMicrosPerMilli, reader);
    }
  };
  p.pipe.sched.after(0, reader);
  p.pipe.sched.run_until(80 * kMicrosPerSec);
  EXPECT_EQ(p.a.bytes_acked(), static_cast<std::int64_t>(written));
}

TEST(EndpointBehavior, RtoBackoffIsExponential) {
  Pair p;
  // Sever the wire after establishment: every retransmission times out.
  p.a.set_output([](SimPacket) {});
  std::vector<std::uint8_t> seg(1000, 6);
  (void)p.a.send(seg);
  const Micros rto0 = p.a.current_rto();
  p.pipe.sched.run_until(p.pipe.sched.now() + 30 * kMicrosPerSec);
  EXPECT_GE(p.a.retransmit_count(), 3u);
  EXPECT_GE(p.a.current_rto(), 4 * rto0);  // at least two doublings
}

TEST(EndpointBehavior, SynRetransmittedWhenLost) {
  // Drop the first SYN: connect must still succeed via SYN retransmission.
  Scheduler sched;
  Recorder ra, rb;
  TcpEndpoint a(sched, Pair::fix({}, 1, 100), &ra, "a");
  TcpEndpoint b(sched, Pair::fix({}, 2, 179), &rb, "b");
  int syn_seen = 0;
  a.set_output([&](SimPacket p) {
    if (p.flags.syn && ++syn_seen == 1) return;  // lose the first SYN
    sched.after(1000, [&b, p] { b.on_segment(p); });
  });
  b.set_output([&](SimPacket p) {
    sched.after(1000, [&a, p] { a.on_segment(p); });
  });
  b.listen(1, 100);
  a.connect(2, 179);
  sched.run_until(10 * kMicrosPerSec);
  EXPECT_TRUE(a.established());
  EXPECT_GE(syn_seen, 2);
}

}  // namespace
}  // namespace tdat
