// The paper's §VII future work: applying T-DAT beyond the initial table
// transfer, to the massive update bursts routing events trigger. MCT must
// fence the initial transfer off from the burst (re-announcements repeat
// prefixes), and classify_delay over the burst's own window must attribute
// its delay correctly.
#include <gtest/gtest.h>

#include "core/delay_report.hpp"
#include "sim_scenarios.hpp"

namespace tdat {
namespace {

struct BurstRun {
  ConnectionAnalysis analysis;
  Micros burst_start = 0;
};

BurstRun run_with_burst(SessionSpec spec, std::uint64_t seed) {
  SimWorld world(seed);
  Rng rng(seed ^ 0xfeed);
  TableGenConfig tg;
  tg.prefix_count = 4'000;
  const auto table = generate_table(tg, rng);
  const auto s = world.add_session(spec, serialize_updates(table));
  world.start_session(s, 0);

  // Let the initial transfer finish, then fire the routing event.
  const Micros burst_at = 30 * kMicrosPerSec;
  world.scheduler().at(burst_at, [&world, s, &table, &rng] {
    world.sender(s).enqueue(
        serialize_updates(generate_update_burst(table, 0.5, 0.1, rng)));
  });
  world.run_until(300 * kMicrosPerSec);
  EXPECT_TRUE(world.sender(s).finished_sending());

  TraceAnalysis ta = analyze_trace(world.take_trace(), AnalyzerOptions{});
  EXPECT_EQ(ta.results.size(), 1u);
  return {std::move(ta.results[0]), burst_at};
}

TEST(UpdateBurst, MctFencesTheInitialTransferOffTheBurst) {
  const BurstRun run = run_with_burst(SessionSpec{}, 71);
  // The transfer window must end well before the burst: the burst repeats
  // prefixes (or withdraws), which is MCT's end-of-transfer signal.
  EXPECT_LT(run.analysis.transfer.end, run.burst_start);
  EXPECT_EQ(run.analysis.mct.prefix_count, 4'000u);
}

TEST(UpdateBurst, BurstMessagesAreExtracted) {
  const BurstRun run = run_with_burst(SessionSpec{}, 72);
  std::size_t burst_updates = 0;
  for (const TimedBgpMessage& tm : run.analysis.messages) {
    if (tm.ts >= run.burst_start && tm.msg.as_update() != nullptr) {
      ++burst_updates;
    }
  }
  EXPECT_GT(burst_updates, 100u);
}

TEST(UpdateBurst, BurstWindowClassifiesItsOwnBottleneck) {
  // Make the burst receiver-limited: the collector is slow.
  SessionSpec spec = test::slow_collector();
  const BurstRun run = run_with_burst(spec, 73);

  // Find the burst's data span from the extracted messages.
  Micros burst_end = run.burst_start;
  for (const TimedBgpMessage& tm : run.analysis.messages) {
    if (tm.msg.as_update() != nullptr) burst_end = std::max(burst_end, tm.ts);
  }
  ASSERT_GT(burst_end, run.burst_start);

  // T-DAT is window-agnostic: classify the burst period directly.
  const DelayReport burst_report = classify_delay(
      run.analysis.series(), {run.burst_start, burst_end}, AnalyzerOptions{});
  EXPECT_TRUE(burst_report.major(FactorGroup::kReceiver));
  EXPECT_EQ(burst_report.dominant(FactorGroup::kReceiver),
            Factor::kBgpReceiverApp);
}

TEST(UpdateBurst, GeneratorShapes) {
  Rng rng(9);
  TableGenConfig tg;
  tg.prefix_count = 2'000;
  const auto table = generate_table(tg, rng);
  const auto burst = generate_update_burst(table, 0.5, 0.1, rng);
  std::size_t withdraws = 0, reannounces = 0;
  for (const BgpUpdate& u : burst) {
    if (!u.withdrawn.empty()) {
      ++withdraws;
      EXPECT_TRUE(u.nlri.empty());
    } else {
      ++reannounces;
      EXPECT_FALSE(u.nlri.empty());
      EXPECT_FALSE(u.attrs.as_path.empty());
    }
  }
  // Roughly the configured fractions of the table's updates.
  EXPECT_GT(reannounces, table.size() / 3);
  EXPECT_LT(reannounces, table.size() * 2 / 3);
  EXPECT_GT(withdraws, table.size() / 25);
  EXPECT_LT(withdraws, table.size() / 5);
}

}  // namespace
}  // namespace tdat
