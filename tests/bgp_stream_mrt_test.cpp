#include <gtest/gtest.h>

#include "bgp/mrt.hpp"
#include "bgp/msg_stream.hpp"
#include "bgp/table_gen.hpp"

namespace tdat {
namespace {

TEST(MessageStream, SplitsAcrossChunks) {
  BgpMessageStream s;
  const auto ka = serialize_message(BgpMessage{BgpKeepAlive{}});
  BgpOpen open;
  open.my_as = 65001;
  const auto op = serialize_message(BgpMessage{open});

  std::vector<std::uint8_t> all;
  all.insert(all.end(), op.begin(), op.end());
  all.insert(all.end(), ka.begin(), ka.end());

  // Feed in awkward chunk sizes.
  auto m1 = s.feed(std::span(all).first(10), 100);
  EXPECT_TRUE(m1.empty());
  auto m2 = s.feed(std::span(all).subspan(10, op.size()), 200);
  ASSERT_EQ(m2.size(), 1u);
  EXPECT_EQ(m2[0].msg.type(), BgpType::kOpen);
  EXPECT_EQ(m2[0].ts, 200);  // timed when completed
  auto m3 = s.feed(std::span(all).subspan(10 + op.size()), 300);
  ASSERT_EQ(m3.size(), 1u);
  EXPECT_EQ(m3[0].msg.type(), BgpType::kKeepAlive);
  EXPECT_EQ(s.buffered(), 0u);
}

TEST(MessageStream, ResyncsAfterGarbage) {
  BgpMessageStream s;
  std::vector<std::uint8_t> garbage(13, 0x42);
  EXPECT_TRUE(s.feed(garbage, 1).empty());
  const auto ka = serialize_message(BgpMessage{BgpKeepAlive{}});
  const auto msgs = s.feed(ka, 2);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(s.skipped_bytes(), 13u);
}

TEST(MessageStream, CountsOneResyncPerFramingLoss) {
  // Garbage between two valid messages: one framing loss, one marker hunt,
  // and the valid messages on either side still come out.
  BgpMessageStream s;
  const auto ka = serialize_message(BgpMessage{BgpKeepAlive{}});
  std::vector<std::uint8_t> all(ka.begin(), ka.end());
  all.insert(all.end(), {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66});
  all.insert(all.end(), ka.begin(), ka.end());
  const auto msgs = s.feed(all, 9);
  EXPECT_EQ(msgs.size(), 2u);
  EXPECT_EQ(s.resyncs(), 1u);
  EXPECT_EQ(s.skipped_bytes(), 7u);
}

TEST(MessageStream, MarkerHuntSurvivesPartialMarkerAtChunkEnd) {
  // The garbage run ends with a partial 0xff run that only completes into a
  // real marker in the next chunk; the hunt must not skip past it.
  BgpMessageStream s;
  const auto ka = serialize_message(BgpMessage{BgpKeepAlive{}});
  std::vector<std::uint8_t> first{0x01, 0x02, 0x03};
  first.insert(first.end(), ka.begin(), ka.begin() + 9);  // marker cut short
  EXPECT_TRUE(s.feed(first, 1).empty());
  std::vector<std::uint8_t> second(ka.begin() + 9, ka.end());
  const auto msgs = s.feed(second, 2);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].msg.type(), BgpType::kKeepAlive);
  EXPECT_EQ(s.resyncs(), 1u);
  EXPECT_EQ(s.skipped_bytes(), 3u);
}

TEST(MessageStream, ResetClearsResyncCount) {
  BgpMessageStream s;
  std::vector<std::uint8_t> garbage(9, 0x21);
  const auto ka = serialize_message(BgpMessage{BgpKeepAlive{}});
  garbage.insert(garbage.end(), ka.begin(), ka.end());
  (void)s.feed(garbage, 1);
  EXPECT_EQ(s.resyncs(), 1u);
  s.reset();
  EXPECT_EQ(s.resyncs(), 0u);
  EXPECT_EQ(s.skipped_bytes(), 0u);
}

TEST(MessageStream, ManyMessagesOneChunk) {
  BgpMessageStream s;
  Rng rng(1);
  TableGenConfig cfg;
  cfg.prefix_count = 200;
  const auto updates = generate_table(cfg, rng);
  std::vector<std::uint8_t> all;
  for (const auto& u : updates) {
    const auto b = serialize_message(BgpMessage{u});
    all.insert(all.end(), b.begin(), b.end());
  }
  const auto msgs = s.feed(all, 7);
  EXPECT_EQ(msgs.size(), updates.size());
  EXPECT_EQ(s.parse_errors(), 0u);
}

TEST(Mrt, RoundTrip) {
  std::vector<MrtRecord> records;
  for (int i = 0; i < 3; ++i) {
    MrtRecord rec;
    rec.ts = i * kMicrosPerSec;
    rec.peer_as = 65001;
    rec.local_as = 65000;
    rec.peer_ip = 0x0a000101;
    rec.local_ip = 0x0a090909;
    rec.bgp_message = serialize_message(BgpMessage{BgpKeepAlive{}});
    records.push_back(std::move(rec));
  }
  const auto parsed = parse_mrt(serialize_mrt(records));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 3u);
  EXPECT_EQ(parsed.value()[1].ts, kMicrosPerSec);
  EXPECT_EQ(parsed.value()[1].peer_as, 65001);
  const auto msg = parsed.value()[1].parse();
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value().type(), BgpType::kKeepAlive);
}

TEST(Mrt, RejectsTruncated) {
  std::vector<MrtRecord> records(1);
  records[0].bgp_message = serialize_message(BgpMessage{BgpKeepAlive{}});
  auto image = serialize_mrt(records);
  image.resize(image.size() - 2);
  EXPECT_FALSE(parse_mrt(image).ok());
}

TEST(Mrt, FileRoundTrip) {
  std::vector<MrtRecord> records(1);
  records[0].ts = 99 * kMicrosPerSec;
  records[0].bgp_message = serialize_message(BgpMessage{BgpKeepAlive{}});
  const std::string path = ::testing::TempDir() + "/tdat_test.mrt";
  ASSERT_TRUE(write_mrt_file(path, records));
  const auto loaded = read_mrt_file(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value()[0].ts, 99 * kMicrosPerSec);
}

TEST(TableGen, GeneratesRequestedPrefixCount) {
  Rng rng(7);
  TableGenConfig cfg;
  cfg.prefix_count = 1000;
  const auto updates = generate_table(cfg, rng);
  std::size_t total = 0;
  for (const auto& u : updates) total += u.nlri.size();
  EXPECT_EQ(total, 1000u);
  // Realistic packing: more than one prefix per update on average.
  EXPECT_LT(updates.size(), 1000u);
  EXPECT_GT(updates.size(), 100u);
}

TEST(TableGen, PrefixesAreDistinct) {
  Rng rng(11);
  TableGenConfig cfg;
  cfg.prefix_count = 2000;
  const auto updates = generate_table(cfg, rng);
  std::set<Prefix> seen;
  for (const auto& u : updates) {
    for (const Prefix& p : u.nlri) {
      EXPECT_TRUE(seen.insert(p).second) << p.to_string();
    }
  }
}

TEST(TableGen, DeterministicForSeed) {
  Rng a(3);
  Rng b(3);
  TableGenConfig cfg;
  cfg.prefix_count = 300;
  EXPECT_EQ(generate_table(cfg, a), generate_table(cfg, b));
}

TEST(TableGen, AllMessagesSerializable) {
  Rng rng(5);
  TableGenConfig cfg;
  cfg.prefix_count = 500;
  const auto updates = generate_table(cfg, rng);
  const auto size = serialized_size(updates);
  // Real full tables run 5-8 MB for ~300k prefixes, i.e. ~20 bytes/prefix;
  // 500 prefixes should land in the same per-prefix band.
  EXPECT_GT(size, 500u * 10);
  EXPECT_LT(size, 500u * 40);
  for (const auto& u : updates) {
    const auto parsed = parse_message(serialize_message(BgpMessage{u}));
    ASSERT_TRUE(parsed.ok());
  }
}

}  // namespace
}  // namespace tdat
