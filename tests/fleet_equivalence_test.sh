#!/usr/bin/env bash
# Fleet-vs-whole equivalence, end to end through the CLI (DESIGN.md §14):
#
#   analyze --format agg                      (whole-run archive)
#   fleet --workers N                         (planned, forked, merged)
#
# The merged fleet archive must be byte-identical to the whole-run archive
# for every worker count — including with a worker deliberately killed
# mid-fleet (reassignment) and on a deliberately corrupted capture (the
# plan-sweep diagnostics injection) — and the fleet must never write a
# shard pcap to disk. Also pins `tdat shard --plan` JSON output and the
# `analyze --fleet N` sugar.
#
# Usage: fleet_equivalence_test.sh <path-to-tdat>
set -u

TDAT="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

"$TDAT" simulate baseline "$TMP/base.pcap" --sessions 4 >/dev/null \
  || fail "simulate exited non-zero"

# --- whole-run archive ------------------------------------------------------
"$TDAT" analyze "$TMP/base.pcap" --format agg --quiet-stats \
  >"$TMP/whole.tdagg" || fail "analyze --format agg exited non-zero"
[ -s "$TMP/whole.tdagg" ] || fail "whole-run archive is empty"

# --- fleet at several widths: byte-identical, no shard pcaps ----------------
for n in 1 2 8; do
  (cd "$TMP" && "$TDAT" fleet base.pcap --workers "$n" --quiet-stats \
    >"fleet$n.tdagg") || fail "fleet --workers $n exited non-zero"
  cmp -s "$TMP/fleet$n.tdagg" "$TMP/whole.tdagg" \
    || fail "fleet --workers $n differs from the whole-run archive"
done
leftover="$(find "$TMP" -name '*.pcap' ! -name base.pcap | wc -l)"
[ "$leftover" -eq 0 ] || fail "fleet wrote $leftover shard pcap file(s)"

# --- analyze --fleet sugar --------------------------------------------------
"$TDAT" analyze "$TMP/base.pcap" --format agg --fleet 2 --quiet-stats \
  >"$TMP/sugar.tdagg" || fail "analyze --fleet 2 exited non-zero"
cmp -s "$TMP/sugar.tdagg" "$TMP/whole.tdagg" \
  || fail "analyze --fleet differs from the whole-run archive"
# --fleet without the agg format is a usage error.
"$TDAT" analyze "$TMP/base.pcap" --fleet 2 --quiet-stats >/dev/null 2>&1
[ $? -eq 2 ] || fail "analyze --fleet without --format agg should exit 2"

# --- killed worker: shard reassigned, bytes unchanged -----------------------
TDAT_FLEET_KILL_WORKER=0 "$TDAT" fleet "$TMP/base.pcap" --workers 2 \
  --stats >"$TMP/killed.tdagg" 2>"$TMP/killed.stats" \
  || fail "fleet with a killed worker exited non-zero"
cmp -s "$TMP/killed.tdagg" "$TMP/whole.tdagg" \
  || fail "fleet with a killed worker differs from the whole-run archive"
grep -q "reassignments" "$TMP/killed.stats" \
  || fail "fleet --stats lacks reassignment accounting"

# --- shard --plan: machine-readable plan, no files written ------------------
"$TDAT" shard "$TMP/base.pcap" --plan --shards 3 >"$TMP/plan.json" \
  || fail "shard --plan exited non-zero"
grep -q '"shards"' "$TMP/plan.json" || fail "plan JSON lacks shards"
grep -q '"runs"' "$TMP/plan.json" || fail "plan JSON lacks runs"
leftover="$(find "$TMP" -name '*.pcap' ! -name base.pcap | wc -l)"
[ "$leftover" -eq 0 ] || fail "shard --plan wrote shard pcap file(s)"

# --- corrupted capture: plan-sweep diagnostics keep equivalence -------------
cp "$TMP/base.pcap" "$TMP/corrupt.pcap"
filesize="$(wc -c <"$TMP/corrupt.pcap")"
# Flip a byte two-thirds in — enough to damage a record body or header.
printf '\xff' | dd of="$TMP/corrupt.pcap" bs=1 seek="$((filesize * 2 / 3))" \
  conv=notrunc 2>/dev/null || fail "cannot corrupt capture"
"$TDAT" analyze "$TMP/corrupt.pcap" --format agg --quiet-stats \
  >"$TMP/cwhole.tdagg"
whole_rc=$?
"$TDAT" fleet "$TMP/corrupt.pcap" --workers 2 --quiet-stats \
  >"$TMP/cfleet.tdagg"
fleet_rc=$?
[ "$whole_rc" -eq "$fleet_rc" ] \
  || fail "corrupt capture: whole rc=$whole_rc but fleet rc=$fleet_rc"
cmp -s "$TMP/cfleet.tdagg" "$TMP/cwhole.tdagg" \
  || fail "corrupt capture: fleet archive differs from the whole-run archive"

# --- remote worker reconnect: listener appears late, bytes unchanged --------
# The worker dials before any coordinator is listening (exactly what a killed
# and restarted listener looks like from the worker's side) and must retry
# with backoff until the listener appears, then serve the job to completion
# with zero lost shards and exit 0.
PORT=$((20000 + RANDOM % 20000))
TDAT_FLEET_RECONNECT_BASE_MS=20 TDAT_FLEET_RECONNECT_MAX_MS=200 \
  TDAT_FLEET_RECONNECT_ATTEMPTS=100 \
  "$TDAT" fleet --connect "127.0.0.1:$PORT" >/dev/null 2>&1 &
WORKER_PID=$!
sleep 0.4  # several dial attempts fail before the listener exists
kill -0 "$WORKER_PID" 2>/dev/null \
  || fail "worker gave up while the listener was down"
"$TDAT" fleet "$TMP/base.pcap" --listen "127.0.0.1:$PORT" --quiet-stats \
  >"$TMP/remote.tdagg" || fail "fleet --listen exited non-zero"
cmp -s "$TMP/remote.tdagg" "$TMP/whole.tdagg" \
  || fail "remote-worker fleet differs from the whole-run archive"
wait "$WORKER_PID"
worker_rc=$?
[ "$worker_rc" -eq 0 ] \
  || fail "reconnecting worker exited $worker_rc (want 0 after Shutdown)"

# A worker whose coordinator never comes back must give up after the
# configured attempts with exit 3 — not hang, not crash.
TDAT_FLEET_RECONNECT_BASE_MS=10 TDAT_FLEET_RECONNECT_MAX_MS=20 \
  TDAT_FLEET_RECONNECT_ATTEMPTS=3 \
  "$TDAT" fleet --connect "127.0.0.1:$PORT" >/dev/null 2>&1
[ $? -eq 3 ] || fail "worker should exit 3 after exhausting reconnects"

# --- CLI contract edges -----------------------------------------------------
"$TDAT" fleet "$TMP/base.pcap" --workers 0 >/dev/null 2>&1
[ $? -eq 2 ] || fail "fleet --workers 0 should exit 2"
"$TDAT" fleet /nonexistent.pcap --workers 2 >/dev/null 2>&1
[ $? -eq 3 ] || fail "fleet on an unreadable capture should exit 3"

echo "PASS"
exit 0
