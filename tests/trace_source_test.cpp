// TraceSource ingest equivalence: a capture rotated across several files —
// listed in any order, or as a directory — must analyze bit-identically to
// the same records in one file, because MultiFileSource orders the segments
// by first timestamp and keeps the global record index continuous.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/export.hpp"
#include "pcap/pcap_file.hpp"
#include "sim_scenarios.hpp"

namespace tdat {
namespace {

// Two concurrent sessions so the demux spans the file boundary: connections
// that begin in the first segment keep accumulating packets from the second.
PcapFile two_session_trace() {
  SimWorld world(99);
  SessionSpec spec;
  spec.bgp.timer_driven = true;
  spec.bgp.timer_interval = 200 * kMicrosPerMilli;
  spec.bgp.msgs_per_tick = 60;
  for (std::size_t i = 0; i < 2; ++i) {
    const auto s = world.add_session(spec, test::table_messages(2000, 7 + i));
    world.start_session(s, static_cast<Micros>(i) * 10 * kMicrosPerMilli);
  }
  world.run_until(600 * kMicrosPerSec);
  return world.take_trace();
}

// Splits a trace at the record midpoint into two on-disk segments whose
// lexical filename order is the *reverse* of their capture order, so a pass
// that forgets to sort by timestamp fails loudly.
struct SplitTrace {
  std::string dir;
  std::string early;  // first half of the records, lexically *later* name
  std::string late;
};

SplitTrace write_split(const PcapFile& full, const std::string& subdir) {
  SplitTrace out;
  out.dir = ::testing::TempDir() + subdir;
  std::filesystem::create_directories(out.dir);
  out.early = out.dir + "/b-rotated-000.pcap";
  out.late = out.dir + "/a-rotated-001.pcap";
  const std::size_t mid = full.records.size() / 2;
  PcapFile first, second;
  first.records.assign(full.records.begin(), full.records.begin() + mid);
  second.records.assign(full.records.begin() + mid, full.records.end());
  EXPECT_TRUE(write_pcap_file(out.early, first));
  EXPECT_TRUE(write_pcap_file(out.late, second));
  return out;
}

void expect_same_analyses(const TraceAnalysis& expected,
                          const Result<TraceAnalysis>& got) {
  ASSERT_TRUE(got.ok()) << got.error();
  ASSERT_EQ(got.value().results.size(), expected.results.size());
  for (std::size_t i = 0; i < expected.results.size(); ++i) {
    EXPECT_EQ(analysis_to_json(got.value().results[i]),
              analysis_to_json(expected.results[i]))
        << "connection " << i;
  }
}

TEST(MultiFileSource, RotatedSegmentsMatchTheUnsplitTrace) {
  const PcapFile full = two_session_trace();
  ASSERT_GT(full.records.size(), 100u);
  const SplitTrace split = write_split(full, "trace_source_rotated");

  AnalyzerOptions opts;
  const TraceAnalysis expected = analyze_trace(full, opts);
  ASSERT_EQ(expected.results.size(), 2u);

  // Listed out of capture order: the source must sort by first timestamp.
  expect_same_analyses(expected,
                       analyze_files({split.late, split.early}, opts));
}

TEST(MultiFileSource, DirectoryInputExpandsToTheSameAnalysis) {
  const PcapFile full = two_session_trace();
  const SplitTrace split = write_split(full, "trace_source_dir");

  AnalyzerOptions opts;
  const TraceAnalysis expected = analyze_trace(full, opts);
  expect_same_analyses(expected, analyze_files({split.dir}, opts));
}

TEST(MultiFileSource, StatsCoverEveryRecordAcrossSegments) {
  const PcapFile full = two_session_trace();
  const SplitTrace split = write_split(full, "trace_source_stats");

  AnalyzerOptions opts;
  const TraceAnalysis expected = analyze_trace(full, opts);
  auto got = analyze_files({split.early, split.late}, opts);
  ASSERT_TRUE(got.ok()) << got.error();
  EXPECT_GT(got.value().stats.packets, 0u);
  EXPECT_EQ(got.value().stats.packets, expected.stats.packets);
  EXPECT_EQ(got.value().stats.records, expected.stats.records);
}

TEST(MultiFileSource, MissingFileIsAnErrorNotACrash) {
  AnalyzerOptions opts;
  const auto got = analyze_files({"/nonexistent/rotated-000.pcap"}, opts);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.error().find("rotated-000.pcap"), std::string::npos);
}

}  // namespace
}  // namespace tdat
