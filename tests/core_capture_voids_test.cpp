// Capture-void detection (§II-A): tcpdump drops leave periods where the
// receiver acknowledges bytes the trace never shows.
#include <gtest/gtest.h>

#include "core/detectors.hpp"
#include "sim_scenarios.hpp"

namespace tdat {
namespace {

TEST(CaptureVoids, CleanCaptureHasNone) {
  SimWorld world(101);
  const auto s = world.add_session(SessionSpec{}, test::table_messages(2000, 1));
  world.start_session(s, 0);
  world.run_until(120 * kMicrosPerSec);
  const auto conns = split_connections(decode_pcap(world.take_trace()));
  ASSERT_EQ(conns.size(), 1u);
  const auto res = detect_capture_voids(conns[0], compute_profile(conns[0]));
  EXPECT_FALSE(res.detected);
  EXPECT_EQ(res.missing_bytes, 0u);
}

TEST(CaptureVoids, SnifferDropsAreDetected) {
  SimWorld world(102, /*capture_drop=*/0.05);
  const auto s = world.add_session(SessionSpec{}, test::table_messages(5000, 2));
  world.start_session(s, 0);
  world.run_until(120 * kMicrosPerSec);
  EXPECT_GT(world.tap().capture_drops(), 0u);
  const auto conns = split_connections(decode_pcap(world.take_trace()));
  ASSERT_EQ(conns.size(), 1u);
  const auto profile = compute_profile(conns[0]);
  const auto res = detect_capture_voids(conns[0], profile);
  EXPECT_TRUE(res.detected);
  EXPECT_GT(res.missing_bytes, 0u);
  EXPECT_FALSE(res.voids.empty());
}

TEST(CaptureVoids, NetworkLossIsNotAVoid) {
  // Packets lost in the NETWORK are never acknowledged, so they must not be
  // mistaken for capture drops.
  SimWorld world(103);
  SessionSpec spec;
  spec.up_fwd.random_loss = 0.05;
  const auto s = world.add_session(spec, test::table_messages(12'000, 3));
  world.start_session(s, 0);
  world.run_until(300 * kMicrosPerSec);
  ASSERT_GE(world.sender_endpoint(s).retransmit_count(), 1u);
  const auto conns = split_connections(decode_pcap(world.take_trace()));
  const auto res = detect_capture_voids(conns[0], compute_profile(conns[0]));
  EXPECT_FALSE(res.detected) << res.missing_bytes;
}

TEST(CaptureVoids, ExcludeFromSubtractsVoids) {
  CaptureVoidResult res;
  res.voids = {{10, 20}, {40, 50}};
  const RangeSet remaining = res.exclude_from({0, 100});
  EXPECT_EQ(remaining, RangeSet({{0, 10}, {20, 40}, {50, 100}}));
  EXPECT_EQ(remaining.size(), 80);
}

TEST(CaptureVoids, EmptyConnection) {
  Connection conn;
  const auto res = detect_capture_voids(conn, ConnectionProfile{});
  EXPECT_FALSE(res.detected);
}

}  // namespace
}  // namespace tdat
