// Roll-up and regression-diff tests over hand-built archives with known
// answers, plus the AggregateSink end to end: a simulated capture analyzed
// through the report model must project into an archive whose peer,
// collector, AS, and factor fields match the analysis.
#include <gtest/gtest.h>

#include <string>

#include "agg/archive.hpp"
#include "agg/rollup.hpp"
#include "agg/sink.hpp"
#include "agg/sketch.hpp"
#include "core/report.hpp"
#include "sim_scenarios.hpp"

namespace tdat::agg {
namespace {

ConnectionRecord transfer_record(std::uint32_t peer, std::int64_t duration,
                                 std::size_t dominant) {
  ConnectionRecord c;
  c.collector_ip = 0x0a090909;
  c.peer_ip = peer;
  c.peer_as = 64500;
  c.key.ip_a = peer;
  c.key.port_a = 20000;
  c.key.ip_b = c.collector_ip;
  c.key.port_b = 179;
  c.transfer_begin = 0;
  c.transfer_end = duration;
  c.updates = 100;
  c.prefixes = 250;
  c.factor_delay_us[dominant] = duration / 2;
  c.factor_delay_us[(dominant + 1) % kFactorCount] = duration / 4;
  return c;
}

Archive archive_of(std::vector<ConnectionRecord> records) {
  Archive a;
  for (ConnectionRecord& c : records) {
    if (c.has_transfer()) {
      SketchGroup g;
      g.key = {c.run_id, c.collector_ip, c.peer_ip, c.peer_as};
      sketch_observe(g.transfer_us, c.transfer_us());
      for (std::size_t f = 0; f < kFactorCount; ++f) {
        sketch_observe(g.factor_delay_us[f], c.factor_delay_us[f]);
      }
      // One record per sketch key in these fixtures keeps the helper simple.
      a.sketches.push_back(std::move(g));
    }
    a.connections.push_back(std::move(c));
  }
  a.normalize();
  return a;
}

TEST(RollupTest, DominanceSharesAndPercentilesPerPeer) {
  // Peer .1: two transfers dominated by factor 1; peer .2: one transfer
  // dominated by factor 4, plus a quarantined connection.
  ConnectionRecord quarantined;
  quarantined.collector_ip = 0x0a090909;
  quarantined.peer_ip = 0x0a000102;
  quarantined.key.ip_a = quarantined.peer_ip;
  quarantined.key.ip_b = quarantined.collector_ip;
  quarantined.quarantine_reason = "analysis failed";
  const Archive a = archive_of({
      transfer_record(0x0a000101, 10'000'000, 1),
      transfer_record(0x0a000101, 30'000'000, 1),
      transfer_record(0x0a000102, 80'000'000, 4),
      quarantined,
  });
  const RollupReport rep = build_rollup(a, RollupBy::kPeer);
  EXPECT_EQ(rep.fleet.connections, 4u);
  EXPECT_EQ(rep.fleet.transfers, 3u);
  EXPECT_EQ(rep.fleet.quarantined, 1u);
  ASSERT_EQ(rep.rows.size(), 2u);
  const RollupRow& p1 = rep.rows[0];
  const RollupRow& p2 = rep.rows[1];
  EXPECT_EQ(p1.label, "10.0.1.1");
  EXPECT_EQ(p2.label, "10.0.1.2");
  EXPECT_EQ(p1.transfers, 2u);
  EXPECT_EQ(p1.dominant_factor(), 1u);
  EXPECT_DOUBLE_EQ(p1.dominance_share(1), 1.0);
  EXPECT_EQ(p2.quarantined, 1u);
  EXPECT_EQ(p2.dominant_factor(), 4u);
  // Percentiles come from the pow2 sketch: estimates are bucket upper
  // bounds clamped to the observed max.
  EXPECT_LE(p1.transfer_us.quantile(0.5), 30'000'000);
  EXPECT_GE(p1.transfer_us.quantile(0.5), 10'000'000);
  EXPECT_EQ(p2.transfer_us.quantile(0.99), 80'000'000);
  EXPECT_EQ(rep.fleet.transfer_us.count, 3u);
  // Factor delay shares use the summed transfer window as the base.
  EXPECT_GT(rep.fleet.delay_share(1), 0.0);
  EXPECT_LT(rep.fleet.delay_share(1), 1.0);
}

TEST(RollupTest, TextAndJsonRendersContainTheAnswer) {
  const Archive a = archive_of({transfer_record(0x0a000101, 20'000'000, 2)});
  const RollupReport rep = build_rollup(a, RollupBy::kPeer);
  const std::string text = render_rollup_text(rep);
  EXPECT_NE(text.find("10.0.1.1"), std::string::npos);
  EXPECT_NE(text.find("dominant: Sender local packet loss"),
            std::string::npos);
  const std::string json = render_rollup_json(rep);
  EXPECT_NE(json.find("\"by\": \"peer\""), std::string::npos);
  EXPECT_NE(json.find("\"dominant_factor\": \"Sender local packet loss\""),
            std::string::npos);
  EXPECT_NE(json.find("\"p90_us\""), std::string::npos);
}

TEST(RollupDiffTest, FlagsRegressionsNewAndDisappearedGroups) {
  const Archive baseline = archive_of({
      transfer_record(0x0a000101, 10'000'000, 1),
      transfer_record(0x0a000103, 10'000'000, 1),
  });
  const Archive current = archive_of({
      transfer_record(0x0a000101, 40'000'000, 4),  // 4x slower, new dominant
      transfer_record(0x0a000102, 5'000'000, 1),   // new group
  });
  const RollupDiff diff = diff_rollups(baseline, current, DiffOptions{});
  ASSERT_EQ(diff.deltas.size(), 3u);
  EXPECT_EQ(diff.regressed_count(), 1u);
  const RollupDelta& d1 = diff.deltas[0];  // sorted by label
  EXPECT_EQ(d1.label, "10.0.1.1");
  EXPECT_TRUE(d1.regressed);
  EXPECT_TRUE(d1.dominant_changed);
  EXPECT_FALSE(diff.deltas[1].in_baseline);  // .2 is new
  EXPECT_FALSE(diff.deltas[2].in_current);   // .3 disappeared
  EXPECT_FALSE(diff.deltas[1].regressed);
  const std::string text = render_diff_text(diff);
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("new group"), std::string::npos);
  EXPECT_NE(text.find("disappeared"), std::string::npos);
  const std::string json = render_diff_json(diff);
  EXPECT_NE(json.find("\"regressed\": 1"), std::string::npos);
}

TEST(RollupDiffTest, SmallP90GrowthIsNotARegression) {
  const Archive baseline =
      archive_of({transfer_record(0x0a000101, 10'000'000, 1)});
  const Archive current =
      archive_of({transfer_record(0x0a000101, 11'000'000, 1)});
  // Both land in the same pow2 bucket and under the 1.25x threshold.
  const RollupDiff diff = diff_rollups(baseline, current, DiffOptions{});
  EXPECT_EQ(diff.regressed_count(), 0u);
}

TEST(AggregateSinkTest, ProjectsSimulatedAnalysisIntoArchive) {
  const test::ScenarioRun run = test::run_single(SessionSpec{}, 4000, 99);
  const TraceAnalysis ta = analyze_trace(run.trace, AnalyzerOptions{});
  ASSERT_EQ(ta.results.size(), 1u);
  const ReportModel model = build_report_model(ta);
  const Archive archive = build_archive(model, "shard-7");
  ASSERT_EQ(archive.connections.size(), 1u);
  const ConnectionRecord& c = archive.connections[0];
  EXPECT_EQ(c.run_id, "shard-7");
  EXPECT_FALSE(c.quarantined());
  // The simulated sender is the peer, the receiver the collector; the AS
  // comes from the sender's OPEN.
  const ConnectionAnalysis& a = ta.results[0];
  const bool a_sends = a.profile.data_dir == Dir::kAToB;
  EXPECT_EQ(c.peer_ip, a_sends ? c.key.ip_a : c.key.ip_b);
  EXPECT_NE(c.peer_as, 0u);
  EXPECT_TRUE(c.has_transfer());
  EXPECT_EQ(c.transfer_begin, a.transfer.begin);
  EXPECT_EQ(c.transfer_end, a.transfer.end);
  EXPECT_EQ(c.updates, a.mct.update_count);
  EXPECT_EQ(c.prefixes, a.mct.prefix_count);
  for (std::size_t f = 0; f < kFactorCount; ++f) {
    EXPECT_EQ(c.factor_delay_us[f], a.report.factor_delay[f]) << f;
  }
  ASSERT_EQ(archive.sketches.size(), 1u);
  EXPECT_EQ(archive.sketches[0].transfer_us.count, 1u);
  EXPECT_EQ(archive.sketches[0].transfer_us.sum, c.transfer_us());
  // The same model renders through the registered kAgg sink byte for byte.
  register_aggregate_sink();
  ReportRenderOptions opts;
  opts.run_id = "shard-7";
  EXPECT_EQ(render_report(model, ReportFormat::kAgg, opts),
            archive.serialize());
}

TEST(RollupTest, RunDimensionSeparatesRunIds) {
  ConnectionRecord a = transfer_record(0x0a000101, 10'000'000, 1);
  a.run_id = "week-1";
  ConnectionRecord b = transfer_record(0x0a000101, 20'000'000, 1);
  b.run_id = "week-2";
  const RollupReport rep =
      build_rollup(archive_of({a, b}), RollupBy::kRun);
  ASSERT_EQ(rep.rows.size(), 2u);
  EXPECT_EQ(rep.rows[0].label, "week-1");
  EXPECT_EQ(rep.rows[1].label, "week-2");
  EXPECT_EQ(rep.rows[0].transfers, 1u);
}

}  // namespace
}  // namespace tdat::agg
