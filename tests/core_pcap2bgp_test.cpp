#include "core/pcap2bgp.hpp"

#include <gtest/gtest.h>

#include "sim_scenarios.hpp"

namespace tdat {
namespace {

TEST(Pcap2Bgp, ExtractsAllSentMessages) {
  SimWorld world(51);
  const auto table = test::table_messages(2000, 52);
  const auto s = world.add_session(SessionSpec{}, table);
  world.start_session(s, 0);
  world.run_until(300 * kMicrosPerSec);
  ASSERT_TRUE(world.sender(s).finished_sending());

  const auto trace = world.take_trace();
  const auto conns = split_connections(decode_pcap(trace));
  ASSERT_EQ(conns.size(), 1u);
  const auto profile = compute_profile(conns[0]);
  const auto result = extract_bgp_messages(conns[0], profile.data_dir);

  EXPECT_EQ(result.skipped_bytes, 0u);
  EXPECT_EQ(result.parse_errors, 0u);
  // OPEN + initial KEEPALIVE + the table + periodic keepalives.
  std::size_t updates = 0;
  std::size_t prefixes = 0;
  for (const auto& tm : result.messages) {
    if (const BgpUpdate* upd = tm.msg.as_update()) {
      ++updates;
      prefixes += upd->nlri.size();
    }
  }
  EXPECT_EQ(updates, table.size());
  EXPECT_EQ(prefixes, 2000u);
  EXPECT_EQ(result.messages[0].msg.type(), BgpType::kOpen);
  // Timestamps non-decreasing (delivery order).
  for (std::size_t i = 1; i < result.messages.size(); ++i) {
    EXPECT_LE(result.messages[i - 1].ts, result.messages[i].ts);
  }
}

TEST(Pcap2Bgp, SurvivesLossAndRetransmissions) {
  SimWorld world(53);
  SessionSpec spec;
  spec.up_fwd.random_loss = 0.05;
  const auto table = test::table_messages(3000, 54);
  const auto s = world.add_session(spec, table);
  world.start_session(s, 0);
  world.run_until(600 * kMicrosPerSec);
  ASSERT_TRUE(world.sender(s).finished_sending());
  ASSERT_GE(world.sender_endpoint(s).retransmit_count(), 1u);

  const auto conns = split_connections(decode_pcap(world.take_trace()));
  ASSERT_EQ(conns.size(), 1u);
  const auto profile = compute_profile(conns[0]);
  const auto result = extract_bgp_messages(conns[0], profile.data_dir);
  EXPECT_EQ(result.parse_errors, 0u);
  std::size_t prefixes = 0;
  for (const auto& tm : result.messages) {
    if (const BgpUpdate* upd = tm.msg.as_update()) prefixes += upd->nlri.size();
  }
  EXPECT_EQ(prefixes, 3000u);  // reassembly healed every loss
}

TEST(Pcap2Bgp, MrtRecordsCarryPeerIdentity) {
  SimWorld world(55);
  SessionSpec spec;
  spec.bgp.my_as = 64999;
  const auto s = world.add_session(spec, test::table_messages(200, 56));
  world.start_session(s, 0);
  world.run_until(120 * kMicrosPerSec);

  const auto conns = split_connections(decode_pcap(world.take_trace()));
  ASSERT_EQ(conns.size(), 1u);
  const auto profile = compute_profile(conns[0]);
  const auto result = extract_bgp_messages(conns[0], profile.data_dir);
  const auto records = to_mrt_records(conns[0], profile.data_dir, result.messages);
  ASSERT_EQ(records.size(), result.messages.size());
  EXPECT_EQ(records[0].peer_as, 64999);

  // Full offline round trip: write MRT, read it back, reparse messages.
  const std::string path = ::testing::TempDir() + "/tdat_p2b.mrt";
  ASSERT_TRUE(write_mrt_file(path, records));
  const auto loaded = read_mrt_file(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), records.size());
  std::size_t prefixes = 0;
  for (const auto& rec : loaded.value()) {
    const auto msg = rec.parse();
    ASSERT_TRUE(msg.ok());
    if (const BgpUpdate* upd = msg.value().as_update()) prefixes += upd->nlri.size();
  }
  EXPECT_EQ(prefixes, 200u);
}

TEST(Pcap2Bgp, EmptyConnection) {
  Connection conn;
  const auto result = extract_bgp_messages(conn, Dir::kAToB);
  EXPECT_TRUE(result.messages.empty());
}

}  // namespace
}  // namespace tdat
