// The Quagga path of §II-A: table transfers located from the collector's
// MRT archive rather than from pcap2bgp reconstruction. Both paths must
// agree (within MRT's one-second timestamp granularity).
#include "core/archive.hpp"

#include <gtest/gtest.h>

#include "core/pcap2bgp.hpp"
#include "sim_scenarios.hpp"

namespace tdat {
namespace {

struct ArchiveRun {
  PcapFile trace;
  std::vector<MrtRecord> archive;
  std::uint32_t peer_ip = 0;
};

// Run a session and keep both the sniffer capture and the collector's own
// archive, like an ISP_A-2 deployment.
ArchiveRun run_quagga_style(SessionSpec spec, std::size_t prefixes,
                            std::uint64_t seed) {
  SimWorld world(seed);
  spec.bgp.my_as = 64123;
  const auto s = world.add_session(spec, test::table_messages(prefixes, seed ^ 3));
  world.start_session(s, 0);
  world.run_until(600 * kMicrosPerSec);
  EXPECT_TRUE(world.sender(s).finished_sending());

  ArchiveRun out;
  out.peer_ip = 0x0a000101;  // first session's default address
  for (const TimedBgpMessage& tm : world.receiver(s).archive()) {
    MrtRecord rec;
    rec.ts = tm.ts;
    rec.peer_as = 64123;
    rec.local_as = 65000;
    rec.peer_ip = out.peer_ip;
    rec.local_ip = 0x0a090909;
    rec.bgp_message = serialize_message(tm.msg);
    out.archive.push_back(std::move(rec));
  }
  out.trace = world.take_trace();
  return out;
}

TEST(ArchiveAnalysis, MatchesPcap2BgpWithinASecond) {
  const ArchiveRun run = run_quagga_style(test::slow_collector(), 3000, 81);
  const auto conns = split_connections(decode_pcap(run.trace));
  ASSERT_EQ(conns.size(), 1u);

  const auto via_pcap = analyze_connection(conns[0], AnalyzerOptions{});
  const auto via_archive =
      analyze_connection_with_archive(conns[0], run.archive, AnalyzerOptions{});

  ASSERT_FALSE(via_pcap.transfer.empty());
  ASSERT_FALSE(via_archive.transfer.empty());
  EXPECT_EQ(via_archive.mct.prefix_count, via_pcap.mct.prefix_count);
  EXPECT_EQ(via_archive.mct.update_count, via_pcap.mct.update_count);
  // MRT keeps second-granular stamps: windows agree within ~2 s.
  EXPECT_NEAR(to_seconds(via_archive.transfer.end),
              to_seconds(via_pcap.transfer.end), 2.0);
  // And the classification agrees on the dominant group.
  EXPECT_EQ(via_archive.report.major(FactorGroup::kReceiver),
            via_pcap.report.major(FactorGroup::kReceiver));
}

TEST(ArchiveAnalysis, MrtRoundTripPreservesTheResult) {
  const ArchiveRun run = run_quagga_style(SessionSpec{}, 2000, 82);
  const auto image = serialize_mrt(run.archive);
  const auto reloaded = parse_mrt(image);
  ASSERT_TRUE(reloaded.ok());
  const auto conns = split_connections(decode_pcap(run.trace));
  const auto direct =
      analyze_connection_with_archive(conns[0], run.archive, AnalyzerOptions{});
  const auto via_disk = analyze_connection_with_archive(conns[0], reloaded.value(),
                                                        AnalyzerOptions{});
  // Disk round trip truncates timestamps to seconds; prefix counts and
  // second-level windows survive.
  EXPECT_EQ(direct.mct.prefix_count, via_disk.mct.prefix_count);
  EXPECT_NEAR(to_seconds(direct.transfer.end), to_seconds(via_disk.transfer.end),
              1.5);
}

TEST(ArchiveAnalysis, FiltersByPeer) {
  const ArchiveRun run = run_quagga_style(SessionSpec{}, 1000, 83);
  EXPECT_FALSE(archive_messages_for(run.archive, run.peer_ip).empty());
  EXPECT_TRUE(archive_messages_for(run.archive, 0x01020304).empty());
}

TEST(ArchiveAnalysis, EmptyArchiveMeansNoTransfer) {
  const ArchiveRun run = run_quagga_style(SessionSpec{}, 500, 84);
  const auto conns = split_connections(decode_pcap(run.trace));
  const auto a = analyze_connection_with_archive(conns[0], {}, AnalyzerOptions{});
  EXPECT_TRUE(a.transfer.empty());
  EXPECT_EQ(a.mct.update_count, 0u);
}

}  // namespace
}  // namespace tdat
