// The two guarantees behind the per-worker AnalysisScratch:
//  - rebuilding into a reused ConnectionAnalysis with a warm scratch yields
//    byte-identical output to a fresh analysis, across connections of
//    different shapes interleaved through the same scratch (reset bugs in
//    any pooled buffer would surface here);
//  - once warm, analyze_connection performs zero heap allocations for a
//    session whose retained output is allocation-free (OPEN + KEEPALIVEs
//    only), verified through the global operator-new counting hook.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/analyzer.hpp"
#include "core/export.hpp"
#include "helpers.hpp"
#include "pcap/pcap_file.hpp"
#include "sim_scenarios.hpp"
#include "tcp/connection.hpp"
#include "util/alloc_hook.hpp"
#include "util/assert.hpp"
#include "util/metrics.hpp"

namespace tdat {
namespace {

std::vector<Connection> sim_connections(std::size_t sessions,
                                        std::uint64_t seed) {
  SimWorld world(seed);
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < sessions; ++i) {
    SessionSpec spec;
    switch (i % 4) {
      case 0: break;  // baseline
      case 1: spec = test::timer_paced_sender(); break;
      case 2: spec = test::lossy_upstream(0.01); break;
      case 3: spec = test::small_window_path(); break;
    }
    ids.push_back(world.add_session(
        spec, test::table_messages(600, seed ^ (0x100 + i))));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    world.start_session(ids[i], static_cast<Micros>(i) * 10 * kMicrosPerMilli);
  }
  world.run_until(900 * kMicrosPerSec);
  return split_connections(decode_pcap(world.take_trace()));
}

TEST(AnalysisScratch, ReusedScratchAndOutputMatchFreshAnalysis) {
  const auto conns = sim_connections(4, 2024);
  ASSERT_GE(conns.size(), 2u);
  AnalyzerOptions opts;
  AnalysisScratch scratch;
  ConnectionAnalysis reused;
  // Two rounds, alternating connection shapes through the SAME scratch and
  // output object: any state leaking across rebuilds breaks identity.
  for (int round = 0; round < 2; ++round) {
    for (std::size_t c = 0; c < conns.size(); ++c) {
      SCOPED_TRACE("round " + std::to_string(round) + " conn " +
                   std::to_string(c));
      const ConnectionAnalysis fresh = analyze_connection(conns[c], opts);
      analyze_connection(conns[c], opts, scratch, reused);

      EXPECT_EQ(fresh.key, reused.key);
      EXPECT_EQ(fresh.transfer.begin, reused.transfer.begin);
      EXPECT_EQ(fresh.transfer.end, reused.transfer.end);
      EXPECT_EQ(fresh.mct.end, reused.mct.end);
      EXPECT_EQ(fresh.mct.update_count, reused.mct.update_count);
      EXPECT_EQ(fresh.mct.prefix_count, reused.mct.prefix_count);
      ASSERT_EQ(fresh.messages.size(), reused.messages.size());
      for (std::size_t m = 0; m < fresh.messages.size(); ++m) {
        EXPECT_EQ(fresh.messages[m].ts, reused.messages[m].ts);
        EXPECT_EQ(fresh.messages[m].end_offset, reused.messages[m].end_offset);
      }
      EXPECT_EQ(fresh.series().names(), reused.series().names());
      EXPECT_EQ(registry_to_json(fresh.series()),
                registry_to_json(reused.series()));
      EXPECT_EQ(analysis_to_json(fresh), analysis_to_json(reused));
    }
  }
}

// --- zero-allocation steady state -----------------------------------------

std::vector<std::uint8_t> bgp_keepalive_bytes() {
  std::vector<std::uint8_t> b(19, 0xff);
  b[16] = 0;
  b[17] = 19;
  b[18] = 4;  // KEEPALIVE
  return b;
}

std::vector<std::uint8_t> bgp_open_bytes() {
  std::vector<std::uint8_t> b(16, 0xff);
  b.push_back(0);
  b.push_back(29);  // length: 19-byte header + 10-byte OPEN body
  b.push_back(1);   // OPEN
  b.push_back(4);   // version
  b.push_back(0xfd);
  b.push_back(0xe8);  // my AS 65000
  b.push_back(0);
  b.push_back(180);  // hold time
  b.push_back(10);
  b.push_back(0);
  b.push_back(1);
  b.push_back(1);  // BGP identifier
  b.push_back(0);  // no optional parameters
  return b;
}

// A session whose retained output allocates nothing: OPEN + KEEPALIVEs have
// no heap-owning message bodies, so with a warm scratch the whole analysis
// must run allocation-free.
Connection keepalive_session() {
  test::PacketFactory f;
  std::vector<DecodedPacket> packets = f.handshake(0, 2000);
  Micros t = 5000;
  std::int64_t off = 0;
  auto send = [&](const std::vector<std::uint8_t>& msg) {
    TcpSegmentSpec spec;
    spec.src_ip = test::kSenderIp;
    spec.dst_ip = test::kReceiverIp;
    spec.src_port = test::kSenderPort;
    spec.dst_port = test::kReceiverPort;
    spec.seq = f.sender_isn + 1 + static_cast<std::uint32_t>(off);
    spec.ack = f.receiver_isn + 1;
    spec.flags = {.ack = true, .psh = true};
    spec.window = 0xffff;
    spec.payload = msg;
    packets.push_back(test::make_packet(t, f.next_index++, spec));
    off += static_cast<std::int64_t>(msg.size());
    t += 2000;
    packets.push_back(f.ack(t, off));
    t += 3000;
  };
  send(bgp_open_bytes());
  const auto ka = bgp_keepalive_bytes();
  for (int i = 0; i < 8; ++i) send(ka);
  auto conns = split_connections(packets);
  TDAT_EXPECTS(conns.size() == 1);
  return std::move(conns.front());
}

TEST(AnalysisScratch, SteadyStateAnalysisIsAllocationFree) {
  if (!alloc_hook_active()) {
    GTEST_SKIP() << "allocation counting hook compiled out (sanitizer build)";
  }
  const Connection conn = keepalive_session();
  AnalyzerOptions opts;
  AnalysisScratch scratch;
  ConnectionAnalysis out;
  // First run sizes every pooled buffer; second settles any growth that
  // depended on first-run content (e.g. registry slot revival order).
  analyze_connection(conn, opts, scratch, out);
  analyze_connection(conn, opts, scratch, out);

  const std::uint64_t count0 = thread_alloc_count();
  const std::uint64_t bytes0 = thread_alloc_bytes();
  analyze_connection(conn, opts, scratch, out);
  const std::uint64_t count = thread_alloc_count() - count0;
  const std::uint64_t bytes = thread_alloc_bytes() - bytes0;
  EXPECT_EQ(count, 0u) << "steady-state analyze_connection made " << count
                       << " heap allocations (" << bytes << " bytes)";
}

// The per-run allocation histogram captures the same invariant through the
// metrics pipeline (visible in PipelineStats / BENCH output).
TEST(AnalysisScratch, AllocHistogramObservesWarmRuns) {
  if (!alloc_hook_active()) {
    GTEST_SKIP() << "allocation counting hook compiled out (sanitizer build)";
  }
  const Connection conn = keepalive_session();
  AnalyzerOptions opts;
  AnalysisScratch scratch;
  ConnectionAnalysis out;
  analyze_connection(conn, opts, scratch, out);
  analyze_connection(conn, opts, scratch, out);
  const HistogramSnapshot before =
      metrics().histogram("analyze.allocs_per_conn").snapshot();
  analyze_connection(conn, opts, scratch, out);
  const HistogramSnapshot delta =
      metrics().histogram("analyze.allocs_per_conn").snapshot().since(before);
  ASSERT_EQ(delta.count, 1u);
  // since() keeps min/max from the cumulative snapshot, so assert on the
  // exact per-run sum: one warm run observed, zero allocations recorded.
  EXPECT_EQ(delta.sum, 0);
}

}  // namespace
}  // namespace tdat
