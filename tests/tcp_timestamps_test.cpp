// RFC 1323 timestamps: codec round trip and the timestamp-echo RTT
// estimation (Veal et al. [31], the passive-RTT method the paper cites).
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "tcp/profile.hpp"

namespace tdat {
namespace {

DecodedPacket ts_packet(Micros ts, std::size_t index, bool from_sender,
                        std::uint32_t seq, std::size_t len,
                        std::uint32_t ts_val, std::uint32_t ts_ecr) {
  static std::vector<std::uint8_t> payload;
  payload.assign(len, 0x42);
  TcpSegmentSpec spec;
  spec.src_ip = from_sender ? test::kSenderIp : test::kReceiverIp;
  spec.dst_ip = from_sender ? test::kReceiverIp : test::kSenderIp;
  spec.src_port = from_sender ? test::kSenderPort : test::kReceiverPort;
  spec.dst_port = from_sender ? test::kReceiverPort : test::kSenderPort;
  spec.seq = seq;
  spec.ack = 1;
  spec.flags = {.ack = true, .psh = len > 0};
  spec.window = 0xffff;
  spec.ts_val = ts_val;
  spec.ts_ecr = ts_ecr;
  spec.payload = payload;
  return test::make_packet(ts, index, spec);
}

TEST(Timestamps, CodecRoundTrip) {
  const auto pkt = ts_packet(0, 0, true, 1000, 100, 0xdeadbeef, 0x1234);
  ASSERT_TRUE(pkt.tcp.ts_val.has_value());
  ASSERT_TRUE(pkt.tcp.ts_ecr.has_value());
  EXPECT_EQ(*pkt.tcp.ts_val, 0xdeadbeefu);
  EXPECT_EQ(*pkt.tcp.ts_ecr, 0x1234u);
  EXPECT_EQ(pkt.payload_len, 100u);  // option bytes don't leak into payload
}

TEST(Timestamps, AbsentWhenNotSet) {
  test::PacketFactory f;
  const auto pkt = f.data(0, 0, 100);
  EXPECT_FALSE(pkt.tcp.ts_val.has_value());
  EXPECT_FALSE(pkt.tcp.ts_ecr.has_value());
}

TEST(Timestamps, EchoRttEstimation) {
  // No handshake captured: only the TS echo can give the d2 loop.
  // Receiver ACK stamps TSval=100 at t=0; the sender's next data echoes it
  // at t=22ms -> rtt_timestamp_sample = 22ms.
  std::vector<DecodedPacket> trace;
  trace.push_back(ts_packet(0, 0, true, 1000, 500, 50, 0));      // data
  trace.push_back(ts_packet(5'000, 1, false, 9000, 0, 100, 50)); // ACK, TSval 100
  trace.push_back(ts_packet(27'000, 2, true, 1500, 500, 51, 100));  // echoes 100
  trace.push_back(ts_packet(30'000, 3, false, 9000, 0, 101, 51));
  trace.push_back(ts_packet(60'000, 4, true, 2000, 500, 52, 101));  // echoes 101
  const auto conns = split_connections(trace);
  ASSERT_EQ(conns.size(), 1u);
  const ConnectionProfile p = compute_profile(conns[0]);
  ASSERT_TRUE(p.rtt_timestamp_sample.has_value());
  // min(27ms - 5ms, 60ms - 30ms) = 22ms.
  EXPECT_EQ(*p.rtt_timestamp_sample, 22'000);
  EXPECT_FALSE(p.rtt_handshake.has_value());
  EXPECT_EQ(p.rtt(), 22'000);  // preferred over the d1-ish ack sample
}

TEST(Timestamps, UnechoedValuesYieldNoSample) {
  std::vector<DecodedPacket> trace;
  trace.push_back(ts_packet(0, 0, true, 1000, 500, 50, 0));
  trace.push_back(ts_packet(5'000, 1, false, 9000, 0, 100, 50));
  trace.push_back(ts_packet(27'000, 2, true, 1500, 500, 51, 777));  // echoes junk
  const auto conns = split_connections(trace);
  const ConnectionProfile p = compute_profile(conns[0]);
  EXPECT_FALSE(p.rtt_timestamp_sample.has_value());
}

TEST(Timestamps, HandshakeStillPreferred) {
  test::PacketFactory f;
  std::vector<DecodedPacket> trace = f.handshake(0, 10'000);
  std::size_t idx = trace.size();
  trace.push_back(ts_packet(20'000, idx++, false, 5001, 0, 100, 0));
  trace.push_back(ts_packet(25'000, idx++, true, 1001, 500, 1, 100));
  const auto conns = split_connections(trace);
  const ConnectionProfile p = compute_profile(conns[0]);
  ASSERT_TRUE(p.rtt_handshake.has_value());
  EXPECT_EQ(p.rtt(), *p.rtt_handshake);
}

}  // namespace
}  // namespace tdat
