#include "core/ack_shift.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace tdat {
namespace {

using test::PacketFactory;

Connection conn_of(std::vector<DecodedPacket> pkts) {
  auto conns = split_connections(pkts);
  EXPECT_EQ(conns.size(), 1u);
  return conns[0];
}

TEST(AckShift, NearSenderIsIdentity) {
  PacketFactory f;
  std::vector<DecodedPacket> trace = f.handshake(0, 10'000);
  trace.push_back(f.data(20'000, 0, 1000));
  trace.push_back(f.ack(21'000, 1000));
  const Connection conn = conn_of(trace);
  const auto profile = compute_profile(conn);
  AnalyzerOptions opts;
  opts.location = SnifferLocation::kNearSender;
  const auto shifted = shift_acks(conn, profile, opts);
  for (std::size_t i = 0; i < conn.packets.size(); ++i) {
    EXPECT_EQ(shifted.ts[i], conn.packets[i].ts);
  }
  EXPECT_EQ(shifted.flights_shifted, 0u);
}

TEST(AckShift, WindowBoundFlightShiftsToNextData) {
  // Receiver-side view of a window-bound flow with RTT 10 ms: data burst,
  // ACK right behind it, next burst a full RTT later. The ACK must shift
  // forward to just before the burst it liberated.
  PacketFactory f;
  std::vector<DecodedPacket> trace = f.handshake(0, 10'000);
  const Micros t0 = 20'000;
  trace.push_back(f.data(t0, 0, 1000));
  trace.push_back(f.data(t0 + 100, 1000, 1000));
  trace.push_back(f.ack(t0 + 300, 2000));            // d1 tiny: near receiver
  trace.push_back(f.data(t0 + 10'300, 2000, 1000));  // next burst 1 RTT later
  trace.push_back(f.data(t0 + 10'400, 3000, 1000));
  trace.push_back(f.ack(t0 + 10'600, 4000));
  trace.push_back(f.data(t0 + 20'600, 4000, 1000));
  const Connection conn = conn_of(trace);
  const auto profile = compute_profile(conn);
  ASSERT_EQ(profile.rtt(), 10'000);

  AnalyzerOptions opts;  // default near-receiver
  const auto shifted = shift_acks(conn, profile, opts);
  EXPECT_GE(shifted.flights_shifted, 2u);
  // First ACK (index 5 in trace) shifted by d2 = 10'000.
  EXPECT_EQ(shifted.ts[5], t0 + 300 + 10'000);
  // Data packets never move.
  EXPECT_EQ(shifted.ts[3], t0);
  EXPECT_EQ(shifted.ts[4], t0 + 100);
}

TEST(AckShift, AppLimitedGapSurvivesShift) {
  // The sender idles 300 ms (app-limited) after the ACK: no d2 estimate
  // exists within the 2*RTT cap, so the ACK flight must NOT be shifted into
  // the gap.
  PacketFactory f;
  std::vector<DecodedPacket> trace = f.handshake(0, 10'000);
  const Micros t0 = 20'000;
  trace.push_back(f.data(t0, 0, 1000));
  trace.push_back(f.ack(t0 + 300, 1000));
  trace.push_back(f.data(t0 + 300'000, 1000, 1000));  // 300 ms later
  trace.push_back(f.ack(t0 + 300'300, 2000));
  const Connection conn = conn_of(trace);
  const auto profile = compute_profile(conn);

  const auto shifted = shift_acks(conn, profile, AnalyzerOptions{});
  // First ACK keeps its capture time (no valid estimate in its flight).
  EXPECT_EQ(shifted.ts[4], t0 + 300);
}

TEST(AckShift, FlightMovesAsOneUnit) {
  // Three back-to-back ACKs; only the first has a tight next-data estimate.
  // The whole flight shifts by that same (minimum) d2, preserving spacing.
  PacketFactory f;
  std::vector<DecodedPacket> trace = f.handshake(0, 10'000);
  const Micros t0 = 20'000;
  for (int i = 0; i < 6; ++i) {
    trace.push_back(f.data(t0 + i * 50, i * 1000, 1000));
  }
  trace.push_back(f.ack(t0 + 400, 2000));
  trace.push_back(f.ack(t0 + 450, 4000));
  trace.push_back(f.ack(t0 + 500, 6000));
  trace.push_back(f.data(t0 + 5'400, 6000, 1000));  // liberated by first ACK
  trace.push_back(f.data(t0 + 15'000, 7000, 1000));
  const Connection conn = conn_of(trace);
  const auto profile = compute_profile(conn);

  const auto shifted = shift_acks(conn, profile, AnalyzerOptions{});
  // All three ACKs estimate d2 against the same next data packet
  // (t0+5'400); the minimum comes from the last ACK: 5'400 - 500 = 4'900.
  const Micros d2 = 4'900;
  EXPECT_EQ(shifted.ts[9], t0 + 400 + d2);
  EXPECT_EQ(shifted.ts[10], t0 + 450 + d2);
  EXPECT_EQ(shifted.ts[11], t0 + 500 + d2);
  // Intra-flight spacing preserved.
  EXPECT_EQ(shifted.ts[10] - shifted.ts[9], 50);
}

}  // namespace
}  // namespace tdat
