#include "bgp/mct.hpp"

#include <gtest/gtest.h>

#include "bgp/table_gen.hpp"

namespace tdat {
namespace {

TimedBgpMessage update_at(Micros ts, std::uint32_t prefix_base, int count) {
  BgpUpdate upd;
  upd.attrs.as_path.push_back({AsPathSegment::kAsSequence, {100}});
  upd.attrs.next_hop = 1;
  for (int i = 0; i < count; ++i) {
    upd.nlri.push_back({prefix_base + (static_cast<std::uint32_t>(i) << 8), 24});
  }
  return {ts, BgpMessage{upd}};
}

TimedBgpMessage keepalive_at(Micros ts) { return {ts, BgpMessage{BgpKeepAlive{}}}; }

TEST(Mct, EmptyStream) {
  const auto res = mct_transfer_end({}, 100);
  EXPECT_EQ(res.end, 100);
  EXPECT_EQ(res.update_count, 0u);
}

TEST(Mct, SimpleTransferEndsAtLastUpdate) {
  std::vector<TimedBgpMessage> msgs;
  msgs.push_back(keepalive_at(0));
  for (int i = 0; i < 10; ++i) {
    msgs.push_back(update_at(1000 + i * 1000, 0x0a000000 + (static_cast<std::uint32_t>(i) << 16), 3));
  }
  const auto res = mct_transfer_end(msgs, 0);
  EXPECT_EQ(res.end, 10'000);
  EXPECT_EQ(res.update_count, 10u);
  EXPECT_EQ(res.prefix_count, 30u);
  EXPECT_FALSE(res.ended_by_repeat);
}

TEST(Mct, RepeatedPrefixEndsTransfer) {
  std::vector<TimedBgpMessage> msgs;
  msgs.push_back(update_at(1000, 0x0a000000, 2));
  msgs.push_back(update_at(2000, 0x0b000000, 2));
  msgs.push_back(update_at(9000, 0x0a000000, 1));  // re-announcement: dynamics
  msgs.push_back(update_at(10'000, 0x0c000000, 2));
  const auto res = mct_transfer_end(msgs, 0);
  EXPECT_EQ(res.end, 2000);
  EXPECT_TRUE(res.ended_by_repeat);
  EXPECT_EQ(res.update_count, 2u);
}

TEST(Mct, WithdrawalEndsTransfer) {
  std::vector<TimedBgpMessage> msgs;
  msgs.push_back(update_at(1000, 0x0a000000, 2));
  BgpUpdate withdraw;
  withdraw.withdrawn.push_back({0x0a000000, 24});
  msgs.push_back({2000, BgpMessage{withdraw}});
  msgs.push_back(update_at(3000, 0x0b000000, 2));
  const auto res = mct_transfer_end(msgs, 0);
  EXPECT_EQ(res.end, 1000);
  EXPECT_TRUE(res.ended_by_repeat);
}

TEST(Mct, SilenceEndsTransfer) {
  std::vector<TimedBgpMessage> msgs;
  msgs.push_back(update_at(1000, 0x0a000000, 1));
  msgs.push_back(update_at(2000, 0x0b000000, 1));
  // 400 s of silence, then more (fresh) updates: beyond max_silence.
  msgs.push_back(update_at(2000 + 400 * kMicrosPerSec, 0x0c000000, 1));
  const auto res = mct_transfer_end(msgs, 0);
  EXPECT_EQ(res.end, 2000);
  EXPECT_EQ(res.update_count, 2u);
}

TEST(Mct, ToleratesPeerGroupPause) {
  // A 170 s stall (< default 300 s) inside the transfer must not cut it.
  std::vector<TimedBgpMessage> msgs;
  msgs.push_back(update_at(1000, 0x0a000000, 1));
  msgs.push_back(update_at(1000 + 170 * kMicrosPerSec, 0x0b000000, 1));
  const auto res = mct_transfer_end(msgs, 0);
  EXPECT_EQ(res.update_count, 2u);
  EXPECT_EQ(res.end, 1000 + 170 * kMicrosPerSec);
}

TEST(Mct, IgnoresMessagesBeforeStart) {
  std::vector<TimedBgpMessage> msgs;
  msgs.push_back(update_at(1000, 0x0a000000, 1));
  msgs.push_back(update_at(5000, 0x0b000000, 1));
  const auto res = mct_transfer_end(msgs, 3000);
  EXPECT_EQ(res.update_count, 1u);
  EXPECT_EQ(res.prefix_count, 1u);
}

TEST(Mct, SilenceThresholdSweep) {
  // Sensitivity ablation: the same stream cut at different max_silence.
  std::vector<TimedBgpMessage> msgs;
  msgs.push_back(update_at(0, 0x0a000000, 1));
  msgs.push_back(update_at(10 * kMicrosPerSec, 0x0b000000, 1));
  msgs.push_back(update_at(100 * kMicrosPerSec, 0x0c000000, 1));
  for (const auto& [silence, expected_updates] :
       std::vector<std::pair<Micros, std::size_t>>{
           {5 * kMicrosPerSec, 1}, {50 * kMicrosPerSec, 2}, {200 * kMicrosPerSec, 3}}) {
    MctOptions opts;
    opts.max_silence = silence;
    EXPECT_EQ(mct_transfer_end(msgs, 0, opts).update_count, expected_updates)
        << "silence=" << silence;
  }
}

TEST(Mct, FullGeneratedTable) {
  Rng rng(13);
  TableGenConfig cfg;
  cfg.prefix_count = 5000;
  const auto updates = generate_table(cfg, rng);
  std::vector<TimedBgpMessage> msgs;
  Micros t = 1000;
  for (const auto& u : updates) {
    msgs.push_back({t, BgpMessage{u}});
    t += 500;
  }
  const auto res = mct_transfer_end(msgs, 0);
  EXPECT_EQ(res.update_count, updates.size());
  EXPECT_EQ(res.prefix_count, 5000u);
  EXPECT_EQ(res.end, t - 500);
}

}  // namespace
}  // namespace tdat
