#!/usr/bin/env bash
# End-to-end golden test for the tdat CLI: simulate a deterministic capture
# (fixed seeds live in cmd_simulate), run it through the JSON report sink,
# and diff byte-for-byte against the committed expected output. Also covers
# the unified argument parser's error behaviour, `tdat passes`, and the
# --detectors selection, so a CLI regression fails here rather than in a
# user's pipeline.
#
# Usage: golden_cli_test.sh <path-to-tdat> <golden-dir>
set -u

TDAT="$1"
GOLDEN_DIR="$2"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# --- golden JSON: simulate -> analyze --json must be byte-stable ------------
"$TDAT" simulate baseline "$TMP/base.pcap" --sessions 2 >/dev/null \
  || fail "simulate exited non-zero"

"$TDAT" analyze "$TMP/base.pcap" --json --jobs 2 --quiet-stats \
  >"$TMP/analyze.json" 2>"$TMP/analyze.err" \
  || fail "analyze exited non-zero: $(cat "$TMP/analyze.err")"
diff -u "$GOLDEN_DIR/analyze_baseline.json" "$TMP/analyze.json" \
  || fail "analyze --json drifted from tests/golden/analyze_baseline.json" \
          "(regenerate deliberately if the schema changed)"

# Parallelism must not change a byte.
"$TDAT" analyze "$TMP/base.pcap" --json --jobs 1 --quiet-stats \
  >"$TMP/jobs1.json" 2>/dev/null || fail "analyze --jobs 1 exited non-zero"
cmp -s "$TMP/analyze.json" "$TMP/jobs1.json" \
  || fail "output differs between --jobs 2 and --jobs 1"

# --strict must not change a byte on clean input (DESIGN.md §10: clean
# captures are unaffected by the recovery policy).
"$TDAT" analyze "$TMP/base.pcap" --strict --json --jobs 2 --quiet-stats \
  >"$TMP/strict.json" 2>/dev/null || fail "analyze --strict exited non-zero"
cmp -s "$TMP/analyze.json" "$TMP/strict.json" \
  || fail "--strict changed output on a clean capture"

# --- exit-code contract (see README): 0 clean, 1 recoverable input errors,
# --- 2 usage error, 3 unreadable input --------------------------------------
"$TDAT" analyze "$TMP/does-not-exist.pcap" --quiet-stats \
  >/dev/null 2>"$TMP/err.txt"
[ $? -eq 3 ] || fail "unreadable input should exit 3"

"$TDAT" corrupt "$TMP/base.pcap" "$TMP/damaged.pcap" \
  --mode truncate-record --seed 7 >/dev/null \
  || fail "tdat corrupt exited non-zero"
"$TDAT" analyze "$TMP/damaged.pcap" --quiet-stats \
  >"$TMP/damaged.txt" 2>/dev/null
[ $? -eq 1 ] || fail "damaged capture should exit 1 (analyzed with errors)"
grep -q "ingest errors:" "$TMP/damaged.txt" \
  || fail "damaged-capture report should carry the ingest diagnostics block"

"$TDAT" analyze "$TMP/damaged.pcap" --strict --json --quiet-stats \
  >"$TMP/damaged.json" 2>/dev/null
[ $? -eq 1 ] || fail "strict mode on a damaged capture should still exit 1"
grep -q '"ingest"' "$TMP/damaged.json" \
  || fail "JSON output should embed the ingest diagnostics"

# --- malformed arguments: one-line error, exit 2 ----------------------------
"$TDAT" analyze "$TMP/base.pcap" --frobnicate 2>"$TMP/err.txt"
[ $? -eq 2 ] || fail "unknown flag should exit 2"
[ "$(wc -l <"$TMP/err.txt")" -eq 1 ] || fail "flag error should be one line"
grep -q "unknown flag '--frobnicate'" "$TMP/err.txt" \
  || fail "flag error should name the flag: $(cat "$TMP/err.txt")"

"$TDAT" analyze 2>"$TMP/err.txt"
[ $? -eq 2 ] || fail "analyze without inputs should exit 2"
grep -q "no input capture" "$TMP/err.txt" \
  || fail "missing-input error text: $(cat "$TMP/err.txt")"

"$TDAT" analyze "$TMP/base.pcap" --jobs banana 2>"$TMP/err.txt"
[ $? -eq 2 ] || fail "--jobs banana should exit 2"

"$TDAT" analyze "$TMP/base.pcap" --detectors frobnicate 2>"$TMP/err.txt"
[ $? -eq 2 ] || fail "unknown detector should exit 2"
grep -q "timer-gaps" "$TMP/err.txt" \
  || fail "detector error should list the valid names"

# --- passes listing ---------------------------------------------------------
"$TDAT" passes >"$TMP/passes.txt" || fail "tdat passes exited non-zero"
for p in bgp-sender-app tcp-advertised-window network-loss \
         timer-gaps consecutive-loss zero-window-bug peer-group \
         capture-voids; do
  grep -q "$p" "$TMP/passes.txt" || fail "tdat passes missing $p"
done

# --- detector selection reaches the sinks -----------------------------------
"$TDAT" analyze "$TMP/base.pcap" --detectors none --format csv --quiet-stats \
  >"$TMP/none.csv" 2>/dev/null || fail "analyze --detectors none failed"
head -1 "$TMP/none.csv" | grep -q "^connection,section,key,value$" \
  || fail "csv header missing"
grep -q ",detector,.*\.detected,0$" "$TMP/none.csv" \
  || fail "csv should keep the stable detector schema when disabled"
if grep -q "\.detected,1$" "$TMP/none.csv"; then
  fail "a detector fired despite --detectors none"
fi

echo "golden CLI test OK"
