#include "tcp/flights.hpp"

#include <gtest/gtest.h>

namespace tdat {
namespace {

TEST(Flights, EmptyInput) {
  EXPECT_TRUE(group_flights({}, 100).empty());
}

TEST(Flights, SingleFlight) {
  std::vector<FlightItem> items = {{0, 100, 0}, {50, 100, 1}, {90, 100, 2}};
  const auto flights = group_flights(items, 100);
  ASSERT_EQ(flights.size(), 1u);
  EXPECT_EQ(flights[0].packets, 3u);
  EXPECT_EQ(flights[0].bytes, 300u);
  EXPECT_EQ(flights[0].start, 0);
  EXPECT_EQ(flights[0].end, 90);
  EXPECT_EQ(flights[0].first, 0u);
  EXPECT_EQ(flights[0].last, 2u);
}

TEST(Flights, SplitsOnGap) {
  std::vector<FlightItem> items = {{0, 10, 0}, {50, 10, 1}, {500, 10, 2}, {520, 10, 3}};
  const auto flights = group_flights(items, 100);
  ASSERT_EQ(flights.size(), 2u);
  EXPECT_EQ(flights[0].packets, 2u);
  EXPECT_EQ(flights[1].packets, 2u);
  EXPECT_EQ(flights[1].first, 2u);
}

TEST(Flights, GapExactlyAtThresholdStaysTogether) {
  std::vector<FlightItem> items = {{0, 1, 0}, {100, 1, 1}};
  EXPECT_EQ(group_flights(items, 100).size(), 1u);
  EXPECT_EQ(group_flights(items, 99).size(), 2u);
}

TEST(Flights, EachPacketItsOwnFlightAtZeroThreshold) {
  std::vector<FlightItem> items = {{0, 1, 0}, {1, 1, 1}, {2, 1, 2}};
  EXPECT_EQ(group_flights(items, 0).size(), 3u);
}

TEST(Flights, EqualTimestampsShareFlightAtZeroThreshold) {
  std::vector<FlightItem> items = {{5, 1, 0}, {5, 1, 1}};
  EXPECT_EQ(group_flights(items, 0).size(), 1u);
}

}  // namespace
}  // namespace tdat
