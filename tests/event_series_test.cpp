#include "timerange/event_series.hpp"

#include <gtest/gtest.h>

#include "timerange/render.hpp"

namespace tdat {
namespace {

TEST(EventSeries, AddAndSize) {
  EventSeries s("Test");
  s.add({10, 20}, 2, 100, 7);
  s.add({30, 40}, 1, 50, 9);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.size(), 20);
  EXPECT_EQ(s.total_packets(), 3u);
  EXPECT_EQ(s.total_bytes(), 150u);
}

TEST(EventSeries, OverlappingEventsMergeInRanges) {
  EventSeries s("Test");
  s.add({10, 30}, 1, 0);
  s.add({20, 40}, 1, 0);
  EXPECT_EQ(s.count(), 2u);          // events preserved individually
  EXPECT_EQ(s.ranges().count(), 1u); // coverage merged
  EXPECT_EQ(s.size(), 30);
}

TEST(EventSeries, EmptyRangeIgnored) {
  EventSeries s("Test");
  s.add({10, 10});
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
}

TEST(EventSeries, OutOfOrderAddKeepsSorted) {
  EventSeries s("Test");
  s.add({30, 40});
  s.add({10, 20});
  s.add({20, 25});
  ASSERT_EQ(s.events().size(), 3u);
  EXPECT_EQ(s.events()[0].range.begin, 10);
  EXPECT_EQ(s.events()[1].range.begin, 20);
  EXPECT_EQ(s.events()[2].range.begin, 30);
}

TEST(EventSeries, CacheInvalidatedByAdd) {
  EventSeries s("Test");
  s.add({10, 20});
  EXPECT_EQ(s.size(), 10);
  s.add({40, 50});
  EXPECT_EQ(s.size(), 20);
}

TEST(EventSeries, QueryWindow) {
  EventSeries s("Test");
  s.add({10, 20}, 1, 0, 100);
  s.add({30, 40}, 1, 0, 101);
  s.add({50, 60}, 1, 0, 102);
  auto hits = s.query({15, 35});
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].trace_ref, 100);
  EXPECT_EQ(hits[1].trace_ref, 101);
  EXPECT_TRUE(s.query({20, 30}).empty());
}

TEST(EventSeries, RenamedKeepsEvents) {
  EventSeries s("UpstreamLoss");
  s.add({10, 20}, 3, 4000, 5);
  EventSeries r = s.renamed("SendLocalLoss");
  EXPECT_EQ(r.name(), "SendLocalLoss");
  ASSERT_EQ(r.events().size(), 1u);
  EXPECT_EQ(r.events()[0].packets, 3u);
  EXPECT_EQ(s.name(), "UpstreamLoss");  // original untouched
}

TEST(EventSeries, SetAlgebra) {
  EventSeries a("A");
  a.add({10, 30});
  a.add({50, 70});
  EventSeries b("B");
  b.add({20, 60});

  EventSeries i = a.intersect(b, "I");
  EXPECT_EQ(i.name(), "I");
  EXPECT_EQ(i.size(), 10 + 10);

  EventSeries u = a.unite(b, "U");
  EXPECT_EQ(u.size(), 60);

  EventSeries d = a.subtract(b, "D");
  EXPECT_EQ(d.size(), 10 + 10);
}

TEST(SeriesRegistry, PutGetReplace) {
  SeriesRegistry reg;
  EventSeries s("Outstanding");
  s.add({0, 10});
  reg.put(std::move(s));
  EXPECT_TRUE(reg.has("Outstanding"));
  EXPECT_FALSE(reg.has("Missing"));
  EXPECT_EQ(reg.get("Outstanding").size(), 10);

  EventSeries s2("Outstanding");
  s2.add({0, 99});
  reg.put(std::move(s2));
  EXPECT_EQ(reg.get("Outstanding").size(), 99);
  EXPECT_EQ(reg.count(), 1u);
}

TEST(SeriesRegistry, Names) {
  SeriesRegistry reg;
  reg.put(EventSeries("B"));
  reg.put(EventSeries("A"));
  const auto names = reg.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "A");  // map order: sorted
  EXPECT_EQ(names[1], "B");
}

TEST(Render, SquareWaves) {
  EventSeries a("Loss");
  a.add({0, 50});
  EventSeries b("Idle");
  b.add({50, 100});
  RenderOptions opts;
  opts.width = 10;
  const std::string out = render_series({&a, &b}, {0, 100}, opts);
  // "Loss" row covers the first half, "Idle" the second.
  EXPECT_NE(out.find("Loss  #####....."), std::string::npos);
  EXPECT_NE(out.find("Idle  .....#####"), std::string::npos);
}

TEST(Render, Csv) {
  EventSeries a("X");
  a.add({1, 2}, 3, 4);
  const std::string csv = series_to_csv({&a});
  EXPECT_NE(csv.find("series,begin_us,end_us,packets,bytes"), std::string::npos);
  EXPECT_NE(csv.find("X,1,2,3,4"), std::string::npos);
}

}  // namespace
}  // namespace tdat
