#include "tcp/connection.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "tcp/profile.hpp"

namespace tdat {
namespace {

using test::PacketFactory;

TEST(ConnKey, CanonicalOrder) {
  PacketFactory f;
  const auto data = f.data(0, 0, 10);
  const auto ack = f.ack(1, 10);
  const ConnKey k1 = make_conn_key(data);
  const ConnKey k2 = make_conn_key(ack);
  EXPECT_EQ(k1, k2);
  EXPECT_LT(k1.ip_a, k1.ip_b);
}

TEST(ConnKey, DirAssignment) {
  PacketFactory f;
  const auto data = f.data(0, 0, 10);
  const auto ack = f.ack(1, 10);
  const ConnKey key = make_conn_key(data);
  EXPECT_NE(packet_dir(key, data), packet_dir(key, ack));
  EXPECT_EQ(reverse(packet_dir(key, data)), packet_dir(key, ack));
}

TEST(ConnKey, ToStringShowsBothEndpoints) {
  PacketFactory f;
  const ConnKey key = make_conn_key(f.data(0, 0, 10));
  const std::string s = key.to_string();
  EXPECT_NE(s.find("10.0.1.1"), std::string::npos);
  EXPECT_NE(s.find("10.9.9.9"), std::string::npos);
}

TEST(SplitConnections, SingleConnection) {
  PacketFactory f;
  std::vector<DecodedPacket> trace = f.handshake(0, 1000);
  trace.push_back(f.data(2000, 0, 100));
  trace.push_back(f.ack(3000, 100));
  const auto conns = split_connections(trace);
  ASSERT_EQ(conns.size(), 1u);
  EXPECT_EQ(conns[0].packets.size(), 5u);
  EXPECT_EQ(conns[0].start_time(), 0);
  EXPECT_EQ(conns[0].end_time(), 3000);
}

TEST(SplitConnections, SessionResetStartsNewConnection) {
  PacketFactory f;
  std::vector<DecodedPacket> trace = f.handshake(0, 1000);
  trace.push_back(f.data(2000, 0, 100));
  trace.push_back(f.ack(3000, 100));
  // Same endpoints reconnect (new SYN) after the old session carried data.
  PacketFactory f2;
  f2.next_index = trace.size();
  f2.sender_isn = 777'000;
  auto hs2 = f2.handshake(10'000'000, 1000);
  for (auto& p : hs2) trace.push_back(std::move(p));
  trace.push_back(f2.data(10'002'000, 0, 50));

  const auto conns = split_connections(trace);
  ASSERT_EQ(conns.size(), 2u);
  EXPECT_EQ(conns[0].packets.size(), 5u);
  EXPECT_EQ(conns[1].packets.size(), 4u);
  EXPECT_EQ(conns[0].key, conns[1].key);
}

TEST(SplitConnections, DistinctEndpointsSeparate) {
  PacketFactory f1;
  std::vector<DecodedPacket> trace;
  trace.push_back(f1.data(0, 0, 10));
  // A second router (different IP) talking to the same collector.
  TcpSegmentSpec spec;
  spec.src_ip = test::kSenderIp + 1;
  spec.dst_ip = test::kReceiverIp;
  spec.src_port = 20001;
  spec.dst_port = 179;
  spec.seq = 1;
  spec.flags = {.ack = true, .psh = true};
  std::vector<std::uint8_t> payload(10, 0);
  spec.payload = payload;
  trace.push_back(test::make_packet(5, 1, spec));
  const auto conns = split_connections(trace);
  EXPECT_EQ(conns.size(), 2u);
}

TEST(Profile, HandshakeRttAndOptions) {
  PacketFactory f;
  std::vector<DecodedPacket> trace = f.handshake(0, 10'000);
  trace.push_back(f.data(12'000, 0, 1000));
  trace.push_back(f.ack(13'000, 1000));
  const auto conns = split_connections(trace);
  ASSERT_EQ(conns.size(), 1u);
  const ConnectionProfile p = compute_profile(conns[0]);
  ASSERT_TRUE(p.rtt_handshake.has_value());
  EXPECT_EQ(*p.rtt_handshake, 10'000);
  EXPECT_EQ(p.rtt(), 10'000);
  EXPECT_EQ(p.mss(), 1460);
  EXPECT_EQ(p.data_dir, packet_dir(conns[0].key, trace[3]));
  EXPECT_EQ(p.sender().payload_bytes, 1000u);
  EXPECT_EQ(p.receiver().payload_bytes, 0u);
}

TEST(Profile, RttMinSampleWithoutHandshake) {
  PacketFactory f;
  std::vector<DecodedPacket> trace;
  trace.push_back(f.data(0, 0, 500));
  trace.push_back(f.ack(4'000, 500));
  trace.push_back(f.data(5'000, 500, 500));
  trace.push_back(f.ack(8'000, 1000));
  const auto conns = split_connections(trace);
  const ConnectionProfile p = compute_profile(conns[0]);
  EXPECT_FALSE(p.rtt_handshake.has_value());
  ASSERT_TRUE(p.rtt_min_sample.has_value());
  EXPECT_EQ(*p.rtt_min_sample, 3'000);  // min(4000-0, 8000-5000)
}

TEST(Profile, MaxAdvertisedWindowFromReceiver) {
  PacketFactory f;
  std::vector<DecodedPacket> trace;
  trace.push_back(f.data(0, 0, 100));
  trace.push_back(f.ack(1'000, 100, 16'384));
  trace.push_back(f.data(2'000, 100, 100));
  trace.push_back(f.ack(3'000, 200, 8'192));
  const auto conns = split_connections(trace);
  const ConnectionProfile p = compute_profile(conns[0]);
  EXPECT_EQ(p.max_advertised_window(), 16'384u);
}

TEST(Profile, EmptyConnection) {
  Connection conn;
  const ConnectionProfile p = compute_profile(conn);
  EXPECT_EQ(p.start, 0);
  EXPECT_EQ(p.rtt(), kMicrosPerMilli);  // fallback
}

TEST(Profile, PureAckCounting) {
  PacketFactory f;
  std::vector<DecodedPacket> trace;
  trace.push_back(f.data(0, 0, 100));
  trace.push_back(f.ack(1'000, 100));
  trace.push_back(f.ack(2'000, 100));
  const auto conns = split_connections(trace);
  const ConnectionProfile p = compute_profile(conns[0]);
  EXPECT_EQ(p.receiver().pure_acks, 2u);
  EXPECT_EQ(p.sender().data_packets, 1u);
}

}  // namespace
}  // namespace tdat
