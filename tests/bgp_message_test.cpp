#include "bgp/message.hpp"

#include <gtest/gtest.h>

namespace tdat {
namespace {

BgpUpdate sample_update() {
  BgpUpdate upd;
  upd.attrs.origin = 0;
  upd.attrs.as_path.push_back({AsPathSegment::kAsSequence, {19080, 22298, 30092}});
  upd.attrs.next_hop = 0x0a000001;
  upd.attrs.med = 42;
  upd.attrs.local_pref = 100;
  upd.attrs.communities = {0x00010002, 0x00030004};
  upd.nlri.push_back({0x42009a00 & 0xffffff00, 24});  // 66.0.154.0/24
  upd.nlri.push_back({0x42009800, 22});
  return upd;
}

TEST(BgpMessage, KeepAliveRoundTrip) {
  const auto bytes = serialize_message(BgpMessage{BgpKeepAlive{}});
  EXPECT_EQ(bytes.size(), kBgpHeaderLen);
  EXPECT_EQ(peek_message_length(bytes), kBgpHeaderLen);
  const auto parsed = parse_message(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().type(), BgpType::kKeepAlive);
}

TEST(BgpMessage, OpenRoundTrip) {
  BgpOpen open;
  open.my_as = 65001;
  open.hold_time = 180;
  open.bgp_id = 0x0a000001;
  const auto bytes = serialize_message(BgpMessage{open});
  const auto parsed = parse_message(bytes);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().type(), BgpType::kOpen);
  EXPECT_EQ(std::get<BgpOpen>(parsed.value().body), open);
}

TEST(BgpMessage, UpdateRoundTrip) {
  const BgpUpdate upd = sample_update();
  const auto bytes = serialize_message(BgpMessage{upd});
  const auto parsed = parse_message(bytes);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().type(), BgpType::kUpdate);
  EXPECT_EQ(std::get<BgpUpdate>(parsed.value().body), upd);
}

TEST(BgpMessage, WithdrawRoundTrip) {
  BgpUpdate upd;
  upd.withdrawn.push_back({0x0a000000, 8});
  upd.withdrawn.push_back({0xc0a80000, 16});
  const auto bytes = serialize_message(BgpMessage{upd});
  const auto parsed = parse_message(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(std::get<BgpUpdate>(parsed.value().body), upd);
}

TEST(BgpMessage, NotificationRoundTrip) {
  BgpNotification notif;
  notif.code = 6;
  notif.subcode = 2;
  notif.data = {1, 2, 3};
  const auto bytes = serialize_message(BgpMessage{notif});
  const auto parsed = parse_message(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(std::get<BgpNotification>(parsed.value().body), notif);
}

TEST(BgpMessage, PrefixEdgeCases) {
  for (std::uint8_t len : {0, 1, 7, 8, 9, 15, 16, 17, 23, 24, 25, 31, 32}) {
    BgpUpdate upd;
    upd.attrs.as_path.push_back({AsPathSegment::kAsSequence, {1}});
    upd.attrs.next_hop = 1;
    const std::uint32_t mask = len == 0 ? 0 : ~std::uint32_t{0} << (32 - len);
    upd.nlri.push_back({0xabcdef12 & mask, len});
    const auto parsed = parse_message(serialize_message(BgpMessage{upd}));
    ASSERT_TRUE(parsed.ok()) << static_cast<int>(len);
    EXPECT_EQ(std::get<BgpUpdate>(parsed.value().body).nlri[0], upd.nlri[0])
        << static_cast<int>(len);
  }
}

TEST(BgpMessage, PrefixToString) {
  Prefix p{0x42009a00, 24};
  EXPECT_EQ(p.to_string(), "66.0.154.0/24");
}

TEST(BgpMessage, AsPathString) {
  const BgpUpdate upd = sample_update();
  EXPECT_EQ(upd.attrs.as_path_string(), "19080 22298 30092");
}

TEST(BgpMessage, UnrecognizedAttributePreserved) {
  BgpUpdate upd;
  upd.attrs.as_path.push_back({AsPathSegment::kAsSequence, {7}});
  upd.attrs.next_hop = 9;
  upd.attrs.unrecognized.push_back({0xc0, 99, {0xde, 0xad}});
  upd.nlri.push_back({0x0a000000, 8});
  const auto parsed = parse_message(serialize_message(BgpMessage{upd}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(std::get<BgpUpdate>(parsed.value().body).attrs.unrecognized,
            upd.attrs.unrecognized);
}

TEST(BgpMessage, RejectsBadMarker) {
  auto bytes = serialize_message(BgpMessage{BgpKeepAlive{}});
  bytes[3] = 0x00;
  EXPECT_EQ(peek_message_length(bytes), 0u);
  EXPECT_FALSE(parse_message(bytes).ok());
}

TEST(BgpMessage, RejectsTruncated) {
  auto bytes = serialize_message(BgpMessage{sample_update()});
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(parse_message(bytes).ok());
}

TEST(BgpMessage, RejectsBadLength) {
  auto bytes = serialize_message(BgpMessage{BgpKeepAlive{}});
  bytes[16] = 0xff;  // declared length 0xff13 > 4096
  bytes[17] = 0x13;
  EXPECT_EQ(peek_message_length(bytes), 0u);
}

TEST(BgpMessage, RejectsUnknownType) {
  auto bytes = serialize_message(BgpMessage{BgpKeepAlive{}});
  bytes[18] = 99;
  EXPECT_FALSE(parse_message(bytes).ok());
}

TEST(BgpMessage, RejectsKeepAliveWithBody) {
  auto bytes = serialize_message(BgpMessage{BgpKeepAlive{}});
  bytes.push_back(0);
  bytes[17] = 20;  // length 20 with type KEEPALIVE
  EXPECT_FALSE(parse_message(bytes).ok());
}

TEST(BgpMessage, TypeNames) {
  EXPECT_STREQ(to_string(BgpType::kOpen), "OPEN");
  EXPECT_STREQ(to_string(BgpType::kUpdate), "UPDATE");
  EXPECT_STREQ(to_string(BgpType::kNotification), "NOTIFICATION");
  EXPECT_STREQ(to_string(BgpType::kKeepAlive), "KEEPALIVE");
}

}  // namespace
}  // namespace tdat
