#include "fleet/wire.hpp"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "util/bytes.hpp"

namespace tdat::fleet {

namespace {

// Hard caps on variable-length fields, all far beyond legitimate use: a
// corrupt count field must fail the parse, not drive a giant reserve().
constexpr std::size_t kMaxString = 1u << 16;
constexpr std::size_t kMaxRuns = 1u << 26;

[[nodiscard]] bool valid_type(std::uint32_t type) {
  return type >= static_cast<std::uint32_t>(MsgType::kHello) &&
         type <= static_cast<std::uint32_t>(MsgType::kShutdown);
}

void put_string(ByteWriter& w, const std::string& s) {
  w.u32le(static_cast<std::uint32_t>(s.size()));
  w.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

[[nodiscard]] std::string get_string(ByteReader& r) {
  const std::uint32_t len = r.u32le();
  if (len > kMaxString) {
    r.fail();
    return {};
  }
  const auto bytes = r.bytes(len);
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

// Shared tail check: a decoder that read its fields but left bytes behind
// parsed a different (longer) message — reject it.
template <typename T>
[[nodiscard]] Result<T> finish(ByteReader& r, T msg, const char* what) {
  if (!r.ok() || r.remaining() != 0) {
    return Err<T>(std::string("fleet wire: malformed ") + what + " payload");
  }
  return msg;
}

}  // namespace

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kAssign: return "assign";
    case MsgType::kResult: return "result";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kError: return "error";
    case MsgType::kShutdown: return "shutdown";
  }
  return "unknown";
}

FrameStatus decode_frame(std::span<const std::uint8_t> buf, Frame& out,
                         std::size_t& consumed) {
  consumed = 0;
  if (buf.size() < kFrameHeaderLen) {
    // A short buffer can still be disqualified early: if the magic bytes we
    // do have are wrong, no amount of further input fixes this peer.
    for (std::size_t i = 0; i < buf.size() && i < 4; ++i) {
      if (buf[i] != static_cast<std::uint8_t>(kWireMagic >> (8 * i))) {
        return FrameStatus::kBad;
      }
    }
    return FrameStatus::kNeedMore;
  }
  ByteReader r(buf);
  const std::uint32_t magic = r.u32le();
  const std::uint32_t type = r.u32le();
  const std::uint64_t len = r.u64le();
  if (magic != kWireMagic || !valid_type(type) || len > kMaxPayload) {
    return FrameStatus::kBad;
  }
  if (buf.size() - kFrameHeaderLen < len) return FrameStatus::kNeedMore;
  out.type = static_cast<MsgType>(type);
  out.payload.assign(buf.begin() + kFrameHeaderLen,
                     buf.begin() + kFrameHeaderLen + static_cast<std::size_t>(len));
  consumed = kFrameHeaderLen + static_cast<std::size_t>(len);
  return FrameStatus::kOk;
}

void append_frame(std::vector<std::uint8_t>& buf, MsgType type,
                  std::span<const std::uint8_t> payload) {
  ByteWriter header;
  header.u32le(kWireMagic);
  header.u32le(static_cast<std::uint32_t>(type));
  header.u64le(payload.size());
  buf.insert(buf.end(), header.data().begin(), header.data().end());
  buf.insert(buf.end(), payload.begin(), payload.end());
}

bool write_frame_fd(int fd, MsgType type,
                    std::span<const std::uint8_t> payload) {
#if defined(__unix__) || defined(__APPLE__)
  std::vector<std::uint8_t> buf;
  buf.reserve(kFrameHeaderLen + payload.size());
  append_frame(buf, type, payload);
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
#else
  (void)fd;
  (void)type;
  (void)payload;
  return false;
#endif
}

bool read_frame_fd(int fd, Frame& out) {
#if defined(__unix__) || defined(__APPLE__)
  const auto read_exact = [&](std::uint8_t* dst, std::size_t n) {
    std::size_t off = 0;
    while (off < n) {
      const ssize_t got = ::read(fd, dst + off, n - off);
      if (got < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (got == 0) return false;  // EOF mid-frame (or before one)
      off += static_cast<std::size_t>(got);
    }
    return true;
  };
  std::uint8_t header[kFrameHeaderLen];
  if (!read_exact(header, sizeof(header))) return false;
  ByteReader r(std::span<const std::uint8_t>(header, sizeof(header)));
  const std::uint32_t magic = r.u32le();
  const std::uint32_t type = r.u32le();
  const std::uint64_t len = r.u64le();
  if (magic != kWireMagic || !valid_type(type) || len > kMaxPayload) {
    return false;
  }
  out.type = static_cast<MsgType>(type);
  out.payload.resize(static_cast<std::size_t>(len));
  return len == 0 || read_exact(out.payload.data(), out.payload.size());
#else
  (void)fd;
  (void)out;
  return false;
#endif
}

// ---------------------------------------------------------------- messages

std::vector<std::uint8_t> HelloMessage::encode() const {
  ByteWriter w;
  w.u32le(protocol_version);
  put_string(w, host);
  return w.take();
}

Result<HelloMessage> HelloMessage::decode(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  HelloMessage m;
  m.protocol_version = r.u32le();
  m.host = get_string(r);
  return finish(r, std::move(m), "hello");
}

std::vector<std::uint8_t> AssignMessage::encode() const {
  ByteWriter w;
  w.u32le(worker_id);
  w.u32le(shard_index);
  put_string(w, capture);
  put_string(w, run_id);
  w.u32le(jobs);
  w.u8(location);
  w.u8(verify_checksums);
  w.u64le(pass_bits);
  w.u32le(heartbeat_ms);
  w.u32le(static_cast<std::uint32_t>(runs.size()));
  for (const RecordRun& run : runs) {
    w.u64le(run.offset);
    w.u32le(run.count);
  }
  return w.take();
}

Result<AssignMessage> AssignMessage::decode(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  AssignMessage m;
  m.worker_id = r.u32le();
  m.shard_index = r.u32le();
  m.capture = get_string(r);
  m.run_id = get_string(r);
  m.jobs = r.u32le();
  m.location = r.u8();
  m.verify_checksums = r.u8();
  m.pass_bits = r.u64le();
  m.heartbeat_ms = r.u32le();
  const std::uint32_t count = r.u32le();
  // 12 bytes per run: a count the payload cannot actually hold is corrupt.
  if (count > kMaxRuns || static_cast<std::uint64_t>(count) * 12 > r.remaining()) {
    r.fail();
  } else {
    m.runs.resize(count);
    for (RecordRun& run : m.runs) {
      run.offset = r.u64le();
      run.count = r.u32le();
    }
  }
  return finish(r, std::move(m), "assign");
}

std::vector<std::uint8_t> ResultMessage::encode() const {
  ByteWriter w;
  w.u32le(worker_id);
  w.u32le(shard_index);
  w.u64le(records);
  w.u64le(packets);
  w.u64le(connections);
  w.u64le(bytes_ingested);
  w.u64le(wall_us);
  w.u32le(static_cast<std::uint32_t>(archive.size()));
  w.bytes(archive);
  return w.take();
}

Result<ResultMessage> ResultMessage::decode(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  ResultMessage m;
  m.worker_id = r.u32le();
  m.shard_index = r.u32le();
  m.records = r.u64le();
  m.packets = r.u64le();
  m.connections = r.u64le();
  m.bytes_ingested = r.u64le();
  m.wall_us = r.u64le();
  const std::uint32_t len = r.u32le();
  if (len > r.remaining()) {
    r.fail();
  } else {
    const auto bytes = r.bytes(len);
    m.archive.assign(bytes.begin(), bytes.end());
  }
  return finish(r, std::move(m), "result");
}

std::vector<std::uint8_t> HeartbeatMessage::encode() const {
  ByteWriter w;
  w.u32le(worker_id);
  w.u32le(shard_index);
  w.u64le(records_done);
  return w.take();
}

Result<HeartbeatMessage> HeartbeatMessage::decode(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  HeartbeatMessage m;
  m.worker_id = r.u32le();
  m.shard_index = r.u32le();
  m.records_done = r.u64le();
  return finish(r, std::move(m), "heartbeat");
}

std::vector<std::uint8_t> ErrorMessage::encode() const {
  ByteWriter w;
  w.u32le(worker_id);
  w.u32le(shard_index);
  put_string(w, message);
  return w.take();
}

Result<ErrorMessage> ErrorMessage::decode(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  ErrorMessage m;
  m.worker_id = r.u32le();
  m.shard_index = r.u32le();
  m.message = get_string(r);
  return finish(r, std::move(m), "error");
}

}  // namespace tdat::fleet
