// The fleet coordinator (DESIGN.md §14): one zero-copy shard-plan sweep,
// then N workers — forked locally over socketpairs, or remote `tdat fleet
// --connect` processes over a TCP listener, speaking the same frames either
// way — each ingesting its shard's offset runs out of the same capture and
// streaming its .tdagg archive back. Archives merge incrementally as they
// arrive (the PR 7 merge algebra makes arrival order irrelevant to the
// output bytes); heartbeats bound how long a dead worker can sit on a shard,
// and a timed-out or crashed worker's shard goes back on the queue for a
// live (or freshly respawned) worker. The merged archive is byte-identical
// to a single-process `analyze --format agg` run over the whole capture.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agg/archive.hpp"
#include "core/options.hpp"
#include "util/result.hpp"

namespace tdat::fleet {

struct FleetOptions {
  std::size_t workers = 2;
  // Shard count; 0 means one per worker. More shards than workers gives the
  // queue slack to rebalance around slow or dead workers.
  std::size_t shards = 0;
  std::string run_id;
  // Per-worker analyzer knobs. `analyzer.jobs` is the analysis thread count
  // INSIDE each worker (default 1 — the fleet is the parallelism);
  // `analyzer.ingest` governs the plan sweep's corrupt-capture handling.
  AnalyzerOptions analyzer;
  std::uint32_t heartbeat_ms = 200;
  // A worker with an outstanding shard and no heartbeat/result for this long
  // is declared dead and its shard reassigned.
  std::uint32_t timeout_ms = 10'000;
  // Replacement workers the coordinator may fork after deaths (local mode).
  std::size_t max_respawns = 4;
  // "HOST:PORT" (or ":PORT") to accept remote workers instead of forking.
  std::string listen;
};

struct WorkerStats {
  std::uint32_t worker_id = 0;
  bool remote = false;
  std::size_t shards_done = 0;
  std::uint64_t records = 0;
  std::uint64_t bytes_ingested = 0;
  std::uint64_t busy_us = 0;  // sum of worker-reported shard walls

  [[nodiscard]] double bytes_per_sec() const;
};

struct FleetStats {
  std::size_t workers = 0;       // workers that ever served (incl. respawns)
  std::size_t shards = 0;
  std::size_t reassignments = 0;  // shards requeued off dead/failed workers
  std::size_t respawns = 0;
  std::uint64_t records = 0;      // from the plan sweep
  std::uint64_t packets = 0;
  std::uint64_t capture_bytes = 0;
  std::uint64_t plan_wall_us = 0;
  std::uint64_t total_wall_us = 0;
  std::vector<WorkerStats> per_worker;  // by worker id

  // Aggregate fleet throughput: capture bytes over total wall.
  [[nodiscard]] double bytes_per_sec() const;
};

struct FleetOutcome {
  agg::Archive archive;  // plan diagnostics already folded in
  FleetStats stats;
};

// Plans, distributes, merges. Fails when the capture is unreadable, when
// every worker (including respawns) died with shards outstanding, or when
// workers keep rejecting assignments (error budget).
[[nodiscard]] Result<FleetOutcome> run_fleet(const std::string& capture,
                                             const FleetOptions& opts);

}  // namespace tdat::fleet
