// The worker side of the fleet protocol (DESIGN.md §14): a loop over one
// already-connected descriptor — read an Assign frame, mmap the capture,
// ingest exactly the assigned offset runs through the one shared
// run_pipeline, stream the serialized .tdagg archive back, repeat until
// Shutdown. Forked local workers and `tdat fleet --connect` remote workers
// run this same loop; the only difference is who dialed the descriptor.
#pragma once

#include <string>

namespace tdat::fleet {

// Serves assignments over `fd` (blocking) until Shutdown or EOF. Returns a
// process exit code: 0 after a clean shutdown, 1 when the descriptor died or
// carried a malformed frame. Sends Hello first, heartbeats while analyzing
// (when the assignment asks for them), and Error frames for assignments it
// could not complete — it never dies silently with work outstanding.
//
// Test seam: when $TDAT_FLEET_KILL_WORKER names this worker's assigned id,
// the process _exit()s the moment the assignment arrives — a deterministic
// mid-shard crash for the coordinator's reassignment path.
[[nodiscard]] int run_worker(int fd);

// `tdat fleet --connect HOST:PORT`: dial a listening coordinator, then
// run_worker over the connection.
[[nodiscard]] int run_worker_connect(const std::string& host_port);

}  // namespace tdat::fleet
