#include "fleet/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <deque>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "fleet/shard_plan.hpp"
#include "fleet/wire.hpp"
#include "fleet/worker.hpp"
#include "util/metrics.hpp"

namespace tdat::fleet {

double WorkerStats::bytes_per_sec() const {
  if (busy_us == 0) return 0.0;
  return static_cast<double>(bytes_ingested) * 1e6 /
         static_cast<double>(busy_us);
}

double FleetStats::bytes_per_sec() const {
  if (total_wall_us == 0) return 0.0;
  return static_cast<double>(capture_bytes) * 1e6 /
         static_cast<double>(total_wall_us);
}

#if defined(__unix__) || defined(__APPLE__)

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::uint64_t us_since(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

// One connected worker, local (forked over a socketpair, pid set) or remote
// (accepted over the listener, pid 0). The fd runs nonblocking; `in`/`out`
// buffer partial frames across poll rounds.
struct Peer {
  std::uint32_t id = 0;
  int fd = -1;
  pid_t pid = 0;
  bool hello = false;
  int shard = -1;  // outstanding shard index, -1 when idle
  Clock::time_point last_seen;
  std::vector<std::uint8_t> in;
  std::vector<std::uint8_t> out;
  WorkerStats stats;
};

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_blocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
}

// Forks one local worker over a socketpair. The child closes every
// coordinator-side descriptor it inherited (a dead peer must read as EOF the
// moment the coordinator closes its end, not linger on a sibling's copy) and
// _exit()s without running atexit handlers — the parent owns the stdio
// buffers it forked with.
[[nodiscard]] Result<Peer> spawn_local_worker(
    std::uint32_t id, const std::vector<int>& inherited_fds) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    return Err<Peer>("fleet: socketpair failed");
  }
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return Err<Peer>("fleet: fork failed");
  }
  if (pid == 0) {
    ::close(sv[0]);
    for (const int fd : inherited_fds) {
      if (fd >= 0) ::close(fd);
    }
    _exit(run_worker(sv[1]));
  }
  ::close(sv[1]);
  set_nonblocking(sv[0]);
  Peer peer;
  peer.id = id;
  peer.fd = sv[0];
  peer.pid = pid;
  peer.last_seen = Clock::now();
  peer.stats.worker_id = id;
  return peer;
}

[[nodiscard]] Result<int> open_listener(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  const std::string host = colon == std::string::npos ? "" : spec.substr(0, colon);
  const std::string port =
      colon == std::string::npos ? spec : spec.substr(colon + 1);
  if (port.empty()) return Err<int>("fleet: --listen needs HOST:PORT");

  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* res = nullptr;
  if (::getaddrinfo(host.empty() ? nullptr : host.c_str(), port.c_str(),
                    &hints, &res) != 0) {
    return Err<int>("fleet: cannot resolve listen address " + spec);
  }
  int fd = -1;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 && ::listen(fd, 16) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) return Err<int>("fleet: cannot listen on " + spec);
  set_nonblocking(fd);
  return fd;
}

// Everything the poll loop threads through; keeps run_fleet_impl readable.
struct Fleet {
  Fleet(const std::string& capture_in, const FleetOptions& opts_in)
      : capture(capture_in), opts(opts_in) {}

  const std::string& capture;
  const FleetOptions& opts;
  ShardPlan plan;
  std::deque<std::uint32_t> queue;  // shards awaiting a worker
  std::vector<Peer> peers;
  agg::Archive merged;
  FleetStats stats;
  std::size_t done = 0;
  std::size_t worker_errors = 0;
  std::string last_error;
  std::uint32_t next_id = 0;
  int listen_fd = -1;

  [[nodiscard]] std::vector<int> coordinator_fds() const {
    std::vector<int> fds;
    fds.reserve(peers.size() + 1);
    for (const Peer& p : peers) fds.push_back(p.fd);
    if (listen_fd >= 0) fds.push_back(listen_fd);
    return fds;
  }
};

void enqueue_assignment(Fleet& fleet, Peer& peer) {
  const std::uint32_t shard = fleet.queue.front();
  fleet.queue.pop_front();
  AssignMessage assign;
  assign.worker_id = peer.id;
  assign.shard_index = shard;
  assign.capture = fleet.capture;
  assign.run_id = fleet.opts.run_id;
  assign.jobs = static_cast<std::uint32_t>(
      fleet.opts.analyzer.jobs == 0 ? 1 : fleet.opts.analyzer.jobs);
  assign.location = static_cast<std::uint8_t>(fleet.opts.analyzer.location);
  assign.verify_checksums = fleet.opts.analyzer.verify_checksums ? 1 : 0;
  assign.pass_bits = fleet.opts.analyzer.passes.bits;
  assign.heartbeat_ms = fleet.opts.heartbeat_ms;
  assign.runs = fleet.plan.shards[shard].runs;
  append_frame(peer.out, MsgType::kAssign, assign.encode());
  peer.shard = static_cast<int>(shard);
  peer.last_seen = Clock::now();
  metrics().gauge("fleet.queue_depth")
      .set(static_cast<std::int64_t>(fleet.queue.size()));
}

// Takes the peer off the fleet: close, reap, and put any outstanding shard
// back on the queue.
void drop_peer(Fleet& fleet, std::size_t index, bool reassign) {
  Peer& peer = fleet.peers[index];
  if (peer.fd >= 0) ::close(peer.fd);
  if (peer.pid > 0) {
    (void)::kill(peer.pid, SIGKILL);
    (void)::waitpid(peer.pid, nullptr, 0);
  }
  if (peer.shard >= 0 && reassign) {
    fleet.queue.push_back(static_cast<std::uint32_t>(peer.shard));
    ++fleet.stats.reassignments;
    metrics().counter("fleet.reassignments").inc();
  }
  fleet.peers.erase(fleet.peers.begin() + static_cast<std::ptrdiff_t>(index));
  metrics().gauge("fleet.workers_live")
      .set(static_cast<std::int64_t>(fleet.peers.size()));
}

// Handles one decoded frame from `peer`. Returns false when the frame means
// the peer must be dropped.
[[nodiscard]] bool handle_frame(Fleet& fleet, Peer& peer, const Frame& frame) {
  peer.last_seen = Clock::now();
  switch (frame.type) {
    case MsgType::kHello: {
      peer.hello = HelloMessage::decode(frame.payload).ok();
      return peer.hello;
    }
    case MsgType::kHeartbeat:
      return HeartbeatMessage::decode(frame.payload).ok();
    case MsgType::kResult: {
      auto result = ResultMessage::decode(frame.payload);
      if (!result.ok() ||
          peer.shard != static_cast<int>(result.value().shard_index)) {
        return false;
      }
      auto archive = agg::parse_archive(std::span<const std::uint8_t>(
          result.value().archive.data(), result.value().archive.size()));
      if (!archive.ok()) {
        fleet.last_error = "worker " + std::to_string(peer.id) +
                           " returned a bad archive: " + archive.error();
        return false;
      }
      // Incremental merge, inline before the next poll: a worker that
      // outruns this merge simply blocks in its next socket write — that IS
      // the backpressure.
      fleet.merged.merge_from(archive.value());
      peer.shard = -1;
      ++fleet.done;
      ++peer.stats.shards_done;
      peer.stats.records += result.value().records;
      peer.stats.bytes_ingested += result.value().bytes_ingested;
      peer.stats.busy_us += result.value().wall_us;
      metrics().counter("fleet.shards_done").inc();
      metrics()
          .gauge("fleet.worker." + std::to_string(peer.id) + ".bytes_per_sec")
          .set(static_cast<std::int64_t>(peer.stats.bytes_per_sec()));
      return true;
    }
    case MsgType::kError: {
      auto err = ErrorMessage::decode(frame.payload);
      if (!err.ok() || peer.shard < 0) return false;
      fleet.last_error = "worker " + std::to_string(peer.id) + ", shard " +
                         std::to_string(peer.shard) + ": " +
                         err.value().message;
      ++fleet.worker_errors;
      metrics().counter("fleet.worker_errors").inc();
      // The shard goes back on the queue (maybe only this worker's view of
      // the capture is broken); the global error budget stops a capture
      // problem from ping-ponging forever.
      fleet.queue.push_back(static_cast<std::uint32_t>(peer.shard));
      ++fleet.stats.reassignments;
      metrics().counter("fleet.reassignments").inc();
      peer.shard = -1;
      return true;
    }
    default:
      return false;  // coordinator-only frame types coming FROM a worker
  }
}

// Drains readable bytes and decodes as many frames as arrived. Returns false
// when the peer hit EOF, a read error, or a protocol violation.
[[nodiscard]] bool service_read(Fleet& fleet, Peer& peer) {
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(peer.fd, buf, sizeof(buf));
    if (n > 0) {
      peer.in.insert(peer.in.end(), buf, buf + n);
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) return false;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  std::size_t off = 0;
  for (;;) {
    Frame frame;
    std::size_t consumed = 0;
    const FrameStatus status = decode_frame(
        std::span<const std::uint8_t>(peer.in.data() + off,
                                      peer.in.size() - off),
        frame, consumed);
    if (status == FrameStatus::kBad) return false;
    if (status == FrameStatus::kNeedMore) break;
    off += consumed;
    if (!handle_frame(fleet, peer, frame)) return false;
  }
  peer.in.erase(peer.in.begin(), peer.in.begin() + static_cast<std::ptrdiff_t>(off));
  return true;
}

[[nodiscard]] bool service_write(Peer& peer) {
  while (!peer.out.empty()) {
    const ssize_t n = ::write(peer.fd, peer.out.data(), peer.out.size());
    if (n > 0) {
      peer.out.erase(peer.out.begin(), peer.out.begin() + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void accept_remote_workers(Fleet& fleet) {
  for (;;) {
    const int fd = ::accept(fleet.listen_fd, nullptr, nullptr);
    if (fd < 0) {
      // Transient accept failures must not wedge the listener: a connection
      // that was reset between poll and accept (ECONNABORTED) or an
      // interrupting signal (EINTR) just means "try the next one".
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EAGAIN/EWOULDBLOCK (drained the backlog) or a real error
    }
    set_nonblocking(fd);
    Peer peer;
    peer.id = fleet.next_id++;
    peer.fd = fd;
    peer.pid = 0;
    peer.last_seen = Clock::now();
    peer.stats.worker_id = peer.id;
    peer.stats.remote = true;
    ++fleet.stats.workers;
    fleet.peers.push_back(std::move(peer));
    metrics().gauge("fleet.workers_live")
        .set(static_cast<std::int64_t>(fleet.peers.size()));
  }
}

Result<FleetOutcome> run_fleet_impl(const std::string& capture,
                                    const FleetOptions& opts) {
  if (opts.workers == 0) {
    return Err<FleetOutcome>("fleet: need at least one worker");
  }
  ::signal(SIGPIPE, SIG_IGN);
  const auto started = Clock::now();
  const std::size_t shard_count =
      opts.shards == 0 ? opts.workers : opts.shards;

  Fleet fleet{capture, opts};
  {
    const auto plan_start = Clock::now();
    auto plan = build_shard_plan(capture, shard_count, opts.analyzer.ingest,
                                 opts.analyzer.verify_checksums);
    if (!plan.ok()) return plan.take_error();
    fleet.plan = std::move(plan).value();
    fleet.stats.plan_wall_us = us_since(plan_start);
  }
  fleet.stats.shards = shard_count;
  fleet.stats.records = fleet.plan.records;
  fleet.stats.packets = fleet.plan.packets;
  fleet.stats.capture_bytes = fleet.plan.capture_bytes;
  for (std::uint32_t s = 0; s < shard_count; ++s) fleet.queue.push_back(s);
  metrics().gauge("fleet.queue_depth")
      .set(static_cast<std::int64_t>(fleet.queue.size()));

  const bool remote = !opts.listen.empty();
  if (remote) {
    auto listener = open_listener(opts.listen);
    if (!listener.ok()) return listener.take_error();
    fleet.listen_fd = listener.value();
  } else {
    for (std::size_t w = 0; w < opts.workers; ++w) {
      auto peer = spawn_local_worker(fleet.next_id, fleet.coordinator_fds());
      if (!peer.ok()) return peer.take_error();
      ++fleet.next_id;
      ++fleet.stats.workers;
      fleet.peers.push_back(std::move(peer).value());
    }
  }
  metrics().gauge("fleet.workers_live")
      .set(static_cast<std::int64_t>(fleet.peers.size()));

  const std::size_t error_budget = std::max<std::size_t>(4, shard_count * 2);
  std::size_t respawns_left = remote ? 0 : opts.max_respawns;

  std::vector<struct pollfd> fds;
  while (fleet.done < shard_count) {
    if (fleet.worker_errors > error_budget) {
      return Err<FleetOutcome>("fleet: workers kept failing (" +
                               fleet.last_error + ")");
    }
    // Declare dead anyone silent too long with work outstanding; requeue and
    // (local mode) refill the fleet.
    const auto now = Clock::now();
    for (std::size_t i = fleet.peers.size(); i-- > 0;) {
      Peer& peer = fleet.peers[i];
      if (peer.shard >= 0 &&
          std::chrono::duration_cast<std::chrono::milliseconds>(
              now - peer.last_seen)
                  .count() > opts.timeout_ms) {
        drop_peer(fleet, i, /*reassign=*/true);
      }
    }
    while (!remote && fleet.peers.size() < opts.workers &&
           respawns_left > 0 && !fleet.queue.empty()) {
      auto peer = spawn_local_worker(fleet.next_id, fleet.coordinator_fds());
      if (!peer.ok()) break;
      ++fleet.next_id;
      --respawns_left;
      ++fleet.stats.respawns;
      ++fleet.stats.workers;
      metrics().counter("fleet.respawns").inc();
      fleet.peers.push_back(std::move(peer).value());
    }
    if (fleet.peers.empty() && fleet.listen_fd < 0) {
      return Err<FleetOutcome>(
          "fleet: every worker died with shards outstanding" +
          (fleet.last_error.empty() ? std::string()
                                    : " (last error: " + fleet.last_error +
                                          ")"));
    }
    for (Peer& peer : fleet.peers) {
      if (peer.hello && peer.shard < 0 && !fleet.queue.empty()) {
        enqueue_assignment(fleet, peer);
      }
    }

    fds.clear();
    const std::size_t polled = fleet.peers.size();
    for (const Peer& peer : fleet.peers) {
      short events = POLLIN;
      if (!peer.out.empty()) events |= POLLOUT;
      fds.push_back({peer.fd, events, 0});
    }
    if (fleet.listen_fd >= 0) fds.push_back({fleet.listen_fd, POLLIN, 0});
    const int timeout_ms = static_cast<int>(
        opts.heartbeat_ms == 0 ? 100
                               : std::min<std::uint32_t>(100, opts.heartbeat_ms));
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      return Err<FleetOutcome>("fleet: poll failed");
    }
    if (fleet.listen_fd >= 0 && (fds.back().revents & POLLIN) != 0) {
      accept_remote_workers(fleet);
    }
    // Freshly accepted peers (index >= polled) have no pollfd this round.
    for (std::size_t i = std::min(polled, fleet.peers.size()); i-- > 0;) {
      Peer& peer = fleet.peers[i];
      const short revents = fds[i].revents;
      bool alive = true;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        alive = service_read(fleet, peer);
      }
      if (alive && (revents & POLLOUT) != 0) alive = service_write(peer);
      if (!alive) drop_peer(fleet, i, /*reassign=*/true);
    }
  }

  // All shards merged: release the fleet. Flushing blocks briefly per peer;
  // a worker that already died just fails the write, which is fine.
  for (std::size_t i = fleet.peers.size(); i-- > 0;) {
    Peer& peer = fleet.peers[i];
    set_blocking(peer.fd);
    if (!peer.out.empty()) {
      std::size_t off = 0;
      while (off < peer.out.size()) {
        const ssize_t n =
            ::write(peer.fd, peer.out.data() + off, peer.out.size() - off);
        if (n <= 0) break;
        off += static_cast<std::size_t>(n);
      }
      peer.out.clear();
    }
    (void)write_frame_fd(peer.fd, MsgType::kShutdown, {});
    ::close(peer.fd);
    peer.fd = -1;
    if (peer.pid > 0) (void)::waitpid(peer.pid, nullptr, 0);
    fleet.stats.per_worker.push_back(peer.stats);
  }
  if (fleet.listen_fd >= 0) ::close(fleet.listen_fd);
  std::sort(fleet.stats.per_worker.begin(), fleet.stats.per_worker.end(),
            [](const WorkerStats& a, const WorkerStats& b) {
              return a.worker_id < b.worker_id;
            });

  // Workers only ever saw clean planned records; the capture damage the plan
  // sweep absorbed is injected here, reproducing exactly what a whole-run
  // archive records (agg::build_archive).
  fleet.merged.ingest.add(fleet.plan.ingest);
  fleet.merged.budget_exhausted_runs +=
      fleet.plan.ingest.budget_exhausted ? 1 : 0;

  fleet.stats.total_wall_us = us_since(started);
  metrics().gauge("fleet.queue_depth").set(0);
  metrics().gauge("fleet.workers_live").set(0);
  return FleetOutcome{std::move(fleet.merged), std::move(fleet.stats)};
}

}  // namespace

Result<FleetOutcome> run_fleet(const std::string& capture,
                               const FleetOptions& opts) {
  return run_fleet_impl(capture, opts);
}

#else  // !unix

Result<FleetOutcome> run_fleet(const std::string& capture,
                               const FleetOptions& opts) {
  (void)capture;
  (void)opts;
  return Err<FleetOutcome>("fleet: not supported on this platform");
}

#endif

}  // namespace tdat::fleet
