// The fleet wire protocol (DESIGN.md §14): length-prefixed frames carrying
// coordinator<->worker messages over a pipe (forked local workers) or a TCP
// socket (remote workers) — the same bytes either way, so a remote fleet is
// the local fleet with longer wires.
//
// Framing: every frame is a fixed 16-byte header — u32le magic 'TDFW',
// u32le message type, u64le payload length — followed by the payload. The
// decoder is incremental (kNeedMore on a partial frame) and paranoid
// (kBad on a wrong magic, an unknown type, or an implausible length; the
// connection is then poisoned — there is no resync, a framing error means
// the peer is not speaking this protocol).
//
// Payloads are encoded with ByteWriter/ByteReader (util/bytes.hpp), fixed
// little-endian, strings and blobs as u32 length + bytes. Every decoder
// rejects trailing bytes: a payload that parses but is longer than its
// message is a protocol error, not slack.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pcap/record_runs.hpp"
#include "util/result.hpp"

namespace tdat::fleet {

inline constexpr std::uint32_t kWireMagic = 0x57464454;  // "TDFW" little-endian
inline constexpr std::size_t kFrameHeaderLen = 16;
// Largest payload a peer may send. Archives of multi-GB captures stay far
// below this; anything bigger is a corrupt length field, and believing it
// would make one bad frame allocate gigabytes.
inline constexpr std::uint64_t kMaxPayload = 1ull << 30;

enum class MsgType : std::uint32_t {
  kHello = 1,      // worker -> coordinator: ready for assignments
  kAssign = 2,     // coordinator -> worker: one shard's offset runs
  kResult = 3,     // worker -> coordinator: the shard's serialized archive
  kHeartbeat = 4,  // worker -> coordinator: liveness while analyzing
  kError = 5,      // worker -> coordinator: assignment failed (fatal for it)
  kShutdown = 6,   // coordinator -> worker: no more shards, exit cleanly
};

[[nodiscard]] const char* to_string(MsgType type);

struct Frame {
  MsgType type = MsgType::kHello;
  std::vector<std::uint8_t> payload;
};

enum class FrameStatus : std::uint8_t {
  kOk,        // one frame decoded; `consumed` bytes were eaten
  kNeedMore,  // the buffer holds a prefix of a valid frame
  kBad,       // not this protocol (bad magic/type/length) — drop the peer
};

// Decodes one frame from the front of `buf`. On kOk, out/consumed are set;
// on kNeedMore/kBad, consumed is 0.
[[nodiscard]] FrameStatus decode_frame(std::span<const std::uint8_t> buf,
                                       Frame& out, std::size_t& consumed);

// Appends header + payload for one frame to `buf`.
void append_frame(std::vector<std::uint8_t>& buf, MsgType type,
                  std::span<const std::uint8_t> payload);

// Blocking fd helpers for the worker side (the coordinator runs nonblocking
// buffers through decode_frame instead). Both loop over partial transfers
// and EINTR; false means the peer is gone or not speaking the protocol.
[[nodiscard]] bool write_frame_fd(int fd, MsgType type,
                                  std::span<const std::uint8_t> payload);
[[nodiscard]] bool read_frame_fd(int fd, Frame& out);

// ---------------------------------------------------------------- messages

struct HelloMessage {
  std::uint32_t protocol_version = 1;
  std::string host;  // informational, shows up in --stats

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static Result<HelloMessage> decode(
      std::span<const std::uint8_t> payload);
};

// One shard of work: mmap `capture`, ingest exactly `runs`, stream the
// archive back. Carries every analyzer knob that affects archive bytes, so
// a remote worker with different defaults still produces the coordinator's
// answer.
struct AssignMessage {
  std::uint32_t worker_id = 0;
  std::uint32_t shard_index = 0;
  std::string capture;
  std::string run_id;
  std::uint32_t jobs = 1;           // analysis threads inside the worker
  std::uint8_t location = 0;        // SnifferLocation
  std::uint8_t verify_checksums = 0;
  std::uint64_t pass_bits = ~0ull;  // PassSelection
  std::uint32_t heartbeat_ms = 0;   // 0 = no heartbeats
  std::vector<RecordRun> runs;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static Result<AssignMessage> decode(
      std::span<const std::uint8_t> payload);
};

struct ResultMessage {
  std::uint32_t worker_id = 0;
  std::uint32_t shard_index = 0;
  std::uint64_t records = 0;
  std::uint64_t packets = 0;
  std::uint64_t connections = 0;
  std::uint64_t bytes_ingested = 0;
  std::uint64_t wall_us = 0;
  std::vector<std::uint8_t> archive;  // serialized .tdagg

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static Result<ResultMessage> decode(
      std::span<const std::uint8_t> payload);
};

struct HeartbeatMessage {
  std::uint32_t worker_id = 0;
  std::uint32_t shard_index = 0;
  std::uint64_t records_done = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static Result<HeartbeatMessage> decode(
      std::span<const std::uint8_t> payload);
};

struct ErrorMessage {
  std::uint32_t worker_id = 0;
  std::uint32_t shard_index = 0;
  std::string message;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static Result<ErrorMessage> decode(
      std::span<const std::uint8_t> payload);
};

}  // namespace tdat::fleet
