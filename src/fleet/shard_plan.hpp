// Zero-copy shard planning (DESIGN.md §14): one batched-decode sweep over
// the mmap'd capture that assigns every record to a connection-hash bucket
// and emits, per shard, a list of (offset, count) record runs — never
// materializing a shard pcap. A worker given a shard's runs mmaps the same
// capture and ingests exactly those records (core/trace_source.hpp
// OffsetRunSource), so the only bytes ever written for an N-way scale-out
// are the N result archives.
//
// Equivalence contract: the sharding rule is the one `tdat shard` uses —
// `conn_key_hash(make_conn_key(pkt)) % shards`, undecodable records to
// shard 0 — so every packet of a connection lands with one worker and the
// merged worker archives reproduce the whole-run archive byte for byte.
// The sweep reads the capture through the same PcapStream machinery as a
// real run (same resync, same error budget), and keeps the resulting
// IngestDiagnostics in the plan: workers only ever see clean planned
// records, so the coordinator injects the plan-time diagnostics into the
// merged archive to keep damaged captures byte-identical too.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "pcap/ingest.hpp"
#include "pcap/record_runs.hpp"
#include "util/result.hpp"

namespace tdat::fleet {

struct ShardRuns {
  std::vector<RecordRun> runs;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;  // record bytes incl. 16-byte headers
};

struct ShardPlan {
  std::string capture;
  std::uint64_t capture_bytes = 0;  // bytes the sweep consumed (incl. header)
  std::uint64_t records = 0;
  std::uint64_t packets = 0;        // records that decoded to TCP packets
  IngestDiagnostics ingest;         // capture damage found by the sweep
  std::vector<ShardRuns> shards;

  // Machine-readable plan for `tdat shard --plan`: everything a scheduler
  // needs to hand shards to workers by hand.
  [[nodiscard]] std::string to_json() const;
};

// Sweeps `capture` once and builds the N-shard plan. `verify_checksums`
// must match the analyzer's setting only for undecodable-record placement;
// any consistent value preserves merge equivalence. Fails when the capture
// is unreadable or not a pcap.
[[nodiscard]] Result<ShardPlan> build_shard_plan(
    const std::string& capture, std::size_t shards,
    const IngestPolicy& policy = {}, bool verify_checksums = false);

}  // namespace tdat::fleet
