#include "fleet/shard_plan.hpp"

#include <array>
#include <cstdio>
#include <memory>
#include <span>
#include <utility>

#include "pcap/decode_batch.hpp"
#include "pcap/mmap_file.hpp"
#include "pcap/pcap_stream.hpp"
#include "tcp/connection.hpp"

namespace tdat::fleet {

namespace {

// The whole capture as one contiguous pinned image: mmap when possible,
// otherwise (pipes gone through a file copy, exotic filesystems) a one-shot
// slurp into a heap buffer behind the same shared_ptr contract.
struct CaptureImage {
  std::shared_ptr<const void> pin;
  std::span<const std::uint8_t> image;
};

Result<CaptureImage> load_capture_image(const std::string& path) {
  if (auto mapped = MappedFile::map(path); mapped.ok()) {
    return CaptureImage{mapped.value().share(), mapped.value().bytes()};
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Err<CaptureImage>("fleet: cannot open " + path);
  }
  auto buf = std::make_shared<std::vector<std::uint8_t>>();
  std::uint8_t chunk[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf->insert(buf->end(), chunk, chunk + got);
  }
  std::fclose(f);
  std::span<const std::uint8_t> image(buf->data(), buf->size());
  return CaptureImage{std::move(buf), image};
}

void add_record(ShardRuns& shard, std::uint64_t& expected_next,
                std::uint64_t offset, std::uint64_t record_bytes) {
  // Consecutive records for the same shard coalesce into one run; a gap
  // (another shard's records in between, or resync-skipped garbage) starts
  // a new one.
  if (!shard.runs.empty() && offset == expected_next) {
    ++shard.runs.back().count;
  } else {
    shard.runs.push_back({offset, 1});
  }
  expected_next = offset + record_bytes;
  ++shard.records;
  shard.bytes += record_bytes;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

}  // namespace

std::string ShardPlan::to_json() const {
  std::string out = "{\"capture\": ";
  append_json_string(out, capture);
  out += ", \"capture_bytes\": ";
  append_u64(out, capture_bytes);
  out += ", \"records\": ";
  append_u64(out, records);
  out += ", \"packets\": ";
  append_u64(out, packets);
  out += ", \"shards\": ";
  append_u64(out, shards.size());
  out += ", \"ingest\": " + ingest.to_json();
  out += ", \"shard_runs\": [";
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (s != 0) out += ", ";
    const ShardRuns& shard = shards[s];
    out += "{\"shard\": ";
    append_u64(out, s);
    out += ", \"records\": ";
    append_u64(out, shard.records);
    out += ", \"bytes\": ";
    append_u64(out, shard.bytes);
    out += ", \"runs\": [";
    for (std::size_t i = 0; i < shard.runs.size(); ++i) {
      if (i != 0) out += ", ";
      out += "{\"offset\": ";
      append_u64(out, shard.runs[i].offset);
      out += ", \"count\": ";
      append_u64(out, shard.runs[i].count);
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

Result<ShardPlan> build_shard_plan(const std::string& capture,
                                   std::size_t shards,
                                   const IngestPolicy& policy,
                                   bool verify_checksums) {
  if (shards == 0) {
    return Err<ShardPlan>("fleet: shard count must be positive");
  }
  TDAT_TRY(img, load_capture_image(capture));
  TDAT_TRY(stream, PcapStream::from_image(img.pin, img.image, policy));

  ShardPlan plan;
  plan.capture = capture;
  plan.shards.resize(shards);
  // Per shard: where that shard's last run ends, for run coalescing.
  std::vector<std::uint64_t> expected_next(shards, 0);

  std::array<StreamRecord, kDecodeBatch> batch;
  std::array<std::uint64_t, kDecodeBatch> offsets;
  DecodeScratch scratch;
  std::vector<DecodedPacket> decoded;
  std::size_t index = 0;
  for (;;) {
    std::size_t n = 0;
    while (n < kDecodeBatch && stream.next(batch[n])) {
      // from_image serves records zero-copy: the data span points into the
      // image, 16 header bytes before it. That difference IS the plan.
      offsets[n] = static_cast<std::uint64_t>(batch[n].data.data() -
                                              img.image.data()) -
                   16;
      ++n;
    }
    if (n == 0) break;
    std::size_t base = 0;
    while (base < n) {
      decoded.clear();
      const std::size_t used =
          decode_records(std::span<const StreamRecord>(batch.data() + base,
                                                       n - base),
                         index, verify_checksums, scratch, decoded);
      std::size_t pkt = 0;
      for (std::size_t lane = 0; lane < used; ++lane) {
        // Undecodable (non-TCP / truncated) records go to shard 0 so nothing
        // is lost — same rule as `tdat shard`.
        std::size_t shard = 0;
        if (pkt < decoded.size() && decoded[pkt].index == index + lane) {
          shard = conn_key_hash(make_conn_key(decoded[pkt])) % shards;
          ++pkt;
          ++plan.packets;
        }
        add_record(plan.shards[shard], expected_next[shard],
                   offsets[base + lane], 16 + batch[base + lane].data.size());
      }
      if (used == 0) break;  // cannot happen with n > base; stay safe
      index += used;
      base += used;
    }
    // Release the pins before the next refill so chunked fallback arenas
    // recycle (no-op in the zero-copy common case).
    for (std::size_t i = 0; i < n; ++i) batch[i].arena.reset();
  }

  plan.ingest = stream.diagnostics();
  plan.records = stream.records_read();
  plan.capture_bytes = stream.bytes_read();
  return plan;
}

}  // namespace tdat::fleet
