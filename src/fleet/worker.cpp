#include "fleet/worker.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <netdb.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "agg/sink.hpp"
#include "core/analyzer.hpp"
#include "core/report.hpp"
#include "core/trace_source.hpp"
#include "fleet/wire.hpp"

namespace tdat::fleet {

#if defined(__unix__) || defined(__APPLE__)

namespace {

// Periodic liveness pings while an assignment runs. Writes share the frame
// mutex with the result path, so heartbeat and result frames never interleave
// on the wire.
class Heartbeater {
 public:
  Heartbeater(int fd, std::mutex& write_mu, std::uint32_t worker_id,
              std::uint32_t shard_index, std::uint32_t interval_ms)
      : fd_(fd),
        write_mu_(write_mu),
        worker_id_(worker_id),
        shard_index_(shard_index),
        interval_ms_(interval_ms) {
    if (interval_ms_ != 0) thread_ = std::thread([this] { run(); });
  }

  ~Heartbeater() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  Heartbeater(const Heartbeater&) = delete;
  Heartbeater& operator=(const Heartbeater&) = delete;

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                       [this] { return stop_; })) {
        return;
      }
      HeartbeatMessage hb;
      hb.worker_id = worker_id_;
      hb.shard_index = shard_index_;
      lock.unlock();
      {
        std::lock_guard<std::mutex> write_lock(write_mu_);
        // A failed heartbeat write means the coordinator is gone; the main
        // loop will find out on its next read, nothing to do here.
        (void)write_frame_fd(fd_, MsgType::kHeartbeat, hb.encode());
      }
      lock.lock();
    }
  }

  int fd_;
  std::mutex& write_mu_;
  std::uint32_t worker_id_;
  std::uint32_t shard_index_;
  std::uint32_t interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

// The deterministic mid-shard crash for reassignment tests: die the moment
// the named assignment lands, before any work or reply.
void maybe_kill_self(std::uint32_t worker_id) {
  const char* kill = std::getenv("TDAT_FLEET_KILL_WORKER");
  if (kill != nullptr && std::strtoul(kill, nullptr, 10) == worker_id) {
    _exit(43);
  }
}

bool send_error(int fd, std::mutex& write_mu, const AssignMessage& assign,
                std::string message) {
  ErrorMessage err;
  err.worker_id = assign.worker_id;
  err.shard_index = assign.shard_index;
  err.message = std::move(message);
  std::lock_guard<std::mutex> lock(write_mu);
  return write_frame_fd(fd, MsgType::kError, err.encode());
}

bool serve_assignment(int fd, std::mutex& write_mu,
                      const AssignMessage& assign) {
  maybe_kill_self(assign.worker_id);
  Heartbeater heartbeat(fd, write_mu, assign.worker_id, assign.shard_index,
                        assign.heartbeat_ms);

  auto source = OffsetRunSource::open(assign.capture, assign.runs,
                                      assign.verify_checksums != 0);
  if (!source.ok()) {
    return send_error(fd, write_mu, assign, source.error());
  }

  AnalyzerOptions opts;
  opts.location = static_cast<SnifferLocation>(assign.location);
  opts.jobs = assign.jobs == 0 ? 1 : assign.jobs;
  opts.verify_checksums = assign.verify_checksums != 0;
  opts.passes.bits = assign.pass_bits;

  const auto started = std::chrono::steady_clock::now();
  const TraceAnalysis analysis = run_pipeline(source.value(), opts);
  if (source.value().failed()) {
    // The plan no longer matches the capture image — a partial archive would
    // silently drop connections, so fail the whole shard instead.
    return send_error(fd, write_mu, assign, source.value().error());
  }
  const ReportModel model = build_report_model(analysis);
  const std::string archive =
      agg::build_archive(model, assign.run_id).serialize();

  ResultMessage result;
  result.worker_id = assign.worker_id;
  result.shard_index = assign.shard_index;
  result.records = analysis.stats.records;
  result.packets = analysis.stats.packets;
  result.connections = analysis.stats.connections;
  result.bytes_ingested = analysis.stats.bytes_ingested;
  result.wall_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  result.archive.assign(archive.begin(), archive.end());
  std::lock_guard<std::mutex> lock(write_mu);
  return write_frame_fd(fd, MsgType::kResult, result.encode());
}

}  // namespace

int run_worker(int fd) {
  // A coordinator that died mid-write must surface as a failed write, not a
  // process-killing SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  std::mutex write_mu;
  {
    HelloMessage hello;
    char host[256] = {};
    if (::gethostname(host, sizeof(host) - 1) == 0) hello.host = host;
    std::lock_guard<std::mutex> lock(write_mu);
    if (!write_frame_fd(fd, MsgType::kHello, hello.encode())) return 1;
  }
  for (;;) {
    Frame frame;
    if (!read_frame_fd(fd, frame)) return 1;
    switch (frame.type) {
      case MsgType::kAssign: {
        auto assign = AssignMessage::decode(frame.payload);
        if (!assign.ok()) return 1;
        if (!serve_assignment(fd, write_mu, assign.value())) return 1;
        break;
      }
      case MsgType::kShutdown:
        return 0;
      case MsgType::kHeartbeat:
        break;  // coordinator pings are allowed, nothing to do
      default:
        return 1;  // a frame only workers send — the peer is confused
    }
  }
}

namespace {

// One resolve + connect attempt. Resolution is redone per attempt on purpose:
// a coordinator restarting behind a DNS name may come back elsewhere.
int dial_coordinator(const std::string& host, const std::string& port) {
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  if (::getaddrinfo(host.empty() ? "127.0.0.1" : host.c_str(), port.c_str(),
                    &hints, &res) != 0) {
    return -1;
  }
  int fd = -1;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  return fd;
}

unsigned long env_ms(const char* name, unsigned long def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const unsigned long n = std::strtoul(v, &end, 10);
  return end == v || *end != '\0' ? def : n;
}

}  // namespace

int run_worker_connect(const std::string& host_port) {
  const std::size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon + 1 >= host_port.size()) {
    std::fprintf(stderr, "tdat fleet: --connect needs HOST:PORT\n");
    return 2;
  }
  const std::string host = host_port.substr(0, colon);
  const std::string port = host_port.substr(colon + 1);

  // A coordinator restart (or a worker started before the listener) must not
  // strand the worker: retry with exponential backoff + jitter, capped, until
  // the attempt budget runs out. Env knobs exist so tests can tighten the
  // schedule; the defaults give up after ~10 s of a genuinely absent peer.
  const unsigned long base_ms = env_ms("TDAT_FLEET_RECONNECT_BASE_MS", 50);
  const unsigned long cap_ms = env_ms("TDAT_FLEET_RECONNECT_MAX_MS", 2000);
  const unsigned long max_attempts =
      env_ms("TDAT_FLEET_RECONNECT_ATTEMPTS", 10);
  std::uint64_t jitter_state =
      static_cast<std::uint64_t>(::getpid()) * 0x9E3779B97F4A7C15ull + 1;
  const auto backoff_sleep = [&](unsigned failures) {
    unsigned long delay = base_ms;
    for (unsigned i = 1; i < failures && delay < cap_ms; ++i) delay *= 2;
    delay = std::min(delay, cap_ms);
    // xorshift jitter in [0, delay/4]: desynchronizes a fleet of workers all
    // retrying the same restarted listener.
    jitter_state ^= jitter_state << 13;
    jitter_state ^= jitter_state >> 7;
    jitter_state ^= jitter_state << 17;
    delay += delay == 0 ? 0 : jitter_state % (delay / 4 + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  };

  unsigned failures = 0;
  for (;;) {
    const int fd = dial_coordinator(host, port);
    if (fd < 0) {
      if (++failures > max_attempts) {
        std::fprintf(stderr,
                     "tdat fleet: cannot connect to %s after %lu attempts\n",
                     host_port.c_str(), max_attempts);
        return 3;
      }
      backoff_sleep(failures);
      continue;
    }
    failures = 0;
    const int code = run_worker(fd);
    ::close(fd);
    if (code == 0) return 0;  // clean Shutdown from the coordinator
    // The connection died mid-session (coordinator crash or restart). Any
    // half-served shard is the coordinator's to reassign; reconnect and
    // offer to serve again.
    if (++failures > max_attempts) return code;
    backoff_sleep(failures);
  }
}

#else  // !unix

int run_worker(int fd) {
  (void)fd;
  return 1;
}

int run_worker_connect(const std::string& host_port) {
  (void)host_port;
  std::fprintf(stderr, "tdat fleet: not supported on this platform\n");
  return 1;
}

#endif

}  // namespace tdat::fleet
