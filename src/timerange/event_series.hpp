// EventSeries (§III-A): an ordered set of time durations, each carrying a
// reference to the trace detail behind it.
//
// Each event is a 2-tuple (event_duration, event_data). The duration is a
// half-open [start, end) in microseconds; the data records how many packets
// and bytes the event covers plus an opaque reference (e.g. the index of the
// first trace packet involved) so that a high-level observation can be
// cross-referenced back to the raw trace — the property the paper calls out
// as enabling both "high-level quantification and detailed inspection".
//
// Events in one series may overlap (e.g. overlapping retransmission
// recoveries); the merged RangeSet view is what delay-ratio measurement uses.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "timerange/range_set.hpp"

namespace tdat {

struct Event {
  TimeRange range;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  // Opaque back-reference into the source trace (packet index); -1 if n/a.
  std::int64_t trace_ref = -1;

  friend bool operator==(const Event&, const Event&) = default;
};

class EventSeries {
 public:
  EventSeries() = default;
  explicit EventSeries(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void add_event(Event e);
  void add(TimeRange r, std::uint64_t packets = 0, std::uint64_t bytes = 0,
           std::int64_t trace_ref = -1) {
    add_event(Event{r, packets, bytes, trace_ref});
  }

  // Drops all events but keeps the name and the event/merged-range buffer
  // capacity — the reset step when a series slot is rebuilt for a new
  // connection (see SeriesRegistry::open).
  void clear_events() noexcept {
    events_.clear();
    merged_.clear();
    merged_valid_ = true;
  }
  // Replace the event list with a copy of `other`'s (vector copy-assign, so
  // existing capacity is reused). The name is kept — this is the
  // allocation-free form of renamed().
  void assign_events_from(const EventSeries& other) {
    events_ = other.events_;
    merged_valid_ = false;
  }
  // Replace the events with one zero-payload event per range — the
  // allocation-free form of from_ranges() for a reused series.
  void assign_ranges(const RangeSet& ranges) {
    clear_events();
    for (const TimeRange& r : ranges.ranges()) add(r);
  }

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t count() const { return events_.size(); }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  // Merged time coverage; the basis of "series size" (§III-D).
  [[nodiscard]] const RangeSet& ranges() const;
  [[nodiscard]] Micros size() const { return ranges().size(); }

  [[nodiscard]] std::uint64_t total_packets() const;
  [[nodiscard]] std::uint64_t total_bytes() const;

  // Events overlapping the query window, preserving payloads — the
  // "detailed inspection" path.
  [[nodiscard]] std::vector<Event> query(TimeRange window) const;

  // Interpretation rule (§III-C2): clone under a new name.
  [[nodiscard]] EventSeries renamed(std::string new_name) const;

  // Set-algebra constructors (§III-C3, Rule 4). The results are pure
  // time-coverage series: payload counters do not survive set algebra.
  [[nodiscard]] static EventSeries from_ranges(std::string name, RangeSet ranges);
  [[nodiscard]] EventSeries intersect(const EventSeries& other,
                                      std::string name) const;
  [[nodiscard]] EventSeries unite(const EventSeries& other,
                                  std::string name) const;
  [[nodiscard]] EventSeries subtract(const EventSeries& other,
                                     std::string name) const;

 private:
  std::string name_;
  std::vector<Event> events_;  // kept sorted by range.begin
  // Cache of the merged coverage, rebuilt in place on demand so that
  // invalidation (add_event) never frees the underlying vector.
  mutable RangeSet merged_;
  mutable bool merged_valid_ = true;
};

// A named collection of series for one analyzed connection. T-DAT generates
// 34 internal series (§III-C); users may register additional ones.
//
// Storage is a flat vector sorted by name. Entries are never erased, only
// marked dead by reset(), so when a registry (inside a reused
// ConnectionAnalysis) is rebuilt for another connection, open() hands back
// the existing slot with its buffers intact and the rebuild allocates
// nothing.
class SeriesRegistry {
 public:
  // Adds or replaces a series under its own name.
  void put(EventSeries series);

  // Returns the live series named `name`, creating or reviving the slot as
  // needed. The returned series is empty (clear_events) but keeps whatever
  // buffer capacity the slot accumulated — the allocation-free way to build
  // a series in place.
  [[nodiscard]] EventSeries& open(std::string_view name);

  // Marks every slot dead and clears its events, keeping all buffers. A
  // dead slot is invisible to has/get/names until reopened.
  void reset() noexcept;

  [[nodiscard]] bool has(std::string_view name) const;
  // Precondition: has(name).
  [[nodiscard]] const EventSeries& get(std::string_view name) const;
  [[nodiscard]] EventSeries& get_mutable(std::string_view name);

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t count() const { return live_; }

 private:
  struct Entry {
    EventSeries series;
    bool live = true;
  };
  [[nodiscard]] const Entry* find(std::string_view name) const;
  [[nodiscard]] Entry* find(std::string_view name);

  std::vector<Entry> entries_;  // sorted by series.name()
  std::size_t live_ = 0;
};

}  // namespace tdat
