// EventSeries (§III-A): an ordered set of time durations, each carrying a
// reference to the trace detail behind it.
//
// Each event is a 2-tuple (event_duration, event_data). The duration is a
// half-open [start, end) in microseconds; the data records how many packets
// and bytes the event covers plus an opaque reference (e.g. the index of the
// first trace packet involved) so that a high-level observation can be
// cross-referenced back to the raw trace — the property the paper calls out
// as enabling both "high-level quantification and detailed inspection".
//
// Events in one series may overlap (e.g. overlapping retransmission
// recoveries); the merged RangeSet view is what delay-ratio measurement uses.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "timerange/range_set.hpp"

namespace tdat {

struct Event {
  TimeRange range;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  // Opaque back-reference into the source trace (packet index); -1 if n/a.
  std::int64_t trace_ref = -1;

  friend bool operator==(const Event&, const Event&) = default;
};

class EventSeries {
 public:
  EventSeries() = default;
  explicit EventSeries(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void add_event(Event e);
  void add(TimeRange r, std::uint64_t packets = 0, std::uint64_t bytes = 0,
           std::int64_t trace_ref = -1) {
    add_event(Event{r, packets, bytes, trace_ref});
  }

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t count() const { return events_.size(); }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  // Merged time coverage; the basis of "series size" (§III-D).
  [[nodiscard]] const RangeSet& ranges() const;
  [[nodiscard]] Micros size() const { return ranges().size(); }

  [[nodiscard]] std::uint64_t total_packets() const;
  [[nodiscard]] std::uint64_t total_bytes() const;

  // Events overlapping the query window, preserving payloads — the
  // "detailed inspection" path.
  [[nodiscard]] std::vector<Event> query(TimeRange window) const;

  // Interpretation rule (§III-C2): clone under a new name.
  [[nodiscard]] EventSeries renamed(std::string new_name) const;

  // Set-algebra constructors (§III-C3, Rule 4). The results are pure
  // time-coverage series: payload counters do not survive set algebra.
  [[nodiscard]] static EventSeries from_ranges(std::string name, RangeSet ranges);
  [[nodiscard]] EventSeries intersect(const EventSeries& other,
                                      std::string name) const;
  [[nodiscard]] EventSeries unite(const EventSeries& other,
                                  std::string name) const;
  [[nodiscard]] EventSeries subtract(const EventSeries& other,
                                     std::string name) const;

 private:
  std::string name_;
  std::vector<Event> events_;  // kept sorted by range.begin
  mutable std::optional<RangeSet> merged_;  // cache, invalidated by add()
};

// A named collection of series for one analyzed connection. T-DAT generates
// 34 internal series (§III-C); users may register additional ones.
class SeriesRegistry {
 public:
  // Adds or replaces a series under its own name.
  void put(EventSeries series);

  [[nodiscard]] bool has(const std::string& name) const;
  // Precondition: has(name).
  [[nodiscard]] const EventSeries& get(const std::string& name) const;
  [[nodiscard]] EventSeries& get_mutable(const std::string& name);

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t count() const { return series_.size(); }

 private:
  std::map<std::string, EventSeries> series_;
};

}  // namespace tdat
