#include "timerange/event_series.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tdat {

void EventSeries::add_event(Event e) {
  if (e.range.empty()) return;
  merged_.reset();
  // Common case: events are appended in time order while scanning a trace.
  if (events_.empty() || events_.back().range.begin <= e.range.begin) {
    events_.push_back(e);
    return;
  }
  auto it = std::upper_bound(
      events_.begin(), events_.end(), e.range.begin,
      [](Micros t, const Event& ev) { return t < ev.range.begin; });
  events_.insert(it, e);
}

const RangeSet& EventSeries::ranges() const {
  if (!merged_) {
    RangeSet rs;
    for (const Event& e : events_) rs.insert(e.range);
    merged_ = std::move(rs);
  }
  return *merged_;
}

std::uint64_t EventSeries::total_packets() const {
  std::uint64_t n = 0;
  for (const Event& e : events_) n += e.packets;
  return n;
}

std::uint64_t EventSeries::total_bytes() const {
  std::uint64_t n = 0;
  for (const Event& e : events_) n += e.bytes;
  return n;
}

std::vector<Event> EventSeries::query(TimeRange window) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.range.begin >= window.end) break;
    if (e.range.overlaps(window)) out.push_back(e);
  }
  return out;
}

EventSeries EventSeries::renamed(std::string new_name) const {
  EventSeries out = *this;
  out.set_name(std::move(new_name));
  return out;
}

EventSeries EventSeries::from_ranges(std::string name, RangeSet ranges) {
  EventSeries out(std::move(name));
  for (const TimeRange& r : ranges.ranges()) out.add(r);
  return out;
}

EventSeries EventSeries::intersect(const EventSeries& other,
                                   std::string name) const {
  return from_ranges(std::move(name), ranges().set_intersection(other.ranges()));
}

EventSeries EventSeries::unite(const EventSeries& other, std::string name) const {
  return from_ranges(std::move(name), ranges().set_union(other.ranges()));
}

EventSeries EventSeries::subtract(const EventSeries& other,
                                  std::string name) const {
  return from_ranges(std::move(name), ranges().set_difference(other.ranges()));
}

void SeriesRegistry::put(EventSeries series) {
  TDAT_EXPECTS(!series.name().empty());
  series_[series.name()] = std::move(series);
}

bool SeriesRegistry::has(const std::string& name) const {
  return series_.contains(name);
}

const EventSeries& SeriesRegistry::get(const std::string& name) const {
  auto it = series_.find(name);
  TDAT_EXPECTS(it != series_.end());
  return it->second;
}

EventSeries& SeriesRegistry::get_mutable(const std::string& name) {
  auto it = series_.find(name);
  TDAT_EXPECTS(it != series_.end());
  return it->second;
}

std::vector<std::string> SeriesRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, _] : series_) out.push_back(name);
  return out;
}

}  // namespace tdat
