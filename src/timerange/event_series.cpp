#include "timerange/event_series.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace tdat {

void EventSeries::add_event(Event e) {
  if (e.range.empty()) return;
  merged_valid_ = false;
  // Common case: events are appended in time order while scanning a trace.
  if (events_.empty() || events_.back().range.begin <= e.range.begin) {
    events_.push_back(e);
    return;
  }
  auto it = std::upper_bound(
      events_.begin(), events_.end(), e.range.begin,
      [](Micros t, const Event& ev) { return t < ev.range.begin; });
  events_.insert(it, e);
}

const RangeSet& EventSeries::ranges() const {
  if (!merged_valid_) {
    merged_.clear();
    for (const Event& e : events_) merged_.insert(e.range);
    merged_valid_ = true;
  }
  return merged_;
}

std::uint64_t EventSeries::total_packets() const {
  std::uint64_t n = 0;
  for (const Event& e : events_) n += e.packets;
  return n;
}

std::uint64_t EventSeries::total_bytes() const {
  std::uint64_t n = 0;
  for (const Event& e : events_) n += e.bytes;
  return n;
}

std::vector<Event> EventSeries::query(TimeRange window) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.range.begin >= window.end) break;
    if (e.range.overlaps(window)) out.push_back(e);
  }
  return out;
}

EventSeries EventSeries::renamed(std::string new_name) const {
  EventSeries out = *this;
  out.set_name(std::move(new_name));
  return out;
}

EventSeries EventSeries::from_ranges(std::string name, RangeSet ranges) {
  EventSeries out(std::move(name));
  for (const TimeRange& r : ranges.ranges()) out.add(r);
  return out;
}

EventSeries EventSeries::intersect(const EventSeries& other,
                                   std::string name) const {
  return from_ranges(std::move(name), ranges().set_intersection(other.ranges()));
}

EventSeries EventSeries::unite(const EventSeries& other, std::string name) const {
  return from_ranges(std::move(name), ranges().set_union(other.ranges()));
}

EventSeries EventSeries::subtract(const EventSeries& other,
                                  std::string name) const {
  return from_ranges(std::move(name), ranges().set_difference(other.ranges()));
}

const SeriesRegistry::Entry* SeriesRegistry::find(std::string_view name) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const Entry& e, std::string_view n) {
        return std::string_view(e.series.name()) < n;
      });
  if (it == entries_.end() || std::string_view(it->series.name()) != name) {
    return nullptr;
  }
  return &*it;
}

SeriesRegistry::Entry* SeriesRegistry::find(std::string_view name) {
  return const_cast<Entry*>(std::as_const(*this).find(name));
}

void SeriesRegistry::put(EventSeries series) {
  TDAT_EXPECTS(!series.name().empty());
  if (Entry* e = find(series.name())) {
    if (!e->live) ++live_;
    e->series = std::move(series);
    e->live = true;
    return;
  }
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), std::string_view(series.name()),
      [](const Entry& e, std::string_view n) {
        return std::string_view(e.series.name()) < n;
      });
  entries_.insert(it, Entry{std::move(series), true});
  ++live_;
}

EventSeries& SeriesRegistry::open(std::string_view name) {
  TDAT_EXPECTS(!name.empty());
  if (Entry* e = find(name)) {
    if (!e->live) ++live_;
    e->live = true;
    e->series.clear_events();
    return e->series;
  }
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const Entry& e, std::string_view n) {
        return std::string_view(e.series.name()) < n;
      });
  it = entries_.insert(it, Entry{EventSeries(std::string(name)), true});
  ++live_;
  return it->series;
}

void SeriesRegistry::reset() noexcept {
  for (Entry& e : entries_) {
    e.live = false;
    e.series.clear_events();
  }
  live_ = 0;
}

bool SeriesRegistry::has(std::string_view name) const {
  const Entry* e = find(name);
  return e != nullptr && e->live;
}

const EventSeries& SeriesRegistry::get(std::string_view name) const {
  const Entry* e = find(name);
  TDAT_EXPECTS(e != nullptr && e->live);
  return e->series;
}

EventSeries& SeriesRegistry::get_mutable(std::string_view name) {
  Entry* e = find(name);
  TDAT_EXPECTS(e != nullptr && e->live);
  return e->series;
}

std::vector<std::string> SeriesRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(live_);
  for (const Entry& e : entries_) {
    if (e.live) out.push_back(e.series.name());
  }
  return out;
}

}  // namespace tdat
