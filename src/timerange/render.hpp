// Text rendering of event series as "binary square curves" (paper Fig. 11):
// one row per series, with time bucketed into fixed-width columns; a column
// is marked when the series covers any part of that bucket. This replaces
// the paper's BGPlot/SCNMPlot visualization with terminal output.
#pragma once

#include <string>
#include <vector>

#include "timerange/event_series.hpp"

namespace tdat {

struct RenderOptions {
  std::size_t width = 100;   // number of time buckets (columns)
  char on = '#';             // covered bucket
  char off = '.';            // uncovered bucket
};

// Renders the given series over the shared window [window.begin, window.end).
[[nodiscard]] std::string render_series(const std::vector<const EventSeries*>& series,
                                        TimeRange window,
                                        const RenderOptions& opts = {});

// CSV rows "series,begin_us,end_us,packets,bytes" for external plotting.
[[nodiscard]] std::string series_to_csv(const std::vector<const EventSeries*>& series);

}  // namespace tdat
