// RangeSet: the paper's core data structure (§III-A).
//
// An ordered set of disjoint half-open time ranges [begin, end) over int64
// microseconds. The original T-DAT prototype implemented this in Perl with
// big-integer sets (one integer per microsecond); here ranges are kept as a
// sorted vector of disjoint intervals, giving O(n) set algebra and O(log n)
// point queries instead of O(duration) — see `micro_rangeset` for the
// ablation against a bitmap-style reference.
//
// "size" of a set is the total covered duration (the sum of range lengths),
// which is exactly the quantity T-DAT divides by the analysis period to get
// a delay ratio (§III-D).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace tdat {

struct TimeRange {
  Micros begin = 0;
  Micros end = 0;  // exclusive

  [[nodiscard]] Micros length() const { return end - begin; }
  [[nodiscard]] bool empty() const { return end <= begin; }
  [[nodiscard]] bool contains(Micros t) const { return t >= begin && t < end; }
  [[nodiscard]] bool overlaps(const TimeRange& o) const {
    return begin < o.end && o.begin < end;
  }

  friend bool operator==(const TimeRange&, const TimeRange&) = default;
};

class RangeSet {
 public:
  RangeSet() = default;
  // Builds from arbitrary (possibly overlapping, unsorted) ranges.
  explicit RangeSet(std::vector<TimeRange> ranges);

  // Inserts one range, merging with neighbours. Empty ranges are ignored.
  // Amortized O(n) worst case, O(1) when appending in time order (the common
  // pattern while scanning a trace).
  void insert(TimeRange r);
  void insert(Micros begin, Micros end) { insert(TimeRange{begin, end}); }

  // --- queries -----------------------------------------------------------
  [[nodiscard]] bool empty() const { return ranges_.empty(); }
  [[nodiscard]] std::size_t count() const { return ranges_.size(); }
  // Total covered duration: the "set size" of §III-D.
  [[nodiscard]] Micros size() const;
  [[nodiscard]] bool contains(Micros t) const;
  // All stored ranges overlapping [begin, end).
  [[nodiscard]] std::vector<TimeRange> overlapping(TimeRange query) const;
  // Covered duration within [begin, end) only.
  [[nodiscard]] Micros size_within(TimeRange window) const;
  [[nodiscard]] const std::vector<TimeRange>& ranges() const { return ranges_; }
  // [min begin, max end), or an empty range if the set is empty.
  [[nodiscard]] TimeRange span() const;

  // --- capacity management -----------------------------------------------
  // Drops all ranges but keeps the vector's capacity — the reset step of the
  // scratch-reuse discipline (DESIGN.md "Memory & scalability").
  void clear() noexcept { ranges_.clear(); }
  void reserve(std::size_t n) { ranges_.reserve(n); }
  void swap(RangeSet& other) noexcept { ranges_.swap(other.ranges_); }

  // --- set algebra (all O(n + m)) ----------------------------------------
  [[nodiscard]] RangeSet set_union(const RangeSet& other) const;
  [[nodiscard]] RangeSet set_intersection(const RangeSet& other) const;
  // Ranges of *this not covered by `other`.
  [[nodiscard]] RangeSet set_difference(const RangeSet& other) const;
  // Complement within the window [window.begin, window.end).
  [[nodiscard]] RangeSet complement(TimeRange window) const;
  // The uncovered intervals strictly between consecutive ranges.
  [[nodiscard]] RangeSet gaps() const;

  // Allocation-free variants: `out` is cleared and refilled, retaining its
  // capacity, so a warm reused `out` makes the algebra allocation-free in
  // steady state. `out` must not alias *this or `other`.
  void union_into(const RangeSet& other, RangeSet& out) const;
  void intersect_into(const RangeSet& other, RangeSet& out) const;
  void subtract_into(const RangeSet& other, RangeSet& out) const;
  void complement_into(TimeRange window, RangeSet& out) const;
  void gaps_into(RangeSet& out) const;

  // In-place updates (*this = *this op other). `scratch` provides the spare
  // buffer: the result is merged into it and the buffers are swapped, so
  // capacity keeps circulating between *this and the scratch instead of
  // being reallocated per operation. `scratch` must not alias either set.
  void union_with(const RangeSet& other, RangeSet& scratch);
  void intersect_with(const RangeSet& other, RangeSet& scratch);
  void subtract_with(const RangeSet& other, RangeSet& scratch);

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const RangeSet&, const RangeSet&) = default;

 private:
  void check_invariant() const;

  // Sorted by begin; disjoint and non-adjacent (adjacent ranges are merged);
  // no empty ranges.
  std::vector<TimeRange> ranges_;
};

}  // namespace tdat
