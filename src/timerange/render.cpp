#include "timerange/render.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tdat {

std::string render_series(const std::vector<const EventSeries*>& series,
                          TimeRange window, const RenderOptions& opts) {
  TDAT_EXPECTS(opts.width > 0);
  if (window.empty()) return "";

  std::size_t label_width = 0;
  for (const EventSeries* s : series) {
    label_width = std::max(label_width, s->name().size());
  }

  const double bucket =
      static_cast<double>(window.length()) / static_cast<double>(opts.width);
  std::string out;
  // Header: time axis in seconds at the left and right edges.
  out += std::string(label_width, ' ') + "  " + format_seconds(window.begin);
  const std::string right = format_seconds(window.end);
  if (opts.width > right.size() + 8) {
    out.append(opts.width - right.size() - format_seconds(window.begin).size(), ' ');
    out += right;
  }
  out += '\n';

  for (const EventSeries* s : series) {
    out += s->name();
    out.append(label_width - s->name().size(), ' ');
    out += "  ";
    for (std::size_t col = 0; col < opts.width; ++col) {
      const auto lo = window.begin +
                      static_cast<Micros>(bucket * static_cast<double>(col));
      auto hi = window.begin +
                static_cast<Micros>(bucket * static_cast<double>(col + 1));
      hi = std::max(hi, lo + 1);  // never an empty probe bucket
      const bool covered = s->ranges().size_within({lo, hi}) > 0;
      out += covered ? opts.on : opts.off;
    }
    out += '\n';
  }
  return out;
}

std::string series_to_csv(const std::vector<const EventSeries*>& series) {
  std::string out = "series,begin_us,end_us,packets,bytes\n";
  for (const EventSeries* s : series) {
    for (const Event& e : s->events()) {
      out += s->name() + "," + std::to_string(e.range.begin) + "," +
             std::to_string(e.range.end) + "," + std::to_string(e.packets) +
             "," + std::to_string(e.bytes) + "\n";
    }
  }
  return out;
}

}  // namespace tdat
