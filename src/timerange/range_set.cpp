#include "timerange/range_set.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tdat {

RangeSet::RangeSet(std::vector<TimeRange> ranges) {
  std::erase_if(ranges, [](const TimeRange& r) { return r.empty(); });
  std::sort(ranges.begin(), ranges.end(),
            [](const TimeRange& a, const TimeRange& b) { return a.begin < b.begin; });
  for (const TimeRange& r : ranges) {
    if (!ranges_.empty() && r.begin <= ranges_.back().end) {
      ranges_.back().end = std::max(ranges_.back().end, r.end);
    } else {
      ranges_.push_back(r);
    }
  }
}

void RangeSet::insert(TimeRange r) {
  if (r.empty()) return;
  // Fast path: appending at or after the current tail.
  if (ranges_.empty() || r.begin > ranges_.back().end) {
    ranges_.push_back(r);
    return;
  }
  if (r.begin >= ranges_.back().begin) {
    ranges_.back().begin = std::min(ranges_.back().begin, r.begin);
    ranges_.back().end = std::max(ranges_.back().end, r.end);
    return;
  }
  // General path: find the first range whose end reaches r.begin, absorb all
  // ranges r touches, then splice.
  auto first = std::lower_bound(
      ranges_.begin(), ranges_.end(), r.begin,
      [](const TimeRange& a, Micros t) { return a.end < t; });
  auto it = first;
  while (it != ranges_.end() && it->begin <= r.end) {
    r.begin = std::min(r.begin, it->begin);
    r.end = std::max(r.end, it->end);
    ++it;
  }
  it = ranges_.erase(first, it);
  ranges_.insert(it, r);
}

Micros RangeSet::size() const {
  Micros total = 0;
  for (const TimeRange& r : ranges_) total += r.length();
  return total;
}

bool RangeSet::contains(Micros t) const {
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), t,
      [](Micros v, const TimeRange& a) { return v < a.begin; });
  if (it == ranges_.begin()) return false;
  --it;
  return it->contains(t);
}

std::vector<TimeRange> RangeSet::overlapping(TimeRange query) const {
  std::vector<TimeRange> out;
  if (query.empty()) return out;
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), query.begin,
      [](const TimeRange& a, Micros t) { return a.end <= t; });
  for (; it != ranges_.end() && it->begin < query.end; ++it) out.push_back(*it);
  return out;
}

Micros RangeSet::size_within(TimeRange window) const {
  // Walked in place (same probe as overlapping()) — this sits on the
  // allocation-free detector path, where materializing the overlap vector
  // would cost one heap allocation per query.
  Micros total = 0;
  if (window.empty()) return total;
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), window.begin,
      [](const TimeRange& a, Micros t) { return a.end <= t; });
  for (; it != ranges_.end() && it->begin < window.end; ++it) {
    total += std::min(it->end, window.end) - std::max(it->begin, window.begin);
  }
  return total;
}

TimeRange RangeSet::span() const {
  if (ranges_.empty()) return {};
  return {ranges_.front().begin, ranges_.back().end};
}

void RangeSet::union_into(const RangeSet& other, RangeSet& out) const {
  out.ranges_.clear();
  auto a = ranges_.begin();
  auto b = other.ranges_.begin();
  while (a != ranges_.end() || b != other.ranges_.end()) {
    TimeRange next;
    if (b == other.ranges_.end() ||
        (a != ranges_.end() && a->begin <= b->begin)) {
      next = *a++;
    } else {
      next = *b++;
    }
    if (!out.ranges_.empty() && next.begin <= out.ranges_.back().end) {
      out.ranges_.back().end = std::max(out.ranges_.back().end, next.end);
    } else {
      out.ranges_.push_back(next);
    }
  }
}

void RangeSet::intersect_into(const RangeSet& other, RangeSet& out) const {
  out.ranges_.clear();
  auto a = ranges_.begin();
  auto b = other.ranges_.begin();
  while (a != ranges_.end() && b != other.ranges_.end()) {
    const Micros lo = std::max(a->begin, b->begin);
    const Micros hi = std::min(a->end, b->end);
    if (lo < hi) out.ranges_.push_back({lo, hi});
    if (a->end < b->end) {
      ++a;
    } else {
      ++b;
    }
  }
}

void RangeSet::subtract_into(const RangeSet& other, RangeSet& out) const {
  out.ranges_.clear();
  auto b = other.ranges_.begin();
  for (TimeRange cur : ranges_) {
    while (b != other.ranges_.end() && b->end <= cur.begin) ++b;
    auto bb = b;
    while (!cur.empty() && bb != other.ranges_.end() && bb->begin < cur.end) {
      if (bb->begin > cur.begin) {
        out.ranges_.push_back({cur.begin, bb->begin});
      }
      cur.begin = std::max(cur.begin, bb->end);
      ++bb;
    }
    if (!cur.empty()) out.ranges_.push_back(cur);
  }
}

void RangeSet::complement_into(TimeRange window, RangeSet& out) const {
  out.ranges_.clear();
  if (window.empty()) return;
  Micros cur = window.begin;
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), window.begin,
      [](const TimeRange& a, Micros t) { return a.end <= t; });
  for (; it != ranges_.end() && it->begin < window.end; ++it) {
    if (it->begin > cur) out.ranges_.push_back({cur, it->begin});
    cur = std::max(cur, it->end);
  }
  if (cur < window.end) out.ranges_.push_back({cur, window.end});
}

void RangeSet::gaps_into(RangeSet& out) const {
  out.ranges_.clear();
  for (std::size_t i = 1; i < ranges_.size(); ++i) {
    out.ranges_.push_back({ranges_[i - 1].end, ranges_[i].begin});
  }
}

void RangeSet::union_with(const RangeSet& other, RangeSet& scratch) {
  union_into(other, scratch);
  swap(scratch);
}

void RangeSet::intersect_with(const RangeSet& other, RangeSet& scratch) {
  intersect_into(other, scratch);
  swap(scratch);
}

void RangeSet::subtract_with(const RangeSet& other, RangeSet& scratch) {
  subtract_into(other, scratch);
  swap(scratch);
}

RangeSet RangeSet::set_union(const RangeSet& other) const {
  RangeSet out;
  union_into(other, out);
  return out;
}

RangeSet RangeSet::set_intersection(const RangeSet& other) const {
  RangeSet out;
  intersect_into(other, out);
  return out;
}

RangeSet RangeSet::set_difference(const RangeSet& other) const {
  RangeSet out;
  subtract_into(other, out);
  return out;
}

RangeSet RangeSet::complement(TimeRange window) const {
  RangeSet out;
  complement_into(window, out);
  return out;
}

RangeSet RangeSet::gaps() const {
  RangeSet out;
  gaps_into(out);
  return out;
}

std::string RangeSet::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    if (i != 0) out += ", ";
    out += "[" + std::to_string(ranges_[i].begin) + "," +
           std::to_string(ranges_[i].end) + ")";
  }
  out += "}";
  return out;
}

void RangeSet::check_invariant() const {
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    TDAT_ENSURES(!ranges_[i].empty());
    if (i > 0) TDAT_ENSURES(ranges_[i - 1].end < ranges_[i].begin);
  }
}

}  // namespace tdat
