// Structured tracing: RAII scoped-timer spans emitted as Chrome trace_event
// JSON (open the file in chrome://tracing or https://ui.perfetto.dev).
//
// Collection model:
//  - trace_start() arms a process-wide session; spans record into plain
//    thread_local buffers — no lock, no atomic RMW on the hot path, just one
//    relaxed load of the enabled flag plus two steady_clock reads per span.
//  - A thread's buffer is flushed into the session exactly once, lockless
//    until that moment: when the thread exits (thread_local destructor) or
//    when the collecting thread calls trace_stop*(). Threads still running
//    concurrently with trace_stop keep their events to themselves — in tdat
//    all pool workers are joined before the session ends.
//  - With tracing disarmed (the default) a TraceSpan costs one relaxed
//    atomic load; compiling with -DTDAT_TRACE_DISABLED removes the macros
//    entirely.
//
// Span names/categories/arg keys must be string literals (or otherwise
// outlive the session) — they are stored as const char*.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace tdat {

[[nodiscard]] bool trace_enabled() noexcept;

// Arms a new session: clears previously collected events, restarts the
// clock. Safe to call again after trace_stop* for a fresh session.
void trace_start();

// Disarms the session, flushes the calling thread's buffer plus every
// already-retired thread buffer, and returns the Chrome trace JSON
// ({"traceEvents":[...]}). Events are sorted by timestamp.
[[nodiscard]] std::string trace_stop_json();

// trace_stop_json written to `path`; false if the file cannot be written
// (the session is disarmed and drained either way).
[[nodiscard]] bool trace_stop(const std::string& path);

class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "tdat") noexcept
      : name_(name), cat_(cat) {
    if (trace_enabled()) start();
  }
  TraceSpan(const char* name, const char* cat, const char* arg_key,
            std::int64_t arg_value) noexcept
      : name_(name), cat_(cat), arg_key_(arg_key), arg_int_(arg_value),
        arg_kind_(1) {
    if (trace_enabled()) start();
  }
  TraceSpan(const char* name, const char* cat, const char* arg_key,
            std::string arg_value)
      : name_(name), cat_(cat), arg_key_(arg_key),
        arg_str_(std::move(arg_value)), arg_kind_(2) {
    if (trace_enabled()) start();
  }
  // Lazy string arg: the callable runs only when tracing is armed, so a
  // disarmed span on a hot path never pays for building the string (e.g.
  // ConnectionKey::to_string allocating per connection).
  template <typename MakeArg,
            typename = decltype(std::string(std::declval<MakeArg&>()()))>
  TraceSpan(const char* name, const char* cat, const char* arg_key,
            MakeArg&& make_arg)
      : name_(name), cat_(cat), arg_key_(arg_key) {
    if (trace_enabled()) {
      arg_str_ = make_arg();
      arg_kind_ = 2;
      start();
    }
  }
  ~TraceSpan() {
    if (start_ts_ >= 0) finish();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void start() noexcept;
  void finish() noexcept;

  const char* name_;
  const char* cat_;
  const char* arg_key_ = nullptr;
  std::int64_t arg_int_ = 0;
  std::string arg_str_;
  std::uint8_t arg_kind_ = 0;  // 0 none, 1 int, 2 string
  std::int64_t start_ts_ = -1;  // monotonic µs; -1 = span not recording
};

// A zero-duration marker (ph:"i", thread scope).
void trace_instant(const char* name, const char* cat = "tdat");

#define TDAT_TRACE_CAT2_(a, b) a##b
#define TDAT_TRACE_CAT_(a, b) TDAT_TRACE_CAT2_(a, b)
#ifndef TDAT_TRACE_DISABLED
// TDAT_TRACE_SPAN("name"[, "cat"[, "arg_key", arg_value]]): scoped span
// covering the rest of the enclosing block.
#define TDAT_TRACE_SPAN(...) \
  ::tdat::TraceSpan TDAT_TRACE_CAT_(tdat_trace_span_, __LINE__){__VA_ARGS__}
#define TDAT_TRACE_INSTANT(...) ::tdat::trace_instant(__VA_ARGS__)
#else
#define TDAT_TRACE_SPAN(...) ((void)0)
#define TDAT_TRACE_INSTANT(...) ((void)0)
#endif

}  // namespace tdat
