// Minimal expected-like result for parse-type operations where failure is a
// normal outcome (malformed input) rather than a bug.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/assert.hpp"

namespace tdat {

struct Error {
  std::string message;
};

template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    TDAT_EXPECTS(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    TDAT_EXPECTS(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    TDAT_EXPECTS(ok());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const std::string& error() const {
    TDAT_EXPECTS(!ok());
    return std::get<Error>(data_).message;
  }

 private:
  std::variant<T, Error> data_;
};

template <typename T>
[[nodiscard]] Result<T> Err(std::string message) {
  return Result<T>(Error{std::move(message)});
}

}  // namespace tdat
