// Minimal expected-like result for parse-type operations where failure is a
// normal outcome (malformed input) rather than a bug.
#pragma once

#include <string>
#include <type_traits>
#include <utility>
#include <variant>

#include "util/assert.hpp"

namespace tdat {

struct Error {
  std::string message;
};

// Success payload for operations with no interesting value (Result<Unit>).
struct Unit {};

template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    TDAT_EXPECTS(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    TDAT_EXPECTS(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    TDAT_EXPECTS(ok());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const std::string& error() const {
    TDAT_EXPECTS(!ok());
    return std::get<Error>(data_).message;
  }

  // Moves the error out, for propagating into a Result of another type.
  [[nodiscard]] Error take_error() {
    TDAT_EXPECTS(!ok());
    return std::get<Error>(std::move(data_));
  }

  // Applies `f` to the success value; an error passes through untouched.
  template <typename F>
  [[nodiscard]] auto map(F&& f) && -> Result<std::invoke_result_t<F, T&&>> {
    using U = std::invoke_result_t<F, T&&>;
    if (!ok()) return Result<U>(take_error());
    return Result<U>(std::forward<F>(f)(std::get<T>(std::move(data_))));
  }

  // Like map, but `f` itself returns a Result (monadic bind).
  template <typename F>
  [[nodiscard]] auto and_then(F&& f) && -> std::invoke_result_t<F, T&&> {
    using R = std::invoke_result_t<F, T&&>;
    if (!ok()) return R(take_error());
    return std::forward<F>(f)(std::get<T>(std::move(data_)));
  }

 private:
  std::variant<T, Error> data_;
};

template <typename T>
[[nodiscard]] Result<T> Err(std::string message) {
  return Result<T>(Error{std::move(message)});
}

// Evaluates `expr` (a Result<T> expression); on failure propagates the error
// out of the enclosing function (which must itself return some Result<U>),
// otherwise binds the success value to `var`. Two-statement form because the
// project builds with compiler extensions off (no statement expressions).
#define TDAT_TRY(var, expr)                                            \
  auto var##_tdat_try = (expr);                                        \
  if (!var##_tdat_try.ok()) return var##_tdat_try.take_error();        \
  auto var = std::move(var##_tdat_try).value()

}  // namespace tdat
