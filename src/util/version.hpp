// Build/version identification, stamped at configure time (util/version.cpp
// is generated from version.cpp.in).
//
// Two tiers with different stability contracts:
//   version_semver()   the release version alone. This is the ONLY version
//                      string allowed into canonical artifacts (.tdagg
//                      tool_versions, JSON report headers): archives produced
//                      by the same release must stay byte-identical across
//                      checkouts, so git hashes and build flavors must never
//                      reach serialized bytes.
//   version_git() / version_build_type() / version_sanitizer()
//                      configure-environment detail (git describe, Release/
//                      Debug, sanitizer) for humans debugging a binary —
//                      `tdat version` output only.
#pragma once

#include <string>

namespace tdat {

[[nodiscard]] const char* version_semver();
[[nodiscard]] const char* version_git();
[[nodiscard]] const char* version_build_type();
// Sanitizer the tree was built under ("none" when clean).
[[nodiscard]] const char* version_sanitizer();

// Human-readable one-liner: "tdat <semver> (<git>, <build-type>[, <san>])".
[[nodiscard]] std::string version_string();

}  // namespace tdat
