// Crash-safe file replacement: write to a temp file in the target's
// directory, fsync it, rename over the destination, then best-effort fsync
// the directory. A reader never observes a partial file — it sees either the
// previous complete contents or the new complete contents.
//
// Durability failures (ENOSPC, short writes, fsync errors) are normal
// operating conditions for a long-running daemon, so they surface as
// Result errors, never as crashes, and they leave any previous file at
// `path` untouched (the temp file is unlinked on every failure path).
//
// Test seams, checked once per call in the order listed:
//   - set_atomic_write_failure_hook(): in-process hook; return false from it
//     to make the next write fail with an injected error.
//   - TDAT_ATOMIC_WRITE_FAIL="<n>": the n-th atomic write in this process
//     (1-based, counted across all call sites) fails with an injected error.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "util/result.hpp"

namespace tdat {

// Atomically replaces `path` with `data`. On failure the previous `path`
// contents (if any) are intact and the error message names the failing step.
[[nodiscard]] Result<Unit> write_file_atomic_durable(
    const std::string& path, std::span<const std::uint8_t> data);

[[nodiscard]] Result<Unit> write_file_atomic_durable(const std::string& path,
                                                     const std::string& data);

// In-process failure injection: `hook(path)` runs before each atomic write;
// returning false fails that write. Pass nullptr to clear. Not thread-safe —
// set it from test setup, not concurrently with writes.
using AtomicWriteFailureHook = bool (*)(const std::string& path);
void set_atomic_write_failure_hook(AtomicWriteFailureHook hook);

// Number of atomic writes attempted by this process (after injection checks).
[[nodiscard]] std::uint64_t atomic_writes_attempted();

}  // namespace tdat
