// Minimal fixed-width thread pool for the per-connection analysis fan-out.
//
// Deliberately work-stealing-free: parallel_for hands out indices through a
// single shared atomic counter, so the only cross-thread traffic on the hot
// path is one fetch_add per item; results land in caller-preallocated slots
// keyed by index, which is what makes parallel runs bit-identical to serial
// ones (see DESIGN.md "Pipeline performance").
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tdat {

class Counter;
class Gauge;
class LatencyHistogram;

// Worker-count resolution used by the CLI and analyze_* entry points:
// an explicit non-zero value wins; 0 means "default", which is the
// TDAT_JOBS environment variable when set (clamped to >= 1), else
// std::thread::hardware_concurrency().
[[nodiscard]] std::size_t default_jobs();

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  void submit(std::function<void()> task);

  // Blocks until the queue is drained and every worker is idle. Tasks may
  // submit further tasks; wait_idle covers those too.
  void wait_idle();

 private:
  // Tasks carry their enqueue time so the dequeueing worker can record the
  // queue wait into the pool.queue_wait_us histogram (the paper-adjacent
  // "where does a run stall" number for the analysis fan-out).
  struct Task {
    std::int64_t enqueued_us = 0;
    std::function<void()> fn;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: task queued / stop
  std::condition_variable idle_cv_;   // signals waiters: pool went idle
  std::size_t busy_ = 0;
  bool stop_ = false;
  // Cached registry lookups (the registry guarantees stable addresses).
  Counter* tasks_total_ = nullptr;
  Gauge* workers_gauge_ = nullptr;
  LatencyHistogram* queue_wait_us_ = nullptr;
};

// Runs fn(0), ..., fn(n-1), distributing indices over `jobs` workers.
// jobs <= 1 (or n <= 1) runs inline on the calling thread — the serial
// special case spawns no threads and takes no locks. Index order within a
// worker is ascending; across workers it is arbitrary, so fn must only
// touch per-index state. The first exception thrown by any invocation is
// rethrown on the calling thread after all workers finish.
void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn);

}  // namespace tdat
