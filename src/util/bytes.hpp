// Bounds-checked readers/writers over byte buffers.
//
// Network protocol fields are big-endian on the wire; the pcap file format
// uses the capturing host's endianness, signalled by its magic number, so the
// reader supports both orders.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace tdat {

// Sequential reader over a byte span. All reads are bounds-checked; a failed
// read marks the reader bad and returns 0 so callers can check ok() once at
// the end of a parse instead of after every field.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool ok() const { return ok_; }
  // Marks the reader bad from the outside — for callers whose *semantic*
  // validation fails on bytes that read fine (e.g. a count field that
  // contradicts the payload). Subsequent reads return 0 as usual.
  void fail() { ok_ = false; }
  [[nodiscard]] std::size_t offset() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  [[nodiscard]] std::uint8_t u8() {
    if (!check(1)) return 0;
    return data_[pos_++];
  }

  [[nodiscard]] std::uint16_t u16be() {
    if (!check(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  [[nodiscard]] std::uint32_t u32be() {
    if (!check(4)) return 0;
    std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) << 24 |
                      static_cast<std::uint32_t>(data_[pos_ + 1]) << 16 |
                      static_cast<std::uint32_t>(data_[pos_ + 2]) << 8 |
                      static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint16_t u16le() {
    if (!check(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_ + 1] << 8 | data_[pos_]);
    pos_ += 2;
    return v;
  }

  [[nodiscard]] std::uint32_t u32le() {
    if (!check(4)) return 0;
    std::uint32_t v = static_cast<std::uint32_t>(data_[pos_ + 3]) << 24 |
                      static_cast<std::uint32_t>(data_[pos_ + 2]) << 16 |
                      static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                      static_cast<std::uint32_t>(data_[pos_]);
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64le() {
    const std::uint64_t lo = u32le();
    const std::uint64_t hi = u32le();
    return hi << 32 | lo;
  }

  [[nodiscard]] std::int64_t i64le() {
    return static_cast<std::int64_t>(u64le());
  }

  // Reads `n` raw bytes; returns an empty span on under-run.
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n) {
    if (!check(n)) return {};
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  void skip(std::size_t n) { (void)bytes(n); }

 private:
  bool check(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Append-only writer producing a byte vector.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16be(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32be(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u16le(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32le(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  }

  void u64le(std::uint64_t v) {
    u32le(static_cast<std::uint32_t>(v));
    u32le(static_cast<std::uint32_t>(v >> 32));
  }

  void i64le(std::int64_t v) { u64le(static_cast<std::uint64_t>(v)); }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void fill(std::size_t n, std::uint8_t v) { buf_.insert(buf_.end(), n, v); }

  // Overwrites previously written bytes, e.g. to patch a length field.
  void patch_u16be(std::size_t at, std::uint16_t v) {
    TDAT_EXPECTS(at + 2 <= buf_.size());
    buf_[at] = static_cast<std::uint8_t>(v >> 8);
    buf_[at + 1] = static_cast<std::uint8_t>(v);
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Dotted-quad rendering of a host-order IPv4 address.
[[nodiscard]] inline std::string ipv4_to_string(std::uint32_t addr) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", addr >> 24 & 0xff,
                addr >> 16 & 0xff, addr >> 8 & 0xff, addr & 0xff);
  return buf;
}

}  // namespace tdat
