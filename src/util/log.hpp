// Leveled structured logger: printf-style call sites, rendered either as
// human text or JSON lines, written to stderr (or any FILE* sink).
//
// Cost model: a disabled-level call site is one relaxed atomic load and a
// branch. Defining TDAT_LOG_MIN_LEVEL (0=trace .. 4=error, 5=off) removes
// lower levels at compile time — the arguments are never evaluated.
#pragma once

#include <cstdio>
#include <string_view>

namespace tdat {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

enum class LogFormat : int {
  kText = 0,  // "[tdat] 0.123456 warn  message"
  kJson = 1,  // {"ts_us":123456,"level":"warn","tid":1,"msg":"message"}
};

void set_log_level(LogLevel level) noexcept;
// Parses "trace|debug|info|warn|error|off" (case-sensitive); returns false
// and leaves the level unchanged on anything else.
bool set_log_level(std::string_view name) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;
[[nodiscard]] bool log_enabled(LogLevel level) noexcept;

void set_log_format(LogFormat format) noexcept;
[[nodiscard]] LogFormat log_format() noexcept;

// nullptr restores the default sink (stderr). The sink is written with one
// fputs per message, so concurrent loggers never interleave mid-line.
void set_log_sink(std::FILE* sink) noexcept;

[[nodiscard]] const char* to_string(LogLevel level) noexcept;

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void log_message(LogLevel level, const char* fmt, ...);

#ifndef TDAT_LOG_MIN_LEVEL
#define TDAT_LOG_MIN_LEVEL 0
#endif

#define TDAT_LOG_AT_(level_enum, level_num, ...)                           \
  do {                                                                     \
    if constexpr ((level_num) >= TDAT_LOG_MIN_LEVEL) {                     \
      if (::tdat::log_enabled(level_enum)) {                               \
        ::tdat::log_message(level_enum, __VA_ARGS__);                      \
      }                                                                    \
    }                                                                      \
  } while (0)

#define TDAT_LOG_TRACE(...) TDAT_LOG_AT_(::tdat::LogLevel::kTrace, 0, __VA_ARGS__)
#define TDAT_LOG_DEBUG(...) TDAT_LOG_AT_(::tdat::LogLevel::kDebug, 1, __VA_ARGS__)
#define TDAT_LOG_INFO(...) TDAT_LOG_AT_(::tdat::LogLevel::kInfo, 2, __VA_ARGS__)
#define TDAT_LOG_WARN(...) TDAT_LOG_AT_(::tdat::LogLevel::kWarn, 3, __VA_ARGS__)
#define TDAT_LOG_ERROR(...) TDAT_LOG_AT_(::tdat::LogLevel::kError, 4, __VA_ARGS__)

}  // namespace tdat
