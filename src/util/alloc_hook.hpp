// Thread-local allocation counting for the zero-allocation steady-state
// invariant of the analysis stage (DESIGN.md "Memory & scalability").
//
// alloc_hook.cpp replaces the global `operator new` family with thin
// malloc/free forwarders that bump a thread-local counter. The hook is
// always on in normal builds — the counter bump is one TLS increment, far
// below malloc's own cost — but is compiled out under ASan/TSan, whose
// runtimes want to own `operator new` themselves. Tests that assert
// allocation counts must skip when `alloc_hook_active()` is false.
#pragma once

#include <cstdint>

namespace tdat {

// Number of global `operator new` calls made by the calling thread since it
// started. Monotonic; sample before/after a region and subtract.
[[nodiscard]] std::uint64_t thread_alloc_count() noexcept;

// Total bytes requested by the calling thread (same sampling discipline).
[[nodiscard]] std::uint64_t thread_alloc_bytes() noexcept;

// True when the counting `operator new` replacement is linked in (false in
// sanitizer builds, where the counters stay frozen at zero).
[[nodiscard]] bool alloc_hook_active() noexcept;

}  // namespace tdat
