#include "util/alloc_hook.hpp"

#include <cstdlib>
#include <new>

// Sanitizer runtimes provide their own `operator new` replacements with
// poisoning/interception baked in; defining ours alongside would either
// conflict at link time or silently bypass their bookkeeping. Detect both
// GCC's macro and Clang's feature test and fall back to frozen counters.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define TDAT_ALLOC_HOOK_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define TDAT_ALLOC_HOOK_DISABLED 1
#endif
#endif

namespace tdat::detail {
// Plain PODs so TLS access never re-enters the allocator (no dynamic init).
thread_local std::uint64_t t_alloc_count = 0;
thread_local std::uint64_t t_alloc_bytes = 0;
}  // namespace tdat::detail

namespace tdat {

std::uint64_t thread_alloc_count() noexcept { return detail::t_alloc_count; }
std::uint64_t thread_alloc_bytes() noexcept { return detail::t_alloc_bytes; }

bool alloc_hook_active() noexcept {
#ifdef TDAT_ALLOC_HOOK_DISABLED
  return false;
#else
  return true;
#endif
}

}  // namespace tdat

#ifndef TDAT_ALLOC_HOOK_DISABLED

namespace {

inline void* counted_alloc(std::size_t size) noexcept {
  ++tdat::detail::t_alloc_count;
  tdat::detail::t_alloc_bytes += size;
  return std::malloc(size ? size : 1);
}

inline void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  ++tdat::detail::t_alloc_count;
  tdat::detail::t_alloc_bytes += size;
  if (align < alignof(void*)) align = alignof(void*);
  void* p = nullptr;
  // aligned_alloc requires size to be a multiple of the alignment; round up.
  const std::size_t rounded = (size + align - 1) / align * align;
  if (posix_memalign(&p, align, rounded ? rounded : align) != 0) return nullptr;
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // TDAT_ALLOC_HOOK_DISABLED
