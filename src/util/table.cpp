#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/assert.hpp"

namespace tdat {

TextTable::TextTable(std::vector<std::string> header) {
  TDAT_EXPECTS(!header.empty());
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> cells) {
  TDAT_EXPECTS(cells.size() == rows_[0].size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(rows_[0].size(), 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };
  emit_row(rows_[0]);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out.append(total - 2, '-');
  out += '\n';
  for (std::size_t r = 1; r < rows_.size(); ++r) emit_row(rows_[r]);
  return out;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace tdat
