#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace tdat {

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  var /= static_cast<double>(xs.size());
  s.stddev = std::sqrt(var);
  auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  s.min = *mn;
  s.max = *mx;
  return s;
}

double percentile(std::vector<double> xs, double p) {
  TDAT_EXPECTS(!xs.empty());
  TDAT_EXPECTS(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  auto hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> xs) {
  std::vector<CdfPoint> out;
  if (xs.empty()) return out;
  std::sort(xs.begin(), xs.end());
  const auto n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    // Collapse ties onto the last occurrence so the CDF is a function.
    if (i + 1 < xs.size() && xs[i + 1] == xs[i]) continue;
    out.push_back({xs[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

std::vector<CdfPoint> thin_cdf(std::vector<CdfPoint> cdf, std::size_t max_points) {
  TDAT_EXPECTS(max_points >= 2);
  if (cdf.size() <= max_points) return cdf;
  std::vector<CdfPoint> out;
  out.reserve(max_points);
  const double step =
      static_cast<double>(cdf.size() - 1) / static_cast<double>(max_points - 1);
  for (std::size_t i = 0; i < max_points; ++i) {
    out.push_back(cdf[static_cast<std::size_t>(std::llround(step * static_cast<double>(i)))]);
  }
  return out;
}

std::size_t Histogram::total() const {
  return std::accumulate(bins.begin(), bins.end(), std::size_t{0});
}

Histogram make_histogram(const std::vector<double>& xs, double lo, double hi,
                         std::size_t nbins) {
  TDAT_EXPECTS(nbins > 0);
  TDAT_EXPECTS(hi > lo);
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.bins.assign(nbins, 0);
  const double width = (hi - lo) / static_cast<double>(nbins);
  for (double x : xs) {
    auto idx = static_cast<std::int64_t>((x - lo) / width);
    idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(nbins) - 1);
    ++h.bins[static_cast<std::size_t>(idx)];
  }
  return h;
}

}  // namespace tdat
