// Deterministic random source for simulations. Every simulated scenario is
// seeded explicitly so experiments are exactly reproducible across runs.
#pragma once

#include <cstdint>
#include <random>

#include "util/assert.hpp"

namespace tdat {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    TDAT_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  [[nodiscard]] double uniform_real(double lo, double hi) {
    TDAT_EXPECTS(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  [[nodiscard]] double exponential(double mean) {
    TDAT_EXPECTS(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Derives an independent child stream; used to give each simulated router
  // its own stream so adding routers does not perturb existing ones.
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tdat
