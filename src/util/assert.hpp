// Contract-check macros in the spirit of the Core Guidelines' Expects/Ensures.
// Violations indicate programming errors, not bad input, so they abort.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tdat::detail {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "tdat: %s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace tdat::detail

#define TDAT_EXPECTS(cond)                                                   \
  do {                                                                       \
    if (!(cond))                                                             \
      ::tdat::detail::contract_violation("precondition", #cond, __FILE__,    \
                                         __LINE__);                          \
  } while (0)

#define TDAT_ENSURES(cond)                                                   \
  do {                                                                       \
    if (!(cond))                                                             \
      ::tdat::detail::contract_violation("postcondition", #cond, __FILE__,   \
                                         __LINE__);                          \
  } while (0)
