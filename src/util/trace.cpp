#include "util/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <vector>

#include "util/metrics.hpp"

namespace tdat {
namespace {

struct Event {
  const char* name = nullptr;
  const char* cat = nullptr;
  const char* arg_key = nullptr;
  std::string arg_str;
  std::int64_t arg_int = 0;
  std::uint8_t arg_kind = 0;
  char ph = 'X';
  std::int64_t ts = 0;   // raw monotonic µs; normalized at serialization
  std::int64_t dur = 0;  // for ph == 'X'
  std::uint32_t tid = 0;
};

struct Session {
  std::mutex mu;
  std::vector<Event> retired;       // buffers flushed by exited threads
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> gen{0};  // bumped by trace_start
  std::int64_t t0 = 0;                // session epoch (under mu)
};

// Leaked on purpose: thread_local buffer destructors of late-exiting
// threads must find the session alive during static destruction.
Session& session() {
  static Session* s = new Session;
  return *s;
}

struct ThreadBuffer {
  std::vector<Event> events;
  std::uint64_t gen = 0;

  ~ThreadBuffer() { retire(); }

  // The single synchronized moment of a buffer's life: move everything
  // collected for the current session into the shared retired list.
  void retire() {
    if (events.empty()) return;
    Session& s = session();
    std::lock_guard lock(s.mu);
    if (gen == s.gen.load(std::memory_order_relaxed)) {
      s.retired.insert(s.retired.end(),
                       std::make_move_iterator(events.begin()),
                       std::make_move_iterator(events.end()));
    }
    events.clear();
  }
};

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer buf;
  return buf;
}

void append(Event e) {
  Session& s = session();
  if (!s.enabled.load(std::memory_order_acquire)) return;
  ThreadBuffer& buf = local_buffer();
  const std::uint64_t g = s.gen.load(std::memory_order_acquire);
  if (buf.gen != g) {
    buf.events.clear();  // stale events from a previous session
    buf.gen = g;
  }
  e.tid = thread_index();
  buf.events.push_back(std::move(e));
}

void json_escape_into(std::string& out, const char* str) {
  for (const char* p = str; *p; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void serialize_event(std::string& out, const Event& e, std::int64_t t0) {
  out += "{\"name\":\"";
  json_escape_into(out, e.name);
  out += "\",\"cat\":\"";
  json_escape_into(out, e.cat);
  out += "\",\"ph\":\"";
  out += e.ph;
  out += "\",\"pid\":1,\"tid\":" + std::to_string(e.tid) +
         ",\"ts\":" + std::to_string(e.ts - t0);
  if (e.ph == 'X') out += ",\"dur\":" + std::to_string(e.dur);
  if (e.ph == 'i') out += ",\"s\":\"t\"";
  if (e.arg_kind != 0 && e.arg_key != nullptr) {
    out += ",\"args\":{\"";
    json_escape_into(out, e.arg_key);
    out += "\":";
    if (e.arg_kind == 1) {
      out += std::to_string(e.arg_int);
    } else {
      out += '"';
      json_escape_into(out, e.arg_str.c_str());
      out += '"';
    }
    out += '}';
  }
  out += '}';
}

}  // namespace

bool trace_enabled() noexcept {
  return session().enabled.load(std::memory_order_acquire);
}

void trace_start() {
  Session& s = session();
  std::lock_guard lock(s.mu);
  s.retired.clear();
  s.gen.fetch_add(1, std::memory_order_release);
  s.t0 = monotonic_micros();
  s.enabled.store(true, std::memory_order_release);
}

std::string trace_stop_json() {
  Session& s = session();
  s.enabled.store(false, std::memory_order_release);
  local_buffer().retire();  // the collecting thread's own events

  std::vector<Event> events;
  std::int64_t t0 = 0;
  {
    std::lock_guard lock(s.mu);
    events.swap(s.retired);
    t0 = s.t0;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });

  std::string out =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"cat\":\"__metadata\",\"ph\":\"M\","
      "\"pid\":1,\"tid\":0,\"ts\":0,\"args\":{\"name\":\"tdat\"}}";
  for (const Event& e : events) {
    out += ",\n";
    serialize_event(out, e, t0);
  }
  out += "\n]}\n";
  return out;
}

bool trace_stop(const std::string& path) {
  const std::string json = trace_stop_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

void TraceSpan::start() noexcept { start_ts_ = monotonic_micros(); }

void TraceSpan::finish() noexcept {
  Event e;
  e.name = name_;
  e.cat = cat_;
  e.arg_key = arg_key_;
  e.arg_str = std::move(arg_str_);
  e.arg_int = arg_int_;
  e.arg_kind = arg_kind_;
  e.ph = 'X';
  e.ts = start_ts_;
  e.dur = monotonic_micros() - start_ts_;
  append(std::move(e));
}

void trace_instant(const char* name, const char* cat) {
  if (!trace_enabled()) return;
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.ts = monotonic_micros();
  append(std::move(e));
}

}  // namespace tdat
