// Plain-text table rendering for the experiment harness: the bench binaries
// print rows shaped like the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace tdat {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Renders with aligned columns, a header separator, and a trailing newline.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::vector<std::string>> rows_;  // rows_[0] is the header
};

// printf-style float formatting helpers for table cells.
[[nodiscard]] std::string fmt_double(double v, int precision);
[[nodiscard]] std::string fmt_percent(double fraction, int precision);

}  // namespace tdat
