// Small statistics helpers used by the analyzer and the experiment harness:
// summary moments, percentiles, and empirical CDFs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tdat {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(const std::vector<double>& xs);

// Linear-interpolated percentile, p in [0, 100]. Expects non-empty input.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

// One point of an empirical CDF: fraction of samples <= value.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;
};

// Empirical CDF evaluated at every distinct sample (sorted ascending).
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(std::vector<double> xs);

// Downsamples a CDF to at most `max_points` evenly spaced points (always
// keeping the first and last) so reports stay readable.
[[nodiscard]] std::vector<CdfPoint> thin_cdf(std::vector<CdfPoint> cdf,
                                             std::size_t max_points);

// Fixed-width-bin histogram over [lo, hi); values outside are clamped into
// the first/last bin.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> bins;

  [[nodiscard]] std::size_t total() const;
};

[[nodiscard]] Histogram make_histogram(const std::vector<double>& xs, double lo,
                                       double hi, std::size_t nbins);

}  // namespace tdat
