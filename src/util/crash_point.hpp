// Deterministic crash injection for chaos testing, in the spirit of
// TDAT_FLEET_KILL_WORKER: the chaos harness sets
//
//   TDAT_CRASH_AT="<point>:<n>"
//
// and the process dies with _exit(kCrashExitCode) the n-th time (1-based)
// execution reaches maybe_crash_at("<point>"). _exit skips destructors and
// flushes nothing — the closest in-process stand-in for SIGKILL — so whatever
// half-written state exists on disk at that instant is exactly what a real
// crash would leave.
//
// Named points (see DESIGN.md §16):
//   "epoch"        after a live epoch, before the next checkpoint
//   "ckpt-write"   mid-checkpoint: temp file partially written, not renamed
//   "ckpt-rename"  checkpoint fully written + fsynced, rename not yet done
#pragma once

namespace tdat {

inline constexpr int kCrashExitCode = 47;

// Dies via _exit(kCrashExitCode) when TDAT_CRASH_AT selects this point and
// its hit count has been reached; otherwise a cheap no-op (one getenv on
// first call, an atomic counter after).
void maybe_crash_at(const char* point);

// True when TDAT_CRASH_AT names this point (regardless of the hit count).
// Lets a call site stage realistic pre-crash disk state (e.g. a half-written
// temp file) only when the chaos harness is actually driving it.
[[nodiscard]] bool crash_point_armed(const char* point);

}  // namespace tdat
