// Time representation used throughout tdat.
//
// All timestamps and durations are int64 microseconds ("Micros"). Trace
// timestamps are microseconds since the Unix epoch; simulator timestamps are
// microseconds since simulation start. Ranges over time are always half-open
// [begin, end).
#pragma once

#include <cstdint>
#include <string>

namespace tdat {

using Micros = std::int64_t;

inline constexpr Micros kMicrosPerMilli = 1'000;
inline constexpr Micros kMicrosPerSec = 1'000'000;

[[nodiscard]] constexpr Micros from_millis(std::int64_t ms) {
  return ms * kMicrosPerMilli;
}
[[nodiscard]] constexpr Micros from_seconds(std::int64_t s) {
  return s * kMicrosPerSec;
}
[[nodiscard]] constexpr double to_seconds(Micros us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerSec);
}
[[nodiscard]] constexpr double to_millis(Micros us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerMilli);
}

// "12.345s" style rendering for reports.
[[nodiscard]] inline std::string format_seconds(Micros us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds(us));
  return buf;
}

}  // namespace tdat
