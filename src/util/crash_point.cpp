#include "util/crash_point.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

namespace tdat {
namespace {

struct CrashSpec {
  std::string point;
  long n = 0;  // 0 = disabled
};

// Parsed once per process; the env var does not change under us.
const CrashSpec& spec() {
  static const CrashSpec parsed = [] {
    CrashSpec s;
    const char* env = std::getenv("TDAT_CRASH_AT");
    if (env == nullptr || *env == '\0') return s;
    const char* colon = std::strrchr(env, ':');
    if (colon == nullptr || colon == env) return s;
    char* end = nullptr;
    const long n = std::strtol(colon + 1, &end, 10);
    if (end == nullptr || *end != '\0' || n <= 0) return s;
    s.point.assign(env, static_cast<std::size_t>(colon - env));
    s.n = n;
    return s;
  }();
  return parsed;
}

std::atomic<long> g_hits{0};

}  // namespace

bool crash_point_armed(const char* point) {
  const CrashSpec& s = spec();
  return s.n != 0 && s.point == point;
}

void maybe_crash_at(const char* point) {
  const CrashSpec& s = spec();
  if (s.n == 0 || s.point != point) return;
  if (g_hits.fetch_add(1) + 1 == s.n) {
    _exit(kCrashExitCode);
  }
}

}  // namespace tdat
