// Metrics: a process-wide, thread-safe registry of named counters, gauges
// and fixed-bucket latency histograms (power-of-two microsecond buckets).
//
// Design rules:
//  - Registered metric objects live at stable addresses for the lifetime of
//    the process; reset() zeroes values in place and never invalidates a
//    reference, so hot paths may look a metric up once and cache the pointer
//    (registry lookup itself takes a mutex and is not for inner loops).
//  - All mutation is relaxed atomics — safe from any thread, cheap enough
//    for per-record accounting, and TSan-clean.
//  - Snapshots and JSON rendering are lock-free reads of the same atomics;
//    a snapshot taken while writers run is "torn" only across metrics, never
//    within one bucket.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace tdat {

// Shortest-round-trip, locale-independent rendering of a double for JSON
// output (std::to_chars; never uses the C locale's decimal separator).
// Non-finite values render as 0 so the output stays valid JSON.
[[nodiscard]] std::string json_double(double v);

// Monotonic microseconds (steady_clock) — the time base for queue-wait
// accounting, trace spans, and log timestamps.
[[nodiscard]] std::int64_t monotonic_micros();

// Small dense per-thread index (1, 2, 3, ... in first-use order), used as
// the "tid" in trace events and structured logs.
[[nodiscard]] std::uint32_t thread_index();

// Hot metrics (Counter, LatencyHistogram) are internally sharded: each shard
// sits alone on a cache line and a writer picks the shard for its dense
// thread_index(), so per-connection accounting from many workers never
// ping-pongs a shared line. Reads (value()/snapshot()) sum across shards —
// slightly dearer, but reads happen per run, writes per record.
inline constexpr std::size_t kCacheLineBytes = 64;
inline constexpr std::size_t kMetricShards = 8;  // power of two
static_assert((kMetricShards & (kMetricShards - 1)) == 0);

[[nodiscard]] inline std::size_t metric_shard_index() noexcept {
  return thread_index() & (kMetricShards - 1);
}

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    shards_[metric_shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() noexcept {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(kCacheLineBytes) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Bucket i of a histogram holds samples whose bit width is i: bucket 0 is
// v <= 0, bucket 1 is v == 1, bucket i is [2^(i-1), 2^i - 1]. 40 buckets
// cover up to ~6.4 days in microseconds; larger samples land in the last
// bucket. Fixed boundaries make merge/diff plain element-wise arithmetic.
inline constexpr std::size_t kHistogramBuckets = 40;

[[nodiscard]] constexpr std::size_t histogram_bucket_index(std::int64_t v) {
  if (v <= 0) return 0;
  std::size_t i = 0;
  for (std::uint64_t u = static_cast<std::uint64_t>(v); u != 0; u >>= 1) ++i;
  return i < kHistogramBuckets ? i : kHistogramBuckets - 1;
}

// Inclusive upper bound of bucket i (reported as the quantile estimate).
[[nodiscard]] constexpr std::int64_t histogram_bucket_bound(std::size_t i) {
  return i == 0 ? 0 : (std::int64_t{1} << i) - 1;
}

struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  // exact; valid when count > 0
  std::int64_t max = 0;

  [[nodiscard]] double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
  // Upper bound of the bucket holding the q-quantile sample (0 < q <= 1),
  // clamped to the observed max.
  [[nodiscard]] std::int64_t quantile(double q) const;
  // Element-wise difference against an earlier snapshot of the same
  // histogram — the per-run view of a cumulative metric. Bucket counts are
  // exact; the carried min/max are clamped into the delta's occupied bucket
  // span, so a sample sitting exactly on a bucket bound reports the same
  // extremes and quantiles as a fresh histogram of the delta samples.
  [[nodiscard]] HistogramSnapshot since(const HistogramSnapshot& base) const;
  // Element-wise accumulation of another snapshot of the same bucket layout
  // (the mergeable-sketch primitive: buckets and sums add, extremes widen).
  // Associative and commutative; merging an empty snapshot is the identity.
  void merge_from(const HistogramSnapshot& other);
  // {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,"p90":..,
  //  "p99":..,"buckets":[[bound,count],...nonzero only]}
  [[nodiscard]] std::string to_json() const;
};

class LatencyHistogram {
 public:
  void observe(std::int64_t v) noexcept {
    shards_[metric_shard_index()].observe(v);
  }
  void merge_from(const LatencyHistogram& other) noexcept;
  [[nodiscard]] HistogramSnapshot snapshot() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(kCacheLineBytes) Shard {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::int64_t> sum{0};
    std::atomic<std::int64_t> min{0};  // guarded by count == 0 convention
    std::atomic<std::int64_t> max{0};

    void observe(std::int64_t v) noexcept;
    // Fold a finished snapshot in (merge_from path; single bulk update).
    void add(const HistogramSnapshot& s) noexcept;
    [[nodiscard]] HistogramSnapshot snapshot() const noexcept;
    void reset() noexcept;
  };
  std::array<Shard, kMetricShards> shards_;
};

class MetricsRegistry {
 public:
  // Returns the metric registered under `name`, creating it on first use.
  // The reference stays valid for the registry's lifetime.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] LatencyHistogram& histogram(std::string_view name);

  // Zeroes every registered metric in place. Addresses remain valid —
  // intended for tests and between independent runs in one process.
  void reset();

  // {"counters":{...},"gauges":{...},"histograms":{...}} with names sorted.
  [[nodiscard]] std::string to_json() const;

  // Prometheus text exposition format (version 0.0.4): every metric under a
  // "tdat_" prefix with dots mapped to underscores; histograms render the
  // standard cumulative `_bucket{le="..."}` series using the pow2 bucket
  // bounds (inclusive upper edges — the same convention as the JSON
  // snapshot), plus `_sum` and `_count`.
  [[nodiscard]] std::string to_prometheus() const;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  struct Impl;
  Impl* impl_;  // owned; raw to keep the header light
};

// The process-wide registry every instrumented layer records into.
[[nodiscard]] MetricsRegistry& metrics();

}  // namespace tdat
