#include "util/log.hpp"

#include <atomic>
#include <cstdarg>
#include <string>

#include "util/metrics.hpp"

namespace tdat {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::atomic<int> g_format{static_cast<int>(LogFormat::kText)};
std::atomic<std::FILE*> g_sink{nullptr};  // nullptr = stderr

// Log timestamps are microseconds since the first log-related call in the
// process, matching the trace clock's monotonic base.
std::int64_t log_epoch_micros() {
  static const std::int64_t t0 = monotonic_micros();
  return monotonic_micros() - t0;
}

void json_escape_into(std::string& out, const char* str) {
  for (const char* p = str; *p; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool set_log_level(std::string_view name) noexcept {
  if (name == "trace") set_log_level(LogLevel::kTrace);
  else if (name == "debug") set_log_level(LogLevel::kDebug);
  else if (name == "info") set_log_level(LogLevel::kInfo);
  else if (name == "warn") set_log_level(LogLevel::kWarn);
  else if (name == "error") set_log_level(LogLevel::kError);
  else if (name == "off") set_log_level(LogLevel::kOff);
  else return false;
  return true;
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

void set_log_format(LogFormat format) noexcept {
  g_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

LogFormat log_format() noexcept {
  return static_cast<LogFormat>(g_format.load(std::memory_order_relaxed));
}

void set_log_sink(std::FILE* sink) noexcept {
  g_sink.store(sink, std::memory_order_relaxed);
}

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

void log_message(LogLevel level, const char* fmt, ...) {
  char msg[1024];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, args);
  va_end(args);

  const std::int64_t ts = log_epoch_micros();
  std::string line;
  if (log_format() == LogFormat::kJson) {
    line = "{\"ts_us\":" + std::to_string(ts) + ",\"level\":\"" +
           to_string(level) + "\",\"tid\":" + std::to_string(thread_index()) +
           ",\"msg\":\"";
    json_escape_into(line, msg);
    line += "\"}\n";
  } else {
    char head[64];
    std::snprintf(head, sizeof(head), "[tdat] %lld.%06lld %-5s ",
                  static_cast<long long>(ts / 1'000'000),
                  static_cast<long long>(ts % 1'000'000), to_string(level));
    line = head;
    line += msg;
    line += '\n';
  }
  std::FILE* sink = g_sink.load(std::memory_order_relaxed);
  if (sink == nullptr) sink = stderr;
  std::fputs(line.c_str(), sink);
}

}  // namespace tdat
