#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/metrics.hpp"

namespace tdat {
namespace {

AtomicWriteFailureHook g_failure_hook = nullptr;
std::atomic<std::uint64_t> g_calls{0};
std::atomic<std::uint64_t> g_attempted{0};

// True when this call should fail via TDAT_ATOMIC_WRITE_FAIL=<n> (1-based,
// process-wide). Parsed once; a malformed value disables injection.
bool env_injected_failure() {
  static const long target = [] {
    const char* env = std::getenv("TDAT_ATOMIC_WRITE_FAIL");
    if (env == nullptr || *env == '\0') return 0L;
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    return (end != nullptr && *end == '\0' && n > 0) ? n : 0L;
  }();
  if (target == 0) return false;
  return static_cast<long>(g_calls.fetch_add(1) + 1) == target;
}

Result<Unit> fail_step(const std::string& path, const char* step, int err,
                       const std::string& tmp_path) {
  if (!tmp_path.empty()) ::unlink(tmp_path.c_str());
  metrics().counter("io.atomic_write.failures").inc();
  std::string msg = "atomic write of " + path + " failed at " + step;
  if (err != 0) {
    msg += ": ";
    msg += std::strerror(err);
  }
  return Err<Unit>(std::move(msg));
}

}  // namespace

void set_atomic_write_failure_hook(AtomicWriteFailureHook hook) {
  g_failure_hook = hook;
}

std::uint64_t atomic_writes_attempted() {
  return g_attempted.load(std::memory_order_relaxed);
}

Result<Unit> write_file_atomic_durable(const std::string& path,
                                       std::span<const std::uint8_t> data) {
  if (g_failure_hook != nullptr && !g_failure_hook(path)) {
    return fail_step(path, "injected hook failure", 0, "");
  }
  if (env_injected_failure()) {
    return fail_step(path, "injected env failure (TDAT_ATOMIC_WRITE_FAIL)", 0,
                     "");
  }
  g_attempted.fetch_add(1, std::memory_order_relaxed);

  // The temp file must live in the destination directory: rename(2) is only
  // atomic within one filesystem, and the PID suffix keeps a crashed
  // predecessor's leftover temp from colliding with ours.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail_step(path, "open(tmp)", errno, "");

  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return fail_step(path, "write", err, tmp);
    }
    if (n == 0) {
      ::close(fd);
      return fail_step(path, "short write", ENOSPC, tmp);
    }
    off += static_cast<std::size_t>(n);
  }

  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    return fail_step(path, "fsync", err, tmp);
  }
  if (::close(fd) != 0) return fail_step(path, "close", errno, tmp);

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail_step(path, "rename", errno, tmp);
  }

  // Durability of the rename itself needs the directory entry flushed.
  // Best-effort: some filesystems refuse O_RDONLY on directories, and the
  // data file is already safe on disk either way.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }

  metrics().counter("io.atomic_write.completed").inc();
  return Unit{};
}

Result<Unit> write_file_atomic_durable(const std::string& path,
                                       const std::string& data) {
  return write_file_atomic_durable(
      path, std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(data.data()),
                data.size()));
}

}  // namespace tdat
