#include "util/metrics.hpp"

#include <charconv>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

namespace tdat {

std::string json_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::int64_t monotonic_micros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint32_t thread_index() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::int64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= target) {
      const std::int64_t bound = histogram_bucket_bound(i);
      return bound < max ? bound : max;
    }
  }
  return max;
}

HistogramSnapshot HistogramSnapshot::since(const HistogramSnapshot& base) const {
  HistogramSnapshot out;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    out.buckets[i] = buckets[i] - base.buckets[i];
    out.count += out.buckets[i];
  }
  out.sum = sum - base.sum;
  out.min = min;
  out.max = max;
  if (out.count == 0) {
    out.min = 0;
    out.max = 0;
    return out;
  }
  // The cumulative extremes may belong to samples outside the delta. Clamp
  // them into the delta's occupied bucket span so a value sitting exactly on
  // a bucket bound lands the same here as in a fresh histogram — the
  // run-scoped histograms in the JSON report and the cumulative metrics
  // snapshot must agree at bucket edges. The saturation bucket has no upper
  // edge and bucket 0 no lower one, so those directions keep the carried
  // extreme.
  std::size_t lo = 0;
  while (out.buckets[lo] == 0) ++lo;
  std::size_t hi = kHistogramBuckets - 1;
  while (out.buckets[hi] == 0) --hi;
  if (lo > 0 && out.min < histogram_bucket_bound(lo - 1) + 1) {
    out.min = histogram_bucket_bound(lo - 1) + 1;
  }
  if (hi < kHistogramBuckets - 1 && out.max > histogram_bucket_bound(hi)) {
    out.max = histogram_bucket_bound(hi);
  }
  return out;
}

void HistogramSnapshot::merge_from(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  sum += other.sum;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }
  count += other.count;
}

std::string HistogramSnapshot::to_json() const {
  std::string out;
  const auto field = [&out](const char* key, std::string value) {
    out += key;
    out += value;
  };
  field("{\"count\": ", std::to_string(count));
  field(", \"sum\": ", std::to_string(sum));
  field(", \"min\": ", std::to_string(count > 0 ? min : 0));
  field(", \"max\": ", std::to_string(count > 0 ? max : 0));
  field(", \"mean\": ", json_double(mean()));
  field(", \"p50\": ", std::to_string(quantile(0.50)));
  field(", \"p90\": ", std::to_string(quantile(0.90)));
  field(", \"p99\": ", std::to_string(quantile(0.99)));
  out += ", \"buckets\": [";
  bool first = true;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (!first) out += ", ";
    out += '[';
    out += std::to_string(histogram_bucket_bound(i));
    out += ", ";
    out += std::to_string(buckets[i]);
    out += ']';
    first = false;
  }
  out += "]}";
  return out;
}

void LatencyHistogram::Shard::observe(std::int64_t v) noexcept {
  buckets[histogram_bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  sum.fetch_add(v, std::memory_order_relaxed);
  // min/max via CAS so concurrent observers never lose an extreme. The
  // first observation initializes both (count incremented last, so a
  // racing snapshot may briefly see count 0 with extremes set — harmless).
  if (count.load(std::memory_order_relaxed) == 0) {
    std::int64_t expected = 0;
    min.compare_exchange_strong(expected, v, std::memory_order_relaxed);
    expected = 0;
    max.compare_exchange_strong(expected, v, std::memory_order_relaxed);
  }
  std::int64_t cur = min.load(std::memory_order_relaxed);
  while (v < cur &&
         !min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max.load(std::memory_order_relaxed);
  while (v > cur &&
         !max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  count.fetch_add(1, std::memory_order_relaxed);
}

void LatencyHistogram::Shard::add(const HistogramSnapshot& s) noexcept {
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (s.buckets[i] > 0) {
      buckets[i].fetch_add(s.buckets[i], std::memory_order_relaxed);
    }
  }
  if (s.count == 0) return;
  sum.fetch_add(s.sum, std::memory_order_relaxed);
  if (count.load(std::memory_order_relaxed) == 0) {
    min.store(s.min, std::memory_order_relaxed);
    max.store(s.max, std::memory_order_relaxed);
  } else {
    std::int64_t cur = min.load(std::memory_order_relaxed);
    while (s.min < cur &&
           !min.compare_exchange_weak(cur, s.min, std::memory_order_relaxed)) {
    }
    cur = max.load(std::memory_order_relaxed);
    while (s.max > cur &&
           !max.compare_exchange_weak(cur, s.max, std::memory_order_relaxed)) {
    }
  }
  count.fetch_add(s.count, std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::Shard::snapshot() const noexcept {
  HistogramSnapshot out;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    out.buckets[i] = buckets[i].load(std::memory_order_relaxed);
    out.count += out.buckets[i];
  }
  out.sum = sum.load(std::memory_order_relaxed);
  out.min = min.load(std::memory_order_relaxed);
  out.max = max.load(std::memory_order_relaxed);
  return out;
}

void LatencyHistogram::Shard::reset() noexcept {
  for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
  count.store(0, std::memory_order_relaxed);
  sum.store(0, std::memory_order_relaxed);
  min.store(0, std::memory_order_relaxed);
  max.store(0, std::memory_order_relaxed);
}

void LatencyHistogram::merge_from(const LatencyHistogram& other) noexcept {
  // Fold into one shard: merge_from is a per-run bulk operation (e.g. the
  // thread pool folding a worker's queue-wait histogram into the registry),
  // never an inner-loop write, so contention padding doesn't matter here.
  shards_[0].add(other.snapshot());
}

HistogramSnapshot LatencyHistogram::snapshot() const noexcept {
  HistogramSnapshot out = shards_[0].snapshot();
  for (std::size_t i = 1; i < kMetricShards; ++i) {
    const HistogramSnapshot s = shards_[i].snapshot();
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      out.buckets[b] += s.buckets[b];
    }
    out.sum += s.sum;
    if (s.count > 0) {
      if (out.count == 0 || s.min < out.min) out.min = s.min;
      if (out.count == 0 || s.max > out.max) out.max = s.max;
    }
    out.count += s.count;
  }
  return out;
}

void LatencyHistogram::reset() noexcept {
  for (auto& s : shards_) s.reset();
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // unique_ptr values keep metric addresses stable across rehash-free
  // map growth; std::less<> enables string_view lookup without a copy.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>> histograms;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

namespace {
template <typename Map, typename T>
T& find_or_create(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return *it->second;
}
}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(impl_->mu);
  return find_or_create<decltype(impl_->counters), Counter>(impl_->counters,
                                                            name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(impl_->mu);
  return find_or_create<decltype(impl_->gauges), Gauge>(impl_->gauges, name);
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(impl_->mu);
  return find_or_create<decltype(impl_->histograms), LatencyHistogram>(
      impl_->histograms, name);
}

void MetricsRegistry::reset() {
  std::lock_guard lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c->reset();
  for (auto& [name, g] : impl_->gauges) g->reset();
  for (auto& [name, h] : impl_->histograms) h->reset();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(impl_->mu);
  std::string out = "{\"counters\": {";
  bool first = true;
  const auto append_key = [&out, &first](const std::string& name) {
    if (!first) out += ", ";
    out += '"';
    out += name;
    out += "\": ";
    first = false;
  };
  for (const auto& [name, c] : impl_->counters) {
    append_key(name);
    out += std::to_string(c->value());
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : impl_->gauges) {
    append_key(name);
    out += std::to_string(g->value());
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : impl_->histograms) {
    append_key(name);
    out += h->snapshot().to_json();
  }
  out += "}}";
  return out;
}

namespace {

// "pcap.records" -> "tdat_pcap_records"; anything outside [a-zA-Z0-9_]
// becomes '_' so every name is a valid Prometheus metric name.
std::string prometheus_name(const std::string& name) {
  std::string out = "tdat_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard lock(impl_->mu);
  std::string out;
  for (const auto& [name, c] : impl_->counters) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : impl_->gauges) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + std::to_string(g->value()) + "\n";
  }
  for (const auto& [name, h] : impl_->histograms) {
    const std::string pname = prometheus_name(name);
    const HistogramSnapshot s = h->snapshot();
    out += "# TYPE " + pname + " histogram\n";
    // Cumulative buckets up to the highest occupied one; `le` bounds are the
    // pow2 buckets' inclusive upper edges, so the exposition and the JSON
    // snapshot bucket samples identically at the edges.
    std::size_t top = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (s.buckets[i] > 0) top = i;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; s.count > 0 && i <= top; ++i) {
      cumulative += s.buckets[i];
      out += pname + "_bucket{le=\"" +
             std::to_string(histogram_bucket_bound(i)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(s.count) + "\n";
    out += pname + "_sum " + std::to_string(s.sum) + "\n";
    out += pname + "_count " + std::to_string(s.count) + "\n";
  }
  return out;
}

MetricsRegistry& metrics() {
  // Leaked on purpose: worker threads may record into the registry from
  // thread_local destructors that run after static destruction begins.
  static MetricsRegistry* g = new MetricsRegistry;
  return *g;
}

}  // namespace tdat
