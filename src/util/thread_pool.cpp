#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace tdat {

std::size_t default_jobs() {
  if (const char* env = std::getenv("TDAT_JOBS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
    return 1;  // set but unparsable/zero: stay serial rather than guess
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  tasks_total_ = &metrics().counter("pool.tasks");
  workers_gauge_ = &metrics().gauge("pool.workers");
  queue_wait_us_ = &metrics().histogram("pool.queue_wait_us");
  workers_gauge_->add(static_cast<std::int64_t>(threads));
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_gauge_->add(-static_cast<std::int64_t>(workers_.size()));
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(Task{monotonic_micros(), std::move(task)});
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ and nothing left to run
    Task task = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;
    lock.unlock();
    queue_wait_us_->observe(monotonic_micros() - task.enqueued_us);
    tasks_total_->inc();
    {
      TDAT_TRACE_SPAN("pool.task", "pool");
      task.fn();
    }
    lock.lock();
    --busy_;
    if (queue_.empty() && busy_ == 0) idle_cv_.notify_all();
  }
}

void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (jobs > n) jobs = n;

  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  const auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  {
    ThreadPool pool(jobs);
    for (std::size_t w = 0; w < jobs; ++w) pool.submit(drain);
    pool.wait_idle();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace tdat
