// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte spans.
//
// Used to guard on-disk durability artifacts (.tdckpt checkpoints) against
// torn or bit-flipped writes. Not a cryptographic hash; it detects accidental
// corruption, not tampering.
#pragma once

#include <cstdint>
#include <span>

namespace tdat {

// One-shot CRC-32 of `data`, with the conventional init/xorout (all-ones).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

// Incremental form: feed `crc32_update` the running state (start from
// `kCrc32Init`), then finalize with `crc32_final`.
inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state,
                                         std::span<const std::uint8_t> data);
[[nodiscard]] inline std::uint32_t crc32_final(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

}  // namespace tdat
