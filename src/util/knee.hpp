// Knee-point detection on a sorted curve using the L-method of Salvador &
// Chan ("Determining the number of clusters/segments in hierarchical
// clustering/segmentation algorithms", ICTAI 2004) — reference [27] of the
// paper. T-DAT uses it to locate the knee in a sorted gap-length curve, which
// marks the value of a BGP sender's pacing timer (paper §IV-B, Fig. 17).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace tdat {

struct KneeResult {
  std::size_t index = 0;   // index of the knee point in the input curve
  double value = 0.0;      // y-value at the knee
  double fit_error = 0.0;  // total weighted RMSE of the two-line fit
};

// Finds the knee of y(i) (i = 0..n-1) by fitting two straight lines, one to
// the left and one to the right of every candidate split, and picking the
// split minimizing the size-weighted RMSE. Returns nullopt for fewer than
// 4 points (no meaningful two-line fit exists).
[[nodiscard]] std::optional<KneeResult> find_knee(const std::vector<double>& y);

}  // namespace tdat
