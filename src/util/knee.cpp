#include "util/knee.hpp"

#include <cmath>
#include <limits>

namespace tdat {
namespace {

// Least-squares line fit over y[lo, hi); returns the RMSE of the fit.
double line_fit_rmse(const std::vector<double>& y, std::size_t lo, std::size_t hi) {
  const auto n = static_cast<double>(hi - lo);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    const auto x = static_cast<double>(i);
    sx += x;
    sy += y[i];
    sxx += x * x;
    sxy += x * y[i];
  }
  const double denom = n * sxx - sx * sx;
  double slope = 0.0;
  double intercept = sy / n;
  if (denom != 0.0) {
    slope = (n * sxy - sx * sy) / denom;
    intercept = (sy - slope * sx) / n;
  }
  double sse = 0.0;
  for (std::size_t i = lo; i < hi; ++i) {
    const double e = y[i] - (slope * static_cast<double>(i) + intercept);
    sse += e * e;
  }
  return std::sqrt(sse / n);
}

}  // namespace

std::optional<KneeResult> find_knee(const std::vector<double>& y) {
  const std::size_t n = y.size();
  if (n < 4) return std::nullopt;

  KneeResult best;
  double best_err = std::numeric_limits<double>::infinity();
  // Each side of the split needs at least 2 points for a line.
  for (std::size_t c = 2; c + 2 <= n; ++c) {
    const double lhs = line_fit_rmse(y, 0, c);
    const double rhs = line_fit_rmse(y, c, n);
    const double total = (static_cast<double>(c) * lhs +
                          static_cast<double>(n - c) * rhs) /
                         static_cast<double>(n);
    if (total < best_err) {
      best_err = total;
      best.index = c;
      best.value = y[c];
      best.fit_error = total;
    }
  }
  if (!std::isfinite(best_err)) return std::nullopt;
  return best;
}

}  // namespace tdat
