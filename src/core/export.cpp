#include "core/export.hpp"

#include "util/metrics.hpp"  // json_double: locale-independent doubles

namespace tdat {
namespace {

void append_kv(std::string& out, const char* key, std::int64_t value,
               bool trailing_comma = true) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
  if (trailing_comma) out += ',';
}

}  // namespace

std::string series_to_json(const EventSeries& series) {
  std::string out = "{\"name\":\"" + series.name() + "\",\"size_us\":" +
                    std::to_string(series.size()) + ",\"events\":[";
  bool first = true;
  for (const Event& e : series.events()) {
    if (!first) out += ',';
    first = false;
    out += '{';
    append_kv(out, "begin", e.range.begin);
    append_kv(out, "end", e.range.end);
    append_kv(out, "packets", static_cast<std::int64_t>(e.packets));
    append_kv(out, "bytes", static_cast<std::int64_t>(e.bytes));
    append_kv(out, "trace_ref", e.trace_ref, /*trailing_comma=*/false);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string registry_to_json(const SeriesRegistry& registry) {
  std::string out = "{";
  bool first = true;
  for (const std::string& name : registry.names()) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + series_to_json(registry.get(name));
  }
  out += '}';
  return out;
}

std::string report_to_json(const DelayReport& report) {
  std::string out = "{\"window\":{";
  append_kv(out, "begin", report.window.begin);
  append_kv(out, "end", report.window.end, false);
  out += "},\"factors\":{";
  for (std::size_t i = 0; i < kFactorCount; ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += to_string(static_cast<Factor>(i));
    out += "\":";
    out += json_double(report.factor_ratio[i]);
  }
  out += "},\"groups\":{";
  for (std::size_t g = 0; g < kGroupCount; ++g) {
    if (g != 0) out += ',';
    out += '"';
    out += to_string(static_cast<FactorGroup>(g));
    out += "\":{\"ratio\":";
    out += json_double(report.group_ratio[g]);
    out += ",\"major\":";
    out += report.group_major[g] ? "true" : "false";
    out += ",\"dominant\":\"";
    out += to_string(report.dominant_factor[g]);
    out += "\"}";
  }
  out += "}}";
  return out;
}

std::string analysis_to_json(const ConnectionAnalysis& analysis) {
  return analysis_to_json_open(analysis) + "}";
}

std::string analysis_to_json_open(const ConnectionAnalysis& analysis) {
  std::string out = "{\"connection\":\"" + analysis.key.to_string() + "\",";
  append_kv(out, "rtt_us", analysis.profile.rtt());
  append_kv(out, "mss", analysis.profile.mss());
  append_kv(out, "max_advertised_window",
            analysis.profile.max_advertised_window());
  out += "\"transfer\":{";
  append_kv(out, "begin", analysis.transfer.begin);
  append_kv(out, "end", analysis.transfer.end);
  append_kv(out, "updates", static_cast<std::int64_t>(analysis.mct.update_count));
  append_kv(out, "prefixes", static_cast<std::int64_t>(analysis.mct.prefix_count),
            false);
  out += "},\"report\":" + report_to_json(analysis.report);
  return out;
}

}  // namespace tdat
