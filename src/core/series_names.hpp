// Names of the 34 internal event series T-DAT generates (§III-C). Grouped
// by the rule that produces them: Extraction works on the packet trace
// alone; Interpretation renames series under the sniffer-location setting;
// Operation applies heuristics and set algebra over existing series.
#pragma once

namespace tdat::series {

// --- Extraction (Rule 1) ---
inline constexpr const char* kTransmission = "Transmission";
inline constexpr const char* kAckArrival = "AckArrival";
inline constexpr const char* kOutstanding = "Outstanding";
inline constexpr const char* kAdvWindow = "AdvWindow";
inline constexpr const char* kRetransmission = "Retransmission";
inline constexpr const char* kUpstreamLoss = "UpstreamLoss";
inline constexpr const char* kDownstreamLoss = "DownstreamLoss";
inline constexpr const char* kOutOfSequence = "OutOfSequence";
inline constexpr const char* kDuplicate = "Duplicate";
inline constexpr const char* kZeroAdvWindow = "ZeroAdvWindow";
inline constexpr const char* kKeepAlive = "KeepAlive";
inline constexpr const char* kKeepAliveOnly = "KeepAliveOnly";
inline constexpr const char* kIdle = "Idle";
inline constexpr const char* kDataFlight = "DataFlight";
inline constexpr const char* kAckFlight = "AckFlight";
inline constexpr const char* kHandshake = "Handshake";
inline constexpr const char* kTeardown = "Teardown";
inline constexpr const char* kRtoRecovery = "RtoRecovery";
inline constexpr const char* kFastRecovery = "FastRecovery";

// --- Interpretation (Rule 2) ---
inline constexpr const char* kSendLocalLoss = "SendLocalLoss";
inline constexpr const char* kRecvLocalLoss = "RecvLocalLoss";
inline constexpr const char* kNetworkLoss = "NetworkLoss";
inline constexpr const char* kBgpKeepAlive = "BgpKeepAlive";

// --- Operation (Rules 3 & 4) ---
inline constexpr const char* kSendAppLimited = "SendAppLimited";
inline constexpr const char* kSmallAdvWindow = "SmallAdvWindow";
inline constexpr const char* kLargeAdvWindow = "LargeAdvWindow";
inline constexpr const char* kAdvBndOut = "AdvBndOut";
inline constexpr const char* kCwndBndOut = "CwndBndOut";
inline constexpr const char* kSmallAdvBndOut = "SmallAdvBndOut";
inline constexpr const char* kLargeAdvBndOut = "LargeAdvBndOut";
inline constexpr const char* kZeroAdvBndOut = "ZeroAdvBndOut";
inline constexpr const char* kBandwidthLimited = "BandwidthLimited";
inline constexpr const char* kLossRecovery = "LossRecovery";
inline constexpr const char* kWindowLimited = "WindowLimited";

}  // namespace tdat::series
