// The always-on incremental analysis engine (DESIGN.md §15). Where
// run_pipeline drains a finished source once and analyzes at the end,
// LiveEngine runs forever in epochs:
//
//   run_epoch()   ingest whatever the source has right now (raw-record
//                 batches through the same header decoder as batch ingest),
//                 demux into the live connection table, re-analyze exactly
//                 the connections that received packets — analyze_connection
//                 is a pure function of (connection, options), so
//                 re-analyzing a connection over its grown packet list
//                 yields what batch analysis of the same packets would —
//                 then apply the bounded-memory policies below.
//   eviction      with `window > 0`, packets older than (newest ts − window)
//                 are dropped from each live connection, keeping the first
//                 few packets (the handshake that anchors the profile) and
//                 the most recent one. Analysis of evicted connections is an
//                 approximation over the retained window; with window == 0
//                 nothing is dropped and live results are bit-identical to
//                 batch.
//   idle GC       with `idle_gc > 0`, a connection idle that long is
//                 retired: its packets, event series, and non-OPEN messages
//                 are freed (the finished DelayReport/MCT/findings survive
//                 for snapshots) and its demux slot is forgotten, so a new
//                 flow on the same 4-tuple opens a fresh connection.
//
// render_snapshot() builds the standard ReportModel over the current state
// and runs it through the registered sinks, so a live snapshot is the same
// bytes the batch CLI would print for the same input — the keystone
// invariant the live equivalence tests enforce: replaying a finished
// capture through LiveEngine with eviction and GC disabled, then draining,
// produces byte-identical `agg`/`json`/`text` output to batch analyze.
#pragma once

#include <cstdint>
#include <vector>

#include "core/analyzer.hpp"
#include "core/checkpoint.hpp"
#include "core/locate.hpp"
#include "core/report.hpp"
#include "core/trace_source.hpp"
#include "pcap/decode_batch.hpp"

namespace tdat {

struct LiveOptions {
  AnalyzerOptions analyzer;
  // Eviction horizon for per-connection packet history, in capture time
  // (not wall time). 0 keeps everything — required for batch equivalence.
  Micros window = 0;
  // Retire connections idle this long (capture time). 0 never retires.
  Micros idle_gc = 0;
  // Upper bound on raw records ingested per epoch, so one epoch's latency
  // stays bounded even when the source has a deep backlog.
  std::size_t epoch_batch_records = 4096;
};

// Cumulative engine accounting, separate from PipelineStats so live counters
// (GC, eviction) never leak into batch-identical outputs.
struct LiveEngineStats {
  std::uint64_t epochs = 0;            // epochs that ingested >= 1 record
  std::uint64_t records = 0;           // raw pcap records ingested
  std::uint64_t packets = 0;           // decoded TCP packets demuxed
  std::uint64_t connections_total = 0; // ever opened
  std::uint64_t connections_active = 0;
  std::uint64_t connections_gc = 0;    // retired by idle GC
  std::uint64_t packets_evicted = 0;   // dropped by the window policy
  Micros newest_ts = -1;               // newest capture timestamp seen
};

class LiveEngine {
 public:
  // The source must outlive the engine. Live sources (core/live_source.hpp)
  // return records provisionally; batch sources just drain.
  LiveEngine(TraceSource& source, LiveOptions opts);

  // One epoch: ingest (bounded by epoch_batch_records), re-analyze dirty
  // connections, evict / GC. Returns the number of raw records ingested —
  // 0 means the source had nothing right now (poll and retry while
  // source_live()) or is exhausted.
  std::size_t run_epoch();

  // True while the source may still produce input (see TraceSource::live).
  [[nodiscard]] bool source_live() const { return source_.live(); }
  // Checks the source for new input (re-stat a followed file, etc.).
  [[nodiscard]] bool poll_source() { return source_.poll_live(); }

  // Declares the input final and consumes it to the true end with batch
  // end-of-data semantics (truncation tallies included). After drain() the
  // engine state is final; render_snapshot() gives the batch-equivalent
  // report.
  void drain();

  // Renders the current state through the standard report sinks. Entries
  // appear in connection-open order — the batch report order.
  [[nodiscard]] std::string render_snapshot(
      ReportFormat format, const ReportRenderOptions& ropts = {});

  // Fills the engine-owned portion of a checkpoint: config echo, counters,
  // next_index/now, and each connection's retained packets as offset runs
  // derived from the rec_offset/rec_len stamps ingest left on them (retired
  // connections use the runs stashed at retirement). The caller supplies
  // capture identity and the source's resume state. Fails when any retained
  // packet has no capture-file backing (in-memory sources).
  [[nodiscard]] Result<Unit> checkpoint_state(LiveCheckpoint& out) const;

  // Rebuilds engine state from `ckpt` by mmapping the capture at
  // `capture_path` and re-ingesting every connection's runs in connection
  // order — the demux key->connection contract guarantees two connections on
  // one key never interleave, so per-connection replay reproduces connection
  // creation order, slot states, and packet lists exactly. Retired
  // connections are replayed, re-analyzed, then re-trimmed. Must be called
  // on a fresh engine; on error the engine state is unspecified and the
  // caller falls back to a new engine + full replay.
  [[nodiscard]] Result<Unit> restore_state(const LiveCheckpoint& ckpt,
                                           const std::string& capture_path);

  [[nodiscard]] const LiveEngineStats& stats() const { return stats_; }
  // Batch-shaped stats for --stats / the JSON stats sink.
  [[nodiscard]] PipelineStats pipeline_stats() const;
  // Packets currently held across all live connections — the quantity the
  // window/idle-GC policies exist to bound.
  [[nodiscard]] std::size_t retained_packets() const;

 private:
  void ingest_packet(DecodedPacket pkt);
  void analyze_dirty();
  void evict_window();
  void gc_idle();
  void retire(std::size_t i);

  struct ConnState {
    Micros last_ts = -1;  // newest packet timestamp (pre-clamp)
    SnifferLocationEstimate where;  // frozen at last analysis
    bool dirty = false;    // received packets since last analysis
    bool retired = false;  // idle-GC'd; demux slot forgotten
    // Offset runs of the packets held at retirement, stashed before the
    // packet list is freed so a retired connection stays checkpointable.
    std::vector<CheckpointRun> retired_runs;
  };

  TraceSource& source_;
  LiveOptions opts_;
  ConnectionDemux demux_;
  std::vector<ConnectionAnalysis> results_;  // parallel to demux connections
  std::vector<ConnState> states_;            // parallel to results_
  std::vector<std::uint32_t> dirty_;         // connection indices, this epoch
  std::vector<StreamRecord> record_buf_;
  std::vector<DecodedPacket> packet_buf_;
  DecodeScratch decode_scratch_;
  LiveEngineStats stats_;
  std::size_t next_index_ = 0;  // global trace record index
  std::size_t retired_ = 0;
  Micros now_ = -1;  // newest capture timestamp across all connections
  Micros ingest_wall_ = 0;
  Micros analyze_wall_ = 0;
  Micros total_wall_ = 0;
};

}  // namespace tdat
