// The single ingest abstraction of the analysis pipeline: a TraceSource
// yields decoded TCP packets one at a time, plus the capture-level accounting
// (bytes, records) PipelineStats reports. run_pipeline(core/analyzer.hpp)
// consumes any source the same way, so the in-memory PcapFile path, the
// streaming file path, and the rotated multi-file path share one pipeline —
// there is no per-path ingest loop left to keep bit-identical by hand.
//
// Sources and accounting:
//   PacketVectorSource  pre-decoded packets (analyze_packets); bytes = frame
//                       bytes, records = 0 (no capture headers were seen).
//   PcapFileSource      in-memory PcapFile (analyze_trace); decodes exactly
//                       like decode_pcap (skips truncated records, packet
//                       index = record position); bytes = 24-byte global
//                       header + per-record 16-byte header + stored bytes,
//                       matching PcapStream::bytes_read byte for byte.
//   PcapStreamSource    chunked streaming file ingest (analyze_file);
//                       zero-copy arena-backed frames.
//   MultiFileSource     rotated captures: opens every file (or every *.pcap
//                       in a directory), orders the files by their first
//                       record timestamp, and concatenates them with a
//                       continuous global record index.
#pragma once

#include <string>
#include <vector>

#include "pcap/mmap_file.hpp"
#include "pcap/packet.hpp"
#include "pcap/pcap_file.hpp"
#include "pcap/pcap_stream.hpp"
#include "pcap/record_runs.hpp"
#include "util/result.hpp"

namespace tdat {

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  // Fetches the next decoded packet. False at end of source.
  [[nodiscard]] virtual bool next(DecodedPacket& out) = 0;

  // Raw-record batch access, the input of the batched/parallel ingest stage
  // (core/ingest_pipeline.hpp). A source returning true from
  // supports_raw_records() serves its records undecoded through
  // next_raw_records: fills out[0..n) in capture order and returns n (0 at
  // end of source). The caller assigns trace indices by counting records —
  // one per raw record, decoded or not — which reproduces next()'s index
  // assignment exactly. Mixing next() and next_raw_records() on one source
  // is not supported.
  [[nodiscard]] virtual bool supports_raw_records() const { return false; }
  [[nodiscard]] virtual std::size_t next_raw_records(
      std::span<StreamRecord> out) {
    (void)out;
    return 0;
  }

  // Capture bytes consumed so far (headers included where the source sees
  // them) and pcap records seen (decoded or not). Stable after exhaustion.
  [[nodiscard]] virtual std::uint64_t bytes_ingested() const = 0;
  [[nodiscard]] virtual std::uint64_t records_seen() const = 0;

  // What ingest dropped or skipped to produce the packets served so far
  // (aggregated across files for multi-file sources); all-zero for sources
  // that cannot encounter capture corruption.
  [[nodiscard]] virtual IngestDiagnostics diagnostics() const { return {}; }
  // Appends one entry per underlying capture file (clean files included;
  // the report layer filters). Sources without file identity append nothing.
  virtual void collect_file_diagnostics(
      std::vector<FileIngestDiagnostics>& out) const {
    (void)out;
  }

  // ---- Live-source extension (core/live_source.hpp implements these) ----
  // While live() is true, next()/next_raw_records() returning no records is
  // provisional — the capture is still being written. The caller polls
  // poll_live() (re-stat a followed file, check a feed) and retries; once
  // the input is known to be finished it calls begin_drain(), after which
  // the source applies batch end-of-data semantics (truncation tallies
  // included) and exhausts normally. Batch sources are never live.
  [[nodiscard]] virtual bool live() const { return false; }
  // Returns true when new input may be available for a retry.
  [[nodiscard]] virtual bool poll_live() { return false; }
  virtual void begin_drain() {}
};

// Pre-decoded packets, handed out in order. Owns the vector.
class PacketVectorSource final : public TraceSource {
 public:
  explicit PacketVectorSource(std::vector<DecodedPacket> packets)
      : packets_(std::move(packets)) {}

  [[nodiscard]] bool next(DecodedPacket& out) override;
  [[nodiscard]] std::uint64_t bytes_ingested() const override { return bytes_; }
  [[nodiscard]] std::uint64_t records_seen() const override { return 0; }

 private:
  std::vector<DecodedPacket> packets_;
  std::size_t next_ = 0;
  std::uint64_t bytes_ = 0;
};

// In-memory PcapFile. The file must outlive the source (frames are spans
// into its record buffers).
class PcapFileSource final : public TraceSource {
 public:
  PcapFileSource(const PcapFile& file, bool verify_checksums);

  [[nodiscard]] bool next(DecodedPacket& out) override;
  [[nodiscard]] bool supports_raw_records() const override { return true; }
  [[nodiscard]] std::size_t next_raw_records(
      std::span<StreamRecord> out) override;
  [[nodiscard]] std::uint64_t bytes_ingested() const override { return bytes_; }
  [[nodiscard]] std::uint64_t records_seen() const override {
    return file_->records.size();
  }
  [[nodiscard]] IngestDiagnostics diagnostics() const override {
    return file_->ingest;
  }

 private:
  const PcapFile* file_;
  bool verify_checksums_;
  std::size_t next_ = 0;
  std::uint64_t bytes_ = 0;
};

// Streaming single-file ingest over PcapStream; frames stay zero-copy views
// pinned by their arena chunk.
class PcapStreamSource final : public TraceSource {
 public:
  [[nodiscard]] static Result<PcapStreamSource> open(
      const std::string& path, bool verify_checksums,
      const IngestPolicy& policy = {});

  explicit PcapStreamSource(PcapStream stream, bool verify_checksums,
                            std::size_t first_index = 0)
      : stream_(std::move(stream)),
        verify_checksums_(verify_checksums),
        index_(first_index) {}

  [[nodiscard]] bool next(DecodedPacket& out) override;
  [[nodiscard]] bool supports_raw_records() const override { return true; }
  [[nodiscard]] std::size_t next_raw_records(
      std::span<StreamRecord> out) override;
  [[nodiscard]] std::uint64_t bytes_ingested() const override {
    return stream_.bytes_read();
  }
  [[nodiscard]] std::uint64_t records_seen() const override {
    return stream_.records_read();
  }
  [[nodiscard]] IngestDiagnostics diagnostics() const override {
    return stream_.diagnostics();
  }
  void collect_file_diagnostics(
      std::vector<FileIngestDiagnostics>& out) const override {
    if (!path_.empty()) out.push_back({path_, stream_.diagnostics()});
  }
  // Global record index after the records served so far (for multi-file
  // concatenation).
  [[nodiscard]] std::size_t next_index() const { return index_; }

 private:
  PcapStream stream_;
  bool verify_checksums_;
  std::size_t index_;
  std::string path_;  // empty for memory-backed streams
};

// Rotated-capture concatenation. `inputs` may mix capture files and
// directories; a directory contributes every regular file directly inside it
// (a rotated-capture drop usually holds nothing else; name them *.pcap).
// Files are ordered by the timestamp of their first record — rotation order —
// then streamed back to back with a continuous global record index.
class MultiFileSource final : public TraceSource {
 public:
  [[nodiscard]] static Result<MultiFileSource> open(
      const std::vector<std::string>& inputs, bool verify_checksums,
      const IngestPolicy& policy = {});

  [[nodiscard]] bool next(DecodedPacket& out) override;
  [[nodiscard]] bool supports_raw_records() const override { return true; }
  [[nodiscard]] std::size_t next_raw_records(
      std::span<StreamRecord> out) override;
  [[nodiscard]] std::uint64_t bytes_ingested() const override;
  [[nodiscard]] std::uint64_t records_seen() const override;
  [[nodiscard]] IngestDiagnostics diagnostics() const override;
  void collect_file_diagnostics(
      std::vector<FileIngestDiagnostics>& out) const override;

  [[nodiscard]] std::size_t file_count() const { return parts_.size(); }

 private:
  struct Part {
    PcapStream stream;
    std::string path;
    StreamRecord pending;  // one-record lookahead (first record decides order)
    bool has_pending = false;
  };

  MultiFileSource() = default;

  std::vector<Part> parts_;  // ordered by first-record timestamp
  std::size_t current_ = 0;
  std::size_t index_ = 0;    // continuous global record index
  bool verify_checksums_ = false;
};

// Fleet-worker ingest: mmaps the capture and serves only the records named
// by a shard plan's offset runs (pcap/record_runs.hpp), zero-copy out of the
// shared mapping. The plan sweep already saw — and accounted — every damaged
// region, so this source's own diagnostics are always clean; the coordinator
// injects the plan-time IngestDiagnostics into the merged archive instead
// (DESIGN.md §14). After the drain, failed() reports a plan/image mismatch
// (stale plan over a rewritten capture), which the worker must surface as an
// ingest error rather than silently returning a partial archive.
class OffsetRunSource final : public TraceSource {
 public:
  [[nodiscard]] static Result<OffsetRunSource> open(const std::string& path,
                                                    std::vector<RecordRun> runs,
                                                    bool verify_checksums);

  [[nodiscard]] bool next(DecodedPacket& out) override;
  [[nodiscard]] bool supports_raw_records() const override { return true; }
  [[nodiscard]] std::size_t next_raw_records(
      std::span<StreamRecord> out) override;
  // The 24-byte global header is charged here (the plan made this worker read
  // it), record header + stored bytes per served record — the same accounting
  // rule as every other capture-backed source.
  [[nodiscard]] std::uint64_t bytes_ingested() const override {
    return 24 + reader_.bytes_read();
  }
  [[nodiscard]] std::uint64_t records_seen() const override {
    return reader_.records_read();
  }

  [[nodiscard]] bool failed() const { return reader_.failed(); }
  [[nodiscard]] const std::string& error() const { return reader_.error(); }

 private:
  OffsetRunSource(RecordRunReader reader, bool verify_checksums)
      : reader_(std::move(reader)), verify_checksums_(verify_checksums) {}

  RecordRunReader reader_;
  bool verify_checksums_;
  std::size_t index_ = 0;  // local indices; archives never depend on them
};

}  // namespace tdat
