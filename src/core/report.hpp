// The unified report model: one structure describing a finished trace
// analysis, rendered by pluggable sinks. build_report_model() collects what
// every output needs (per-connection analysis + inferred sniffer position);
// render_report() turns it into text (the CLI's human summary), JSON (an
// array of per-connection objects with a "detectors" member), or CSV
// (connection,section,key,value rows). Detector findings reach every sink
// through the pass rendering hooks (core/pass.hpp), so a new detector pass
// appears in all three formats without touching this layer.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/analyzer.hpp"
#include "core/locate.hpp"
#include "util/result.hpp"

namespace tdat {

enum class ReportFormat : std::uint8_t { kText, kJson, kCsv, kAgg };

// "text" | "json" | "csv" | "agg"; anything else is an error naming the
// valid set.
[[nodiscard]] Result<ReportFormat> parse_report_format(std::string_view value);

struct ReportEntry {
  const Connection* conn = nullptr;
  const ConnectionAnalysis* analysis = nullptr;
  SnifferLocationEstimate where;
};

struct ReportModel {
  std::vector<ReportEntry> entries;  // one per connection, trace order

  // Ingest damage carried over from the pipeline stats. When all-clean
  // (the overwhelmingly common case) every sink renders exactly what it
  // rendered before diagnostics existed — clean output stays byte-stable.
  IngestDiagnostics ingest;
  std::vector<FileIngestDiagnostics> files;  // only files with errors
  std::uint64_t quarantined = 0;
};

struct ReportRenderOptions {
  // Series coverage maps appended per connection (text format only).
  std::vector<std::string> series;
  // Operator-supplied shard/run label stamped into archive rows (agg format
  // only; "" is a valid default run).
  std::string run_id;
};

// Renderer backing a format core does not render itself. kAgg's renderer
// lives in src/agg (the .tdagg archive sink); the CLI registers it at
// startup via agg::register_aggregate_sink(), keeping tdat_core free of the
// aggregation layer. render_report aborts if the format was never wired up —
// that is a build/startup bug, not bad input.
using ReportRenderer = std::string (*)(const ReportModel&,
                                       const ReportRenderOptions&);
void register_report_renderer(ReportFormat format, ReportRenderer renderer);

// The model borrows from `analysis`, which must outlive it.
[[nodiscard]] ReportModel build_report_model(const TraceAnalysis& analysis);

[[nodiscard]] std::string render_report(const ReportModel& model,
                                        ReportFormat format,
                                        const ReportRenderOptions& opts = {});

}  // namespace tdat
