// The detection stage as registered passes. Every one of the eight §III-D
// factor computations and the four §II detectors (plus the capture-void
// screen) is an AnalysisPass: a named unit with declared series
// dependencies that executes over a shared immutable AnalysisContext and
// writes into the retained ConnectionAnalysis. analyze_connection drives the
// registered passes in registration order, so adding a detector is one
// ~100-line leaf: implement the pass, register it, and it shows up in
// `tdat passes`, in --detectors selection, in every output sink (via the
// findings hooks), and in the per-pass metrics/trace spans — with no edit to
// the core driver.
//
// Scratch ownership follows the analysis-stage discipline (DESIGN.md §7):
// each pass may allocate one PassScratch per worker (make_scratch), held in
// the worker's AnalysisScratch and reused across connections, so the steady
// state stays allocation-free. The shared DelayScratch for the factor sets
// lives in the context because finalize_delay_groups needs all eight sets
// together after the factor passes ran.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/analyzer.hpp"
#include "util/result.hpp"

namespace tdat {

class Counter;
class LatencyHistogram;

enum class PassKind : std::uint8_t { kFactor, kDetector };

[[nodiscard]] const char* to_string(PassKind kind);

struct PassInfo {
  const char* name;     // stable kebab-case literal: metrics, spans, CLI
  const char* summary;  // one line for `tdat passes`
  PassKind kind = PassKind::kDetector;
  Factor factor = Factor::kBgpSenderApp;  // meaningful when kind == kFactor
  std::span<const char* const> deps;      // series the pass reads
};

// Everything a pass may read. Immutable and shared across the passes of one
// connection; per-pass mutable state goes in the pass's scratch.
struct AnalysisContext {
  const Connection& conn;
  const ConnectionProfile& profile;
  const SeriesRegistry& registry;
  TimeRange transfer;  // the analysis window ({} when no transfer was found)
  const AnalyzerOptions& opts;
  DelayScratch& delay;  // shared factor working sets (begin/finalize framing)
};

// Per-pass reusable working state, reset — never freed — between
// connections by the pass itself at the top of run().
struct PassScratch {
  virtual ~PassScratch() = default;
};

class AnalysisPass {
 public:
  virtual ~AnalysisPass() = default;

  [[nodiscard]] virtual const PassInfo& info() const = 0;

  // One scratch per worker; nullptr when the pass needs none.
  [[nodiscard]] virtual std::unique_ptr<PassScratch> make_scratch() const {
    return nullptr;
  }

  // Computes the pass over one connection, writing into `out` (the report's
  // factor slots for factor passes, out.findings for detectors).
  virtual void run(const AnalysisContext& ctx, PassScratch* scratch,
                   ConnectionAnalysis& out) const = 0;

  // Rendering hooks: how this pass's findings appear in each sink
  // (core/report.hpp). Defaults render nothing — factor passes are already
  // covered by the report tables every sink prints.
  virtual void text_findings(const ConnectionAnalysis& analysis,
                             std::string& out) const;
  // Appends `"key":{...}` (no trailing comma); return false to omit.
  [[nodiscard]] virtual bool json_findings(const ConnectionAnalysis& analysis,
                                           std::string& out) const;
  // Appends full `connection,detector,<key>,<value>` CSV lines.
  virtual void csv_findings(const ConnectionAnalysis& analysis,
                            const std::string& conn, std::string& out) const;
};

// The process-wide pass registry: the eight factor passes in Factor order,
// then the detectors in report order. Pass ids are registration indices and
// index PassSelection bits.
class PassRegistry {
 public:
  [[nodiscard]] std::span<const AnalysisPass* const> passes() const {
    return passes_;
  }
  [[nodiscard]] std::size_t size() const { return passes_.size(); }
  // Id of the named pass, or npos when unknown.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t find(std::string_view name) const;

 private:
  friend PassRegistry& pass_registry();
  PassRegistry();

  std::vector<const AnalysisPass*> passes_;
};

[[nodiscard]] PassRegistry& pass_registry();

// One registered pass's execution slot inside a worker's AnalysisScratch:
// the pass, its warm scratch, and its metric handles (pass.<name>.us /
// pass.<name>.runs), resolved once so the hot path is a clock read plus
// relaxed shard RMWs.
struct PassExecState {
  const AnalysisPass* pass = nullptr;
  std::size_t id = 0;
  std::unique_ptr<PassScratch> scratch;
  LatencyHistogram* us = nullptr;
  Counter* runs = nullptr;
};

// Fills `out` with one exec slot per registered pass, in registration order.
void init_pass_states(std::vector<PassExecState>& out);

// Parses the CLI --detectors value: "all" enables everything, "none" keeps
// only the factor passes (the report always needs those), and a
// comma-separated list of pass names enables exactly those detectors on top
// of the factors. Unknown names are an error listing the valid ones.
[[nodiscard]] Result<PassSelection> parse_detector_selection(
    std::string_view value);

}  // namespace tdat
