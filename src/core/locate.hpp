// Sniffer-location inference (§III-C2). T-DAT takes the location as a
// user setting, but the paper notes it "is possible to infer the location
// based on the inter-arrival time of packets and ACKs (d1 and d2)" after
// Siekkinen et al. [28]. This implements that inference:
//
//   d1 = Sniffer -> Receiver -> Sniffer delay, estimated as the minimum gap
//        between a data packet and the ACK that covers exactly its end
//        (the minimum dodges delayed ACKs);
//   d2 = Sniffer -> Sender -> Sniffer delay, estimated as the minimum gap
//        between an ACK and the next data packet it liberated.
//
// d1 << d2 places the sniffer near the receiver (the paper's Fig. 2
// deployment); d1 >> d2 near the sender; comparable values, mid-path.
#pragma once

#include <optional>

#include "core/options.hpp"
#include "tcp/connection.hpp"
#include "tcp/profile.hpp"

namespace tdat {

struct SnifferLocationEstimate {
  SnifferLocation location = SnifferLocation::kMiddle;
  Micros d1 = -1;          // -1: no sample
  Micros d2 = -1;
  bool confident = false;  // both estimates exist and are clearly apart
};

struct LocateOptions {
  // |d1/d2| beyond this ratio decides a side; below it, mid-path.
  double decisive_ratio = 4.0;
};

[[nodiscard]] SnifferLocationEstimate infer_sniffer_location(
    const Connection& conn, const ConnectionProfile& profile,
    const LocateOptions& opts = {});

}  // namespace tdat
