#include "core/live_source.hpp"

#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#endif

#include "pcap/decode.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"

namespace tdat {
namespace {

constexpr std::size_t kGlobalHeaderLen = 24;

// Stat `path`; true only for a regular file holding at least a complete
// pcap global header (anything shorter is a capture still being born).
bool stat_openable(const std::string& path, std::uint64_t& dev,
                   std::uint64_t& ino, std::uint64_t& size) {
#if defined(__unix__) || defined(__APPLE__)
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return false;
  if (!S_ISREG(st.st_mode) || st.st_size < 0) return false;
  dev = static_cast<std::uint64_t>(st.st_dev);
  ino = static_cast<std::uint64_t>(st.st_ino);
  size = static_cast<std::uint64_t>(st.st_size);
  return size >= kGlobalHeaderLen;
#else
  (void)path;
  (void)dev;
  (void)ino;
  (void)size;
  return false;
#endif
}

}  // namespace

// --------------------------------------------------------- RingBufferFeed --

void RingBufferFeed::append(std::span<const std::uint8_t> bytes) {
  std::lock_guard lock(mu_);
  if (closed_) return;
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void RingBufferFeed::close() {
  std::lock_guard lock(mu_);
  closed_ = true;
}

std::size_t RingBufferFeed::read(std::uint8_t* dst, std::size_t n) {
  std::lock_guard lock(mu_);
  const std::size_t got = std::min(n, buf_.size() - head_);
  std::memcpy(dst, buf_.data() + head_, got);
  head_ += got;
  // Compact once the consumed prefix dominates, so memory tracks the
  // unconsumed backlog instead of growing with the capture.
  if (head_ >= 4096 && head_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  return got;
}

std::size_t RingBufferFeed::available() const {
  std::lock_guard lock(mu_);
  return buf_.size() - head_;
}

bool RingBufferFeed::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

// ------------------------------------------------------- RingBufferSource --

RingBufferSource::RingBufferSource(std::shared_ptr<RingBufferFeed> feed,
                                   bool verify_checksums,
                                   const IngestPolicy& policy)
    : feed_(std::move(feed)), policy_(policy),
      verify_checksums_(verify_checksums) {}

bool RingBufferSource::try_open() {
  if (stream_) return true;
  if (failed_ || ended_) return false;
  if (feed_->available() < kGlobalHeaderLen && !feed_->closed()) return false;
  auto opened = PcapStream::from_feed(feed_, policy_);
  if (!opened.ok()) {
    failed_ = true;
    ended_ = true;
    error_ = opened.error();
    TDAT_LOG_WARN("live: feed is not a pcap stream: %s", error_.c_str());
    return false;
  }
  stream_.emplace(std::move(opened).value());
  if (draining_) stream_->begin_drain();
  return true;
}

bool RingBufferSource::next(DecodedPacket& out) {
  if (!try_open()) return false;
  StreamRecord rec;
  for (;;) {
    const StreamStatus st = stream_->next_live(rec);
    if (st == StreamStatus::kEnd) {
      ended_ = true;
      return false;
    }
    if (st == StreamStatus::kNeedMore) return false;
    const std::size_t i = index_++;
    if (rec.data.size() < rec.orig_len) continue;  // truncated capture
    if (auto pkt = decode_frame(rec.ts, i, rec.data, verify_checksums_,
                                rec.arena)) {
      out = std::move(*pkt);
      return true;
    }
  }
}

std::size_t RingBufferSource::next_raw_records(std::span<StreamRecord> out) {
  if (!try_open()) return 0;
  std::size_t n = 0;
  while (n < out.size()) {
    const StreamStatus st = stream_->next_live(out[n]);
    if (st != StreamStatus::kOk) {
      if (st == StreamStatus::kEnd) ended_ = true;
      break;
    }
    ++n;
  }
  index_ += n;
  return n;
}

std::uint64_t RingBufferSource::bytes_ingested() const {
  return stream_ ? stream_->bytes_read() : 0;
}

std::uint64_t RingBufferSource::records_seen() const {
  return stream_ ? stream_->records_read() : 0;
}

IngestDiagnostics RingBufferSource::diagnostics() const {
  return stream_ ? stream_->diagnostics() : IngestDiagnostics{};
}

bool RingBufferSource::live() const { return !ended_ && !failed_; }

bool RingBufferSource::poll_live() {
  if (ended_ || failed_) return false;
  if (!stream_) {
    return feed_->available() >= kGlobalHeaderLen || feed_->closed();
  }
  return feed_->available() > 0 || feed_->closed();
}

void RingBufferSource::begin_drain() {
  draining_ = true;
  if (!stream_ && !try_open()) {
    if (!stream_) ended_ = true;  // nothing ever arrived (or not a pcap)
    return;
  }
  stream_->begin_drain();
}

// ----------------------------------------------------------- FollowSource --

FollowSource::FollowSource(std::string path, bool verify_checksums,
                           const IngestPolicy& policy)
    : path_(std::move(path)), policy_(policy),
      verify_checksums_(verify_checksums) {
  // Growth happens through fread + re-fstat; the mmap fast path snapshots a
  // fixed size at open and must not be used for a file still being written.
  policy_.use_mmap = false;
}

FollowSource::FollowSource(std::string path, bool verify_checksums,
                           const IngestPolicy& policy,
                           const PcapStream::Resume& resume)
    : FollowSource(std::move(path), verify_checksums, policy) {
  resume_ = resume;
  index_ = static_cast<std::size_t>(resume.records);
}

PcapStream::Resume FollowSource::resume_state() const {
  PcapStream::Resume r;
  if (!stream_) return r;
  r.offset = stream_->bytes_read();
  r.records = stream_->records_read();
  r.last_ts = stream_->last_record_ts();
  r.diag = stream_->diagnostics();
  return r;
}

bool FollowSource::try_open() {
  if (stream_) return true;
  if (failed_ || ended_) return false;
  std::uint64_t dev = 0;
  std::uint64_t ino = 0;
  std::uint64_t size = 0;
  if (!stat_openable(path_, dev, ino, size)) return false;
  auto opened = resume_ ? PcapStream::open_resumed(path_, policy_, *resume_)
                        : PcapStream::open(path_, policy_);
  resume_.reset();  // only the first segment resumes; rotations start fresh
  if (!opened.ok()) {
    // The file holds >= 24 bytes yet fails header parse: not a pcap. That
    // is permanent damage, not a capture still being written.
    failed_ = true;
    ended_ = true;
    error_ = opened.error();
    TDAT_LOG_WARN("live: cannot follow %s: %s", path_.c_str(),
                  error_.c_str());
    return false;
  }
  stream_.emplace(std::move(opened).value());
  stream_->set_tail(!draining_);
  // Re-stat for identity as close to the open as possible (a rotation can
  // slip between the first stat and the fopen; the next poll re-checks).
  if (stat_openable(path_, dev, ino, size)) {
    dev_ = dev;
    ino_ = ino;
    have_id_ = true;
  } else {
    have_id_ = false;
  }
  rotated_ = false;
  metrics().counter("live.segments_opened").inc();
  TDAT_LOG_INFO("live: following %s", path_.c_str());
  return true;
}

void FollowSource::finalize_segment() {
  if (!stream_) return;
  past_diag_.add(stream_->diagnostics());
  past_bytes_ += stream_->bytes_read();
  past_records_ += stream_->records_read();
  past_files_.push_back({path_, stream_->diagnostics()});
  stream_.reset();
  have_id_ = false;
}

bool FollowSource::next(DecodedPacket& out) {
  StreamRecord rec;
  for (;;) {
    if (!stream_ && !try_open()) return false;
    const StreamStatus st = stream_->next_live(rec);
    if (st == StreamStatus::kNeedMore) return false;
    if (st == StreamStatus::kEnd) {
      finalize_segment();
      if (rotated_ && !draining_) {
        rotated_ = false;
        continue;
      }
      ended_ = true;
      return false;
    }
    const std::size_t i = index_++;
    if (rec.data.size() < rec.orig_len) continue;  // truncated capture
    if (auto pkt = decode_frame(rec.ts, i, rec.data, verify_checksums_,
                                rec.arena)) {
      out = std::move(*pkt);
      return true;
    }
  }
}

std::size_t FollowSource::next_raw_records(std::span<StreamRecord> out) {
  std::size_t n = 0;
  while (n < out.size()) {
    if (!stream_ && !try_open()) break;
    const StreamStatus st = stream_->next_live(out[n]);
    if (st == StreamStatus::kOk) {
      ++n;
      continue;
    }
    if (st == StreamStatus::kNeedMore) break;
    // kEnd: this segment is finished for good — either it was rotated away
    // and fully drained, the whole follow is draining, or the stream hit a
    // terminal condition (strict stop, resync budget).
    finalize_segment();
    if (rotated_ && !draining_) {
      rotated_ = false;
      continue;  // the new file at path_ (may not be ready yet)
    }
    ended_ = true;
    break;
  }
  index_ += n;
  return n;
}

std::uint64_t FollowSource::bytes_ingested() const {
  return past_bytes_ + (stream_ ? stream_->bytes_read() : 0);
}

std::uint64_t FollowSource::records_seen() const {
  return past_records_ + (stream_ ? stream_->records_read() : 0);
}

IngestDiagnostics FollowSource::diagnostics() const {
  IngestDiagnostics total = past_diag_;
  if (stream_) total.add(stream_->diagnostics());
  return total;
}

void FollowSource::collect_file_diagnostics(
    std::vector<FileIngestDiagnostics>& out) const {
  for (const FileIngestDiagnostics& f : past_files_) out.push_back(f);
  if (stream_) out.push_back({path_, stream_->diagnostics()});
}

bool FollowSource::live() const { return !ended_ && !failed_; }

bool FollowSource::poll_live() {
  if (ended_ || failed_) return false;
  if (!stream_) return try_open();
  if (stream_->poll_growth()) return true;
  if (rotated_ || draining_) return true;  // final records/tallies pending
  std::uint64_t dev = 0;
  std::uint64_t ino = 0;
  std::uint64_t size = 0;
  std::uint64_t consumed = stream_->file_bytes_consumed();
  if (!stat_openable(path_, dev, ino, size)) {
    // Path momentarily gone or reborn too small to judge — likely the
    // rename phase of a rotation; keep serving the open fd and re-check.
    return false;
  }
  const bool replaced = have_id_ && (dev != dev_ || ino != ino_);
  const bool shrunk = size < consumed;  // copytruncate under the reader
  if (replaced || shrunk) {
    // What the open fd can still deliver is final: drain it with batch
    // semantics (truncation tallies included), then reopen the path.
    stream_->begin_drain();
    rotated_ = true;
    metrics().counter("live.rotations").inc();
    TDAT_LOG_INFO("live: %s rotated (%s); draining old segment",
                  path_.c_str(), replaced ? "replaced" : "truncated");
    return true;
  }
  return false;
}

void FollowSource::begin_drain() {
  draining_ = true;
  if (!stream_ && !try_open()) {
    if (!stream_) ended_ = true;  // no capture ever appeared
    return;
  }
  (void)stream_->poll_growth();  // pick up bytes appended since the last read
  stream_->begin_drain();
}

}  // namespace tdat
