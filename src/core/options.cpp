#include "core/options.hpp"

namespace tdat {

const char* to_string(Factor f) {
  switch (f) {
    case Factor::kBgpSenderApp: return "BGP sender app";
    case Factor::kTcpCongestionWindow: return "TCP congestion window";
    case Factor::kSenderLocalLoss: return "Sender local packet loss";
    case Factor::kBgpReceiverApp: return "BGP receiver app";
    case Factor::kTcpAdvertisedWindow: return "TCP advertised window";
    case Factor::kReceiverLocalLoss: return "Receiver local packet loss";
    case Factor::kBandwidthLimited: return "Bandwidth limited";
    case Factor::kNetworkLoss: return "Network packet loss";
  }
  return "?";
}

const char* to_string(FactorGroup g) {
  switch (g) {
    case FactorGroup::kSender: return "Sender-side";
    case FactorGroup::kReceiver: return "Receiver-side";
    case FactorGroup::kNetwork: return "Network";
  }
  return "?";
}

FactorGroup group_of(Factor f) {
  switch (f) {
    case Factor::kBgpSenderApp:
    case Factor::kTcpCongestionWindow:
    case Factor::kSenderLocalLoss:
      return FactorGroup::kSender;
    case Factor::kBgpReceiverApp:
    case Factor::kTcpAdvertisedWindow:
    case Factor::kReceiverLocalLoss:
      return FactorGroup::kReceiver;
    case Factor::kBandwidthLimited:
    case Factor::kNetworkLoss:
      return FactorGroup::kNetwork;
  }
  return FactorGroup::kNetwork;
}

std::array<Factor, 3> factors_in(FactorGroup g) {
  switch (g) {
    case FactorGroup::kSender:
      return {Factor::kBgpSenderApp, Factor::kTcpCongestionWindow,
              Factor::kSenderLocalLoss};
    case FactorGroup::kReceiver:
      return {Factor::kBgpReceiverApp, Factor::kTcpAdvertisedWindow,
              Factor::kReceiverLocalLoss};
    case FactorGroup::kNetwork:
      return {Factor::kBandwidthLimited, Factor::kNetworkLoss,
              Factor::kNetworkLoss};
  }
  return {Factor::kNetworkLoss, Factor::kNetworkLoss, Factor::kNetworkLoss};
}

}  // namespace tdat
