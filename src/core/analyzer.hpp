// T-DAT top level (Fig. 10): pre-process the raw packet trace (connection
// extraction, profiles, ACK shifting), generate the event series, locate the
// BGP table transfer (TCP start + MCT end, §II-A), and run the registered
// analysis passes (core/pass.hpp) — the eight delay factors plus the §II
// detectors — over the transfer window.
//
// One pipeline, many sources: run_pipeline consumes any TraceSource
// (core/trace_source.hpp), so the in-memory path (analyze_trace /
// analyze_packets), the streaming path (analyze_file), and the rotated
// multi-file path (analyze_files) are thin wrappers around the same ingest
// loop and analysis stage. The stage runs analyze_connection per connection
// — serially for opts.jobs == 1, on a thread pool otherwise — with results
// written into pre-sized slots by connection index, so the output is
// bit-identical at any job count and across every ingest path.
#pragma once

#include <string>
#include <vector>

#include "bgp/mct.hpp"
#include "core/delay_report.hpp"
#include "core/detector_results.hpp"
#include "core/pcap2bgp.hpp"
#include "core/series_builder.hpp"
#include "pcap/pcap_file.hpp"
#include "tcp/profile.hpp"
#include "util/metrics.hpp"
#include "util/result.hpp"

namespace tdat {

class TraceSource;
struct PassExecState;

struct ConnectionAnalysis {
  std::size_t conn_index = 0;  // into TraceAnalysis::connections
  ConnKey key;
  ConnectionProfile profile;
  SeriesBundle bundle;                   // the 34 series + labeled packets
  std::vector<TimedBgpMessage> messages; // extracted by pcap2bgp
  MctResult mct;
  TimeRange transfer;                    // the analysis period
  DelayReport report;
  DetectorFindings findings;             // §II detector-pass results

  // Set when the connection was isolated instead of analyzed (unrecoverable
  // BGP framing, analysis failure — see AnalyzerOptions quarantine knobs).
  // Always a static string, so the happy path never allocates for it.
  const char* quarantine_reason = nullptr;

  [[nodiscard]] bool quarantined() const { return quarantine_reason != nullptr; }
  [[nodiscard]] Micros transfer_duration() const { return transfer.length(); }
  [[nodiscard]] const SeriesRegistry& series() const { return bundle.registry; }
};

// Throughput accounting for one pipeline run (§V-C: the Perl prototype's
// 26 s/connection is the number to beat). Wall times come from a monotonic
// clock; the rates divide by total_wall.
struct PipelineStats {
  std::uint64_t bytes_ingested = 0;  // capture bytes consumed (incl. headers)
  std::uint64_t records = 0;         // pcap records seen
  std::uint64_t packets = 0;         // decoded TCP packets
  std::uint64_t connections = 0;
  std::uint64_t quarantined = 0;     // connections isolated by quarantine
  IngestDiagnostics ingest;          // capture damage tallied by the source
  std::size_t jobs = 1;              // effective analysis worker count
  std::size_t ingest_jobs = 1;       // threads the ingest stage used
  Micros ingest_wall = 0;            // read + decode + connection demux
  // Wall time inside header decode, summed across decode workers (exceeds
  // the stage wall when decoding overlaps across cores).
  Micros decode_busy = 0;
  Micros analyze_wall = 0;           // per-connection analysis stage
  Micros total_wall = 0;

  // Per-stage observability, scoped to this run (snapshot deltas of the
  // process-wide registry): time tasks sat in the pool queue and the
  // distribution of per-connection analysis cost, both in microseconds.
  HistogramSnapshot queue_wait_us;
  HistogramSnapshot connection_us;
  // Full metrics-registry snapshot taken when the run finished ("" when not
  // captured); embedded verbatim by to_json under "metrics".
  std::string metrics_json;

  [[nodiscard]] double bytes_per_sec() const;
  [[nodiscard]] double packets_per_sec() const;
  [[nodiscard]] double connections_per_sec() const;
  // Per-stage throughput over the same capture bytes: what each stage would
  // sustain standing alone. ingest = read + decode + demux wall;
  // decode = summed decode-worker busy time; analysis = analysis-stage wall.
  [[nodiscard]] double ingest_bytes_per_sec() const;
  [[nodiscard]] double decode_bytes_per_sec() const;
  [[nodiscard]] double analysis_bytes_per_sec() const;
  // Locale-independent JSON (doubles via std::to_chars — the output never
  // depends on the process locale's decimal separator).
  [[nodiscard]] std::string to_json() const;
};

struct TraceAnalysis {
  std::vector<Connection> connections;
  std::vector<ConnectionAnalysis> results;  // parallel to connections
  PipelineStats stats;
  // Per-file ingest damage (empty for sources without file identity; clean
  // files included — the report layer filters).
  std::vector<FileIngestDiagnostics> file_diags;
};

// All reusable working state for one analysis worker. Owned by the caller
// (one per worker thread in run_analysis_stage); every sub-stage scratch in
// here is reset — never freed — between connections, so in steady state
// analyze_connection performs no heap allocation beyond the retained output
// it writes into ConnectionAnalysis.
struct AnalysisScratch {
  AnalysisScratch();
  ~AnalysisScratch();  // out of line: PassExecState is incomplete here

  ProfileScratch profile;
  SeriesScratch series;
  ExtractScratch extract;
  Pcap2BgpResult extracted;  // staging buffer; swapped with out.messages
  PrefixSet mct_seen;
  DelayScratch delay;

  // One execution slot per registered pass (warm pass scratch + resolved
  // metric handles), lazily built on the worker's first connection.
  std::vector<PassExecState> passes;

  // Metric handles resolved once per scratch so the per-connection path is
  // a clock read plus relaxed shard RMWs — no registry lock, no
  // function-local-static init guard.
  LatencyHistogram* conn_us = nullptr;
  LatencyHistogram* allocs = nullptr;
  Counter* done = nullptr;
};

[[nodiscard]] ConnectionAnalysis analyze_connection(const Connection& conn,
                                                    const AnalyzerOptions& opts);

// Scratch-reusing form: rebuilds `out` in place. With a warm scratch and a
// reused `out`, the steady state is allocation-free except for parsed BGP
// message bodies (retained output).
void analyze_connection(const Connection& conn, const AnalyzerOptions& opts,
                        AnalysisScratch& scratch, ConnectionAnalysis& out);

// The one analysis pipeline every entry point funnels into: drain the
// source (decode + connection demux), then run the analysis stage. The
// source fully determines the packets, so two sources yielding the same
// packets produce bit-identical results.
[[nodiscard]] TraceAnalysis run_pipeline(TraceSource& source,
                                         const AnalyzerOptions& opts);

[[nodiscard]] TraceAnalysis analyze_packets(std::vector<DecodedPacket> packets,
                                            const AnalyzerOptions& opts);

[[nodiscard]] TraceAnalysis analyze_trace(const PcapFile& file,
                                          const AnalyzerOptions& opts);

// Streaming entry point: chunked pcap ingest with arena-backed zero-copy
// packets, connection demux overlapped with decoding, then the same
// (optionally parallel) analysis stage. Produces results identical to
// analyze_trace(read_pcap_file(path)) at a fraction of the peak memory.
[[nodiscard]] Result<TraceAnalysis> analyze_file(const std::string& path,
                                                 const AnalyzerOptions& opts);

// Rotated-capture entry point: `inputs` may mix capture files and
// directories of captures; the files are concatenated in first-record
// timestamp order (core/trace_source.hpp) and streamed through the same
// pipeline.
[[nodiscard]] Result<TraceAnalysis> analyze_files(
    const std::vector<std::string>& inputs, const AnalyzerOptions& opts);

}  // namespace tdat
