// T-DAT top level (Fig. 10): pre-process the raw packet trace (connection
// extraction, profiles, ACK shifting), generate the event series, locate the
// BGP table transfer (TCP start + MCT end, §II-A), and classify the delay
// factors over the transfer window.
#pragma once

#include <vector>

#include "bgp/mct.hpp"
#include "core/delay_report.hpp"
#include "core/pcap2bgp.hpp"
#include "core/series_builder.hpp"
#include "pcap/pcap_file.hpp"
#include "tcp/profile.hpp"

namespace tdat {

struct ConnectionAnalysis {
  std::size_t conn_index = 0;  // into TraceAnalysis::connections
  ConnKey key;
  ConnectionProfile profile;
  SeriesBundle bundle;                   // the 34 series + labeled packets
  std::vector<TimedBgpMessage> messages; // extracted by pcap2bgp
  MctResult mct;
  TimeRange transfer;                    // the analysis period
  DelayReport report;

  [[nodiscard]] Micros transfer_duration() const { return transfer.length(); }
  [[nodiscard]] const SeriesRegistry& series() const { return bundle.registry; }
};

struct TraceAnalysis {
  std::vector<Connection> connections;
  std::vector<ConnectionAnalysis> results;  // parallel to connections
};

[[nodiscard]] ConnectionAnalysis analyze_connection(const Connection& conn,
                                                    const AnalyzerOptions& opts);

[[nodiscard]] TraceAnalysis analyze_packets(std::vector<DecodedPacket> packets,
                                            const AnalyzerOptions& opts);

[[nodiscard]] TraceAnalysis analyze_trace(const PcapFile& file,
                                          const AnalyzerOptions& opts);

}  // namespace tdat
