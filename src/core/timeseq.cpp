#include "core/timeseq.hpp"

#include <algorithm>
#include <vector>

#include "tcp/seq.hpp"
#include "util/assert.hpp"

namespace tdat {

std::string render_time_sequence(const Connection& conn,
                                 const ClassifiedFlow& flow, TimeRange window,
                                 const TimeSeqOptions& opts) {
  TDAT_EXPECTS(opts.width > 0 && opts.height > 0);
  if (window.empty() || flow.data.empty()) return "(no data)\n";

  // Stream-offset extent of the window.
  std::int64_t lo = -1, hi = -1;
  for (const LabeledDataPacket& lp : flow.data) {
    if (!window.contains(lp.ts)) continue;
    if (lo < 0 || lp.stream_begin < lo) lo = lp.stream_begin;
    if (lp.stream_end > hi) hi = lp.stream_end;
  }
  if (lo < 0 || hi <= lo) return "(no data in window)\n";

  // One flat canvas instead of a string per row: cell (r, c) lives at
  // r * width + c.
  std::string grid(opts.height * opts.width, ' ');
  auto cell = [&](std::size_t r, std::size_t c) -> char& {
    return grid[r * opts.width + c];
  };
  const double tb = static_cast<double>(window.length()) / static_cast<double>(opts.width);
  const double sb = static_cast<double>(hi - lo) / static_cast<double>(opts.height);
  auto col_of = [&](Micros t) {
    return std::min(opts.width - 1,
                    static_cast<std::size_t>(static_cast<double>(t - window.begin) / tb));
  };
  auto row_of = [&](std::int64_t off) {
    const auto r = std::min(
        opts.height - 1,
        static_cast<std::size_t>(static_cast<double>(off - lo) / sb));
    return opts.height - 1 - r;  // stream offset grows upward
  };

  // Cumulative ACK frontier (drawn first so data marks overwrite it).
  if (flow.has_anchor) {
    SeqUnwrapper unwrap(flow.anchor_seq);
    for (const DecodedPacket& pkt : conn.packets) {
      if (packet_dir(conn.key, pkt) == flow.dir || !pkt.tcp.flags.ack ||
          pkt.tcp.flags.syn || !window.contains(pkt.ts)) {
        continue;
      }
      const std::int64_t off = unwrap.unwrap(pkt.tcp.ack);
      if (off < lo || off > hi) continue;
      cell(row_of(std::min(off, hi - 1)), col_of(pkt.ts)) = 'a';
    }
  }

  for (const LabeledDataPacket& lp : flow.data) {
    if (!window.contains(lp.ts)) continue;
    char mark = '.';
    switch (lp.label) {
      case DataLabel::kInOrder: mark = '.'; break;
      case DataLabel::kRetransmitDownstream:
      case DataLabel::kRetransmitUpstream: mark = 'R'; break;
      case DataLabel::kReordering: mark = 'o'; break;
      case DataLabel::kDuplicate: mark = 'D'; break;
    }
    cell(row_of(lp.stream_begin), col_of(lp.ts)) = mark;
  }

  std::string out;
  out += "stream offset " + std::to_string(lo) + ".." + std::to_string(hi) +
         " bytes; time " + format_seconds(window.begin) + ".." +
         format_seconds(window.end) + "\n";
  for (std::size_t r = 0; r < opts.height; ++r) {
    out += '|';
    out.append(grid, r * opts.width, opts.width);
    out += "|\n";
  }
  out += "legend: . data  R retransmit  o reorder  D duplicate  a ack frontier\n";
  return out;
}

}  // namespace tdat
