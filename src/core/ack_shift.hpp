// Accommodating the sniffer location (§III-B1, Figs. 12-13).
//
// With the sniffer near the receiver, an ACK is captured roughly d2 before
// the sender perceives it (d2 = Sniffer->Sender->Sniffer delay). T-DAT
// rewrites the trace into an approximate sender-side view by shifting ACKs
// *forward* by d2 so that the gap between a shifted ACK and the data it
// liberates reflects sender behaviour (e.g. application idle time), not
// path delay.
//
// d2 is estimated per ACK as the time from the ACK's capture to the arrival
// of the next data packet (exact when the connection is window-bound, loose
// otherwise), and the whole ACK *flight* is shifted by the flight's minimum
// estimate — the most precise one (Fig. 13).
#pragma once

#include <vector>

#include "core/options.hpp"
#include "tcp/connection.hpp"
#include "tcp/flights.hpp"
#include "tcp/profile.hpp"

namespace tdat {

struct ShiftedTrace {
  // Effective timestamp for every packet in the connection (parallel to
  // Connection::packets). Data-direction packets keep their capture time;
  // reverse-direction packets may be shifted forward.
  std::vector<Micros> ts;
  std::size_t flights_shifted = 0;
  Micros max_shift = 0;
};

// When the trace is already sender-side (location == kNearSender), this is
// the identity mapping — "safely executed without effect" per the paper.
[[nodiscard]] ShiftedTrace shift_acks(const Connection& conn,
                                      const ConnectionProfile& profile,
                                      const AnalyzerOptions& opts);

// Reusable working memory for shift_acks (contents unspecified between
// calls; a warm scratch makes the shift allocation-free).
struct AckShiftScratch {
  std::vector<Micros> data_ts;
  std::vector<FlightItem> acks;
  std::vector<Flight> flights;
};

// Scratch-reusing form: `out` is cleared (keeping capacity) and refilled.
void shift_acks(const Connection& conn, const ConnectionProfile& profile,
                const AnalyzerOptions& opts, AckShiftScratch& scratch,
                ShiftedTrace& out);

}  // namespace tdat
