// Packet-level fault injection for any TraceSource: a deterministic,
// seedable decorator that duplicates, reorders, drops, clock-steps, and
// payload-scrambles decoded packets on their way into the pipeline. The
// byte-level FaultInjector (pcap/fault_injector.hpp) corrupts serialized
// images to exercise *ingest* recovery; this wrapper sits after decode so
// tests can hammer the demux, analysis, and quarantine layers with hostile
// packet sequences regardless of where the packets came from.
#pragma once

#include <cstdint>
#include <vector>

#include "core/trace_source.hpp"
#include "util/rng.hpp"

namespace tdat {

class FaultInjectingSource final : public TraceSource {
 public:
  struct Plan {
    double dup_rate = 0.0;      // re-deliver a packet immediately
    double reorder_rate = 0.0;  // swap a packet with its successor
    double drop_rate = 0.0;     // silently discard a packet
    double ts_jump_rate = 0.0;  // add `ts_jump` to a packet's clock
    Micros ts_jump = 0;
    double garbage_rate = 0.0;  // overwrite the TCP payload with noise
    std::uint64_t seed = 1;
  };

  FaultInjectingSource(TraceSource& inner, const Plan& plan)
      : inner_(&inner), plan_(plan), rng_(plan.seed) {}

  [[nodiscard]] bool next(DecodedPacket& out) override;

  // Accounting and diagnostics delegate to the wrapped source: injected
  // faults are deliberate, not ingest damage, and must not masquerade as it.
  [[nodiscard]] std::uint64_t bytes_ingested() const override {
    return inner_->bytes_ingested();
  }
  [[nodiscard]] std::uint64_t records_seen() const override {
    return inner_->records_seen();
  }
  [[nodiscard]] IngestDiagnostics diagnostics() const override {
    return inner_->diagnostics();
  }
  void collect_file_diagnostics(
      std::vector<FileIngestDiagnostics>& out) const override {
    inner_->collect_file_diagnostics(out);
  }

  [[nodiscard]] std::uint64_t faults_injected() const { return injected_; }

 private:
  [[nodiscard]] bool pull(DecodedPacket& out);
  void maybe_garble(DecodedPacket& pkt);

  TraceSource* inner_;
  Plan plan_;
  Rng rng_;
  std::vector<DecodedPacket> queue_;  // packets owed before pulling more
  std::uint64_t injected_ = 0;
};

}  // namespace tdat
