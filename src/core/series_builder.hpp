// Series generation (§III-C): transforms one connection's (ACK-shifted)
// packet trace into the 34 internal event series listed in
// series_names.hpp, via the three rules Extraction / Interpretation /
// Operation.
#pragma once

#include "core/ack_shift.hpp"
#include "core/options.hpp"
#include "tcp/classify.hpp"
#include "timerange/event_series.hpp"

namespace tdat {

struct SeriesBundle {
  SeriesRegistry registry;
  ClassifiedFlow flow;      // per-data-packet labels (reused by detectors)
  ShiftedTrace shifted;     // the sender-view timestamps used throughout
  TimeRange data_span;      // [first data packet, last data packet]
};

[[nodiscard]] SeriesBundle build_series(const Connection& conn,
                                        const ConnectionProfile& profile,
                                        const AnalyzerOptions& opts);

}  // namespace tdat
