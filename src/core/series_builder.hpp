// Series generation (§III-C): transforms one connection's (ACK-shifted)
// packet trace into the 34 internal event series listed in
// series_names.hpp, via the three rules Extraction / Interpretation /
// Operation.
#pragma once

#include "core/ack_shift.hpp"
#include "core/options.hpp"
#include "tcp/classify.hpp"
#include "tcp/flights.hpp"
#include "timerange/event_series.hpp"

namespace tdat {

struct SeriesBundle {
  SeriesRegistry registry;
  ClassifiedFlow flow;      // per-data-packet labels (reused by detectors)
  ShiftedTrace shifted;     // the sender-view timestamps used throughout
  TimeRange data_span;      // [first data packet, last data packet]
};

// One cumulative ACK in shifted (sender-view) time.
struct AckEvent {
  Micros t = 0;             // shifted time
  std::int64_t off = 0;     // cumulative-ack stream offset
  std::int64_t window = 0;  // scaled advertised window in bytes
  std::size_t pkt_index = 0;
};

// One inter-arrival gap of the bulk stream, normalized by the later
// packet's size (seconds-per-byte — constant under wire pacing).
struct PacingPair {
  double norm = 0.0;
  Micros gap = 0;
};

// Pooled working state for build_series. Everything here is sized by the
// largest connection it has seen, so a warm scratch makes series generation
// allocation-free (the per-connection output lives in SeriesBundle, whose
// registry slots are likewise reused via SeriesRegistry::open).
struct SeriesScratch {
  ClassifyScratch classify;
  AckShiftScratch shift;
  std::vector<Micros> data_ts;    // data-direction payload packets
  std::vector<Micros> nonka_ts;   // non-keepalive data packets
  std::vector<Micros> ka_ts;      // keepalive packets
  std::vector<Micros> bulk_ts;    // non-keepalive stream, for pacing
  std::vector<std::uint64_t> bulk_bytes;
  std::vector<FlightItem> data_items;
  std::vector<FlightItem> ack_items;
  std::vector<Flight> flights;
  std::vector<AckEvent> acks;
  std::vector<PacingPair> pairs;
  std::vector<PacingPair> by_norm;
  std::vector<double> run_norms;
  RangeSet cwnd_candidates;
  RangeSet bw_candidates;
  RangeSet span;
  RangeSet tmp_a;  // set-algebra swap buffers
  RangeSet tmp_b;
};

[[nodiscard]] SeriesBundle build_series(const Connection& conn,
                                        const ConnectionProfile& profile,
                                        const AnalyzerOptions& opts);

// Scratch-reusing form: resets and refills `out` in place. With a warm
// scratch and a reused bundle this performs no heap allocation.
void build_series(const Connection& conn, const ConnectionProfile& profile,
                  const AnalyzerOptions& opts, SeriesScratch& scratch,
                  SeriesBundle& out);

}  // namespace tdat
