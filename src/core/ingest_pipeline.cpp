#include "core/ingest_pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "core/trace_source.hpp"
#include "pcap/decode_batch.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace tdat {
namespace {

// Records per reader batch. A multiple of kDecodeBatch so the decoder runs
// full lanes; large enough that queue traffic is per-hundreds-of-records,
// not per-record.
constexpr std::size_t kIngestBatch = 4 * kDecodeBatch;

struct RecordBatch {
  std::uint64_t seq = 0;
  std::size_t start_index = 0;  // trace index of records[0]
  std::vector<StreamRecord> records;
};

struct ShardBatch {
  std::uint64_t seq = 0;
  std::vector<DecodedPacket> packets;
};

// Small bounded MPMC queue: producers block when full, consumers when empty,
// close() releases everyone. Coarse batches make the lock uncontended in
// practice; no lock-free machinery needed to keep the pipeline fed.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  void push(T item) {
    std::unique_lock lock(mu_);
    can_push_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return;  // shutting down; the item is dropped
    items_.push_back(std::move(item));
    lock.unlock();
    can_pop_.notify_one();
  }

  [[nodiscard]] bool pop(T& out) {
    std::unique_lock lock(mu_);
    can_pop_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    can_push_.notify_one();
    return true;
  }

  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    can_push_.notify_all();
    can_pop_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

// Decodes one record batch, appending to `pkts` (cleared first).
void decode_batch(const RecordBatch& b, bool verify, DecodeScratch& scratch,
                  std::vector<DecodedPacket>& pkts) {
  pkts.clear();
  std::size_t off = 0;
  const std::span<const StreamRecord> recs(b.records);
  while (off < recs.size()) {
    off += decode_records(recs.subspan(off), b.start_index + off, verify,
                          scratch, pkts);
  }
}

std::size_t shard_of(const DecodedPacket& pkt, std::size_t shards) {
  // High bits: the demux table consumes the low bits of the same hash.
  return static_cast<std::size_t>(conn_key_hash(make_conn_key(pkt)) >> 32) %
         shards;
}

void apply_shard_batch(ConnectionDemux& demux, ShardBatch& b) {
  for (DecodedPacket& pkt : b.packets) demux.add(std::move(pkt));
}

// Merge shard outputs back into the serial demux's first-seen order: a
// connection is first seen at its first packet, and trace indices are the
// capture order, so sorting by first-packet index reproduces it exactly
// (connections are never empty, and no two share a first packet).
std::vector<Connection> merge_shards(std::vector<std::vector<Connection>> per_shard) {
  std::size_t total = 0;
  for (const auto& v : per_shard) total += v.size();
  std::vector<Connection> all;
  all.reserve(total);
  for (auto& v : per_shard) {
    for (Connection& c : v) all.push_back(std::move(c));
  }
  std::sort(all.begin(), all.end(), [](const Connection& a, const Connection& b) {
    return a.packets.front().index < b.packets.front().index;
  });
  return all;
}

IngestStageResult run_serial(TraceSource& source, const AnalyzerOptions& opts) {
  IngestStageResult out;
  ConnectionDemux demux;
  if (!source.supports_raw_records()) {
    // Pre-decoded sources (PacketVectorSource): nothing to batch.
    DecodedPacket pkt;
    while (source.next(pkt)) {
      ++out.packets;
      demux.add(std::move(pkt));
    }
    out.connections = demux.take();
    return out;
  }
  RecordBatch b;
  b.records.resize(kIngestBatch);
  std::vector<DecodedPacket> pkts;
  pkts.reserve(kIngestBatch);
  DecodeScratch scratch;
  std::size_t index = 0;
  for (;;) {
    const std::size_t n =
        source.next_raw_records({b.records.data(), kIngestBatch});
    if (n == 0) break;
    b.records.resize(n);
    b.start_index = index;
    index += n;
    const std::int64_t t0 = monotonic_micros();
    decode_batch(b, opts.verify_checksums, scratch, pkts);
    out.decode_busy += monotonic_micros() - t0;
    out.packets += pkts.size();
    for (DecodedPacket& pkt : pkts) demux.add(std::move(pkt));
    b.records.resize(kIngestBatch);
  }
  out.connections = demux.take();
  return out;
}

IngestStageResult run_parallel(TraceSource& source, const AnalyzerOptions& opts,
                               std::size_t jobs) {
  // Thread budget: this (reader) thread + decode workers + demux shards.
  // Decode is the heavy stage, so shards get ~1/4 of the budget and decode
  // the rest.
  const std::size_t shards = std::clamp<std::size_t>(jobs / 4, 1, 8);
  const std::size_t decoders = std::max<std::size_t>(1, jobs - 1 - shards);
  TDAT_TRACE_SPAN("ingest.parallel", "pcap", "jobs",
                  static_cast<std::int64_t>(jobs));

  IngestStageResult out;
  out.ingest_jobs = 1 + decoders + shards;

  BoundedQueue<RecordBatch> decode_q(2 * decoders + 2);
  std::vector<std::unique_ptr<BoundedQueue<ShardBatch>>> shard_qs;
  shard_qs.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shard_qs.push_back(
        std::make_unique<BoundedQueue<ShardBatch>>(2 * decoders + 2));
  }

  std::atomic<std::uint64_t> packets{0};
  std::atomic<std::int64_t> decode_busy{0};
  std::atomic<std::size_t> decoders_left{decoders};

  std::vector<std::thread> threads;
  threads.reserve(decoders + shards);
  for (std::size_t d = 0; d < decoders; ++d) {
    threads.emplace_back([&] {
      DecodeScratch scratch;
      std::vector<DecodedPacket> pkts;
      pkts.reserve(kIngestBatch);
      RecordBatch b;
      while (decode_q.pop(b)) {
        const std::int64_t t0 = monotonic_micros();
        decode_batch(b, opts.verify_checksums, scratch, pkts);
        decode_busy.fetch_add(monotonic_micros() - t0,
                              std::memory_order_relaxed);
        packets.fetch_add(pkts.size(), std::memory_order_relaxed);
        // Split into per-shard sub-batches. Every shard gets the sequence
        // number — an empty sub-batch is still a resequencing token.
        std::vector<ShardBatch> split(shards);
        for (ShardBatch& sb : split) sb.seq = b.seq;
        for (DecodedPacket& pkt : pkts) {
          split[shard_of(pkt, shards)].packets.push_back(std::move(pkt));
        }
        for (std::size_t s = 0; s < shards; ++s) {
          shard_qs[s]->push(std::move(split[s]));
        }
      }
      if (decoders_left.fetch_sub(1) == 1) {
        for (auto& q : shard_qs) q->close();
      }
    });
  }

  std::vector<std::vector<Connection>> shard_conns(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    threads.emplace_back([&, s] {
      ConnectionDemux demux;
      std::uint64_t next_seq = 0;
      std::vector<ShardBatch> hold;  // out-of-order batches, few at a time
      ShardBatch b;
      while (shard_qs[s]->pop(b)) {
        if (b.seq != next_seq) {
          hold.push_back(std::move(b));
          continue;
        }
        apply_shard_batch(demux, b);
        ++next_seq;
        for (bool advanced = true; advanced;) {
          advanced = false;
          for (auto it = hold.begin(); it != hold.end(); ++it) {
            if (it->seq != next_seq) continue;
            apply_shard_batch(demux, *it);
            hold.erase(it);
            ++next_seq;
            advanced = true;
            break;
          }
        }
      }
      if (!hold.empty()) {
        // Only reachable if a decode worker died mid-run; apply what arrived
        // in sequence order rather than dropping it silently.
        TDAT_LOG_WARN("ingest: shard %zu finished with %zu unsequenced batches",
                      s, hold.size());
        std::sort(hold.begin(), hold.end(),
                  [](const ShardBatch& a, const ShardBatch& b2) {
                    return a.seq < b2.seq;
                  });
        for (ShardBatch& hb : hold) apply_shard_batch(demux, hb);
      }
      shard_conns[s] = demux.take();
    });
  }

  // This thread is the reader: raw records in, batches out.
  {
    std::uint64_t seq = 0;
    std::size_t index = 0;
    for (;;) {
      RecordBatch b;
      b.records.resize(kIngestBatch);
      const std::size_t n =
          source.next_raw_records({b.records.data(), kIngestBatch});
      if (n == 0) break;
      b.records.resize(n);
      b.seq = seq++;
      b.start_index = index;
      index += n;
      decode_q.push(std::move(b));
    }
    decode_q.close();
  }

  for (std::thread& t : threads) t.join();
  out.connections = merge_shards(std::move(shard_conns));
  out.packets = packets.load();
  out.decode_busy = decode_busy.load();
  return out;
}

}  // namespace

IngestStageResult run_ingest_stage(TraceSource& source,
                                   const AnalyzerOptions& opts) {
  const std::size_t jobs = opts.jobs == 0 ? default_jobs() : opts.jobs;
  if (jobs >= 2 && source.supports_raw_records()) {
    return run_parallel(source, opts, jobs);
  }
  return run_serial(source, opts);
}

}  // namespace tdat
