// The batched/parallel ingest stage of run_pipeline (DESIGN.md §11): drain a
// TraceSource into demultiplexed connections as fast as the hardware allows.
//
// Serial shape (jobs == 1, or a source without raw-record access): pull raw
// records in batches, run the SoA batch decoder (pcap/decode_batch.hpp), and
// feed the flat-table demux — one thread, no queues, no atomics.
//
// Parallel shape (jobs > 1 on a raw-record source): the calling thread reads
// raw-record batches and hands them to a decode-worker pool; each decoded
// batch is split by connection-key hash into per-shard sub-batches; each
// shard worker owns a private ConnectionDemux and applies sub-batches in
// batch-sequence order (a resequencing buffer absorbs decode-worker races).
// Reading, decoding, and demuxing overlap across cores — this is what makes
// --jobs scale on the ingest side rather than only in per-connection
// analysis.
//
// Determinism: a connection's packets all land on one shard (the shard is a
// pure function of the connection key) and arrive in capture order (the
// resequencer restores batch order; lanes inside a batch are emitted in
// order), so every per-connection decision — reopen splits, the timestamp
// clamp — replays exactly as in the serial demux. The final connection list
// is the shards' outputs merged by first-packet trace index, which is the
// global first-seen order the serial path produces. Identical packets in,
// bit-identical connections out, at any job count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/options.hpp"
#include "tcp/connection.hpp"
#include "util/time.hpp"

namespace tdat {

class TraceSource;

struct IngestStageResult {
  std::vector<Connection> connections;  // global first-seen order
  std::uint64_t packets = 0;            // decoded TCP packets
  // Wall time spent inside header decode, summed across decode workers (can
  // exceed the stage's wall clock when they overlap). bytes / decode_busy is
  // the decode stage's standalone throughput.
  Micros decode_busy = 0;
  std::size_t ingest_jobs = 1;  // threads the stage actually used
};

// Drains `source` completely. opts supplies jobs (0 = default_jobs()) and
// verify_checksums.
[[nodiscard]] IngestStageResult run_ingest_stage(TraceSource& source,
                                                 const AnalyzerOptions& opts);

}  // namespace tdat
