// Machine-readable export (§V-D): the paper proposes the event series as
// "sanitized input to other TCP analysis studies" — e.g. flow-clock
// extraction wants SendAppLimited, TCP-flavor inference wants CwndBndOut.
// JSON is the interchange format here; CSV lives in timerange/render.hpp.
#pragma once

#include <string>
#include <vector>

#include "core/analyzer.hpp"

namespace tdat {

// {"name": ..., "events": [{"begin": .., "end": .., "packets": .., "bytes": ..}]}
[[nodiscard]] std::string series_to_json(const EventSeries& series);

// All series of a registry, keyed by name.
[[nodiscard]] std::string registry_to_json(const SeriesRegistry& registry);

// Factor ratios, group vector, major flags over the analysis window.
[[nodiscard]] std::string report_to_json(const DelayReport& report);

// One connection's full analysis summary: key, profile, transfer, report.
[[nodiscard]] std::string analysis_to_json(const ConnectionAnalysis& analysis);

// Open form of analysis_to_json: the same object without the closing brace,
// so a caller (the JSON report sink) can append further ",key:value" members.
// analysis_to_json(a) == analysis_to_json_open(a) + "}".
[[nodiscard]] std::string analysis_to_json_open(const ConnectionAnalysis& analysis);

}  // namespace tdat
