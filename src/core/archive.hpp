// MRT-archive-based transfer identification: the paper's Quagga collectors
// archive every received update in MRT format ("BGP (MRT): Yes" in
// Table I), so the table transfer's end can be located by running MCT on
// the archive directly, instead of reconstructing messages from the packet
// trace with pcap2bgp (which is the fallback for vendor collectors).
//
// MRT timestamps carry SECOND granularity — a real artifact of the format
// the paper's data shares — so archive-based transfer windows are coarser
// than pcap2bgp-based ones by up to a second on each end.
#pragma once

#include "bgp/mrt.hpp"
#include "core/analyzer.hpp"

namespace tdat {

// Extracts the parseable messages a given peer sent, in timestamp order.
// `peer_ip` is the operational router's address (host order).
[[nodiscard]] std::vector<TimedBgpMessage> archive_messages_for(
    const std::vector<MrtRecord>& records, std::uint32_t peer_ip);

// Like analyze_connection, but locates the table transfer from the
// collector's MRT archive instead of the reconstructed packet stream. The
// event series still come from the packet trace (they must — the archive
// has no transport information).
[[nodiscard]] ConnectionAnalysis analyze_connection_with_archive(
    const Connection& conn, const std::vector<MrtRecord>& archive,
    const AnalyzerOptions& opts);

}  // namespace tdat
