#include "core/checkpoint.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

#include "util/atomic_file.hpp"
#include "util/bytes.hpp"
#include "util/crash_point.hpp"
#include "util/crc32.hpp"
#include "util/metrics.hpp"

namespace tdat {
namespace {

// "TDCK" as read little-endian.
constexpr std::uint32_t kMagic = 0x4B434454;
// magic + version + payload_len + payload_crc.
constexpr std::size_t kFileHeaderLen = 4 + 4 + 8 + 4;

// Minimum encoded sizes, used to reject count fields that promise more
// elements than the remaining payload could possibly hold (pre-allocation
// cap against hostile images).
constexpr std::size_t kMinConnLen = 1 + 4;           // retired + run count
constexpr std::size_t kMinRunLen = 8 + 4 + 8;        // offset + count + index

void encode_payload(const LiveCheckpoint& c, ByteWriter& w) {
  w.u64le(c.capture.dev);
  w.u64le(c.capture.ino);
  w.u64le(c.capture.size);
  w.u32le(c.capture.head_len);
  w.u32le(c.capture.head_crc);

  w.u64le(c.resume_offset);
  w.u64le(c.records_seen);
  w.i64le(c.stream_last_ts);
  w.u64le(c.diag.truncated);
  w.u64le(c.diag.resynced);
  w.u64le(c.diag.skipped_bytes);
  w.u64le(c.diag.tail_truncated);
  w.u8(c.diag.budget_exhausted ? 1 : 0);

  w.u64le(c.next_index);
  w.i64le(c.now_ts);
  w.u8(c.config.location);
  w.u8(c.config.verify_checksums ? 1 : 0);
  w.u8(c.config.strict ? 1 : 0);
  w.u8(c.config.enable_ack_shift ? 1 : 0);
  w.u64le(c.config.pass_bits);
  w.u64le(c.config.max_errors);
  w.i64le(c.config.window);
  w.i64le(c.config.idle_gc);

  w.u64le(c.epochs);
  w.u64le(c.records);
  w.u64le(c.packets);
  w.u64le(c.connections_total);
  w.u64le(c.connections_gc);
  w.u64le(c.packets_evicted);

  w.u32le(static_cast<std::uint32_t>(c.conns.size()));
  for (const CheckpointConn& conn : c.conns) {
    w.u8(conn.retired ? 1 : 0);
    w.u32le(static_cast<std::uint32_t>(conn.runs.size()));
    for (const CheckpointRun& run : conn.runs) {
      w.u64le(run.offset);
      w.u32le(run.count);
      w.u64le(run.first_index);
    }
  }
}

Result<LiveCheckpoint> parse_payload(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  LiveCheckpoint c;
  c.capture.dev = r.u64le();
  c.capture.ino = r.u64le();
  c.capture.size = r.u64le();
  c.capture.head_len = r.u32le();
  c.capture.head_crc = r.u32le();

  c.resume_offset = r.u64le();
  c.records_seen = r.u64le();
  c.stream_last_ts = r.i64le();
  c.diag.truncated = r.u64le();
  c.diag.resynced = r.u64le();
  c.diag.skipped_bytes = r.u64le();
  c.diag.tail_truncated = r.u64le();
  c.diag.budget_exhausted = r.u8() != 0;

  c.next_index = r.u64le();
  c.now_ts = r.i64le();
  c.config.location = r.u8();
  c.config.verify_checksums = r.u8() != 0;
  c.config.strict = r.u8() != 0;
  c.config.enable_ack_shift = r.u8() != 0;
  c.config.pass_bits = r.u64le();
  c.config.max_errors = r.u64le();
  c.config.window = r.i64le();
  c.config.idle_gc = r.i64le();

  c.epochs = r.u64le();
  c.records = r.u64le();
  c.packets = r.u64le();
  c.connections_total = r.u64le();
  c.connections_gc = r.u64le();
  c.packets_evicted = r.u64le();

  const std::uint32_t conn_count = r.u32le();
  if (conn_count > r.remaining() / kMinConnLen) r.fail();
  if (r.ok()) c.conns.reserve(conn_count);
  for (std::uint32_t i = 0; i < conn_count && r.ok(); ++i) {
    CheckpointConn conn;
    conn.retired = r.u8() != 0;
    const std::uint32_t run_count = r.u32le();
    if (run_count > r.remaining() / kMinRunLen) {
      r.fail();
      break;
    }
    conn.runs.reserve(run_count);
    for (std::uint32_t k = 0; k < run_count && r.ok(); ++k) {
      CheckpointRun run;
      run.offset = r.u64le();
      run.count = r.u32le();
      run.first_index = r.u64le();
      conn.runs.push_back(run);
    }
    c.conns.push_back(std::move(conn));
  }
  if (!r.ok()) {
    return Err<LiveCheckpoint>("checkpoint: truncated or corrupt payload");
  }
  if (r.remaining() != 0) {
    return Err<LiveCheckpoint>(
        "checkpoint: trailing bytes after payload fields");
  }
  return c;
}

}  // namespace

std::vector<std::uint8_t> encode_checkpoint(const LiveCheckpoint& ckpt) {
  ByteWriter payload;
  encode_payload(ckpt, payload);
  ByteWriter file;
  file.u32le(kMagic);
  file.u32le(kCheckpointVersion);
  file.u64le(static_cast<std::uint64_t>(payload.size()));
  file.u32le(crc32(payload.data()));
  file.bytes(payload.data());
  return file.take();
}

Result<LiveCheckpoint> parse_checkpoint(std::span<const std::uint8_t> image) {
  ByteReader r(image);
  if (image.size() < kFileHeaderLen) {
    return Err<LiveCheckpoint>("checkpoint: file shorter than header");
  }
  if (r.u32le() != kMagic) {
    return Err<LiveCheckpoint>("checkpoint: bad magic (not a .tdckpt file)");
  }
  const std::uint32_t version = r.u32le();
  if (version == 0 || version > kCheckpointVersion) {
    return Err<LiveCheckpoint>("checkpoint: unsupported version " +
                               std::to_string(version));
  }
  const std::uint64_t payload_len = r.u64le();
  const std::uint32_t expect_crc = r.u32le();
  if (payload_len != image.size() - kFileHeaderLen) {
    // A torn write (short payload) and trailing garbage both land here; the
    // CRC would catch them too, but the length check gives a crisper story.
    return Err<LiveCheckpoint>(
        payload_len > image.size() - kFileHeaderLen
            ? "checkpoint: truncated (payload shorter than declared)"
            : "checkpoint: trailing bytes after payload");
  }
  const std::span<const std::uint8_t> payload = r.bytes(payload_len);
  if (crc32(payload) != expect_crc) {
    return Err<LiveCheckpoint>("checkpoint: payload CRC mismatch (torn or "
                               "corrupt write)");
  }
  return parse_payload(payload);
}

Result<LiveCheckpoint> read_checkpoint_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Err<LiveCheckpoint>("checkpoint: cannot open " + path);
  }
  std::vector<std::uint8_t> image;
  std::uint8_t buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    image.insert(image.end(), buf, buf + got);
  }
  std::fclose(f);
  auto parsed = parse_checkpoint(image);
  if (!parsed.ok()) {
    return Err<LiveCheckpoint>(path + ": " + parsed.error());
  }
  return parsed;
}

Result<Unit> write_checkpoint_file(const std::string& path,
                                   const LiveCheckpoint& ckpt) {
  const std::vector<std::uint8_t> image = encode_checkpoint(ckpt);
  if (crash_point_armed("ckpt-write")) {
    // Reproduce the exact on-disk state of a crash between write() calls:
    // half the temp file present, the destination untouched. The atomic
    // writer below reuses the same temp name, so when the crash count has
    // not been reached yet the partial file is simply overwritten.
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    if (std::FILE* f = std::fopen(tmp.c_str(), "wb")) {
      std::fwrite(image.data(), 1, image.size() / 2, f);
      std::fclose(f);
    }
    maybe_crash_at("ckpt-write");
  }
  if (crash_point_armed("ckpt-rename")) {
    // Crash after the temp is fully written and fsynced but before the
    // rename: the destination still holds the previous checkpoint.
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    if (std::FILE* f = std::fopen(tmp.c_str(), "wb")) {
      std::fwrite(image.data(), 1, image.size(), f);
      std::fclose(f);
    }
    maybe_crash_at("ckpt-rename");
  }
  auto written = write_file_atomic_durable(path, image);
  if (!written.ok()) {
    metrics().counter("live.checkpoint.write_failures").inc();
    return written;
  }
  metrics().counter("live.checkpoint.writes").inc();
  metrics().gauge("live.checkpoint.bytes")
      .set(static_cast<std::int64_t>(image.size()));
  return Unit{};
}

Result<CaptureIdentity> compute_capture_identity(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode) ||
      st.st_size < 0) {
    return Err<CaptureIdentity>("checkpoint: cannot stat capture " + path);
  }
  CaptureIdentity id;
  id.dev = static_cast<std::uint64_t>(st.st_dev);
  id.ino = static_cast<std::uint64_t>(st.st_ino);
  id.size = static_cast<std::uint64_t>(st.st_size);
  id.head_len = static_cast<std::uint32_t>(
      id.size < kCheckpointHeadHashCap ? id.size : kCheckpointHeadHashCap);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Err<CaptureIdentity>("checkpoint: cannot open capture " + path);
  }
  std::uint32_t state = kCrc32Init;
  std::uint8_t buf[1 << 14];
  std::uint64_t left = id.head_len;
  while (left > 0) {
    const std::size_t want =
        left < sizeof(buf) ? static_cast<std::size_t>(left) : sizeof(buf);
    const std::size_t got = std::fread(buf, 1, want, f);
    if (got == 0) {
      std::fclose(f);
      return Err<CaptureIdentity>("checkpoint: short read hashing capture " +
                                  path);
    }
    state = crc32_update(state, std::span<const std::uint8_t>(buf, got));
    left -= got;
  }
  std::fclose(f);
  id.head_crc = crc32_final(state);
  return id;
}

Result<Unit> validate_capture_identity(const CaptureIdentity& recorded,
                                       const std::string& path) {
  TDAT_TRY(current, compute_capture_identity(path));
  if (current.dev != recorded.dev || current.ino != recorded.ino) {
    return Err<Unit>("checkpoint: capture " + path +
                     " was replaced since the checkpoint (dev/ino changed)");
  }
  if (current.size < recorded.size) {
    return Err<Unit>("checkpoint: capture " + path +
                     " shrank since the checkpoint (rotated or truncated)");
  }
  // Hash the same leading window the checkpoint hashed. current.head_len >=
  // recorded.head_len because the file has not shrunk; a shorter recorded
  // window (small capture at checkpoint time) still compares the same bytes.
  if (recorded.head_len > current.head_len) {
    return Err<Unit>("checkpoint: capture " + path +
                     " identity window inconsistent");
  }
  if (recorded.head_len == current.head_len) {
    if (recorded.head_crc != current.head_crc) {
      return Err<Unit>("checkpoint: capture " + path +
                       " leading bytes changed since the checkpoint");
    }
    return Unit{};
  }
  // Re-hash just the recorded window.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Err<Unit>("checkpoint: cannot open capture " + path);
  }
  std::uint32_t state = kCrc32Init;
  std::uint8_t buf[1 << 14];
  std::uint64_t left = recorded.head_len;
  while (left > 0) {
    const std::size_t want =
        left < sizeof(buf) ? static_cast<std::size_t>(left) : sizeof(buf);
    const std::size_t got = std::fread(buf, 1, want, f);
    if (got == 0) break;
    state = crc32_update(state, std::span<const std::uint8_t>(buf, got));
    left -= got;
  }
  std::fclose(f);
  if (left != 0 || crc32_final(state) != recorded.head_crc) {
    return Err<Unit>("checkpoint: capture " + path +
                     " leading bytes changed since the checkpoint");
  }
  return Unit{};
}

}  // namespace tdat
