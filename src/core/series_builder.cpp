#include "core/series_builder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/series_names.hpp"

namespace tdat {
namespace {

// A BGP KEEPALIVE on the wire: 16-byte marker of 0xff, length 19, type 4.
bool is_bgp_keepalive(std::span<const std::uint8_t> payload) {
  if (payload.size() != 19) return false;
  for (std::size_t i = 0; i < 16; ++i) {
    if (payload[i] != 0xff) return false;
  }
  return payload[16] == 0 && payload[17] == 19 && payload[18] == 4;
}

// One maximal period with outstanding data, plus what bounded it.
struct OutstandingPeriod {
  TimeRange range;
  std::int64_t max_outstanding = 0;
  std::int64_t min_window_gap = std::numeric_limits<std::int64_t>::max();
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  bool adv_bounded = false;
  bool cwnd_bounded = false;
};

}  // namespace

SeriesBundle build_series(const Connection& conn, const ConnectionProfile& profile,
                          const AnalyzerOptions& opts) {
  SeriesScratch scratch;
  SeriesBundle out;
  build_series(conn, profile, opts, scratch, out);
  return out;
}

void build_series(const Connection& conn, const ConnectionProfile& profile,
                  const AnalyzerOptions& opts, SeriesScratch& scratch,
                  SeriesBundle& out) {
  const Micros rtt = profile.rtt();
  const std::int64_t mss = profile.mss();

  ClassifyOptions copts;
  copts.reorder_threshold = std::max<Micros>(
      kMicrosPerMilli,
      static_cast<Micros>(static_cast<double>(rtt) * opts.reorder_rtt_fraction));
  classify_data_packets(conn, profile.data_dir, copts, scratch.classify, out.flow);
  shift_acks(conn, profile, opts, scratch.shift, out.shifted);

  SeriesRegistry& reg = out.registry;
  reg.reset();
  // Open all 34 slots before taking any reference: open() may grow the
  // registry's table, which would invalidate earlier references. Every
  // series is built unconditionally (possibly empty), so a reused registry
  // revives exactly the slots it already owns.
  for (const char* name :
       {series::kTransmission, series::kKeepAlive, series::kAckArrival,
        series::kAdvWindow, series::kSmallAdvWindow, series::kLargeAdvWindow,
        series::kZeroAdvWindow, series::kRetransmission, series::kUpstreamLoss,
        series::kDownstreamLoss, series::kOutOfSequence, series::kDuplicate,
        series::kRtoRecovery, series::kFastRecovery, series::kOutstanding,
        series::kAdvBndOut, series::kCwndBndOut, series::kDataFlight,
        series::kAckFlight, series::kHandshake, series::kTeardown, series::kIdle,
        series::kKeepAliveOnly, series::kSendLocalLoss, series::kRecvLocalLoss,
        series::kNetworkLoss, series::kBgpKeepAlive, series::kSendAppLimited,
        series::kSmallAdvBndOut, series::kLargeAdvBndOut, series::kZeroAdvBndOut,
        series::kBandwidthLimited, series::kLossRecovery,
        series::kWindowLimited}) {
    (void)reg.open(name);
  }
  EventSeries& transmission = reg.get_mutable(series::kTransmission);
  EventSeries& keepalive = reg.get_mutable(series::kKeepAlive);
  EventSeries& ack_arrival = reg.get_mutable(series::kAckArrival);
  EventSeries& adv = reg.get_mutable(series::kAdvWindow);
  EventSeries& small_adv = reg.get_mutable(series::kSmallAdvWindow);
  EventSeries& large_adv = reg.get_mutable(series::kLargeAdvWindow);
  EventSeries& zero_adv = reg.get_mutable(series::kZeroAdvWindow);
  EventSeries& retransmission = reg.get_mutable(series::kRetransmission);
  EventSeries& upstream = reg.get_mutable(series::kUpstreamLoss);
  EventSeries& downstream = reg.get_mutable(series::kDownstreamLoss);
  EventSeries& out_of_seq = reg.get_mutable(series::kOutOfSequence);
  EventSeries& duplicate = reg.get_mutable(series::kDuplicate);
  EventSeries& rto_rec = reg.get_mutable(series::kRtoRecovery);
  EventSeries& fast_rec = reg.get_mutable(series::kFastRecovery);
  EventSeries& outstanding = reg.get_mutable(series::kOutstanding);
  EventSeries& adv_bnd = reg.get_mutable(series::kAdvBndOut);
  EventSeries& cwnd_bnd = reg.get_mutable(series::kCwndBndOut);
  EventSeries& data_flights = reg.get_mutable(series::kDataFlight);
  EventSeries& ack_flights = reg.get_mutable(series::kAckFlight);
  EventSeries& handshake = reg.get_mutable(series::kHandshake);
  EventSeries& teardown = reg.get_mutable(series::kTeardown);
  EventSeries& idle = reg.get_mutable(series::kIdle);
  EventSeries& ka_only = reg.get_mutable(series::kKeepAliveOnly);
  EventSeries& send_local = reg.get_mutable(series::kSendLocalLoss);
  EventSeries& recv_local = reg.get_mutable(series::kRecvLocalLoss);
  EventSeries& net_loss = reg.get_mutable(series::kNetworkLoss);

  // ---- gather views ------------------------------------------------------
  auto& data_ts = scratch.data_ts;
  auto& data_items = scratch.data_items;
  auto& nonka_ts = scratch.nonka_ts;
  auto& ka_ts = scratch.ka_ts;
  data_ts.clear();
  data_items.clear();
  nonka_ts.clear();
  ka_ts.clear();

  for (const LabeledDataPacket& lp : out.flow.data) {
    data_ts.push_back(lp.ts);
    data_items.push_back({lp.ts, static_cast<std::uint64_t>(lp.length()),
                          lp.packet_index});
    const DecodedPacket& pkt = conn.packets[lp.packet_index];
    if (is_bgp_keepalive(pkt.payload())) {
      ka_ts.push_back(lp.ts);
      keepalive.add({lp.ts, lp.ts + 1}, 1, pkt.payload_len,
                    static_cast<std::int64_t>(pkt.index));
    } else {
      nonka_ts.push_back(lp.ts);
    }
  }
  if (out.flow.data.empty()) {
    out.data_span = {};
  } else {
    out.data_span = {out.flow.data.front().ts, out.flow.data.back().ts + 1};
  }

  // Serialization-time estimate: the smallest positive spacing between
  // consecutive data packets approximates the bottleneck's per-packet wire
  // time (clamped to a sane band).
  Micros wire_time = 50;
  {
    Micros best = -1;
    for (std::size_t i = 1; i < data_ts.size(); ++i) {
      const Micros d = data_ts[i] - data_ts[i - 1];
      if (d > 0 && (best < 0 || d < best)) best = d;
    }
    if (best > 0) wire_time = std::clamp<Micros>(best, 1, kMicrosPerMilli);
  }
  for (const LabeledDataPacket& lp : out.flow.data) {
    transmission.add({lp.ts, lp.ts + wire_time}, 1,
                     static_cast<std::uint64_t>(lp.length()),
                     static_cast<std::int64_t>(lp.packet_index));
  }

  // ---- ACK view (shifted), window steps ----------------------------------
  const std::uint8_t wscale =
      (profile.a_to_b.window_scale && profile.b_to_a.window_scale)
          ? profile.receiver().window_scale.value_or(0)
          : 0;
  auto& acks = scratch.acks;
  acks.clear();
  for (std::size_t i = 0; i < conn.packets.size(); ++i) {
    const DecodedPacket& pkt = conn.packets[i];
    if (packet_dir(conn.key, pkt) == profile.data_dir) continue;
    if (!pkt.tcp.flags.ack || pkt.tcp.flags.syn || pkt.tcp.flags.rst) continue;
    if (!out.flow.has_anchor) continue;
    AckEvent ev;
    ev.t = out.shifted.ts[i];
    ev.off = static_cast<std::int64_t>(
        static_cast<std::int32_t>(pkt.tcp.ack - out.flow.anchor_seq));
    ev.window = static_cast<std::int64_t>(pkt.tcp.window) << wscale;
    ev.pkt_index = i;
    acks.push_back(ev);
  }
  // Shifting can reorder ACKs across flights; re-sort by shifted time,
  // tie-breaking on capture order so ACKs of one burst (equal timestamps)
  // keep their cumulative sequence — the LAST of a burst carries the
  // authoritative window.
  std::sort(acks.begin(), acks.end(), [](const AckEvent& a, const AckEvent& b) {
    return a.t != b.t ? a.t < b.t : a.pkt_index < b.pkt_index;
  });
  for (const AckEvent& ev : acks) ack_arrival.add({ev.t, ev.t + 1}, 1, 0,
                                                  static_cast<std::int64_t>(ev.pkt_index));

  // Advertised-window step function and its small/large/zero slices.
  const std::int64_t max_adv = profile.max_advertised_window();
  const std::int64_t small_cut = static_cast<std::int64_t>(opts.small_window_mss) * mss;
  for (std::size_t i = 0; i < acks.size(); ++i) {
    const Micros t0 = acks[i].t;
    const Micros t1 = i + 1 < acks.size() ? acks[i + 1].t
                                          : std::max(t0 + 1, out.data_span.end);
    if (t1 <= t0) continue;
    const std::int64_t w = acks[i].window;
    adv.add({t0, t1}, 0, static_cast<std::uint64_t>(w));
    if (w == 0) zero_adv.add({t0, t1}, 0, 0);
    if (w < small_cut) small_adv.add({t0, t1}, 0, static_cast<std::uint64_t>(w));
    if (w > max_adv - small_cut) {
      large_adv.add({t0, t1}, 0, static_cast<std::uint64_t>(w));
    }
  }

  // ---- loss series (Extraction) ------------------------------------------
  const Micros rto_cut = std::max<Micros>(2 * rtt, 100 * kMicrosPerMilli);
  for (const LabeledDataPacket& lp : out.flow.data) {
    // The recovery period runs from when the loss became visible to when
    // the retransmission arrived (§III-C1: the *period*, not the instant).
    Micros begin = lp.loss_begin < lp.ts ? lp.loss_begin : lp.ts - kMicrosPerMilli;
    begin = std::max(begin, out.data_span.begin);
    const TimeRange recovery{begin, lp.ts + 1};
    const auto bytes = static_cast<std::uint64_t>(lp.length());
    const auto ref = static_cast<std::int64_t>(lp.packet_index);
    switch (lp.label) {
      case DataLabel::kRetransmitUpstream:
        upstream.add(recovery, 1, bytes, ref);
        retransmission.add(recovery, 1, bytes, ref);
        (recovery.length() > rto_cut ? rto_rec : fast_rec).add(recovery, 1, bytes, ref);
        break;
      case DataLabel::kRetransmitDownstream:
        downstream.add(recovery, 1, bytes, ref);
        retransmission.add(recovery, 1, bytes, ref);
        (recovery.length() > rto_cut ? rto_rec : fast_rec).add(recovery, 1, bytes, ref);
        break;
      case DataLabel::kReordering:
        out_of_seq.add(recovery, 1, bytes, ref);
        break;
      case DataLabel::kDuplicate:
        duplicate.add(recovery, 1, bytes, ref);
        break;
      case DataLabel::kInOrder:
        break;
    }
  }

  // ---- Outstanding sweep (+ window-bound attribution) ---------------------
  //
  // The sweep walks data and (shifted) ACK events in time order, tracking
  // the unacknowledged byte count and the advertised window. Outstanding
  // periods (for the Outstanding series) are maximal ranges with data in
  // flight. Window attribution is done per inter-event interval, because a
  // long transfer phase can alternate between receiver-window-bound and
  // congestion-window-bound (e.g. after every loss the cwnd dips below the
  // advertised window for many RTTs): an interval with data in flight is
  //   - AdvBndOut  if outstanding came within adv_bound_mss*MSS of the
  //     advertised window (the receiver's window is the bind), else
  //   - CwndBndOut if TCP had more data buffered but chose not to send
  //     (inferable: later data exists and was not sent in this interval) —
  //     cwnd is the only remaining window-side explanation. Loss-recovery
  //     intervals are carved out of CwndBndOut afterwards.
  const std::int64_t adv_bound_cut =
      static_cast<std::int64_t>(opts.adv_bound_mss) * mss;
  RangeSet& cwnd_candidates = scratch.cwnd_candidates;
  cwnd_candidates.clear();
  {
    std::size_t di = 0;
    std::size_t ai = 0;
    std::int64_t max_sent = 0;
    std::int64_t max_acked = 0;
    std::int64_t window = max_adv;  // before the first ACK, assume fully open
    OutstandingPeriod cur;
    bool open = false;
    Micros prev_t = -1;
    const std::int64_t last_data_off = out.flow.stream_length;

    auto account_interval = [&](Micros from, Micros to) {
      if (from < 0 || to <= from) return;
      const std::int64_t outs = max_sent - max_acked;
      if (outs <= 0) return;
      if (window - outs < adv_bound_cut) {
        adv_bnd.add({from, to}, 0, static_cast<std::uint64_t>(outs));
      } else if (max_sent < last_data_off) {
        // More table data followed later, yet TCP held back while the
        // receiver window had room: congestion-window bound.
        cwnd_candidates.insert(from, to);
      }
    };

    while (di < out.flow.data.size() || ai < acks.size()) {
      const bool take_data =
          ai >= acks.size() ||
          (di < out.flow.data.size() && out.flow.data[di].ts <= acks[ai].t);
      Micros t = 0;
      if (take_data) {
        const LabeledDataPacket& lp = out.flow.data[di++];
        t = lp.ts;
        account_interval(prev_t, t);
        max_sent = std::max(max_sent, lp.stream_end);
        if (open || max_sent - max_acked > 0) {
          if (!open) {
            cur = OutstandingPeriod{};
            cur.range.begin = t;
            open = true;
          }
          ++cur.packets;
          cur.bytes += static_cast<std::uint64_t>(lp.length());
          const std::int64_t outs = max_sent - max_acked;
          cur.max_outstanding = std::max(cur.max_outstanding, outs);
          cur.min_window_gap = std::min(cur.min_window_gap, window - outs);
        }
      } else {
        const AckEvent& ev = acks[ai++];
        t = ev.t;
        account_interval(prev_t, t);
        max_acked = std::max(max_acked, ev.off);
        window = ev.window;
        if (open && max_sent - max_acked <= 0) {
          cur.range.end = t;
          outstanding.add(cur.range, cur.packets, cur.bytes);
          open = false;
        }
      }
      prev_t = std::max(prev_t, t);
    }
    if (open) {
      cur.range.end = prev_t + 1;
      outstanding.add(cur.range, cur.packets, cur.bytes);
    }
  }

  // ---- flights -------------------------------------------------------------
  const Micros flight_gap = std::max<Micros>(
      kMicrosPerMilli, static_cast<Micros>(static_cast<double>(rtt) *
                                           opts.flight_gap_rtt_fraction));
  group_flights_into(data_items, flight_gap, scratch.flights);
  for (const Flight& f : scratch.flights) {
    data_flights.add({f.start, std::max(f.end, f.start + 1)}, f.packets, f.bytes);
  }

  // Bandwidth-limited candidates: a bottleneck link paces arrivals at a
  // constant *rate*, so the normalized gap (inter-arrival divided by the
  // later packet's size, i.e. seconds-per-byte) is constant even when
  // segment sizes vary. Take the time-weighted median of the normalized
  // gaps (the pacing that holds for most of the transfer time) and group
  // packets into runs whose pairs stay within a factor of it; runs lasting
  // well over an RTT are wire-paced. These are only *candidates*: window,
  // application, and loss explanations take precedence and are subtracted
  // at the Operation stage below, mirroring T-RAT's rule ordering.
  // Keepalives (including the periodic post-transfer ones) are not part of
  // the bulk stream; their pacing must not enter the pacing estimate.
  RangeSet& bw_candidates = scratch.bw_candidates;
  bw_candidates.clear();
  auto& bulk_ts = scratch.bulk_ts;
  auto& bulk_bytes = scratch.bulk_bytes;
  bulk_ts.clear();
  bulk_bytes.clear();
  for (const LabeledDataPacket& lp : out.flow.data) {
    const DecodedPacket& pkt = conn.packets[lp.packet_index];
    if (is_bgp_keepalive(pkt.payload())) continue;
    bulk_ts.push_back(lp.ts);
    bulk_bytes.push_back(static_cast<std::uint64_t>(lp.length()));
  }
  if (bulk_ts.size() > opts.bw_min_flight_packets) {
    auto& pairs = scratch.pairs;
    pairs.clear();
    Micros total_gap = 0;
    for (std::size_t i = 1; i < bulk_ts.size(); ++i) {
      const Micros gap = bulk_ts[i] - bulk_ts[i - 1];
      const auto bytes = std::max<std::uint64_t>(bulk_bytes[i], 1);
      pairs.push_back({static_cast<double>(gap) / static_cast<double>(bytes), gap});
      total_gap += gap;
    }
    auto& by_norm = scratch.by_norm;
    by_norm = pairs;
    std::sort(by_norm.begin(), by_norm.end(),
              [](const PacingPair& a, const PacingPair& b) { return a.norm < b.norm; });
    double wmedian = 0.0;
    Micros acc = 0;
    for (const PacingPair& p : by_norm) {
      acc += p.gap;
      if (2 * acc >= total_gap) {
        wmedian = p.norm;
        break;
      }
    }
    const double run_cut = opts.bw_uniformity_factor * wmedian;
    std::size_t run_start = 0;
    auto flush_run = [&](std::size_t end_idx) {  // run covers [run_start, end_idx]
      const std::size_t n = end_idx - run_start + 1;
      const Micros span_len = bulk_ts[end_idx] - bulk_ts[run_start];
      if (n < opts.bw_min_flight_packets || span_len < 2 * rtt) return;
      // Uniformity lower bound: genuine wire pacing keeps every gap near
      // the pacing value. A bursty flow (application timer, window bursts)
      // has a count-median far BELOW the time-weighted median even though
      // no single gap exceeds the upper cut.
      auto& run_norms = scratch.run_norms;
      run_norms.clear();
      for (std::size_t k = run_start + 1; k <= end_idx; ++k) {
        run_norms.push_back(pairs[k - 1].norm);
      }
      std::nth_element(run_norms.begin(), run_norms.begin() + run_norms.size() / 2,
                       run_norms.end());
      const double count_median = run_norms[run_norms.size() / 2];
      if (count_median * opts.bw_uniformity_factor < wmedian) return;
      // An application timer also produces uniform gaps. Two tie-breakers
      // separate it from wire pacing:
      //  - on a wire the gap tracks packet size (gap = size/rate), so
      //    normalizing by size REDUCES relative variance; a timer's raw
      //    gaps are already constant and normalizing adds size noise;
      //  - no pair may arrive much faster than the claimed pacing — a
      //    back-to-back pair proves the wire is far faster than the gaps.
      double raw_mean = 0, norm_mean = 0;
      double min_norm = std::numeric_limits<double>::max();
      for (std::size_t k = run_start + 1; k <= end_idx; ++k) {
        raw_mean += static_cast<double>(pairs[k - 1].gap);
        norm_mean += pairs[k - 1].norm;
        min_norm = std::min(min_norm, pairs[k - 1].norm);
      }
      raw_mean /= static_cast<double>(n - 1);
      norm_mean /= static_cast<double>(n - 1);
      double raw_var = 0, norm_var = 0;
      for (std::size_t k = run_start + 1; k <= end_idx; ++k) {
        const double dr = static_cast<double>(pairs[k - 1].gap) - raw_mean;
        const double dn = pairs[k - 1].norm - norm_mean;
        raw_var += dr * dr;
        norm_var += dn * dn;
      }
      if (raw_mean <= 0 || norm_mean <= 0) return;
      const double raw_cov = std::sqrt(raw_var) / raw_mean;
      const double norm_cov = std::sqrt(norm_var) / norm_mean;
      if (norm_cov > raw_cov) return;           // timer signature
      if (4 * min_norm < norm_mean) return;     // fast (sub-pacing) pairs exist
      bw_candidates.insert(bulk_ts[run_start], bulk_ts[end_idx] + 1);
    };
    for (std::size_t i = 1; i < bulk_ts.size(); ++i) {
      if (pairs[i - 1].norm > run_cut) {
        flush_run(i - 1);
        run_start = i;
      }
    }
    flush_run(bulk_ts.size() - 1);
  }

  // Congestion-window bound: intervals where TCP held back despite an open
  // window and pending data — minus loss recovery (its own factor) and
  // minus wire-paced runs (from the sniffer, bytes queued at an upstream
  // bottleneck are indistinguishable from bytes TCP chose not to send, and
  // the pacing signature is the stronger evidence).
  cwnd_candidates.subtract_with(retransmission.ranges(), scratch.tmp_a);
  cwnd_candidates.subtract_with(bw_candidates, scratch.tmp_a);
  cwnd_bnd.assign_ranges(cwnd_candidates);
  {
    auto& ack_items = scratch.ack_items;
    ack_items.clear();
    for (const AckEvent& ev : acks) ack_items.push_back({ev.t, 0, ev.pkt_index});
    group_flights_into(ack_items, flight_gap, scratch.flights);
    for (const Flight& f : scratch.flights) {
      ack_flights.add({f.start, std::max(f.end, f.start + 1)}, f.packets, 0);
    }
  }

  // ---- handshake / teardown / idle ----------------------------------------
  {
    if (!conn.packets.empty()) {
      const Micros t0 = conn.packets.front().ts;
      Micros t1 = t0;
      if (profile.rtt_handshake) {
        t1 = t0 + *profile.rtt_handshake;
      } else if (!data_ts.empty()) {
        t1 = data_ts.front();
      }
      if (t1 > t0) handshake.add(TimeRange{t0, t1});
    }

    Micros fin_ts = -1;
    for (const DecodedPacket& pkt : conn.packets) {
      if (pkt.tcp.flags.fin || pkt.tcp.flags.rst) {
        fin_ts = pkt.ts;
        break;
      }
    }
    if (fin_ts >= 0) {
      teardown.add(TimeRange{fin_ts, std::max(conn.packets.back().ts, fin_ts) + 1});
    }

    const Micros idle_cut = std::max<Micros>(2 * rtt, 10 * kMicrosPerMilli);
    for (std::size_t i = 1; i < conn.packets.size(); ++i) {
      const Micros gap_len = conn.packets[i].ts - conn.packets[i - 1].ts;
      if (gap_len > idle_cut) {
        idle.add(TimeRange{conn.packets[i - 1].ts, conn.packets[i].ts});
      }
    }
  }

  // ---- KeepAliveOnly: gaps between non-keepalive data that carry only
  // keepalives (the signature of a paused-but-alive session, Fig. 9).
  {
    for (std::size_t i = 1; i < nonka_ts.size(); ++i) {
      const Micros lo = nonka_ts[i - 1];
      const Micros hi = nonka_ts[i];
      auto first = std::upper_bound(ka_ts.begin(), ka_ts.end(), lo);
      if (first != ka_ts.end() && *first < hi) {
        ka_only.add({lo, hi}, static_cast<std::uint64_t>(
                                  std::upper_bound(first, ka_ts.end(), hi) - first));
      }
    }
    // Tail: keepalives after the last data message (post-transfer quiet).
    if (!nonka_ts.empty()) {
      auto first = std::upper_bound(ka_ts.begin(), ka_ts.end(), nonka_ts.back());
      if (first != ka_ts.end()) {
        ka_only.add({nonka_ts.back(), ka_ts.back() + 1},
                    static_cast<std::uint64_t>(ka_ts.end() - first));
      }
    }
  }

  // ---- Interpretation (Rule 2): sniffer location --------------------------
  switch (opts.location) {
    case SnifferLocation::kNearReceiver:
      recv_local.assign_events_from(downstream);
      net_loss.assign_events_from(upstream);
      break;
    case SnifferLocation::kNearSender:
      send_local.assign_events_from(upstream);
      net_loss.assign_events_from(downstream);
      break;
    case SnifferLocation::kMiddle:
      upstream.ranges().union_into(downstream.ranges(), scratch.tmp_a);
      net_loss.assign_ranges(scratch.tmp_a);
      break;
  }
  reg.get_mutable(series::kBgpKeepAlive).assign_events_from(keepalive);

  // ---- Operation (Rules 3 & 4): set algebra --------------------------------
  // Sender application idle: within the data span, no outstanding data, the
  // window is open, and no loss recovery in progress — TCP could send, BGP
  // did not produce.
  {
    RangeSet& app = scratch.span;
    app.clear();
    app.insert(out.data_span);
    app.subtract_with(outstanding.ranges(), scratch.tmp_a);
    app.subtract_with(zero_adv.ranges(), scratch.tmp_a);
    app.subtract_with(retransmission.ranges(), scratch.tmp_a);
    app.subtract_with(bw_candidates, scratch.tmp_a);
    app.subtract_with(handshake.ranges(), scratch.tmp_a);
    reg.get_mutable(series::kSendAppLimited).assign_ranges(app);
  }
  {
    EventSeries& small_bnd = reg.get_mutable(series::kSmallAdvBndOut);
    EventSeries& large_bnd = reg.get_mutable(series::kLargeAdvBndOut);
    EventSeries& zero_bnd = reg.get_mutable(series::kZeroAdvBndOut);
    EventSeries& loss_all = reg.get_mutable(series::kLossRecovery);
    EventSeries& window_all = reg.get_mutable(series::kWindowLimited);

    adv_bnd.ranges().intersect_into(small_adv.ranges(), scratch.tmp_a);
    scratch.tmp_a.union_with(zero_adv.ranges(), scratch.tmp_b);
    small_bnd.assign_ranges(scratch.tmp_a);

    adv_bnd.ranges().intersect_into(large_adv.ranges(), scratch.tmp_a);
    large_bnd.assign_ranges(scratch.tmp_a);

    zero_bnd.assign_events_from(zero_adv);

    upstream.ranges().union_into(downstream.ranges(), scratch.tmp_a);
    loss_all.assign_ranges(scratch.tmp_a);

    adv_bnd.ranges().union_into(cwnd_bnd.ranges(), scratch.tmp_a);
    scratch.tmp_a.union_with(zero_bnd.ranges(), scratch.tmp_b);
    window_all.assign_ranges(scratch.tmp_a);

    // Wire-paced candidates minus window and loss explanations: what
    // remains is genuinely limited by the path's bandwidth. (The uniformity
    // checks above make the pacing signature strong evidence, so it takes
    // precedence over the residual sender-idle inference.)
    bw_candidates.subtract_with(adv_bnd.ranges(), scratch.tmp_a);
    bw_candidates.subtract_with(small_bnd.ranges(), scratch.tmp_a);
    bw_candidates.subtract_with(retransmission.ranges(), scratch.tmp_a);
    reg.get_mutable(series::kBandwidthLimited).assign_ranges(bw_candidates);
  }
}

}  // namespace tdat
