#include "core/series_builder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/series_names.hpp"
#include "tcp/flights.hpp"
#include "util/assert.hpp"

namespace tdat {
namespace {

// A BGP KEEPALIVE on the wire: 16-byte marker of 0xff, length 19, type 4.
bool is_bgp_keepalive(std::span<const std::uint8_t> payload) {
  if (payload.size() != 19) return false;
  for (std::size_t i = 0; i < 16; ++i) {
    if (payload[i] != 0xff) return false;
  }
  return payload[16] == 0 && payload[17] == 19 && payload[18] == 4;
}

struct AckEvent {
  Micros t = 0;           // shifted (sender-view) time
  std::int64_t off = 0;   // cumulative-ack stream offset
  std::int64_t window = 0;  // scaled advertised window in bytes
  std::size_t pkt_index = 0;
};

// One maximal period with outstanding data, plus what bounded it.
struct OutstandingPeriod {
  TimeRange range;
  std::int64_t max_outstanding = 0;
  std::int64_t min_window_gap = std::numeric_limits<std::int64_t>::max();
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  bool adv_bounded = false;
  bool cwnd_bounded = false;
};

}  // namespace

SeriesBundle build_series(const Connection& conn, const ConnectionProfile& profile,
                          const AnalyzerOptions& opts) {
  SeriesBundle out;
  const Micros rtt = profile.rtt();
  const std::int64_t mss = profile.mss();

  ClassifyOptions copts;
  copts.reorder_threshold = std::max<Micros>(
      kMicrosPerMilli,
      static_cast<Micros>(static_cast<double>(rtt) * opts.reorder_rtt_fraction));
  out.flow = classify_data_packets(conn, profile.data_dir, copts);
  out.shifted = shift_acks(conn, profile, opts);
  SeriesRegistry& reg = out.registry;

  // ---- gather views ------------------------------------------------------
  std::vector<Micros> data_ts;         // data-direction payload packets
  std::vector<FlightItem> data_items;
  std::vector<Micros> nonka_ts;        // non-keepalive data packets
  std::vector<Micros> ka_ts;           // keepalive packets
  EventSeries transmission(series::kTransmission);
  EventSeries keepalive(series::kKeepAlive);

  for (const LabeledDataPacket& lp : out.flow.data) {
    data_ts.push_back(lp.ts);
    data_items.push_back({lp.ts, static_cast<std::uint64_t>(lp.length()),
                          lp.packet_index});
    const DecodedPacket& pkt = conn.packets[lp.packet_index];
    if (is_bgp_keepalive(pkt.payload())) {
      ka_ts.push_back(lp.ts);
      keepalive.add({lp.ts, lp.ts + 1}, 1, pkt.payload_len,
                    static_cast<std::int64_t>(pkt.index));
    } else {
      nonka_ts.push_back(lp.ts);
    }
  }
  if (out.flow.data.empty()) {
    out.data_span = {};
  } else {
    out.data_span = {out.flow.data.front().ts, out.flow.data.back().ts + 1};
  }

  // Serialization-time estimate: the smallest positive spacing between
  // consecutive data packets approximates the bottleneck's per-packet wire
  // time (clamped to a sane band).
  Micros wire_time = 50;
  {
    Micros best = -1;
    for (std::size_t i = 1; i < data_ts.size(); ++i) {
      const Micros d = data_ts[i] - data_ts[i - 1];
      if (d > 0 && (best < 0 || d < best)) best = d;
    }
    if (best > 0) wire_time = std::clamp<Micros>(best, 1, kMicrosPerMilli);
  }
  for (const LabeledDataPacket& lp : out.flow.data) {
    transmission.add({lp.ts, lp.ts + wire_time}, 1,
                     static_cast<std::uint64_t>(lp.length()),
                     static_cast<std::int64_t>(lp.packet_index));
  }
  reg.put(std::move(transmission));
  reg.put(std::move(keepalive));

  // ---- ACK view (shifted), window steps ----------------------------------
  const std::uint8_t wscale =
      (profile.a_to_b.window_scale && profile.b_to_a.window_scale)
          ? profile.receiver().window_scale.value_or(0)
          : 0;
  std::vector<AckEvent> acks;
  EventSeries ack_arrival(series::kAckArrival);
  for (std::size_t i = 0; i < conn.packets.size(); ++i) {
    const DecodedPacket& pkt = conn.packets[i];
    if (packet_dir(conn.key, pkt) == profile.data_dir) continue;
    if (!pkt.tcp.flags.ack || pkt.tcp.flags.syn || pkt.tcp.flags.rst) continue;
    if (!out.flow.has_anchor) continue;
    AckEvent ev;
    ev.t = out.shifted.ts[i];
    ev.off = static_cast<std::int64_t>(
        static_cast<std::int32_t>(pkt.tcp.ack - out.flow.anchor_seq));
    ev.window = static_cast<std::int64_t>(pkt.tcp.window) << wscale;
    ev.pkt_index = i;
    acks.push_back(ev);
  }
  // Shifting can reorder ACKs across flights; re-sort by shifted time,
  // tie-breaking on capture order so ACKs of one burst (equal timestamps)
  // keep their cumulative sequence — the LAST of a burst carries the
  // authoritative window.
  std::sort(acks.begin(), acks.end(), [](const AckEvent& a, const AckEvent& b) {
    return a.t != b.t ? a.t < b.t : a.pkt_index < b.pkt_index;
  });
  for (const AckEvent& ev : acks) ack_arrival.add({ev.t, ev.t + 1}, 1, 0,
                                                  static_cast<std::int64_t>(ev.pkt_index));
  reg.put(std::move(ack_arrival));

  // Advertised-window step function and its small/large/zero slices.
  EventSeries adv(series::kAdvWindow);
  EventSeries small_adv(series::kSmallAdvWindow);
  EventSeries large_adv(series::kLargeAdvWindow);
  EventSeries zero_adv(series::kZeroAdvWindow);
  const std::int64_t max_adv = profile.max_advertised_window();
  const std::int64_t small_cut = static_cast<std::int64_t>(opts.small_window_mss) * mss;
  for (std::size_t i = 0; i < acks.size(); ++i) {
    const Micros t0 = acks[i].t;
    const Micros t1 = i + 1 < acks.size() ? acks[i + 1].t
                                          : std::max(t0 + 1, out.data_span.end);
    if (t1 <= t0) continue;
    const std::int64_t w = acks[i].window;
    adv.add({t0, t1}, 0, static_cast<std::uint64_t>(w));
    if (w == 0) zero_adv.add({t0, t1}, 0, 0);
    if (w < small_cut) small_adv.add({t0, t1}, 0, static_cast<std::uint64_t>(w));
    if (w > max_adv - small_cut) {
      large_adv.add({t0, t1}, 0, static_cast<std::uint64_t>(w));
    }
  }
  reg.put(std::move(adv));

  // ---- loss series (Extraction) ------------------------------------------
  EventSeries retransmission(series::kRetransmission);
  EventSeries upstream(series::kUpstreamLoss);
  EventSeries downstream(series::kDownstreamLoss);
  EventSeries out_of_seq(series::kOutOfSequence);
  EventSeries duplicate(series::kDuplicate);
  EventSeries rto_rec(series::kRtoRecovery);
  EventSeries fast_rec(series::kFastRecovery);
  const Micros rto_cut = std::max<Micros>(2 * rtt, 100 * kMicrosPerMilli);
  for (const LabeledDataPacket& lp : out.flow.data) {
    // The recovery period runs from when the loss became visible to when
    // the retransmission arrived (§III-C1: the *period*, not the instant).
    Micros begin = lp.loss_begin < lp.ts ? lp.loss_begin : lp.ts - kMicrosPerMilli;
    begin = std::max(begin, out.data_span.begin);
    const TimeRange recovery{begin, lp.ts + 1};
    const auto bytes = static_cast<std::uint64_t>(lp.length());
    const auto ref = static_cast<std::int64_t>(lp.packet_index);
    switch (lp.label) {
      case DataLabel::kRetransmitUpstream:
        upstream.add(recovery, 1, bytes, ref);
        retransmission.add(recovery, 1, bytes, ref);
        (recovery.length() > rto_cut ? rto_rec : fast_rec).add(recovery, 1, bytes, ref);
        break;
      case DataLabel::kRetransmitDownstream:
        downstream.add(recovery, 1, bytes, ref);
        retransmission.add(recovery, 1, bytes, ref);
        (recovery.length() > rto_cut ? rto_rec : fast_rec).add(recovery, 1, bytes, ref);
        break;
      case DataLabel::kReordering:
        out_of_seq.add(recovery, 1, bytes, ref);
        break;
      case DataLabel::kDuplicate:
        duplicate.add(recovery, 1, bytes, ref);
        break;
      case DataLabel::kInOrder:
        break;
    }
  }

  // ---- Outstanding sweep (+ window-bound attribution) ---------------------
  //
  // The sweep walks data and (shifted) ACK events in time order, tracking
  // the unacknowledged byte count and the advertised window. Outstanding
  // periods (for the Outstanding series) are maximal ranges with data in
  // flight. Window attribution is done per inter-event interval, because a
  // long transfer phase can alternate between receiver-window-bound and
  // congestion-window-bound (e.g. after every loss the cwnd dips below the
  // advertised window for many RTTs): an interval with data in flight is
  //   - AdvBndOut  if outstanding came within adv_bound_mss*MSS of the
  //     advertised window (the receiver's window is the bind), else
  //   - CwndBndOut if TCP had more data buffered but chose not to send
  //     (inferable: later data exists and was not sent in this interval) —
  //     cwnd is the only remaining window-side explanation. Loss-recovery
  //     intervals are carved out of CwndBndOut afterwards.
  EventSeries outstanding(series::kOutstanding);
  const std::int64_t adv_bound_cut =
      static_cast<std::int64_t>(opts.adv_bound_mss) * mss;
  EventSeries adv_bnd(series::kAdvBndOut);
  RangeSet cwnd_candidates;
  {
    std::size_t di = 0;
    std::size_t ai = 0;
    std::int64_t max_sent = 0;
    std::int64_t max_acked = 0;
    std::int64_t window = max_adv;  // before the first ACK, assume fully open
    OutstandingPeriod cur;
    bool open = false;
    Micros prev_t = -1;
    const std::int64_t last_data_off = out.flow.stream_length;

    auto account_interval = [&](Micros from, Micros to) {
      if (from < 0 || to <= from) return;
      const std::int64_t outs = max_sent - max_acked;
      if (outs <= 0) return;
      if (window - outs < adv_bound_cut) {
        adv_bnd.add({from, to}, 0, static_cast<std::uint64_t>(outs));
      } else if (max_sent < last_data_off) {
        // More table data followed later, yet TCP held back while the
        // receiver window had room: congestion-window bound.
        cwnd_candidates.insert(from, to);
      }
    };

    while (di < out.flow.data.size() || ai < acks.size()) {
      const bool take_data =
          ai >= acks.size() ||
          (di < out.flow.data.size() && out.flow.data[di].ts <= acks[ai].t);
      Micros t = 0;
      if (take_data) {
        const LabeledDataPacket& lp = out.flow.data[di++];
        t = lp.ts;
        account_interval(prev_t, t);
        max_sent = std::max(max_sent, lp.stream_end);
        if (open || max_sent - max_acked > 0) {
          if (!open) {
            cur = OutstandingPeriod{};
            cur.range.begin = t;
            open = true;
          }
          ++cur.packets;
          cur.bytes += static_cast<std::uint64_t>(lp.length());
          const std::int64_t outs = max_sent - max_acked;
          cur.max_outstanding = std::max(cur.max_outstanding, outs);
          cur.min_window_gap = std::min(cur.min_window_gap, window - outs);
        }
      } else {
        const AckEvent& ev = acks[ai++];
        t = ev.t;
        account_interval(prev_t, t);
        max_acked = std::max(max_acked, ev.off);
        window = ev.window;
        if (open && max_sent - max_acked <= 0) {
          cur.range.end = t;
          outstanding.add(cur.range, cur.packets, cur.bytes);
          open = false;
        }
      }
      prev_t = std::max(prev_t, t);
    }
    if (open) {
      cur.range.end = prev_t + 1;
      outstanding.add(cur.range, cur.packets, cur.bytes);
    }
  }
  reg.put(std::move(outstanding));

  // ---- flights -------------------------------------------------------------
  const Micros flight_gap = std::max<Micros>(
      kMicrosPerMilli, static_cast<Micros>(static_cast<double>(rtt) *
                                           opts.flight_gap_rtt_fraction));
  EventSeries data_flights(series::kDataFlight);
  for (const Flight& f : group_flights(data_items, flight_gap)) {
    data_flights.add({f.start, std::max(f.end, f.start + 1)}, f.packets, f.bytes);
  }
  reg.put(std::move(data_flights));

  // Bandwidth-limited candidates: a bottleneck link paces arrivals at a
  // constant *rate*, so the normalized gap (inter-arrival divided by the
  // later packet's size, i.e. seconds-per-byte) is constant even when
  // segment sizes vary. Take the time-weighted median of the normalized
  // gaps (the pacing that holds for most of the transfer time) and group
  // packets into runs whose pairs stay within a factor of it; runs lasting
  // well over an RTT are wire-paced. These are only *candidates*: window,
  // application, and loss explanations take precedence and are subtracted
  // at the Operation stage below, mirroring T-RAT's rule ordering.
  // Keepalives (including the periodic post-transfer ones) are not part of
  // the bulk stream; their pacing must not enter the pacing estimate.
  RangeSet bw_candidates;
  std::vector<Micros> bulk_ts;
  std::vector<std::uint64_t> bulk_bytes;
  for (const LabeledDataPacket& lp : out.flow.data) {
    const DecodedPacket& pkt = conn.packets[lp.packet_index];
    if (is_bgp_keepalive(pkt.payload())) continue;
    bulk_ts.push_back(lp.ts);
    bulk_bytes.push_back(static_cast<std::uint64_t>(lp.length()));
  }
  if (bulk_ts.size() > opts.bw_min_flight_packets) {
    struct Pair {
      double norm;   // gap / bytes of the later packet
      Micros gap;
    };
    std::vector<Pair> pairs;
    Micros total_gap = 0;
    for (std::size_t i = 1; i < bulk_ts.size(); ++i) {
      const Micros gap = bulk_ts[i] - bulk_ts[i - 1];
      const auto bytes = std::max<std::uint64_t>(bulk_bytes[i], 1);
      pairs.push_back({static_cast<double>(gap) / static_cast<double>(bytes), gap});
      total_gap += gap;
    }
    std::vector<Pair> by_norm = pairs;
    std::sort(by_norm.begin(), by_norm.end(),
              [](const Pair& a, const Pair& b) { return a.norm < b.norm; });
    double wmedian = 0.0;
    Micros acc = 0;
    for (const Pair& p : by_norm) {
      acc += p.gap;
      if (2 * acc >= total_gap) {
        wmedian = p.norm;
        break;
      }
    }
    const double run_cut = opts.bw_uniformity_factor * wmedian;
    std::size_t run_start = 0;
    auto flush_run = [&](std::size_t end_idx) {  // run covers [run_start, end_idx]
      const std::size_t n = end_idx - run_start + 1;
      const Micros span_len = bulk_ts[end_idx] - bulk_ts[run_start];
      if (n < opts.bw_min_flight_packets || span_len < 2 * rtt) return;
      // Uniformity lower bound: genuine wire pacing keeps every gap near
      // the pacing value. A bursty flow (application timer, window bursts)
      // has a count-median far BELOW the time-weighted median even though
      // no single gap exceeds the upper cut.
      std::vector<double> run_norms;
      run_norms.reserve(n - 1);
      for (std::size_t k = run_start + 1; k <= end_idx; ++k) {
        run_norms.push_back(pairs[k - 1].norm);
      }
      std::nth_element(run_norms.begin(), run_norms.begin() + run_norms.size() / 2,
                       run_norms.end());
      const double count_median = run_norms[run_norms.size() / 2];
      if (count_median * opts.bw_uniformity_factor < wmedian) return;
      // An application timer also produces uniform gaps. Two tie-breakers
      // separate it from wire pacing:
      //  - on a wire the gap tracks packet size (gap = size/rate), so
      //    normalizing by size REDUCES relative variance; a timer's raw
      //    gaps are already constant and normalizing adds size noise;
      //  - no pair may arrive much faster than the claimed pacing — a
      //    back-to-back pair proves the wire is far faster than the gaps.
      double raw_mean = 0, norm_mean = 0;
      double min_norm = std::numeric_limits<double>::max();
      for (std::size_t k = run_start + 1; k <= end_idx; ++k) {
        raw_mean += static_cast<double>(pairs[k - 1].gap);
        norm_mean += pairs[k - 1].norm;
        min_norm = std::min(min_norm, pairs[k - 1].norm);
      }
      raw_mean /= static_cast<double>(n - 1);
      norm_mean /= static_cast<double>(n - 1);
      double raw_var = 0, norm_var = 0;
      for (std::size_t k = run_start + 1; k <= end_idx; ++k) {
        const double dr = static_cast<double>(pairs[k - 1].gap) - raw_mean;
        const double dn = pairs[k - 1].norm - norm_mean;
        raw_var += dr * dr;
        norm_var += dn * dn;
      }
      if (raw_mean <= 0 || norm_mean <= 0) return;
      const double raw_cov = std::sqrt(raw_var) / raw_mean;
      const double norm_cov = std::sqrt(norm_var) / norm_mean;
      if (norm_cov > raw_cov) return;           // timer signature
      if (4 * min_norm < norm_mean) return;     // fast (sub-pacing) pairs exist
      bw_candidates.insert(bulk_ts[run_start], bulk_ts[end_idx] + 1);
    };
    for (std::size_t i = 1; i < bulk_ts.size(); ++i) {
      if (pairs[i - 1].norm > run_cut) {
        flush_run(i - 1);
        run_start = i;
      }
    }
    flush_run(bulk_ts.size() - 1);
  }

  // Congestion-window bound: intervals where TCP held back despite an open
  // window and pending data — minus loss recovery (its own factor) and
  // minus wire-paced runs (from the sniffer, bytes queued at an upstream
  // bottleneck are indistinguishable from bytes TCP chose not to send, and
  // the pacing signature is the stronger evidence).
  EventSeries cwnd_bnd = EventSeries::from_ranges(
      series::kCwndBndOut, cwnd_candidates.set_difference(retransmission.ranges())
                               .set_difference(bw_candidates));
  {
    std::vector<FlightItem> ack_items;
    for (const AckEvent& ev : acks) ack_items.push_back({ev.t, 0, ev.pkt_index});
    EventSeries ack_flights(series::kAckFlight);
    for (const Flight& f : group_flights(ack_items, flight_gap)) {
      ack_flights.add({f.start, std::max(f.end, f.start + 1)}, f.packets, 0);
    }
    reg.put(std::move(ack_flights));
  }

  // ---- handshake / teardown / idle ----------------------------------------
  {
    EventSeries handshake(series::kHandshake);
    if (!conn.packets.empty()) {
      const Micros t0 = conn.packets.front().ts;
      Micros t1 = t0;
      if (profile.rtt_handshake) {
        t1 = t0 + *profile.rtt_handshake;
      } else if (!data_ts.empty()) {
        t1 = data_ts.front();
      }
      if (t1 > t0) handshake.add(TimeRange{t0, t1});
    }
    reg.put(std::move(handshake));

    EventSeries teardown(series::kTeardown);
    Micros fin_ts = -1;
    for (const DecodedPacket& pkt : conn.packets) {
      if (pkt.tcp.flags.fin || pkt.tcp.flags.rst) {
        fin_ts = pkt.ts;
        break;
      }
    }
    if (fin_ts >= 0) {
      teardown.add(TimeRange{fin_ts, std::max(conn.packets.back().ts, fin_ts) + 1});
    }
    reg.put(std::move(teardown));

    EventSeries idle(series::kIdle);
    const Micros idle_cut = std::max<Micros>(2 * rtt, 10 * kMicrosPerMilli);
    for (std::size_t i = 1; i < conn.packets.size(); ++i) {
      const Micros gap_len = conn.packets[i].ts - conn.packets[i - 1].ts;
      if (gap_len > idle_cut) {
        idle.add(TimeRange{conn.packets[i - 1].ts, conn.packets[i].ts});
      }
    }
    reg.put(std::move(idle));
  }

  // ---- KeepAliveOnly: gaps between non-keepalive data that carry only
  // keepalives (the signature of a paused-but-alive session, Fig. 9).
  {
    EventSeries ka_only(series::kKeepAliveOnly);
    for (std::size_t i = 1; i < nonka_ts.size(); ++i) {
      const Micros lo = nonka_ts[i - 1];
      const Micros hi = nonka_ts[i];
      auto first = std::upper_bound(ka_ts.begin(), ka_ts.end(), lo);
      if (first != ka_ts.end() && *first < hi) {
        ka_only.add({lo, hi}, static_cast<std::uint64_t>(
                                  std::upper_bound(first, ka_ts.end(), hi) - first));
      }
    }
    // Tail: keepalives after the last data message (post-transfer quiet).
    if (!nonka_ts.empty()) {
      auto first = std::upper_bound(ka_ts.begin(), ka_ts.end(), nonka_ts.back());
      if (first != ka_ts.end()) {
        ka_only.add({nonka_ts.back(), ka_ts.back() + 1},
                    static_cast<std::uint64_t>(ka_ts.end() - first));
      }
    }
    reg.put(std::move(ka_only));
  }

  // ---- Interpretation (Rule 2): sniffer location --------------------------
  EventSeries send_local(series::kSendLocalLoss);
  EventSeries recv_local(series::kRecvLocalLoss);
  EventSeries net_loss(series::kNetworkLoss);
  switch (opts.location) {
    case SnifferLocation::kNearReceiver:
      recv_local = downstream.renamed(series::kRecvLocalLoss);
      net_loss = upstream.renamed(series::kNetworkLoss);
      break;
    case SnifferLocation::kNearSender:
      send_local = upstream.renamed(series::kSendLocalLoss);
      net_loss = downstream.renamed(series::kNetworkLoss);
      break;
    case SnifferLocation::kMiddle:
      net_loss = upstream.unite(downstream, series::kNetworkLoss);
      break;
  }
  reg.put(reg.get(series::kKeepAlive).renamed(series::kBgpKeepAlive));

  // ---- Operation (Rules 3 & 4): set algebra --------------------------------
  // Sender application idle: within the data span, no outstanding data, the
  // window is open, and no loss recovery in progress — TCP could send, BGP
  // did not produce.
  {
    RangeSet span;
    span.insert(out.data_span);
    RangeSet app = span.set_difference(reg.get(series::kOutstanding).ranges())
                       .set_difference(zero_adv.ranges())
                       .set_difference(retransmission.ranges())
                       .set_difference(bw_candidates);
    if (reg.has(series::kHandshake)) {
      app = app.set_difference(reg.get(series::kHandshake).ranges());
    }
    reg.put(EventSeries::from_ranges(series::kSendAppLimited, std::move(app)));
  }
  {
    EventSeries small_bnd =
        adv_bnd.intersect(small_adv, series::kSmallAdvBndOut)
            .unite(zero_adv, series::kSmallAdvBndOut);
    EventSeries large_bnd = adv_bnd.intersect(large_adv, series::kLargeAdvBndOut);
    EventSeries zero_bnd = zero_adv.renamed(series::kZeroAdvBndOut);
    EventSeries loss_all = upstream.unite(downstream, series::kLossRecovery);
    EventSeries window_all = adv_bnd.unite(cwnd_bnd, series::kWindowLimited)
                                 .unite(zero_bnd, series::kWindowLimited);

    // Wire-paced candidates minus window and loss explanations: what
    // remains is genuinely limited by the path's bandwidth. (The uniformity
    // checks above make the pacing signature strong evidence, so it takes
    // precedence over the residual sender-idle inference.)
    RangeSet bw = bw_candidates;
    bw = bw.set_difference(adv_bnd.ranges());
    bw = bw.set_difference(small_bnd.ranges());
    bw = bw.set_difference(retransmission.ranges());
    reg.put(EventSeries::from_ranges(series::kBandwidthLimited, std::move(bw)));

    reg.put(std::move(small_bnd));
    reg.put(std::move(large_bnd));
    reg.put(std::move(zero_bnd));
    reg.put(std::move(loss_all));
    reg.put(std::move(window_all));
  }

  reg.put(std::move(small_adv));
  reg.put(std::move(large_adv));
  reg.put(std::move(zero_adv));
  reg.put(std::move(retransmission));
  reg.put(std::move(upstream));
  reg.put(std::move(downstream));
  reg.put(std::move(out_of_seq));
  reg.put(std::move(duplicate));
  reg.put(std::move(rto_rec));
  reg.put(std::move(fast_rec));
  reg.put(std::move(adv_bnd));
  reg.put(std::move(cwnd_bnd));
  reg.put(std::move(send_local));
  reg.put(std::move(recv_local));
  reg.put(std::move(net_loss));
  return out;
}

}  // namespace tdat
