#include "core/locate.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "tcp/seq.hpp"

namespace tdat {

SnifferLocationEstimate infer_sniffer_location(const Connection& conn,
                                               const ConnectionProfile& profile,
                                               const LocateOptions& opts) {
  SnifferLocationEstimate out;

  // Anchor data stream offsets at the data direction's first byte.
  std::optional<std::uint32_t> anchor;
  for (const DecodedPacket& pkt : conn.packets) {
    if (packet_dir(conn.key, pkt) != profile.data_dir) continue;
    if (pkt.tcp.flags.syn) {
      anchor = pkt.tcp.seq + 1;
      break;
    }
    if (pkt.has_payload()) {
      anchor = pkt.tcp.seq;
      break;
    }
  }
  if (!anchor) return out;

  SeqUnwrapper data_unwrap(*anchor);
  SeqUnwrapper ack_unwrap(*anchor);
  // stream end -> capture ts, kept sorted by end. Data mostly arrives in
  // order, so insertion is an O(1) append; retransmissions overwrite their
  // slot via binary search — no node-per-segment map churn.
  std::vector<std::pair<std::int64_t, Micros>> last_data_ending_at;
  std::vector<Micros> data_ts;

  // d1 samples: ACK covering exactly a segment's end, minus that segment's
  // capture time.
  for (const DecodedPacket& pkt : conn.packets) {
    if (packet_dir(conn.key, pkt) == profile.data_dir) {
      if (!pkt.has_payload()) continue;
      const std::int64_t begin = data_unwrap.unwrap(pkt.tcp.seq);
      const std::int64_t end = begin + static_cast<std::int64_t>(pkt.payload_len);
      if (last_data_ending_at.empty() || last_data_ending_at.back().first < end) {
        last_data_ending_at.emplace_back(end, pkt.ts);
      } else {
        auto it = std::lower_bound(
            last_data_ending_at.begin(), last_data_ending_at.end(), end,
            [](const auto& e, std::int64_t v) { return e.first < v; });
        if (it != last_data_ending_at.end() && it->first == end) {
          it->second = pkt.ts;
        } else {
          last_data_ending_at.emplace(it, end, pkt.ts);
        }
      }
      data_ts.push_back(pkt.ts);
    } else if (pkt.tcp.flags.ack && !pkt.tcp.flags.syn) {
      const std::int64_t off = ack_unwrap.unwrap(pkt.tcp.ack);
      auto it = std::lower_bound(
          last_data_ending_at.begin(), last_data_ending_at.end(), off,
          [](const auto& e, std::int64_t v) { return e.first < v; });
      if (it == last_data_ending_at.end() || it->first != off) continue;
      const Micros gap = pkt.ts - it->second;
      if (gap > 0 && (out.d1 < 0 || gap < out.d1)) out.d1 = gap;
    }
  }

  // d2 samples: ACK to the next data packet (the minimum is the tightest
  // liberation, as in the ACK-shifting step).
  for (const DecodedPacket& pkt : conn.packets) {
    if (packet_dir(conn.key, pkt) == profile.data_dir || !pkt.tcp.flags.ack ||
        pkt.tcp.flags.syn) {
      continue;
    }
    auto it = std::upper_bound(data_ts.begin(), data_ts.end(), pkt.ts);
    if (it == data_ts.end()) continue;
    const Micros gap = *it - pkt.ts;
    if (gap > 0 && (out.d2 < 0 || gap < out.d2)) out.d2 = gap;
  }

  if (out.d1 <= 0 || out.d2 <= 0) return out;  // not confident, kMiddle
  const double ratio = static_cast<double>(out.d2) / static_cast<double>(out.d1);
  if (ratio >= opts.decisive_ratio) {
    out.location = SnifferLocation::kNearReceiver;
    out.confident = true;
  } else if (ratio <= 1.0 / opts.decisive_ratio) {
    out.location = SnifferLocation::kNearSender;
    out.confident = true;
  } else {
    out.location = SnifferLocation::kMiddle;
    out.confident = true;
  }
  return out;
}

}  // namespace tdat
