#include "core/delay_report.hpp"

namespace tdat {

namespace {

const RangeSet* maybe_ranges(const SeriesRegistry& reg, const char* name) {
  return reg.has(name) ? &reg.get(name).ranges() : nullptr;
}

}  // namespace

RangeSet factor_ranges(const SeriesRegistry& reg, Factor f) {
  RangeSet out;
  RangeSet tmp;
  factor_ranges_into(reg, f, tmp, out);
  return out;
}

void factor_ranges_into(const SeriesRegistry& reg, Factor f, RangeSet& tmp,
                        RangeSet& out) {
  auto copy = [&](const char* name) {
    if (const RangeSet* r = maybe_ranges(reg, name)) {
      out = *r;
    } else {
      out.clear();
    }
  };
  switch (f) {
    case Factor::kBgpSenderApp:
      copy(series::kSendAppLimited);
      return;
    case Factor::kTcpCongestionWindow:
      copy(series::kCwndBndOut);
      return;
    case Factor::kSenderLocalLoss:
      copy(series::kSendLocalLoss);
      return;
    case Factor::kBgpReceiverApp:
      // Small or closed advertised window: the receiving application is not
      // keeping up with the sender.
      copy(series::kSmallAdvBndOut);
      return;
    case Factor::kTcpAdvertisedWindow:
      // Window-bound but NOT because the app fell behind: the configured
      // window itself (e.g. RouteViews' 16 KB) is the limit. Wire-paced
      // periods are excluded — when the bottleneck queue inflates until the
      // window fills, the window is a symptom, not the cause.
      copy(series::kAdvBndOut);
      if (const RangeSet* r = maybe_ranges(reg, series::kSmallAdvBndOut)) {
        out.subtract_with(*r, tmp);
      }
      if (const RangeSet* r = maybe_ranges(reg, series::kBandwidthLimited)) {
        out.subtract_with(*r, tmp);
      }
      return;
    case Factor::kReceiverLocalLoss:
      copy(series::kRecvLocalLoss);
      return;
    case Factor::kBandwidthLimited:
      copy(series::kBandwidthLimited);
      return;
    case Factor::kNetworkLoss:
      copy(series::kNetworkLoss);
      return;
  }
  out.clear();
}

DelayReport classify_delay(const SeriesRegistry& reg, TimeRange window,
                           const AnalyzerOptions& opts) {
  DelayScratch scratch;
  return classify_delay(reg, window, opts, scratch);
}

DelayReport classify_delay(const SeriesRegistry& reg, TimeRange window,
                           const AnalyzerOptions& opts, DelayScratch& scratch) {
  DelayReport rep;
  begin_delay_classification(rep, window, scratch);
  for (std::size_t i = 0; i < kFactorCount; ++i) {
    classify_factor(rep, reg, static_cast<Factor>(i), scratch);
  }
  finalize_delay_groups(rep, opts, scratch);
  return rep;
}

void begin_delay_classification(DelayReport& rep, TimeRange window,
                                DelayScratch& scratch) {
  rep = DelayReport{};  // flat arrays only — no heap traffic
  rep.window = window;
  // Disabled factor passes never touch their set, so it must start empty for
  // the group union in finalize.
  for (RangeSet& set : scratch.sets) set.clear();
  if (window.empty()) return;
  scratch.clip.clear();
  scratch.clip.insert(window);
}

void classify_factor(DelayReport& rep, const SeriesRegistry& reg, Factor f,
                     DelayScratch& scratch) {
  if (rep.window.empty()) return;
  const auto period = static_cast<double>(rep.window.length());
  const auto i = static_cast<std::size_t>(f);
  RangeSet& set = scratch.sets[i];
  factor_ranges_into(reg, f, scratch.tmp, set);
  set.intersect_with(scratch.clip, scratch.tmp);
  rep.factor_delay[i] = set.size();
  rep.factor_ratio[i] = static_cast<double>(rep.factor_delay[i]) / period;
}

void finalize_delay_groups(DelayReport& rep, const AnalyzerOptions& opts,
                           DelayScratch& scratch) {
  if (rep.window.empty()) return;
  const auto period = static_cast<double>(rep.window.length());
  for (std::size_t g = 0; g < kGroupCount; ++g) {
    RangeSet& merged = scratch.merged;
    merged.clear();
    Micros best = -1;
    for (Factor f : factors_in(static_cast<FactorGroup>(g))) {
      const auto i = static_cast<std::size_t>(f);
      merged.union_with(scratch.sets[i], scratch.tmp);
      if (rep.factor_delay[i] > best) {
        best = rep.factor_delay[i];
        rep.dominant_factor[g] = f;
      }
    }
    rep.group_delay[g] = merged.size();
    rep.group_ratio[g] = static_cast<double>(rep.group_delay[g]) / period;
    rep.group_major[g] = rep.group_ratio[g] > opts.major_threshold;
  }
}

}  // namespace tdat
