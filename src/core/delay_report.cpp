#include "core/delay_report.hpp"

namespace tdat {

RangeSet factor_ranges(const SeriesRegistry& reg, Factor f) {
  auto get = [&](const char* name) -> RangeSet {
    return reg.has(name) ? reg.get(name).ranges() : RangeSet{};
  };
  switch (f) {
    case Factor::kBgpSenderApp:
      return get(series::kSendAppLimited);
    case Factor::kTcpCongestionWindow:
      return get(series::kCwndBndOut);
    case Factor::kSenderLocalLoss:
      return get(series::kSendLocalLoss);
    case Factor::kBgpReceiverApp:
      // Small or closed advertised window: the receiving application is not
      // keeping up with the sender.
      return get(series::kSmallAdvBndOut);
    case Factor::kTcpAdvertisedWindow:
      // Window-bound but NOT because the app fell behind: the configured
      // window itself (e.g. RouteViews' 16 KB) is the limit. Wire-paced
      // periods are excluded — when the bottleneck queue inflates until the
      // window fills, the window is a symptom, not the cause.
      return get(series::kAdvBndOut)
          .set_difference(get(series::kSmallAdvBndOut))
          .set_difference(get(series::kBandwidthLimited));
    case Factor::kReceiverLocalLoss:
      return get(series::kRecvLocalLoss);
    case Factor::kBandwidthLimited:
      return get(series::kBandwidthLimited);
    case Factor::kNetworkLoss:
      return get(series::kNetworkLoss);
  }
  return {};
}

DelayReport classify_delay(const SeriesRegistry& reg, TimeRange window,
                           const AnalyzerOptions& opts) {
  DelayReport rep;
  rep.window = window;
  const auto period = static_cast<double>(window.length());
  if (window.empty()) return rep;

  std::array<RangeSet, kFactorCount> sets;
  RangeSet clip;
  clip.insert(window);
  for (std::size_t i = 0; i < kFactorCount; ++i) {
    sets[i] = factor_ranges(reg, static_cast<Factor>(i)).set_intersection(clip);
    rep.factor_delay[i] = sets[i].size();
    rep.factor_ratio[i] = static_cast<double>(rep.factor_delay[i]) / period;
  }

  for (std::size_t g = 0; g < kGroupCount; ++g) {
    RangeSet merged;
    Micros best = -1;
    for (Factor f : factors_in(static_cast<FactorGroup>(g))) {
      const auto i = static_cast<std::size_t>(f);
      merged = merged.set_union(sets[i]);
      if (rep.factor_delay[i] > best) {
        best = rep.factor_delay[i];
        rep.dominant_factor[g] = f;
      }
    }
    rep.group_delay[g] = merged.size();
    rep.group_ratio[g] = static_cast<double>(rep.group_delay[g]) / period;
    rep.group_major[g] = rep.group_ratio[g] > opts.major_threshold;
  }
  return rep;
}

}  // namespace tdat
