// Time-sequence rendering — the tcptrace/BGPlot-style view the paper's
// Figs. 5-9 are drawn in: x = time, y = stream offset; data packets, their
// retransmissions, and the cumulative-ACK frontier on one canvas.
//
//   .  in-order data        R  retransmission (downstream or upstream)
//   o  reordering           D  duplicate
//   a  cumulative ACK frontier
#pragma once

#include <string>

#include "tcp/classify.hpp"
#include "timerange/range_set.hpp"
#include "tcp/profile.hpp"

namespace tdat {

struct TimeSeqOptions {
  std::size_t width = 100;   // time buckets
  std::size_t height = 20;   // stream-offset buckets
};

// Renders the data direction of `conn` over `window`. `flow` must be the
// classification of the same connection/direction.
[[nodiscard]] std::string render_time_sequence(const Connection& conn,
                                               const ClassifiedFlow& flow,
                                               TimeRange window,
                                               const TimeSeqOptions& opts = {});

}  // namespace tdat
