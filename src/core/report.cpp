#include "core/report.hpp"

#include <cstdio>

#include "core/export.hpp"
#include "core/pass.hpp"
#include "timerange/render.hpp"
#include "util/assert.hpp"
#include "util/metrics.hpp"
#include "util/version.hpp"

namespace tdat {

namespace {

template <typename... Args>
void appendf(std::string& out, const char* fmt, Args... args) {
  char buf[256];
  const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

// Minimal JSON string escaping for file paths (quotes, backslashes, control
// bytes); connection keys are ip:port text and never need it.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          appendf(out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void render_ingest_text(const ReportModel& model, std::string& out) {
  if (!model.ingest.has_errors()) return;
  appendf(out,
          "ingest errors: %llu truncated, %llu resynced, %llu bytes skipped%s\n",
          static_cast<unsigned long long>(model.ingest.truncated),
          static_cast<unsigned long long>(model.ingest.resynced),
          static_cast<unsigned long long>(model.ingest.skipped_bytes),
          model.ingest.budget_exhausted ? " (error budget exhausted)" : "");
  for (const FileIngestDiagnostics& f : model.files) {
    appendf(out, "  %s: %llu truncated, %llu resynced, %llu bytes skipped\n",
            f.path.c_str(), static_cast<unsigned long long>(f.diag.truncated),
            static_cast<unsigned long long>(f.diag.resynced),
            static_cast<unsigned long long>(f.diag.skipped_bytes));
  }
}

// The CLI's human-readable summary, byte-for-byte what cmd_analyze printed
// before the sink existed. Detector lines come from the pass text hooks in
// registration order (the historical print order).
void render_text(const ReportModel& model, const ReportRenderOptions& opts,
                 std::string& out) {
  render_ingest_text(model, out);
  for (const ReportEntry& entry : model.entries) {
    const ConnectionAnalysis& a = *entry.analysis;
    appendf(out, "connection %s\n", entry.conn->key.to_string().c_str());
    if (a.quarantined()) {
      appendf(out, "  quarantined: %s\n", a.quarantine_reason);
      continue;
    }
    if (entry.where.confident) {
      appendf(out, "  inferred sniffer position: %s\n",
              entry.where.location == SnifferLocation::kNearReceiver
                  ? "receiver side"
              : entry.where.location == SnifferLocation::kNearSender
                  ? "sender side"
                  : "mid-path");
    }
    if (a.transfer.empty()) {
      out += "  no table transfer found\n";
      continue;
    }
    appendf(out, "  transfer %.2fs, %zu updates, %zu prefixes\n",
            to_seconds(a.transfer_duration()), a.mct.update_count,
            a.mct.prefix_count);
    appendf(out, "  (Rs, Rr, Rn) = (%.2f, %.2f, %.2f)\n",
            a.report.ratio(FactorGroup::kSender),
            a.report.ratio(FactorGroup::kReceiver),
            a.report.ratio(FactorGroup::kNetwork));
    for (std::size_t f = 0; f < kFactorCount; ++f) {
      if (a.report.factor_ratio[f] < 0.01) continue;
      appendf(out, "    %-26s %5.1f%%\n", to_string(static_cast<Factor>(f)),
              100.0 * a.report.factor_ratio[f]);
    }
    for (const AnalysisPass* pass : pass_registry().passes()) {
      pass->text_findings(a, out);
    }
    for (const std::string& name : opts.series) {
      if (!a.series().has(name)) {
        appendf(out, "  (no series named %s)\n", name.c_str());
        continue;
      }
      out += render_series({&a.series().get(name)}, a.transfer);
      out += '\n';
    }
  }
}

void render_json(const ReportModel& model, std::string& out) {
  // Every JSON report opens with the release that produced it, so consumers
  // can gate on version skew. Only the semver enters the bytes (never git
  // describe or build flavor): reports from one release stay byte-stable
  // across checkouts. The "ingest" member appears only when ingest reported
  // damage — clean captures keep a fixed shape.
  out += "{\"tdat_version\":\"";
  out += json_escape(version_semver());
  out += '"';
  if (model.ingest.has_errors()) {
    out += ",\"ingest\":";
    std::string diag = model.ingest.to_json();
    if (!model.files.empty()) {
      diag.pop_back();  // reopen the diagnostics object for "files"
      diag += ",\"files\":[";
      bool first_file = true;
      for (const FileIngestDiagnostics& f : model.files) {
        if (!first_file) diag += ',';
        first_file = false;
        diag += "{\"path\":\"" + json_escape(f.path) + "\",";
        diag += f.diag.to_json().substr(1);  // splice in the counter members
      }
      diag += "]}";
    }
    out += diag;
  }
  out += ",\"connections\":[";
  bool first_entry = true;
  for (const ReportEntry& entry : model.entries) {
    if (!first_entry) out += ',';
    first_entry = false;
    const ConnectionAnalysis& a = *entry.analysis;
    if (a.quarantined()) {
      out += "{\"connection\":\"" + entry.conn->key.to_string() +
             "\",\"quarantined\":\"" + a.quarantine_reason + "\"}";
      continue;
    }
    out += analysis_to_json_open(a);
    out += ",\"detectors\":{";
    bool first_detector = true;
    for (const AnalysisPass* pass : pass_registry().passes()) {
      std::string member;
      if (!pass->json_findings(a, member)) continue;
      if (!first_detector) out += ',';
      first_detector = false;
      out += member;
    }
    out += "}}";
  }
  out += "]}";
  out += '\n';
}

void render_csv(const ReportModel& model, std::string& out) {
  out += "connection,section,key,value\n";
  const auto row = [&out](const std::string& conn, const char* section,
                          const char* key, const std::string& value) {
    out.append(conn).push_back(',');
    out.append(section).push_back(',');
    out.append(key).push_back(',');
    out.append(value).push_back('\n');
  };
  if (model.ingest.has_errors()) {
    row("", "ingest", "truncated", std::to_string(model.ingest.truncated));
    row("", "ingest", "resynced", std::to_string(model.ingest.resynced));
    row("", "ingest", "skipped_bytes",
        std::to_string(model.ingest.skipped_bytes));
    if (model.ingest.budget_exhausted) {
      row("", "ingest", "budget_exhausted", "true");
    }
    for (const FileIngestDiagnostics& f : model.files) {
      row(f.path, "ingest", "truncated", std::to_string(f.diag.truncated));
      row(f.path, "ingest", "resynced", std::to_string(f.diag.resynced));
      row(f.path, "ingest", "skipped_bytes",
          std::to_string(f.diag.skipped_bytes));
    }
  }
  for (const ReportEntry& entry : model.entries) {
    const ConnectionAnalysis& a = *entry.analysis;
    const std::string conn = entry.conn->key.to_string();
    if (a.quarantined()) {
      row(conn, "quarantine", "reason", a.quarantine_reason);
      continue;
    }
    row(conn, "profile", "rtt_us", std::to_string(a.profile.rtt()));
    row(conn, "profile", "mss", std::to_string(a.profile.mss()));
    row(conn, "profile", "max_advertised_window",
        std::to_string(a.profile.max_advertised_window()));
    row(conn, "transfer", "begin_us", std::to_string(a.transfer.begin));
    row(conn, "transfer", "end_us", std::to_string(a.transfer.end));
    row(conn, "transfer", "updates", std::to_string(a.mct.update_count));
    row(conn, "transfer", "prefixes", std::to_string(a.mct.prefix_count));
    for (std::size_t f = 0; f < kFactorCount; ++f) {
      row(conn, "factor", to_string(static_cast<Factor>(f)),
          json_double(a.report.factor_ratio[f]));
    }
    for (std::size_t g = 0; g < kGroupCount; ++g) {
      row(conn, "group", to_string(static_cast<FactorGroup>(g)),
          json_double(a.report.group_ratio[g]));
    }
    for (const AnalysisPass* pass : pass_registry().passes()) {
      pass->csv_findings(a, conn, out);
    }
  }
}

// Renderers plugged in by higher layers (kAgg). Registration happens once
// during CLI startup, before any rendering, so no locking is needed.
ReportRenderer registered_renderers[4] = {nullptr, nullptr, nullptr, nullptr};

}  // namespace

Result<ReportFormat> parse_report_format(std::string_view value) {
  if (value == "text") return ReportFormat::kText;
  if (value == "json") return ReportFormat::kJson;
  if (value == "csv") return ReportFormat::kCsv;
  if (value == "agg") return ReportFormat::kAgg;
  return Err<ReportFormat>("unknown report format '" + std::string(value) +
                           "' (valid: text, json, csv, agg)");
}

void register_report_renderer(ReportFormat format, ReportRenderer renderer) {
  registered_renderers[static_cast<std::size_t>(format)] = renderer;
}

ReportModel build_report_model(const TraceAnalysis& analysis) {
  ReportModel model;
  model.ingest = analysis.stats.ingest;
  model.quarantined = analysis.stats.quarantined;
  for (const FileIngestDiagnostics& f : analysis.file_diags) {
    if (f.diag.has_errors()) model.files.push_back(f);
  }
  model.entries.reserve(analysis.results.size());
  for (const ConnectionAnalysis& a : analysis.results) {
    ReportEntry entry;
    entry.conn = &analysis.connections[a.conn_index];
    entry.analysis = &a;
    entry.where = infer_sniffer_location(*entry.conn, a.profile);
    model.entries.push_back(entry);
  }
  return model;
}

std::string render_report(const ReportModel& model, ReportFormat format,
                          const ReportRenderOptions& opts) {
  std::string out;
  switch (format) {
    case ReportFormat::kText:
      render_text(model, opts, out);
      break;
    case ReportFormat::kJson:
      render_json(model, out);
      break;
    case ReportFormat::kCsv:
      render_csv(model, out);
      break;
    case ReportFormat::kAgg: {
      ReportRenderer renderer =
          registered_renderers[static_cast<std::size_t>(format)];
      TDAT_EXPECTS(renderer != nullptr);  // CLI registers the agg sink first
      out = renderer(model, opts);
      break;
    }
  }
  return out;
}

}  // namespace tdat
