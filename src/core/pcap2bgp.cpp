#include "core/pcap2bgp.hpp"

#include "tcp/seq.hpp"

#include <algorithm>

namespace tdat {

Pcap2BgpResult extract_bgp_messages(const Connection& conn, Dir data_dir) {
  ExtractScratch scratch;
  Pcap2BgpResult out;
  extract_bgp_messages_into(conn, data_dir, scratch, out);
  return out;
}

void extract_bgp_messages_into(const Connection& conn, Dir data_dir,
                               ExtractScratch& scratch, Pcap2BgpResult& out) {
  out.messages.clear();
  out.skipped_bytes = 0;
  out.parse_errors = 0;
  out.frame_resyncs = 0;

  // Anchor the stream at ISN+1 if the SYN was captured, else at the first
  // data segment.
  std::optional<std::uint32_t> anchor;
  for (const DecodedPacket& pkt : conn.packets) {
    if (packet_dir(conn.key, pkt) != data_dir) continue;
    if (pkt.tcp.flags.syn) {
      anchor = pkt.tcp.seq + 1;
      break;
    }
    if (pkt.has_payload()) {
      anchor = pkt.tcp.seq;
      break;
    }
  }
  if (!anchor) return;

  scratch.reasm.reset(*anchor);
  scratch.stream.reset();
  for (const DecodedPacket& pkt : conn.packets) {
    if (packet_dir(conn.key, pkt) != data_dir || !pkt.has_payload()) continue;
    scratch.reasm.feed(
        pkt.tcp.seq, pkt.payload(), pkt.ts,
        [&](std::int64_t, std::span<const std::uint8_t> bytes, Micros ts) {
          scratch.stream.feed_into(bytes, ts, out.messages);
        });
  }
  out.skipped_bytes = scratch.stream.skipped_bytes();
  out.parse_errors = scratch.stream.parse_errors();
  out.frame_resyncs = scratch.stream.resyncs();

  // Sniffer-position correction: the tap may capture packets that are then
  // dropped between it and the receiver (receiver-local losses, §II-B2), so
  // stream completion at the sniffer can precede actual receipt by whole
  // recovery episodes. A message provably reached the receiver once a
  // cumulative ACK covered its last byte — lift each timestamp to that ACK.
  auto& ack_steps = scratch.ack_steps;
  ack_steps.clear();
  {
    SeqUnwrapper unwrap(*anchor);
    std::int64_t max_off = 0;
    for (const DecodedPacket& pkt : conn.packets) {
      if (packet_dir(conn.key, pkt) == data_dir || !pkt.tcp.flags.ack ||
          pkt.tcp.flags.syn) {
        continue;
      }
      const std::int64_t off = unwrap.unwrap(pkt.tcp.ack);
      if (off > max_off) {
        max_off = off;
        ack_steps.emplace_back(off, pkt.ts);
      }
    }
  }
  if (!ack_steps.empty()) {
    for (TimedBgpMessage& tm : out.messages) {
      if (tm.end_offset < 0) continue;
      auto it = std::lower_bound(
          ack_steps.begin(), ack_steps.end(), tm.end_offset,
          [](const auto& step, std::int64_t off) { return step.first < off; });
      if (it != ack_steps.end()) tm.ts = std::max(tm.ts, it->second);
    }
    // Lifting can reorder timestamps only if ACK data raced; keep monotone.
    for (std::size_t i = 1; i < out.messages.size(); ++i) {
      out.messages[i].ts = std::max(out.messages[i].ts, out.messages[i - 1].ts);
    }
  }
}

std::vector<MrtRecord> to_mrt_records(const Connection& conn, Dir data_dir,
                                      const std::vector<TimedBgpMessage>& messages) {
  std::uint16_t peer_as = 0;
  for (const TimedBgpMessage& tm : messages) {
    if (const auto* open = std::get_if<BgpOpen>(&tm.msg.body)) {
      peer_as = open->my_as;
      break;
    }
  }
  // Peer = the data sender; local = the collector.
  std::uint32_t peer_ip = conn.key.ip_a;
  std::uint32_t local_ip = conn.key.ip_b;
  if (data_dir == Dir::kBToA) std::swap(peer_ip, local_ip);

  std::vector<MrtRecord> out;
  out.reserve(messages.size());
  for (const TimedBgpMessage& tm : messages) {
    MrtRecord rec;
    rec.ts = tm.ts;
    rec.peer_as = peer_as;
    rec.local_as = 65000;
    rec.peer_ip = peer_ip;
    rec.local_ip = local_ip;
    rec.bgp_message = serialize_message(tm.msg);
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace tdat
