#include "core/detectors.hpp"

#include <algorithm>
#include <cmath>

#include "util/knee.hpp"
#include "util/stats.hpp"

#include "tcp/seq.hpp"

namespace tdat {

namespace {

// Events of `series` overlapping `window`, walked in place — the pass-path
// replacement for EventSeries::query(), which materializes a vector.
template <typename Fn>
void for_each_event_in(const EventSeries& series, TimeRange window, Fn&& fn) {
  for (const Event& e : series.events()) {
    if (e.range.begin >= window.end) break;
    if (e.range.overlaps(window)) fn(e);
  }
}

}  // namespace

TimerGapResult detect_timer_gaps(const SeriesRegistry& reg, TimeRange window,
                                 const TimerGapOptions& opts) {
  TimerGapScratch scratch;
  TimerGapResult res;
  detect_timer_gaps_into(reg, window, opts, scratch, res);
  return res;
}

void detect_timer_gaps_into(const SeriesRegistry& reg, TimeRange window,
                            const TimerGapOptions& opts,
                            TimerGapScratch& scratch, TimerGapResult& res) {
  res.reset();
  if (!reg.has(series::kSendAppLimited) || window.empty()) return;

  // Gap lengths of sender-idle events in the plausible timer band.
  std::vector<double>& gaps_ms = scratch.gaps_ms;
  gaps_ms.clear();
  for_each_event_in(reg.get(series::kSendAppLimited), window,
                    [&](const Event& e) {
                      const Micros len = e.range.length();
                      if (len >= opts.min_gap && len <= opts.max_gap) {
                        gaps_ms.push_back(to_millis(len));
                      }
                    });
  if (gaps_ms.size() < opts.min_count) return;
  std::sort(gaps_ms.begin(), gaps_ms.end());
  res.sorted_gaps_ms = gaps_ms;

  // A pacing timer shows as a flat cluster followed by a rise: the knee of
  // the sorted curve (L-method, [27]) separates them. The timer value is
  // the median of the flat part.
  const auto knee = find_knee(gaps_ms);
  std::size_t cluster_end = gaps_ms.size();
  if (knee && knee->index >= opts.min_count) cluster_end = knee->index;
  std::vector<double>& cluster = scratch.cluster;
  cluster.assign(gaps_ms.begin(),
                 gaps_ms.begin() + static_cast<std::ptrdiff_t>(cluster_end));
  if (cluster.size() < opts.min_count) return;

  const double timer_ms = percentile(cluster, 50.0);
  const double lo = percentile(cluster, 10.0);
  const double hi = percentile(cluster, 90.0);
  if (timer_ms <= 0.0 || (hi - lo) / timer_ms > opts.max_spread) return;

  res.detected = true;
  res.timer = static_cast<Micros>(std::llround(timer_ms * kMicrosPerMilli));
  // Attribute to the timer every gap within +-30% of the inferred period.
  for (double g : gaps_ms) {
    if (g >= 0.7 * timer_ms && g <= 1.3 * timer_ms) {
      ++res.gap_count;
      res.introduced_delay += static_cast<Micros>(std::llround(g * kMicrosPerMilli));
    }
  }
}

ConsecutiveLossResult detect_consecutive_losses(const SeriesRegistry& reg,
                                                TimeRange window,
                                                const ConsecutiveLossOptions& opts) {
  ConsecutiveLossResult res;
  detect_consecutive_losses_into(reg, window, opts, res);
  return res;
}

void detect_consecutive_losses_into(const SeriesRegistry& reg, TimeRange window,
                                    const ConsecutiveLossOptions& opts,
                                    ConsecutiveLossResult& res) {
  res.reset();
  if (!reg.has(series::kLossRecovery) || !reg.has(series::kRetransmission) ||
      window.empty()) {
    return;
  }
  const EventSeries& retx = reg.get(series::kRetransmission);
  // Each merged loss-recovery range is one episode; count the retransmitted
  // packets it contains.
  for (const TimeRange& episode : reg.get(series::kLossRecovery).ranges().ranges()) {
    if (!episode.overlaps(window)) continue;
    std::size_t packets = 0;
    for_each_event_in(retx, episode, [&](const Event& e) {
      packets += std::max<std::uint64_t>(e.packets, 1);
    });
    res.max_consecutive = std::max(res.max_consecutive, packets);
    if (packets >= opts.min_consecutive) {
      ++res.episodes;
      res.introduced_delay += episode.length();
    }
  }
  res.detected = res.episodes > 0;
}

namespace {

// Pauses in the victim connection: long stretches INSIDE the transfer where
// only keepalives flow and the sender is otherwise idle. The candidate unit
// is a KeepAliveOnly range (it spans the whole pause between two update
// packets); the periodic keepalives fragment SendAppLimited, so we require
// the sender-idle series to cover most of the range rather than all of it.
void pause_candidates_into(const ConnectionAnalysis& paused,
                           const PeerGroupBlockOptions& opts,
                           PeerGroupScratch& scratch) {
  RangeSet& out = scratch.candidates;
  out.clear();
  const SeriesRegistry& reg = paused.series();
  if (!reg.has(series::kSendAppLimited) || !reg.has(series::kKeepAliveOnly) ||
      paused.transfer.empty()) {
    return;
  }
  const RangeSet& idle = reg.get(series::kSendAppLimited).ranges();
  RangeSet& transfer_clip = scratch.transfer_clip;
  transfer_clip.clear();
  transfer_clip.insert(paused.transfer);
  for (const TimeRange& r : reg.get(series::kKeepAliveOnly).ranges().ranges()) {
    if (r.length() < opts.min_pause) continue;
    // Only pauses genuinely inside the table transfer count; the quiet tail
    // after the transfer completes is normal keepalive traffic.
    if (transfer_clip.size_within(r) < opts.min_pause) continue;
    if (2 * idle.size_within(r) >= r.length()) out.insert(r);
  }
}

}  // namespace

PeerGroupBlockResult detect_peer_group_pause(const ConnectionAnalysis& paused,
                                             const PeerGroupBlockOptions& opts) {
  PeerGroupScratch scratch;
  PeerGroupBlockResult res;
  detect_peer_group_pause_into(paused, opts, scratch, res);
  return res;
}

void detect_peer_group_pause_into(const ConnectionAnalysis& paused,
                                  const PeerGroupBlockOptions& opts,
                                  PeerGroupScratch& scratch,
                                  PeerGroupBlockResult& res) {
  res.reset();
  pause_candidates_into(paused, opts, scratch);
  for (const TimeRange& r : scratch.candidates.ranges()) {
    res.episodes.push_back(r);
    res.blocked_time += r.length();
  }
  res.detected = !res.episodes.empty();
}

PeerGroupBlockResult detect_peer_group_blocking(
    const ConnectionAnalysis& paused, const ConnectionAnalysis& failed_member,
    const PeerGroupBlockOptions& opts) {
  PeerGroupBlockResult res;
  const SeriesRegistry& other = failed_member.series();
  if (!other.has(series::kLossRecovery)) return res;
  // Quagga.SendAppLimited ∩ Vendor.Loss (§IV-B). The failed member's trouble
  // window runs from its first unrecovered loss to its session teardown, so
  // extend each of its loss ranges to the teardown if one follows.
  RangeSet member_trouble = other.get(series::kLossRecovery).ranges();
  if (other.has(series::kTeardown)) {
    member_trouble =
        member_trouble.set_union(other.get(series::kTeardown).ranges());
  }
  if (!member_trouble.empty()) {
    // Bridge the gap between loss onset and teardown: the member is in
    // trouble for the whole span.
    member_trouble = RangeSet({member_trouble.span()});
  }
  PeerGroupScratch scratch;
  pause_candidates_into(paused, opts, scratch);
  const RangeSet blocked =
      scratch.candidates.set_intersection(member_trouble);
  for (const TimeRange& r : blocked.ranges()) {
    if (r.length() < opts.min_pause) continue;
    res.episodes.push_back(r);
    res.blocked_time += r.length();
  }
  res.detected = !res.episodes.empty();
  return res;
}

RangeSet CaptureVoidResult::exclude_from(TimeRange window) const {
  RangeSet out;
  out.insert(window);
  // voids is already merged/disjoint, so one set-difference covers them all.
  return out.set_difference(RangeSet(voids));
}

CaptureVoidResult detect_capture_voids(const Connection& conn,
                                       const ConnectionProfile& profile) {
  CaptureVoidScratch scratch;
  CaptureVoidResult res;
  detect_capture_voids_into(conn, profile, scratch, res);
  return res;
}

void detect_capture_voids_into(const Connection& conn,
                               const ConnectionProfile& profile,
                               CaptureVoidScratch& scratch,
                               CaptureVoidResult& res) {
  res.reset();
  // Anchor stream offsets like the classifier does.
  std::optional<std::uint32_t> anchor;
  for (const DecodedPacket& pkt : conn.packets) {
    if (packet_dir(conn.key, pkt) != profile.data_dir) continue;
    if (pkt.tcp.flags.syn) {
      anchor = pkt.tcp.seq + 1;
      break;
    }
    if (pkt.has_payload()) {
      anchor = pkt.tcp.seq;
      break;
    }
  }
  if (!anchor) return;

  SeqUnwrapper data_unwrap(*anchor);
  SeqUnwrapper ack_unwrap(*anchor);
  RangeSet& captured = scratch.captured;  // stream byte ranges the sniffer saw
  captured.clear();
  RangeSet& voids = scratch.voids;  // void periods, merged as they are found
  voids.clear();
  Micros last_data_ts = conn.start_time();
  std::int64_t reported_up_to = 0;  // missing bytes already accounted

  for (const DecodedPacket& pkt : conn.packets) {
    if (packet_dir(conn.key, pkt) == profile.data_dir) {
      if (!pkt.has_payload()) continue;
      const std::int64_t b = data_unwrap.unwrap(pkt.tcp.seq);
      captured.insert(b, b + static_cast<std::int64_t>(pkt.payload_len));
      last_data_ts = pkt.ts;
    } else if (pkt.tcp.flags.ack && !pkt.tcp.flags.syn) {
      const std::int64_t off = ack_unwrap.unwrap(pkt.tcp.ack);
      if (off <= reported_up_to) continue;
      // The receiver has everything below `off`; whatever the sniffer did
      // not capture in [reported_up_to, off) was dropped by the capture,
      // not by the network (the network's losses are never acknowledged).
      const TimeRange acked{reported_up_to, off};
      const Micros missing = acked.length() - captured.size_within(acked);
      if (missing > 0) {
        res.missing_bytes += static_cast<std::uint64_t>(missing);
        voids.insert(last_data_ts, pkt.ts);
      }
      reported_up_to = off;
    }
  }
  // The RangeSet merged adjacent/overlapping void periods on insert.
  res.voids.assign(voids.ranges().begin(), voids.ranges().end());
  res.detected = res.missing_bytes > 0;
}

ZeroAckBugResult detect_zero_ack_bug(const SeriesRegistry& reg, TimeRange window) {
  ZeroAckBugResult res;
  detect_zero_ack_bug_into(reg, window, res);
  return res;
}

void detect_zero_ack_bug_into(const SeriesRegistry& reg, TimeRange window,
                              ZeroAckBugResult& res) {
  res.reset();
  if (!reg.has(series::kZeroAdvBndOut) || !reg.has(series::kUpstreamLoss)) {
    return;
  }
  // The contradiction: persistent upstream losses while the receiver window
  // is closed (i.e. while almost nothing should be in flight at all).
  const RangeSet& zero = reg.get(series::kZeroAdvBndOut).ranges();
  if (window.empty() || zero.empty()) return;
  for_each_event_in(reg.get(series::kUpstreamLoss), window, [&](const Event& e) {
    // The loss belongs to a zero-window episode if its recovery period
    // touches one.
    Micros overlap = 0;
    for (const TimeRange& z : zero.ranges()) {
      if (z.begin >= e.range.end) break;
      if (!z.overlaps(e.range)) continue;
      overlap += std::min(z.end, e.range.end) - std::max(z.begin, e.range.begin);
    }
    if (overlap > 0) {
      ++res.occurrences;
      res.overlap += overlap;
    }
  });
  res.detected = res.occurrences > 0;
}

}  // namespace tdat
