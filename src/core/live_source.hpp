// Live TraceSources for the always-on engine (DESIGN.md §15): inputs that
// have no end yet.
//
//   FollowSource      tails a growing pcap file, `tail -f` style: polls the
//                     path for appended bytes (PcapStream tail mode defers
//                     every truncation/resync decision until the bytes are
//                     final), detects rotation (new inode at the path, or
//                     the file shrinking under the reader — copytruncate),
//                     drains the rotated-away segment to its real end with
//                     batch semantics, and reopens the new file with a
//                     continuous global record index — the same ordering
//                     contract MultiFileSource gives rotated batch inputs.
//   RingBufferSource  the same tail-mode streaming over an in-memory
//                     RingBufferFeed, for tests and benches that append a
//                     capture image in arbitrary chunks (mid-record splits
//                     included) and must reproduce the batch byte stream
//                     exactly.
//
// Both implement the TraceSource live extension: next_raw_records()
// returning 0 is provisional while live() is true; poll_live() checks for
// new input; begin_drain() declares the input final.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/trace_source.hpp"

namespace tdat {

// Append-only byte buffer feeding a tail-mode PcapStream. Producer side:
// append() / close(); consumer side is the ByteFeed interface the stream
// pulls from. Internally a compacting vector (consumed bytes are dropped
// whenever the read cursor passes half the buffer), so memory stays bounded
// by the unconsumed backlog, not the capture length. Thread-safe: one
// producer and one consumer may run concurrently.
class RingBufferFeed final : public ByteFeed {
 public:
  void append(std::span<const std::uint8_t> bytes);
  void close();

  [[nodiscard]] std::size_t read(std::uint8_t* dst, std::size_t n) override;
  [[nodiscard]] std::size_t available() const override;
  [[nodiscard]] bool closed() const override;

 private:
  mutable std::mutex mu_;
  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;  // read cursor into buf_
  bool closed_ = false;
};

// TraceSource over a RingBufferFeed. The pcap global header may arrive in
// pieces: the stream is opened lazily once 24 bytes are buffered. A feed
// whose first 24 bytes are not a valid pcap header is a hard failure
// (failed()/error()), not something to wait out.
class RingBufferSource final : public TraceSource {
 public:
  explicit RingBufferSource(std::shared_ptr<RingBufferFeed> feed,
                            bool verify_checksums,
                            const IngestPolicy& policy = {});

  [[nodiscard]] bool next(DecodedPacket& out) override;
  [[nodiscard]] bool supports_raw_records() const override { return true; }
  [[nodiscard]] std::size_t next_raw_records(
      std::span<StreamRecord> out) override;
  [[nodiscard]] std::uint64_t bytes_ingested() const override;
  [[nodiscard]] std::uint64_t records_seen() const override;
  [[nodiscard]] IngestDiagnostics diagnostics() const override;

  [[nodiscard]] bool live() const override;
  [[nodiscard]] bool poll_live() override;
  void begin_drain() override;

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  [[nodiscard]] bool try_open();

  std::shared_ptr<RingBufferFeed> feed_;
  IngestPolicy policy_;
  bool verify_checksums_;
  std::optional<PcapStream> stream_;
  std::size_t index_ = 0;
  bool draining_ = false;
  bool ended_ = false;
  bool failed_ = false;
  std::string error_;
};

// Tails a growing (and possibly rotating) pcap file. Construction never
// fails: the path does not even have to exist yet — the source waits for a
// file with a complete global header to appear. Hard failures (a file that
// is there but is not a pcap) surface through failed()/error().
class FollowSource final : public TraceSource {
 public:
  FollowSource(std::string path, bool verify_checksums,
               const IngestPolicy& policy = {});

  // Resuming construction (checkpoint restore): the first segment opens
  // mid-file at `resume` — the stream continues as if it had itself read the
  // prefix, so bytes_ingested()/records_seen()/diagnostics() match an
  // uninterrupted follow. A failed resume open (capture no longer seekable
  // to the offset) is a hard failure surfaced via failed(), which the caller
  // turns into a full-replay fallback.
  FollowSource(std::string path, bool verify_checksums,
               const IngestPolicy& policy, const PcapStream::Resume& resume);

  [[nodiscard]] bool next(DecodedPacket& out) override;
  [[nodiscard]] bool supports_raw_records() const override { return true; }
  [[nodiscard]] std::size_t next_raw_records(
      std::span<StreamRecord> out) override;
  [[nodiscard]] std::uint64_t bytes_ingested() const override;
  [[nodiscard]] std::uint64_t records_seen() const override;
  [[nodiscard]] IngestDiagnostics diagnostics() const override;
  void collect_file_diagnostics(
      std::vector<FileIngestDiagnostics>& out) const override;

  [[nodiscard]] bool live() const override;
  [[nodiscard]] bool poll_live() override;
  void begin_drain() override;

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  // Capture files fully consumed so far (rotated-away segments).
  [[nodiscard]] std::size_t segments_completed() const {
    return past_files_.size();
  }

  // A checkpoint can only bind to a single capture file: once the follow has
  // rotated (or no stream is open yet) there is no one offset to resume at.
  [[nodiscard]] bool checkpointable() const {
    return stream_.has_value() && past_files_.empty() && !rotated_;
  }
  // Stream resume state to stamp into a checkpoint. Call between epochs
  // (never mid-read) and only while checkpointable(): bytes_read() then sits
  // exactly on the next unread record header.
  [[nodiscard]] PcapStream::Resume resume_state() const;

 private:
  // Opens the file currently at path_ if it exists with a complete global
  // header. Returns true once a stream is open.
  [[nodiscard]] bool try_open();
  // Folds the finished segment's accounting into the running totals and
  // closes it.
  void finalize_segment();

  std::string path_;
  IngestPolicy policy_;
  bool verify_checksums_;
  std::optional<PcapStream> stream_;
  // Identity (st_dev, st_ino) of the open segment, for rotation detection.
  std::uint64_t dev_ = 0;
  std::uint64_t ino_ = 0;
  bool have_id_ = false;
  bool rotated_ = false;   // current segment is final; reopen path_ after it
  bool draining_ = false;  // no more input anywhere: finish and stop
  bool ended_ = false;
  bool failed_ = false;
  std::string error_;
  // Accounting accumulated from rotated-away segments; the active stream's
  // numbers are added on top.
  IngestDiagnostics past_diag_;
  std::uint64_t past_bytes_ = 0;
  std::uint64_t past_records_ = 0;
  std::vector<FileIngestDiagnostics> past_files_;
  std::size_t index_ = 0;  // continuous global record index
  // Pending checkpoint-resume position for the first open; consumed by
  // try_open.
  std::optional<PcapStream::Resume> resume_;
};

}  // namespace tdat
