// Detectors for the known transport problems of §II, built on the event
// series exactly as §IV-B describes: BGP pacing-timer gaps (knee of the gap
// distribution), consecutive packet losses, peer-group blocking
// (cross-connection set intersection), and the zero-window-probe bug
// (ZeroAckBug := ZeroAdvBndOut ∩ UpstreamLoss).
#pragma once

#include <vector>

#include "core/analyzer.hpp"

namespace tdat {

// ---- BGP timer gaps (§II-B1, §IV-B, Fig. 17) ------------------------------
struct TimerGapOptions {
  // Plausible pacing-timer band; gaps outside are ignored.
  Micros min_gap = 10 * kMicrosPerMilli;
  Micros max_gap = 2 * kMicrosPerSec;
  std::size_t min_count = 8;      // need this many gaps to call it a timer
  double max_spread = 0.35;       // relative spread of the timer cluster
};

struct TimerGapResult {
  bool detected = false;
  Micros timer = 0;               // inferred timer period
  std::size_t gap_count = 0;      // gaps attributed to the timer
  Micros introduced_delay = 0;    // total time spent in timer gaps
  std::vector<double> sorted_gaps_ms;  // the Fig. 17 curve
};

[[nodiscard]] TimerGapResult detect_timer_gaps(const SeriesRegistry& reg,
                                               TimeRange window,
                                               const TimerGapOptions& opts = {});

// ---- consecutive losses (§II-B2, §IV-B) -----------------------------------
struct ConsecutiveLossOptions {
  // 8 back-to-back losses collapse cwnd and ssthresh to the floor given a
  // 64 KB window and 1400-byte MSS (the paper's conservative threshold).
  std::size_t min_consecutive = 8;
};

struct ConsecutiveLossResult {
  bool detected = false;
  std::size_t episodes = 0;
  std::size_t max_consecutive = 0;  // largest run of retransmissions
  Micros introduced_delay = 0;      // total length of qualifying episodes
};

[[nodiscard]] ConsecutiveLossResult detect_consecutive_losses(
    const SeriesRegistry& reg, TimeRange window,
    const ConsecutiveLossOptions& opts = {});

// ---- peer-group blocking (§II-B3, §IV-B, Fig. 9) --------------------------
struct PeerGroupBlockOptions {
  Micros min_pause = 30 * kMicrosPerSec;  // pathological pauses only
};

struct PeerGroupBlockResult {
  bool detected = false;
  Micros blocked_time = 0;
  std::vector<TimeRange> episodes;
};

// Single-connection screen: long sender-idle pauses during which only
// keepalives flow (the victim's signature).
[[nodiscard]] PeerGroupBlockResult detect_peer_group_pause(
    const ConnectionAnalysis& paused, const PeerGroupBlockOptions& opts = {});

// Cross-connection confirmation: the victim's pauses coincide with a fellow
// group member's loss/retransmission trouble —
//   victim.SendAppLimited ∩ member.LossRecovery.
[[nodiscard]] PeerGroupBlockResult detect_peer_group_blocking(
    const ConnectionAnalysis& paused, const ConnectionAnalysis& failed_member,
    const PeerGroupBlockOptions& opts = {});

// ---- capture voids (§II-A) -------------------------------------------------
// "tcpdump can sometimes drop packets and leaves void periods in the trace.
// We exclude those periods from the following analysis." A void betrays
// itself when the receiver acknowledges stream bytes the sniffer never
// captured.
struct CaptureVoidResult {
  bool detected = false;
  std::uint64_t missing_bytes = 0;   // acknowledged but never captured
  std::vector<TimeRange> voids;      // periods to exclude from analysis

  // Subtracts the voids from an analysis window.
  [[nodiscard]] RangeSet exclude_from(TimeRange window) const;
};

[[nodiscard]] CaptureVoidResult detect_capture_voids(const Connection& conn,
                                                     const ConnectionProfile& profile);

// ---- zero-window probe bug (§IV-B) ----------------------------------------
struct ZeroAckBugResult {
  bool detected = false;
  std::size_t occurrences = 0;  // upstream-loss events inside zero-window time
  Micros overlap = 0;
};

[[nodiscard]] ZeroAckBugResult detect_zero_ack_bug(const SeriesRegistry& reg,
                                                   TimeRange window);

}  // namespace tdat
