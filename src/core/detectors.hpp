// Detectors for the known transport problems of §II, built on the event
// series exactly as §IV-B describes: BGP pacing-timer gaps (knee of the gap
// distribution), consecutive packet losses, peer-group blocking
// (cross-connection set intersection), and the zero-window-probe bug
// (ZeroAckBug := ZeroAdvBndOut ∩ UpstreamLoss).
//
// Each per-connection detector comes in two forms: a convenience form that
// returns a fresh result, and a scratch-reusing `*_into` form used by the
// corresponding AnalysisPass (core/pass.hpp) — caller-provided scratch +
// caller-provided output, allocation-free once warm, matching the discipline
// of the rest of the analysis stage. Result types live in
// core/detector_results.hpp.
#pragma once

#include <vector>

#include "core/analyzer.hpp"
#include "core/detector_results.hpp"

namespace tdat {

// ---- BGP timer gaps (§II-B1, §IV-B, Fig. 17) ------------------------------
struct TimerGapOptions {
  // Plausible pacing-timer band; gaps outside are ignored.
  Micros min_gap = 10 * kMicrosPerMilli;
  Micros max_gap = 2 * kMicrosPerSec;
  std::size_t min_count = 8;      // need this many gaps to call it a timer
  double max_spread = 0.35;       // relative spread of the timer cluster
};

struct TimerGapScratch {
  std::vector<double> gaps_ms;
  std::vector<double> cluster;
};

[[nodiscard]] TimerGapResult detect_timer_gaps(const SeriesRegistry& reg,
                                               TimeRange window,
                                               const TimerGapOptions& opts = {});

void detect_timer_gaps_into(const SeriesRegistry& reg, TimeRange window,
                            const TimerGapOptions& opts,
                            TimerGapScratch& scratch, TimerGapResult& out);

// ---- consecutive losses (§II-B2, §IV-B) -----------------------------------
struct ConsecutiveLossOptions {
  // 8 back-to-back losses collapse cwnd and ssthresh to the floor given a
  // 64 KB window and 1400-byte MSS (the paper's conservative threshold).
  std::size_t min_consecutive = 8;
};

[[nodiscard]] ConsecutiveLossResult detect_consecutive_losses(
    const SeriesRegistry& reg, TimeRange window,
    const ConsecutiveLossOptions& opts = {});

void detect_consecutive_losses_into(const SeriesRegistry& reg, TimeRange window,
                                    const ConsecutiveLossOptions& opts,
                                    ConsecutiveLossResult& out);

// ---- peer-group blocking (§II-B3, §IV-B, Fig. 9) --------------------------
struct PeerGroupBlockOptions {
  Micros min_pause = 30 * kMicrosPerSec;  // pathological pauses only
};

struct PeerGroupScratch {
  RangeSet candidates;
  RangeSet transfer_clip;
};

// Single-connection screen: long sender-idle pauses during which only
// keepalives flow (the victim's signature).
[[nodiscard]] PeerGroupBlockResult detect_peer_group_pause(
    const ConnectionAnalysis& paused, const PeerGroupBlockOptions& opts = {});

void detect_peer_group_pause_into(const ConnectionAnalysis& paused,
                                  const PeerGroupBlockOptions& opts,
                                  PeerGroupScratch& scratch,
                                  PeerGroupBlockResult& out);

// Cross-connection confirmation: the victim's pauses coincide with a fellow
// group member's loss/retransmission trouble —
//   victim.SendAppLimited ∩ member.LossRecovery.
// Inherently a whole-trace operation, so it stays outside the per-connection
// pass pipeline (the experiments layer runs it over candidate pairs).
[[nodiscard]] PeerGroupBlockResult detect_peer_group_blocking(
    const ConnectionAnalysis& paused, const ConnectionAnalysis& failed_member,
    const PeerGroupBlockOptions& opts = {});

// ---- capture voids (§II-A) -------------------------------------------------
// "tcpdump can sometimes drop packets and leaves void periods in the trace.
// We exclude those periods from the following analysis." A void betrays
// itself when the receiver acknowledges stream bytes the sniffer never
// captured.
struct CaptureVoidScratch {
  RangeSet captured;
  RangeSet voids;
};

[[nodiscard]] CaptureVoidResult detect_capture_voids(const Connection& conn,
                                                     const ConnectionProfile& profile);

void detect_capture_voids_into(const Connection& conn,
                               const ConnectionProfile& profile,
                               CaptureVoidScratch& scratch,
                               CaptureVoidResult& out);

// ---- zero-window probe bug (§IV-B) ----------------------------------------
[[nodiscard]] ZeroAckBugResult detect_zero_ack_bug(const SeriesRegistry& reg,
                                                   TimeRange window);

void detect_zero_ack_bug_into(const SeriesRegistry& reg, TimeRange window,
                              ZeroAckBugResult& out);

}  // namespace tdat
