// Output step of T-DAT (§III-D): maps the conclusive series onto the eight
// delay factors, computes the raw 8-vector of delay ratios over the analysis
// period, folds factors into the three top-level groups (sender / receiver /
// network) via set union, and flags "major" groups above the threshold.
#pragma once

#include <array>

#include "core/options.hpp"
#include "core/series_names.hpp"
#include "timerange/event_series.hpp"

namespace tdat {

struct DelayReport {
  TimeRange window;  // the analysis period (table transfer duration)

  // Raw vector V = (r_1 .. r_8): fraction of the period each factor covers.
  std::array<double, kFactorCount> factor_ratio{};
  std::array<Micros, kFactorCount> factor_delay{};  // absolute covered time

  // G = (Rs, Rr, Rn): per-group union coverage.
  std::array<double, kGroupCount> group_ratio{};
  std::array<Micros, kGroupCount> group_delay{};
  std::array<bool, kGroupCount> group_major{};
  // Largest factor within each group (meaningful when group_delay > 0).
  std::array<Factor, kGroupCount> dominant_factor{};

  [[nodiscard]] bool has_major() const {
    return group_major[0] || group_major[1] || group_major[2];
  }
  [[nodiscard]] double ratio(Factor f) const {
    return factor_ratio[static_cast<std::size_t>(f)];
  }
  [[nodiscard]] double ratio(FactorGroup g) const {
    return group_ratio[static_cast<std::size_t>(g)];
  }
  [[nodiscard]] bool major(FactorGroup g) const {
    return group_major[static_cast<std::size_t>(g)];
  }
  [[nodiscard]] Factor dominant(FactorGroup g) const {
    return dominant_factor[static_cast<std::size_t>(g)];
  }
};

// Pooled working sets for classify_delay. DelayReport itself is flat arrays,
// so with a warm scratch the classification allocates nothing.
struct DelayScratch {
  std::array<RangeSet, kFactorCount> sets;
  RangeSet clip;
  RangeSet merged;
  RangeSet tmp;  // set-algebra swap buffer
};

// The conclusive series backing each factor.
[[nodiscard]] RangeSet factor_ranges(const SeriesRegistry& reg, Factor f);

// In-place form: fills `out` (must not alias `tmp`).
void factor_ranges_into(const SeriesRegistry& reg, Factor f, RangeSet& tmp,
                        RangeSet& out);

[[nodiscard]] DelayReport classify_delay(const SeriesRegistry& reg,
                                         TimeRange window,
                                         const AnalyzerOptions& opts);

// Scratch-reusing form.
[[nodiscard]] DelayReport classify_delay(const SeriesRegistry& reg,
                                         TimeRange window,
                                         const AnalyzerOptions& opts,
                                         DelayScratch& scratch);

// Split form, used by the factor passes (core/pass.hpp): begin resets the
// report and the per-factor working sets and clips to the window; each
// classify_factor fills one factor's set/ratio; finalize folds the filled
// sets into the three groups. classify_delay == begin + 8x classify_factor +
// finalize, so running every factor pass reproduces it bit for bit — and a
// factor whose pass is disabled simply contributes an empty set.
void begin_delay_classification(DelayReport& rep, TimeRange window,
                                DelayScratch& scratch);
void classify_factor(DelayReport& rep, const SeriesRegistry& reg, Factor f,
                     DelayScratch& scratch);
void finalize_delay_groups(DelayReport& rep, const AnalyzerOptions& opts,
                           DelayScratch& scratch);

}  // namespace tdat
