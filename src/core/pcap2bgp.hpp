// pcap2bgp (§II-A, Table VI): reconstructs the TCP data stream of a BGP
// session from a raw packet trace — handling out-of-order delivery and
// retransmissions — then extracts the individual BGP messages and can store
// them in MRT format. This is how table transfers are delimited for vendor
// collectors that keep no BGP archive of their own.
#pragma once

#include "bgp/mrt.hpp"
#include "bgp/msg_stream.hpp"
#include "tcp/connection.hpp"
#include "tcp/profile.hpp"
#include "tcp/reassembler.hpp"

#include <utility>

namespace tdat {

struct Pcap2BgpResult {
  std::vector<TimedBgpMessage> messages;  // data-direction messages, timed by
                                          // when the stream completed them
  std::uint64_t skipped_bytes = 0;        // framing resync losses
  std::uint64_t parse_errors = 0;
  std::uint64_t frame_resyncs = 0;        // marker hunts after lost framing
};

// Reusable working state for extract_bgp_messages_into. A warm scratch keeps
// the reassembler's buffers, the framing stash, and the ACK-step table
// capacity across connections.
struct ExtractScratch {
  Reassembler reasm;
  BgpMessageStream stream;
  std::vector<std::pair<std::int64_t, Micros>> ack_steps;  // (offset, ts)
};

// Extracts the BGP messages carried in `data_dir` of the connection.
[[nodiscard]] Pcap2BgpResult extract_bgp_messages(const Connection& conn,
                                                  Dir data_dir);

// Scratch-reusing form: clears and refills `out` (message capacity is kept;
// parsed UPDATE bodies still allocate — they are retained output).
void extract_bgp_messages_into(const Connection& conn, Dir data_dir,
                               ExtractScratch& scratch, Pcap2BgpResult& out);

// Converts extracted messages to MRT BGP4MP records. The peer AS is taken
// from the first OPEN message seen (0 if none).
[[nodiscard]] std::vector<MrtRecord> to_mrt_records(
    const Connection& conn, Dir data_dir,
    const std::vector<TimedBgpMessage>& messages);

}  // namespace tdat
