// Result types of the §II problem detectors, split from detectors.hpp so the
// analyzer can retain them per connection (ConnectionAnalysis::findings)
// without a circular include: detectors.hpp needs ConnectionAnalysis for the
// cross-connection APIs, while the analyzer only needs these flat results.
//
// All results follow the reuse discipline of the analysis stage: reset()
// zeroes scalars and clears vectors without freeing, so a detector pass can
// rebuild a retained result allocation-free once its buffers are warm.
#pragma once

#include <cstdint>
#include <vector>

#include "timerange/range_set.hpp"

namespace tdat {

// ---- BGP timer gaps (§II-B1, §IV-B, Fig. 17) ------------------------------
struct TimerGapResult {
  bool detected = false;
  Micros timer = 0;               // inferred timer period
  std::size_t gap_count = 0;      // gaps attributed to the timer
  Micros introduced_delay = 0;    // total time spent in timer gaps
  std::vector<double> sorted_gaps_ms;  // the Fig. 17 curve

  void reset() {
    detected = false;
    timer = 0;
    gap_count = 0;
    introduced_delay = 0;
    sorted_gaps_ms.clear();
  }
};

// ---- consecutive losses (§II-B2, §IV-B) -----------------------------------
struct ConsecutiveLossResult {
  bool detected = false;
  std::size_t episodes = 0;
  std::size_t max_consecutive = 0;  // largest run of retransmissions
  Micros introduced_delay = 0;      // total length of qualifying episodes

  void reset() { *this = ConsecutiveLossResult{}; }
};

// ---- peer-group blocking (§II-B3, §IV-B, Fig. 9) --------------------------
struct PeerGroupBlockResult {
  bool detected = false;
  Micros blocked_time = 0;
  std::vector<TimeRange> episodes;

  void reset() {
    detected = false;
    blocked_time = 0;
    episodes.clear();
  }
};

// ---- capture voids (§II-A) -------------------------------------------------
struct CaptureVoidResult {
  bool detected = false;
  std::uint64_t missing_bytes = 0;   // acknowledged but never captured
  std::vector<TimeRange> voids;      // periods to exclude from analysis

  // Subtracts the voids from an analysis window.
  [[nodiscard]] RangeSet exclude_from(TimeRange window) const;

  void reset() {
    detected = false;
    missing_bytes = 0;
    voids.clear();
  }
};

// ---- zero-window probe bug (§IV-B) ----------------------------------------
struct ZeroAckBugResult {
  bool detected = false;
  std::size_t occurrences = 0;  // upstream-loss events inside zero-window time
  Micros overlap = 0;

  void reset() { *this = ZeroAckBugResult{}; }
};

// Everything the per-connection detector passes retain. Lives inside
// ConnectionAnalysis; a disabled pass leaves its slot in the reset state, so
// stale findings never leak across reused outputs.
struct DetectorFindings {
  TimerGapResult timer;
  ConsecutiveLossResult losses;
  ZeroAckBugResult zero_ack;
  PeerGroupBlockResult pause;
  CaptureVoidResult voids;

  void reset() {
    timer.reset();
    losses.reset();
    zero_ack.reset();
    pause.reset();
    voids.reset();
  }
};

}  // namespace tdat
