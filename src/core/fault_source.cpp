#include "core/fault_source.hpp"

#include <memory>
#include <utility>

namespace tdat {

bool FaultInjectingSource::pull(DecodedPacket& out) {
  if (!queue_.empty()) {
    out = std::move(queue_.front());
    queue_.erase(queue_.begin());
    return true;
  }
  return inner_->next(out);
}

void FaultInjectingSource::maybe_garble(DecodedPacket& pkt) {
  if (!pkt.has_payload() || !rng_.chance(plan_.garbage_rate)) return;
  // The frame bytes are immutable views into shared arenas, so garbling
  // requires a private copy of this one frame.
  auto owned = std::make_shared<std::vector<std::uint8_t>>(pkt.frame.begin(),
                                                           pkt.frame.end());
  for (std::size_t i = pkt.payload_offset; i < owned->size(); ++i) {
    (*owned)[i] = static_cast<std::uint8_t>(rng_.uniform(0, 255));
  }
  pkt.frame = std::span<const std::uint8_t>(owned->data(), owned->size());
  pkt.backing = std::move(owned);
  ++injected_;
}

bool FaultInjectingSource::next(DecodedPacket& out) {
  for (;;) {
    if (!pull(out)) return false;
    if (rng_.chance(plan_.drop_rate)) {
      ++injected_;
      continue;
    }
    if (rng_.chance(plan_.ts_jump_rate)) {
      out.ts += plan_.ts_jump;
      ++injected_;
    }
    maybe_garble(out);
    if (rng_.chance(plan_.dup_rate)) {
      queue_.push_back(out);
      ++injected_;
    }
    if (rng_.chance(plan_.reorder_rate)) {
      DecodedPacket successor;
      if (pull(successor)) {
        queue_.insert(queue_.begin(), std::move(out));
        out = std::move(successor);
        ++injected_;
      }
    }
    return true;
  }
}

}  // namespace tdat
