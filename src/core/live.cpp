#include "core/live.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "pcap/mmap_file.hpp"
#include "pcap/record_runs.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace tdat {
namespace {

// Raw records pulled from the source per inner ingest step; matches the
// batch pipeline's decode granularity (4 decode batches).
constexpr std::size_t kLiveIngestBatch = 256;

// On-disk pcap record header size, for rec_offset/rec_len bookkeeping.
constexpr std::size_t kRecordHeaderLen = 16;

// Packets always retained at the front of a windowed connection: the
// handshake plus the first data packets, which anchor the RTT/MSS profile
// and the data direction. Without them a re-analysis of an evicted
// connection would lose the profile entirely instead of approximating it.
constexpr std::size_t kEvictKeepHead = 8;

Micros wall_now() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t live_jobs(std::size_t requested, std::size_t connections) {
  std::size_t jobs = requested == 0 ? default_jobs() : requested;
  if (connections > 0 && jobs > connections) jobs = connections;
  return jobs > 0 ? jobs : 1;
}

// Coalesces a connection's retained packets into capture offset runs: a run
// extends while the next packet's record starts exactly where the previous
// one ended AND its global index is the successor — i.e. no other record
// (another connection's packet, a non-TCP record, a decode failure) sits
// between them in the file. False when any packet lacks a file position
// (in-memory source), which makes the connection uncheckpointable.
bool append_packet_runs(const std::vector<DecodedPacket>& pkts,
                        std::vector<CheckpointRun>& out) {
  std::uint64_t end_offset = 0;
  std::uint64_t next_index = 0;
  for (const DecodedPacket& pkt : pkts) {
    if (pkt.rec_len == 0) return false;
    if (!out.empty() && pkt.rec_offset == end_offset &&
        pkt.index == next_index) {
      ++out.back().count;
    } else {
      out.push_back({pkt.rec_offset, 1, pkt.index});
    }
    end_offset = pkt.rec_offset + pkt.rec_len;
    next_index = pkt.index + 1;
  }
  return true;
}

}  // namespace

LiveEngine::LiveEngine(TraceSource& source, LiveOptions opts)
    : source_(source), opts_(opts) {}

void LiveEngine::ingest_packet(DecodedPacket pkt) {
  const Micros ts = pkt.ts;
  const std::size_t i = demux_.add_indexed(std::move(pkt));
  if (i >= results_.size()) {
    results_.resize(i + 1);
    states_.resize(i + 1);
    ++stats_.connections_total;
  }
  ConnState& st = states_[i];
  st.last_ts = ts;
  if (ts > now_) now_ = ts;
  if (!st.dirty) {
    st.dirty = true;
    dirty_.push_back(static_cast<std::uint32_t>(i));
  }
  ++stats_.packets;
}

std::size_t LiveEngine::run_epoch() {
  const Micros t0 = wall_now();
  dirty_.clear();
  std::size_t total = 0;
  const std::size_t budget = std::max<std::size_t>(opts_.epoch_batch_records, 1);
  if (source_.supports_raw_records()) {
    record_buf_.resize(kLiveIngestBatch);
    while (total < budget) {
      const std::size_t want = std::min(kLiveIngestBatch, budget - total);
      const std::size_t n =
          source_.next_raw_records(std::span(record_buf_).first(want));
      if (n == 0) break;
      const std::span<const StreamRecord> recs(record_buf_.data(), n);
      std::size_t off = 0;
      while (off < recs.size()) {
        packet_buf_.clear();
        off += decode_records(recs.subspan(off), next_index_ + off,
                              opts_.analyzer.verify_checksums, decode_scratch_,
                              packet_buf_);
        for (DecodedPacket& pkt : packet_buf_) {
          // Remember where in the capture this packet's record lives, so a
          // checkpoint can name retained packets as (offset, count) runs
          // instead of serializing their bytes.
          const StreamRecord& rec = recs[pkt.index - next_index_];
          pkt.rec_offset = rec.file_offset;
          pkt.rec_len =
              static_cast<std::uint32_t>(kRecordHeaderLen + rec.data.size());
          ingest_packet(std::move(pkt));
        }
      }
      next_index_ += n;
      total += n;
    }
  } else {
    // Pre-decoded sources (tests): one record per packet.
    DecodedPacket pkt;
    while (total < budget && source_.next(pkt)) {
      ingest_packet(std::move(pkt));
      ++next_index_;
      ++total;
    }
  }
  const Micros t1 = wall_now();
  ingest_wall_ += t1 - t0;

  analyze_dirty();
  analyze_wall_ += wall_now() - t1;

  evict_window();
  gc_idle();

  if (total > 0) {
    stats_.records += total;
    ++stats_.epochs;
  }
  stats_.connections_active =
      static_cast<std::uint64_t>(results_.size() - retired_);
  stats_.newest_ts = now_;
  metrics().gauge("live.connections_active")
      .set(static_cast<std::int64_t>(stats_.connections_active));
  total_wall_ += wall_now() - t0;
  return total;
}

void LiveEngine::analyze_dirty() {
  if (dirty_.empty()) return;
  std::vector<Connection>& conns = demux_.connections();
  const std::size_t jobs = live_jobs(opts_.analyzer.jobs, dirty_.size());
  TDAT_TRACE_SPAN("live.analyze", "live", "dirty",
                  static_cast<std::int64_t>(dirty_.size()));
  parallel_for(dirty_.size(), jobs, [&](std::size_t di) {
    thread_local AnalysisScratch scratch;
    const std::size_t i = dirty_[di];
    // Same quarantine contract as the batch analysis stage: a connection
    // whose analysis throws is isolated in place, never the whole daemon.
    try {
      analyze_connection(conns[i], opts_.analyzer, scratch, results_[i]);
    } catch (const std::exception& e) {
      TDAT_LOG_WARN("live: connection %s quarantined: %s",
                    conns[i].key.to_string().c_str(), e.what());
      results_[i] = ConnectionAnalysis{};
      results_[i].key = conns[i].key;
      results_[i].quarantine_reason = "analysis failed with an exception";
    } catch (...) {
      results_[i] = ConnectionAnalysis{};
      results_[i].key = conns[i].key;
      results_[i].quarantine_reason = "analysis failed";
    }
    results_[i].conn_index = i;
  });
  // Location inference reads the packet list, which eviction may trim later:
  // freeze the estimate while the evidence is at its freshest.
  for (const std::uint32_t i : dirty_) {
    states_[i].where = infer_sniffer_location(conns[i], results_[i].profile);
    states_[i].dirty = false;
  }
}

void LiveEngine::evict_window() {
  if (opts_.window <= 0 || now_ < 0) return;
  const Micros horizon = now_ - opts_.window;
  std::vector<Connection>& conns = demux_.connections();
  std::uint64_t evicted = 0;
  for (std::size_t i = 0; i < conns.size(); ++i) {
    if (states_[i].retired) continue;
    std::vector<DecodedPacket>& pkts = conns[i].packets;
    if (pkts.size() <= kEvictKeepHead + 1) continue;
    const std::size_t last = pkts.size() - 1;  // newest packet always stays
    std::size_t cut = kEvictKeepHead;
    while (cut < last && pkts[cut].ts < horizon) ++cut;
    if (cut > kEvictKeepHead) {
      pkts.erase(pkts.begin() + static_cast<std::ptrdiff_t>(kEvictKeepHead),
                 pkts.begin() + static_cast<std::ptrdiff_t>(cut));
      evicted += cut - kEvictKeepHead;
    }
  }
  if (evicted > 0) {
    stats_.packets_evicted += evicted;
    metrics().counter("live.packets_evicted").inc(evicted);
  }
}

void LiveEngine::gc_idle() {
  if (opts_.idle_gc <= 0 || now_ < 0) return;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].retired || states_[i].last_ts < 0) continue;
    if (states_[i].last_ts + opts_.idle_gc <= now_) retire(i);
  }
}

void LiveEngine::retire(std::size_t i) {
  // Free the slot first: a later packet on the same 4-tuple must open a
  // brand-new connection instead of reviving this one.
  demux_.forget(i);
  Connection& conn = demux_.connections()[i];
  // Stash the retained packets' capture positions before freeing them, so a
  // checkpoint taken after retirement can still name this connection's
  // evidence. Best-effort: an in-memory source yields no positions, and the
  // checkpoint path reports that when (and only when) a checkpoint is asked
  // for.
  states_[i].retired_runs.clear();
  if (!append_packet_runs(conn.packets, states_[i].retired_runs)) {
    // No file positions (in-memory source): leave the stash empty, which the
    // checkpoint path reports as uncheckpointable — a connection always has
    // at least one packet at retirement, so empty means invalid.
    states_[i].retired_runs.clear();
  }
  conn.packets.clear();
  conn.packets.shrink_to_fit();
  ConnectionAnalysis& a = results_[i];
  a.bundle = SeriesBundle{};
  // Keep the OPENs: peer-AS attribution in snapshots survives GC, while the
  // UPDATE bodies — the bulk of retained message memory — are released.
  std::erase_if(a.messages, [](const TimedBgpMessage& m) {
    return m.msg.type() != BgpType::kOpen;
  });
  a.messages.shrink_to_fit();
  states_[i].retired = true;
  ++retired_;
  ++stats_.connections_gc;
  metrics().counter("live.connections_gc").inc();
  TDAT_LOG_INFO("live: retired idle connection %s", a.key.to_string().c_str());
}

void LiveEngine::drain() {
  source_.begin_drain();
  while (run_epoch() > 0) {
  }
}

std::string LiveEngine::render_snapshot(ReportFormat format,
                                        const ReportRenderOptions& ropts) {
  std::vector<Connection>& conns = demux_.connections();
  ReportModel model;
  model.entries.reserve(results_.size());
  for (std::size_t i = 0; i < results_.size(); ++i) {
    ReportEntry entry;
    entry.conn = &conns[i];
    entry.analysis = &results_[i];
    entry.where = states_[i].where;
    model.entries.push_back(entry);
    if (results_[i].quarantined()) ++model.quarantined;
  }
  model.ingest = source_.diagnostics();
  std::vector<FileIngestDiagnostics> files;
  source_.collect_file_diagnostics(files);
  for (FileIngestDiagnostics& f : files) {
    if (f.diag.has_errors()) model.files.push_back(std::move(f));
  }
  return render_report(model, format, ropts);
}

std::size_t LiveEngine::retained_packets() const {
  std::size_t n = 0;
  for (const Connection& conn : demux_.connections()) n += conn.packets.size();
  return n;
}

Result<Unit> LiveEngine::checkpoint_state(LiveCheckpoint& out) const {
  out.next_index = static_cast<std::uint64_t>(next_index_);
  out.now_ts = now_;

  out.config.location = static_cast<std::uint8_t>(opts_.analyzer.location);
  out.config.verify_checksums = opts_.analyzer.verify_checksums;
  out.config.strict = opts_.analyzer.ingest.strict;
  out.config.enable_ack_shift = opts_.analyzer.enable_ack_shift;
  out.config.pass_bits = opts_.analyzer.passes.bits;
  out.config.max_errors =
      static_cast<std::uint64_t>(opts_.analyzer.ingest.max_errors);
  out.config.window = opts_.window;
  out.config.idle_gc = opts_.idle_gc;

  out.epochs = stats_.epochs;
  out.records = stats_.records;
  out.packets = stats_.packets;
  out.connections_total = stats_.connections_total;
  out.connections_gc = stats_.connections_gc;
  out.packets_evicted = stats_.packets_evicted;

  const std::vector<Connection>& conns = demux_.connections();
  out.conns.clear();
  out.conns.reserve(conns.size());
  for (std::size_t i = 0; i < conns.size(); ++i) {
    CheckpointConn conn;
    conn.retired = states_[i].retired;
    if (conn.retired) {
      conn.runs = states_[i].retired_runs;
    } else if (!append_packet_runs(conns[i].packets, conn.runs)) {
      return Err<Unit>("checkpoint: connection " +
                       conns[i].key.to_string() +
                       " has packets with no capture-file backing");
    }
    if (conn.runs.empty()) {
      return Err<Unit>("checkpoint: connection " + conns[i].key.to_string() +
                       " has no capture-backed packets");
    }
    out.conns.push_back(std::move(conn));
  }
  return Unit{};
}

Result<Unit> LiveEngine::restore_state(const LiveCheckpoint& ckpt,
                                       const std::string& capture_path) {
  if (!results_.empty() || next_index_ != 0) {
    return Err<Unit>("restore: engine is not fresh");
  }
  auto mapped = MappedFile::map(capture_path);
  if (!mapped.ok()) {
    return Err<Unit>("restore: cannot map capture: " + mapped.error());
  }
  MappedFile& m = mapped.value();
  const std::shared_ptr<const void> pin = m.share();
  const std::span<const std::uint8_t> image = m.bytes();

  // Replay each connection's runs in connection order. The demux key->conn
  // contract makes this exact: two connections sharing a 4-tuple never
  // interleave in time (the second is born from a fresh-SYN remap or a
  // post-retirement packet), so replaying whole connections in creation
  // order reproduces slot evolution, the per-connection timestamp clamp,
  // and connection indices byte for byte.
  std::vector<StreamRecord> recs;
  std::vector<DecodedPacket> pkts;
  for (std::size_t ci = 0; ci < ckpt.conns.size(); ++ci) {
    const CheckpointConn& conn = ckpt.conns[ci];
    if (conn.runs.empty()) {
      return Err<Unit>("restore: connection " + std::to_string(ci) +
                       " has no runs");
    }
    std::vector<RecordRun> raw_runs;
    raw_runs.reserve(conn.runs.size());
    for (const CheckpointRun& run : conn.runs) {
      raw_runs.push_back({run.offset, run.count});
    }
    auto reader = RecordRunReader::open(pin, image, std::move(raw_runs));
    if (!reader.ok()) return Err<Unit>("restore: " + reader.error());
    RecordRunReader& rr = reader.value();

    for (const CheckpointRun& run : conn.runs) {
      std::uint64_t replayed = 0;
      while (replayed < run.count) {
        const std::uint64_t batch =
            std::min<std::uint64_t>(run.count - replayed, kLiveIngestBatch);
        recs.clear();
        for (std::uint64_t k = 0; k < batch; ++k) {
          StreamRecord rec;
          if (!rr.next(rec)) {
            return Err<Unit>(rr.failed()
                                 ? "restore: " + rr.error()
                                 : "restore: run ended before its record "
                                   "count (capture changed?)");
          }
          recs.push_back(std::move(rec));
        }
        const std::uint64_t base_index = run.first_index + replayed;
        std::size_t off = 0;
        std::uint64_t produced = 0;
        while (off < recs.size()) {
          pkts.clear();
          off += decode_records(
              std::span<const StreamRecord>(recs).subspan(off),
              static_cast<std::size_t>(base_index) + off,
              opts_.analyzer.verify_checksums, decode_scratch_, pkts);
          for (DecodedPacket& pkt : pkts) {
            // Every record in a run decoded to a packet of this connection
            // when the checkpoint was written; decode is deterministic, so
            // anything else means the capture changed underneath.
            if (pkt.index != base_index + produced) {
              return Err<Unit>("restore: replay produced unexpected record "
                               "index (capture changed?)");
            }
            const StreamRecord& rec = recs[pkt.index - base_index];
            pkt.rec_offset = rec.file_offset;
            pkt.rec_len = static_cast<std::uint32_t>(kRecordHeaderLen +
                                                     rec.data.size());
            ingest_packet(std::move(pkt));
            ++produced;
          }
        }
        if (produced != batch) {
          return Err<Unit>("restore: replay dropped records of a "
                           "checkpointed run (capture changed?)");
        }
        replayed += batch;
      }
    }
    // The first packet of connection ci must have opened connection ci —
    // anything else means replay diverged from the original demux walk.
    if (demux_.connections().size() != ci + 1) {
      return Err<Unit>("restore: connection replay diverged from the "
                       "checkpointed demux order");
    }
    // Retired connections gave their slot back before any same-key successor
    // was born; reproduce that before the next connection replays.
    if (conn.retired) demux_.forget(ci);
  }

  // One analysis pass over everything (analyze_connection is pure, so this
  // equals the incremental analyses the uninterrupted run performed), then
  // re-trim the retired connections exactly as retire() does — without
  // touching counters, which are restored from the checkpoint below.
  analyze_dirty();
  for (std::size_t ci = 0; ci < ckpt.conns.size(); ++ci) {
    if (!ckpt.conns[ci].retired) continue;
    Connection& conn = demux_.connections()[ci];
    conn.packets.clear();
    conn.packets.shrink_to_fit();
    ConnectionAnalysis& a = results_[ci];
    a.bundle = SeriesBundle{};
    std::erase_if(a.messages, [](const TimedBgpMessage& msg) {
      return msg.msg.type() != BgpType::kOpen;
    });
    a.messages.shrink_to_fit();
    states_[ci].retired = true;
    states_[ci].retired_runs = ckpt.conns[ci].runs;
    ++retired_;
  }

  next_index_ = static_cast<std::size_t>(ckpt.next_index);
  now_ = ckpt.now_ts;
  stats_.epochs = ckpt.epochs;
  stats_.records = ckpt.records;
  stats_.packets = ckpt.packets;
  stats_.connections_total = ckpt.connections_total;
  stats_.connections_gc = ckpt.connections_gc;
  stats_.packets_evicted = ckpt.packets_evicted;
  stats_.connections_active =
      static_cast<std::uint64_t>(results_.size() - retired_);
  stats_.newest_ts = now_;
  metrics().gauge("live.connections_active")
      .set(static_cast<std::int64_t>(stats_.connections_active));
  return Unit{};
}

PipelineStats LiveEngine::pipeline_stats() const {
  PipelineStats stats;
  stats.bytes_ingested = source_.bytes_ingested();
  stats.records = source_.records_seen();
  stats.packets = stats_.packets;
  stats.connections = results_.size();
  for (const ConnectionAnalysis& a : results_) {
    if (a.quarantined()) ++stats.quarantined;
  }
  stats.ingest = source_.diagnostics();
  stats.jobs = live_jobs(opts_.analyzer.jobs, results_.size());
  stats.ingest_wall = ingest_wall_;
  stats.analyze_wall = analyze_wall_;
  stats.total_wall = total_wall_;
  return stats;
}

}  // namespace tdat
