#include "core/live.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace tdat {
namespace {

// Raw records pulled from the source per inner ingest step; matches the
// batch pipeline's decode granularity (4 decode batches).
constexpr std::size_t kLiveIngestBatch = 256;

// Packets always retained at the front of a windowed connection: the
// handshake plus the first data packets, which anchor the RTT/MSS profile
// and the data direction. Without them a re-analysis of an evicted
// connection would lose the profile entirely instead of approximating it.
constexpr std::size_t kEvictKeepHead = 8;

Micros wall_now() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t live_jobs(std::size_t requested, std::size_t connections) {
  std::size_t jobs = requested == 0 ? default_jobs() : requested;
  if (connections > 0 && jobs > connections) jobs = connections;
  return jobs > 0 ? jobs : 1;
}

}  // namespace

LiveEngine::LiveEngine(TraceSource& source, LiveOptions opts)
    : source_(source), opts_(opts) {}

void LiveEngine::ingest_packet(DecodedPacket pkt) {
  const Micros ts = pkt.ts;
  const std::size_t i = demux_.add_indexed(std::move(pkt));
  if (i >= results_.size()) {
    results_.resize(i + 1);
    states_.resize(i + 1);
    ++stats_.connections_total;
  }
  ConnState& st = states_[i];
  st.last_ts = ts;
  if (ts > now_) now_ = ts;
  if (!st.dirty) {
    st.dirty = true;
    dirty_.push_back(static_cast<std::uint32_t>(i));
  }
  ++stats_.packets;
}

std::size_t LiveEngine::run_epoch() {
  const Micros t0 = wall_now();
  dirty_.clear();
  std::size_t total = 0;
  const std::size_t budget = std::max<std::size_t>(opts_.epoch_batch_records, 1);
  if (source_.supports_raw_records()) {
    record_buf_.resize(kLiveIngestBatch);
    while (total < budget) {
      const std::size_t want = std::min(kLiveIngestBatch, budget - total);
      const std::size_t n =
          source_.next_raw_records(std::span(record_buf_).first(want));
      if (n == 0) break;
      const std::span<const StreamRecord> recs(record_buf_.data(), n);
      std::size_t off = 0;
      while (off < recs.size()) {
        packet_buf_.clear();
        off += decode_records(recs.subspan(off), next_index_ + off,
                              opts_.analyzer.verify_checksums, decode_scratch_,
                              packet_buf_);
        for (DecodedPacket& pkt : packet_buf_) ingest_packet(std::move(pkt));
      }
      next_index_ += n;
      total += n;
    }
  } else {
    // Pre-decoded sources (tests): one record per packet.
    DecodedPacket pkt;
    while (total < budget && source_.next(pkt)) {
      ingest_packet(std::move(pkt));
      ++next_index_;
      ++total;
    }
  }
  const Micros t1 = wall_now();
  ingest_wall_ += t1 - t0;

  analyze_dirty();
  analyze_wall_ += wall_now() - t1;

  evict_window();
  gc_idle();

  if (total > 0) {
    stats_.records += total;
    ++stats_.epochs;
  }
  stats_.connections_active =
      static_cast<std::uint64_t>(results_.size() - retired_);
  stats_.newest_ts = now_;
  metrics().gauge("live.connections_active")
      .set(static_cast<std::int64_t>(stats_.connections_active));
  total_wall_ += wall_now() - t0;
  return total;
}

void LiveEngine::analyze_dirty() {
  if (dirty_.empty()) return;
  std::vector<Connection>& conns = demux_.connections();
  const std::size_t jobs = live_jobs(opts_.analyzer.jobs, dirty_.size());
  TDAT_TRACE_SPAN("live.analyze", "live", "dirty",
                  static_cast<std::int64_t>(dirty_.size()));
  parallel_for(dirty_.size(), jobs, [&](std::size_t di) {
    thread_local AnalysisScratch scratch;
    const std::size_t i = dirty_[di];
    // Same quarantine contract as the batch analysis stage: a connection
    // whose analysis throws is isolated in place, never the whole daemon.
    try {
      analyze_connection(conns[i], opts_.analyzer, scratch, results_[i]);
    } catch (const std::exception& e) {
      TDAT_LOG_WARN("live: connection %s quarantined: %s",
                    conns[i].key.to_string().c_str(), e.what());
      results_[i] = ConnectionAnalysis{};
      results_[i].key = conns[i].key;
      results_[i].quarantine_reason = "analysis failed with an exception";
    } catch (...) {
      results_[i] = ConnectionAnalysis{};
      results_[i].key = conns[i].key;
      results_[i].quarantine_reason = "analysis failed";
    }
    results_[i].conn_index = i;
  });
  // Location inference reads the packet list, which eviction may trim later:
  // freeze the estimate while the evidence is at its freshest.
  for (const std::uint32_t i : dirty_) {
    states_[i].where = infer_sniffer_location(conns[i], results_[i].profile);
    states_[i].dirty = false;
  }
}

void LiveEngine::evict_window() {
  if (opts_.window <= 0 || now_ < 0) return;
  const Micros horizon = now_ - opts_.window;
  std::vector<Connection>& conns = demux_.connections();
  std::uint64_t evicted = 0;
  for (std::size_t i = 0; i < conns.size(); ++i) {
    if (states_[i].retired) continue;
    std::vector<DecodedPacket>& pkts = conns[i].packets;
    if (pkts.size() <= kEvictKeepHead + 1) continue;
    const std::size_t last = pkts.size() - 1;  // newest packet always stays
    std::size_t cut = kEvictKeepHead;
    while (cut < last && pkts[cut].ts < horizon) ++cut;
    if (cut > kEvictKeepHead) {
      pkts.erase(pkts.begin() + static_cast<std::ptrdiff_t>(kEvictKeepHead),
                 pkts.begin() + static_cast<std::ptrdiff_t>(cut));
      evicted += cut - kEvictKeepHead;
    }
  }
  if (evicted > 0) {
    stats_.packets_evicted += evicted;
    metrics().counter("live.packets_evicted").inc(evicted);
  }
}

void LiveEngine::gc_idle() {
  if (opts_.idle_gc <= 0 || now_ < 0) return;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].retired || states_[i].last_ts < 0) continue;
    if (states_[i].last_ts + opts_.idle_gc <= now_) retire(i);
  }
}

void LiveEngine::retire(std::size_t i) {
  // Free the slot first: a later packet on the same 4-tuple must open a
  // brand-new connection instead of reviving this one.
  demux_.forget(i);
  Connection& conn = demux_.connections()[i];
  conn.packets.clear();
  conn.packets.shrink_to_fit();
  ConnectionAnalysis& a = results_[i];
  a.bundle = SeriesBundle{};
  // Keep the OPENs: peer-AS attribution in snapshots survives GC, while the
  // UPDATE bodies — the bulk of retained message memory — are released.
  std::erase_if(a.messages, [](const TimedBgpMessage& m) {
    return m.msg.type() != BgpType::kOpen;
  });
  a.messages.shrink_to_fit();
  states_[i].retired = true;
  ++retired_;
  ++stats_.connections_gc;
  metrics().counter("live.connections_gc").inc();
  TDAT_LOG_INFO("live: retired idle connection %s", a.key.to_string().c_str());
}

void LiveEngine::drain() {
  source_.begin_drain();
  while (run_epoch() > 0) {
  }
}

std::string LiveEngine::render_snapshot(ReportFormat format,
                                        const ReportRenderOptions& ropts) {
  std::vector<Connection>& conns = demux_.connections();
  ReportModel model;
  model.entries.reserve(results_.size());
  for (std::size_t i = 0; i < results_.size(); ++i) {
    ReportEntry entry;
    entry.conn = &conns[i];
    entry.analysis = &results_[i];
    entry.where = states_[i].where;
    model.entries.push_back(entry);
    if (results_[i].quarantined()) ++model.quarantined;
  }
  model.ingest = source_.diagnostics();
  std::vector<FileIngestDiagnostics> files;
  source_.collect_file_diagnostics(files);
  for (FileIngestDiagnostics& f : files) {
    if (f.diag.has_errors()) model.files.push_back(std::move(f));
  }
  return render_report(model, format, ropts);
}

std::size_t LiveEngine::retained_packets() const {
  std::size_t n = 0;
  for (const Connection& conn : demux_.connections()) n += conn.packets.size();
  return n;
}

PipelineStats LiveEngine::pipeline_stats() const {
  PipelineStats stats;
  stats.bytes_ingested = source_.bytes_ingested();
  stats.records = source_.records_seen();
  stats.packets = stats_.packets;
  stats.connections = results_.size();
  for (const ConnectionAnalysis& a : results_) {
    if (a.quarantined()) ++stats.quarantined;
  }
  stats.ingest = source_.diagnostics();
  stats.jobs = live_jobs(opts_.analyzer.jobs, results_.size());
  stats.ingest_wall = ingest_wall_;
  stats.analyze_wall = analyze_wall_;
  stats.total_wall = total_wall_;
  return stats;
}

}  // namespace tdat
