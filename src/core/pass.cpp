#include "core/pass.hpp"

#include <cstdio>

#include "core/detectors.hpp"
#include "core/series_names.hpp"
#include "util/metrics.hpp"

namespace tdat {

const char* to_string(PassKind kind) {
  return kind == PassKind::kFactor ? "factor" : "detector";
}

void AnalysisPass::text_findings(const ConnectionAnalysis&,
                                 std::string&) const {}

bool AnalysisPass::json_findings(const ConnectionAnalysis&,
                                 std::string&) const {
  return false;
}

void AnalysisPass::csv_findings(const ConnectionAnalysis&, const std::string&,
                                std::string&) const {}

namespace {

// printf-append used by the findings hooks (rendering paths may allocate;
// only run() is on the allocation-free per-connection path).
template <typename... Args>
void appendf(std::string& out, const char* fmt, Args... args) {
  char buf[192];
  const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

void append_csv(std::string& out, const std::string& conn, const char* section,
                const char* key, const std::string& value) {
  out.append(conn).push_back(',');
  out.append(section).push_back(',');
  out.append(key).push_back(',');
  out.append(value).push_back('\n');
}

// ---- the eight factor passes ----------------------------------------------

constexpr const char* kSenderAppDeps[] = {series::kSendAppLimited};
constexpr const char* kCwndDeps[] = {series::kCwndBndOut};
constexpr const char* kSendLossDeps[] = {series::kSendLocalLoss};
constexpr const char* kRecvAppDeps[] = {series::kSmallAdvBndOut};
constexpr const char* kAdvWindowDeps[] = {
    series::kAdvBndOut, series::kSmallAdvBndOut, series::kBandwidthLimited};
constexpr const char* kRecvLossDeps[] = {series::kRecvLocalLoss};
constexpr const char* kBandwidthDeps[] = {series::kBandwidthLimited};
constexpr const char* kNetLossDeps[] = {series::kNetworkLoss};

// One §III-D delay factor: fills the factor's set/ratio slot in the report
// via the shared DelayScratch (begin/finalize framing in analyze_connection).
class FactorPass final : public AnalysisPass {
 public:
  explicit FactorPass(PassInfo info) : info_(info) {}

  [[nodiscard]] const PassInfo& info() const override { return info_; }

  void run(const AnalysisContext& ctx, PassScratch*,
           ConnectionAnalysis& out) const override {
    classify_factor(out.report, ctx.registry, info_.factor, ctx.delay);
  }

 private:
  PassInfo info_;
};

// ---- detector passes (§II problems) ---------------------------------------

struct TimerGapPassScratch final : PassScratch {
  TimerGapScratch s;
};

class TimerGapPass final : public AnalysisPass {
 public:
  [[nodiscard]] const PassInfo& info() const override {
    static constexpr PassInfo kInfo{
        "timer-gaps", "BGP pacing-timer gaps (knee of the gap distribution)",
        PassKind::kDetector, Factor::kBgpSenderApp, kSenderAppDeps};
    return kInfo;
  }

  [[nodiscard]] std::unique_ptr<PassScratch> make_scratch() const override {
    return std::make_unique<TimerGapPassScratch>();
  }

  void run(const AnalysisContext& ctx, PassScratch* scratch,
           ConnectionAnalysis& out) const override {
    detect_timer_gaps_into(ctx.registry, ctx.transfer, TimerGapOptions{},
                           static_cast<TimerGapPassScratch*>(scratch)->s,
                           out.findings.timer);
  }

  void text_findings(const ConnectionAnalysis& a,
                     std::string& out) const override {
    const TimerGapResult& r = a.findings.timer;
    if (!r.detected) return;
    appendf(out, "  ! pacing timer ~%.0f ms (%zu gaps, %.1fs)\n",
            to_millis(r.timer), r.gap_count, to_seconds(r.introduced_delay));
  }

  bool json_findings(const ConnectionAnalysis& a,
                     std::string& out) const override {
    const TimerGapResult& r = a.findings.timer;
    out.append("\"timer_gaps\":{\"detected\":")
        .append(r.detected ? "true" : "false")
        .append(",\"timer_ms\":")
        .append(json_double(to_millis(r.timer)))
        .append(",\"gap_count\":")
        .append(std::to_string(r.gap_count))
        .append(",\"introduced_delay_us\":")
        .append(std::to_string(r.introduced_delay))
        .append("}");
    return true;
  }

  void csv_findings(const ConnectionAnalysis& a, const std::string& conn,
                    std::string& out) const override {
    const TimerGapResult& r = a.findings.timer;
    append_csv(out, conn, "detector", "timer-gaps.detected",
               r.detected ? "1" : "0");
    if (!r.detected) return;
    append_csv(out, conn, "detector", "timer-gaps.timer_ms",
               json_double(to_millis(r.timer)));
    append_csv(out, conn, "detector", "timer-gaps.gap_count",
               std::to_string(r.gap_count));
    append_csv(out, conn, "detector", "timer-gaps.introduced_delay_us",
               std::to_string(r.introduced_delay));
  }
};

constexpr const char* kConsecutiveLossDeps[] = {series::kLossRecovery,
                                                series::kRetransmission};

class ConsecutiveLossPass final : public AnalysisPass {
 public:
  [[nodiscard]] const PassInfo& info() const override {
    static constexpr PassInfo kInfo{
        "consecutive-loss", "runs of back-to-back losses collapsing cwnd",
        PassKind::kDetector, Factor::kBgpSenderApp, kConsecutiveLossDeps};
    return kInfo;
  }

  void run(const AnalysisContext& ctx, PassScratch*,
           ConnectionAnalysis& out) const override {
    detect_consecutive_losses_into(ctx.registry, ctx.transfer,
                                   ConsecutiveLossOptions{},
                                   out.findings.losses);
  }

  void text_findings(const ConnectionAnalysis& a,
                     std::string& out) const override {
    const ConsecutiveLossResult& r = a.findings.losses;
    if (!r.detected) return;
    appendf(out, "  ! consecutive losses: worst run %zu, %.1fs\n",
            r.max_consecutive, to_seconds(r.introduced_delay));
  }

  bool json_findings(const ConnectionAnalysis& a,
                     std::string& out) const override {
    const ConsecutiveLossResult& r = a.findings.losses;
    out.append("\"consecutive_losses\":{\"detected\":")
        .append(r.detected ? "true" : "false")
        .append(",\"episodes\":")
        .append(std::to_string(r.episodes))
        .append(",\"max_consecutive\":")
        .append(std::to_string(r.max_consecutive))
        .append(",\"introduced_delay_us\":")
        .append(std::to_string(r.introduced_delay))
        .append("}");
    return true;
  }

  void csv_findings(const ConnectionAnalysis& a, const std::string& conn,
                    std::string& out) const override {
    const ConsecutiveLossResult& r = a.findings.losses;
    append_csv(out, conn, "detector", "consecutive-loss.detected",
               r.detected ? "1" : "0");
    if (!r.detected) return;
    append_csv(out, conn, "detector", "consecutive-loss.episodes",
               std::to_string(r.episodes));
    append_csv(out, conn, "detector", "consecutive-loss.max_consecutive",
               std::to_string(r.max_consecutive));
    append_csv(out, conn, "detector", "consecutive-loss.introduced_delay_us",
               std::to_string(r.introduced_delay));
  }
};

constexpr const char* kZeroAckDeps[] = {series::kZeroAdvBndOut,
                                        series::kUpstreamLoss};

class ZeroWindowBugPass final : public AnalysisPass {
 public:
  [[nodiscard]] const PassInfo& info() const override {
    static constexpr PassInfo kInfo{
        "zero-window-bug", "zero-window probe bug (losses in closed windows)",
        PassKind::kDetector, Factor::kBgpSenderApp, kZeroAckDeps};
    return kInfo;
  }

  void run(const AnalysisContext& ctx, PassScratch*,
           ConnectionAnalysis& out) const override {
    detect_zero_ack_bug_into(ctx.registry, ctx.transfer, out.findings.zero_ack);
  }

  void text_findings(const ConnectionAnalysis& a,
                     std::string& out) const override {
    const ZeroAckBugResult& r = a.findings.zero_ack;
    if (!r.detected) return;
    appendf(out,
            "  ! zero-window probe bug suspected (%zu losses during"
            " closed windows)\n",
            r.occurrences);
  }

  bool json_findings(const ConnectionAnalysis& a,
                     std::string& out) const override {
    const ZeroAckBugResult& r = a.findings.zero_ack;
    out.append("\"zero_window_bug\":{\"detected\":")
        .append(r.detected ? "true" : "false")
        .append(",\"occurrences\":")
        .append(std::to_string(r.occurrences))
        .append(",\"overlap_us\":")
        .append(std::to_string(r.overlap))
        .append("}");
    return true;
  }

  void csv_findings(const ConnectionAnalysis& a, const std::string& conn,
                    std::string& out) const override {
    const ZeroAckBugResult& r = a.findings.zero_ack;
    append_csv(out, conn, "detector", "zero-window-bug.detected",
               r.detected ? "1" : "0");
    if (!r.detected) return;
    append_csv(out, conn, "detector", "zero-window-bug.occurrences",
               std::to_string(r.occurrences));
    append_csv(out, conn, "detector", "zero-window-bug.overlap_us",
               std::to_string(r.overlap));
  }
};

constexpr const char* kPeerGroupDeps[] = {series::kSendAppLimited,
                                          series::kKeepAliveOnly};

struct PeerGroupPassScratch final : PassScratch {
  PeerGroupScratch s;
};

class PeerGroupPass final : public AnalysisPass {
 public:
  [[nodiscard]] const PassInfo& info() const override {
    static constexpr PassInfo kInfo{
        "peer-group", "keepalive-only pauses: possible peer-group blocking",
        PassKind::kDetector, Factor::kBgpSenderApp, kPeerGroupDeps};
    return kInfo;
  }

  [[nodiscard]] std::unique_ptr<PassScratch> make_scratch() const override {
    return std::make_unique<PeerGroupPassScratch>();
  }

  void run(const AnalysisContext&, PassScratch* scratch,
           ConnectionAnalysis& out) const override {
    // The single-connection screen; the cross-connection confirmation
    // (detect_peer_group_blocking) is a whole-trace operation outside the
    // per-connection pipeline.
    detect_peer_group_pause_into(out, PeerGroupBlockOptions{},
                                 static_cast<PeerGroupPassScratch*>(scratch)->s,
                                 out.findings.pause);
  }

  void text_findings(const ConnectionAnalysis& a,
                     std::string& out) const override {
    const PeerGroupBlockResult& r = a.findings.pause;
    if (!r.detected) return;
    appendf(out,
            "  ! keepalive-only pause %.1fs: possible peer-group"
            " blocking\n",
            to_seconds(r.blocked_time));
  }

  bool json_findings(const ConnectionAnalysis& a,
                     std::string& out) const override {
    const PeerGroupBlockResult& r = a.findings.pause;
    out.append("\"peer_group_pause\":{\"detected\":")
        .append(r.detected ? "true" : "false")
        .append(",\"blocked_time_us\":")
        .append(std::to_string(r.blocked_time))
        .append(",\"episodes\":")
        .append(std::to_string(r.episodes.size()))
        .append("}");
    return true;
  }

  void csv_findings(const ConnectionAnalysis& a, const std::string& conn,
                    std::string& out) const override {
    const PeerGroupBlockResult& r = a.findings.pause;
    append_csv(out, conn, "detector", "peer-group.detected",
               r.detected ? "1" : "0");
    if (!r.detected) return;
    append_csv(out, conn, "detector", "peer-group.blocked_time_us",
               std::to_string(r.blocked_time));
    append_csv(out, conn, "detector", "peer-group.episodes",
               std::to_string(r.episodes.size()));
  }
};

struct CaptureVoidPassScratch final : PassScratch {
  CaptureVoidScratch s;
};

class CaptureVoidPass final : public AnalysisPass {
 public:
  [[nodiscard]] const PassInfo& info() const override {
    static constexpr PassInfo kInfo{
        "capture-voids", "sniffer drop periods (acked but never captured)",
        PassKind::kDetector, Factor::kBgpSenderApp, {}};
    return kInfo;
  }

  [[nodiscard]] std::unique_ptr<PassScratch> make_scratch() const override {
    return std::make_unique<CaptureVoidPassScratch>();
  }

  void run(const AnalysisContext& ctx, PassScratch* scratch,
           ConnectionAnalysis& out) const override {
    detect_capture_voids_into(
        ctx.conn, ctx.profile,
        static_cast<CaptureVoidPassScratch*>(scratch)->s, out.findings.voids);
  }

  void text_findings(const ConnectionAnalysis& a,
                     std::string& out) const override {
    const CaptureVoidResult& r = a.findings.voids;
    if (!r.detected) return;
    appendf(out, "  ! capture voids: %llu bytes never captured\n",
            static_cast<unsigned long long>(r.missing_bytes));
  }

  bool json_findings(const ConnectionAnalysis& a,
                     std::string& out) const override {
    const CaptureVoidResult& r = a.findings.voids;
    out.append("\"capture_voids\":{\"detected\":")
        .append(r.detected ? "true" : "false")
        .append(",\"missing_bytes\":")
        .append(std::to_string(r.missing_bytes))
        .append(",\"void_count\":")
        .append(std::to_string(r.voids.size()))
        .append("}");
    return true;
  }

  void csv_findings(const ConnectionAnalysis& a, const std::string& conn,
                    std::string& out) const override {
    const CaptureVoidResult& r = a.findings.voids;
    append_csv(out, conn, "detector", "capture-voids.detected",
               r.detected ? "1" : "0");
    if (!r.detected) return;
    append_csv(out, conn, "detector", "capture-voids.missing_bytes",
               std::to_string(r.missing_bytes));
    append_csv(out, conn, "detector", "capture-voids.void_count",
               std::to_string(r.voids.size()));
  }
};

}  // namespace

PassRegistry::PassRegistry() {
  // The eight factor passes first, in Factor order, so pass id ==
  // static_cast<std::size_t>(factor); then the detectors in report order.
  static const FactorPass sender_app{{"bgp-sender-app",
                                      "sending BGP process idle",
                                      PassKind::kFactor, Factor::kBgpSenderApp,
                                      kSenderAppDeps}};
  static const FactorPass cwnd{{"tcp-congestion-window",
                                "congestion-window bound", PassKind::kFactor,
                                Factor::kTcpCongestionWindow, kCwndDeps}};
  static const FactorPass send_loss{{"sender-local-loss",
                                     "losses local to the sender",
                                     PassKind::kFactor,
                                     Factor::kSenderLocalLoss, kSendLossDeps}};
  static const FactorPass recv_app{{"bgp-receiver-app",
                                    "receiving BGP process not draining",
                                    PassKind::kFactor, Factor::kBgpReceiverApp,
                                    kRecvAppDeps}};
  static const FactorPass adv_window{
      {"tcp-advertised-window", "configured advertised window is the limit",
       PassKind::kFactor, Factor::kTcpAdvertisedWindow, kAdvWindowDeps}};
  static const FactorPass recv_loss{{"receiver-local-loss",
                                     "losses local to the receiver",
                                     PassKind::kFactor,
                                     Factor::kReceiverLocalLoss,
                                     kRecvLossDeps}};
  static const FactorPass bandwidth{{"bandwidth-limited",
                                     "wire-paced: path bandwidth is the limit",
                                     PassKind::kFactor,
                                     Factor::kBandwidthLimited,
                                     kBandwidthDeps}};
  static const FactorPass net_loss{{"network-loss",
                                    "losses in the network path",
                                    PassKind::kFactor, Factor::kNetworkLoss,
                                    kNetLossDeps}};
  static const TimerGapPass timer_gaps;
  static const ConsecutiveLossPass consecutive_loss;
  static const ZeroWindowBugPass zero_window_bug;
  static const PeerGroupPass peer_group;
  static const CaptureVoidPass capture_voids;

  passes_ = {&sender_app,  &cwnd,      &send_loss,        &recv_app,
             &adv_window,  &recv_loss, &bandwidth,        &net_loss,
             &timer_gaps,  &consecutive_loss, &zero_window_bug,
             &peer_group,  &capture_voids};
}

std::size_t PassRegistry::find(std::string_view name) const {
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    if (name == passes_[i]->info().name) return i;
  }
  return npos;
}

PassRegistry& pass_registry() {
  static PassRegistry registry;
  return registry;
}

void init_pass_states(std::vector<PassExecState>& out) {
  const auto passes = pass_registry().passes();
  out.clear();
  out.reserve(passes.size());
  std::string name;
  for (std::size_t i = 0; i < passes.size(); ++i) {
    PassExecState st;
    st.pass = passes[i];
    st.id = i;
    st.scratch = passes[i]->make_scratch();
    name.assign("pass.").append(passes[i]->info().name).append(".us");
    st.us = &metrics().histogram(name);
    name.assign("pass.").append(passes[i]->info().name).append(".runs");
    st.runs = &metrics().counter(name);
    out.push_back(std::move(st));
  }
}

Result<PassSelection> parse_detector_selection(std::string_view value) {
  if (value == "all") return PassSelection::all();
  const PassRegistry& reg = pass_registry();
  // The factor passes always run — the delay report is the analyzer's core
  // output; --detectors only chooses the §II detectors layered on top.
  PassSelection sel = PassSelection::none();
  for (std::size_t i = 0; i < reg.size(); ++i) {
    if (reg.passes()[i]->info().kind == PassKind::kFactor) sel.set(i, true);
  }
  if (value == "none") return sel;
  std::string_view rest = value;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view token = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::size_t id = reg.find(token);
    if (id == PassRegistry::npos ||
        reg.passes()[id]->info().kind != PassKind::kDetector) {
      std::string msg = "unknown detector '";
      msg.append(token).append("' (valid: all, none");
      for (const AnalysisPass* p : reg.passes()) {
        if (p->info().kind == PassKind::kDetector) {
          msg.append(", ").append(p->info().name);
        }
      }
      msg.append(")");
      return Err<PassSelection>(std::move(msg));
    }
    sel.set(id, true);
  }
  return sel;
}

}  // namespace tdat
