#include "core/archive.hpp"

#include <algorithm>

namespace tdat {

std::vector<TimedBgpMessage> archive_messages_for(
    const std::vector<MrtRecord>& records, std::uint32_t peer_ip) {
  std::vector<TimedBgpMessage> out;
  for (const MrtRecord& rec : records) {
    if (rec.peer_ip != peer_ip) continue;
    auto parsed = rec.parse();
    if (!parsed.ok()) continue;
    out.push_back({rec.ts, std::move(parsed).value()});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TimedBgpMessage& a, const TimedBgpMessage& b) {
                     return a.ts < b.ts;
                   });
  return out;
}

ConnectionAnalysis analyze_connection_with_archive(
    const Connection& conn, const std::vector<MrtRecord>& archive,
    const AnalyzerOptions& opts) {
  thread_local AnalysisScratch scratch;
  ConnectionAnalysis out;
  out.key = conn.key;
  out.profile = compute_profile(conn, scratch.profile);
  build_series(conn, out.profile, opts, scratch.series, out.bundle);

  // The peer is the data sender's side of the connection key.
  std::uint32_t peer_ip = conn.key.ip_a;
  if (out.profile.data_dir == Dir::kBToA) peer_ip = conn.key.ip_b;
  out.messages = archive_messages_for(archive, peer_ip);

  const Micros start = conn.start_time();
  // Archives may carry second-granular timestamps (the MRT wire format),
  // so a message logged within the connection's first second can be stamped
  // "before" the µs-precise TCP start. Run MCT from the containing second.
  const Micros mct_start = (start / kMicrosPerSec) * kMicrosPerSec;
  out.mct = mct_transfer_end(out.messages, mct_start, MctOptions{},
                             scratch.mct_seen);
  if (out.mct.update_count > 0 && out.mct.end > start) {
    // MRT timestamps are second-granular; extend the window to the end of
    // the last update's second so sub-second activity is not clipped.
    out.transfer = {start, out.mct.end + kMicrosPerSec};
  } else {
    out.transfer = {};
  }
  out.report = classify_delay(out.bundle.registry, out.transfer, opts,
                              scratch.delay);
  return out;
}

}  // namespace tdat
