#include "core/trace_source.hpp"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <utility>

#include "pcap/decode.hpp"

namespace tdat {

// ---------------------------------------------------- PacketVectorSource --

bool PacketVectorSource::next(DecodedPacket& out) {
  if (next_ >= packets_.size()) return false;
  out = std::move(packets_[next_++]);
  bytes_ += out.frame.size();
  return true;
}

// ------------------------------------------------------- PcapFileSource --

PcapFileSource::PcapFileSource(const PcapFile& file, bool verify_checksums)
    : file_(&file), verify_checksums_(verify_checksums) {
  // Account ingest from the capture's view — the 24-byte pcap global header
  // plus record headers and stored bytes, matching PcapStream::bytes_read()
  // byte for byte.
  bytes_ = 24;
  for (const PcapRecord& rec : file.records) bytes_ += 16 + rec.data.size();
}

bool PcapFileSource::next(DecodedPacket& out) {
  while (next_ < file_->records.size()) {
    const std::size_t i = next_++;
    const PcapRecord& rec = file_->records[i];
    if (rec.data.size() < rec.orig_len) continue;  // truncated capture
    if (auto pkt = decode_frame(rec.ts, i, rec.data, verify_checksums_)) {
      out = std::move(*pkt);
      return true;
    }
  }
  return false;
}

std::size_t PcapFileSource::next_raw_records(std::span<StreamRecord> out) {
  std::size_t n = 0;
  while (n < out.size() && next_ < file_->records.size()) {
    const PcapRecord& rec = file_->records[next_++];
    StreamRecord& r = out[n++];
    r.ts = rec.ts;
    r.orig_len = rec.orig_len;
    r.data = std::span<const std::uint8_t>(rec.data);
    // No pin: the file outlives the source by contract, and a null arena
    // makes the batch decoder copy the frame — exactly what decode_frame
    // does on this path.
    r.arena = nullptr;
  }
  return n;
}

// ----------------------------------------------------- PcapStreamSource --

Result<PcapStreamSource> PcapStreamSource::open(const std::string& path,
                                                bool verify_checksums,
                                                const IngestPolicy& policy) {
  return PcapStream::open_auto(path, policy)
      .map([verify_checksums, &path](PcapStream stream) {
        PcapStreamSource src(std::move(stream), verify_checksums);
        src.path_ = path;
        return src;
      });
}

bool PcapStreamSource::next(DecodedPacket& out) {
  StreamRecord rec;
  while (stream_.next(rec)) {
    const std::size_t i = index_++;
    if (rec.data.size() < rec.orig_len) continue;  // truncated capture
    // The record's arena chunk rides along as the packet's backing, so no
    // frame bytes are copied; the chunk is freed once the last packet in it
    // is gone.
    if (auto pkt = decode_frame(rec.ts, i, rec.data, verify_checksums_,
                                rec.arena)) {
      out = std::move(*pkt);
      return true;
    }
  }
  return false;
}

std::size_t PcapStreamSource::next_raw_records(std::span<StreamRecord> out) {
  std::size_t n = 0;
  while (n < out.size() && stream_.next(out[n])) ++n;
  index_ += n;
  return n;
}

// ------------------------------------------------------ MultiFileSource --

Result<MultiFileSource> MultiFileSource::open(
    const std::vector<std::string>& inputs, bool verify_checksums,
    const IngestPolicy& policy) {
  std::vector<std::string> files;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(input, ec)) {
      // Directory of rotated captures: every regular file inside, in name
      // order (the timestamp sort below decides the final order; name order
      // only breaks first-timestamp ties deterministically).
      std::vector<std::string> entries;
      for (const auto& entry : std::filesystem::directory_iterator(input, ec)) {
        if (entry.is_regular_file()) entries.push_back(entry.path().string());
      }
      if (ec) return Err<MultiFileSource>("pcap: cannot list " + input);
      if (entries.empty()) {
        return Err<MultiFileSource>("pcap: no capture files in " + input);
      }
      std::sort(entries.begin(), entries.end());
      files.insert(files.end(), entries.begin(), entries.end());
    } else {
      files.push_back(input);
    }
  }
  if (files.empty()) return Err<MultiFileSource>("pcap: no input captures");

  MultiFileSource src;
  src.verify_checksums_ = verify_checksums;
  src.parts_.reserve(files.size());
  for (const std::string& file : files) {
    auto stream = PcapStream::open_auto(file, policy);
    if (!stream.ok()) return stream.take_error();
    Part part{std::move(stream).value(), file, {}, false};
    part.has_pending = part.stream.next(part.pending);
    src.parts_.push_back(std::move(part));
  }
  // Rotation order == first-record timestamp order; stable so equal
  // timestamps keep the (sorted) name order. Empty captures sort last and
  // are skipped by next().
  std::stable_sort(src.parts_.begin(), src.parts_.end(),
                   [](const Part& a, const Part& b) {
                     if (a.has_pending != b.has_pending) return a.has_pending;
                     return a.has_pending && a.pending.ts < b.pending.ts;
                   });
  return src;
}

bool MultiFileSource::next(DecodedPacket& out) {
  while (current_ < parts_.size()) {
    Part& part = parts_[current_];
    if (!part.has_pending) {
      ++current_;
      continue;
    }
    const std::size_t i = index_++;
    StreamRecord rec = std::move(part.pending);
    part.has_pending = part.stream.next(part.pending);
    if (rec.data.size() < rec.orig_len) continue;  // truncated capture
    if (auto pkt = decode_frame(rec.ts, i, rec.data, verify_checksums_,
                                rec.arena)) {
      out = std::move(*pkt);
      return true;
    }
  }
  return false;
}

std::size_t MultiFileSource::next_raw_records(std::span<StreamRecord> out) {
  std::size_t n = 0;
  while (n < out.size() && current_ < parts_.size()) {
    Part& part = parts_[current_];
    if (!part.has_pending) {
      ++current_;
      continue;
    }
    out[n++] = std::move(part.pending);
    part.has_pending = part.stream.next(part.pending);
  }
  index_ += n;
  return n;
}

std::uint64_t MultiFileSource::bytes_ingested() const {
  std::uint64_t total = 0;
  for (const Part& part : parts_) total += part.stream.bytes_read();
  return total;
}

std::uint64_t MultiFileSource::records_seen() const {
  std::uint64_t total = 0;
  for (const Part& part : parts_) total += part.stream.records_read();
  return total;
}

IngestDiagnostics MultiFileSource::diagnostics() const {
  IngestDiagnostics total;
  for (const Part& part : parts_) total.add(part.stream.diagnostics());
  return total;
}

void MultiFileSource::collect_file_diagnostics(
    std::vector<FileIngestDiagnostics>& out) const {
  for (const Part& part : parts_) {
    out.push_back({part.path, part.stream.diagnostics()});
  }
}

// ------------------------------------------------------ OffsetRunSource --

Result<OffsetRunSource> OffsetRunSource::open(const std::string& path,
                                              std::vector<RecordRun> runs,
                                              bool verify_checksums) {
  TDAT_TRY(mapped, MappedFile::map(path));
  TDAT_TRY(reader, RecordRunReader::open(mapped.share(), mapped.bytes(),
                                         std::move(runs)));
  return OffsetRunSource(std::move(reader), verify_checksums);
}

bool OffsetRunSource::next(DecodedPacket& out) {
  StreamRecord rec;
  while (reader_.next(rec)) {
    const std::size_t i = index_++;
    if (rec.data.size() < rec.orig_len) continue;  // truncated capture
    if (auto pkt = decode_frame(rec.ts, i, rec.data, verify_checksums_,
                                rec.arena)) {
      out = std::move(*pkt);
      return true;
    }
  }
  return false;
}

std::size_t OffsetRunSource::next_raw_records(std::span<StreamRecord> out) {
  std::size_t n = 0;
  while (n < out.size() && reader_.next(out[n])) ++n;
  index_ += n;
  return n;
}

}  // namespace tdat
