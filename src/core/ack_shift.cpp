#include "core/ack_shift.hpp"

#include <algorithm>

#include "tcp/flights.hpp"

namespace tdat {

ShiftedTrace shift_acks(const Connection& conn, const ConnectionProfile& profile,
                        const AnalyzerOptions& opts) {
  AckShiftScratch scratch;
  ShiftedTrace out;
  shift_acks(conn, profile, opts, scratch, out);
  return out;
}

void shift_acks(const Connection& conn, const ConnectionProfile& profile,
                const AnalyzerOptions& opts, AckShiftScratch& scratch,
                ShiftedTrace& out) {
  out.ts.clear();
  out.flights_shifted = 0;
  out.max_shift = 0;
  out.ts.reserve(conn.packets.size());
  for (const DecodedPacket& pkt : conn.packets) out.ts.push_back(pkt.ts);
  if (opts.location == SnifferLocation::kNearSender || !opts.enable_ack_shift) {
    return;
  }

  // Timestamps of data-direction payload packets, for "next data after t".
  std::vector<Micros>& data_ts = scratch.data_ts;
  std::vector<FlightItem>& acks = scratch.acks;
  data_ts.clear();
  acks.clear();
  for (std::size_t i = 0; i < conn.packets.size(); ++i) {
    const DecodedPacket& pkt = conn.packets[i];
    if (packet_dir(conn.key, pkt) == profile.data_dir) {
      if (pkt.has_payload()) data_ts.push_back(pkt.ts);
    } else if (pkt.tcp.flags.ack && !pkt.tcp.flags.syn) {
      acks.push_back({pkt.ts, pkt.payload_len, i});
    }
  }
  if (acks.empty() || data_ts.empty()) return;

  const Micros gap = std::max<Micros>(
      kMicrosPerMilli,
      static_cast<Micros>(static_cast<double>(profile.rtt()) *
                          opts.flight_gap_rtt_fraction));
  group_flights_into(acks, gap, scratch.flights);
  const auto& flights = scratch.flights;

  // d2 is a path property, roughly one RTT. An ACK whose next data packet
  // arrives much later than that did NOT promptly liberate data (the sender
  // was idle), so it yields no estimate — "(if it exists)" in the paper.
  // Without this bound, app-limited idle gaps would be swallowed by the
  // shift instead of measured. The reference tracks the last accepted
  // estimate because queueing at a bottleneck inflates the true d2
  // gradually over a transfer; an application pacing timer, by contrast,
  // jumps far past the cap at once and is rejected.
  Micros d2_ref = profile.rtt();

  for (const Flight& flight : flights) {
    const Micros d2_cap = 2 * std::max(d2_ref, profile.rtt());
    Micros d2_min = -1;
    for (std::size_t i = flight.first; i <= flight.last; ++i) {
      // First data packet captured after this ACK.
      auto it = std::upper_bound(data_ts.begin(), data_ts.end(), acks[i].ts);
      if (it == data_ts.end()) continue;
      const Micros d2 = *it - acks[i].ts;
      if (d2 > 0 && d2 <= d2_cap && (d2_min < 0 || d2 < d2_min)) d2_min = d2;
    }
    if (d2_min > 0) d2_ref = d2_min;
    if (d2_min <= 0) continue;  // no estimate for this flight
    for (std::size_t i = flight.first; i <= flight.last; ++i) {
      out.ts[acks[i].ref] += d2_min;
    }
    ++out.flights_shifted;
    out.max_shift = std::max(out.max_shift, d2_min);
  }
}

}  // namespace tdat
