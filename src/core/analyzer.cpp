#include "core/analyzer.hpp"

#include <chrono>
#include <cstdio>

#include "pcap/decode.hpp"
#include "pcap/pcap_stream.hpp"
#include "util/thread_pool.hpp"

namespace tdat {
namespace {

Micros wall_now() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t effective_jobs(std::size_t requested, std::size_t connections) {
  std::size_t jobs = requested == 0 ? default_jobs() : requested;
  if (connections > 0 && jobs > connections) jobs = connections;
  return jobs > 0 ? jobs : 1;
}

// The analysis stage shared by every ingest path. Connections are handed to
// workers by index and each result is written into its pre-sized slot, so
// ordering and content never depend on the job count or scheduling.
void run_analysis_stage(TraceAnalysis& out, const AnalyzerOptions& opts) {
  const Micros t0 = wall_now();
  const std::size_t jobs = effective_jobs(opts.jobs, out.connections.size());
  out.results.clear();
  out.results.resize(out.connections.size());
  parallel_for(out.connections.size(), jobs, [&](std::size_t i) {
    out.results[i] = analyze_connection(out.connections[i], opts);
    out.results[i].conn_index = i;
  });
  out.stats.jobs = jobs;
  out.stats.connections = out.connections.size();
  out.stats.analyze_wall = wall_now() - t0;
}

double rate(std::uint64_t count, Micros wall) {
  return wall > 0 ? static_cast<double>(count) / to_seconds(wall) : 0.0;
}

}  // namespace

double PipelineStats::bytes_per_sec() const { return rate(bytes_ingested, total_wall); }
double PipelineStats::packets_per_sec() const { return rate(packets, total_wall); }
double PipelineStats::connections_per_sec() const { return rate(connections, total_wall); }

std::string PipelineStats::to_json() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bytes_ingested\": %llu, \"records\": %llu, \"packets\": %llu, "
      "\"connections\": %llu, \"jobs\": %zu, \"ingest_wall_us\": %lld, "
      "\"analyze_wall_us\": %lld, \"total_wall_us\": %lld, "
      "\"bytes_per_sec\": %.1f, \"packets_per_sec\": %.1f, "
      "\"connections_per_sec\": %.3f}",
      static_cast<unsigned long long>(bytes_ingested),
      static_cast<unsigned long long>(records),
      static_cast<unsigned long long>(packets),
      static_cast<unsigned long long>(connections), jobs,
      static_cast<long long>(ingest_wall), static_cast<long long>(analyze_wall),
      static_cast<long long>(total_wall), bytes_per_sec(), packets_per_sec(),
      connections_per_sec());
  return buf;
}

ConnectionAnalysis analyze_connection(const Connection& conn,
                                      const AnalyzerOptions& opts) {
  ConnectionAnalysis out;
  out.key = conn.key;
  out.profile = compute_profile(conn);
  out.bundle = build_series(conn, out.profile, opts);

  auto extracted = extract_bgp_messages(conn, out.profile.data_dir);
  out.messages = std::move(extracted.messages);

  // A table transfer starts right after the TCP connection is established
  // (RFC 4271); MCT estimates where it ends.
  const Micros start = conn.start_time();
  out.mct = mct_transfer_end(out.messages, start);
  if (out.mct.update_count > 0 && out.mct.end > start) {
    out.transfer = {start, out.mct.end};
  } else {
    out.transfer = {};
  }
  out.report = classify_delay(out.bundle.registry, out.transfer, opts);
  return out;
}

TraceAnalysis analyze_packets(std::vector<DecodedPacket> packets,
                              const AnalyzerOptions& opts) {
  TraceAnalysis out;
  const Micros t0 = wall_now();
  out.stats.packets = packets.size();
  {
    ConnectionDemux demux;
    for (DecodedPacket& pkt : packets) {
      out.stats.bytes_ingested += pkt.frame.size();
      demux.add(std::move(pkt));
    }
    out.connections = demux.take();
  }
  out.stats.ingest_wall = wall_now() - t0;
  run_analysis_stage(out, opts);
  out.stats.total_wall = wall_now() - t0;
  return out;
}

TraceAnalysis analyze_trace(const PcapFile& file, const AnalyzerOptions& opts) {
  const Micros t0 = wall_now();
  TraceAnalysis out = analyze_packets(decode_pcap(file, opts.verify_checksums),
                                      opts);
  // Account ingest from the capture's view: record headers + stored bytes,
  // and the decode time that analyze_packets could not see.
  out.stats.records = file.records.size();
  out.stats.bytes_ingested = 0;
  for (const PcapRecord& rec : file.records) {
    out.stats.bytes_ingested += 16 + rec.data.size();
  }
  out.stats.total_wall = wall_now() - t0;
  out.stats.ingest_wall = out.stats.total_wall - out.stats.analyze_wall;
  return out;
}

Result<TraceAnalysis> analyze_file(const std::string& path,
                                   const AnalyzerOptions& opts) {
  auto stream = PcapStream::open(path);
  if (!stream.ok()) return Err<TraceAnalysis>(stream.error());
  PcapStream& s = stream.value();

  TraceAnalysis out;
  const Micros t0 = wall_now();
  {
    ConnectionDemux demux;
    StreamRecord rec;
    std::size_t index = 0;
    while (s.next(rec)) {
      const std::size_t i = index++;
      if (rec.data.size() < rec.orig_len) continue;  // truncated capture
      // The record's arena chunk rides along as the packet's backing, so no
      // frame bytes are copied; the chunk is freed once the last packet in
      // it is gone.
      if (auto pkt = decode_frame(rec.ts, i, rec.data, opts.verify_checksums,
                                  rec.arena)) {
        ++out.stats.packets;
        demux.add(std::move(*pkt));
      }
    }
    out.connections = demux.take();
  }
  out.stats.records = s.records_read();
  out.stats.bytes_ingested = s.bytes_read();
  out.stats.ingest_wall = wall_now() - t0;
  run_analysis_stage(out, opts);
  out.stats.total_wall = wall_now() - t0;
  return out;
}

}  // namespace tdat
