#include "core/analyzer.hpp"

#include <chrono>
#include <cstdio>

#include "core/ingest_pipeline.hpp"
#include "core/pass.hpp"
#include "core/trace_source.hpp"
#include "pcap/decode.hpp"
#include "pcap/pcap_stream.hpp"
#include "util/alloc_hook.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace tdat {
namespace {

Micros wall_now() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t effective_jobs(std::size_t requested, std::size_t connections) {
  std::size_t jobs = requested == 0 ? default_jobs() : requested;
  if (connections > 0 && jobs > connections) jobs = connections;
  return jobs > 0 ? jobs : 1;
}

// The analysis stage shared by every ingest path. Connections are handed to
// workers by index and each result is written into its pre-sized slot, so
// ordering and content never depend on the job count or scheduling.
void run_analysis_stage(TraceAnalysis& out, const AnalyzerOptions& opts) {
  const Micros t0 = wall_now();
  const std::size_t jobs = effective_jobs(opts.jobs, out.connections.size());
  TDAT_TRACE_SPAN("analyze.stage", "analyze", "jobs",
                  static_cast<std::int64_t>(jobs));
  // Scope the cumulative pool/analysis histograms to this run.
  const HistogramSnapshot qw0 =
      metrics().histogram("pool.queue_wait_us").snapshot();
  const HistogramSnapshot conn0 =
      metrics().histogram("analyze.connection_us").snapshot();
  out.results.clear();
  out.results.resize(out.connections.size());
  parallel_for(out.connections.size(), jobs, [&](std::size_t i) {
    // One scratch per worker thread, warm across tasks and across runs: the
    // whole per-connection working set (classifier tables, series buffers,
    // range-set algebra, reassembly, MCT prefix table) is recycled, so the
    // stage's steady state performs no cross-core allocator traffic.
    thread_local AnalysisScratch scratch;
    // A pathological connection must not take the run down (an uncaught
    // exception on a pool thread would terminate the process): it is
    // quarantined in place and the stage moves on. Deep allocation failures
    // (bad_alloc / length_error from absurd reconstructed streams) are the
    // realistic throwers; contract violations still abort via TDAT_EXPECTS.
    try {
      analyze_connection(out.connections[i], opts, scratch, out.results[i]);
    } catch (const std::exception& e) {
      TDAT_LOG_WARN("analyze: connection %s quarantined: %s",
                    out.connections[i].key.to_string().c_str(), e.what());
      out.results[i] = ConnectionAnalysis{};
      out.results[i].key = out.connections[i].key;
      out.results[i].quarantine_reason = "analysis failed with an exception";
    } catch (...) {
      out.results[i] = ConnectionAnalysis{};
      out.results[i].key = out.connections[i].key;
      out.results[i].quarantine_reason = "analysis failed";
    }
    out.results[i].conn_index = i;
  });
  out.stats.jobs = jobs;
  out.stats.connections = out.connections.size();
  out.stats.quarantined = 0;
  for (const ConnectionAnalysis& a : out.results) {
    if (a.quarantined()) ++out.stats.quarantined;
  }
  metrics().gauge("quarantine.connections")
      .set(static_cast<std::int64_t>(out.stats.quarantined));
  out.stats.analyze_wall = wall_now() - t0;
  out.stats.queue_wait_us =
      metrics().histogram("pool.queue_wait_us").snapshot().since(qw0);
  out.stats.connection_us =
      metrics().histogram("analyze.connection_us").snapshot().since(conn0);
  TDAT_LOG_DEBUG("analysis stage: %zu connections on %zu workers in %.3fs",
                 out.connections.size(), jobs,
                 to_seconds(out.stats.analyze_wall));
}

double rate(std::uint64_t count, Micros wall) {
  return wall > 0 ? static_cast<double>(count) / to_seconds(wall) : 0.0;
}

}  // namespace

double PipelineStats::bytes_per_sec() const { return rate(bytes_ingested, total_wall); }
double PipelineStats::packets_per_sec() const { return rate(packets, total_wall); }
double PipelineStats::connections_per_sec() const { return rate(connections, total_wall); }
double PipelineStats::ingest_bytes_per_sec() const { return rate(bytes_ingested, ingest_wall); }
double PipelineStats::decode_bytes_per_sec() const { return rate(bytes_ingested, decode_busy); }
double PipelineStats::analysis_bytes_per_sec() const { return rate(bytes_ingested, analyze_wall); }

std::string PipelineStats::to_json() const {
  // Built with std::to_chars-backed json_double: snprintf("%f") renders the
  // decimal separator of the process locale, which is not valid JSON under
  // e.g. de_DE; this output must stay machine-parseable everywhere.
  std::string out;
  const auto field = [&out](const char* key, std::string value) {
    if (!out.empty()) out += ", ";
    out += '"';
    out += key;
    out += "\": ";
    out += value;
  };
  field("bytes_ingested", std::to_string(bytes_ingested));
  field("records", std::to_string(records));
  field("packets", std::to_string(packets));
  field("connections", std::to_string(connections));
  if (quarantined > 0) field("quarantined", std::to_string(quarantined));
  if (ingest.has_errors()) field("ingest_errors", ingest.to_json());
  field("jobs", std::to_string(jobs));
  field("ingest_jobs", std::to_string(ingest_jobs));
  field("ingest_wall_us", std::to_string(ingest_wall));
  field("decode_busy_us", std::to_string(decode_busy));
  field("analyze_wall_us", std::to_string(analyze_wall));
  field("total_wall_us", std::to_string(total_wall));
  field("bytes_per_sec", json_double(bytes_per_sec()));
  field("ingest_bytes_per_sec", json_double(ingest_bytes_per_sec()));
  field("decode_bytes_per_sec", json_double(decode_bytes_per_sec()));
  field("analysis_bytes_per_sec", json_double(analysis_bytes_per_sec()));
  field("packets_per_sec", json_double(packets_per_sec()));
  field("connections_per_sec", json_double(connections_per_sec()));
  if (queue_wait_us.count > 0) {
    field("queue_wait_us", queue_wait_us.to_json());
  }
  if (connection_us.count > 0) {
    field("connection_analysis_us", connection_us.to_json());
  }
  if (!metrics_json.empty()) field("metrics", metrics_json);
  return "{" + out + "}";
}

AnalysisScratch::AnalysisScratch()
    : conn_us(&metrics().histogram("analyze.connection_us")),
      allocs(&metrics().histogram("analyze.allocs_per_conn")),
      done(&metrics().counter("analyze.connections_done")) {}

AnalysisScratch::~AnalysisScratch() = default;

namespace {

// Leaves `out` holding only its key, index, and quarantine reason. The slot
// is reused across connections, so every analysis field must be reset — a
// quarantined entry must not carry a previous connection's series.
void quarantine_connection(ConnectionAnalysis& out, AnalysisScratch& scratch) {
  out.profile = ConnectionProfile{};
  out.bundle = SeriesBundle{};
  out.messages.clear();
  out.mct = MctResult{};
  out.transfer = {};
  out.report = DelayReport{};
  out.findings.reset();
  scratch.done->inc();
}

}  // namespace

ConnectionAnalysis analyze_connection(const Connection& conn,
                                      const AnalyzerOptions& opts) {
  thread_local AnalysisScratch scratch;
  ConnectionAnalysis out;
  analyze_connection(conn, opts, scratch, out);
  return out;
}

void analyze_connection(const Connection& conn, const AnalyzerOptions& opts,
                        AnalysisScratch& scratch, ConnectionAnalysis& out) {
  TDAT_TRACE_SPAN("analyze.connection", "analyze", "conn",
                  [&conn] { return conn.key.to_string(); });
  const std::int64_t t0 = monotonic_micros();
  const std::uint64_t a0 = thread_alloc_count();
  out.conn_index = 0;
  out.key = conn.key;
  out.quarantine_reason =
      opts.fault_hook != nullptr ? opts.fault_hook(conn) : nullptr;
  if (out.quarantined()) {
    quarantine_connection(out, scratch);
    return;
  }
  {
    TDAT_TRACE_SPAN("analyze.profile", "analyze");
    out.profile = compute_profile(conn, scratch.profile);
  }
  {
    TDAT_TRACE_SPAN("analyze.series", "analyze");
    build_series(conn, out.profile, opts, scratch.series, out.bundle);
  }
  {
    TDAT_TRACE_SPAN("analyze.extract_bgp", "analyze");
    // Donate out's warm message buffer to the staging result, extract, then
    // take the refilled buffer back — capacity circulates, nothing is freed.
    scratch.extracted.messages.swap(out.messages);
    extract_bgp_messages_into(conn, out.profile.data_dir, scratch.extract,
                              scratch.extracted);
    out.messages.swap(scratch.extracted.messages);
  }
  // BGP framing this far gone means the byte stream is not a BGP session any
  // more (hostile payloads, undetected capture damage): isolate the
  // connection instead of reporting series built over garbage.
  if (scratch.extracted.skipped_bytes > opts.quarantine_skipped_bytes ||
      scratch.extracted.parse_errors > opts.quarantine_parse_errors) {
    TDAT_LOG_WARN(
        "analyze: connection %s quarantined: BGP framing unrecoverable "
        "(%llu bytes skipped, %llu parse errors, %llu resyncs)",
        conn.key.to_string().c_str(),
        static_cast<unsigned long long>(scratch.extracted.skipped_bytes),
        static_cast<unsigned long long>(scratch.extracted.parse_errors),
        static_cast<unsigned long long>(scratch.extracted.frame_resyncs));
    out.quarantine_reason = "BGP framing unrecoverable";
    quarantine_connection(out, scratch);
    return;
  }

  // A table transfer starts right after the TCP connection is established
  // (RFC 4271); MCT estimates where it ends.
  const Micros start = conn.start_time();
  {
    TDAT_TRACE_SPAN("analyze.mct", "analyze");
    out.mct = mct_transfer_end(out.messages, start, MctOptions{},
                               scratch.mct_seen);
  }
  if (out.mct.update_count > 0 && out.mct.end > start) {
    out.transfer = {start, out.mct.end};
  } else {
    out.transfer = {};
  }
  {
    // The detection stage: every registered pass (core/pass.hpp) — the eight
    // factor passes bracketed by begin/finalize (together equivalent to
    // classify_delay bit for bit) plus the §II detectors — gated by the
    // pass selection and individually timed.
    TDAT_TRACE_SPAN("analyze.passes", "analyze");
    if (scratch.passes.empty()) init_pass_states(scratch.passes);
    out.findings.reset();
    begin_delay_classification(out.report, out.transfer, scratch.delay);
    const AnalysisContext ctx{conn,         out.profile, out.bundle.registry,
                              out.transfer, opts,        scratch.delay};
    for (PassExecState& ps : scratch.passes) {
      if (!opts.passes.enabled(ps.id)) continue;
      TDAT_TRACE_SPAN(ps.pass->info().name, "pass");
      const std::int64_t p0 = monotonic_micros();
      ps.pass->run(ctx, ps.scratch.get(), out);
      ps.us->observe(monotonic_micros() - p0);
      ps.runs->inc();
    }
    finalize_delay_groups(out.report, opts, scratch.delay);
  }
  // Per-connection accounting: a clock read plus relaxed RMWs on this
  // worker's metric shards. connections_done feeds the CLI --progress
  // ticker; allocs_per_conn guards the zero-allocation steady state.
  scratch.conn_us->observe(monotonic_micros() - t0);
  if (alloc_hook_active()) {
    scratch.allocs->observe(
        static_cast<std::int64_t>(thread_alloc_count() - a0));
  }
  scratch.done->inc();
}

TraceAnalysis run_pipeline(TraceSource& source, const AnalyzerOptions& opts) {
  TraceAnalysis out;
  const Micros t0 = wall_now();
  {
    TDAT_TRACE_SPAN("ingest", "pcap");
    IngestStageResult ingested = run_ingest_stage(source, opts);
    out.connections = std::move(ingested.connections);
    out.stats.packets = ingested.packets;
    out.stats.decode_busy = ingested.decode_busy;
    out.stats.ingest_jobs = ingested.ingest_jobs;
  }
  out.stats.records = source.records_seen();
  out.stats.bytes_ingested = source.bytes_ingested();
  out.stats.ingest = source.diagnostics();
  source.collect_file_diagnostics(out.file_diags);
  out.stats.ingest_wall = wall_now() - t0;
  run_analysis_stage(out, opts);
  out.stats.total_wall = wall_now() - t0;
  out.stats.metrics_json = metrics().to_json();
  return out;
}

TraceAnalysis analyze_packets(std::vector<DecodedPacket> packets,
                              const AnalyzerOptions& opts) {
  PacketVectorSource source(std::move(packets));
  return run_pipeline(source, opts);
}

TraceAnalysis analyze_trace(const PcapFile& file, const AnalyzerOptions& opts) {
  PcapFileSource source(file, opts.verify_checksums);
  return run_pipeline(source, opts);
}

Result<TraceAnalysis> analyze_file(const std::string& path,
                                   const AnalyzerOptions& opts) {
  return PcapStreamSource::open(path, opts.verify_checksums, opts.ingest)
      .and_then([&](PcapStreamSource source) -> Result<TraceAnalysis> {
        TDAT_LOG_INFO("analyze: streaming %s", path.c_str());
        return run_pipeline(source, opts);
      });
}

Result<TraceAnalysis> analyze_files(const std::vector<std::string>& inputs,
                                    const AnalyzerOptions& opts) {
  TDAT_TRY(source,
           MultiFileSource::open(inputs, opts.verify_checksums, opts.ingest));
  TDAT_LOG_INFO("analyze: %zu rotated capture files as one trace",
                source.file_count());
  return run_pipeline(source, opts);
}

}  // namespace tdat
