#include "core/analyzer.hpp"

namespace tdat {

ConnectionAnalysis analyze_connection(const Connection& conn,
                                      const AnalyzerOptions& opts) {
  ConnectionAnalysis out;
  out.key = conn.key;
  out.profile = compute_profile(conn);
  out.bundle = build_series(conn, out.profile, opts);

  auto extracted = extract_bgp_messages(conn, out.profile.data_dir);
  out.messages = std::move(extracted.messages);

  // A table transfer starts right after the TCP connection is established
  // (RFC 4271); MCT estimates where it ends.
  const Micros start = conn.start_time();
  out.mct = mct_transfer_end(out.messages, start);
  if (out.mct.update_count > 0 && out.mct.end > start) {
    out.transfer = {start, out.mct.end};
  } else {
    out.transfer = {};
  }
  out.report = classify_delay(out.bundle.registry, out.transfer, opts);
  return out;
}

TraceAnalysis analyze_packets(std::vector<DecodedPacket> packets,
                              const AnalyzerOptions& opts) {
  TraceAnalysis out;
  out.connections = split_connections(packets);
  out.results.reserve(out.connections.size());
  for (std::size_t i = 0; i < out.connections.size(); ++i) {
    ConnectionAnalysis r = analyze_connection(out.connections[i], opts);
    r.conn_index = i;
    out.results.push_back(std::move(r));
  }
  return out;
}

TraceAnalysis analyze_trace(const PcapFile& file, const AnalyzerOptions& opts) {
  return analyze_packets(decode_pcap(file, opts.verify_checksums), opts);
}

}  // namespace tdat
