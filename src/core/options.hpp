// Analyzer configuration and the delay-factor taxonomy of §III-D: eight
// conclusive factors sorted into three top-level groups (sender, receiver,
// network). The sniffer location is a user-supplied setting (§III-C2): it
// decides whether upstream/downstream losses are interpreted as local to the
// sender, local to the receiver, or in-network.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "pcap/ingest.hpp"
#include "util/time.hpp"

namespace tdat {

struct Connection;

enum class SnifferLocation : std::uint8_t {
  kNearReceiver,  // the paper's monitoring setup (Fig. 2)
  kNearSender,
  kMiddle,
};

enum class Factor : std::uint8_t {
  // Sender-side group
  kBgpSenderApp = 0,        // SendAppLimited: the sending BGP process idles
  kTcpCongestionWindow = 1, // CwndBndOut
  kSenderLocalLoss = 2,     // UpstreamLoss when the sniffer sits at the sender
  // Receiver-side group
  kBgpReceiverApp = 3,      // small/zero advertised window: app can't keep up
  kTcpAdvertisedWindow = 4, // bounded by a LARGE advertised window: the
                            // configured maximum window itself is the limit
  kReceiverLocalLoss = 5,   // DownstreamLoss when the sniffer sits at the receiver
  // Network group
  kBandwidthLimited = 6,
  kNetworkLoss = 7,
};
inline constexpr std::size_t kFactorCount = 8;

enum class FactorGroup : std::uint8_t { kSender = 0, kReceiver = 1, kNetwork = 2 };
inline constexpr std::size_t kGroupCount = 3;

[[nodiscard]] const char* to_string(Factor f);
[[nodiscard]] const char* to_string(FactorGroup g);
[[nodiscard]] FactorGroup group_of(Factor f);
[[nodiscard]] std::array<Factor, 3> factors_in(FactorGroup g);  // padded with dup for network

// Which registered analysis passes run (core/pass.hpp). One bit per pass id
// (registration order: the eight factor passes, then the §II detectors).
// Defaults to everything; parse_detector_selection() builds a selection from
// the CLI's --detectors value.
struct PassSelection {
  std::uint64_t bits = ~0ull;

  [[nodiscard]] bool enabled(std::size_t pass_id) const {
    return pass_id < 64 && ((bits >> pass_id) & 1u) != 0;
  }
  void set(std::size_t pass_id, bool on) {
    if (pass_id >= 64) return;
    const std::uint64_t mask = std::uint64_t{1} << pass_id;
    bits = on ? (bits | mask) : (bits & ~mask);
  }
  [[nodiscard]] static PassSelection all() { return {}; }
  [[nodiscard]] static PassSelection none() { return {0}; }

  friend bool operator==(const PassSelection&, const PassSelection&) = default;
};

struct AnalyzerOptions {
  SnifferLocation location = SnifferLocation::kNearReceiver;

  // A group is a "major" delay contributor above this fraction of the
  // transfer duration (§IV-A; tested 0.3..0.5 without qualitative change).
  double major_threshold = 0.3;

  // Advertised window is "small" below small_window_mss * MSS and "large"
  // above max_advertised - small_window_mss * MSS (thresholds from [28, 38]).
  int small_window_mss = 3;
  // Outstanding counts as bounded by the advertised window when the gap is
  // under adv_bound_mss * MSS (§III-C3, from [28]).
  int adv_bound_mss = 3;

  // A new data/ACK flight starts after a gap exceeding this fraction of RTT
  // (floored at 1 ms).
  double flight_gap_rtt_fraction = 0.5;
  // "Emitted immediately upon the ACK": gap tolerance for declaring a flight
  // congestion-window-bounded.
  double immediate_rtt_fraction = 0.25;

  // Hole fills are reordering below this fraction of RTT (see ClassifyOptions).
  double reorder_rtt_fraction = 0.5;

  // Uniform-spacing tolerance for bandwidth-limited flights: a flight is
  // wire-paced when its max inter-packet gap <= factor * median gap.
  double bw_uniformity_factor = 2.0;
  std::size_t bw_min_flight_packets = 4;

  bool verify_checksums = false;

  // Worker threads for the per-connection analysis stage. 1 = fully serial
  // (no pool, no atomics); 0 = default_jobs() (TDAT_JOBS env override, else
  // hardware concurrency). Any value produces bit-identical results: work is
  // handed out by connection index into pre-sized slots, and nothing in the
  // per-connection analysis shares mutable state.
  std::size_t jobs = 1;

  // Ablation switch (§III-B1): disable the ACK-flight shift to measure how
  // much the sniffer-position correction matters. Leave on for analysis.
  bool enable_ack_shift = true;

  // Pass selection for the detection stage; defaults to every registered
  // factor and detector pass.
  PassSelection passes;

  // Corrupt-capture handling for the file-backed ingest paths (DESIGN.md
  // §10): strict tail-drop vs. resynchronizing recovery with an error budget.
  IngestPolicy ingest;

  // Per-connection quarantine thresholds: a connection whose BGP framing is
  // this far gone (bytes skipped hunting for markers / messages that failed
  // to parse) is isolated from the report instead of contributing garbage
  // series. Both are far beyond anything a healthy session produces.
  std::uint64_t quarantine_skipped_bytes = 4u << 20;
  std::uint64_t quarantine_parse_errors = 16384;

  // Test seam: when set, a non-null return quarantines the connection with
  // that reason before analysis runs. Lets fault-injection tests exercise
  // the quarantine path deterministically (and models analysis-stage faults
  // that are otherwise hard to provoke on demand).
  const char* (*fault_hook)(const Connection& conn) = nullptr;
};

}  // namespace tdat
