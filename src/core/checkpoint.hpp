// Durable checkpoint format for the live engine (DESIGN.md §16).
//
// A `.tdckpt` file lets `tdat watch` survive a SIGKILL: it records where in
// the followed capture the reader stood, the engine's configuration echo and
// counters, and — the heart of the format — each live connection's retained
// packets as (byte offset, record count) *runs into the capture itself*,
// reusing the fleet shard-plan machinery (pcap/record_runs). No packet bytes
// are serialized: restore re-reads exactly the retained records from the
// capture and rebuilds the engine by re-ingesting them, so a restored
// engine's state is the product of the same pure analysis functions over the
// same bytes as an uninterrupted run.
//
// Torn-write safety: the payload is guarded by a CRC-32 and an exact length;
// the file is written via temp + fsync + rename (util/atomic_file). A parse
// rejects short files, bad magic, newer versions, length mismatches
// (truncation *and* trailing bytes), and CRC failures — each with a distinct
// message — and the caller degrades to a full replay, never crashes.
//
// Capture identity: a checkpoint binds to one capture file via (dev, ino),
// the size at checkpoint time, and a CRC over the leading bytes. A capture
// that was rotated, truncated, or replaced under the checkpoint fails
// validation and likewise degrades to full replay.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pcap/ingest.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace tdat {

inline constexpr std::uint32_t kCheckpointVersion = 1;
// Leading-bytes hash window: enough to cover the global header and the first
// records without re-reading a multi-GB capture on every checkpoint.
inline constexpr std::uint64_t kCheckpointHeadHashCap = 64u << 10;

// One run of `count` records packed back to back in the capture, the first
// record's header at byte `offset`, carrying global record indices
// first_index .. first_index + count - 1.
struct CheckpointRun {
  std::uint64_t offset = 0;
  std::uint32_t count = 0;
  std::uint64_t first_index = 0;

  friend bool operator==(const CheckpointRun&, const CheckpointRun&) = default;
};

// Per-connection retained state, in connection-index order.
struct CheckpointConn {
  bool retired = false;
  std::vector<CheckpointRun> runs;

  friend bool operator==(const CheckpointConn&,
                         const CheckpointConn&) = default;
};

// Identity of the capture file the offsets point into.
struct CaptureIdentity {
  std::uint64_t dev = 0;
  std::uint64_t ino = 0;
  std::uint64_t size = 0;      // capture size at checkpoint time
  std::uint32_t head_len = 0;  // bytes hashed (min(size, head cap))
  std::uint32_t head_crc = 0;  // CRC-32 of capture[0 .. head_len)

  friend bool operator==(const CaptureIdentity&,
                         const CaptureIdentity&) = default;
};

// Echo of every engine option that shapes analysis results. A checkpoint
// taken under one configuration must not silently seed a run under another:
// a mismatch degrades to full replay under the *new* configuration.
struct CheckpointConfig {
  std::uint8_t location = 0;  // SnifferLocation
  bool verify_checksums = false;
  bool strict = false;
  bool enable_ack_shift = true;
  std::uint64_t pass_bits = ~0ull;
  std::uint64_t max_errors = 0;
  Micros window = 0;
  Micros idle_gc = 0;

  friend bool operator==(const CheckpointConfig&,
                         const CheckpointConfig&) = default;
};

struct LiveCheckpoint {
  CaptureIdentity capture;

  // Stream resume state: first unread capture byte, records delivered,
  // resync anchor, and the damage tallied so far.
  std::uint64_t resume_offset = 0;
  std::uint64_t records_seen = 0;
  Micros stream_last_ts = -1;
  IngestDiagnostics diag;

  // Engine state.
  std::uint64_t next_index = 0;  // global record index after the last epoch
  Micros now_ts = -1;            // newest capture timestamp seen
  CheckpointConfig config;

  // Engine counters (LiveEngineStats, minus the derivable ones).
  std::uint64_t epochs = 0;
  std::uint64_t records = 0;
  std::uint64_t packets = 0;
  std::uint64_t connections_total = 0;
  std::uint64_t connections_gc = 0;
  std::uint64_t packets_evicted = 0;

  std::vector<CheckpointConn> conns;

  friend bool operator==(const LiveCheckpoint&,
                         const LiveCheckpoint&) = default;
};

// Serializes a checkpoint into the complete .tdckpt file image
// (magic + version + length + CRC + payload).
[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint(
    const LiveCheckpoint& ckpt);

// Parses a .tdckpt image. Rejects torn, truncated, bit-flipped, trailing-
// garbage, and newer-version images with a distinct error each; never
// crashes on hostile input (fuzzed — fuzz/fuzz_checkpoint.cpp).
[[nodiscard]] Result<LiveCheckpoint> parse_checkpoint(
    std::span<const std::uint8_t> image);

// Reads and parses `path`. A missing file is an error too (callers treat
// "no checkpoint" as cold start before calling this).
[[nodiscard]] Result<LiveCheckpoint> read_checkpoint_file(
    const std::string& path);

// Atomically (temp + fsync + rename) replaces `path` with the encoded
// checkpoint. On failure the previous checkpoint at `path` is intact.
// Honors the "ckpt-write" / "ckpt-rename" crash points (util/crash_point).
[[nodiscard]] Result<Unit> write_checkpoint_file(const std::string& path,
                                                 const LiveCheckpoint& ckpt);

// Stats + leading-bytes hash of the capture at `path`, for stamping into a
// checkpoint.
[[nodiscard]] Result<CaptureIdentity> compute_capture_identity(
    const std::string& path);

// Does the capture at `path` still match `recorded`? Same (dev, ino), grown
// (never shrunk) since the checkpoint, same leading bytes. An error names
// what changed.
[[nodiscard]] Result<Unit> validate_capture_identity(
    const CaptureIdentity& recorded, const std::string& path);

}  // namespace tdat
