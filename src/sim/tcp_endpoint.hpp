// Simulated TCP endpoint with window-based congestion control — the
// "TCP flavours such as Tahoe, Reno, New Reno" assumption T-DAT makes about
// commercial routers (§III). Implements:
//
//  - three-way handshake with MSS / window-scale negotiation,
//  - send buffer, receiver flow control (advertised window), delayed ACKs,
//  - slow start / congestion avoidance / fast retransmit / NewReno-style
//    fast recovery, RTO per RFC 6298 with configurable floor and backoff,
//  - zero-window persist probes, optionally with the probe-discard bug the
//    paper uncovered via the ZeroAckBug series (§IV-B),
//  - crash emulation (`die()`) for the peer-group blocking scenario (Fig 9).
//
// Byte accounting uses 64-bit stream offsets (0 = first payload byte); the
// wire sequence number is isn + 1 + offset. The SYN and FIN occupy one
// sequence number each, handled explicitly.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>

#include "sim/scheduler.hpp"
#include "sim/sim_packet.hpp"
#include "tcp/reassembler.hpp"
#include "util/result.hpp"

namespace tdat {

// Application callbacks. The endpoint never destroys or outlives decisions
// of the app; the app owns pacing and reading.
class TcpApp {
 public:
  virtual ~TcpApp() = default;
  virtual void on_connected() {}
  // In-order data arrived into the receive buffer; the app reads explicitly
  // via TcpEndpoint::read (its read pacing is the receiver-app behaviour
  // T-DAT measures).
  virtual void on_data_available() {}
  virtual void on_send_space() {}
  virtual void on_reset() {}
};

struct TcpConfig {
  std::uint32_t ip = 0;
  std::uint16_t port = 0;
  std::uint32_t isn = 1000;
  std::size_t send_buf_capacity = 64 * 1024;
  std::size_t recv_buf_capacity = 64 * 1024;  // max advertised window
  std::uint16_t mss = 1460;
  std::optional<std::uint8_t> window_scale;  // offered on SYN
  bool delayed_ack = true;
  Micros delack_timeout = 200 * kMicrosPerMilli;
  // Linux-style quickack: after an idle period of at least delack_timeout,
  // the next few segments are ACKed immediately instead of delayed.
  int quickack_segments = 4;
  Micros min_rto = 300 * kMicrosPerMilli;
  Micros max_rto = 60 * kMicrosPerSec;
  double rto_backoff = 2.0;
  std::uint32_t initial_cwnd_segments = 2;
  Micros persist_initial = 500 * kMicrosPerMilli;
  // Nagle-style coalescing: defer sub-MSS segments while data is in flight,
  // unless the segment would fill the usable window completely. Off by
  // default: BGP implementations set TCP_NODELAY and batch their writes, so
  // segments are MSS-sized anyway.
  bool nagle = false;
  // Emulates the vendor bug of §IV-B: a zero-window probe that races with a
  // window-opening ACK is discarded after consuming sequence space.
  bool zero_window_probe_bug = false;
};

class TcpEndpoint {
 public:
  TcpEndpoint(Scheduler& sched, TcpConfig config, TcpApp* app, std::string name);

  // Where outbound packets go (wired to a Link by the session harness).
  void set_output(std::function<void(SimPacket)> output) {
    output_ = std::move(output);
  }

  // Active / passive open. Errors (opening a non-closed endpoint) are
  // returned, not asserted: a scenario wiring mistake should fail the
  // harness with a message, not bring the process down.
  Result<Unit> connect(std::uint32_t remote_ip, std::uint16_t remote_port);
  Result<Unit> listen(std::uint32_t remote_ip, std::uint16_t remote_port);

  // Appends to the send buffer; returns bytes accepted (0 when full).
  std::size_t send(std::span<const std::uint8_t> bytes);
  [[nodiscard]] std::size_t send_space() const;
  [[nodiscard]] std::size_t send_backlog() const { return send_buf_.size(); }

  [[nodiscard]] std::size_t available() const { return recv_buf_.size(); }
  // Drains up to `max` bytes from the receive buffer, possibly triggering a
  // window-update ACK.
  std::vector<std::uint8_t> read(std::size_t max);

  void abort();  // sends RST, closes
  void die();    // stops responding entirely (process crash)

  void on_segment(const SimPacket& pkt);  // input from the link

  [[nodiscard]] bool established() const { return state_ == State::kEstablished; }
  [[nodiscard]] bool closed() const { return state_ == State::kClosed; }
  [[nodiscard]] bool is_dead() const { return dead_; }
  [[nodiscard]] std::int64_t cwnd() const { return cwnd_; }
  [[nodiscard]] std::int64_t flight_size() const { return snd_nxt_ - snd_una_; }
  [[nodiscard]] Micros current_rto() const { return rto_; }
  [[nodiscard]] std::uint64_t retransmit_count() const { return retransmits_; }
  [[nodiscard]] std::uint64_t persist_arm_count() const { return persist_arms_; }
  [[nodiscard]] std::uint64_t probe_bug_triggers() const { return bug_triggers_; }
  [[nodiscard]] std::int64_t bytes_acked() const { return snd_una_; }
  [[nodiscard]] std::int64_t bytes_delivered() const { return delivered_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  enum class State : std::uint8_t {
    kClosed,
    kListen,
    kSynSent,
    kSynReceived,
    kEstablished,
  };

  void emit(TcpFlags flags, std::int64_t stream_offset,
            std::span<const std::uint8_t> payload, bool is_syn_seq = false);
  void send_ack_now();
  void try_transmit();
  void transmit_segment(std::int64_t offset, std::size_t len, bool retransmit);
  void on_ack(const SimPacket& pkt);
  void on_data(const SimPacket& pkt);
  void enter_fast_retransmit();
  void on_rto();
  void arm_rto();
  void cancel_rto() { ++rto_gen_; rto_armed_ = false; }
  void arm_persist();
  void on_persist();
  void update_rtt(Micros sample);
  [[nodiscard]] std::uint16_t advertised_window_raw() const;
  [[nodiscard]] std::int64_t usable_window() const;
  [[nodiscard]] std::uint32_t wire_seq(std::int64_t offset) const {
    return config_.isn + 1 + static_cast<std::uint32_t>(offset);
  }

  Scheduler& sched_;
  TcpConfig config_;
  TcpApp* app_;
  std::string name_;
  std::function<void(SimPacket)> output_;

  State state_ = State::kClosed;
  bool dead_ = false;
  std::uint32_t remote_ip_ = 0;
  std::uint16_t remote_port_ = 0;
  std::uint16_t ip_ident_ = 1;

  // ---- send side (64-bit stream offsets) ----
  std::deque<std::uint8_t> send_buf_;   // bytes [snd_una_, snd_una_+size)
  std::int64_t snd_una_ = 0;
  std::int64_t snd_nxt_ = 0;
  std::int64_t cwnd_ = 0;
  std::int64_t ssthresh_ = 0;
  std::int64_t peer_window_ = 0;        // scaled advertised window from peer
  std::uint8_t peer_wscale_ = 0;        // shift to apply to peer's raw window
  bool wscale_enabled_ = false;
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recovery_point_ = 0;
  Micros rto_ = kMicrosPerSec;
  Micros srtt_ = 0;
  Micros rttvar_ = 0;
  bool have_rtt_ = false;
  std::uint64_t rto_gen_ = 0;
  bool rto_armed_ = false;
  std::uint64_t persist_gen_ = 0;
  bool persist_armed_ = false;
  Micros persist_backoff_ = 0;
  std::uint64_t persist_arms_ = 0;
  std::uint64_t bug_triggers_ = 0;
  std::uint64_t retransmits_ = 0;
  // RTT probe (Karn's algorithm: never sample retransmitted data).
  bool rtt_probe_armed_ = false;
  std::int64_t rtt_probe_end_ = 0;
  Micros rtt_probe_ts_ = 0;

  // ---- receive side ----
  std::optional<Reassembler> reasm_;
  std::uint32_t peer_isn_ = 0;
  std::deque<std::uint8_t> recv_buf_;
  std::int64_t delivered_ = 0;  // in-order bytes placed into recv_buf_
  bool delack_pending_ = false;
  std::uint64_t delack_gen_ = 0;
  Micros last_data_rx_ = -1;
  int quickack_budget_ = 0;
  std::uint16_t last_advertised_raw_ = 0;
};

}  // namespace tdat
