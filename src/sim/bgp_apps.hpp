// The applications on top of the simulated TCP endpoints:
//
//  BgpSenderApp    — an operational router announcing its table. Supports
//                    continuous sending, timer-driven pacing (the gap
//                    phenomenon of §II-B1 / Houidi et al.), and peer-group
//                    replication (§II-B3). Runs the BGP hold timer and
//                    tears the session down when the peer goes silent.
//  BgpReceiverApp  — a collector session: replies OPEN/KEEPALIVE, archives
//                    every received message with its arrival time (the
//                    "MRT archive"), and reads from the socket at the pace
//                    its host allows — the receiving-application behaviour
//                    T-DAT's receiver-side factors measure.
//  CollectorHost   — shared read capacity across concurrent sessions on one
//                    collector box (drives the Fig. 15 experiment).
#pragma once

#include <memory>
#include <vector>

#include "bgp/msg_stream.hpp"
#include "sim/peer_group.hpp"
#include "sim/tcp_endpoint.hpp"

namespace tdat {

struct BgpSenderConfig {
  std::uint16_t my_as = 65001;
  std::uint32_t bgp_id = 0x0a000001;
  Micros keepalive_interval = 60 * kMicrosPerSec;
  Micros hold_time = 180 * kMicrosPerSec;
  // Timer-driven pacing: at most `msgs_per_tick` messages written per
  // `timer_interval`. Off = write whenever the socket has room.
  bool timer_driven = false;
  Micros timer_interval = 200 * kMicrosPerMilli;
  std::size_t msgs_per_tick = 20;
};

class BgpSenderApp final : public TcpApp {
 public:
  // Ungrouped: the app owns its message queue.
  BgpSenderApp(Scheduler& sched, BgpSenderConfig config,
               std::vector<std::vector<std::uint8_t>> messages);
  // Peer-grouped: messages come from the shared group queue.
  BgpSenderApp(Scheduler& sched, BgpSenderConfig config, PeerGroup* group);

  void bind(TcpEndpoint* endpoint) { endpoint_ = endpoint; }
  // Active-opens the TCP connection and starts the BGP machinery. Errors
  // (started before bind, endpoint not closed) are returned, not asserted.
  Result<Unit> start(std::uint32_t remote_ip, std::uint16_t remote_port);

  // Queues additional messages behind the current stream — e.g. the massive
  // update burst a routing event triggers after the initial table transfer
  // (the paper's §VII future-work case). Errors on a peer-grouped sender,
  // whose queue belongs to the group.
  Result<Unit> enqueue(std::vector<std::vector<std::uint8_t>> messages);

  void on_connected() override;
  void on_data_available() override;
  void on_send_space() override;
  void on_reset() override;

  [[nodiscard]] bool finished_sending() const { return finished_; }
  [[nodiscard]] Micros finished_at() const { return finished_at_; }
  [[nodiscard]] bool session_failed() const { return failed_; }
  [[nodiscard]] Micros failed_at() const { return failed_at_; }

 private:
  void pump();
  void on_pacing_tick();
  void keepalive_tick();
  void check_hold_timer();
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> next_message() const;
  void consume_message();
  void fail_session();

  Scheduler& sched_;
  BgpSenderConfig config_;
  TcpEndpoint* endpoint_ = nullptr;
  std::vector<std::vector<std::uint8_t>> own_messages_;
  std::size_t own_next_ = 0;
  PeerGroup* group_ = nullptr;
  std::size_t member_id_ = 0;
  BgpMessageStream in_stream_;
  Micros last_heard_ = 0;
  bool running_ = false;
  bool finished_ = false;
  Micros finished_at_ = 0;
  bool failed_ = false;
  Micros failed_at_ = 0;
};

class CollectorHost;

struct BgpReceiverConfig {
  std::uint16_t my_as = 65000;
  std::uint32_t bgp_id = 0x0a0000fe;
  Micros keepalive_interval = 60 * kMicrosPerSec;
  // Self-paced reading when not attached to a CollectorHost:
  Micros read_interval = 10 * kMicrosPerMilli;
  std::size_t read_chunk = 64 * 1024;
};

class BgpReceiverApp final : public TcpApp {
 public:
  BgpReceiverApp(Scheduler& sched, BgpReceiverConfig config,
                 CollectorHost* host = nullptr);

  void bind(TcpEndpoint* endpoint) { endpoint_ = endpoint; }
  Result<Unit> start(std::uint32_t remote_ip, std::uint16_t remote_port);

  void on_connected() override;
  void on_data_available() override;
  void on_reset() override;

  // Reads up to `budget` bytes off the socket; returns bytes consumed.
  // Called by the CollectorHost (shared capacity) or the self-pacing tick.
  std::size_t drain(std::size_t budget);

  // Crash emulation for Fig. 9: stop responding at the TCP level entirely.
  void die();

  [[nodiscard]] const std::vector<TimedBgpMessage>& archive() const {
    return archive_;
  }
  [[nodiscard]] std::size_t backlog() const {
    return endpoint_ ? endpoint_->available() : 0;
  }
  [[nodiscard]] bool is_dead() const { return dead_; }

 private:
  void self_tick();
  void keepalive_tick();

  Scheduler& sched_;
  BgpReceiverConfig config_;
  CollectorHost* host_;
  TcpEndpoint* endpoint_ = nullptr;
  BgpMessageStream in_stream_;
  std::vector<TimedBgpMessage> archive_;
  bool running_ = false;
  bool dead_ = false;
  bool sent_open_ = false;
};

// Shared socket-reading capacity of one collector box. Sessions attached to
// a host are drained round-robin from a common byte budget, so concurrent
// table transfers contend for the receiving BGP process (Fig. 15).
class CollectorHost {
 public:
  CollectorHost(Scheduler& sched, std::int64_t read_rate_bytes_per_sec,
                Micros tick = 10 * kMicrosPerMilli);

  void attach(BgpReceiverApp* app) { apps_.push_back(app); }
  void start();

 private:
  void tick();

  Scheduler& sched_;
  std::int64_t rate_;
  Micros interval_;
  std::vector<BgpReceiverApp*> apps_;
  std::size_t rr_ = 0;
  bool running_ = false;
};

// Convenience: serialize a table announcement (OPEN handled separately) to
// the wire messages a sender app pumps.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> serialize_updates(
    const std::vector<BgpUpdate>& updates);

}  // namespace tdat
