// The unit travelling through simulated links: real wire bytes (so the
// sniffer tap records exactly what tcpdump would) plus decoded fields so
// endpoints don't re-parse their own frames.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "pcap/encode.hpp"
#include "pcap/packet.hpp"

namespace tdat {

struct SimPacket {
  std::shared_ptr<const std::vector<std::uint8_t>> frame;
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint16_t window = 0;  // raw (pre-scaling) as carried on the wire
  TcpFlags flags;
  std::optional<std::uint16_t> mss;
  std::optional<std::uint8_t> window_scale;
  std::size_t payload_offset = 0;
  std::size_t payload_len = 0;

  [[nodiscard]] std::size_t wire_size() const { return frame->size(); }
  [[nodiscard]] std::span<const std::uint8_t> payload() const {
    return std::span(*frame).subspan(payload_offset, payload_len);
  }
};

// Encodes the spec into wire bytes and fills the decoded mirror fields.
[[nodiscard]] SimPacket make_sim_packet(const TcpSegmentSpec& spec);

}  // namespace tdat
