#include "sim/world.hpp"

#include "util/assert.hpp"
#include "util/log.hpp"

namespace tdat {

SimWorld::SimWorld(std::uint64_t seed, double capture_drop) : rng_(seed) {
  tap_ = std::make_unique<SnifferTap>(sched_, rng_.fork(), capture_drop);
}

void SimWorld::use_shared_downstream(const LinkConfig& fwd, const LinkConfig& rev) {
  TDAT_EXPECTS(sessions_.empty());
  shared_down_fwd_ = std::make_unique<Link>(sched_, fwd, rng_.fork());
  shared_down_rev_ = std::make_unique<Link>(sched_, rev, rng_.fork());
}

void SimWorld::use_collector_host(std::int64_t rate) {
  TDAT_EXPECTS(sessions_.empty());
  host_ = std::make_unique<CollectorHost>(sched_, rate);
}

std::size_t SimWorld::add_session(SessionSpec spec,
                                  std::vector<std::vector<std::uint8_t>> messages) {
  auto app = std::make_unique<BgpSenderApp>(sched_, spec.bgp, std::move(messages));
  return wire_session(std::move(spec), std::move(app));
}

std::size_t SimWorld::add_session(SessionSpec spec, PeerGroup* group) {
  auto app = std::make_unique<BgpSenderApp>(sched_, spec.bgp, group);
  return wire_session(std::move(spec), std::move(app));
}

std::size_t SimWorld::wire_session(SessionSpec spec,
                                   std::unique_ptr<BgpSenderApp> sender_app) {
  const auto index = sessions_.size();
  auto s = std::make_unique<Session>();

  // Default addressing: routers at 10.0.1.x, ephemeral source ports.
  if (spec.sender_ip == 0) {
    spec.sender_ip = 0x0a000100 + static_cast<std::uint32_t>(index + 1);
  }
  if (spec.sender_port == 0) {
    spec.sender_port = static_cast<std::uint16_t>(20000 + index);
  }
  spec.sender_tcp.ip = spec.sender_ip;
  spec.sender_tcp.port = spec.sender_port;
  if (spec.sender_tcp.isn == 1000) {
    spec.sender_tcp.isn = static_cast<std::uint32_t>(rng_.uniform(1, 1 << 30));
  }
  spec.receiver_tcp.ip = spec.receiver_ip;
  spec.receiver_tcp.port = spec.receiver_port;
  if (spec.receiver_tcp.isn == 1000) {
    spec.receiver_tcp.isn = static_cast<std::uint32_t>(rng_.uniform(1, 1 << 30));
  }

  s->sender_app = std::move(sender_app);
  s->receiver_app =
      std::make_unique<BgpReceiverApp>(sched_, spec.collector, host_.get());
  s->sender_ep = std::make_unique<TcpEndpoint>(
      sched_, spec.sender_tcp, s->sender_app.get(), "sender" + std::to_string(index));
  s->receiver_ep = std::make_unique<TcpEndpoint>(
      sched_, spec.receiver_tcp, s->receiver_app.get(),
      "receiver" + std::to_string(index));
  s->sender_app->bind(s->sender_ep.get());
  s->receiver_app->bind(s->receiver_ep.get());

  s->up_fwd = std::make_unique<Link>(sched_, spec.up_fwd, rng_.fork());
  s->up_rev = std::make_unique<Link>(sched_, spec.up_rev, rng_.fork());
  Link* down_fwd = shared_down_fwd_.get();
  Link* down_rev = shared_down_rev_.get();
  if (down_fwd == nullptr) {
    s->down_fwd = std::make_unique<Link>(sched_, spec.down_fwd, rng_.fork());
    s->down_rev = std::make_unique<Link>(sched_, spec.down_rev, rng_.fork());
    down_fwd = s->down_fwd.get();
    down_rev = s->down_rev.get();
  }

  // Forward path: sender -> upstream -> tap -> downstream -> receiver.
  Session* raw = s.get();
  s->sender_ep->set_output([this, raw, down_fwd](SimPacket pkt) {
    raw->up_fwd->send(std::move(pkt), [this, raw, down_fwd](SimPacket arrived) {
      tap_->record(arrived);
      down_fwd->send(std::move(arrived), [raw](SimPacket delivered) {
        raw->receiver_ep->on_segment(delivered);
      });
    });
  });
  // Reverse path: receiver -> downstream -> tap -> upstream -> sender.
  s->receiver_ep->set_output([this, raw, down_rev](SimPacket pkt) {
    down_rev->send(std::move(pkt), [this, raw](SimPacket arrived) {
      tap_->record(arrived);
      raw->up_rev->send(std::move(arrived), [raw](SimPacket delivered) {
        raw->sender_ep->on_segment(delivered);
      });
    });
  });

  s->spec = spec;
  sessions_.push_back(std::move(s));
  return index;
}

void SimWorld::start_session(std::size_t index, Micros at) {
  TDAT_EXPECTS(index < sessions_.size());
  Session* s = sessions_[index].get();
  sched_.at(at, [s] {
    // Startup errors mean a mis-wired scenario; surface them in the log
    // rather than crashing the harness mid-simulation.
    auto receiving = s->receiver_app->start(s->spec.sender_ip,
                                            s->spec.sender_port);
    if (!receiving.ok()) {
      TDAT_LOG_ERROR("start_session: %s", receiving.error().c_str());
    }
    auto sending = s->sender_app->start(s->spec.receiver_ip,
                                        s->spec.receiver_port);
    if (!sending.ok()) {
      TDAT_LOG_ERROR("start_session: %s", sending.error().c_str());
    }
  });
  if (host_ != nullptr) host_->start();
}

}  // namespace tdat
