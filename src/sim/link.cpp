#include "sim/link.hpp"

#include <algorithm>

namespace tdat {

void Link::send(SimPacket pkt, Deliver deliver) {
  if (rng_.chance(config_.random_loss)) {
    ++stats_.dropped_random;
    return;
  }
  if (in_queue_ >= config_.queue_packets) {
    ++stats_.dropped_queue;
    return;
  }
  ++in_queue_;

  const Micros start = std::max(sched_.now(), busy_until_);
  Micros serialization = 0;
  if (config_.rate_bytes_per_sec > 0) {
    serialization = static_cast<Micros>(pkt.wire_size()) * kMicrosPerSec /
                    config_.rate_bytes_per_sec;
  }
  busy_until_ = start + serialization;
  const Micros serialized_at = busy_until_;
  const Micros arrives_at = serialized_at + config_.propagation_delay;

  // Queue slot frees when serialization completes; delivery happens one
  // propagation delay later.
  sched_.at(serialized_at, [this] { --in_queue_; });
  sched_.at(arrives_at, [this, pkt = std::move(pkt),
                         deliver = std::move(deliver)]() mutable {
    ++stats_.delivered;
    deliver(std::move(pkt));
  });
}

}  // namespace tdat
