// BGP peer-group replication queue (§II-B3, after [37]): the router
// generates each update once into a common bounded queue and replicates it
// to every member session. A queue slot is cleared only after ALL members
// have written that message into their TCP connection, so the whole group
// advances at the pace of its slowest member — and stalls entirely while a
// failed member keeps the head pinned, until that member is removed.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace tdat {

class PeerGroup {
 public:
  // `messages` is the shared outbound stream (serialized BGP messages);
  // `queue_capacity` is how many un-cleared messages may be pending.
  PeerGroup(std::vector<std::vector<std::uint8_t>> messages,
            std::size_t queue_capacity)
      : messages_(std::move(messages)), capacity_(queue_capacity) {
    TDAT_EXPECTS(capacity_ > 0);
  }

  // Registers a member; must happen before any member consumes.
  [[nodiscard]] std::size_t attach() {
    next_.push_back(0);
    active_.push_back(true);
    return next_.size() - 1;
  }

  // The message the member should send next, if it is currently available
  // in the shared queue window. nullopt = either the member finished, or it
  // is blocked waiting for slower members to clear queue space.
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> peek(std::size_t member) const {
    TDAT_EXPECTS(member < next_.size());
    const std::size_t i = next_[member];
    if (i >= messages_.size()) return std::nullopt;  // done
    if (i >= base_ + capacity_) return std::nullopt;  // group queue full
    return std::span<const std::uint8_t>(messages_[i]);
  }

  // Marks the member's current message as written to its connection.
  void consume(std::size_t member) {
    TDAT_EXPECTS(member < next_.size());
    TDAT_EXPECTS(active_[member]);
    ++next_[member];
    advance();
  }

  // Removes a (failed) member; its progress no longer constrains the queue.
  void remove(std::size_t member) {
    TDAT_EXPECTS(member < next_.size());
    active_[member] = false;
    advance();
  }

  [[nodiscard]] bool finished(std::size_t member) const {
    return next_[member] >= messages_.size();
  }
  [[nodiscard]] std::size_t message_count() const { return messages_.size(); }
  [[nodiscard]] std::size_t queue_base() const { return base_; }
  [[nodiscard]] std::size_t member_position(std::size_t member) const {
    return next_[member];
  }

 private:
  void advance() {
    std::size_t min_next = messages_.size();
    bool any_active = false;
    for (std::size_t m = 0; m < next_.size(); ++m) {
      if (!active_[m]) continue;
      any_active = true;
      min_next = std::min(min_next, next_[m]);
    }
    base_ = any_active ? min_next : messages_.size();
  }

  std::vector<std::vector<std::uint8_t>> messages_;
  std::size_t capacity_;
  std::size_t base_ = 0;  // oldest un-cleared message
  std::vector<std::size_t> next_;
  std::vector<bool> active_;
};

}  // namespace tdat
