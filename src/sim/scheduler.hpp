// Discrete-event scheduler: virtual time in microseconds, min-heap of
// callbacks. Events at equal times fire in scheduling order (FIFO), which
// keeps simulations deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/assert.hpp"
#include "util/metrics.hpp"
#include "util/time.hpp"
#include "util/trace.hpp"

namespace tdat {

class Scheduler {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] Micros now() const { return now_; }

  void at(Micros t, Callback fn) {
    TDAT_EXPECTS(t >= now_);
    queue_.push(Entry{t, next_seq_++, std::move(fn)});
  }

  void after(Micros delay, Callback fn) {
    TDAT_EXPECTS(delay >= 0);
    at(now_ + delay, std::move(fn));
  }

  // Runs events until the queue drains or virtual time would pass `t_end`.
  // Events scheduled exactly at t_end still run.
  void run_until(Micros t_end) {
    TDAT_TRACE_SPAN("sim.run_until", "sim", "t_end_us",
                    static_cast<std::int64_t>(t_end));
    while (!queue_.empty() && queue_.top().at <= t_end) {
      step();
    }
    now_ = std::max(now_, t_end);
  }

  void run_to_completion() {
    TDAT_TRACE_SPAN("sim.run_to_completion", "sim");
    while (!queue_.empty()) step();
  }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Entry {
    Micros at;
    std::uint64_t seq;
    Callback fn;

    bool operator>(const Entry& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  void step() {
    // One relaxed inc per event; the lookup happens once per process
    // (registry addresses are stable, see util/metrics.hpp).
    static Counter& events_fired = metrics().counter("sim.events");
    events_fired.inc();
    // Move out before firing: the callback may schedule new events.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = e.at;
    e.fn();
  }

  Micros now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
};

}  // namespace tdat
