#include "sim/bgp_apps.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace tdat {

std::vector<std::vector<std::uint8_t>> serialize_updates(
    const std::vector<BgpUpdate>& updates) {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(updates.size());
  for (const BgpUpdate& upd : updates) {
    out.push_back(serialize_message(BgpMessage{upd}));
  }
  return out;
}

// ---------------------------------------------------------------- sender --

BgpSenderApp::BgpSenderApp(Scheduler& sched, BgpSenderConfig config,
                           std::vector<std::vector<std::uint8_t>> messages)
    : sched_(sched), config_(config), own_messages_(std::move(messages)) {}

BgpSenderApp::BgpSenderApp(Scheduler& sched, BgpSenderConfig config,
                           PeerGroup* group)
    : sched_(sched), config_(config), group_(group) {
  TDAT_EXPECTS(group_ != nullptr);
  member_id_ = group_->attach();
}

Result<Unit> BgpSenderApp::start(std::uint32_t remote_ip,
                                 std::uint16_t remote_port) {
  if (endpoint_ == nullptr) {
    return Err<Unit>("bgp sender: started before bind()");
  }
  running_ = true;
  last_heard_ = sched_.now();
  auto connected = endpoint_->connect(remote_ip, remote_port);
  if (!connected.ok()) {
    running_ = false;
    return connected;
  }
  check_hold_timer();
  return Unit{};
}

std::optional<std::span<const std::uint8_t>> BgpSenderApp::next_message() const {
  if (group_ != nullptr) return group_->peek(member_id_);
  if (own_next_ >= own_messages_.size()) return std::nullopt;
  return std::span<const std::uint8_t>(own_messages_[own_next_]);
}

void BgpSenderApp::consume_message() {
  if (group_ != nullptr) {
    group_->consume(member_id_);
  } else {
    ++own_next_;
  }
}

Result<Unit> BgpSenderApp::enqueue(
    std::vector<std::vector<std::uint8_t>> messages) {
  if (group_ != nullptr) {
    return Err<Unit>("bgp sender: enqueue on a peer-grouped sender"
                     " (the group owns the queue)");
  }
  own_messages_.insert(own_messages_.end(),
                       std::make_move_iterator(messages.begin()),
                       std::make_move_iterator(messages.end()));
  finished_ = false;
  if (!config_.timer_driven) pump();
  return Unit{};
}

void BgpSenderApp::on_connected() {
  BgpOpen open;
  open.my_as = config_.my_as;
  open.bgp_id = config_.bgp_id;
  open.hold_time = static_cast<std::uint16_t>(config_.hold_time / kMicrosPerSec);
  const auto open_bytes = serialize_message(BgpMessage{open});
  (void)endpoint_->send(open_bytes);
  const auto ka = serialize_message(BgpMessage{BgpKeepAlive{}});
  (void)endpoint_->send(ka);

  if (config_.timer_driven) {
    sched_.after(config_.timer_interval, [this] { on_pacing_tick(); });
  } else {
    pump();
  }
  sched_.after(config_.keepalive_interval, [this] { keepalive_tick(); });
}

void BgpSenderApp::keepalive_tick() {
  if (!running_) return;
  // Keepalives are what a blocked peer-group member keeps exchanging while
  // its updates are stalled (§II-B3) — send them regardless of pump state.
  if (endpoint_->established()) {
    const auto ka = serialize_message(BgpMessage{BgpKeepAlive{}});
    if (endpoint_->send_space() >= ka.size()) (void)endpoint_->send(ka);
  }
  sched_.after(config_.keepalive_interval, [this] { keepalive_tick(); });
}

void BgpSenderApp::pump() {
  if (!running_ || endpoint_ == nullptr || !endpoint_->established()) return;
  // Batch whole messages into one socket write, like a real BGP speaker
  // filling its output buffer: TCP then cuts MSS-sized segments instead of
  // one tiny segment per message.
  std::vector<std::uint8_t> batch;
  std::size_t space = endpoint_->send_space();
  while (true) {
    const auto msg = next_message();
    if (!msg || batch.size() + msg->size() > space) break;
    batch.insert(batch.end(), msg->begin(), msg->end());
    consume_message();
  }
  if (!batch.empty()) (void)endpoint_->send(batch);
  const bool done = group_ != nullptr ? group_->finished(member_id_)
                                      : own_next_ >= own_messages_.size();
  if (done && !finished_) {
    finished_ = true;
    finished_at_ = sched_.now();
  }
}

void BgpSenderApp::on_pacing_tick() {
  if (!running_) return;
  if (endpoint_->established()) {
    std::vector<std::uint8_t> batch;
    const std::size_t space = endpoint_->send_space();
    std::size_t sent = 0;
    while (sent < config_.msgs_per_tick) {
      const auto msg = next_message();
      if (!msg || batch.size() + msg->size() > space) break;
      batch.insert(batch.end(), msg->begin(), msg->end());
      consume_message();
      ++sent;
    }
    if (!batch.empty()) (void)endpoint_->send(batch);
    const bool done = group_ != nullptr ? group_->finished(member_id_)
                                        : own_next_ >= own_messages_.size();
    if (done && !finished_) {
      finished_ = true;
      finished_at_ = sched_.now();
    }
  }
  sched_.after(config_.timer_interval, [this] { on_pacing_tick(); });
}

void BgpSenderApp::on_send_space() {
  if (!config_.timer_driven) pump();
}

void BgpSenderApp::on_data_available() {
  // Any message from the collector refreshes the hold timer.
  const auto bytes = endpoint_->read(endpoint_->available());
  const auto msgs = in_stream_.feed(bytes, sched_.now());
  if (!msgs.empty() || !bytes.empty()) last_heard_ = sched_.now();
}

void BgpSenderApp::on_reset() {
  running_ = false;
  if (group_ != nullptr && !failed_) group_->remove(member_id_);
}

void BgpSenderApp::check_hold_timer() {
  if (!running_) return;
  if (sched_.now() - last_heard_ > config_.hold_time) {
    fail_session();
    return;
  }
  sched_.after(kMicrosPerSec, [this] { check_hold_timer(); });
}

void BgpSenderApp::fail_session() {
  TDAT_LOG_WARN("bgp sender: hold timer expired after %.1fs silence,"
                " tearing the session down",
                to_seconds(sched_.now() - last_heard_));
  failed_ = true;
  failed_at_ = sched_.now();
  running_ = false;
  endpoint_->abort();
  if (group_ != nullptr) group_->remove(member_id_);
}

// -------------------------------------------------------------- receiver --

BgpReceiverApp::BgpReceiverApp(Scheduler& sched, BgpReceiverConfig config,
                               CollectorHost* host)
    : sched_(sched), config_(config), host_(host) {
  if (host_ != nullptr) host_->attach(this);
}

Result<Unit> BgpReceiverApp::start(std::uint32_t remote_ip,
                                   std::uint16_t remote_port) {
  if (endpoint_ == nullptr) {
    return Err<Unit>("bgp receiver: started before bind()");
  }
  running_ = true;
  auto listening = endpoint_->listen(remote_ip, remote_port);
  if (!listening.ok()) {
    running_ = false;
    return listening;
  }
  if (host_ == nullptr) {
    sched_.after(config_.read_interval, [this] { self_tick(); });
  }
  sched_.after(config_.keepalive_interval, [this] { keepalive_tick(); });
  return Unit{};
}

void BgpReceiverApp::on_connected() {}

void BgpReceiverApp::on_data_available() {
  // Reading is paced by drain(); data sits in the socket buffer until then,
  // which is exactly how a loaded collector closes its advertised window.
}

void BgpReceiverApp::on_reset() { running_ = false; }

std::size_t BgpReceiverApp::drain(std::size_t budget) {
  if (!running_ || dead_ || endpoint_ == nullptr) return 0;
  const std::size_t want = std::min(budget, endpoint_->available());
  if (want == 0) return 0;
  const auto bytes = endpoint_->read(want);
  const auto msgs = in_stream_.feed(bytes, sched_.now());
  for (const TimedBgpMessage& tm : msgs) {
    if (tm.msg.type() == BgpType::kOpen && !sent_open_) {
      sent_open_ = true;
      BgpOpen open;
      open.my_as = config_.my_as;
      open.bgp_id = config_.bgp_id;
      (void)endpoint_->send(serialize_message(BgpMessage{open}));
      (void)endpoint_->send(serialize_message(BgpMessage{BgpKeepAlive{}}));
    }
    archive_.push_back(tm);
  }
  return bytes.size();
}

void BgpReceiverApp::die() {
  dead_ = true;
  running_ = false;
  if (endpoint_ != nullptr) endpoint_->die();
}

void BgpReceiverApp::self_tick() {
  if (!running_ || dead_) return;
  (void)drain(config_.read_chunk);
  sched_.after(config_.read_interval, [this] { self_tick(); });
}

void BgpReceiverApp::keepalive_tick() {
  if (!running_ || dead_) return;
  if (endpoint_->established()) {
    (void)endpoint_->send(serialize_message(BgpMessage{BgpKeepAlive{}}));
  }
  sched_.after(config_.keepalive_interval, [this] { keepalive_tick(); });
}

// ------------------------------------------------------------------ host --

CollectorHost::CollectorHost(Scheduler& sched, std::int64_t read_rate,
                             Micros tick)
    : sched_(sched), rate_(read_rate), interval_(tick) {
  TDAT_EXPECTS(rate_ > 0);
  TDAT_EXPECTS(interval_ > 0);
}

void CollectorHost::start() {
  if (running_) return;
  running_ = true;
  sched_.after(interval_, [this] { tick(); });
}

void CollectorHost::tick() {
  std::int64_t budget = rate_ * interval_ / kMicrosPerSec;
  // Round-robin in MSS-sized slices so no session starves.
  constexpr std::size_t kSlice = 1460;
  bool progress = true;
  while (budget > 0 && progress && !apps_.empty()) {
    progress = false;
    for (std::size_t i = 0; i < apps_.size() && budget > 0; ++i) {
      BgpReceiverApp* app = apps_[(rr_ + i) % apps_.size()];
      const std::size_t got = app->drain(
          std::min<std::size_t>(kSlice, static_cast<std::size_t>(budget)));
      if (got > 0) {
        budget -= static_cast<std::int64_t>(got);
        progress = true;
      }
    }
  }
  rr_ = apps_.empty() ? 0 : (rr_ + 1) % apps_.size();
  sched_.after(interval_, [this] { tick(); });
}

}  // namespace tdat
