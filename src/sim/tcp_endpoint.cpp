#include "sim/tcp_endpoint.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace tdat {
namespace {

constexpr Micros kRttGranularity = 10 * kMicrosPerMilli;  // RFC 6298 G

}  // namespace

TcpEndpoint::TcpEndpoint(Scheduler& sched, TcpConfig config, TcpApp* app,
                         std::string name)
    : sched_(sched), config_(config), app_(app), name_(std::move(name)) {
  TDAT_EXPECTS(app_ != nullptr);
  TDAT_EXPECTS(config_.mss > 0);
  rto_ = std::max<Micros>(kMicrosPerSec, config_.min_rto);
}

Result<Unit> TcpEndpoint::connect(std::uint32_t remote_ip,
                                  std::uint16_t remote_port) {
  if (state_ != State::kClosed) {
    TDAT_LOG_ERROR("sim tcp %s: connect on a non-closed endpoint",
                   name_.c_str());
    return Err<Unit>("sim tcp " + name_ + ": connect on a non-closed endpoint");
  }
  remote_ip_ = remote_ip;
  remote_port_ = remote_port;
  state_ = State::kSynSent;
  emit(TcpFlags{.syn = true}, 0, {}, /*is_syn_seq=*/true);
  arm_rto();
  return Unit{};
}

Result<Unit> TcpEndpoint::listen(std::uint32_t remote_ip,
                                 std::uint16_t remote_port) {
  if (state_ != State::kClosed) {
    TDAT_LOG_ERROR("sim tcp %s: listen on a non-closed endpoint",
                   name_.c_str());
    return Err<Unit>("sim tcp " + name_ + ": listen on a non-closed endpoint");
  }
  remote_ip_ = remote_ip;
  remote_port_ = remote_port;
  state_ = State::kListen;
  return Unit{};
}

std::size_t TcpEndpoint::send(std::span<const std::uint8_t> bytes) {
  const std::size_t accepted = std::min(bytes.size(), send_space());
  send_buf_.insert(send_buf_.end(), bytes.begin(), bytes.begin() + accepted);
  if (state_ == State::kEstablished) try_transmit();
  return accepted;
}

std::size_t TcpEndpoint::send_space() const {
  return config_.send_buf_capacity - std::min(config_.send_buf_capacity, send_buf_.size());
}

std::vector<std::uint8_t> TcpEndpoint::read(std::size_t max) {
  const std::size_t free_before =
      config_.recv_buf_capacity -
      std::min(config_.recv_buf_capacity, recv_buf_.size());
  const std::size_t n = std::min(max, recv_buf_.size());
  std::vector<std::uint8_t> out(recv_buf_.begin(), recv_buf_.begin() + n);
  recv_buf_.erase(recv_buf_.begin(), recv_buf_.begin() + n);
  const std::size_t free_after =
      config_.recv_buf_capacity -
      std::min(config_.recv_buf_capacity, recv_buf_.size());
  // Window-update ACK when the usable window crosses one MSS open.
  if (state_ == State::kEstablished && !dead_ &&
      free_before < config_.mss && free_after >= config_.mss) {
    send_ack_now();
  }
  return out;
}

void TcpEndpoint::abort() {
  if (state_ == State::kClosed) return;
  if (!dead_) emit(TcpFlags{.rst = true}, snd_nxt_, {});
  state_ = State::kClosed;
  cancel_rto();
  ++persist_gen_;
  persist_armed_ = false;
  ++delack_gen_;
}

void TcpEndpoint::die() {
  dead_ = true;
  cancel_rto();
  ++persist_gen_;
  persist_armed_ = false;
  ++delack_gen_;
}

std::uint16_t TcpEndpoint::advertised_window_raw() const {
  // Out-of-order segments occupy receive buffer space too (they are held
  // for reassembly), so they shrink the advertised window like in-order
  // data the application has not read yet.
  const std::size_t occupied =
      recv_buf_.size() + (reasm_ ? reasm_->buffered_bytes() : 0);
  const std::size_t used = std::min(config_.recv_buf_capacity, occupied);
  std::size_t free = config_.recv_buf_capacity - used;
  // Receiver-side SWS avoidance (RFC 1122): never advertise a silly window;
  // hold at zero until at least an MSS (or half the buffer) opens up.
  if (free < std::min<std::size_t>(config_.mss, config_.recv_buf_capacity / 2)) {
    free = 0;
  }
  if (wscale_enabled_ && config_.window_scale) {
    return static_cast<std::uint16_t>(
        std::min<std::size_t>(free >> *config_.window_scale, 0xffff));
  }
  return static_cast<std::uint16_t>(std::min<std::size_t>(free, 0xffff));
}

void TcpEndpoint::emit(TcpFlags flags, std::int64_t stream_offset,
                       std::span<const std::uint8_t> payload, bool is_syn_seq) {
  if (!output_ || dead_) return;
  TcpSegmentSpec spec;
  spec.src_ip = config_.ip;
  spec.dst_ip = remote_ip_;
  spec.src_port = config_.port;
  spec.dst_port = remote_port_;
  spec.seq = is_syn_seq ? config_.isn : wire_seq(stream_offset);
  spec.flags = flags;
  if (flags.syn) {
    spec.mss = config_.mss;
    spec.window_scale = config_.window_scale;
  }
  if (flags.ack && reasm_) {
    spec.ack = peer_isn_ + 1 + static_cast<std::uint32_t>(reasm_->next_expected());
  } else if (flags.ack) {
    spec.ack = peer_isn_ + 1;  // handshake ACK before data
  }
  spec.window = advertised_window_raw();
  spec.ip_ident = ip_ident_++;
  spec.payload = payload;
  last_advertised_raw_ = spec.window;
  output_(make_sim_packet(spec));
}

void TcpEndpoint::send_ack_now() {
  delack_pending_ = false;
  ++delack_gen_;
  emit(TcpFlags{.ack = true}, snd_nxt_, {});
}

std::int64_t TcpEndpoint::usable_window() const {
  return std::min(cwnd_, peer_window_) - flight_size();
}

void TcpEndpoint::try_transmit() {
  if (state_ != State::kEstablished || dead_) return;
  const std::int64_t buffered_end = snd_una_ + static_cast<std::int64_t>(send_buf_.size());
  while (snd_nxt_ < buffered_end && usable_window() > 0) {
    const std::int64_t usable = usable_window();
    const std::size_t len = static_cast<std::size_t>(
        std::min<std::int64_t>({config_.mss, buffered_end - snd_nxt_, usable}));
    if (len == 0) break;
    // Nagle: hold back a sub-MSS segment while data is outstanding, except
    // when it would fill the usable window completely (window-limited flows
    // must not stall on the peer's delayed ACK).
    if (config_.nagle && len < config_.mss && flight_size() > 0 &&
        static_cast<std::int64_t>(len) != usable) {
      break;
    }
    transmit_segment(snd_nxt_, len, /*retransmit=*/false);
    snd_nxt_ += static_cast<std::int64_t>(len);
  }
  if (flight_size() > 0 && !rto_armed_) arm_rto();
  // Zero-window deadlock prevention: persist probes.
  if (peer_window_ == 0 && flight_size() == 0 && snd_nxt_ < buffered_end &&
      !persist_armed_) {
    arm_persist();
  }
}

void TcpEndpoint::transmit_segment(std::int64_t offset, std::size_t len,
                                   bool retransmit) {
  TDAT_EXPECTS(offset >= snd_una_);
  const std::size_t start = static_cast<std::size_t>(offset - snd_una_);
  TDAT_EXPECTS(start + len <= send_buf_.size());
  std::vector<std::uint8_t> payload(send_buf_.begin() + start,
                                    send_buf_.begin() + start + len);
  emit(TcpFlags{.ack = true, .psh = true}, offset, payload);
  if (retransmit) {
    ++retransmits_;
    // Karn's algorithm: a retransmission invalidates the pending RTT probe.
    if (rtt_probe_armed_ && rtt_probe_end_ > offset) rtt_probe_armed_ = false;
  } else if (!rtt_probe_armed_) {
    rtt_probe_armed_ = true;
    rtt_probe_end_ = offset + static_cast<std::int64_t>(len);
    rtt_probe_ts_ = sched_.now();
  }
}

void TcpEndpoint::arm_rto() {
  rto_armed_ = true;
  const std::uint64_t gen = ++rto_gen_;
  sched_.after(rto_, [this, gen] {
    if (gen == rto_gen_ && rto_armed_ && !dead_) on_rto();
  });
}

void TcpEndpoint::on_rto() {
  rto_armed_ = false;
  if (state_ == State::kSynSent) {
    emit(TcpFlags{.syn = true}, 0, {}, true);
    rto_ = std::min(static_cast<Micros>(static_cast<double>(rto_) * config_.rto_backoff),
                    config_.max_rto);
    arm_rto();
    return;
  }
  if (state_ == State::kSynReceived) {
    emit(TcpFlags{.syn = true, .ack = true}, 0, {}, true);
    arm_rto();
    return;
  }
  if (flight_size() <= 0) return;

  ssthresh_ = std::max<std::int64_t>(flight_size() / 2, 2 * config_.mss);
  cwnd_ = config_.mss;
  dupacks_ = 0;
  // Recover hole-by-hole from snd_una_ (NewReno-style recovery window).
  in_recovery_ = true;
  recovery_point_ = snd_nxt_;
  const std::size_t len = static_cast<std::size_t>(std::min<std::int64_t>(
      {config_.mss, flight_size(), static_cast<std::int64_t>(send_buf_.size())}));
  if (len > 0) transmit_segment(snd_una_, len, /*retransmit=*/true);
  rto_ = std::min(static_cast<Micros>(static_cast<double>(rto_) * config_.rto_backoff),
                  config_.max_rto);
  arm_rto();
}

void TcpEndpoint::arm_persist() {
  persist_armed_ = true;
  ++persist_arms_;
  if (persist_backoff_ == 0) persist_backoff_ = config_.persist_initial;
  const std::uint64_t gen = ++persist_gen_;
  sched_.after(persist_backoff_, [this, gen] {
    if (gen == persist_gen_ && persist_armed_ && !dead_) on_persist();
  });
}

void TcpEndpoint::on_persist() {
  persist_armed_ = false;
  const std::int64_t buffered_end =
      snd_una_ + static_cast<std::int64_t>(send_buf_.size());
  if (peer_window_ > 0 || snd_nxt_ >= buffered_end) {
    persist_backoff_ = 0;
    try_transmit();
    return;
  }
  // Probe with one byte beyond the advertised window.
  if (snd_nxt_ == snd_una_) {
    transmit_segment(snd_nxt_, 1, /*retransmit=*/false);
    snd_nxt_ += 1;
    if (!rto_armed_) arm_rto();
  }
  persist_backoff_ = std::min(persist_backoff_ * 2, config_.max_rto);
  arm_persist();
}

void TcpEndpoint::update_rtt(Micros sample) {
  if (!have_rtt_) {
    srtt_ = sample;
    rttvar_ = sample / 2;
    have_rtt_ = true;
  } else {
    const Micros err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  rto_ = std::clamp(srtt_ + std::max(kRttGranularity, 4 * rttvar_),
                    config_.min_rto, config_.max_rto);
}

void TcpEndpoint::on_segment(const SimPacket& pkt) {
  if (dead_) return;
  if (pkt.flags.rst) {
    state_ = State::kClosed;
    cancel_rto();
    ++persist_gen_;
    persist_armed_ = false;
    app_->on_reset();
    return;
  }

  switch (state_) {
    case State::kClosed:
      return;
    case State::kListen: {
      if (!pkt.flags.syn || pkt.flags.ack) return;
      peer_isn_ = pkt.seq;
      if (pkt.mss) config_.mss = std::min(config_.mss, *pkt.mss);
      wscale_enabled_ = pkt.window_scale.has_value() && config_.window_scale.has_value();
      peer_wscale_ = wscale_enabled_ ? *pkt.window_scale : 0;
      reasm_.emplace(peer_isn_ + 1);
      peer_window_ = pkt.window;  // SYN windows are never scaled
      state_ = State::kSynReceived;
      emit(TcpFlags{.syn = true, .ack = true}, 0, {}, true);
      arm_rto();
      return;
    }
    case State::kSynSent: {
      if (!(pkt.flags.syn && pkt.flags.ack)) return;
      peer_isn_ = pkt.seq;
      if (pkt.mss) config_.mss = std::min(config_.mss, *pkt.mss);
      wscale_enabled_ = pkt.window_scale.has_value() && config_.window_scale.has_value();
      peer_wscale_ = wscale_enabled_ ? *pkt.window_scale : 0;
      reasm_.emplace(peer_isn_ + 1);
      peer_window_ = pkt.window;
      cancel_rto();
      rto_ = std::max<Micros>(kMicrosPerSec, config_.min_rto);
      state_ = State::kEstablished;
      cwnd_ = static_cast<std::int64_t>(config_.initial_cwnd_segments) * config_.mss;
      ssthresh_ = static_cast<std::int64_t>(config_.recv_buf_capacity) * 16;
      send_ack_now();
      app_->on_connected();
      try_transmit();
      return;
    }
    case State::kSynReceived: {
      if (pkt.flags.ack && pkt.ack == config_.isn + 1) {
        cancel_rto();
        rto_ = std::max<Micros>(kMicrosPerSec, config_.min_rto);
        state_ = State::kEstablished;
        cwnd_ = static_cast<std::int64_t>(config_.initial_cwnd_segments) * config_.mss;
        ssthresh_ = static_cast<std::int64_t>(config_.recv_buf_capacity) * 16;
        app_->on_connected();
        if (pkt.payload_len > 0) on_data(pkt);
        try_transmit();
      }
      return;
    }
    case State::kEstablished:
      break;
  }

  if (pkt.flags.ack) on_ack(pkt);
  if (pkt.payload_len > 0) on_data(pkt);
  if (pkt.flags.fin) {
    // Minimal teardown: acknowledge; the apps in this simulator end sessions
    // via abort()/die(), graceful close appears only at trace tails.
    emit(TcpFlags{.ack = true}, snd_nxt_, {});
  }
}

void TcpEndpoint::on_ack(const SimPacket& pkt) {
  const std::int64_t ack_off =
      static_cast<std::int64_t>(static_cast<std::int32_t>(pkt.ack - config_.isn - 1));
  const std::int64_t old_window = peer_window_;
  peer_window_ = static_cast<std::int64_t>(pkt.window) << peer_wscale_;

  if (ack_off > snd_una_ && ack_off <= snd_nxt_) {
    const std::int64_t acked = ack_off - snd_una_;
    send_buf_.erase(send_buf_.begin(), send_buf_.begin() + acked);
    snd_una_ = ack_off;
    dupacks_ = 0;

    if (rtt_probe_armed_ && ack_off >= rtt_probe_end_) {
      update_rtt(sched_.now() - rtt_probe_ts_);
      rtt_probe_armed_ = false;
    }

    if (in_recovery_) {
      if (ack_off >= recovery_point_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        // NewReno partial ACK: the next hole starts at the new snd_una_.
        const std::size_t len = static_cast<std::size_t>(std::min<std::int64_t>(
            {config_.mss, recovery_point_ - snd_una_,
             static_cast<std::int64_t>(send_buf_.size())}));
        if (len > 0) transmit_segment(snd_una_, len, /*retransmit=*/true);
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += std::min<std::int64_t>(acked, config_.mss);  // slow start
    } else {
      cwnd_ += std::max<std::int64_t>(1, static_cast<std::int64_t>(config_.mss) *
                                             config_.mss / cwnd_);
    }

    if (flight_size() > 0) {
      arm_rto();
    } else {
      cancel_rto();
    }
    app_->on_send_space();
  } else if (ack_off == snd_una_ && flight_size() > 0 && pkt.payload_len == 0 &&
             peer_window_ == old_window) {
    ++dupacks_;
    if (dupacks_ == 3 && !in_recovery_) {
      enter_fast_retransmit();
    } else if (in_recovery_ && dupacks_ > 3) {
      cwnd_ += config_.mss;  // inflation
    }
  }

  // Window reopened while we were probing a zero window.
  if (old_window == 0 && peer_window_ > 0 && persist_armed_) {
    persist_armed_ = false;
    ++persist_gen_;
    persist_backoff_ = 0;
    if (config_.zero_window_probe_bug && snd_nxt_ == snd_una_ &&
        !send_buf_.empty()) {
      // Vendor bug (§IV-B): the probe segment was already created when the
      // window-opening ACK arrived; the sender discards it but the sequence
      // space is consumed, so the byte is never transmitted until loss
      // recovery resends it.
      snd_nxt_ += 1;
      ++bug_triggers_;
      if (!rto_armed_) arm_rto();
    }
  }
  try_transmit();
}

void TcpEndpoint::enter_fast_retransmit() {
  ssthresh_ = std::max<std::int64_t>(flight_size() / 2, 2 * config_.mss);
  in_recovery_ = true;
  recovery_point_ = snd_nxt_;
  const std::size_t len = static_cast<std::size_t>(std::min<std::int64_t>(
      {config_.mss, flight_size(), static_cast<std::int64_t>(send_buf_.size())}));
  if (len > 0) transmit_segment(snd_una_, len, /*retransmit=*/true);
  cwnd_ = ssthresh_ + 3 * config_.mss;
  arm_rto();
}

void TcpEndpoint::on_data(const SimPacket& pkt) {
  TDAT_EXPECTS(reasm_.has_value());
  // Quickack after idle (Linux behaviour): a burst following a quiet period
  // gets immediate ACKs for its first few segments.
  if (last_data_rx_ < 0 || sched_.now() - last_data_rx_ >= config_.delack_timeout) {
    quickack_budget_ = config_.quickack_segments;
  }
  last_data_rx_ = sched_.now();
  const std::int64_t before = reasm_->next_expected();
  auto chunks = reasm_->feed(pkt.seq, pkt.payload(), sched_.now());
  bool delivered_any = false;
  for (StreamChunk& chunk : chunks) {
    recv_buf_.insert(recv_buf_.end(), chunk.bytes.begin(), chunk.bytes.end());
    delivered_ += static_cast<std::int64_t>(chunk.bytes.size());
    delivered_any = true;
  }

  if (reasm_->next_expected() == before || reasm_->buffered_bytes() > 0) {
    // Out-of-order or duplicate: immediate duplicate ACK (RFC 5681).
    send_ack_now();
  } else if (config_.delayed_ack && quickack_budget_ <= 0) {
    if (delack_pending_) {
      send_ack_now();  // every second segment
    } else {
      delack_pending_ = true;
      const std::uint64_t gen = ++delack_gen_;
      sched_.after(config_.delack_timeout, [this, gen] {
        if (gen == delack_gen_ && delack_pending_ && !dead_) send_ack_now();
      });
    }
  } else {
    if (quickack_budget_ > 0) --quickack_budget_;
    send_ack_now();
  }

  if (delivered_any) app_->on_data_available();
}

}  // namespace tdat
