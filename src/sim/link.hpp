// One-way link model: serialization at a finite rate, a finite tail-drop
// queue (the "interface buffer" whose exhaustion produces the bursty,
// receiver-local losses of §II-B2), propagation delay, and optional random
// loss. A Link may be shared by many sessions (the collector's ingress
// interface carries every concurrent table transfer).
#pragma once

#include <cstdint>
#include <functional>

#include "sim/scheduler.hpp"
#include "sim/sim_packet.hpp"
#include "util/rng.hpp"

namespace tdat {

struct LinkConfig {
  Micros propagation_delay = 100;      // one-way, microseconds
  std::int64_t rate_bytes_per_sec = 0; // 0 = infinitely fast serialization
  std::size_t queue_packets = 1000;    // tail-drop capacity (incl. in service)
  double random_loss = 0.0;            // iid drop probability
};

class Link {
 public:
  using Deliver = std::function<void(SimPacket)>;

  Link(Scheduler& sched, const LinkConfig& config, Rng rng)
      : sched_(sched), config_(config), rng_(std::move(rng)) {}

  // Queues the packet; on the far side `deliver` fires at arrival time.
  void send(SimPacket pkt, Deliver deliver);

  struct Stats {
    std::uint64_t delivered = 0;
    std::uint64_t dropped_queue = 0;
    std::uint64_t dropped_random = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queue_depth() const { return in_queue_; }

 private:
  Scheduler& sched_;
  LinkConfig config_;
  Rng rng_;
  Stats stats_;
  Micros busy_until_ = 0;
  std::size_t in_queue_ = 0;
};

}  // namespace tdat
