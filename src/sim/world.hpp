// SimWorld: assembles complete monitoring scenarios shaped like Fig. 1/2 —
// operational routers (senders) peering with a collector (receiver), a
// sniffer tap co-located with the collector, an upstream path per session
// and an optionally *shared* downstream path + collector read capacity so
// concurrent transfers contend exactly where they do in the paper (the
// collector's interface queue and its BGP process).
//
//   sender ep --> [upstream link] --> TAP --> [downstream link] --> receiver ep
//   sender ep <-- [upstream rev ] <-- TAP <-- [downstream rev ] <-- receiver ep
#pragma once

#include <memory>
#include <vector>

#include "sim/bgp_apps.hpp"
#include "sim/link.hpp"
#include "sim/sniffer.hpp"

namespace tdat {

struct SessionSpec {
  // Addressing (filled with defaults by add_session when left zero).
  std::uint32_t sender_ip = 0;
  std::uint16_t sender_port = 0;
  std::uint32_t receiver_ip = 0x0a090909;  // 10.9.9.9
  std::uint16_t receiver_port = 179;

  TcpConfig sender_tcp;    // ip/port/isn filled by add_session
  TcpConfig receiver_tcp;
  BgpSenderConfig bgp;
  BgpReceiverConfig collector;

  // Upstream path (sender <-> sniffer): the wide-area part.
  LinkConfig up_fwd{.propagation_delay = 5 * kMicrosPerMilli};
  LinkConfig up_rev{.propagation_delay = 5 * kMicrosPerMilli};
  // Downstream path (sniffer <-> receiver): local. Ignored when the world
  // has a shared downstream.
  LinkConfig down_fwd{.propagation_delay = 50};
  LinkConfig down_rev{.propagation_delay = 50};
};

class SimWorld {
 public:
  // `capture_drop` is the sniffer's probability of missing a packet
  // (tcpdump drops, §II-A); the packet still reaches its destination.
  explicit SimWorld(std::uint64_t seed, double capture_drop = 0.0);

  [[nodiscard]] Scheduler& scheduler() { return sched_; }
  [[nodiscard]] SnifferTap& tap() { return *tap_; }

  // Routes every session's downstream through one shared link pair
  // (the collector's interface). Call before add_session.
  void use_shared_downstream(const LinkConfig& fwd, const LinkConfig& rev);
  // Shares collector read capacity across sessions. Call before add_session.
  void use_collector_host(std::int64_t read_rate_bytes_per_sec);

  // Adds a sender-collector session with its own message queue, or one that
  // consumes from a peer group. Returns the session index.
  std::size_t add_session(SessionSpec spec,
                          std::vector<std::vector<std::uint8_t>> messages);
  std::size_t add_session(SessionSpec spec, PeerGroup* group);

  // Schedules session start (TCP connect, then table transfer) at `at`.
  void start_session(std::size_t index, Micros at);

  void run_until(Micros t) { sched_.run_until(t); }

  [[nodiscard]] BgpSenderApp& sender(std::size_t i) { return *sessions_[i]->sender_app; }
  [[nodiscard]] BgpReceiverApp& receiver(std::size_t i) { return *sessions_[i]->receiver_app; }
  [[nodiscard]] TcpEndpoint& sender_endpoint(std::size_t i) { return *sessions_[i]->sender_ep; }
  [[nodiscard]] TcpEndpoint& receiver_endpoint(std::size_t i) { return *sessions_[i]->receiver_ep; }
  [[nodiscard]] Link& upstream_link(std::size_t i) { return *sessions_[i]->up_fwd; }
  [[nodiscard]] Link& downstream_link(std::size_t i) {
    return shared_down_fwd_ ? *shared_down_fwd_ : *sessions_[i]->down_fwd;
  }
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }

  [[nodiscard]] PcapFile take_trace() { return tap_->take_trace(); }

 private:
  struct Session {
    SessionSpec spec;
    std::unique_ptr<BgpSenderApp> sender_app;
    std::unique_ptr<BgpReceiverApp> receiver_app;
    std::unique_ptr<TcpEndpoint> sender_ep;
    std::unique_ptr<TcpEndpoint> receiver_ep;
    std::unique_ptr<Link> up_fwd;
    std::unique_ptr<Link> up_rev;
    std::unique_ptr<Link> down_fwd;  // null when shared
    std::unique_ptr<Link> down_rev;
  };

  std::size_t wire_session(SessionSpec spec,
                           std::unique_ptr<BgpSenderApp> sender_app);

  Scheduler sched_;
  Rng rng_;
  std::unique_ptr<SnifferTap> tap_;
  std::unique_ptr<Link> shared_down_fwd_;
  std::unique_ptr<Link> shared_down_rev_;
  std::unique_ptr<CollectorHost> host_;
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace tdat
