#include "sim/sim_packet.hpp"

namespace tdat {

SimPacket make_sim_packet(const TcpSegmentSpec& spec) {
  SimPacket pkt;
  auto frame = std::make_shared<std::vector<std::uint8_t>>(encode_tcp_frame(spec));
  pkt.src_ip = spec.src_ip;
  pkt.dst_ip = spec.dst_ip;
  pkt.src_port = spec.src_port;
  pkt.dst_port = spec.dst_port;
  pkt.seq = spec.seq;
  pkt.ack = spec.ack;
  pkt.window = spec.window;
  pkt.flags = spec.flags;
  pkt.mss = spec.mss;
  pkt.window_scale = spec.window_scale;
  pkt.payload_len = spec.payload.size();
  pkt.payload_offset = frame->size() - spec.payload.size();
  pkt.frame = std::move(frame);
  return pkt;
}

}  // namespace tdat
