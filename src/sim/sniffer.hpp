// The passive sniffer of Fig. 2: co-located with the collector, it records
// every pass-through packet (both directions) into a pcap trace. A drop
// probability models tcpdump's occasional capture losses, which the paper
// notes leave void periods in the trace.
#pragma once

#include "pcap/pcap_file.hpp"
#include "sim/scheduler.hpp"
#include "sim/sim_packet.hpp"
#include "util/rng.hpp"

namespace tdat {

class SnifferTap {
 public:
  SnifferTap(Scheduler& sched, Rng rng, double drop_probability = 0.0)
      : sched_(sched), rng_(std::move(rng)), drop_(drop_probability) {}

  // Records the packet at current simulation time. Returns false if the
  // capture dropped it (the packet still flows through the network).
  bool record(const SimPacket& pkt) {
    if (rng_.chance(drop_)) {
      ++capture_drops_;
      return false;
    }
    PcapRecord rec;
    rec.ts = sched_.now();
    rec.orig_len = static_cast<std::uint32_t>(pkt.wire_size());
    rec.data = *pkt.frame;
    trace_.records.push_back(std::move(rec));
    return true;
  }

  [[nodiscard]] const PcapFile& trace() const { return trace_; }
  [[nodiscard]] PcapFile take_trace() { return std::move(trace_); }
  [[nodiscard]] std::uint64_t capture_drops() const { return capture_drops_; }

 private:
  Scheduler& sched_;
  Rng rng_;
  double drop_;
  PcapFile trace_;
  std::uint64_t capture_drops_ = 0;
};

}  // namespace tdat
