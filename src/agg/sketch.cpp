#include "agg/sketch.hpp"

namespace tdat::agg {

void encode_sketch(const HistogramSnapshot& s, ByteWriter& w) {
  w.u64le(s.count);
  w.i64le(s.sum);
  w.i64le(s.count > 0 ? s.min : 0);
  w.i64le(s.count > 0 ? s.max : 0);
  std::uint8_t occupied = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (s.buckets[i] > 0) ++occupied;
  }
  w.u8(occupied);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (s.buckets[i] == 0) continue;
    w.u8(static_cast<std::uint8_t>(i));
    w.u64le(s.buckets[i]);
  }
}

HistogramSnapshot decode_sketch(ByteReader& r) {
  HistogramSnapshot s;
  s.count = r.u64le();
  s.sum = r.i64le();
  s.min = r.i64le();
  s.max = r.i64le();
  const std::uint8_t occupied = r.u8();
  int last = -1;
  std::uint64_t total = 0;
  for (std::uint8_t n = 0; n < occupied && r.ok(); ++n) {
    const std::uint8_t idx = r.u8();
    const std::uint64_t cnt = r.u64le();
    if (idx >= kHistogramBuckets || static_cast<int>(idx) <= last ||
        cnt == 0) {
      r.fail();
      return s;
    }
    last = idx;
    s.buckets[idx] = cnt;
    total += cnt;
  }
  if (r.ok() && total != s.count) r.fail();
  return s;
}

}  // namespace tdat::agg
