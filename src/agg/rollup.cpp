#include "agg/rollup.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/bytes.hpp"
#include "util/time.hpp"

namespace tdat::agg {

namespace {

template <typename... Args>
void appendf(std::string& out, const char* fmt, Args... args) {
  char buf[512];
  const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          appendf(out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string row_label(const ConnectionRecord& c, RollupBy by) {
  switch (by) {
    case RollupBy::kPeer: return ipv4_to_string(c.peer_ip);
    case RollupBy::kAs: return "AS" + std::to_string(c.peer_as);
    case RollupBy::kCollector: return ipv4_to_string(c.collector_ip);
    case RollupBy::kRun: return c.run_id;
  }
  return "?";
}

std::string sketch_label(const SketchKey& k, RollupBy by) {
  switch (by) {
    case RollupBy::kPeer: return ipv4_to_string(k.peer_ip);
    case RollupBy::kAs: return "AS" + std::to_string(k.peer_as);
    case RollupBy::kCollector: return ipv4_to_string(k.collector_ip);
    case RollupBy::kRun: return k.run_id;
  }
  return "?";
}

// "" (the default run id) still needs a printable name in reports.
std::string display_label(const std::string& label) {
  return label.empty() ? "(default)" : label;
}

void fold_record(RollupRow& row, const ConnectionRecord& c) {
  row.connections += 1;
  if (c.quarantined()) row.quarantined += 1;
  if (!c.has_transfer()) return;
  row.transfers += 1;
  row.updates += c.updates;
  row.prefixes += c.prefixes;
  row.window_us += c.transfer_us();
  row.factors[c.dominant_factor()].dominant_connections += 1;
  for (std::size_t f = 0; f < kFactorCount; ++f) {
    row.factors[f].delay_us += c.factor_delay_us[f];
  }
}

std::string transfer_json(const HistogramSnapshot& s) {
  std::string out = "{\"count\": " + std::to_string(s.count);
  out += ", \"p50_us\": " + std::to_string(s.quantile(0.50));
  out += ", \"p90_us\": " + std::to_string(s.quantile(0.90));
  out += ", \"p99_us\": " + std::to_string(s.quantile(0.99));
  out += ", \"mean_us\": " + json_double(s.mean());
  out += ", \"max_us\": " + std::to_string(s.count > 0 ? s.max : 0);
  out += "}";
  return out;
}

void row_json(const RollupRow& row, std::string& out) {
  out += "{\"label\": \"" + json_escape(display_label(row.label)) + "\"";
  out += ", \"connections\": " + std::to_string(row.connections);
  out += ", \"transfers\": " + std::to_string(row.transfers);
  out += ", \"quarantined\": " + std::to_string(row.quarantined);
  out += ", \"updates\": " + std::to_string(row.updates);
  out += ", \"prefixes\": " + std::to_string(row.prefixes);
  out += ", \"transfer_time\": " + transfer_json(row.transfer_us);
  if (row.transfers > 0) {
    out += ", \"dominant_factor\": \"";
    out += to_string(static_cast<Factor>(row.dominant_factor()));
    out += "\"";
  }
  out += ", \"factors\": [";
  bool first = true;
  for (std::size_t f = 0; f < kFactorCount; ++f) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"";
    out += to_string(static_cast<Factor>(f));
    out += "\", \"dominant_transfers\": " +
           std::to_string(row.factors[f].dominant_connections);
    out += ", \"dominance_share\": " + json_double(row.dominance_share(f));
    out += ", \"delay_us\": " + std::to_string(row.factors[f].delay_us);
    out += ", \"delay_share\": " + json_double(row.delay_share(f));
    out += "}";
  }
  out += "]}";
}

void row_text(const RollupRow& row, std::string& out) {
  appendf(out,
          "  %-18s %5llu conns  %5llu transfers  p50 %8.2fs  p90 %8.2fs"
          "  p99 %8.2fs",
          display_label(row.label).c_str(),
          static_cast<unsigned long long>(row.connections),
          static_cast<unsigned long long>(row.transfers),
          to_seconds(row.transfer_us.quantile(0.50)),
          to_seconds(row.transfer_us.quantile(0.90)),
          to_seconds(row.transfer_us.quantile(0.99)));
  if (row.quarantined > 0) {
    appendf(out, "  (%llu quarantined)",
            static_cast<unsigned long long>(row.quarantined));
  }
  if (row.transfers > 0) {
    const std::size_t dom = row.dominant_factor();
    appendf(out, "  dominant: %s (%.0f%%)",
            to_string(static_cast<Factor>(dom)),
            100.0 * row.dominance_share(dom));
  }
  out += '\n';
}

}  // namespace

const char* to_string(RollupBy by) {
  switch (by) {
    case RollupBy::kPeer: return "peer";
    case RollupBy::kAs: return "as";
    case RollupBy::kCollector: return "collector";
    case RollupBy::kRun: return "run";
  }
  return "?";
}

double RollupRow::dominance_share(std::size_t f) const {
  return transfers > 0 ? static_cast<double>(factors[f].dominant_connections) /
                             static_cast<double>(transfers)
                       : 0.0;
}

double RollupRow::delay_share(std::size_t f) const {
  return window_us > 0 ? static_cast<double>(factors[f].delay_us) /
                             static_cast<double>(window_us)
                       : 0.0;
}

std::size_t RollupRow::dominant_factor() const {
  std::size_t best = 0;
  for (std::size_t f = 1; f < kFactorCount; ++f) {
    if (factors[f].dominant_connections >
        factors[best].dominant_connections) {
      best = f;
    }
  }
  return best;
}

void RollupRow::merge_from(const RollupRow& other) {
  connections += other.connections;
  transfers += other.transfers;
  quarantined += other.quarantined;
  updates += other.updates;
  prefixes += other.prefixes;
  window_us += other.window_us;
  transfer_us.merge_from(other.transfer_us);
  for (std::size_t f = 0; f < kFactorCount; ++f) {
    factors[f].dominant_connections += other.factors[f].dominant_connections;
    factors[f].delay_us += other.factors[f].delay_us;
  }
}

RollupReport build_rollup(const Archive& archive, RollupBy by) {
  RollupReport report;
  report.by = by;
  report.fleet.label = "fleet";
  std::map<std::string, RollupRow> rows;
  for (const ConnectionRecord& c : archive.connections) {
    const std::string label = row_label(c, by);
    RollupRow& row = rows[label];
    row.label = label;
    fold_record(row, c);
    fold_record(report.fleet, c);
  }
  // Transfer-time distributions come from the mergeable sketches, so a
  // roll-up over a merged archive sees exactly the union of every shard's
  // observations (and stays honest if connection rows are ever pruned).
  for (const SketchGroup& g : archive.sketches) {
    const std::string label = sketch_label(g.key, by);
    RollupRow& row = rows[label];
    row.label = label;
    row.transfer_us.merge_from(g.transfer_us);
    report.fleet.transfer_us.merge_from(g.transfer_us);
  }
  report.rows.reserve(rows.size());
  for (auto& [label, row] : rows) report.rows.push_back(std::move(row));
  return report;
}

std::string render_rollup_text(const RollupReport& report) {
  std::string out;
  appendf(out, "aggregate roll-up by %s\n", to_string(report.by));
  out += "fleet:\n";
  row_text(report.fleet, out);
  if (report.fleet.transfers > 0) {
    out += "  factor dominance (share of transfers / share of transfer"
           " time):\n";
    for (std::size_t f = 0; f < kFactorCount; ++f) {
      if (report.fleet.factors[f].dominant_connections == 0 &&
          report.fleet.factors[f].delay_us == 0) {
        continue;
      }
      appendf(out, "    %-26s %5.1f%% / %5.1f%%\n",
              to_string(static_cast<Factor>(f)),
              100.0 * report.fleet.dominance_share(f),
              100.0 * report.fleet.delay_share(f));
    }
  }
  appendf(out, "groups (%zu):\n", report.rows.size());
  for (const RollupRow& row : report.rows) row_text(row, out);
  return out;
}

std::string render_rollup_json(const RollupReport& report) {
  std::string out = "{\"by\": \"";
  out += to_string(report.by);
  out += "\", \"fleet\": ";
  row_json(report.fleet, out);
  out += ", \"rows\": [";
  bool first = true;
  for (const RollupRow& row : report.rows) {
    if (!first) out += ", ";
    first = false;
    row_json(row, out);
  }
  out += "]}";
  return out;
}

std::uint64_t RollupDiff::regressed_count() const {
  std::uint64_t n = 0;
  for (const RollupDelta& d : deltas) {
    if (d.regressed) ++n;
  }
  return n;
}

RollupDiff diff_rollups(const Archive& baseline, const Archive& current,
                        const DiffOptions& opts) {
  RollupDiff diff;
  diff.opts = opts;
  const RollupReport base = build_rollup(baseline, opts.by);
  const RollupReport cur = build_rollup(current, opts.by);
  std::map<std::string, RollupDelta> deltas;
  const auto fill = [&](const RollupRow& row, int side) {
    RollupDelta& d = deltas[row.label];
    d.label = row.label;
    (side == 0 ? d.in_baseline : d.in_current) = true;
    d.p50_us[side] = row.transfer_us.quantile(0.50);
    d.p90_us[side] = row.transfer_us.quantile(0.90);
    d.p99_us[side] = row.transfer_us.quantile(0.99);
    d.transfers[side] = row.transfers;
    d.dominant[side] = row.dominant_factor();
  };
  for (const RollupRow& row : base.rows) fill(row, 0);
  for (const RollupRow& row : cur.rows) fill(row, 1);
  for (auto& [label, d] : deltas) {
    if (d.in_baseline && d.in_current && d.transfers[0] > 0 &&
        d.transfers[1] > 0) {
      d.dominant_changed = d.dominant[0] != d.dominant[1];
      d.regressed = static_cast<double>(d.p90_us[1]) >
                    static_cast<double>(d.p90_us[0]) *
                        opts.p90_regression_factor;
    }
    diff.deltas.push_back(std::move(d));
  }
  return diff;
}

std::string render_diff_text(const RollupDiff& diff) {
  std::string out;
  appendf(out, "aggregate diff by %s: %llu group(s), %llu regressed\n",
          to_string(diff.opts.by),
          static_cast<unsigned long long>(diff.deltas.size()),
          static_cast<unsigned long long>(diff.regressed_count()));
  for (const RollupDelta& d : diff.deltas) {
    if (!d.in_baseline) {
      appendf(out, "  %-18s new group (p90 %.2fs, %llu transfers)\n",
              display_label(d.label).c_str(), to_seconds(d.p90_us[1]),
              static_cast<unsigned long long>(d.transfers[1]));
      continue;
    }
    if (!d.in_current) {
      appendf(out, "  %-18s disappeared (was p90 %.2fs)\n",
              display_label(d.label).c_str(), to_seconds(d.p90_us[0]));
      continue;
    }
    appendf(out, "  %-18s p50 %.2fs -> %.2fs  p90 %.2fs -> %.2fs"
            "  p99 %.2fs -> %.2fs",
            display_label(d.label).c_str(), to_seconds(d.p50_us[0]),
            to_seconds(d.p50_us[1]), to_seconds(d.p90_us[0]),
            to_seconds(d.p90_us[1]), to_seconds(d.p99_us[0]),
            to_seconds(d.p99_us[1]));
    if (d.dominant_changed) {
      appendf(out, "  dominant: %s -> %s",
              to_string(static_cast<Factor>(d.dominant[0])),
              to_string(static_cast<Factor>(d.dominant[1])));
    }
    if (d.regressed) out += "  REGRESSED";
    out += '\n';
  }
  return out;
}

std::string render_diff_json(const RollupDiff& diff) {
  std::string out = "{\"by\": \"";
  out += to_string(diff.opts.by);
  out += "\", \"regressed\": " + std::to_string(diff.regressed_count());
  out += ", \"groups\": [";
  bool first = true;
  for (const RollupDelta& d : diff.deltas) {
    if (!first) out += ", ";
    first = false;
    out += "{\"label\": \"" + json_escape(display_label(d.label)) + "\"";
    out += ", \"in_baseline\": ";
    out += d.in_baseline ? "true" : "false";
    out += ", \"in_current\": ";
    out += d.in_current ? "true" : "false";
    out += ", \"p50_us\": [" + std::to_string(d.p50_us[0]) + ", " +
           std::to_string(d.p50_us[1]) + "]";
    out += ", \"p90_us\": [" + std::to_string(d.p90_us[0]) + ", " +
           std::to_string(d.p90_us[1]) + "]";
    out += ", \"p99_us\": [" + std::to_string(d.p99_us[0]) + ", " +
           std::to_string(d.p99_us[1]) + "]";
    out += ", \"transfers\": [" + std::to_string(d.transfers[0]) + ", " +
           std::to_string(d.transfers[1]) + "]";
    out += ", \"dominant\": [\"";
    out += to_string(static_cast<Factor>(d.dominant[0]));
    out += "\", \"";
    out += to_string(static_cast<Factor>(d.dominant[1]));
    out += "\"]";
    out += ", \"dominant_changed\": ";
    out += d.dominant_changed ? "true" : "false";
    out += ", \"regressed\": ";
    out += d.regressed ? "true" : "false";
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace tdat::agg
