#include "agg/archive.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "agg/sketch.hpp"
#include "util/atomic_file.hpp"
#include "util/bytes.hpp"

namespace tdat::agg {

namespace {

void encode_string(const std::string& s, ByteWriter& w) {
  w.u32le(static_cast<std::uint32_t>(s.size()));
  w.bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

std::string decode_string(ByteReader& r) {
  const std::uint32_t len = r.u32le();
  // A length beyond the remaining payload is damage, not a huge string.
  if (len > r.remaining()) {
    r.fail();
    return {};
  }
  const auto bytes = r.bytes(len);
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

void encode_record(const ConnectionRecord& c, ByteWriter& w) {
  encode_string(c.run_id, w);
  w.u32le(c.collector_ip);
  w.u32le(c.peer_ip);
  w.u32le(c.peer_as);
  w.u32le(c.key.ip_a);
  w.u16le(c.key.port_a);
  w.u32le(c.key.ip_b);
  w.u16le(c.key.port_b);
  encode_string(c.quarantine_reason, w);
  w.i64le(c.transfer_begin);
  w.i64le(c.transfer_end);
  w.u64le(c.updates);
  w.u64le(c.prefixes);
  for (const std::int64_t d : c.factor_delay_us) w.i64le(d);
  for (const std::int64_t d : c.group_delay_us) w.i64le(d);
}

ConnectionRecord decode_record(ByteReader& r) {
  ConnectionRecord c;
  c.run_id = decode_string(r);
  c.collector_ip = r.u32le();
  c.peer_ip = r.u32le();
  c.peer_as = r.u32le();
  c.key.ip_a = r.u32le();
  c.key.port_a = r.u16le();
  c.key.ip_b = r.u32le();
  c.key.port_b = r.u16le();
  c.quarantine_reason = decode_string(r);
  c.transfer_begin = r.i64le();
  c.transfer_end = r.i64le();
  c.updates = r.u64le();
  c.prefixes = r.u64le();
  for (std::int64_t& d : c.factor_delay_us) d = r.i64le();
  for (std::int64_t& d : c.group_delay_us) d = r.i64le();
  return c;
}

void encode_sketch_group(const SketchGroup& g, ByteWriter& w) {
  encode_string(g.key.run_id, w);
  w.u32le(g.key.collector_ip);
  w.u32le(g.key.peer_ip);
  w.u32le(g.key.peer_as);
  encode_sketch(g.transfer_us, w);
  for (const HistogramSnapshot& s : g.factor_delay_us) encode_sketch(s, w);
}

SketchGroup decode_sketch_group(ByteReader& r) {
  SketchGroup g;
  g.key.run_id = decode_string(r);
  g.key.collector_ip = r.u32le();
  g.key.peer_ip = r.u32le();
  g.key.peer_as = r.u32le();
  g.transfer_us = decode_sketch(r);
  for (HistogramSnapshot& s : g.factor_delay_us) s = decode_sketch(r);
  return g;
}

bool sketch_key_less(const SketchGroup& a, const SketchGroup& b) {
  return a.key < b.key;
}

}  // namespace

std::size_t ConnectionRecord::dominant_factor() const {
  std::size_t best = 0;
  for (std::size_t f = 1; f < kFactorCount; ++f) {
    if (factor_delay_us[f] > factor_delay_us[best]) best = f;
  }
  return best;
}

std::uint64_t Archive::quarantined() const {
  std::uint64_t n = 0;
  for (const ConnectionRecord& c : connections) {
    if (c.quarantined()) ++n;
  }
  return n;
}

std::uint64_t Archive::transfers() const {
  std::uint64_t n = 0;
  for (const ConnectionRecord& c : connections) {
    if (c.has_transfer()) ++n;
  }
  return n;
}

void Archive::normalize() {
  std::sort(tool_versions.begin(), tool_versions.end());
  tool_versions.erase(
      std::unique(tool_versions.begin(), tool_versions.end()),
      tool_versions.end());
  std::sort(connections.begin(), connections.end());
  std::sort(sketches.begin(), sketches.end(), sketch_key_less);
}

void Archive::merge_from(const Archive& other) {
  ingest.add(other.ingest);
  budget_exhausted_runs += other.budget_exhausted_runs;
  tool_versions.insert(tool_versions.end(), other.tool_versions.begin(),
                       other.tool_versions.end());
  std::sort(tool_versions.begin(), tool_versions.end());
  tool_versions.erase(
      std::unique(tool_versions.begin(), tool_versions.end()),
      tool_versions.end());
  connections.insert(connections.end(), other.connections.begin(),
                     other.connections.end());
  std::sort(connections.begin(), connections.end());
  // Merge sketch groups by key; both sides are sorted, the result stays so.
  std::vector<SketchGroup> merged;
  merged.reserve(sketches.size() + other.sketches.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < sketches.size() || j < other.sketches.size()) {
    if (j >= other.sketches.size() ||
        (i < sketches.size() && sketches[i].key < other.sketches[j].key)) {
      merged.push_back(std::move(sketches[i++]));
    } else if (i >= sketches.size() ||
               other.sketches[j].key < sketches[i].key) {
      merged.push_back(other.sketches[j++]);
    } else {
      SketchGroup g = std::move(sketches[i++]);
      const SketchGroup& o = other.sketches[j++];
      g.transfer_us.merge_from(o.transfer_us);
      for (std::size_t f = 0; f < kFactorCount; ++f) {
        g.factor_delay_us[f].merge_from(o.factor_delay_us[f]);
      }
      merged.push_back(std::move(g));
    }
  }
  sketches = std::move(merged);
}

std::string Archive::serialize() const {
  ByteWriter w;
  w.bytes(kArchiveMagic);
  w.u32le(kArchiveVersion);
  w.u64le(ingest.truncated);
  w.u64le(ingest.resynced);
  w.u64le(ingest.skipped_bytes);
  w.u64le(ingest.tail_truncated);  // v2
  w.u64le(budget_exhausted_runs);
  w.u32le(static_cast<std::uint32_t>(tool_versions.size()));  // v2
  for (const std::string& v : tool_versions) encode_string(v, w);
  w.u64le(connections.size());
  for (const ConnectionRecord& c : connections) encode_record(c, w);
  w.u64le(sketches.size());
  for (const SketchGroup& g : sketches) encode_sketch_group(g, w);
  const std::vector<std::uint8_t>& buf = w.data();
  return std::string(reinterpret_cast<const char*>(buf.data()), buf.size());
}

Result<Archive> parse_archive(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const auto magic = r.bytes(4);
  if (magic.size() != 4 || !std::equal(magic.begin(), magic.end(),
                                       std::begin(kArchiveMagic))) {
    return Err<Archive>("not a .tdagg archive (bad magic)");
  }
  const std::uint32_t version = r.u32le();
  if (version == 0 || version > kArchiveVersion) {
    return Err<Archive>(".tdagg version " + std::to_string(version) +
                        " is newer than this tool (max " +
                        std::to_string(kArchiveVersion) + ")");
  }
  Archive a;
  a.ingest.truncated = r.u64le();
  a.ingest.resynced = r.u64le();
  a.ingest.skipped_bytes = r.u64le();
  if (version >= 2) a.ingest.tail_truncated = r.u64le();
  a.budget_exhausted_runs = r.u64le();
  if (version >= 2) {
    const std::uint32_t nversions = r.u32le();
    for (std::uint32_t i = 0; i < nversions && r.ok(); ++i) {
      a.tool_versions.push_back(decode_string(r));
    }
  }
  a.ingest.budget_exhausted = a.budget_exhausted_runs > 0;
  const std::uint64_t conn_count = r.u64le();
  for (std::uint64_t i = 0; i < conn_count && r.ok(); ++i) {
    a.connections.push_back(decode_record(r));
  }
  const std::uint64_t sketch_count = r.u64le();
  for (std::uint64_t i = 0; i < sketch_count && r.ok(); ++i) {
    a.sketches.push_back(decode_sketch_group(r));
  }
  if (!r.ok()) return Err<Archive>("truncated or corrupt .tdagg archive");
  if (r.remaining() != 0) {
    return Err<Archive>("trailing bytes after .tdagg payload");
  }
  return a;
}

Result<Archive> read_archive_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Err<Archive>("cannot open " + path);
  std::vector<std::uint8_t> image;
  std::uint8_t buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    image.insert(image.end(), buf, buf + got);
  }
  std::fclose(f);
  auto parsed = parse_archive(image);
  if (!parsed.ok()) return Err<Archive>(path + ": " + parsed.error());
  return parsed;
}

bool write_archive_file(const std::string& path, const Archive& archive) {
  // Durable atomic replace: an ENOSPC or short write must leave any previous
  // archive at `path` intact — a torn .tdagg would poison every later merge.
  const std::string bytes = archive.serialize();
  auto wrote = write_file_atomic_durable(path, bytes);
  if (!wrote.ok()) {
    std::fprintf(stderr, "tdat: %s\n", wrote.error().c_str());
    return false;
  }
  return true;
}

}  // namespace tdat::agg
