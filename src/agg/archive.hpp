// The .tdagg result store: a compact, versioned, mergeable archive of
// analysis results, built so the paper's §IV measurement study composes
// across shards, runs, and weeks. One `tdat analyze --format agg` run emits
// one archive; `tdat aggregate` merges N of them losslessly.
//
// Merge semantics (DESIGN.md §13):
//  - connection rows are a multiset; merge is union followed by a canonical
//    total-order sort, so merge(a, b) and merge(b, a) serialize to identical
//    bytes and merging shard archives equals the single-run archive over the
//    same packets;
//  - percentile sketches (agg/sketch.hpp) merge by element-wise addition,
//    keyed by (run, collector, peer, AS);
//  - ingest/quarantine diagnostics are sums.
// The empty archive is the merge identity.
//
// Versioning: the header carries a format version; readers reject newer
// majors instead of guessing. Fields are fixed little-endian; nothing in the
// encoding depends on host byte order, locale, or map iteration order.
//
// v2 adds two header fields: the ingest tail_truncated tally, and the sorted
// set of tool releases (semver only — never git hashes or build flavors,
// which would break byte-identity across checkouts) that contributed rows.
// v1 archives parse with both defaulted; merge unions the version sets.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "pcap/ingest.hpp"
#include "tcp/connection.hpp"
#include "util/metrics.hpp"
#include "util/result.hpp"

namespace tdat::agg {

inline constexpr std::uint32_t kArchiveVersion = 2;
inline constexpr std::uint8_t kArchiveMagic[4] = {'T', 'D', 'A', 'G'};

// One analyzed connection, projected from ConnectionAnalysis: everything the
// fleet roll-ups need, nothing that only a full re-analysis could use.
// Delays are stored as exact integer microseconds — ratios are derived at
// render time, so archives stay bit-stable under merge.
struct ConnectionRecord {
  std::string run_id;            // operator-supplied shard/run label ("" ok)
  std::uint32_t collector_ip = 0;  // receiver side of the data direction
  std::uint32_t peer_ip = 0;       // sender side (the operational router)
  std::uint32_t peer_as = 0;       // from the peer's OPEN (0 when unseen)
  ConnKey key;
  std::string quarantine_reason;   // empty = analyzed normally
  std::int64_t transfer_begin = 0;
  std::int64_t transfer_end = 0;   // <= begin means no transfer found
  std::uint64_t updates = 0;
  std::uint64_t prefixes = 0;
  std::array<std::int64_t, kFactorCount> factor_delay_us{};
  std::array<std::int64_t, kGroupCount> group_delay_us{};

  [[nodiscard]] bool quarantined() const { return !quarantine_reason.empty(); }
  [[nodiscard]] bool has_transfer() const {
    return transfer_end > transfer_begin;
  }
  [[nodiscard]] std::int64_t transfer_us() const {
    return has_transfer() ? transfer_end - transfer_begin : 0;
  }
  // Index of the largest-delay factor (ties to the lowest index); only
  // meaningful when has_transfer().
  [[nodiscard]] std::size_t dominant_factor() const;

  // Canonical total order over every field — the sort key that makes merge
  // output independent of input order.
  friend auto operator<=>(const ConnectionRecord&,
                          const ConnectionRecord&) = default;
  friend bool operator==(const ConnectionRecord&,
                         const ConnectionRecord&) = default;
};

// Sketch group key: the dimensions roll-ups slice by.
struct SketchKey {
  std::string run_id;
  std::uint32_t collector_ip = 0;
  std::uint32_t peer_ip = 0;
  std::uint32_t peer_as = 0;

  friend auto operator<=>(const SketchKey&, const SketchKey&) = default;
  friend bool operator==(const SketchKey&, const SketchKey&) = default;
};

// Mergeable distributions for one key: transfer times plus per-factor
// absolute delay, all in microseconds. Only connections with a located
// transfer contribute.
struct SketchGroup {
  SketchKey key;
  HistogramSnapshot transfer_us;
  std::array<HistogramSnapshot, kFactorCount> factor_delay_us;
};

struct Archive {
  IngestDiagnostics ingest;            // summed across merged runs
  std::uint64_t budget_exhausted_runs = 0;
  // Releases that produced the merged rows, sorted unique. Empty only for
  // the merge identity and archives from pre-v2 tools.
  std::vector<std::string> tool_versions;
  std::vector<ConnectionRecord> connections;  // canonically sorted
  std::vector<SketchGroup> sketches;          // sorted by key

  [[nodiscard]] std::uint64_t quarantined() const;
  [[nodiscard]] std::uint64_t transfers() const;

  // Restores the canonical ordering invariant (serialize requires it; the
  // builders and merge maintain it themselves).
  void normalize();

  // Folds `other` in. Associative, commutative, and `Archive{}` is the
  // identity: merge_from on the serialized level is a pure function of the
  // multiset of inputs.
  void merge_from(const Archive& other);

  [[nodiscard]] std::string serialize() const;
};

[[nodiscard]] Result<Archive> parse_archive(std::span<const std::uint8_t> bytes);
[[nodiscard]] Result<Archive> read_archive_file(const std::string& path);
[[nodiscard]] bool write_archive_file(const std::string& path,
                                      const Archive& archive);

}  // namespace tdat::agg
