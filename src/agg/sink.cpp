#include "agg/sink.hpp"

#include <map>
#include <variant>

#include "agg/sketch.hpp"
#include "bgp/message.hpp"
#include "util/version.hpp"

namespace tdat::agg {

namespace {

// The peer's AS from its OPEN. The extracted messages are data-direction
// only, so the first OPEN seen is the one the operational router sent.
std::uint32_t peer_as_from_messages(
    const std::vector<TimedBgpMessage>& messages) {
  for (const TimedBgpMessage& m : messages) {
    if (const auto* open = std::get_if<BgpOpen>(&m.msg.body)) {
      return open->my_as;
    }
  }
  return 0;
}

ConnectionRecord project_connection(const ReportEntry& entry,
                                    const std::string& run_id) {
  const ConnectionAnalysis& a = *entry.analysis;
  ConnectionRecord c;
  c.run_id = run_id;
  c.key = entry.conn->key;
  // Sender side of the data direction is the operational router (the peer);
  // the receiver side is the collector the sniffer fronts.
  const bool a_sends = a.profile.data_dir == Dir::kAToB;
  c.peer_ip = a_sends ? c.key.ip_a : c.key.ip_b;
  c.collector_ip = a_sends ? c.key.ip_b : c.key.ip_a;
  if (a.quarantined()) {
    c.quarantine_reason = a.quarantine_reason;
    return c;
  }
  c.peer_as = peer_as_from_messages(a.messages);
  c.transfer_begin = a.transfer.begin;
  c.transfer_end = a.transfer.end;
  c.updates = a.mct.update_count;
  c.prefixes = a.mct.prefix_count;
  for (std::size_t f = 0; f < kFactorCount; ++f) {
    c.factor_delay_us[f] = a.report.factor_delay[f];
  }
  for (std::size_t g = 0; g < kGroupCount; ++g) {
    c.group_delay_us[g] = a.report.group_delay[g];
  }
  return c;
}

}  // namespace

Archive build_archive(const ReportModel& model, const std::string& run_id) {
  Archive archive;
  archive.ingest = model.ingest;
  archive.budget_exhausted_runs = model.ingest.budget_exhausted ? 1 : 0;
  // Semver only: the archive must stay byte-identical across checkouts of
  // the same release (git describe would break that).
  archive.tool_versions = {version_semver()};
  archive.connections.reserve(model.entries.size());
  // std::map keys the sketch groups in SketchKey order, so the sketches
  // vector comes out sorted without a second pass.
  std::map<SketchKey, SketchGroup> groups;
  for (const ReportEntry& entry : model.entries) {
    ConnectionRecord c = project_connection(entry, run_id);
    if (c.has_transfer()) {
      const SketchKey key{c.run_id, c.collector_ip, c.peer_ip, c.peer_as};
      SketchGroup& g = groups[key];
      g.key = key;
      sketch_observe(g.transfer_us, c.transfer_us());
      for (std::size_t f = 0; f < kFactorCount; ++f) {
        sketch_observe(g.factor_delay_us[f], c.factor_delay_us[f]);
      }
    }
    archive.connections.push_back(std::move(c));
  }
  archive.sketches.reserve(groups.size());
  for (auto& [key, group] : groups) {
    archive.sketches.push_back(std::move(group));
  }
  archive.normalize();
  return archive;
}

void register_aggregate_sink() {
  register_report_renderer(
      ReportFormat::kAgg,
      [](const ReportModel& model, const ReportRenderOptions& opts) {
        return build_archive(model, opts.run_id).serialize();
      });
}

}  // namespace tdat::agg
