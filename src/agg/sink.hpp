// AggregateSink: the `--format agg` report sink. Projects a finished
// ReportModel into a .tdagg archive (agg/archive.hpp) — one ConnectionRecord
// per connection, percentile sketches per (run, collector, peer, AS) — so a
// shard's analysis run leaves behind a mergeable result instead of a flat
// report. register_aggregate_sink() wires it into core's renderer registry
// behind ReportFormat::kAgg.
#pragma once

#include <string>

#include "agg/archive.hpp"
#include "core/report.hpp"

namespace tdat::agg {

// Projects the model into an archive. Deterministic: the same model and
// run_id always produce the same archive, and sharded models over disjoint
// connection sets merge to the whole-run archive bit for bit.
[[nodiscard]] Archive build_archive(const ReportModel& model,
                                    const std::string& run_id);

// Registers the archive renderer behind ReportFormat::kAgg (idempotent).
// Call once at CLI startup, before any render_report(kAgg).
void register_aggregate_sink();

}  // namespace tdat::agg
