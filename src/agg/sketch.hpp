// Mergeable percentile sketches for the fleet result store (.tdagg).
//
// A sketch IS a HistogramSnapshot: the pow2-bucket layout of the PR 2
// metrics histograms (util/metrics.hpp) already merges by element-wise
// addition, carries exact count/sum and conservative min/max, and answers
// p50/p90/p99 as the inclusive upper bound of the quantile's bucket clamped
// to the observed max. This header adds the wire codec: a sparse,
// little-endian encoding (only occupied buckets are written) that is
// canonical — two equal snapshots encode to identical bytes, which is what
// makes archive merge order-independent at the byte level.
#pragma once

#include "util/bytes.hpp"
#include "util/metrics.hpp"
#include "util/result.hpp"

namespace tdat::agg {

// count, sum, min, max, then (bucket index, count) pairs for the occupied
// buckets in ascending index order.
void encode_sketch(const HistogramSnapshot& s, ByteWriter& w);

// Decodes one sketch; on malformed input the reader goes !ok() and the
// partially filled snapshot must be discarded. Rejects out-of-range and
// non-ascending bucket indices so damaged archives fail loudly instead of
// merging garbage.
[[nodiscard]] HistogramSnapshot decode_sketch(ByteReader& r);

// Convenience for building sketches from raw samples at archive-build time.
inline void sketch_observe(HistogramSnapshot& s, std::int64_t v) {
  s.buckets[histogram_bucket_index(v)] += 1;
  s.sum += v;
  if (s.count == 0) {
    s.min = v;
    s.max = v;
  } else {
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
  }
  s.count += 1;
}

}  // namespace tdat::agg
