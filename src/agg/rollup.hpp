// Roll-ups over a merged .tdagg archive: the §IV answer machine. Groups the
// archive's connection rows and sketches by peer, AS, collector, or run and
// answers "which factor dominates slow transfers, and how slow are they"
// per group — dominance share per factor, mean delay share, and p50/p90/p99
// transfer time from the merged percentile sketches. diff_rollups compares
// two aggregates (last week vs this week) and flags regressed groups.
//
// Everything here is derived: a roll-up never feeds back into an archive,
// so rollup(merge(a, b)) and merging two roll-ups row-wise agree — the
// property the aggregate tests pin down.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "agg/archive.hpp"

namespace tdat::agg {

enum class RollupBy : std::uint8_t { kPeer, kAs, kCollector, kRun };

[[nodiscard]] const char* to_string(RollupBy by);

struct FactorRollup {
  std::uint64_t dominant_connections = 0;  // transfers where this factor won
  std::int64_t delay_us = 0;               // summed absolute delay
};

struct RollupRow {
  std::string label;  // rendered key: peer IP, "AS64501", collector IP, run
  std::uint64_t connections = 0;
  std::uint64_t transfers = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t updates = 0;
  std::uint64_t prefixes = 0;
  std::int64_t window_us = 0;  // summed transfer durations (ratio base)
  HistogramSnapshot transfer_us;
  std::array<FactorRollup, kFactorCount> factors{};

  // Share of transfers this factor dominated / of total transfer time it
  // covered. Derived, never stored.
  [[nodiscard]] double dominance_share(std::size_t f) const;
  [[nodiscard]] double delay_share(std::size_t f) const;
  [[nodiscard]] std::size_t dominant_factor() const;

  // Row-wise fold of another row with the same label (property-test seam:
  // merging roll-ups must equal rolling up the merged archive).
  void merge_from(const RollupRow& other);
};

struct RollupReport {
  RollupBy by = RollupBy::kPeer;
  RollupRow fleet;                // every group folded together ("fleet")
  std::vector<RollupRow> rows;    // sorted by label
};

[[nodiscard]] RollupReport build_rollup(const Archive& archive, RollupBy by);

[[nodiscard]] std::string render_rollup_text(const RollupReport& report);
[[nodiscard]] std::string render_rollup_json(const RollupReport& report);

// Week-over-week comparison of one group between two aggregates.
struct RollupDelta {
  std::string label;
  bool in_baseline = false;
  bool in_current = false;
  std::int64_t p50_us[2] = {0, 0};  // [baseline, current]
  std::int64_t p90_us[2] = {0, 0};
  std::int64_t p99_us[2] = {0, 0};
  std::uint64_t transfers[2] = {0, 0};
  std::size_t dominant[2] = {0, 0};
  bool dominant_changed = false;
  // p90 transfer time grew beyond the regression threshold (and the group
  // has transfers on both sides to compare).
  bool regressed = false;
};

struct DiffOptions {
  RollupBy by = RollupBy::kPeer;
  // A group regresses when current p90 exceeds baseline p90 by this factor.
  double p90_regression_factor = 1.25;
};

struct RollupDiff {
  DiffOptions opts;
  std::vector<RollupDelta> deltas;  // sorted by label
  [[nodiscard]] std::uint64_t regressed_count() const;
};

[[nodiscard]] RollupDiff diff_rollups(const Archive& baseline,
                                      const Archive& current,
                                      const DiffOptions& opts = {});

[[nodiscard]] std::string render_diff_text(const RollupDiff& diff);
[[nodiscard]] std::string render_diff_json(const RollupDiff& diff);

}  // namespace tdat::agg
