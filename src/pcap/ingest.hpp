// Failure model of the ingest layer (DESIGN.md §10): operational captures
// arrive truncated, rotated mid-record, and bit-flipped, so every reader
// carries an IngestPolicy deciding how far to go recovering from a corrupt
// record, and an IngestDiagnostics block reporting what was lost. The
// diagnostics flow from the readers through the TraceSource into the
// pipeline stats, the report sinks, and the metrics registry
// (ingest.errors.truncated / .resynced / .skipped) — a damaged capture is
// analyzed as far as possible and the damage is *reported*, never silently
// absorbed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tdat {

struct IngestPolicy {
  // Strict mode reproduces the historical tail-drop semantics: the first
  // corrupt record header ends the stream (everything before it is kept,
  // everything after is dropped). The default scans forward for the next
  // plausible record instead.
  bool strict = false;

  // Recovery budget: after this many resynchronizations the stream gives up
  // (a capture needing thousands of resyncs is noise, not data).
  std::size_t max_errors = 1000;

  // Allow the zero-copy mmap fast path for regular-file inputs (see
  // PcapStream::open_auto). Parsing and recovery are bit-identical either
  // way; this exists for --no-mmap and for tests that pin down the chunked
  // reader specifically.
  bool use_mmap = true;

  [[nodiscard]] static IngestPolicy strict_mode() {
    IngestPolicy p;
    p.strict = true;
    p.max_errors = 0;
    return p;
  }
};

// What ingest had to do to get through one capture (or one run, when
// aggregated). All counters are zero on a clean capture.
struct IngestDiagnostics {
  std::uint64_t truncated = 0;      // records cut off by end of data (or
                                    // strict-mode stops on a corrupt header)
  std::uint64_t resynced = 0;       // corrupt headers recovered by scanning
  std::uint64_t skipped_bytes = 0;  // garbage bytes stepped over by resyncs
  // Of `truncated`, how many were a half-written record at the very end of
  // the data — the shape a live follower sees on a capture still being
  // written (or a rotation mid-record), as opposed to a corrupt header in
  // the middle of the file. Always <= truncated; strict-mode stops on a
  // corrupt interior header count toward truncated only.
  std::uint64_t tail_truncated = 0;
  bool budget_exhausted = false;    // max_errors hit; the tail was dropped

  [[nodiscard]] bool has_errors() const {
    return truncated != 0 || resynced != 0 || skipped_bytes != 0 ||
           budget_exhausted;
  }

  friend bool operator==(const IngestDiagnostics&,
                         const IngestDiagnostics&) = default;

  void add(const IngestDiagnostics& other);

  // {"truncated":N,"tail_truncated":N,"resynced":N,"skipped_bytes":N,
  //  "budget_exhausted":B}
  [[nodiscard]] std::string to_json() const;
};

// Per-file breakdown for multi-file (rotated capture) runs.
struct FileIngestDiagnostics {
  std::string path;
  IngestDiagnostics diag;
};

}  // namespace tdat
