#include "pcap/decode.hpp"

#include "pcap/checksum.hpp"
#include "util/bytes.hpp"

namespace tdat {
namespace detail {

bool decode_tcp_options(ByteReader& r, std::size_t options_len, TcpHeader& tcp) {
  std::size_t consumed = 0;
  while (consumed < options_len) {
    const std::uint8_t kind = r.u8();
    ++consumed;
    if (!r.ok()) return false;
    if (kind == 0) break;       // end of options
    if (kind == 1) continue;    // NOP padding
    const std::uint8_t len = r.u8();
    ++consumed;
    if (!r.ok() || len < 2 || consumed + (len - 2) > options_len) return false;
    switch (kind) {
      case 2: {  // MSS
        if (len != 4) return false;
        tcp.mss = r.u16be();
        break;
      }
      case 3: {  // window scale
        if (len != 3) return false;
        tcp.window_scale = r.u8();
        break;
      }
      case 4: {  // SACK permitted
        if (len != 2) return false;
        tcp.sack_permitted = true;
        break;
      }
      case 8: {  // timestamps (RFC 1323)
        if (len != 10) return false;
        tcp.ts_val = r.u32be();
        tcp.ts_ecr = r.u32be();
        break;
      }
      default:
        r.skip(len - 2);
        break;
    }
    consumed += len - 2;
    if (!r.ok()) return false;
  }
  return true;
}

}  // namespace detail

std::optional<DecodedPacket> decode_frame(Micros ts, std::size_t index,
                                          std::span<const std::uint8_t> frame,
                                          bool verify_checksums,
                                          std::shared_ptr<const void> backing) {
  ByteReader r(frame);
  r.skip(12);  // MAC addresses carry no information in our traces
  const std::uint16_t ethertype = r.u16be();
  if (!r.ok() || ethertype != kEtherTypeIpv4) return std::nullopt;

  DecodedPacket pkt;
  pkt.ts = ts;
  pkt.index = index;

  // IPv4 header.
  const std::size_t ip_start = r.offset();
  const std::uint8_t ver_ihl = r.u8();
  if ((ver_ihl >> 4) != 4) return std::nullopt;
  pkt.ip.header_len = static_cast<std::size_t>(ver_ihl & 0x0f) * 4;
  if (pkt.ip.header_len < 20) return std::nullopt;
  r.skip(1);  // DSCP/ECN
  pkt.ip.total_length = r.u16be();
  pkt.ip.ident = r.u16be();
  r.skip(2);  // flags + fragment offset (traces contain no fragments)
  pkt.ip.ttl = r.u8();
  pkt.ip.protocol = r.u8();
  r.skip(2);  // header checksum (verified below if requested)
  pkt.ip.src = r.u32be();
  pkt.ip.dst = r.u32be();
  r.skip(pkt.ip.header_len - 20);  // IP options
  if (!r.ok() || pkt.ip.protocol != kIpProtoTcp) return std::nullopt;
  if (pkt.ip.total_length < pkt.ip.header_len ||
      ip_start + pkt.ip.total_length > frame.size()) {
    return std::nullopt;  // truncated capture
  }

  // TCP header.
  const std::size_t tcp_start = r.offset();
  pkt.tcp.src_port = r.u16be();
  pkt.tcp.dst_port = r.u16be();
  pkt.tcp.seq = r.u32be();
  pkt.tcp.ack = r.u32be();
  const std::uint8_t data_offset = r.u8();
  pkt.tcp.header_len = static_cast<std::size_t>(data_offset >> 4) * 4;
  if (pkt.tcp.header_len < 20) return std::nullopt;
  const std::uint8_t flags = r.u8();
  pkt.tcp.flags.fin = flags & 0x01;
  pkt.tcp.flags.syn = flags & 0x02;
  pkt.tcp.flags.rst = flags & 0x04;
  pkt.tcp.flags.psh = flags & 0x08;
  pkt.tcp.flags.ack = flags & 0x10;
  pkt.tcp.flags.urg = flags & 0x20;
  pkt.tcp.window = r.u16be();
  r.skip(2);  // checksum
  r.skip(2);  // urgent pointer
  if (!detail::decode_tcp_options(r, pkt.tcp.header_len - 20, pkt.tcp)) {
    return std::nullopt;
  }
  if (!r.ok()) return std::nullopt;

  const std::size_t tcp_total = pkt.ip.total_length - pkt.ip.header_len;
  if (tcp_total < pkt.tcp.header_len) return std::nullopt;
  pkt.payload_offset = tcp_start + pkt.tcp.header_len;
  pkt.payload_len = tcp_total - pkt.tcp.header_len;

  if (verify_checksums) {
    const auto ip_hdr = frame.subspan(ip_start, pkt.ip.header_len);
    if (internet_checksum(ip_hdr) != 0) return std::nullopt;
    const auto segment = frame.subspan(tcp_start, tcp_total);
    // A correct checksum over data that includes the checksum field sums to 0.
    if (tcp_checksum(pkt.ip.src, pkt.ip.dst, segment) != 0) return std::nullopt;
  }

  if (backing) {
    pkt.frame = frame;
    pkt.backing = std::move(backing);
  } else {
    auto copy =
        std::make_shared<std::vector<std::uint8_t>>(frame.begin(), frame.end());
    pkt.frame = std::span<const std::uint8_t>(*copy);
    pkt.backing = std::move(copy);
  }
  return pkt;
}

}  // namespace tdat
