// Batched Ethernet/IPv4/TCP header decode (DESIGN.md §11). Where
// decode_frame walks one frame through a chain of early returns, the batch
// decoder runs a whole run of records through a branch-minimized extraction
// pass that loads every fixed header field into struct-of-arrays scratch and
// folds the ~15 reject conditions into one validity mask — the common case
// (a clean TCP frame) takes the same straight-line path as the rare rejects,
// so the branch predictor has almost nothing to mispredict. A second pass
// materializes DecodedPacket for the surviving lanes, with the variable-rate
// work (TCP options, checksum verification) done per lane; the ubiquitous
// NOP/NOP/Timestamps option layout gets a dedicated fast path and everything
// else falls through to the exact option walk decode_frame uses.
//
// Contract: for every record, the emitted packet (or the decision to skip
// it) is bit-identical to PcapStreamSource::next's per-record logic —
// including the truncated-capture skip (data shorter than orig_len), the
// checksum-verification rejects, and the copy-when-unpinned backing rule.
// decode_batch_differential_test holds the two paths equal on adversarial
// corpora.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pcap/packet.hpp"
#include "pcap/pcap_stream.hpp"

namespace tdat {

// Lanes per decode call. 64 keeps the validity mask in one register and the
// scratch arrays inside L1.
inline constexpr std::size_t kDecodeBatch = 64;

// Struct-of-arrays scratch for one batch. Plain arrays, no constructor cost;
// reuse one instance across calls.
struct DecodeScratch {
  std::uint8_t ihl[kDecodeBatch];        // IPv4 header length, bytes
  std::uint8_t ttl[kDecodeBatch];
  std::uint16_t total_len[kDecodeBatch];
  std::uint16_t ident[kDecodeBatch];
  std::uint32_t src[kDecodeBatch];
  std::uint32_t dst[kDecodeBatch];
  std::uint16_t sport[kDecodeBatch];
  std::uint16_t dport[kDecodeBatch];
  std::uint32_t seq[kDecodeBatch];
  std::uint32_t ack[kDecodeBatch];
  std::uint8_t doff[kDecodeBatch];       // TCP header length, bytes
  std::uint8_t flags[kDecodeBatch];      // raw TCP flag byte
  std::uint16_t window[kDecodeBatch];
};

// Decodes records[0..min(size, kDecodeBatch)) — lane i gets trace index
// start_index + i — appending the packets that decode to `out` in lane
// order. Returns the number of lanes consumed (so the caller advances its
// record cursor and index base by exactly that). Records that fail to decode
// consume their lane and index but emit nothing, matching the scalar path.
std::size_t decode_records(std::span<const StreamRecord> records,
                           std::size_t start_index, bool verify_checksums,
                           DecodeScratch& scratch,
                           std::vector<DecodedPacket>& out);

}  // namespace tdat
