// Decoded packet model: Ethernet II / IPv4 / TCP, the only stack the BGP
// monitoring traces in the paper use. Addresses and ports are kept in host
// byte order after decoding.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "util/time.hpp"

namespace tdat {

struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  bool psh = false;
  bool urg = false;

  friend bool operator==(const TcpFlags&, const TcpFlags&) = default;
};

struct Ipv4Header {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint8_t protocol = 0;  // 6 = TCP
  std::uint8_t ttl = 0;
  std::uint16_t ident = 0;
  std::uint16_t total_length = 0;
  std::size_t header_len = 0;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint16_t window = 0;  // raw, pre-scaling
  TcpFlags flags;
  std::size_t header_len = 0;
  // From options (MSS/wscale/SACK-permitted appear on SYN segments only,
  // timestamps on every segment once negotiated — RFC 793 / 1323):
  std::optional<std::uint16_t> mss;
  std::optional<std::uint8_t> window_scale;
  bool sack_permitted = false;
  std::optional<std::uint32_t> ts_val;  // TSval of the timestamps option
  std::optional<std::uint32_t> ts_ecr;  // TSecr
};

// One captured packet: decoded header views plus the raw layer-2 frame.
// `index` is the packet's position in its trace and is used as the trace_ref
// carried by event series.
//
// Ownership: `frame` is a read-only view; `backing` pins the bytes behind
// it. decode_frame either copies the caller's buffer into a private backing
// (the legacy path — safe for transient inputs) or, when handed a keepalive,
// views the caller's buffer directly and shares its ownership — the
// streaming path, where `backing` is a pcap-stream arena chunk holding many
// packets' frames. Either way a DecodedPacket copy is cheap (one refcount
// bump, no byte copy), the frame bytes are immutable after decoding, and the
// packet may be handed to another thread freely.
struct DecodedPacket {
  Micros ts = 0;
  std::size_t index = 0;
  Ipv4Header ip;
  TcpHeader tcp;
  std::span<const std::uint8_t> frame;  // full layer-2 frame as captured
  std::shared_ptr<const void> backing;  // owns (or pins) the frame bytes
  std::size_t payload_offset = 0;       // offset of the TCP payload in `frame`
  std::size_t payload_len = 0;
  // Capture-file position of the record this packet came from (header offset
  // and total on-disk length, record header included). Zero/zero when the
  // source has no file behind it (in-memory feeds); the live engine uses
  // these to checkpoint retained packets as offset runs instead of bytes.
  std::uint64_t rec_offset = 0;
  std::uint32_t rec_len = 0;

  [[nodiscard]] std::span<const std::uint8_t> payload() const {
    return frame.subspan(payload_offset, payload_len);
  }
  [[nodiscard]] bool has_payload() const { return payload_len > 0; }
};

inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

}  // namespace tdat
