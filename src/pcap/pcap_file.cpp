#include "pcap/pcap_file.hpp"

#include <cstdio>
#include <memory>

#include "pcap/decode.hpp"
#include "pcap/pcap_stream.hpp"
#include "util/bytes.hpp"

namespace tdat {
namespace {

constexpr std::uint32_t kMagicMicrosLE = 0xa1b2c3d4;  // as read little-endian
constexpr std::uint32_t kMagicMicrosBE = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNanosLE = 0xa1b23c4d;
constexpr std::uint32_t kMagicNanosBE = 0x4d3cb2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;

struct FileCloser {
  void operator()(std::FILE* f) const { std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Result<PcapFile> parse_pcap(std::span<const std::uint8_t> image) {
  ByteReader r(image);
  const std::uint32_t magic = r.u32le();
  if (!r.ok()) return Err<PcapFile>("pcap: file shorter than global header");

  bool swapped = false;
  bool nanos = false;
  switch (magic) {
    case kMagicMicrosLE: break;
    case kMagicNanosLE: nanos = true; break;
    case kMagicMicrosBE: swapped = true; break;
    case kMagicNanosBE: swapped = true; nanos = true; break;
    default: return Err<PcapFile>("pcap: bad magic number");
  }
  auto u16 = [&]() { return swapped ? r.u16be() : r.u16le(); };
  auto u32 = [&]() { return swapped ? r.u32be() : r.u32le(); };

  const std::uint16_t major = u16();
  (void)u16();  // minor version
  (void)u32();  // thiszone
  (void)u32();  // sigfigs
  const std::uint32_t snaplen = u32();
  const std::uint32_t linktype = u32();
  if (!r.ok()) return Err<PcapFile>("pcap: truncated global header");
  if (major != 2) return Err<PcapFile>("pcap: unsupported version");
  if (linktype != kLinkTypeEthernet) {
    return Err<PcapFile>("pcap: unsupported link type " + std::to_string(linktype));
  }

  PcapFile out;
  out.nanosecond = nanos;
  out.snaplen = snaplen;
  // A record may not claim zero captured bytes or more than the snaplen the
  // global header promised (snaplen 0 is treated as the classic 65535 cap) —
  // either marks a corrupt header, not a large packet.
  const std::uint32_t max_incl = snaplen != 0 ? snaplen : 65535;
  // Pre-scan the record headers (16 bytes each, skipping bodies) to size the
  // records vector exactly, so the parse loop below never reallocates it; the
  // per-record byte buffers are then the only allocations on this path.
  {
    ByteReader scan = r;
    std::size_t count = 0;
    while (scan.remaining() >= 16) {
      scan.skip(8);
      const std::uint32_t incl = swapped ? scan.u32be() : scan.u32le();
      scan.skip(4);
      if (!scan.ok() || incl == 0 || incl > max_incl || scan.remaining() < incl) {
        break;
      }
      scan.skip(incl);
      ++count;
    }
    out.records.reserve(count);
  }
  while (r.remaining() >= 16) {
    const std::uint32_t ts_sec = u32();
    const std::uint32_t ts_frac = u32();
    const std::uint32_t incl_len = u32();
    const std::uint32_t orig_len = u32();
    if (!r.ok() || incl_len == 0 || incl_len > max_incl ||
        r.remaining() < incl_len) {
      ++out.ingest.truncated;  // truncated tail: keep what we have
      return out;
    }
    PcapRecord rec;
    rec.ts = static_cast<Micros>(ts_sec) * kMicrosPerSec +
             (nanos ? ts_frac / 1000 : ts_frac);
    rec.orig_len = orig_len;
    const auto bytes = r.bytes(incl_len);
    rec.data.assign(bytes.begin(), bytes.end());
    out.records.push_back(std::move(rec));
  }
  if (r.remaining() > 0) ++out.ingest.truncated;  // partial trailing header
  return out;
}

Result<PcapFile> read_pcap_file(const std::string& path) {
  // The in-memory representation is a thin adapter over the streaming
  // reader: chunked ingest through reused arena buffers instead of loading
  // the whole image, then one owning copy per record.
  auto stream = PcapStream::open(path);
  if (!stream.ok()) return Err<PcapFile>(stream.error());
  return stream.value().drain_to_file();
}

std::vector<std::uint8_t> serialize_pcap(const PcapFile& file) {
  ByteWriter w;
  w.u32le(kMagicMicrosLE);
  w.u16le(2);   // major
  w.u16le(4);   // minor
  w.u32le(0);   // thiszone
  w.u32le(0);   // sigfigs
  w.u32le(file.snaplen);
  w.u32le(kLinkTypeEthernet);
  for (const PcapRecord& rec : file.records) {
    w.u32le(static_cast<std::uint32_t>(rec.ts / kMicrosPerSec));
    w.u32le(static_cast<std::uint32_t>(rec.ts % kMicrosPerSec));
    w.u32le(static_cast<std::uint32_t>(rec.data.size()));
    w.u32le(rec.orig_len != 0 ? rec.orig_len
                              : static_cast<std::uint32_t>(rec.data.size()));
    w.bytes(rec.data);
  }
  return w.take();
}

bool write_pcap_file(const std::string& path, const PcapFile& file) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  const auto image = serialize_pcap(file);
  return std::fwrite(image.data(), 1, image.size(), f.get()) == image.size();
}

std::vector<DecodedPacket> decode_pcap(const PcapFile& file,
                                       bool verify_checksums) {
  std::vector<DecodedPacket> out;
  out.reserve(file.records.size());
  for (std::size_t i = 0; i < file.records.size(); ++i) {
    const PcapRecord& rec = file.records[i];
    if (rec.data.size() < rec.orig_len) continue;  // truncated capture
    if (auto pkt = decode_frame(rec.ts, i, rec.data, verify_checksums)) {
      out.push_back(std::move(*pkt));
    }
  }
  return out;
}

}  // namespace tdat
