// Deterministic, seedable corruption of serialized pcap images, so every
// ingest recovery path (DESIGN.md §10) is testable on demand instead of
// waiting for a broken capture to arrive. Each mode models a failure class
// seen in operational traces: disk bit rot, rotation cutting a file
// mid-record, header fields scribbled by a crashing capture process,
// duplicated / reordered records from multi-queue taps, clock steps, and
// peers emitting garbage BGP payloads (the paper's §5 zero-window-probe bug
// being the canonical example). The CLI exposes this as `tdat corrupt`; the
// corruption-matrix test drives every mode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tdat {

enum class FaultMode {
  kBitFlip,          // flip one random bit inside a record body
  kTruncateTail,     // cut the image mid-record (rotation / full disk)
  kTruncateRecord,   // delete bytes from a record body, desyncing the stream
  kZeroInclLen,      // record header claims zero captured bytes
  kOverlongInclLen,  // record header claims more bytes than the snaplen
  kDuplicateRecord,  // insert a byte-identical copy right after a record
  kReorderRecords,   // swap two adjacent records
  kTimestampJump,    // step one record's clock 30 days into the future
  kGarbageSplice,    // overwrite a record's payload with random bytes
};

[[nodiscard]] const char* to_string(FaultMode mode);
[[nodiscard]] std::optional<FaultMode> parse_fault_mode(const std::string& name);
[[nodiscard]] const std::vector<FaultMode>& all_fault_modes();

struct FaultPlan {
  FaultMode mode = FaultMode::kBitFlip;
  std::uint64_t seed = 1;
  std::size_t count = 1;  // how many records to hit (clamped to what exists)
};

struct FaultReport {
  // Record indices (position in the clean image) whose bytes were touched or
  // whose framing was damaged. For kTruncateTail this is the first dropped
  // record and everything after it is implicitly gone too.
  std::vector<std::size_t> touched_records;
  std::size_t faults_applied = 0;
  // Structural faults damage pcap framing itself (the reader must truncate
  // or resync); non-structural ones leave framing intact and only perturb
  // contents or ordering.
  bool structural = false;
};

// Applies `plan` to a serialized pcap image in place (kTruncateRecord /
// kTruncateTail shrink it, kDuplicateRecord grows it). The image's own
// byte-order magic is honoured when rewriting header fields. An image whose
// global header is unparsable, or that holds no records, is returned
// untouched with an empty report.
[[nodiscard]] FaultReport inject_faults(std::vector<std::uint8_t>& image,
                                        const FaultPlan& plan);

}  // namespace tdat
