// Read-only memory mapping of a capture file, the backing store of the
// zero-copy ingest fast path (DESIGN.md §11). The mapping is advised
// MADV_SEQUENTIAL — ingest walks the image front to back exactly once, so
// aggressive readahead wins and page reclaim behind the cursor is free.
//
// Lifetime: the pages are owned by a shared_ptr whose deleter munmaps. Every
// StreamRecord / DecodedPacket built from the image shares that pin, so the
// mapping is released exactly when the last packet referencing it dies —
// the same contract as the chunked reader's arena pins, with one mapping in
// place of many chunks.
//
// On platforms without mmap (or for empty files, which cannot be mapped)
// map() fails cleanly and callers fall back to the streaming reader.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "util/result.hpp"

namespace tdat {

class MappedFile {
 public:
  // Maps `path` read-only. Fails (with a reason) when the path cannot be
  // opened, is not a regular file, is empty, or mmap is unavailable.
  [[nodiscard]] static Result<MappedFile> map(const std::string& path);

  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return bytes_; }
  // Keepalive for bytes(): copy it into anything that outlives this object.
  [[nodiscard]] std::shared_ptr<const void> share() const { return pin_; }

 private:
  MappedFile() = default;

  std::shared_ptr<const void> pin_;
  std::span<const std::uint8_t> bytes_;
};

}  // namespace tdat
