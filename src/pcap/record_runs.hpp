// Offset-run record access: serve pcap records straight out of a pinned
// capture image at explicit (byte offset, record count) runs — the worker
// side of the fleet shard plan (DESIGN.md §14). Where PcapStream scans the
// capture front to back, a RecordRunReader trusts a plan produced by a
// previous sweep: it seeks to each run's first record header, parses exactly
// `count` back-to-back records there, and hands them out as zero-copy
// StreamRecord views into the mapping — no scanning, no resync, and no shard
// pcap ever written.
//
// The plan is trusted but never believed blindly: every header is
// bounds-checked against the image and sanity-checked (nonzero incl_len
// within the snaplen cap, fractional timestamp in range) exactly as
// PcapStream would, so a stale plan over a rewritten capture fails loudly
// (`failed()` + error()) instead of serving garbage spans.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pcap/pcap_stream.hpp"
#include "util/result.hpp"

namespace tdat {

// The four global-header facts every record parse depends on. Shared by the
// scanning reader (PcapStream) and the offset-run reader, so the two cannot
// drift on byte order or timestamp resolution.
struct PcapImageHeader {
  bool swapped = false;  // fields are opposite the host's little-endian read
  bool nanos = false;    // nanosecond timestamp magic
  std::uint32_t snaplen = 65535;

  // Largest incl_len a record may legitimately claim (writers that leave
  // snaplen 0 mean the classic 65535 cap).
  [[nodiscard]] std::uint32_t effective_snaplen() const {
    return snaplen != 0 ? snaplen : 65535;
  }
};

// Parses the 24-byte pcap global header at image[0..24). Accepts the same
// four magic variants as PcapStream::open; fails with the same wording on
// anything else.
[[nodiscard]] Result<PcapImageHeader> parse_pcap_image_header(
    std::span<const std::uint8_t> image);

// One run of consecutive records: `count` records packed back to back, the
// first one's 16-byte record header at byte `offset` of the capture.
struct RecordRun {
  std::uint64_t offset = 0;
  std::uint32_t count = 0;

  friend bool operator==(const RecordRun&, const RecordRun&) = default;
};

class RecordRunReader {
 public:
  // `pin` keeps the bytes behind `image` alive and is shared into every
  // record handed out (the mmap contract of pcap/mmap_file.hpp). Fails when
  // the global header is malformed.
  [[nodiscard]] static Result<RecordRunReader> open(
      std::shared_ptr<const void> pin, std::span<const std::uint8_t> image,
      std::vector<RecordRun> runs);

  // Fetches the next record. False at end of the last run — or on a
  // plan/image mismatch, which sets failed(); callers must distinguish the
  // two before trusting the drain.
  [[nodiscard]] bool next(StreamRecord& out);

  [[nodiscard]] bool failed() const { return !error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

  // Record bytes consumed so far (16-byte record headers included; the
  // 24-byte global header is the caller's to account).
  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_; }
  [[nodiscard]] std::uint64_t records_read() const { return records_read_; }
  [[nodiscard]] const PcapImageHeader& header() const { return header_; }

 private:
  RecordRunReader() = default;

  [[nodiscard]] std::uint32_t u32_at(std::size_t at) const;

  std::shared_ptr<const void> pin_;
  std::span<const std::uint8_t> image_;
  PcapImageHeader header_;
  std::vector<RecordRun> runs_;
  std::size_t run_ = 0;        // current run index
  std::uint64_t offset_ = 0;   // next record header offset in the current run
  std::uint32_t left_ = 0;     // records left in the current run
  std::uint64_t bytes_read_ = 0;
  std::uint64_t records_read_ = 0;
  std::string error_;
};

}  // namespace tdat
