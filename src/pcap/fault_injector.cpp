#include "pcap/fault_injector.hpp"

#include <algorithm>
#include <cstring>

#include "util/rng.hpp"

namespace tdat {
namespace {

constexpr std::uint32_t kMagicMicrosLE = 0xa1b2c3d4;  // as read little-endian
constexpr std::uint32_t kMagicMicrosBE = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNanosLE = 0xa1b23c4d;
constexpr std::uint32_t kMagicNanosBE = 0x4d3cb2a1;
constexpr std::size_t kGlobalHeaderLen = 24;
constexpr std::size_t kRecordHeaderLen = 16;
// eth(14) + min ipv4(20) + min tcp(20): anything past this inside a frame is
// (potential) application payload.
constexpr std::uint32_t kPayloadOffset = 54;
constexpr std::uint32_t kTimestampJumpSecs = 30 * 86400;

std::uint32_t read_u32(const std::uint8_t* p, bool swapped) {
  return swapped ? static_cast<std::uint32_t>(p[0]) << 24 |
                       static_cast<std::uint32_t>(p[1]) << 16 |
                       static_cast<std::uint32_t>(p[2]) << 8 | p[3]
                 : static_cast<std::uint32_t>(p[3]) << 24 |
                       static_cast<std::uint32_t>(p[2]) << 16 |
                       static_cast<std::uint32_t>(p[1]) << 8 | p[0];
}

void write_u32(std::uint8_t* p, std::uint32_t v, bool swapped) {
  if (swapped) {
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
  } else {
    p[3] = static_cast<std::uint8_t>(v >> 24);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[0] = static_cast<std::uint8_t>(v);
  }
}

struct RecordSlot {
  std::size_t header_off = 0;
  std::uint32_t incl = 0;
  [[nodiscard]] std::size_t body_off() const {
    return header_off + kRecordHeaderLen;
  }
  [[nodiscard]] std::size_t end_off() const { return body_off() + incl; }
};

struct ImageLayout {
  bool ok = false;
  bool swapped = false;
  std::vector<RecordSlot> records;
};

ImageLayout index_records(const std::vector<std::uint8_t>& image) {
  ImageLayout out;
  if (image.size() < kGlobalHeaderLen) return out;
  const std::uint32_t magic = read_u32(image.data(), /*swapped=*/false);
  switch (magic) {
    case kMagicMicrosLE:
    case kMagicNanosLE:
      break;
    case kMagicMicrosBE:
    case kMagicNanosBE:
      out.swapped = true;
      break;
    default:
      return out;
  }
  out.ok = true;
  std::size_t off = kGlobalHeaderLen;
  while (off + kRecordHeaderLen <= image.size()) {
    const std::uint32_t incl = read_u32(image.data() + off + 8, out.swapped);
    if (incl == 0 || off + kRecordHeaderLen + incl > image.size()) break;
    out.records.push_back({off, incl});
    off += kRecordHeaderLen + incl;
  }
  return out;
}

// Deterministic Fisher-Yates draw of up to `count` distinct entries from
// `candidates` (std::sample/std::shuffle are avoided on purpose: their
// draw order is implementation-defined, and the corpus and matrix tests
// depend on exact reproducibility across standard libraries).
std::vector<std::size_t> draw(std::vector<std::size_t> candidates,
                              std::size_t count, Rng& rng) {
  std::vector<std::size_t> out;
  while (out.size() < count && !candidates.empty()) {
    const auto pick = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(candidates.size()) - 1));
    out.push_back(candidates[pick]);
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  // Descending, so size-changing edits leave the not-yet-edited offsets valid.
  std::sort(out.rbegin(), out.rend());
  return out;
}

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

}  // namespace

const char* to_string(FaultMode mode) {
  switch (mode) {
    case FaultMode::kBitFlip: return "bit-flip";
    case FaultMode::kTruncateTail: return "truncate-tail";
    case FaultMode::kTruncateRecord: return "truncate-record";
    case FaultMode::kZeroInclLen: return "zero-incl-len";
    case FaultMode::kOverlongInclLen: return "overlong-incl-len";
    case FaultMode::kDuplicateRecord: return "duplicate-record";
    case FaultMode::kReorderRecords: return "reorder-records";
    case FaultMode::kTimestampJump: return "timestamp-jump";
    case FaultMode::kGarbageSplice: return "garbage-splice";
  }
  return "unknown";
}

std::optional<FaultMode> parse_fault_mode(const std::string& name) {
  for (const FaultMode mode : all_fault_modes()) {
    if (name == to_string(mode)) return mode;
  }
  return std::nullopt;
}

const std::vector<FaultMode>& all_fault_modes() {
  static const std::vector<FaultMode> modes = {
      FaultMode::kBitFlip,         FaultMode::kTruncateTail,
      FaultMode::kTruncateRecord,  FaultMode::kZeroInclLen,
      FaultMode::kOverlongInclLen, FaultMode::kDuplicateRecord,
      FaultMode::kReorderRecords,  FaultMode::kTimestampJump,
      FaultMode::kGarbageSplice};
  return modes;
}

FaultReport inject_faults(std::vector<std::uint8_t>& image,
                          const FaultPlan& plan) {
  FaultReport report;
  const ImageLayout layout = index_records(image);
  if (!layout.ok || layout.records.empty()) return report;
  const bool sw = layout.swapped;
  const std::vector<RecordSlot>& recs = layout.records;
  const std::size_t n = recs.size();
  Rng rng(plan.seed);

  auto touch = [&](std::size_t idx) { report.touched_records.push_back(idx); };

  switch (plan.mode) {
    case FaultMode::kBitFlip: {
      for (const std::size_t idx : draw(all_indices(n), plan.count, rng)) {
        const RecordSlot& r = recs[idx];
        const auto byte = static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(r.incl) - 1));
        const auto bit = static_cast<unsigned>(rng.uniform(0, 7));
        image[r.body_off() + byte] ^= static_cast<std::uint8_t>(1u << bit);
        touch(idx);
        ++report.faults_applied;
      }
      break;
    }
    case FaultMode::kTruncateTail: {
      report.structural = true;
      // Cut mid-body of a record in the back half, so a meaningful prefix
      // survives. Everything from that record on is gone.
      const std::size_t idx =
          n > 1 ? static_cast<std::size_t>(
                      rng.uniform(static_cast<std::int64_t>(n / 2),
                                  static_cast<std::int64_t>(n) - 1))
                : 0;
      const RecordSlot& r = recs[idx];
      image.resize(r.body_off() + r.incl / 2);
      for (std::size_t i = idx; i < n; ++i) touch(i);
      ++report.faults_applied;
      break;
    }
    case FaultMode::kTruncateRecord: {
      report.structural = true;
      // Delete bytes from a non-final record's body: the header still claims
      // the full length, so the reader overshoots into the next record and
      // must resync. The victim and its successor are both lost.
      if (n < 2) break;
      for (const std::size_t idx :
           draw(all_indices(n - 1), plan.count, rng)) {
        const RecordSlot& r = recs[idx];
        if (r.incl < 2) continue;
        const auto cut = static_cast<std::size_t>(
            rng.uniform(1, static_cast<std::int64_t>(r.incl) - 1));
        const auto at =
            image.begin() + static_cast<std::ptrdiff_t>(r.body_off());
        image.erase(at, at + static_cast<std::ptrdiff_t>(cut));
        touch(idx);
        if (idx + 1 < n) touch(idx + 1);
        ++report.faults_applied;
      }
      break;
    }
    case FaultMode::kZeroInclLen:
    case FaultMode::kOverlongInclLen: {
      report.structural = true;
      for (const std::size_t idx : draw(all_indices(n), plan.count, rng)) {
        const RecordSlot& r = recs[idx];
        const std::uint32_t bad =
            plan.mode == FaultMode::kZeroInclLen ? 0 : 0x7fffffffu;
        write_u32(image.data() + r.header_off + 8, bad, sw);
        touch(idx);
        ++report.faults_applied;
      }
      break;
    }
    case FaultMode::kDuplicateRecord: {
      for (const std::size_t idx : draw(all_indices(n), plan.count, rng)) {
        const RecordSlot& r = recs[idx];
        const std::vector<std::uint8_t> copy(
            image.begin() + static_cast<std::ptrdiff_t>(r.header_off),
            image.begin() + static_cast<std::ptrdiff_t>(r.end_off()));
        image.insert(image.begin() + static_cast<std::ptrdiff_t>(r.end_off()),
                     copy.begin(), copy.end());
        touch(idx);
        ++report.faults_applied;
      }
      break;
    }
    case FaultMode::kReorderRecords: {
      if (n < 2) break;
      // Swap adjacent pairs; candidates step by 2 so draws never overlap.
      std::vector<std::size_t> firsts;
      for (std::size_t i = 0; i + 1 < n; i += 2) firsts.push_back(i);
      for (const std::size_t idx : draw(firsts, plan.count, rng)) {
        const RecordSlot& a = recs[idx];
        const RecordSlot& b = recs[idx + 1];
        // rotate moves [a.header .. a.end) behind [a.end .. b.end).
        std::rotate(
            image.begin() + static_cast<std::ptrdiff_t>(a.header_off),
            image.begin() + static_cast<std::ptrdiff_t>(a.end_off()),
            image.begin() + static_cast<std::ptrdiff_t>(b.end_off()));
        touch(idx);
        touch(idx + 1);
        ++report.faults_applied;
      }
      break;
    }
    case FaultMode::kTimestampJump: {
      for (const std::size_t idx : draw(all_indices(n), plan.count, rng)) {
        const RecordSlot& r = recs[idx];
        const std::uint32_t sec = read_u32(image.data() + r.header_off, sw);
        write_u32(image.data() + r.header_off, sec + kTimestampJumpSecs, sw);
        touch(idx);
        ++report.faults_applied;
      }
      break;
    }
    case FaultMode::kGarbageSplice: {
      std::vector<std::size_t> eligible;
      for (std::size_t i = 0; i < n; ++i) {
        if (recs[i].incl > kPayloadOffset) eligible.push_back(i);
      }
      for (const std::size_t idx : draw(eligible, plan.count, rng)) {
        const RecordSlot& r = recs[idx];
        for (std::size_t i = r.body_off() + kPayloadOffset; i < r.end_off();
             ++i) {
          image[i] = static_cast<std::uint8_t>(rng.uniform(0, 255));
        }
        touch(idx);
        ++report.faults_applied;
      }
      break;
    }
  }

  std::sort(report.touched_records.begin(), report.touched_records.end());
  report.touched_records.erase(std::unique(report.touched_records.begin(),
                                           report.touched_records.end()),
                               report.touched_records.end());
  return report;
}

}  // namespace tdat
