// Classic pcap file format reader/writer (the tcpdump on-disk format).
//
// Supports all four global-header variants: microsecond (0xa1b2c3d4) and
// nanosecond (0xa1b23c4d) magic, in either byte order. The writer emits the
// native microsecond little-endian form. Link type must be Ethernet (1).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "pcap/ingest.hpp"
#include "pcap/packet.hpp"
#include "util/result.hpp"

namespace tdat {

// A raw captured record, before protocol decoding.
struct PcapRecord {
  Micros ts = 0;
  std::uint32_t orig_len = 0;  // length on the wire (may exceed captured size)
  std::vector<std::uint8_t> data;
};

struct PcapFile {
  std::vector<PcapRecord> records;
  bool nanosecond = false;
  std::uint32_t snaplen = 65535;
  // What the reader had to drop or skip to produce `records` (all zero for a
  // clean capture).
  IngestDiagnostics ingest;
};

// Parses an in-memory pcap image. Records after a corrupt record header
// (incl_len of zero or beyond the snaplen) are dropped — matching tcpdump's
// behaviour on truncated files — and tallied in the result's `ingest` block;
// a malformed global header is an error. For resynchronizing recovery use
// PcapStream with a non-strict IngestPolicy.
[[nodiscard]] Result<PcapFile> parse_pcap(std::span<const std::uint8_t> image);

[[nodiscard]] Result<PcapFile> read_pcap_file(const std::string& path);

// Serializes to the µs little-endian pcap format.
[[nodiscard]] std::vector<std::uint8_t> serialize_pcap(const PcapFile& file);

[[nodiscard]] bool write_pcap_file(const std::string& path, const PcapFile& file);

// Decodes every record into a TCP packet, skipping non-TCP/undecodable
// records. Packet `index` is the record's position in the file, so event
// series can refer back to the exact capture record.
[[nodiscard]] std::vector<DecodedPacket> decode_pcap(const PcapFile& file,
                                                     bool verify_checksums = false);

}  // namespace tdat
