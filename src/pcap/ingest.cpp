#include "pcap/ingest.hpp"

namespace tdat {

void IngestDiagnostics::add(const IngestDiagnostics& other) {
  truncated += other.truncated;
  resynced += other.resynced;
  skipped_bytes += other.skipped_bytes;
  tail_truncated += other.tail_truncated;
  budget_exhausted = budget_exhausted || other.budget_exhausted;
}

std::string IngestDiagnostics::to_json() const {
  std::string out = "{\"truncated\":";
  out += std::to_string(truncated);
  out += ",\"tail_truncated\":";
  out += std::to_string(tail_truncated);
  out += ",\"resynced\":";
  out += std::to_string(resynced);
  out += ",\"skipped_bytes\":";
  out += std::to_string(skipped_bytes);
  out += ",\"budget_exhausted\":";
  out += budget_exhausted ? "true" : "false";
  out += '}';
  return out;
}

}  // namespace tdat
