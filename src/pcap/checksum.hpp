// RFC 1071 internet checksum, used for IPv4 header and TCP checksums.
#pragma once

#include <cstdint>
#include <span>

namespace tdat {

// Ones-complement sum over the data (padded with a zero byte if odd length).
// Returns the final folded, complemented checksum in host order.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

// TCP checksum including the IPv4 pseudo-header. `segment` is the TCP header
// plus payload with its checksum field zeroed.
[[nodiscard]] std::uint16_t tcp_checksum(std::uint32_t src_ip, std::uint32_t dst_ip,
                                         std::span<const std::uint8_t> segment);

}  // namespace tdat
