#include "pcap/mmap_file.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TDAT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define TDAT_HAVE_MMAP 0
#endif

namespace tdat {

#if TDAT_HAVE_MMAP

Result<MappedFile> MappedFile::map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Err<MappedFile>("mmap: cannot open " + path);
  struct stat st;
  if (fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return Err<MappedFile>("mmap: not a regular file: " + path);
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Err<MappedFile>("mmap: empty file: " + path);
  }
  const std::size_t len = static_cast<std::size_t>(st.st_size);
  void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference to the pages; the descriptor is not
  // needed once it exists.
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Err<MappedFile>("mmap: map failed for " + path);
  }
  // Advisory only — a failure costs readahead tuning, not correctness.
  (void)::madvise(addr, len, MADV_SEQUENTIAL);

  MappedFile out;
  out.pin_ = std::shared_ptr<const void>(
      addr, [len](const void* p) { ::munmap(const_cast<void*>(p), len); });
  out.bytes_ = std::span<const std::uint8_t>(
      static_cast<const std::uint8_t*>(addr), len);
  return out;
}

#else  // !TDAT_HAVE_MMAP

Result<MappedFile> MappedFile::map(const std::string& path) {
  return Err<MappedFile>("mmap: unavailable on this platform (" + path + ")");
}

#endif

}  // namespace tdat
