// Frame decoding: Ethernet II -> IPv4 -> TCP. Non-TCP or malformed frames
// decode to nullopt; the caller decides whether to skip or count them.
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "pcap/packet.hpp"

namespace tdat {

// Decodes one captured frame. `verify_checksums` additionally validates the
// IPv4 header checksum and the TCP checksum; packets failing verification
// decode to nullopt (damaged captures should not reach the analyzer).
//
// Without `backing` the frame bytes are copied into a packet-private buffer,
// so the caller's span may be transient. With `backing` (a keepalive that
// owns the memory `frame` points into, e.g. a PcapStream arena chunk) the
// packet views the caller's bytes directly — zero copy on the ingest path.
[[nodiscard]] std::optional<DecodedPacket> decode_frame(
    Micros ts, std::size_t index, std::span<const std::uint8_t> frame,
    bool verify_checksums = false,
    std::shared_ptr<const void> backing = nullptr);

class ByteReader;

namespace detail {
// TCP option walk shared by decode_frame and the batched decoder
// (decode_batch.cpp), so the two paths cannot drift. Returns false on a
// malformed option list; the reader is positioned past the options on
// success.
[[nodiscard]] bool decode_tcp_options(ByteReader& r, std::size_t options_len,
                                      TcpHeader& tcp);
}  // namespace detail

}  // namespace tdat
