// Frame construction: builds valid Ethernet II / IPv4 / TCP wire bytes with
// correct checksums. Used by the trace simulator so that the whole analysis
// pipeline runs on real packet bytes, exactly as it would on a tcpdump trace.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "pcap/packet.hpp"

namespace tdat {

struct TcpSegmentSpec {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint16_t window = 0;
  TcpFlags flags;
  std::uint16_t ip_ident = 0;
  std::optional<std::uint16_t> mss;            // emitted as a TCP option
  std::optional<std::uint8_t> window_scale;    // emitted as a TCP option
  // RFC 1323 timestamps: emitted (NOP-NOP-TS) when ts_val is set.
  std::optional<std::uint32_t> ts_val;
  std::uint32_t ts_ecr = 0;
  std::span<const std::uint8_t> payload;
};

// Builds the full layer-2 frame for the segment.
[[nodiscard]] std::vector<std::uint8_t> encode_tcp_frame(const TcpSegmentSpec& spec);

}  // namespace tdat
