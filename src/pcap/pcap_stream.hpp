// Streaming pcap reader: reads the capture in fixed-size chunks and hands
// out records as std::span views into per-chunk arena buffers, so the ingest
// hot path performs no per-record heap allocation (the in-memory parse_pcap
// allocates one vector per record).
//
// Arena lifetime rules: every StreamRecord carries a shared_ptr pin on the
// chunk its bytes live in. A chunk stays alive exactly as long as the stream
// is filling it or at least one record (or DecodedPacket built from one via
// decode_frame's `backing` parameter) still references it; drop the pins and
// the chunk is recycled for a later refill. Records never straddle chunks —
// a record crossing a read boundary is relocated into the next chunk before
// it is handed out, so `data` is always contiguous.
//
// Zero-copy mode (from_image / the mmap fast path): when the whole capture
// is already contiguous in memory behind a caller-supplied keepalive, the
// stream walks it in place. No chunk buffers, no refill copies, no straddle
// relocation — every record is a span into the pinned image and the pin is
// the image itself. Parsing, corrupt-record recovery, and accounting are the
// same code as the chunked path (refill degenerates to a bounds check), so
// the two modes are bit-identical on every input.
//
// Supports the same four global-header variants as parse_pcap (µs/ns magic,
// either byte order). Corrupt-record handling is governed by IngestPolicy:
// by default a corrupt record header triggers a forward scan for the next
// plausible record (timestamp-monotonicity + sane-length heuristic, bounded
// by max_errors); under `strict` the historical semantics apply — the first
// corrupt header ends the stream, keeping everything before it. Either way
// the damage is tallied in IngestDiagnostics, never silently absorbed.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pcap/ingest.hpp"
#include "pcap/pcap_file.hpp"
#include "util/result.hpp"

namespace tdat {

class Counter;
class LatencyHistogram;

// A raw captured record viewed in place. Valid while `arena` (or any other
// copy of it) is held; copying the struct is two words plus a refcount bump.
struct StreamRecord {
  Micros ts = 0;
  std::uint32_t orig_len = 0;
  std::span<const std::uint8_t> data;  // view into `arena`
  std::shared_ptr<const void> arena;   // pin for `data`
  // Capture-file offset of this record's 16-byte header. Lets downstream
  // consumers (checkpointing, shard planning) name the record by position so
  // it can be re-read from the file later without serializing its bytes.
  std::uint64_t file_offset = 0;
};

// Tri-state result of a live read. kNeedMore only occurs in tail mode: the
// source has no complete record *right now*, but more bytes may still arrive
// — retry after the source grows. kEnd is terminal.
enum class StreamStatus { kOk, kEnd, kNeedMore };

// Byte source for live in-memory streaming (ring buffers, test harnesses).
// `read` is non-blocking and returns however many bytes are available;
// `closed` flips once the producer is done appending, after which the stream
// drains the remaining buffered bytes with batch semantics.
class ByteFeed {
 public:
  virtual ~ByteFeed() = default;
  [[nodiscard]] virtual std::size_t read(std::uint8_t* dst, std::size_t n) = 0;
  [[nodiscard]] virtual std::size_t available() const = 0;
  [[nodiscard]] virtual bool closed() const = 0;
};

class PcapStream {
 public:
  static constexpr std::size_t kDefaultChunkSize = 1 << 20;  // 1 MiB

  // Opens a capture file for streaming. Fails on a malformed global header,
  // with the same error messages as parse_pcap.
  [[nodiscard]] static Result<PcapStream> open(
      const std::string& path, std::size_t chunk_size = kDefaultChunkSize);
  [[nodiscard]] static Result<PcapStream> open(
      const std::string& path, const IngestPolicy& policy,
      std::size_t chunk_size = kDefaultChunkSize);

  // Streams an in-memory image (chunked through the same arena machinery,
  // so boundary handling is exercised regardless of source). The image only
  // needs to stay alive while the stream is read.
  [[nodiscard]] static Result<PcapStream> from_memory(
      std::span<const std::uint8_t> image,
      std::size_t chunk_size = kDefaultChunkSize);
  [[nodiscard]] static Result<PcapStream> from_memory(
      std::span<const std::uint8_t> image, const IngestPolicy& policy,
      std::size_t chunk_size = kDefaultChunkSize);

  // Zero-copy: streams a pinned, contiguous image (e.g. an mmap'ed capture)
  // in place. `pin` owns the bytes behind `image` and is shared into every
  // record handed out, so the mapping lives exactly as long as anything
  // still references it.
  [[nodiscard]] static Result<PcapStream> from_image(
      std::shared_ptr<const void> pin, std::span<const std::uint8_t> image,
      const IngestPolicy& policy = {});

  // Opens `path` the fastest way available: memory-mapped zero-copy when the
  // path is a mappable regular file and `policy.use_mmap` allows it, the
  // chunked streaming reader otherwise (pipes, special files, --no-mmap).
  // The two paths are bit-identical on every input, including corrupt ones.
  [[nodiscard]] static Result<PcapStream> open_auto(
      const std::string& path, const IngestPolicy& policy = {},
      std::size_t chunk_size = kDefaultChunkSize);

  // Resume state for re-opening a followed capture exactly where a
  // checkpointed reader left off: the stream behaves as if it had itself
  // delivered `records` records and tallied `diag` over the first `offset`
  // bytes. `offset` must sit on a record-header boundary of the original
  // read sequence — PcapStream::bytes_read() between next_live() calls is
  // exactly such an offset (pending stashes and paused resync scans are not
  // counted until resolved, so a mid-record crash resumes at the record's
  // header and re-parses it deterministically).
  struct Resume {
    std::uint64_t offset = 0;   // first unread byte (>= 24, the global header)
    std::uint64_t records = 0;  // records delivered before the checkpoint
    Micros last_ts = -1;        // resync plausibility anchor (-1 = none yet)
    IngestDiagnostics diag;     // damage tallied before the checkpoint
  };

  // Opens `path` mid-file at a checkpointed position. Validates the global
  // header as usual (so byte-order/snaplen state is learned from the file,
  // not trusted from the checkpoint), then seeks to `resume.offset`. Fails
  // when the offset lies beyond the current end of file.
  [[nodiscard]] static Result<PcapStream> open_resumed(
      const std::string& path, const IngestPolicy& policy,
      const Resume& resume, std::size_t chunk_size = kDefaultChunkSize);

  // Live streaming over a ByteFeed (the chunked reader pulls from the feed
  // instead of a file). The feed must already hold the 24-byte global header
  // when this is called — callers poll `available()` first. The stream
  // starts in tail mode; it drains with batch semantics once the feed
  // closes (or after `begin_drain()`).
  [[nodiscard]] static Result<PcapStream> from_feed(
      std::shared_ptr<ByteFeed> feed, const IngestPolicy& policy = {},
      std::size_t chunk_size = kDefaultChunkSize);

  PcapStream(PcapStream&&) = default;
  PcapStream& operator=(PcapStream&&) = default;

  // Fetches the next record. Returns false at end of stream — clean EOF, a
  // truncated tail, or (strict mode / exhausted error budget) a corrupt
  // header; see `diagnostics()` for what, if anything, was lost. Batch
  // entry point: never used in tail mode (see next_live).
  [[nodiscard]] bool next(StreamRecord& out);

  // Tail-mode read: like next(), but when the source runs out of bytes
  // mid-record (or mid-resync-scan) while more may still arrive, returns
  // kNeedMore instead of tallying a truncation — the caller grows the
  // source (poll_growth / feed append) and retries. Every accept/reject
  // decision is deferred until the same bytes are present that the batch
  // reader would have had, so a finished capture replayed through any
  // sequence of kNeedMore retries yields the exact record sequence and
  // diagnostics of a single batch pass.
  [[nodiscard]] StreamStatus next_live(StreamRecord& out);

  // Tail mode: end-of-data is provisional (the file is still being written /
  // the feed is still open). Off by default; FollowSource turns it on.
  void set_tail(bool tail) { tail_ = tail; }
  [[nodiscard]] bool tail() const { return tail_; }

  // Leaves tail mode: the remaining bytes are final, and the next
  // next_live() calls apply batch end-of-data semantics (truncation tallies
  // included) instead of returning kNeedMore.
  void begin_drain() { tail_ = false; }

  // Re-checks a followed file's size (clearing the stdio EOF latch) so a
  // tail-mode stream can keep reading bytes appended since the last EOF.
  // Returns true when unread bytes are now available.
  [[nodiscard]] bool poll_growth();

  [[nodiscard]] bool nanosecond() const { return nanos_; }
  [[nodiscard]] std::uint32_t snaplen() const { return snaplen_; }
  [[nodiscard]] bool zero_copy() const { return pinned_; }
  [[nodiscard]] const IngestDiagnostics& diagnostics() const { return diag_; }

  // Ingest accounting: file bytes consumed (headers included) and records
  // handed out so far.
  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_; }
  [[nodiscard]] std::uint64_t records_read() const { return records_read_; }
  // Timestamp of the last delivered record (-1 before the first): the resync
  // plausibility anchor, which a checkpoint must persist so a resumed stream
  // judges damaged bytes exactly as the uninterrupted one would have.
  [[nodiscard]] Micros last_record_ts() const { return last_ts_; }
  // Raw bytes fread from a file source so far (parsed or still buffered).
  // FollowSource compares this against the path's current size to detect a
  // copytruncate rotation (the file shrinking under the reader).
  [[nodiscard]] std::uint64_t file_bytes_consumed() const {
    return file_consumed_;
  }

  // Drains the remaining records into the in-memory representation — the
  // PcapFile API is a thin adapter over the stream (read_pcap_file uses it).
  [[nodiscard]] PcapFile drain_to_file();

 private:
  struct FileCloser {
    void operator()(std::FILE* f) const { std::fclose(f); }
  };
  using Arena = std::vector<std::uint8_t>;

  PcapStream() = default;

  [[nodiscard]] static Result<PcapStream> init(PcapStream stream);
  [[nodiscard]] std::size_t read_source(std::uint8_t* dst, std::size_t n);
  // Upper bound on bytes the source can still deliver (SIZE_MAX when the
  // file size is unknowable, e.g. a pipe).
  [[nodiscard]] std::size_t source_remaining() const;
  // Base of the buffer `pos_`/`fill_` index into: the current arena chunk,
  // or the pinned image in zero-copy mode.
  [[nodiscard]] const std::uint8_t* base() const {
    return pinned_ ? mem_.data() : arena_->data();
  }
  // Ensures >= n contiguous unconsumed bytes at the cursor, refilling (and
  // relocating a partial tail into a fresh arena) as needed. In zero-copy
  // mode this is a pure bounds check — the whole image is already there.
  [[nodiscard]] bool refill(std::size_t n);
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  // Largest incl_len a record may legitimately claim.
  [[nodiscard]] std::uint32_t effective_snaplen() const;
  // Does base()[at..at+16) look like a record header consistent with the
  // stream's byte order, snaplen, and timestamp progression?
  [[nodiscard]] bool plausible_record_at(std::size_t at, Micros after) const;
  // Scans forward from the (corrupt) header at pos_ for the next plausible
  // record; updates diag_ and positions pos_ on the recovered header. In
  // tail mode the scan pauses (kNeedMore) whenever a decision would need
  // bytes the source does not hold yet, and resumes on the next call with
  // its position and skip count intact.
  [[nodiscard]] StreamStatus resync_step();
  // Is end-of-data provisional right now? (tail mode and the source can
  // still grow: a followed file, or a feed not yet closed.)
  [[nodiscard]] bool tailing() const {
    if (!tail_) return false;
    if (feed_) return !feed_->closed();
    return file_ != nullptr;  // a plain memory image can never grow
  }

  // Source: exactly one of `file_` / `feed_` / `mem_` is active. With
  // `pinned_` set, `mem_` is the whole capture held alive by `pin_` and is
  // consumed in place instead of being chunked through arenas.
  std::unique_ptr<std::FILE, FileCloser> file_;
  std::shared_ptr<ByteFeed> feed_;
  std::span<const std::uint8_t> mem_;
  std::shared_ptr<const void> pin_;  // keepalive for mem_ in zero-copy mode
  bool pinned_ = false;
  std::size_t mem_pos_ = 0;
  // Unread bytes left in file_ (SIZE_MAX when unseekable). Bounds arena
  // growth: a hostile record header can claim a multi-gigabyte record, but
  // the allocation must never exceed what the source can actually provide.
  std::size_t file_remaining_ = SIZE_MAX;
  // Total bytes fread from file_ so far; poll_growth re-derives
  // file_remaining_ from a fresh fstat minus this.
  std::uint64_t file_consumed_ = 0;

  std::size_t chunk_size_ = kDefaultChunkSize;
  std::shared_ptr<Arena> arena_;  // current chunk (unused in zero-copy mode)
  std::shared_ptr<Arena> spare_;  // retired chunk, recycled once unreferenced
  std::size_t fill_ = 0;          // valid bytes at base()
  std::size_t pos_ = 0;           // cursor into base()

  bool swapped_ = false;
  bool nanos_ = false;
  std::uint32_t snaplen_ = 65535;
  bool done_ = false;
  bool tail_ = false;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t records_read_ = 0;

  // Record header parsed but body not yet fully present (tail mode). The
  // stash exists because a refill relocates only the *unconsumed* tail into
  // the fresh arena — the 16 header bytes are already consumed, so the
  // parse cannot be rewound and re-run after more bytes arrive.
  struct PendingRecord {
    Micros ts = 0;
    std::uint32_t orig_len = 0;
    std::uint32_t incl_len = 0;
    bool have = false;
  };
  PendingRecord pending_;
  // Resync scan paused mid-flight waiting for more bytes (tail mode).
  bool resync_active_ = false;
  std::uint64_t resync_skipped_ = 0;

  IngestPolicy policy_;
  IngestDiagnostics diag_;
  // Timestamp of the last good record, anchoring the resync plausibility
  // window; -1 until the first record is seen.
  Micros last_ts_ = -1;

  // Ingest observability (cached global-registry lookups; see
  // util/metrics.hpp for the cost model). Pointers so the stream stays
  // movable.
  Counter* m_records_ = nullptr;      // pcap.records
  Counter* m_bytes_ = nullptr;        // pcap.bytes
  Counter* m_chunks_ = nullptr;       // pcap.chunk_refills
  Counter* m_recycles_ = nullptr;     // pcap.arena_recycles
  Counter* m_allocs_ = nullptr;       // pcap.arena_allocs
  Counter* m_straddles_ = nullptr;    // pcap.straddle_relocations
  Counter* m_err_truncated_ = nullptr;  // ingest.errors.truncated
  Counter* m_err_resynced_ = nullptr;   // ingest.errors.resynced
  Counter* m_err_skipped_ = nullptr;    // ingest.errors.skipped
  LatencyHistogram* m_refill_us_ = nullptr;  // pcap.refill_us
};

}  // namespace tdat
